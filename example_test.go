package bomw_test

import (
	"fmt"
	"time"

	"bomw"
)

// The adaptive scheduler end to end: train, load a model, classify under
// a policy.
func ExampleNewScheduler() {
	sched, err := bomw.NewScheduler(bomw.Config{
		TrainModels: bomw.PaperModels(),
		Batches:     []int{8, 512, 8192},
		Reps:        1,
	})
	if err != nil {
		panic(err)
	}
	if err := sched.LoadModel(bomw.Simple(), 1); err != nil {
		panic(err)
	}
	batch := bomw.Synthesize(bomw.Simple(), 8, 42).Batch(0, 8)
	res, dec, err := sched.Classify("simple", batch, bomw.LowestLatency, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("batch:", dec.Batch, "classes:", len(res.Classes), "gpu warm:", dec.GPUWarm)
	// Output: batch: 8 classes: 8 gpu warm: false
}

// Device profiles are plain values: the simulated GTX 1080 Ti starts at
// idle clocks and warms up with work (the paper's footnote 1).
func ExampleDeviceProfile() {
	gpu := bomw.NewDevice(bomw.NvidiaGTX1080Ti())
	fmt.Printf("cold: warm=%t clock=%.2f\n", gpu.StateAt(0).Warm, gpu.StateAt(0).ClockFrac)
	gpu.Warm(0)
	fmt.Printf("warmed: warm=%t clock=%.2f\n", gpu.StateAt(0).Warm, gpu.StateAt(0).ClockFrac)
	// Output:
	// cold: warm=false clock=0.12
	// warmed: warm=true clock=1.00
}

// Trace generators build the dynamic workloads of §I; traces replay
// identically from their JSON form.
func ExamplePoissonTrace() {
	tr, err := bomw.PoissonTrace(3, 1000, []string{"simple"}, []int{16}, 7)
	if err != nil {
		panic(err)
	}
	for _, r := range tr {
		fmt.Println(r.Model, r.Batch, r.At < time.Second)
	}
	// Output:
	// simple 16 true
	// simple 16 true
	// simple 16 true
}

// The model zoo carries the paper's five workload networks.
func ExamplePaperModels() {
	for _, spec := range bomw.PaperModels() {
		fmt.Println(spec.Name)
	}
	// Output:
	// simple
	// mnist-small
	// mnist-deep
	// mnist-cnn
	// cifar-10
}

// Traces can be analysed before replay: burstiness separates the §I
// workload classes.
func ExampleTrace() {
	steady := bomw.SweepTrace([]string{"simple"}, []int{8, 8, 8, 8}, time.Second)
	fmt.Println("requests:", len(steady), "samples:", steady.TotalSamples())
	// Output: requests: 4 samples: 32
}

// Dynamic batching aggregates single-sample arrivals into dispatch
// batches per model.
func ExampleBatcher() {
	var tr bomw.Trace
	for i := 0; i < 5; i++ {
		tr = append(tr, bomw.Request{At: time.Duration(i) * time.Millisecond, Model: "m", Batch: 1})
	}
	batches, err := (&bomw.Batcher{Window: 10 * time.Millisecond, MaxBatch: 3}).Aggregate(tr)
	if err != nil {
		panic(err)
	}
	for _, b := range batches {
		fmt.Println(b.Model, b.Size, b.FlushAt)
	}
	// Output:
	// m 3 2ms
	// m 2 13ms
}
