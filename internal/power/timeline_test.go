package power

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bomw/internal/core"
	"bomw/internal/device"
	"bomw/internal/models"
	"bomw/internal/opencl"
	"bomw/internal/trace"
)

func monitoredRuntime(t *testing.T) (*opencl.Runtime, *Monitor) {
	t.Helper()
	rt, err := opencl.NewRuntime(
		device.New(device.IntelCoreI7_8700()),
		device.New(device.NvidiaGTX1080Ti()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadModel(models.MnistSmall().MustBuild(1)); err != nil {
		t.Fatal(err)
	}
	return rt, Attach(rt)
}

func TestMonitorRecordsExecutions(t *testing.T) {
	rt, m := monitoredRuntime(t)
	res, err := rt.Estimate("GTX 1080 Ti", "mnist-small", 8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := res.Submitted + res.Latency()/2
	if p := m.Rec.PowerAt("GTX 1080 Ti", mid); p <= device.NvidiaGTX1080Ti().IdleWatts {
		t.Fatalf("mid-run board power %g should exceed idle", p)
	}
	after := res.Completed + time.Second
	if p := m.Rec.PowerAt("GTX 1080 Ti", after); p != device.NvidiaGTX1080Ti().IdleWatts {
		t.Fatalf("post-run power %g should be the idle floor", p)
	}
	smi := m.SMI("GTX 1080 Ti", 250)
	if q := smi.Query(mid); !strings.Contains(q, "/ 250W") {
		t.Fatalf("smi query = %q", q)
	}
	pcm := m.PCM("i7-8700 CPU", "")
	if pcm.PackagePower(mid) <= 0 {
		t.Fatal("PCM should read the CPU idle floor at least")
	}
}

func TestMonitorDetach(t *testing.T) {
	rt, m := monitoredRuntime(t)
	rt.SetObserver(nil)
	res, err := rt.Estimate("GTX 1080 Ti", "mnist-small", 8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := res.Submitted + res.Latency()/2
	if p := m.Rec.PowerAt("GTX 1080 Ti", mid); p != device.NvidiaGTX1080Ti().IdleWatts {
		t.Fatalf("detached monitor recorded activity: %g W", p)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	rt, m := monitoredRuntime(t)
	res, err := rt.Estimate("GTX 1080 Ti", "mnist-small", 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteSeriesCSV(&buf, 0, res.Completed, res.Latency()/16); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("timeline too short: %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_us,") || !strings.Contains(lines[0], "GTX 1080 Ti") {
		t.Fatalf("timeline header = %q", lines[0])
	}
	if err := m.WriteSeriesCSV(&buf, 0, time.Second, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestMonitorOverSchedulerReplay(t *testing.T) {
	// End-to-end instrumentation: attach the monitor to a scheduler's
	// runtime, replay a trace, and verify the power trace shows device
	// activity exactly where executions happened.
	sched, err := core.New(core.Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 8192, 65536},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.LoadModel(models.MnistSmall(), 1); err != nil {
		t.Fatal(err)
	}
	mon := Attach(sched.Runtime())
	tr, err := trace.Poisson(20, 100, []string{"mnist-small"}, []int{8192, 65536}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Replay(tr, core.BestThroughput)
	if err != nil {
		t.Fatal(err)
	}
	// Some device must have drawn above-idle power during the replay.
	active := false
	for _, name := range sched.Devices() {
		series := mon.Rec.Series(name, 0, res.Makespan, res.Makespan/200)
		idle := mon.Rec.PowerAt(name, res.Makespan+time.Hour)
		for _, s := range series {
			if s.Watts > idle+1 {
				active = true
			}
		}
	}
	if !active {
		t.Fatal("monitor saw no device activity over a 20-request replay")
	}
	// Integrated energy over the whole span must be positive and at
	// least the active energy the replay reported for one device.
	var total float64
	for _, name := range sched.Devices() {
		total += mon.Rec.EnergyBetween(name, 0, res.Makespan)
	}
	if total <= 0 {
		t.Fatal("integrated energy non-positive")
	}
}
