package power

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"bomw/internal/device"
	"bomw/internal/opencl"
)

// Monitor couples a Recorder to an OpenCL runtime: every executed command
// feeds the power trace automatically, giving the live view the paper's
// nvidia-smi/PCM loops provide (§III-A1).
type Monitor struct {
	Rec *Recorder
}

// Attach registers all runtime devices and installs the observer hook.
// Detach by calling rt.SetObserver(nil).
func Attach(rt *opencl.Runtime) *Monitor {
	rec := NewRecorder()
	for _, d := range rt.Devices() {
		rec.RegisterProfile(d.Sim.Profile())
	}
	m := &Monitor{Rec: rec}
	rt.SetObserver(func(rep device.Report) { rec.Record(rep) })
	return m
}

// SMI returns an nvidia-smi view over the first discrete GPU, or nil if
// none is registered under that name.
func (m *Monitor) SMI(deviceName string, limitWatts float64) *NvidiaSMI {
	return &NvidiaSMI{Rec: m.Rec, Device: deviceName, Limit: limitWatts}
}

// PCM returns an Intel-PCM view over the CPU package.
func (m *Monitor) PCM(cpuName, igpuName string) *PCM {
	return &PCM{Rec: m.Rec, CPU: cpuName, IGPU: igpuName}
}

// WriteSeriesCSV samples every registered device over [t0, t1) at the
// given period and writes a timeline CSV: one row per timestamp, one
// column per device — the data behind a Fig. 3 power plot.
func (m *Monitor) WriteSeriesCSV(w io.Writer, t0, t1, period time.Duration) error {
	if period <= 0 {
		return fmt.Errorf("power: sampling period must be positive")
	}
	devices := m.Rec.Devices()
	if len(devices) == 0 {
		return fmt.Errorf("power: no devices registered")
	}
	cw := csv.NewWriter(w)
	header := append([]string{"t_us"}, devices...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("power: writing timeline header: %w", err)
	}
	for t := t0; t < t1; t += period {
		row := []string{strconv.FormatInt(t.Microseconds(), 10)}
		for _, d := range devices {
			row = append(row, strconv.FormatFloat(m.Rec.PowerAt(d, t), 'g', 6, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("power: writing timeline row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
