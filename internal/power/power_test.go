package power

import (
	"math"
	"strings"
	"testing"
	"time"

	"bomw/internal/device"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func recorderWithOneInterval() *Recorder {
	r := NewRecorder()
	r.Register("gpu", 50)
	r.RecordInterval(Interval{Device: "gpu", Start: ms(100), End: ms(200), Watts: 200})
	return r
}

func TestPowerAtIdleAndActive(t *testing.T) {
	r := recorderWithOneInterval()
	if got := r.PowerAt("gpu", ms(50)); got != 50 {
		t.Fatalf("idle power = %g, want 50", got)
	}
	if got := r.PowerAt("gpu", ms(150)); got != 200 {
		t.Fatalf("active power = %g, want 200", got)
	}
	if got := r.PowerAt("gpu", ms(200)); got != 50 {
		t.Fatalf("power at interval end = %g, want idle 50", got)
	}
	if got := r.PowerAt("unknown", ms(0)); got != 0 {
		t.Fatalf("unknown device power = %g, want 0", got)
	}
}

func TestEnergyBetweenMixesIdleAndActive(t *testing.T) {
	r := recorderWithOneInterval()
	// [0, 300ms): 200ms idle at 50W + 100ms active at 200W = 10 + 20 J.
	got := r.EnergyBetween("gpu", 0, ms(300))
	if math.Abs(got-30) > 1e-9 {
		t.Fatalf("energy = %g, want 30", got)
	}
	// Window clipped to half the interval.
	got = r.EnergyBetween("gpu", ms(150), ms(200))
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("clipped energy = %g, want 10", got)
	}
	if r.EnergyBetween("gpu", ms(200), ms(100)) != 0 {
		t.Fatal("inverted window should integrate to zero")
	}
}

func TestRecordFromDeviceReport(t *testing.T) {
	r := NewRecorder()
	r.RegisterProfile(device.NvidiaGTX1080Ti())
	d := device.New(device.NvidiaGTX1080Ti())
	rep := d.Execute(0, device.Workload{
		Model: "m", FlopsPerSample: 1e6, SampleBytes: 64, OutputBytes: 8,
		WeightBytes: 1024, ActivationBytes: 64, ItemsPerSample: 100, Kernels: 1, AvgLayerWidth: 100,
	}, 1024)
	r.Record(rep)
	name := device.NvidiaGTX1080Ti().Name
	mid := rep.Start + rep.Latency/2
	if got := r.PowerAt(name, mid); got <= device.NvidiaGTX1080Ti().IdleWatts {
		t.Fatalf("mid-execution power %g should exceed idle", got)
	}
	e := r.EnergyBetween(name, rep.Start, rep.Start+rep.Latency)
	if math.Abs(e-rep.DeviceEnergyJ)/rep.DeviceEnergyJ > 1e-6 {
		t.Fatalf("integrated energy %g, want report's %g", e, rep.DeviceEnergyJ)
	}
	// Zero-latency reports are ignored.
	r.Record(device.Report{Device: name})
}

func TestSeriesSampling(t *testing.T) {
	r := recorderWithOneInterval()
	s := r.Series("gpu", 0, ms(300), ms(50))
	if len(s) != 6 {
		t.Fatalf("series length = %d, want 6", len(s))
	}
	if s[0].Watts != 50 || s[3].Watts != 200 {
		t.Fatalf("series values wrong: %+v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive period did not panic")
		}
	}()
	r.Series("gpu", 0, ms(10), 0)
}

func TestDevicesSorted(t *testing.T) {
	r := NewRecorder()
	r.Register("zeta", 1)
	r.Register("alpha", 1)
	got := r.Devices()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Devices() = %v", got)
	}
}

func TestOverlappingIntervalsTakeMax(t *testing.T) {
	r := NewRecorder()
	r.Register("d", 10)
	r.RecordInterval(Interval{Device: "d", Start: 0, End: ms(100), Watts: 50})
	r.RecordInterval(Interval{Device: "d", Start: ms(50), End: ms(150), Watts: 80})
	if got := r.PowerAt("d", ms(75)); got != 80 {
		t.Fatalf("overlapping power = %g, want max 80", got)
	}
}

func TestNvidiaSMIQuery(t *testing.T) {
	r := recorderWithOneInterval()
	smi := &NvidiaSMI{Rec: r, Device: "gpu", Limit: 250}
	if got := smi.PowerDraw(ms(150)); got != 200 {
		t.Fatalf("PowerDraw = %g", got)
	}
	q := smi.Query(ms(150))
	if !strings.Contains(q, "200.0W / 250W") || !strings.HasPrefix(q, "P0") {
		t.Fatalf("Query = %q, want P0 200.0W / 250W", q)
	}
	if q := smi.Query(ms(10)); !strings.HasPrefix(q, "P8") {
		t.Fatalf("idle Query = %q, want P8 state", q)
	}
}

func TestPCMPackageAggregation(t *testing.T) {
	r := NewRecorder()
	r.Register("cpu", 8)
	r.Register("igpu", 2)
	r.RecordInterval(Interval{Device: "cpu", Start: 0, End: ms(100), Watts: 60})
	r.RecordInterval(Interval{Device: "igpu", Start: 0, End: ms(100), Watts: 18})
	pcm := &PCM{Rec: r, CPU: "cpu", IGPU: "igpu"}
	if got := pcm.PackagePower(ms(50)); got != 78 {
		t.Fatalf("PackagePower = %g, want 78", got)
	}
	if got := pcm.PackageEnergy(0, ms(100)); math.Abs(got-7.8) > 1e-9 {
		t.Fatalf("PackageEnergy = %g, want 7.8", got)
	}
	solo := &PCM{Rec: r, CPU: "cpu"}
	if got := solo.PackagePower(ms(50)); got != 60 {
		t.Fatalf("cores-only PackagePower = %g, want 60", got)
	}
}

func TestAccountantComponents(t *testing.T) {
	var a Accountant
	if c := a.ComponentsFor(device.CPU); len(c) != 1 || c[0] != "cpu-package" {
		t.Fatalf("CPU components = %v", c)
	}
	if c := a.ComponentsFor(device.IntegratedGPU); len(c) != 2 {
		t.Fatalf("iGPU components = %v", c)
	}
	if c := a.ComponentsFor(device.DiscreteGPU); len(c) != 2 || c[1] != "board" {
		t.Fatalf("dGPU components = %v (must include the host)", c)
	}
	if a.ComponentsFor(device.Kind(99)) != nil {
		t.Fatal("unknown kind should have no components")
	}
}

func TestAccountantEfficiency(t *testing.T) {
	var a Accountant
	rep := device.Report{Batch: 100, DeviceEnergyJ: 4, HostEnergyJ: 1, Latency: time.Second}
	if a.EnergyOf(rep) != 5 {
		t.Fatalf("EnergyOf = %g, want 5", a.EnergyOf(rep))
	}
	eff := a.EfficiencyOf(rep, 125) // 100 samples × 1000 bits
	if eff.JoulesPerBatch != 5 || eff.JoulesPerSample != 0.05 {
		t.Fatalf("efficiency = %+v", eff)
	}
	if math.Abs(eff.JoulesPerBit-5e-5) > 1e-12 {
		t.Fatalf("JoulesPerBit = %g", eff.JoulesPerBit)
	}
}
