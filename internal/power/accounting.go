package power

import "bomw/internal/device"

// Accountant implements the paper's component-set energy methodology
// (§IV-C): "we measure the power consumption of all the components that
// are required for the execution" — a dGPU run is charged for the GPU
// board *and* the host CPU orchestrating it; CPU and iGPU runs exclude
// the discrete GPU entirely.
type Accountant struct{}

// ComponentsFor names the hardware components charged when executing on a
// device of the given kind.
func (Accountant) ComponentsFor(k device.Kind) []string {
	switch k {
	case device.CPU:
		return []string{"cpu-package"}
	case device.IntegratedGPU:
		return []string{"cpu-package", "igpu"}
	case device.DiscreteGPU, device.Accelerator:
		return []string{"cpu-package", "board"}
	default:
		return nil
	}
}

// EnergyOf returns the total Joules of a report under the paper's
// accounting: the device's own energy plus host-assist energy. (The
// device models already bake this split into their reports; the
// accountant makes the methodology explicit and testable.)
func (Accountant) EnergyOf(rep device.Report) float64 {
	return rep.DeviceEnergyJ + rep.HostEnergyJ
}

// Efficiency summarises a run for the Fig. 4 metric: Joules per sample
// and per input bit.
type Efficiency struct {
	JoulesPerBatch  float64
	JoulesPerSample float64
	JoulesPerBit    float64
}

// EfficiencyOf computes the Fig. 4 metrics for one report.
func (a Accountant) EfficiencyOf(rep device.Report, sampleBytes int64) Efficiency {
	e := a.EnergyOf(rep)
	bits := float64(rep.Batch) * float64(sampleBytes) * 8
	return Efficiency{
		JoulesPerBatch:  e,
		JoulesPerSample: e / float64(rep.Batch),
		JoulesPerBit:    e / bits,
	}
}
