// Package power reproduces the paper's power instrumentation scheme
// (§III-A1): live power readings per hardware component and accurate
// energy accounting over the component set each execution actually uses.
//
// On the paper's testbed the readings come from nvidia-smi (GTX 1080 Ti)
// and Intel Processor Counter Monitor (CPU package, including the iGPU).
// Here, the same interfaces are fed by the device models: every simulated
// execution contributes a (start, end, power) interval to a Recorder, and
// sampler types expose nvidia-smi-like and PCM-like views over it.
package power

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bomw/internal/device"
)

// Interval is one span of device activity with its average power draw.
type Interval struct {
	Device string
	Start  time.Duration
	End    time.Duration
	Watts  float64 // average power over the interval, including idle floor
}

// Recorder collects activity intervals per device and answers power and
// energy queries over virtual time. Devices draw their idle power outside
// recorded intervals. Safe for concurrent use.
type Recorder struct {
	mu        sync.Mutex
	idleWatts map[string]float64
	intervals map[string][]Interval
	sorted    map[string]bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		idleWatts: map[string]float64{},
		intervals: map[string][]Interval{},
		sorted:    map[string]bool{},
	}
}

// Register declares a device and its idle power floor.
func (r *Recorder) Register(name string, idleWatts float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.idleWatts[name] = idleWatts
}

// RegisterProfile registers a device profile.
func (r *Recorder) RegisterProfile(p device.Profile) { r.Register(p.Name, p.IdleWatts) }

// Record adds an execution report's device activity to the trace.
func (r *Recorder) Record(rep device.Report) {
	if rep.Latency <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.intervals[rep.Device] = append(r.intervals[rep.Device], Interval{
		Device: rep.Device,
		Start:  rep.Start,
		End:    rep.Start + rep.Latency,
		Watts:  rep.DeviceEnergyJ / rep.Latency.Seconds(),
	})
	r.sorted[rep.Device] = false
}

// RecordInterval adds a raw interval (used for host-assist accounting).
func (r *Recorder) RecordInterval(iv Interval) {
	if iv.End <= iv.Start {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.intervals[iv.Device] = append(r.intervals[iv.Device], iv)
	r.sorted[iv.Device] = false
}

func (r *Recorder) sortLocked(dev string) []Interval {
	ivs := r.intervals[dev]
	if !r.sorted[dev] {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
		r.sorted[dev] = true
	}
	return ivs
}

// PowerAt returns the instantaneous power draw of a device at virtual
// time t: the active power of any covering interval, otherwise the idle
// floor. Unknown devices read zero (as nvidia-smi would error).
func (r *Recorder) PowerAt(dev string, t time.Duration) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.idleWatts[dev]
	for _, iv := range r.sortLocked(dev) {
		if iv.Start > t {
			break
		}
		if t < iv.End {
			if iv.Watts > w {
				w = iv.Watts
			}
		}
	}
	return w
}

// EnergyBetween integrates a device's energy over [t0, t1): active
// intervals at their recorded power, gaps at the idle floor.
func (r *Recorder) EnergyBetween(dev string, t0, t1 time.Duration) float64 {
	if t1 <= t0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idle := r.idleWatts[dev]
	total := 0.0
	covered := time.Duration(0)
	for _, iv := range r.sortLocked(dev) {
		s, e := iv.Start, iv.End
		if s < t0 {
			s = t0
		}
		if e > t1 {
			e = t1
		}
		if e <= s {
			continue
		}
		total += iv.Watts * (e - s).Seconds()
		covered += e - s
	}
	total += idle * ((t1 - t0) - covered).Seconds()
	return total
}

// Devices lists registered device names in sorted order.
func (r *Recorder) Devices() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.idleWatts))
	for n := range r.idleWatts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sample is one power reading, as a monitoring loop would emit.
type Sample struct {
	T     time.Duration
	Watts float64
}

// Series samples a device's power every period over [t0, t1), like
// `nvidia-smi --loop-ms` or `pcm 1`.
func (r *Recorder) Series(dev string, t0, t1, period time.Duration) []Sample {
	if period <= 0 {
		panic("power: sampling period must be positive")
	}
	var out []Sample
	for t := t0; t < t1; t += period {
		out = append(out, Sample{T: t, Watts: r.PowerAt(dev, t)})
	}
	return out
}

// NvidiaSMI mimics the nvidia-smi power-management query interface over a
// recorder (§III-A1). From Kepler onward nvidia-smi reports the board's
// live power draw; PowerDraw is that reading.
type NvidiaSMI struct {
	Rec    *Recorder
	Device string
	Limit  float64 // board power limit (TDP), watts
}

// PowerDraw returns the live board draw at virtual time t.
func (n *NvidiaSMI) PowerDraw(t time.Duration) float64 { return n.Rec.PowerAt(n.Device, t) }

// Query renders an nvidia-smi-style line, e.g. "P0 187.3W / 250W".
func (n *NvidiaSMI) Query(t time.Duration) string {
	w := n.PowerDraw(t)
	state := "P8" // idle performance state
	if w > n.Limit*0.3 {
		state = "P2"
	}
	if w > n.Limit*0.7 {
		state = "P0"
	}
	return fmt.Sprintf("%s %.1fW / %.0fW", state, w, n.Limit)
}

// PCM mimics Intel Processor Counter Monitor's package-power counters:
// the CPU cores and the iGPU live in the same package, so PackagePower is
// their sum (§III-A: L3 and the memory controller are shared).
type PCM struct {
	Rec  *Recorder
	CPU  string
	IGPU string
}

// PackagePower returns the package draw (cores + integrated graphics).
func (p *PCM) PackagePower(t time.Duration) float64 {
	w := p.Rec.PowerAt(p.CPU, t)
	if p.IGPU != "" {
		w += p.Rec.PowerAt(p.IGPU, t)
	}
	return w
}

// PackageEnergy integrates package energy over [t0, t1).
func (p *PCM) PackageEnergy(t0, t1 time.Duration) float64 {
	e := p.Rec.EnergyBetween(p.CPU, t0, t1)
	if p.IGPU != "" {
		e += p.Rec.EnergyBetween(p.IGPU, t0, t1)
	}
	return e
}
