// Package repro is the one-shot reproduction harness: it runs every
// experiment of the paper's evaluation — the Fig. 3/4 characterisation,
// the Table II/III selector comparison, and the Fig. 6 unseen-model
// study — checks the measured shapes against the paper's claims, and
// writes a self-contained markdown report. cmd/repro is its CLI.
package repro

import (
	"fmt"
	"io"
	"time"

	"bomw/internal/characterize"
	"bomw/internal/core"
	"bomw/internal/device"
	"bomw/internal/mlsched"
	"bomw/internal/models"
	"bomw/internal/nn"
	"bomw/internal/trace"
)

// Options configures a reproduction run.
type Options struct {
	Seed int64
	// Quick shrinks the sweeps (fewer batch sizes, fewer CV folds) for a
	// fast smoke reproduction; the full run takes a few minutes.
	Quick bool
}

// Check is one paper-claim verification.
type Check struct {
	Name     string
	Claim    string // what the paper states
	Measured string // what this run produced
	Pass     bool
}

// Report is the outcome of a full reproduction run.
type Report struct {
	Checks   []Check
	Started  time.Time
	Duration time.Duration
}

// Passed counts successful checks.
func (r *Report) Passed() (pass, total int) {
	for _, c := range r.Checks {
		if c.Pass {
			pass++
		}
	}
	return pass, len(r.Checks)
}

func (r *Report) add(name, claim string, pass bool, measuredFormat string, args ...interface{}) {
	r.Checks = append(r.Checks, Check{
		Name:     name,
		Claim:    claim,
		Measured: fmt.Sprintf(measuredFormat, args...),
		Pass:     pass,
	})
}

// Run executes the full reproduction and streams the markdown report.
func Run(w io.Writer, opts Options) (*Report, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rep := &Report{Started: time.Now()}

	batches := characterize.PaperBatches()
	folds := 5
	if opts.Quick {
		batches = []int{2, 8, 64, 512, 4096, 32768, 262144}
		folds = 3
	}

	if err := runCharacterisation(rep, batches, opts.Seed); err != nil {
		return nil, err
	}
	if err := runSelectorStudy(rep, batches, folds, opts.Seed); err != nil {
		return nil, err
	}
	if err := runSchedulerStudy(rep, opts.Seed); err != nil {
		return nil, err
	}

	rep.Duration = time.Since(rep.Started)
	return rep, writeMarkdown(w, rep)
}

// runCharacterisation verifies the Fig. 3/4 shapes.
func runCharacterisation(rep *Report, batches []int, seed int64) error {
	sw := characterize.NewSweeper()
	sw.Seed = seed

	crossover := func(spec *nn.Spec, warm bool) (int, error) {
		for _, n := range batches {
			cm, err := sw.MeasureConfig(spec, n, warm, 0)
			if err != nil {
				return 0, err
			}
			cpuIdx, gpuIdx := -1, -1
			for i, p := range cm.Points {
				switch p.Kind.String() {
				case "cpu":
					cpuIdx = i
				case "dgpu":
					gpuIdx = i
				}
			}
			if cpuIdx < 0 || gpuIdx < 0 {
				return 0, fmt.Errorf("repro: missing CPU or dGPU in the profile set")
			}
			if cm.Points[gpuIdx].Latency < cm.Points[cpuIdx].Latency {
				return n, nil
			}
		}
		return -1, nil
	}

	warmSimple, err := crossover(models.Simple(), true)
	if err != nil {
		return err
	}
	idleSimple, err := crossover(models.Simple(), false)
	if err != nil {
		return err
	}
	rep.add("Fig3a-simple-warm", "CPU beats warm dGPU up to ≈2048",
		warmSimple == -1 || warmSimple >= 512, "crossover at %d", warmSimple)
	rep.add("Fig3a-simple-idle", "CPU beats idle dGPU at every batch",
		idleSimple == -1, "crossover at %d (-1 = never)", idleSimple)

	warmCifar, err := crossover(models.Cifar10(), true)
	if err != nil {
		return err
	}
	idleCifar, err := crossover(models.Cifar10(), false)
	if err != nil {
		return err
	}
	rep.add("Fig3e-cifar-warm", "CPU wins only up to ≈8 against a warm dGPU",
		warmCifar > 0 && warmCifar <= 64, "crossover at %d", warmCifar)
	rep.add("Fig3e-cifar-idle", "idle start shifts the crossover to ≈128",
		idleCifar > warmCifar && idleCifar <= 1024, "crossover at %d", idleCifar)

	// Fig. 4: cold starts always cost more energy.
	coldDearer := true
	for _, spec := range models.PaperModels() {
		for _, n := range []int{8, 4096} {
			cmIdle, err := sw.MeasureConfig(spec, n, false, 0)
			if err != nil {
				return err
			}
			cmWarm, err := sw.MeasureConfig(spec, n, true, 0)
			if err != nil {
				return err
			}
			for i, p := range cmIdle.Points {
				if p.Kind.String() == "dgpu" && p.EnergyJ <= cmWarm.Points[i].EnergyJ {
					coldDearer = false
				}
			}
		}
	}
	rep.add("Fig4-cold-energy", "idle-start dGPU always consumes more energy",
		coldDearer, "verified over 5 models × 2 batch sizes")

	// Fig. 3b: idle dGPU converges to warm at large batches.
	msmall := models.MnistSmall()
	idleSmallPt, err := sw.Measure(msmall, dgpuProfile(sw), 512, false, 0)
	if err != nil {
		return err
	}
	warmSmallPt, err := sw.Measure(msmall, dgpuProfile(sw), 512, true, 0)
	if err != nil {
		return err
	}
	idleBigPt, err := sw.Measure(msmall, dgpuProfile(sw), 131072, false, 0)
	if err != nil {
		return err
	}
	warmBigPt, err := sw.Measure(msmall, dgpuProfile(sw), 131072, true, 0)
	if err != nil {
		return err
	}
	smallRatio := float64(idleSmallPt.Latency) / float64(warmSmallPt.Latency)
	bigRatio := float64(idleBigPt.Latency) / float64(warmBigPt.Latency)
	rep.add("Fig3b-convergence", "idle dGPU converges to warm past 64K (super-linear growth)",
		smallRatio > 2 && bigRatio < 1.3 && bigRatio < smallRatio,
		"idle/warm %.1fx at 512 → %.2fx at 128K", smallRatio, bigRatio)

	// Fig. 3 throughput spans: the best device and batch per model.
	var gHi, cHi float64
	for _, spec := range models.PaperModels() {
		for _, n := range []int{4096, 65536, 262144} {
			pg, err := sw.Measure(spec, dgpuProfile(sw), n, true, 0)
			if err != nil {
				return err
			}
			if pg.ThroughputGbps > gHi {
				gHi = pg.ThroughputGbps
			}
			pc, err := sw.Measure(spec, cpuProfile(sw), n, false, 0)
			if err != nil {
				return err
			}
			if pc.ThroughputGbps > cHi {
				cHi = pc.ThroughputGbps
			}
		}
	}
	rep.add("Fig3-spans", "dGPU peaks near 20 Gbit/s and above the CPU peak (≈15)",
		gHi > 7 && gHi > cHi && cHi > 2, "dGPU %.1f Gbit/s, CPU %.1f Gbit/s", gHi, cHi)

	// iGPU draws the least power (§IV-C).
	var cpuW, igpuW, dgpuW float64
	for _, prof := range sw.Profiles {
		pt, err := sw.Measure(models.MnistSmall(), prof, 65536, prof.HasBoost, 0)
		if err != nil {
			return err
		}
		switch prof.Kind.String() {
		case "cpu":
			cpuW = pt.AvgPowerW
		case "igpu":
			igpuW = pt.AvgPowerW
		case "dgpu":
			dgpuW = pt.AvgPowerW
		}
	}
	rep.add("Fig3-igpu-power", "the iGPU is the most power-efficient device in watts",
		igpuW < cpuW && igpuW < dgpuW, "iGPU %.0fW, CPU %.0fW, dGPU %.0fW", igpuW, cpuW, dgpuW)
	return nil
}

func dgpuProfile(sw *characterize.Sweeper) device.Profile {
	for _, p := range sw.Profiles {
		if p.HasBoost {
			return p
		}
	}
	return sw.Profiles[len(sw.Profiles)-1]
}

func cpuProfile(sw *characterize.Sweeper) device.Profile {
	for _, p := range sw.Profiles {
		if p.Kind == device.CPU {
			return p
		}
	}
	return sw.Profiles[0]
}

// runSelectorStudy verifies the Table II/III shapes.
func runSelectorStudy(rep *Report, batches []int, folds int, seed int64) error {
	sw := characterize.NewSweeper()
	sw.Noise = 0.12
	sw.Seed = seed
	set, err := sw.BuildDataset(models.AllModels(), batches, 2)
	if err != nil {
		return err
	}
	rep.add("TableII-dataset", "≈1480 augmented samples over 21 architectures (§V-B)",
		set.Len() > 500, "%d samples", set.Len())

	y := set.Y[characterize.BestThroughput]
	acc := map[string]float64{}
	for name, build := range map[string]mlsched.Builder{
		"forest": func() mlsched.Classifier { return mlsched.NewTunedForest(seed) },
		"tree":   func() mlsched.Classifier { return mlsched.NewTree(mlsched.DefaultTreeConfig()) },
		"linreg": func() mlsched.Classifier { return mlsched.NewLinearRegression() },
		"random": func() mlsched.Classifier { return mlsched.NewRandom(seed) },
	} {
		m, err := mlsched.CrossValidate(build, set.X, y, folds, seed)
		if err != nil {
			return err
		}
		acc[name] = m.Accuracy
	}
	rep.add("TableII-forest-best", "the random forest is the most accurate selector (93.22%)",
		acc["forest"] >= acc["tree"]-0.01 && acc["forest"] > acc["linreg"] && acc["forest"] > 0.85,
		"forest %.1f%%, tree %.1f%%, linreg %.1f%%", 100*acc["forest"], 100*acc["tree"], 100*acc["linreg"])
	rep.add("TableII-baseline", "random selection scores ≈41%",
		acc["random"] > 0.2 && acc["random"] < 0.5, "%.1f%%", 100*acc["random"])

	fm, err := mlsched.CrossValidate(func() mlsched.Classifier { return mlsched.NewTunedForest(seed) },
		set.X, y, folds, seed)
	if err != nil {
		return err
	}
	rep.add("TableIII-f1", "forest F1/precision/recall are mutually consistent (≈93%)",
		fm.F1 > 0.7 && fm.Precision > 0.7 && fm.Recall > 0.7,
		"F1 %.1f%% P %.1f%% R %.1f%%", 100*fm.F1, 100*fm.Precision, 100*fm.Recall)

	// §V-B importance claim.
	forest := mlsched.NewTunedForest(seed)
	if err := forest.Fit(set.X, set.Y[characterize.LowestLatency]); err != nil {
		return err
	}
	imp := forest.FeatureImportance()
	byName := map[string]float64{}
	for i, n := range set.FeatureNames {
		byName[n] = imp[i]
	}
	rep.add("SVB-importance", "batch size and GPU state are the most important parameters",
		byName["log2_batch"] > 0.2 && byName["gpu_warm"] > 0.01,
		"log2_batch %.0f%%, gpu_warm %.1f%%", 100*byName["log2_batch"], 100*byName["gpu_warm"])
	return nil
}

// runSchedulerStudy verifies the Fig. 6 / §VI headlines.
func runSchedulerStudy(rep *Report, seed int64) error {
	sched, err := core.New(core.Config{TrainModels: models.AllModels(), Seed: seed})
	if err != nil {
		return err
	}
	for _, spec := range append(models.PaperModels(), models.UnseenModels()...) {
		if err := sched.LoadModel(spec, seed); err != nil {
			return err
		}
	}
	sw := characterize.NewSweeper()
	score := func(specs []*nn.Spec) (float64, float64, error) {
		correct, total, loss := 0, 0, 0.0
		for _, spec := range specs {
			for _, b := range []int{8, 128, 2048, 32768} {
				for _, warm := range []bool{false, true} {
					cm, err := sw.MeasureConfig(spec, b, warm, 0)
					if err != nil {
						return 0, 0, err
					}
					feats := characterize.Features(spec.Descriptor(), b, warm)
					pred := sched.Classifier(core.BestThroughput).Predict(feats)
					total++
					if pred == cm.Best(characterize.BestThroughput) {
						correct++
					}
					loss += cm.LossVersusIdeal(characterize.BestThroughput, pred)
				}
			}
		}
		return float64(correct) / float64(total), loss / float64(total), nil
	}
	accTrained, lossTrained, err := score(models.PaperModels())
	if err != nil {
		return err
	}
	accUnseen, lossUnseen, err := score(models.UnseenModels())
	if err != nil {
		return err
	}
	rep.add("VI-trained-accuracy", "92.5% correct device predictions on trained models",
		accTrained > 0.8, "%.1f%% (loss %.1f%%)", 100*accTrained, 100*lossTrained)
	rep.add("Fig6-unseen-accuracy", "91% correct device predictions on unseen models",
		accUnseen > 0.75, "%.1f%% (loss %.1f%%)", 100*accUnseen, 100*lossUnseen)
	rep.add("VI-loss", "performance loss from wrong predictions below 5%",
		lossTrained < 0.05 && lossUnseen < 0.08, "trained %.1f%%, unseen %.1f%%", 100*lossTrained, 100*lossUnseen)

	tr, err := trace.Diurnal(120, 20, 400, 2*time.Second,
		[]string{"simple", "mnist-small", "mnist-cnn"}, []int{2, 32, 512, 8192}, seed)
	if err != nil {
		return err
	}
	adaptive, err := sched.Replay(tr, core.EnergyEfficiency)
	if err != nil {
		return err
	}
	dgpuName := ""
	for _, d := range sched.Devices() {
		dgpuName = d // last device is the dGPU in the default set
	}
	static, err := sched.ReplayStatic(tr, dgpuName)
	if err != nil {
		return err
	}
	saving := 1 - adaptive.TotalEnergyJ/static.TotalEnergyJ
	rep.add("VI-energy-saving", "the energy policy saves energy (paper: up to 10%)",
		saving > 0, "%.1f%% vs always-%s", 100*saving, dgpuName)
	return nil
}

// writeMarkdown renders the report.
func writeMarkdown(w io.Writer, rep *Report) error {
	pass, total := rep.Passed()
	if _, err := fmt.Fprintf(w, "# bomw reproduction report\n\n%d/%d paper-shape checks passed · %s\n\n",
		pass, total, rep.Duration.Round(time.Second)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| Check | Paper claim | Measured | Verdict |\n|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, c := range rep.Checks {
		verdict := "✓ PASS"
		if !c.Pass {
			verdict = "✗ FAIL"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.Name, c.Claim, c.Measured, verdict); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\nSeeded and deterministic: rerunning reproduces this table exactly.\n")
	return err
}
