package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickReproductionPasses(t *testing.T) {
	var buf bytes.Buffer
	rep, err := Run(&buf, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	pass, total := rep.Passed()
	if total < 10 {
		t.Fatalf("only %d checks ran", total)
	}
	if pass != total {
		for _, c := range rep.Checks {
			if !c.Pass {
				t.Errorf("FAILED check %s: claim %q, measured %s", c.Name, c.Claim, c.Measured)
			}
		}
		t.Fatalf("%d/%d checks passed", pass, total)
	}
	out := buf.String()
	for _, want := range []string{
		"# bomw reproduction report",
		"Fig3a-simple-warm",
		"TableII-forest-best",
		"Fig6-unseen-accuracy",
		"VI-energy-saving",
		"✓ PASS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Fatal("report contains failures")
	}
}

func TestReportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := Run(&a, Options{Quick: true, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(&b, Options{Quick: true, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	// Strip the wall-clock duration line before comparing.
	strip := func(s string) string {
		lines := strings.Split(s, "\n")
		var out []string
		for _, l := range lines {
			if strings.Contains(l, "checks passed ·") {
				continue
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	if strip(a.String()) != strip(b.String()) {
		t.Fatal("same-seed reproductions differ")
	}
}
