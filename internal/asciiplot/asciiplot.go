// Package asciiplot renders multi-series line charts as terminal text, so
// cmd/characterize can draw the shapes of Figs. 3-4 without any plotting
// dependency. Axes may be logarithmic, matching the paper's log-log
// presentation.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart configures a render.
type Chart struct {
	Title  string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 18)
	LogX   bool
	LogY   bool
	YLabel string
	XLabel string
}

// markers assigns one glyph per series, cycling when exhausted.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render draws the series into a text chart.
func (c Chart) Render(series []Series) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("asciiplot: no series")
	}
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 18
	}

	tx := func(v float64) float64 { return v }
	ty := func(v float64) float64 { return v }
	if c.LogX {
		tx = math.Log10
	}
	if c.LogY {
		ty = math.Log10
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("asciiplot: series %q has %d x but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if (c.LogX && x <= 0) || (c.LogY && y <= 0) {
				continue // log axes skip non-positive points
			}
			x, y = tx(x), ty(y)
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		return "", fmt.Errorf("asciiplot: no plottable points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if (c.LogX && x <= 0) || (c.LogY && y <= 0) {
				continue
			}
			col := int((tx(x) - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((ty(y)-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	axisVal := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	topLabel := fmt.Sprintf("%.3g", axisVal(maxY, c.LogY))
	botLabel := fmt.Sprintf("%.3g", axisVal(minY, c.LogY))
	pad := len(topLabel)
	if len(botLabel) > pad {
		pad = len(botLabel)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, topLabel)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", pad, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-10.4g%s%10.4g", strings.Repeat(" ", pad),
		axisVal(minX, c.LogX), strings.Repeat(" ", maxInt(1, w-20)), axisVal(maxX, c.LogX))
	if c.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", c.XLabel)
	}
	b.WriteByte('\n')
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "  y: %s\n", c.YLabel)
	}
	return b.String(), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
