package asciiplot

import (
	"strings"
	"testing"
)

func twoSeries() []Series {
	return []Series{
		{Name: "cpu", X: []float64{1, 2, 4, 8}, Y: []float64{1, 2, 3, 4}},
		{Name: "gpu", X: []float64{1, 2, 4, 8}, Y: []float64{4, 3, 2, 1}},
	}
}

func TestRenderBasics(t *testing.T) {
	out, err := Chart{Title: "demo", Width: 40, Height: 10, XLabel: "batch", YLabel: "Gbit/s"}.Render(twoSeries())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "* cpu", "o gpu", "(batch)", "y: Gbit/s", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 10 {
		t.Fatalf("plot rows = %d, want 10", plotLines)
	}
}

func TestRenderMarksExtremes(t *testing.T) {
	out, err := Chart{Width: 20, Height: 5}.Render([]Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{0, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	// Max value label on the top row, min on the bottom plot row.
	if !strings.Contains(lines[0], "10") {
		t.Fatalf("top label missing: %q", lines[0])
	}
	// The first plot row holds the max point's marker at the right edge.
	if !strings.Contains(lines[0], "*") {
		t.Fatalf("max marker missing from top row: %q", lines[0])
	}
}

func TestRenderLogAxes(t *testing.T) {
	s := []Series{{
		Name: "pow",
		X:    []float64{1, 10, 100, 1000},
		Y:    []float64{1, 10, 100, 1000},
	}}
	out, err := Chart{Width: 31, Height: 11, LogX: true, LogY: true}.Render(s)
	if err != nil {
		t.Fatal(err)
	}
	// On log-log axes a power law is a straight diagonal: markers appear
	// on distinct rows AND distinct columns.
	rows := map[int]bool{}
	for i, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && strings.Contains(line, "*") {
			rows[i] = true
		}
	}
	if len(rows) != 4 {
		t.Fatalf("log-log power law should hit 4 distinct rows, got %d:\n%s", len(rows), out)
	}
}

func TestRenderSkipsNonPositiveOnLog(t *testing.T) {
	s := []Series{{Name: "s", X: []float64{0, 1, 10}, Y: []float64{-5, 1, 10}}}
	if _, err := (Chart{LogX: true, LogY: true}).Render(s); err != nil {
		t.Fatalf("log render should skip non-positive points, got %v", err)
	}
	// All points non-positive → nothing plottable.
	bad := []Series{{Name: "s", X: []float64{0}, Y: []float64{0}}}
	if _, err := (Chart{LogX: true}).Render(bad); err == nil {
		t.Fatal("unplottable series accepted")
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := (Chart{}).Render(nil); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := (Chart{}).Render([]Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}
	if _, err := (Chart{}).Render(s); err != nil {
		t.Fatalf("constant series should render: %v", err)
	}
}

func TestMarkerCycling(t *testing.T) {
	var many []Series
	for i := 0; i < 10; i++ {
		many = append(many, Series{Name: "s", X: []float64{1}, Y: []float64{float64(i + 1)}})
	}
	out, err := Chart{}.Render(many)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, string(markers[0])) {
		t.Fatal("marker cycling broke legend")
	}
}
