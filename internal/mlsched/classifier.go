// Package mlsched is the scheduler's machine-learning toolbox: the six
// device-selection models the paper evaluates (random baseline, linear
// regression, SVM, k-nearest-neighbours, feed-forward neural network,
// decision tree and random forest — Table II), implemented from scratch,
// plus the stratified k-fold nested cross-validation, grid search and
// F1/precision/recall metrics of §V-C and Table III.
//
// The paper trains these with scikit-learn; bomw reimplements them on
// stdlib only, with deterministic seeding so experiments reproduce
// exactly.
package mlsched

import (
	"fmt"
	"math"
	"math/rand"
)

// Classifier predicts a class index from a numeric feature vector.
type Classifier interface {
	// Fit trains on rows X with labels y in [0, classes).
	Fit(X [][]float64, y []int) error
	// Predict returns the class for one feature vector.
	Predict(x []float64) int
	// Name identifies the model family, as listed in Table II.
	Name() string
}

// Builder constructs a fresh, untrained classifier; cross-validation uses
// it to train one instance per fold.
type Builder func() Classifier

// PredictBatch applies a classifier to many rows.
func PredictBatch(c Classifier, X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = c.Predict(x)
	}
	return out
}

// validateXY checks the common Fit preconditions and returns the number
// of classes (max label + 1).
func validateXY(X [][]float64, y []int) (classes int, err error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, fmt.Errorf("mlsched: need matching non-empty X (%d) and y (%d)", len(X), len(y))
	}
	w := len(X[0])
	if w == 0 {
		return 0, fmt.Errorf("mlsched: empty feature vectors")
	}
	for i, row := range X {
		if len(row) != w {
			return 0, fmt.Errorf("mlsched: row %d has %d features, want %d", i, len(row), w)
		}
	}
	for i, label := range y {
		if label < 0 {
			return 0, fmt.Errorf("mlsched: negative label %d at row %d", label, i)
		}
		if label+1 > classes {
			classes = label + 1
		}
	}
	return classes, nil
}

// Random is the paper's baseline: uniformly random device selection
// ("Baseline (Random Selection)", Table II).
type Random struct {
	rng     *rand.Rand
	classes int
}

// NewRandom builds the baseline with a deterministic seed.
func NewRandom(seed int64) *Random { return &Random{rng: rand.New(rand.NewSource(seed))} }

// Fit implements Classifier; the baseline only learns the class count.
func (r *Random) Fit(X [][]float64, y []int) error {
	classes, err := validateXY(X, y)
	if err != nil {
		return err
	}
	r.classes = classes
	return nil
}

// Predict implements Classifier.
func (r *Random) Predict(x []float64) int {
	if r.classes == 0 {
		return 0
	}
	return r.rng.Intn(r.classes)
}

// Name implements Classifier.
func (r *Random) Name() string { return "Baseline (Random Selection)" }

// standardizer holds per-feature mean/stddev for z-scoring, used by the
// distance- and gradient-based models.
type standardizer struct {
	mean, std []float64
}

func fitStandardizer(X [][]float64) *standardizer {
	n := len(X)
	w := len(X[0])
	s := &standardizer{mean: make([]float64, w), std: make([]float64, w)}
	for _, row := range X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(n)
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] /= float64(n)
		if s.std[j] < 1e-12 {
			s.std[j] = 1
		} else {
			s.std[j] = math.Sqrt(s.std[j])
		}
	}
	return s
}

func (s *standardizer) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

func (s *standardizer) applyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.apply(row)
	}
	return out
}
