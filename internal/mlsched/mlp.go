package mlsched

import (
	"math"
	"math/rand"
)

// MLP is the paper's "Feed Forward Neural Network" selector (Table II):
// a small multilayer perceptron trained from scratch with mini-batch SGD
// and softmax cross-entropy on standardized features.
type MLP struct {
	Hidden []int
	Epochs int
	LR     float64
	Batch  int
	Seed   int64

	std     *standardizer
	weights [][][]float64 // [layer][out][in+1]
	classes int
}

// NewMLP builds the selector with the defaults used in the evaluation.
func NewMLP(seed int64) *MLP {
	return &MLP{Hidden: []int{32, 16}, Epochs: 120, LR: 0.05, Batch: 32, Seed: seed}
}

// Name implements Classifier.
func (m *MLP) Name() string { return "Feed Forward Neural Network" }

// Fit implements Classifier.
func (m *MLP) Fit(X [][]float64, y []int) error {
	classes, err := validateXY(X, y)
	if err != nil {
		return err
	}
	m.classes = classes
	m.std = fitStandardizer(X)
	Z := m.std.applyAll(X)

	sizes := append([]int{len(Z[0])}, m.Hidden...)
	sizes = append(sizes, classes)
	rng := rand.New(rand.NewSource(m.Seed))
	m.weights = make([][][]float64, len(sizes)-1)
	for l := range m.weights {
		in, out := sizes[l], sizes[l+1]
		m.weights[l] = make([][]float64, out)
		limit := math.Sqrt(6 / float64(in+out))
		for o := range m.weights[l] {
			row := make([]float64, in+1)
			for j := 0; j < in; j++ {
				row[j] = (rng.Float64()*2 - 1) * limit
			}
			m.weights[l][o] = row
		}
	}

	order := make([]int, len(Z))
	for i := range order {
		order[i] = i
	}
	batch := m.Batch
	if batch <= 0 || batch > len(Z) {
		batch = len(Z)
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < len(order); lo += batch {
			hi := lo + batch
			if hi > len(order) {
				hi = len(order)
			}
			m.step(Z, y, order[lo:hi])
		}
	}
	return nil
}

// step applies one mini-batch SGD update.
func (m *MLP) step(Z [][]float64, y []int, batch []int) {
	grads := make([][][]float64, len(m.weights))
	for l := range grads {
		grads[l] = make([][]float64, len(m.weights[l]))
		for o := range grads[l] {
			grads[l][o] = make([]float64, len(m.weights[l][o]))
		}
	}
	for _, i := range batch {
		acts, zs := m.forward(Z[i])
		// Softmax cross-entropy delta on the output layer.
		out := acts[len(acts)-1]
		delta := make([]float64, len(out))
		copy(delta, out)
		delta[y[i]] -= 1
		for l := len(m.weights) - 1; l >= 0; l-- {
			in := acts[l]
			for o, d := range delta {
				g := grads[l][o]
				for j, v := range in {
					g[j] += d * v
				}
				g[len(in)] += d // bias
			}
			if l == 0 {
				break
			}
			next := make([]float64, len(in))
			for j := range next {
				var s float64
				for o, d := range delta {
					s += d * m.weights[l][o][j]
				}
				if zs[l-1][j] <= 0 { // ReLU derivative
					s = 0
				}
				next[j] = s
			}
			delta = next
		}
	}
	scale := m.LR / float64(len(batch))
	for l := range m.weights {
		for o := range m.weights[l] {
			for j := range m.weights[l][o] {
				m.weights[l][o][j] -= scale * grads[l][o][j]
			}
		}
	}
}

// forward returns activations per layer (acts[0] = input) and the
// pre-activation values of each hidden layer.
func (m *MLP) forward(x []float64) (acts [][]float64, zs [][]float64) {
	acts = [][]float64{x}
	cur := x
	for l, layer := range m.weights {
		out := make([]float64, len(layer))
		for o, row := range layer {
			v := row[len(cur)]
			for j, c := range cur {
				v += row[j] * c
			}
			out[o] = v
		}
		if l < len(m.weights)-1 {
			zs = append(zs, append([]float64(nil), out...))
			for j := range out {
				if out[j] < 0 {
					out[j] = 0
				}
			}
		} else {
			softmax64(out)
		}
		acts = append(acts, out)
		cur = out
	}
	return acts, zs
}

func softmax64(v []float64) {
	maxv := v[0]
	for _, x := range v[1:] {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for i, x := range v {
		v[i] = math.Exp(x - maxv)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	if m.weights == nil {
		return 0
	}
	acts, _ := m.forward(m.std.apply(x))
	out := acts[len(acts)-1]
	best := 0
	for c, v := range out {
		if v > out[best] {
			best = c
		}
	}
	return best
}
