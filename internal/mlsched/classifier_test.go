package mlsched

import (
	"math/rand"
	"testing"
)

// blobs generates a separable 3-class dataset: Gaussian clusters around
// distinct centroids in nf dimensions.
func blobs(n, nf int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centroids := [][]float64{}
	for c := 0; c < 3; c++ {
		row := make([]float64, nf)
		for j := range row {
			row[j] = float64(c*4) + rng.Float64()
		}
		centroids = append(centroids, row)
	}
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		y[i] = c
		row := make([]float64, nf)
		for j := range row {
			row[j] = centroids[c][j] + rng.NormFloat64()*0.5
		}
		X[i] = row
	}
	return X, y
}

// xorish generates a 2-class dataset that is NOT linearly separable
// (XOR pattern), to separate tree-family from linear-family behaviour.
func xorish(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		X[i] = []float64{a, b}
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	return X, y
}

func accuracyOn(t *testing.T, c Classifier, X [][]float64, y []int) float64 {
	t.Helper()
	if err := c.Fit(X, y); err != nil {
		t.Fatalf("%s: Fit: %v", c.Name(), err)
	}
	m, err := Evaluate(y, PredictBatch(c, X), 3)
	if err != nil {
		t.Fatal(err)
	}
	return m.Accuracy
}

func TestAllClassifiersLearnSeparableBlobs(t *testing.T) {
	X, y := blobs(300, 5, 1)
	for _, c := range []Classifier{
		NewTree(DefaultTreeConfig()),
		NewForest(DefaultForestConfig()),
		NewKNN(5),
		NewLinearRegression(),
		NewSVM(1),
		NewMLP(1),
	} {
		if acc := accuracyOn(t, c, X, y); acc < 0.9 {
			t.Fatalf("%s: training accuracy %.2f on separable blobs, want ≥0.9", c.Name(), acc)
		}
	}
}

func TestTreeBeatsLinearOnXOR(t *testing.T) {
	X, y := xorish(400, 2)
	tree := NewTree(DefaultTreeConfig())
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lin := NewLinearRegression()
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mt, _ := Evaluate(y, PredictBatch(tree, X), 2)
	ml, _ := Evaluate(y, PredictBatch(lin, X), 2)
	if mt.Accuracy < 0.9 {
		t.Fatalf("tree should solve XOR, got %.2f", mt.Accuracy)
	}
	if ml.Accuracy > 0.75 {
		t.Fatalf("linear model should struggle on XOR, got %.2f", ml.Accuracy)
	}
	if mt.Accuracy <= ml.Accuracy {
		t.Fatal("tree-family must beat linear on non-linear boundaries (Table II shape)")
	}
}

func TestFitValidation(t *testing.T) {
	cases := []struct {
		X [][]float64
		y []int
	}{
		{nil, nil},
		{[][]float64{{1}}, []int{0, 1}},
		{[][]float64{{}}, []int{0}},
		{[][]float64{{1, 2}, {1}}, []int{0, 1}},
		{[][]float64{{1}, {2}}, []int{0, -1}},
	}
	for _, c := range []Classifier{
		NewTree(DefaultTreeConfig()), NewForest(DefaultForestConfig()),
		NewKNN(3), NewLinearRegression(), NewSVM(1), NewMLP(1), NewRandom(1),
	} {
		for i, cs := range cases {
			if err := c.Fit(cs.X, cs.y); err == nil {
				t.Fatalf("%s: case %d accepted invalid input", c.Name(), i)
			}
		}
	}
}

func TestPredictBeforeFitIsSafe(t *testing.T) {
	for _, c := range []Classifier{
		NewTree(DefaultTreeConfig()), NewForest(DefaultForestConfig()),
		NewKNN(3), NewLinearRegression(), NewSVM(1), NewMLP(1), NewRandom(1),
	} {
		if got := c.Predict([]float64{1, 2, 3}); got != 0 {
			t.Fatalf("%s: untrained Predict = %d, want 0", c.Name(), got)
		}
	}
}

func TestRandomBaselineNearChance(t *testing.T) {
	X, y := blobs(3000, 3, 2)
	r := NewRandom(3)
	if err := r.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	m, _ := Evaluate(y, PredictBatch(r, X), 3)
	if m.Accuracy < 0.25 || m.Accuracy > 0.42 {
		t.Fatalf("random baseline accuracy %.2f, want near 1/3 (paper: 41%%)", m.Accuracy)
	}
	if r.Name() != "Baseline (Random Selection)" {
		t.Fatalf("baseline name %q", r.Name())
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	X, y := blobs(300, 5, 4)
	tree := NewTree(TreeConfig{MaxDepth: 2, Criterion: Entropy, MinSamplesLeaf: 1})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 2 {
		t.Fatalf("tree depth %d exceeds max 2", tree.Depth())
	}
	if tree.Leaves() == 0 {
		t.Fatal("tree has no leaves")
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	X, y := blobs(60, 3, 5)
	big := NewTree(TreeConfig{MaxDepth: 10, MinSamplesLeaf: 25})
	small := NewTree(TreeConfig{MaxDepth: 10, MinSamplesLeaf: 1})
	if err := big.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := small.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if big.Leaves() >= small.Leaves() {
		t.Fatalf("min_samples_leaf should prune: %d vs %d leaves", big.Leaves(), small.Leaves())
	}
}

func TestTreeCriteriaBothWork(t *testing.T) {
	X, y := blobs(200, 4, 6)
	for _, crit := range []Criterion{Gini, Entropy} {
		tree := NewTree(TreeConfig{MaxDepth: 8, Criterion: crit})
		if err := tree.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		m, _ := Evaluate(y, PredictBatch(tree, X), 3)
		if m.Accuracy < 0.9 {
			t.Fatalf("criterion %s accuracy %.2f", crit, m.Accuracy)
		}
	}
	if Gini.String() != "gini" || Entropy.String() != "entropy" {
		t.Fatal("criterion names must match Table I")
	}
}

func TestTreeDeterministicGivenSeed(t *testing.T) {
	X, y := blobs(200, 6, 7)
	mk := func() *Tree {
		tr := NewTree(TreeConfig{MaxDepth: 6, MaxFeatures: 2, Seed: 42})
		if err := tr.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(), mk()
	for i := 0; i < 50; i++ {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same-seed trees disagree")
		}
	}
}

func TestForestDeterministicAndVoting(t *testing.T) {
	X, y := blobs(240, 5, 8)
	cfg := ForestConfig{NEstimators: 15, MaxDepth: 6, Seed: 9}
	a, b := NewForest(cfg), NewForest(cfg)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if a.Trees() != 15 {
		t.Fatalf("forest has %d trees, want 15", a.Trees())
	}
	for i := range X {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestForestGeneralizesBetterThanTreeOnNoisy(t *testing.T) {
	// With label noise, a full-depth tree overfits; the forest's vote
	// should generalise at least as well on held-out data.
	X, y := blobs(600, 6, 10)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < len(y)/10; i++ { // 10% label noise
		y[rng.Intn(len(y))] = rng.Intn(3)
	}
	mTree, err := CrossValidate(func() Classifier { return NewTree(DefaultTreeConfig()) }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	mForest, err := CrossValidate(func() Classifier { return NewForest(DefaultForestConfig()) }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mForest.Accuracy+0.02 < mTree.Accuracy {
		t.Fatalf("forest CV accuracy %.3f well below tree %.3f", mForest.Accuracy, mTree.Accuracy)
	}
}

func TestKNNMajorityVote(t *testing.T) {
	X := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {5, 5}, {5.1, 5}, {5, 5.1}}
	y := []int{0, 0, 0, 1, 1, 1}
	knn := NewKNN(3)
	if err := knn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if knn.Predict([]float64{0.05, 0.05}) != 0 {
		t.Fatal("kNN misclassified near cluster 0")
	}
	if knn.Predict([]float64{4.9, 5.2}) != 1 {
		t.Fatal("kNN misclassified near cluster 1")
	}
	if NewKNN(0).K != 5 {
		t.Fatal("kNN default k should be 5")
	}
	// k larger than the dataset degrades to a global vote, not a panic.
	big := NewKNN(100)
	if err := big.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	_ = big.Predict([]float64{0, 0})
}

func TestStandardizerHandlesConstantFeature(t *testing.T) {
	X := [][]float64{{1, 7}, {2, 7}, {3, 7}}
	s := fitStandardizer(X)
	z := s.apply([]float64{2, 7})
	if z[0] != 0 {
		t.Fatalf("standardized mean feature = %g, want 0", z[0])
	}
	if z[1] != 0 {
		t.Fatalf("constant feature should standardize to 0, got %g", z[1])
	}
}

func TestClassifierNamesMatchTableII(t *testing.T) {
	want := map[string]Classifier{
		"Linear Regression":           NewLinearRegression(),
		"SVM":                         NewSVM(1),
		"k-NN":                        NewKNN(5),
		"Feed Forward Neural Network": NewMLP(1),
		"Random Forest":               NewForest(DefaultForestConfig()),
		"Decision Tree":               NewTree(DefaultTreeConfig()),
	}
	for name, c := range want {
		if c.Name() != name {
			t.Fatalf("Name() = %q, want %q", c.Name(), name)
		}
	}
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	// Two informative features, three pure-noise features: the
	// importances must concentrate on the first two.
	rng := rand.New(rand.NewSource(40))
	n := 400
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		X[i] = []float64{
			float64(c)*3 + rng.NormFloat64()*0.3,
			float64(c)*-2 + rng.NormFloat64()*0.3,
			rng.NormFloat64(),
			rng.NormFloat64(),
			rng.NormFloat64(),
		}
	}
	f := NewTunedForest(1)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	if len(imp) != 5 {
		t.Fatalf("importance length %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %g", v)
		}
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("importances sum to %g, want 1", sum)
	}
	if imp[0]+imp[1] < 0.8 {
		t.Fatalf("signal features got only %.2f of the importance: %v", imp[0]+imp[1], imp)
	}
	// Untrained forests report nil.
	if NewTunedForest(1).FeatureImportance() != nil {
		t.Fatal("untrained forest should have nil importance")
	}
}
