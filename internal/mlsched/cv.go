package mlsched

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// StratifiedKFold splits sample indices into k folds preserving per-class
// proportions (§V-C: the device classes are imbalanced, so plain k-fold
// would skew training). The shuffle is seeded for reproducibility.
func StratifiedKFold(y []int, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("mlsched: k-fold needs k ≥ 2, got %d", k)
	}
	if len(y) < k {
		return nil, fmt.Errorf("mlsched: %d samples cannot fill %d folds", len(y), k)
	}
	byClass := map[int][]int{}
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	rng := rand.New(rand.NewSource(seed))
	folds := make([][]int, k)
	// Deterministic class order.
	maxClass := 0
	for c := range byClass {
		if c > maxClass {
			maxClass = c
		}
	}
	next := 0
	for c := 0; c <= maxClass; c++ {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			folds[next%k] = append(folds[next%k], i)
			next++
		}
	}
	return folds, nil
}

// CrossValidate trains one classifier per fold on the complement and
// evaluates on the fold, returning pooled metrics over all held-out
// predictions. Folds run in parallel (§V-C: "we can still parallelize
// the execution of each of the outer folds").
func CrossValidate(build Builder, X [][]float64, y []int, k int, seed int64) (Metrics, error) {
	classes, err := validateXY(X, y)
	if err != nil {
		return Metrics{}, err
	}
	folds, err := StratifiedKFold(y, k, seed)
	if err != nil {
		return Metrics{}, err
	}
	pred := make([]int, len(y))
	var wg sync.WaitGroup
	errs := make([]error, len(folds))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for f, test := range folds {
		wg.Add(1)
		go func(f int, test []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			inTest := make(map[int]bool, len(test))
			for _, i := range test {
				inTest[i] = true
			}
			var tx [][]float64
			var ty []int
			for i := range X {
				if !inTest[i] {
					tx = append(tx, X[i])
					ty = append(ty, y[i])
				}
			}
			c := build()
			if err := c.Fit(tx, ty); err != nil {
				errs[f] = err
				return
			}
			for _, i := range test {
				pred[i] = c.Predict(X[i])
			}
		}(f, test)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return Metrics{}, e
		}
	}
	return Evaluate(y, pred, classes)
}

// ForestGrid is the hyperparameter grid of Table I.
type ForestGrid struct {
	NEstimators    []int
	MaxDepth       []int
	Criteria       []Criterion
	MinSamplesLeaf []int
}

// PaperForestGrid returns exactly the values of Table I.
func PaperForestGrid() ForestGrid {
	return ForestGrid{
		NEstimators:    []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 100, 200},
		MaxDepth:       []int{3, 4, 5, 6, 7, 8, 9, 10},
		Criteria:       []Criterion{Entropy, Gini},
		MinSamplesLeaf: []int{1, 2, 3, 4, 5, 10, 15},
	}
}

// Size returns the number of grid points.
func (g ForestGrid) Size() int {
	return len(g.NEstimators) * len(g.MaxDepth) * len(g.Criteria) * len(g.MinSamplesLeaf)
}

// Configs enumerates every grid point.
func (g ForestGrid) Configs(seed int64) []ForestConfig {
	out := make([]ForestConfig, 0, g.Size())
	for _, n := range g.NEstimators {
		for _, d := range g.MaxDepth {
			for _, c := range g.Criteria {
				for _, m := range g.MinSamplesLeaf {
					out = append(out, ForestConfig{
						NEstimators: n, MaxDepth: d, Criterion: c, MinSamplesLeaf: m, Seed: seed,
					})
				}
			}
		}
	}
	return out
}

// NestedCVResult reports the outcome of the nested cross-validation of
// §V-C: the outer-fold generalisation metrics and the hyperparameters the
// inner search selected most often.
type NestedCVResult struct {
	Outer      Metrics
	BestConfig ForestConfig
	// PerFoldBest records the winning config of each outer fold's inner
	// search.
	PerFoldBest []ForestConfig
}

// NestedCrossValidate runs stratified nested cross-validation for the
// random forest: the inner loop grid-searches hyperparameters on the
// training portion of each outer fold; the outer loop scores the refit
// winner on the held-out fold. grid should usually be a reduced version
// of Table I (the full 1344-point grid is exercised by cmd/schedtrain).
func NestedCrossValidate(X [][]float64, y []int, outerK, innerK int, grid ForestGrid, seed int64) (NestedCVResult, error) {
	classes, err := validateXY(X, y)
	if err != nil {
		return NestedCVResult{}, err
	}
	outer, err := StratifiedKFold(y, outerK, seed)
	if err != nil {
		return NestedCVResult{}, err
	}
	configs := grid.Configs(seed)
	if len(configs) == 0 {
		return NestedCVResult{}, fmt.Errorf("mlsched: empty hyperparameter grid")
	}
	pred := make([]int, len(y))
	res := NestedCVResult{PerFoldBest: make([]ForestConfig, len(outer))}

	for f, test := range outer {
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		var tx [][]float64
		var ty []int
		for i := range X {
			if !inTest[i] {
				tx = append(tx, X[i])
				ty = append(ty, y[i])
			}
		}
		// Inner loop: grid search by stratified CV on the training part.
		best, bestScore := configs[0], -1.0
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for _, cfg := range configs {
			wg.Add(1)
			go func(cfg ForestConfig) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				m, err := CrossValidate(func() Classifier { return NewForest(cfg) }, tx, ty, innerK, seed+1)
				if err != nil {
					return
				}
				mu.Lock()
				if m.F1 > bestScore {
					bestScore, best = m.F1, cfg
				}
				mu.Unlock()
			}(cfg)
		}
		wg.Wait()
		res.PerFoldBest[f] = best

		// Refit the winner on the full training portion, score held out.
		forest := NewForest(best)
		if err := forest.Fit(tx, ty); err != nil {
			return NestedCVResult{}, err
		}
		for _, i := range test {
			pred[i] = forest.Predict(X[i])
		}
	}
	res.Outer, err = Evaluate(y, pred, classes)
	if err != nil {
		return NestedCVResult{}, err
	}
	// Report the config chosen most often across folds.
	counts := map[ForestConfig]int{}
	for _, c := range res.PerFoldBest {
		counts[c]++
	}
	bestCount := -1
	for c, n := range counts {
		if n > bestCount {
			bestCount, res.BestConfig = n, c
		}
	}
	return res, nil
}
