package mlsched

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// ForestConfig holds the random-forest hyperparameters of Table I.
type ForestConfig struct {
	NEstimators    int
	MaxDepth       int
	Criterion      Criterion
	MinSamplesLeaf int
	Seed           int64
}

// DefaultForestConfig mirrors the paper's tuned forest (§V-C).
func DefaultForestConfig() ForestConfig {
	return ForestConfig{NEstimators: 50, MaxDepth: 10, Criterion: Gini, MinSamplesLeaf: 1, Seed: 1}
}

// Forest is a bagged ensemble of CART trees with √features subsampling
// per split — the paper's chosen scheduler model (92.5-93.2% accuracy).
type Forest struct {
	// AllFeatures disables per-split feature subsampling (bagging-only
	// randomness), which helps on low-dimensional feature spaces like
	// the scheduler's nine features.
	AllFeatures bool

	cfg     ForestConfig
	trees   []*Tree
	classes int
}

// NewTunedForest returns the scheduler's production configuration — the
// settings the paper's nested grid search converges on: 100 estimators,
// depth 10, gini, one sample per leaf, with bagging-only randomness.
func NewTunedForest(seed int64) *Forest {
	f := NewForest(ForestConfig{NEstimators: 100, MaxDepth: 10, Criterion: Gini, MinSamplesLeaf: 1, Seed: seed})
	f.AllFeatures = true
	return f
}

// NewForest builds an untrained forest.
func NewForest(cfg ForestConfig) *Forest {
	if cfg.NEstimators <= 0 {
		cfg.NEstimators = 50
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 10
	}
	if cfg.MinSamplesLeaf <= 0 {
		cfg.MinSamplesLeaf = 1
	}
	return &Forest{cfg: cfg}
}

// Name implements Classifier.
func (f *Forest) Name() string { return "Random Forest" }

// Trees returns the number of trained trees.
func (f *Forest) Trees() int { return len(f.trees) }

// Fit implements Classifier: each tree trains on a bootstrap resample of
// the data with feature subsampling at every split. Trees train in
// parallel, mirroring the paper's parallelised fold training (§V-C).
func (f *Forest) Fit(X [][]float64, y []int) error {
	classes, err := validateXY(X, y)
	if err != nil {
		return err
	}
	f.classes = classes
	n := len(X)
	maxFeat := int(math.Ceil(math.Sqrt(float64(len(X[0])))))
	if f.AllFeatures {
		maxFeat = 0
	}

	f.trees = make([]*Tree, f.cfg.NEstimators)
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for t := 0; t < f.cfg.NEstimators; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(f.cfg.Seed + int64(t)*7919))
			bx := make([][]float64, n)
			by := make([]int, n)
			for i := 0; i < n; i++ {
				j := rng.Intn(n)
				bx[i], by[i] = X[j], y[j]
			}
			tree := NewTree(TreeConfig{
				MaxDepth:       f.cfg.MaxDepth,
				Criterion:      f.cfg.Criterion,
				MinSamplesLeaf: f.cfg.MinSamplesLeaf,
				MaxFeatures:    maxFeat,
				Seed:           f.cfg.Seed + int64(t)*104729,
			})
			if err := tree.Fit(bx, by); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			f.trees[t] = tree
		}(t)
	}
	wg.Wait()
	return firstErr
}

// Predict implements Classifier by majority vote.
func (f *Forest) Predict(x []float64) int {
	votes := f.Votes(x)
	best := 0
	for c, v := range votes {
		if v > votes[best] {
			best = c
		}
	}
	return best
}

// FeatureImportance averages the normalised impurity-decrease importance
// over all trees (nil before training).
func (f *Forest) FeatureImportance() []float64 {
	if len(f.trees) == 0 {
		return nil
	}
	var out []float64
	for _, t := range f.trees {
		imp := t.FeatureImportance()
		if out == nil {
			out = make([]float64, len(imp))
		}
		for i, v := range imp {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}

// Votes returns per-class tree votes (all zero before training).
func (f *Forest) Votes(x []float64) []int {
	votes := make([]int, f.classes)
	if f.classes == 0 {
		return []int{0}
	}
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	return votes
}

// Rank implements Ranker: classes ordered by descending vote count
// (ties broken by class index).
func (f *Forest) Rank(x []float64) []int {
	votes := f.Votes(x)
	order := make([]int, len(votes))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // stable insertion by votes desc
		for j := i; j > 0 && votes[order[j]] > votes[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// Ranker is implemented by classifiers that can order all classes by
// preference, enabling the scheduler's overload spill-over.
type Ranker interface {
	Rank(x []float64) []int
}
