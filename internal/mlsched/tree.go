package mlsched

import (
	"fmt"
	"math"
	"sort"
)

// Criterion selects the split-quality function of Table I.
type Criterion int

const (
	// Gini impurity.
	Gini Criterion = iota
	// Entropy (information gain).
	Entropy
)

// String returns the scikit-learn-style name.
func (c Criterion) String() string {
	if c == Entropy {
		return "entropy"
	}
	return "gini"
}

// TreeConfig holds the decision-tree hyperparameters the paper tunes
// (Table I): maximum depth, split criterion and minimum samples per leaf.
type TreeConfig struct {
	MaxDepth       int
	Criterion      Criterion
	MinSamplesLeaf int
	// MaxFeatures restricts each split to a random feature subset of
	// this size; 0 means all features (plain CART). Random forests set
	// it to √features.
	MaxFeatures int
	Seed        int64
}

// DefaultTreeConfig mirrors the best single-tree settings found by the
// paper's grid search.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 10, Criterion: Gini, MinSamplesLeaf: 1}
}

type treeNode struct {
	// Leaf payload.
	leaf  bool
	class int
	// Split payload.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// Tree is a CART decision-tree classifier.
type Tree struct {
	cfg        TreeConfig
	root       *treeNode
	classes    int
	depth      int
	leaves     int
	importance []float64 // accumulated impurity decrease per feature
	nSamples   int
}

// NewTree builds an untrained tree with the given configuration.
func NewTree(cfg TreeConfig) *Tree {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 10
	}
	if cfg.MinSamplesLeaf <= 0 {
		cfg.MinSamplesLeaf = 1
	}
	return &Tree{cfg: cfg}
}

// Name implements Classifier.
func (t *Tree) Name() string { return "Decision Tree" }

// Depth returns the trained tree's depth (root = 0).
func (t *Tree) Depth() int { return t.depth }

// Leaves returns the trained tree's leaf count.
func (t *Tree) Leaves() int { return t.leaves }

// Fit implements Classifier.
func (t *Tree) Fit(X [][]float64, y []int) error {
	classes, err := validateXY(X, y)
	if err != nil {
		return err
	}
	t.classes = classes
	t.importance = make([]float64, len(X[0]))
	t.nSamples = len(X)
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng := newSplitRNG(t.cfg.Seed)
	t.root = t.grow(X, y, idx, 0, rng)
	return nil
}

// FeatureImportance returns the normalised mean-decrease-in-impurity per
// feature (summing to 1 when any split occurred). The paper identifies
// the batch size and the GPU state as the dominant scheduling features
// (§V-B); this is the quantitative counterpart.
func (t *Tree) FeatureImportance() []float64 {
	out := append([]float64(nil), t.importance...)
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// splitRNG is a tiny deterministic PRNG (xorshift) used for feature
// subsampling so trees stay allocation-light inside forests.
type splitRNG struct{ s uint64 }

func newSplitRNG(seed int64) *splitRNG {
	u := uint64(seed)*2654435761 + 0x9E3779B97F4A7C15
	return &splitRNG{s: u}
}

func (r *splitRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *splitRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (t *Tree) grow(X [][]float64, y []int, idx []int, depth int, rng *splitRNG) *treeNode {
	counts := make([]int, t.classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	major, pure := majority(counts, len(idx))
	if depth > t.depth {
		t.depth = depth
	}
	if pure || depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinSamplesLeaf {
		t.leaves++
		return &treeNode{leaf: true, class: major}
	}

	feat, thr, gain, ok := t.bestSplit(X, y, idx, counts, rng)
	if !ok {
		t.leaves++
		return &treeNode{leaf: true, class: major}
	}
	t.importance[feat] += gain * float64(len(idx)) / float64(t.nSamples)
	var li, ri []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < t.cfg.MinSamplesLeaf || len(ri) < t.cfg.MinSamplesLeaf {
		t.leaves++
		return &treeNode{leaf: true, class: major}
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      t.grow(X, y, li, depth+1, rng),
		right:     t.grow(X, y, ri, depth+1, rng),
	}
}

func majority(counts []int, total int) (class int, pure bool) {
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return best, counts[best] == total
}

func (t *Tree) impurity(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	switch t.cfg.Criterion {
	case Entropy:
		h := 0.0
		for _, n := range counts {
			if n == 0 {
				continue
			}
			p := float64(n) / float64(total)
			h -= p * math.Log2(p)
		}
		return h
	default: // Gini
		g := 1.0
		for _, n := range counts {
			p := float64(n) / float64(total)
			g -= p * p
		}
		return g
	}
}

// bestSplit scans candidate (feature, threshold) pairs for the split with
// the lowest weighted child impurity.
func (t *Tree) bestSplit(X [][]float64, y []int, idx []int, parentCounts []int, rng *splitRNG) (feature int, threshold, bestGainOut float64, ok bool) {
	nFeatures := len(X[0])
	features := make([]int, nFeatures)
	for i := range features {
		features[i] = i
	}
	if t.cfg.MaxFeatures > 0 && t.cfg.MaxFeatures < nFeatures {
		// Fisher-Yates prefix for the random subset.
		for i := 0; i < t.cfg.MaxFeatures; i++ {
			j := i + rng.intn(nFeatures-i)
			features[i], features[j] = features[j], features[i]
		}
		features = features[:t.cfg.MaxFeatures]
	}

	total := len(idx)
	parentImp := t.impurity(parentCounts, total)
	bestGain := 1e-12
	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, total)
	leftCounts := make([]int, t.classes)
	rightCounts := make([]int, t.classes)

	for _, f := range features {
		for k, i := range idx {
			vals[k] = fv{v: X[i][f], y: y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = parentCounts[c]
		}
		for k := 0; k < total-1; k++ {
			leftCounts[vals[k].y]++
			rightCounts[vals[k].y]--
			if vals[k].v == vals[k+1].v {
				continue
			}
			nl, nr := k+1, total-k-1
			if nl < t.cfg.MinSamplesLeaf || nr < t.cfg.MinSamplesLeaf {
				continue
			}
			gain := parentImp -
				(float64(nl)*t.impurity(leftCounts, nl)+
					float64(nr)*t.impurity(rightCounts, nr))/float64(total)
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feature, threshold, bestGain, ok
}

// Predict implements Classifier.
func (t *Tree) Predict(x []float64) int {
	if t.root == nil {
		return 0
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// String summarises the trained tree.
func (t *Tree) String() string {
	return fmt.Sprintf("Tree(depth=%d leaves=%d criterion=%s)", t.depth, t.leaves, t.cfg.Criterion)
}
