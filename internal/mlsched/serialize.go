package mlsched

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialisation for trained tree-family models, so a production
// scheduler can persist its ≈26-second training result (§V-C) and restart
// instantly. The format is little-endian: magic, version, config, class
// count, then pre-order node streams.

const (
	treeMagic     = uint32(0x424D5444) // "BMTD"
	forestMagic   = uint32(0x424D5246) // "BMRF"
	serialVersion = uint32(2)
)

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) u32(v uint32) {
	if b.err == nil {
		b.err = binary.Write(b.w, binary.LittleEndian, v)
	}
}
func (b *binWriter) i64(v int64) {
	if b.err == nil {
		b.err = binary.Write(b.w, binary.LittleEndian, v)
	}
}
func (b *binWriter) f64(v float64) {
	b.u32(uint32(math.Float64bits(v) >> 32))
	b.u32(uint32(math.Float64bits(v)))
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) u32() uint32 {
	var v uint32
	if b.err == nil {
		b.err = binary.Read(b.r, binary.LittleEndian, &v)
	}
	return v
}
func (b *binReader) i64() int64 {
	var v int64
	if b.err == nil {
		b.err = binary.Read(b.r, binary.LittleEndian, &v)
	}
	return v
}
func (b *binReader) f64() float64 {
	hi := b.u32()
	lo := b.u32()
	return math.Float64frombits(uint64(hi)<<32 | uint64(lo))
}

// Serialize writes a trained tree in the package binary format.
func (t *Tree) Serialize(w io.Writer) error {
	if t.root == nil {
		return fmt.Errorf("mlsched: cannot serialise an untrained tree")
	}
	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.u32(treeMagic)
	bw.u32(serialVersion)
	bw.u32(uint32(t.cfg.MaxDepth))
	bw.u32(uint32(t.cfg.Criterion))
	bw.u32(uint32(t.cfg.MinSamplesLeaf))
	bw.u32(uint32(t.cfg.MaxFeatures))
	bw.i64(t.cfg.Seed)
	bw.u32(uint32(t.classes))
	bw.u32(uint32(t.depth))
	bw.u32(uint32(t.leaves))
	bw.u32(uint32(len(t.importance)))
	for _, v := range t.importance {
		bw.f64(v)
	}
	writeNode(bw, t.root)
	if bw.err != nil {
		return fmt.Errorf("mlsched: writing tree: %w", bw.err)
	}
	return bw.w.Flush()
}

func writeNode(bw *binWriter, n *treeNode) {
	if n.leaf {
		bw.u32(1)
		bw.u32(uint32(n.class))
		return
	}
	bw.u32(0)
	bw.u32(uint32(n.feature))
	bw.f64(n.threshold)
	writeNode(bw, n.left)
	writeNode(bw, n.right)
}

// ReadTree deserialises a tree written by Serialize.
func ReadTree(r io.Reader) (*Tree, error) {
	t, err := readTreeFrom(bufio.NewReader(r))
	if err != nil {
		return nil, fmt.Errorf("mlsched: reading tree: %w", err)
	}
	return t, nil
}

// maxNodeDepth caps recursion on corrupted streams.
const maxNodeDepth = 64

// readNode parses a node, validating class labels against classes and
// split features against nFeatures so a corrupted stream can never yield
// a tree whose Predict indexes out of range.
func readNode(br *binReader, depth, classes, nFeatures int) *treeNode {
	if br.err != nil || depth > maxNodeDepth {
		if br.err == nil {
			br.err = fmt.Errorf("node depth exceeds %d", maxNodeDepth)
		}
		return nil
	}
	switch br.u32() {
	case 1:
		class := int(br.u32())
		if class < 0 || class >= classes {
			if br.err == nil {
				br.err = fmt.Errorf("leaf class %d out of range [0,%d)", class, classes)
			}
			return nil
		}
		return &treeNode{leaf: true, class: class}
	case 0:
		feature := int(br.u32())
		if feature < 0 || feature >= nFeatures {
			if br.err == nil {
				br.err = fmt.Errorf("split feature %d out of range [0,%d)", feature, nFeatures)
			}
			return nil
		}
		n := &treeNode{feature: feature, threshold: br.f64()}
		n.left = readNode(br, depth+1, classes, nFeatures)
		n.right = readNode(br, depth+1, classes, nFeatures)
		if n.left == nil || n.right == nil {
			return nil
		}
		return n
	default:
		if br.err == nil {
			br.err = fmt.Errorf("invalid node tag")
		}
		return nil
	}
}

// Serialize writes a trained forest in the package binary format.
func (f *Forest) Serialize(w io.Writer) error {
	if len(f.trees) == 0 {
		return fmt.Errorf("mlsched: cannot serialise an untrained forest")
	}
	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.u32(forestMagic)
	bw.u32(serialVersion)
	bw.u32(uint32(f.cfg.NEstimators))
	bw.u32(uint32(f.cfg.MaxDepth))
	bw.u32(uint32(f.cfg.Criterion))
	bw.u32(uint32(f.cfg.MinSamplesLeaf))
	bw.i64(f.cfg.Seed)
	all := uint32(0)
	if f.AllFeatures {
		all = 1
	}
	bw.u32(all)
	bw.u32(uint32(f.classes))
	bw.u32(uint32(len(f.trees)))
	if bw.err != nil {
		return fmt.Errorf("mlsched: writing forest header: %w", bw.err)
	}
	if err := bw.w.Flush(); err != nil {
		return err
	}
	for _, t := range f.trees {
		if err := t.Serialize(w); err != nil {
			return err
		}
	}
	return nil
}

// ReadForest deserialises a forest written by Serialize.
func ReadForest(r io.Reader) (*Forest, error) {
	br := &binReader{r: bufio.NewReader(r)}
	if m := br.u32(); br.err == nil && m != forestMagic {
		return nil, fmt.Errorf("mlsched: bad forest magic %#x", m)
	}
	if v := br.u32(); br.err == nil && v != serialVersion {
		return nil, fmt.Errorf("mlsched: unsupported forest version %d", v)
	}
	f := &Forest{}
	f.cfg.NEstimators = int(br.u32())
	f.cfg.MaxDepth = int(br.u32())
	f.cfg.Criterion = Criterion(br.u32())
	f.cfg.MinSamplesLeaf = int(br.u32())
	f.cfg.Seed = br.i64()
	f.AllFeatures = br.u32() == 1
	f.classes = int(br.u32())
	count := int(br.u32())
	if br.err != nil {
		return nil, fmt.Errorf("mlsched: reading forest header: %w", br.err)
	}
	if count <= 0 || count > 100000 {
		return nil, fmt.Errorf("mlsched: implausible tree count %d", count)
	}
	// Hand the buffered reader to the tree parser so no bytes are lost.
	for i := 0; i < count; i++ {
		t, err := readTreeFrom(br.r)
		if err != nil {
			return nil, fmt.Errorf("mlsched: forest tree %d: %w", i, err)
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}

// readTreeFrom parses a tree from an existing buffered reader.
func readTreeFrom(r *bufio.Reader) (*Tree, error) {
	br := &binReader{r: r}
	if m := br.u32(); br.err == nil && m != treeMagic {
		return nil, fmt.Errorf("bad tree magic %#x", m)
	}
	if v := br.u32(); br.err == nil && v != serialVersion {
		return nil, fmt.Errorf("unsupported tree version %d", v)
	}
	t := &Tree{}
	t.cfg.MaxDepth = int(br.u32())
	t.cfg.Criterion = Criterion(br.u32())
	t.cfg.MinSamplesLeaf = int(br.u32())
	t.cfg.MaxFeatures = int(br.u32())
	t.cfg.Seed = br.i64()
	t.classes = int(br.u32())
	t.depth = int(br.u32())
	t.leaves = int(br.u32())
	nFeatures := int(br.u32())
	if br.err == nil && (t.classes <= 0 || t.classes > 1<<20 || nFeatures <= 0 || nFeatures > 1<<20) {
		return nil, fmt.Errorf("implausible classes (%d) or features (%d)", t.classes, nFeatures)
	}
	if br.err != nil {
		return nil, br.err
	}
	t.importance = make([]float64, nFeatures)
	for i := range t.importance {
		t.importance[i] = br.f64()
	}
	t.root = readNode(br, 0, t.classes, nFeatures)
	if br.err != nil {
		return nil, br.err
	}
	if t.root == nil {
		return nil, fmt.Errorf("tree stream malformed")
	}
	return t, nil
}
