package mlsched

import "testing"

func BenchmarkForestFit(b *testing.B) {
	X, y := blobs(1500, 9, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewTunedForest(1)
		if err := f.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := blobs(1500, 9, 1)
	f := NewTunedForest(1)
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(X[i%len(X)])
	}
}

func BenchmarkTreeFit(b *testing.B) {
	X, y := blobs(1500, 9, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := NewTree(DefaultTreeConfig())
		if err := t.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	X, y := blobs(1500, 9, 1)
	k := NewKNN(5)
	if err := k.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Predict(X[i%len(X)])
	}
}

func BenchmarkStratifiedKFold(b *testing.B) {
	_, y := blobs(1500, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := StratifiedKFold(y, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}
