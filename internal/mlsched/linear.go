package mlsched

import (
	"math"
	"math/rand"
)

// LinearRegression is the paper's fastest selector (Table II): one-hot
// least-squares regression per class, predicting the argmax of the fitted
// responses. Trained by full-batch gradient descent with L2 shrinkage on
// standardized features.
type LinearRegression struct {
	Epochs int
	LR     float64
	L2     float64

	std     *standardizer
	w       [][]float64 // [classes][features+1], last term is the bias
	classes int
}

// NewLinearRegression builds the model with the defaults used in the
// evaluation.
func NewLinearRegression() *LinearRegression {
	return &LinearRegression{Epochs: 300, LR: 0.05, L2: 1e-4}
}

// Name implements Classifier.
func (m *LinearRegression) Name() string { return "Linear Regression" }

// Fit implements Classifier.
func (m *LinearRegression) Fit(X [][]float64, y []int) error {
	classes, err := validateXY(X, y)
	if err != nil {
		return err
	}
	m.classes = classes
	m.std = fitStandardizer(X)
	Z := m.std.applyAll(X)
	nf := len(Z[0])
	m.w = make([][]float64, classes)
	for c := range m.w {
		m.w[c] = make([]float64, nf+1)
	}
	n := float64(len(Z))
	grad := make([]float64, nf+1)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for c := 0; c < classes; c++ {
			for j := range grad {
				grad[j] = 0
			}
			for i, z := range Z {
				target := 0.0
				if y[i] == c {
					target = 1
				}
				pred := m.w[c][nf]
				for j, v := range z {
					pred += m.w[c][j] * v
				}
				e := pred - target
				for j, v := range z {
					grad[j] += e * v
				}
				grad[nf] += e
			}
			for j := range m.w[c] {
				m.w[c][j] -= m.LR * (grad[j]/n + m.L2*m.w[c][j])
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (m *LinearRegression) Predict(x []float64) int {
	if m.w == nil {
		return 0
	}
	z := m.std.apply(x)
	nf := len(z)
	best, bestV := 0, math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		v := m.w[c][nf]
		for j, zv := range z {
			v += m.w[c][j] * zv
		}
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// SVM is a linear one-versus-rest support vector machine trained with
// stochastic sub-gradient descent on the hinge loss (Pegasos-style). The
// paper's SVM is its slowest-training selector; epochs govern that cost.
type SVM struct {
	Epochs int
	Lambda float64
	Seed   int64

	std     *standardizer
	w       [][]float64
	classes int
}

// NewSVM builds the model with the defaults used in the evaluation.
func NewSVM(seed int64) *SVM { return &SVM{Epochs: 600, Lambda: 1e-4, Seed: seed} }

// Name implements Classifier.
func (m *SVM) Name() string { return "SVM" }

// Fit implements Classifier.
func (m *SVM) Fit(X [][]float64, y []int) error {
	classes, err := validateXY(X, y)
	if err != nil {
		return err
	}
	m.classes = classes
	m.std = fitStandardizer(X)
	Z := m.std.applyAll(X)
	nf := len(Z[0])
	m.w = make([][]float64, classes)
	for c := range m.w {
		m.w[c] = make([]float64, nf+1)
	}
	rng := rand.New(rand.NewSource(m.Seed))
	t := 1
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for range Z {
			i := rng.Intn(len(Z))
			z := Z[i]
			eta := 1 / (m.Lambda * float64(t))
			t++
			for c := 0; c < classes; c++ {
				label := -1.0
				if y[i] == c {
					label = 1
				}
				margin := m.w[c][nf]
				for j, v := range z {
					margin += m.w[c][j] * v
				}
				for j := range m.w[c][:nf] {
					m.w[c][j] *= 1 - eta*m.Lambda
				}
				if label*margin < 1 {
					for j, v := range z {
						m.w[c][j] += eta * label * v
					}
					m.w[c][nf] += eta * label * 0.1 // damped bias update
				}
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (m *SVM) Predict(x []float64) int {
	if m.w == nil {
		return 0
	}
	z := m.std.apply(x)
	nf := len(z)
	best, bestV := 0, math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		v := m.w[c][nf]
		for j, zv := range z {
			v += m.w[c][j] * zv
		}
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// KNN is a k-nearest-neighbours classifier over standardized features
// with Euclidean distance and majority vote.
type KNN struct {
	K int

	std     *standardizer
	Z       [][]float64
	y       []int
	classes int
}

// NewKNN builds the model; k defaults to 5 when non-positive.
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k}
}

// Name implements Classifier.
func (m *KNN) Name() string { return "k-NN" }

// Fit implements Classifier (lazy learner: memorises the data).
func (m *KNN) Fit(X [][]float64, y []int) error {
	classes, err := validateXY(X, y)
	if err != nil {
		return err
	}
	m.classes = classes
	m.std = fitStandardizer(X)
	m.Z = m.std.applyAll(X)
	m.y = append([]int(nil), y...)
	return nil
}

// Predict implements Classifier.
func (m *KNN) Predict(x []float64) int {
	if len(m.Z) == 0 {
		return 0
	}
	k := m.K
	if k > len(m.Z) {
		k = len(m.Z)
	}
	z := m.std.apply(x)
	// Keep the k smallest distances with bounded insertion — k is tiny.
	best := make([]neighbour, 0, k)
	for i, row := range m.Z {
		var d float64
		for j, v := range row {
			diff := v - z[j]
			d += diff * diff
		}
		if len(best) < k {
			best = append(best, neighbour{d, m.y[i]})
			siftUp(best)
			continue
		}
		if d < best[k-1].d {
			best[k-1] = neighbour{d, m.y[i]}
			siftUp(best)
		}
	}
	votes := make([]int, m.classes)
	for _, c := range best {
		votes[c.y]++
	}
	win := 0
	for c, v := range votes {
		if v > votes[win] {
			win = c
		}
	}
	return win
}

type neighbour struct {
	d float64
	y int
}

// siftUp restores ascending distance order after appending or replacing
// the last element of the candidate buffer.
func siftUp(s []neighbour) {
	for i := len(s) - 1; i > 0 && s[i].d < s[i-1].d; i-- {
		s[i], s[i-1] = s[i-1], s[i]
	}
}
