package mlsched

import (
	"bytes"
	"testing"
)

// Fuzz targets for the binary model parsers: arbitrary bytes must never
// panic, loop, or produce a model that crashes Predict.

func FuzzReadTree(f *testing.F) {
	// Seed with a valid tree.
	X, y := blobs(60, 4, 70)
	tree := NewTree(DefaultTreeConfig())
	if err := tree.Fit(X, y); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x44, 0x54, 0x4d, 0x42})

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := ReadTree(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed tree must be usable.
		_ = restored.Predict([]float64{1, 2, 3, 4})
	})
}

func FuzzReadForest(f *testing.F) {
	X, y := blobs(60, 4, 71)
	forest := NewForest(ForestConfig{NEstimators: 3, MaxDepth: 4, Seed: 1})
	if err := forest.Fit(X, y); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := forest.Serialize(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := ReadForest(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = restored.Predict([]float64{1, 2, 3, 4})
		_ = restored.Rank([]float64{1, 2, 3, 4})
	})
}
