package mlsched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEvaluateKnownValues(t *testing.T) {
	yTrue := []int{0, 0, 1, 1, 2, 2}
	yPred := []int{0, 1, 1, 1, 2, 0}
	m, err := Evaluate(yTrue, yPred, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 4.0/6 {
		t.Fatalf("accuracy = %g", m.Accuracy)
	}
	// Class 0: tp=1 fp=1 fn=1 → p=r=0.5 f=0.5
	// Class 1: tp=2 fp=1 fn=0 → p=2/3 r=1 f=0.8
	// Class 2: tp=1 fp=0 fn=1 → p=1 r=0.5 f=2/3
	wantP := (0.5 + 2.0/3 + 1) / 3
	wantR := (0.5 + 1 + 0.5) / 3
	wantF := (0.5 + 0.8 + 2.0/3) / 3
	if !close(m.Precision, wantP) || !close(m.Recall, wantR) || !close(m.F1, wantF) {
		t.Fatalf("P/R/F1 = %g/%g/%g, want %g/%g/%g", m.Precision, m.Recall, m.F1, wantP, wantR, wantF)
	}
	if m.Confusion[0][1] != 1 || m.Confusion[2][0] != 1 {
		t.Fatalf("confusion = %v", m.Confusion)
	}
}

func close(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, nil, 2); err == nil {
		t.Fatal("empty labels accepted")
	}
	if _, err := Evaluate([]int{0}, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Evaluate([]int{0}, []int{5}, 2); err == nil {
		t.Fatal("out-of-range prediction accepted")
	}
}

func TestEvaluateIgnoresAbsentClasses(t *testing.T) {
	m, err := Evaluate([]int{0, 0, 1}, []int{0, 0, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 != 1 || m.Precision != 1 {
		t.Fatalf("absent classes dragged down macro scores: %+v", m)
	}
}

func TestMetricsString(t *testing.T) {
	m, _ := Evaluate([]int{0, 1}, []int{0, 1}, 2)
	if s := m.String(); s == "" {
		t.Fatal("empty metrics string")
	}
}

func TestStratifiedKFoldPreservesProportions(t *testing.T) {
	// 30/40/30 imbalance like the paper's dataset (§V-B).
	y := make([]int, 100)
	for i := 0; i < 30; i++ {
		y[i] = 0
	}
	for i := 30; i < 70; i++ {
		y[i] = 1
	}
	for i := 70; i < 100; i++ {
		y[i] = 2
	}
	folds, err := StratifiedKFold(y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		if len(fold) != 20 {
			t.Fatalf("fold size %d, want 20", len(fold))
		}
		counts := map[int]int{}
		for _, i := range fold {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
			counts[y[i]]++
		}
		// Each fold should hold ≈6/8/6 of the classes.
		if counts[0] < 5 || counts[0] > 7 || counts[1] < 7 || counts[1] > 9 {
			t.Fatalf("fold class balance off: %v", counts)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("folds covered %d samples", len(seen))
	}
}

func TestStratifiedKFoldErrors(t *testing.T) {
	if _, err := StratifiedKFold([]int{0, 1}, 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := StratifiedKFold([]int{0}, 2, 1); err == nil {
		t.Fatal("more folds than samples accepted")
	}
}

func TestCrossValidateOnSeparableData(t *testing.T) {
	X, y := blobs(200, 4, 20)
	m, err := CrossValidate(func() Classifier { return NewTree(DefaultTreeConfig()) }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.9 {
		t.Fatalf("CV accuracy %.2f on separable data", m.Accuracy)
	}
	if m.N != 200 {
		t.Fatalf("CV pooled %d predictions", m.N)
	}
}

func TestCrossValidatePropagatesErrors(t *testing.T) {
	X, y := blobs(20, 2, 21)
	if _, err := CrossValidate(func() Classifier { return failFit{} }, X, y, 4, 1); err == nil {
		t.Fatal("CV swallowed Fit error")
	}
}

type failFit struct{}

func (failFit) Fit([][]float64, []int) error { return errFail }
func (failFit) Predict([]float64) int        { return 0 }
func (failFit) Name() string                 { return "fail" }

var errFail = errString("fit failed")

type errString string

func (e errString) Error() string { return string(e) }

func TestPaperForestGridMatchesTableI(t *testing.T) {
	g := PaperForestGrid()
	if len(g.NEstimators) != 12 || g.NEstimators[0] != 5 || g.NEstimators[11] != 200 {
		t.Fatalf("n_estimators = %v", g.NEstimators)
	}
	if len(g.MaxDepth) != 8 || g.MaxDepth[0] != 3 || g.MaxDepth[7] != 10 {
		t.Fatalf("max_depth = %v", g.MaxDepth)
	}
	if len(g.Criteria) != 2 {
		t.Fatalf("criteria = %v", g.Criteria)
	}
	if len(g.MinSamplesLeaf) != 7 || g.MinSamplesLeaf[6] != 15 {
		t.Fatalf("min_samples_leaf = %v", g.MinSamplesLeaf)
	}
	if g.Size() != 12*8*2*7 {
		t.Fatalf("grid size = %d, want 1344", g.Size())
	}
	if got := len(g.Configs(1)); got != g.Size() {
		t.Fatalf("Configs returned %d points", got)
	}
}

func TestNestedCrossValidate(t *testing.T) {
	X, y := blobs(150, 4, 22)
	grid := ForestGrid{
		NEstimators:    []int{5, 10},
		MaxDepth:       []int{3, 6},
		Criteria:       []Criterion{Gini},
		MinSamplesLeaf: []int{1},
	}
	res, err := NestedCrossValidate(X, y, 3, 2, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outer.Accuracy < 0.85 {
		t.Fatalf("nested CV accuracy %.2f", res.Outer.Accuracy)
	}
	if len(res.PerFoldBest) != 3 {
		t.Fatalf("per-fold best = %d entries", len(res.PerFoldBest))
	}
	if res.BestConfig.NEstimators == 0 {
		t.Fatal("no best config selected")
	}
	if _, err := NestedCrossValidate(X, y, 3, 2, ForestGrid{}, 1); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestConfusionString(t *testing.T) {
	m, _ := Evaluate([]int{0, 0, 1, 2}, []int{0, 1, 1, 2}, 3)
	s := m.ConfusionString([]string{"cpu", "igpu", "dgpu"})
	for _, want := range []string{"cpu", "igpu", "dgpu", "true\\pred"} {
		if !strings.Contains(s, want) {
			t.Fatalf("confusion rendering missing %q:\n%s", want, s)
		}
	}
	// Unlabelled classes fall back to indices.
	s2 := m.ConfusionString(nil)
	if !strings.Contains(s2, "class 2") {
		t.Fatalf("fallback class names missing:\n%s", s2)
	}
}

// Property: stratified k-fold always partitions the index set exactly
// and keeps per-class counts within one of each other across folds.
func TestPropertyStratifiedPartition(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 20 + int(nRaw)%200
		k := 2 + int(kRaw)%5
		rng := rand.New(rand.NewSource(seed))
		y := make([]int, n)
		for i := range y {
			y[i] = rng.Intn(3)
		}
		folds, err := StratifiedKFold(y, k, seed)
		if err != nil {
			return false
		}
		seen := make([]int, n)
		perFoldClass := make([]map[int]int, k)
		for fi, fold := range folds {
			perFoldClass[fi] = map[int]int{}
			for _, i := range fold {
				seen[i]++
				perFoldClass[fi][y[i]]++
			}
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		for c := 0; c < 3; c++ {
			min, max := 1<<30, -1
			for fi := range perFoldClass {
				v := perFoldClass[fi][c]
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			if max-min > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPerClassMetrics(t *testing.T) {
	m, err := Evaluate([]int{0, 0, 1, 1, 2, 2}, []int{0, 1, 1, 1, 2, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	pc := m.PerClass()
	if len(pc) != 3 {
		t.Fatalf("classes = %d", len(pc))
	}
	// Class 1: tp=2 fp=1 fn=0 → precision 2/3, recall 1.
	if !close(pc[1].Precision, 2.0/3) || !close(pc[1].Recall, 1) {
		t.Fatalf("class 1 = %+v", pc[1])
	}
	if pc[0].Support != 2 || pc[1].Support != 2 || pc[2].Support != 2 {
		t.Fatalf("supports wrong: %+v", pc)
	}
	// Macro F1 equals the mean of per-class F1s when all classes appear.
	var sum float64
	for _, c := range pc {
		sum += c.F1
	}
	if !close(sum/3, m.F1) {
		t.Fatalf("macro F1 %.4f != mean per-class %.4f", m.F1, sum/3)
	}
}
