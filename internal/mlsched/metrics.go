package mlsched

import (
	"fmt"
	"strings"
)

// Metrics carries the evaluation scores of §V-C and Table III: plain
// accuracy plus macro-averaged precision, recall and F1, which the paper
// prefers because the device classes are imbalanced (30/40/30).
type Metrics struct {
	Accuracy  float64
	Precision float64 // macro-averaged
	Recall    float64 // macro-averaged
	F1        float64 // macro-averaged
	Confusion [][]int // [true][predicted]
	N         int
}

// Evaluate scores predictions against truth over classes classes.
func Evaluate(yTrue, yPred []int, classes int) (Metrics, error) {
	if len(yTrue) != len(yPred) || len(yTrue) == 0 {
		return Metrics{}, fmt.Errorf("mlsched: need matching non-empty label slices (%d, %d)", len(yTrue), len(yPred))
	}
	m := Metrics{N: len(yTrue), Confusion: make([][]int, classes)}
	for i := range m.Confusion {
		m.Confusion[i] = make([]int, classes)
	}
	correct := 0
	for i := range yTrue {
		t, p := yTrue[i], yPred[i]
		if t < 0 || t >= classes || p < 0 || p >= classes {
			return Metrics{}, fmt.Errorf("mlsched: label out of range at %d: true=%d pred=%d classes=%d", i, t, p, classes)
		}
		m.Confusion[t][p]++
		if t == p {
			correct++
		}
	}
	m.Accuracy = float64(correct) / float64(len(yTrue))

	var sumP, sumR, sumF float64
	counted := 0
	for c := 0; c < classes; c++ {
		tp := m.Confusion[c][c]
		var fp, fn int
		for o := 0; o < classes; o++ {
			if o == c {
				continue
			}
			fp += m.Confusion[o][c]
			fn += m.Confusion[c][o]
		}
		if tp+fp+fn == 0 {
			continue // class absent from both truth and predictions
		}
		counted++
		var p, r float64
		if tp+fp > 0 {
			p = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			r = float64(tp) / float64(tp+fn)
		}
		sumP += p
		sumR += r
		if p+r > 0 {
			sumF += 2 * p * r / (p + r)
		}
	}
	if counted > 0 {
		m.Precision = sumP / float64(counted)
		m.Recall = sumR / float64(counted)
		m.F1 = sumF / float64(counted)
	}
	return m, nil
}

// String renders the Table III row.
func (m Metrics) String() string {
	return fmt.Sprintf("acc=%.2f%% F1=%.2f%% precision=%.2f%% recall=%.2f%% (n=%d)",
		100*m.Accuracy, 100*m.F1, 100*m.Precision, 100*m.Recall, m.N)
}

// ClassMetrics is the per-class precision/recall/F1 breakdown the
// stratified evaluation of §V-C examines under class imbalance.
type ClassMetrics struct {
	Class     int
	Support   int // true instances of the class
	Precision float64
	Recall    float64
	F1        float64
}

// PerClass derives the per-class breakdown from the confusion matrix.
func (m Metrics) PerClass() []ClassMetrics {
	out := make([]ClassMetrics, len(m.Confusion))
	for c := range m.Confusion {
		cm := ClassMetrics{Class: c}
		tp := m.Confusion[c][c]
		var fp, fn int
		for o := range m.Confusion {
			if o == c {
				continue
			}
			fp += m.Confusion[o][c]
			fn += m.Confusion[c][o]
		}
		for _, v := range m.Confusion[c] {
			cm.Support += v
		}
		if tp+fp > 0 {
			cm.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			cm.Recall = float64(tp) / float64(tp+fn)
		}
		if cm.Precision+cm.Recall > 0 {
			cm.F1 = 2 * cm.Precision * cm.Recall / (cm.Precision + cm.Recall)
		}
		out[c] = cm
	}
	return out
}

// ConfusionString renders the confusion matrix with optional class
// labels (true classes on rows, predictions on columns).
func (m Metrics) ConfusionString(labels []string) string {
	classes := len(m.Confusion)
	name := func(c int) string {
		if c < len(labels) {
			return labels[c]
		}
		return fmt.Sprintf("class %d", c)
	}
	width := 10
	for c := 0; c < classes; c++ {
		if l := len(name(c)); l+2 > width {
			width = l + 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s", width, "true\\pred")
	for c := 0; c < classes; c++ {
		fmt.Fprintf(&b, "%*s", width, name(c))
	}
	b.WriteByte('\n')
	for t := 0; t < classes; t++ {
		fmt.Fprintf(&b, "%*s", width, name(t))
		for p := 0; p < classes; p++ {
			fmt.Fprintf(&b, "%*d", width, m.Confusion[t][p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
