package mlsched

import (
	"bytes"
	"testing"
)

func TestTreeSerializationRoundTrip(t *testing.T) {
	X, y := blobs(200, 5, 30)
	tree := NewTree(DefaultTreeConfig())
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadTree(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if tree.Predict(X[i]) != restored.Predict(X[i]) {
			t.Fatal("restored tree disagrees with original")
		}
	}
	if restored.Depth() != tree.Depth() || restored.Leaves() != tree.Leaves() {
		t.Fatal("tree metadata not preserved")
	}
}

func TestForestSerializationRoundTrip(t *testing.T) {
	X, y := blobs(240, 6, 31)
	f := NewTunedForest(3)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadForest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Trees() != f.Trees() {
		t.Fatalf("restored %d trees, want %d", restored.Trees(), f.Trees())
	}
	if !restored.AllFeatures {
		t.Fatal("AllFeatures flag not preserved")
	}
	for i := range X {
		if f.Predict(X[i]) != restored.Predict(X[i]) {
			t.Fatal("restored forest disagrees with original")
		}
		a, b := f.Rank(X[i]), restored.Rank(X[i])
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("restored forest ranking differs")
			}
		}
	}
}

func TestSerializeUntrainedRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTree(DefaultTreeConfig()).Serialize(&buf); err == nil {
		t.Fatal("untrained tree serialised")
	}
	if err := NewForest(DefaultForestConfig()).Serialize(&buf); err == nil {
		t.Fatal("untrained forest serialised")
	}
}

func TestDeserializeCorruptStreams(t *testing.T) {
	if _, err := ReadTree(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated tree accepted")
	}
	if _, err := ReadForest(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})); err == nil {
		t.Fatal("bad forest magic accepted")
	}
	// Valid tree header with garbage body.
	X, y := blobs(50, 3, 32)
	tree := NewTree(DefaultTreeConfig())
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadTree(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated tree body accepted")
	}
	// Flip the magic of a valid forest.
	f := NewForest(ForestConfig{NEstimators: 3, MaxDepth: 4})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	if err := f.Serialize(&fb); err != nil {
		t.Fatal(err)
	}
	fraw := fb.Bytes()
	fraw[0] ^= 0xff
	if _, err := ReadForest(bytes.NewReader(fraw)); err == nil {
		t.Fatal("corrupted forest magic accepted")
	}
}

func TestSerializationPreservesImportance(t *testing.T) {
	X, y := blobs(200, 5, 33)
	f := NewTunedForest(1)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadForest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := f.FeatureImportance(), restored.FeatureImportance()
	if len(a) != len(b) {
		t.Fatalf("importance lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if d := a[i] - b[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("importance[%d] drifted: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestDeserializeRejectsOutOfRangeNodes(t *testing.T) {
	// Regression for the fuzz finding: a split node whose feature index
	// exceeds the declared feature count must be rejected, not crash
	// Predict later.
	X, y := blobs(50, 3, 34)
	tree := NewTree(DefaultTreeConfig())
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Walk every offset, aggressively corrupting 4-byte windows; no
	// mutation may panic, and successes must produce safe trees.
	for off := 8; off+4 <= len(raw); off += 4 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xff
		mut[off+1] ^= 0x30
		restored, err := ReadTree(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		_ = restored.Predict([]float64{1, 2, 3})
	}
}
