package tensor

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewPoolDefaults(t *testing.T) {
	p := NewPool(0, 0)
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers = %d, want GOMAXPROCS", p.Workers())
	}
	if p.GroupSize() != 4096 {
		t.Fatalf("GroupSize = %d, want 4096 (paper CPU config)", p.GroupSize())
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(7, 3)
	const n = 100
	var hits [n]int32
	p.For(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	Default.For(0, func(lo, hi int) { called = true })
	Default.For(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For should not invoke fn for n <= 0")
	}
}

func TestForSingleGroupRunsInline(t *testing.T) {
	// When the whole range fits in one work-group, For must execute the
	// function exactly once, on the calling goroutine, with the full range.
	// Mutating a local without synchronisation is race-free only if the
	// call is inline; go test -race validates that.
	p := NewPool(8, 1000)
	calls, lastLo, lastHi := 0, -1, -1
	p.For(10, func(lo, hi int) { calls++; lastLo, lastHi = lo, hi })
	if calls != 1 || lastLo != 0 || lastHi != 10 {
		t.Fatalf("single-group For: calls=%d range=[%d,%d), want 1 call covering [0,10)", calls, lastLo, lastHi)
	}
}

func TestForEachVisitsAll(t *testing.T) {
	p := NewPool(4, 8)
	var sum int64
	p.ForEach(101, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 101*100/2 {
		t.Fatalf("ForEach sum = %d, want %d", sum, 101*100/2)
	}
}

func TestSerialPoolInline(t *testing.T) {
	if Serial.Workers() != 1 {
		t.Fatal("Serial should have one worker")
	}
	count := 0
	Serial.For(1000, func(lo, hi int) { count++ })
	if count != 1 {
		t.Fatalf("Serial.For split range into %d calls, want 1", count)
	}
}

// Property: for any n and group size, For covers [0,n) with disjoint
// contiguous ranges.
func TestPropertyForPartition(t *testing.T) {
	f := func(nRaw, gRaw uint8) bool {
		n := int(nRaw)
		g := 1 + int(gRaw)%64
		p := NewPool(5, g)
		seen := make([]int32, n)
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
