package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConv2DKnownValues(t *testing.T) {
	// 1 batch, 1 channel, 3x3 input; one 2x2 averaging-ish filter.
	in := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	f := FromSlice([]float32{1, 0, 0, 1}, 1, 1, 2, 2) // main-diagonal sum
	out := Conv2D(Serial, in, f, nil)
	want := FromSlice([]float32{
		1 + 5, 2 + 6,
		4 + 8, 5 + 9,
	}, 1, 1, 2, 2)
	if !out.Equal(want) {
		t.Fatalf("Conv2D = %v, want %v", out, want)
	}
}

func TestConv2DBias(t *testing.T) {
	in := New(1, 1, 2, 2)
	f := New(2, 1, 1, 1) // two 1x1 zero filters
	bias := FromSlice([]float32{3, -1}, 2)
	out := Conv2D(Serial, in, f, bias)
	if out.At(0, 0, 1, 1) != 3 || out.At(0, 1, 0, 0) != -1 {
		t.Fatalf("Conv2D bias not applied: %v", out)
	}
}

func TestConv2DMultiChannelAccumulates(t *testing.T) {
	// Two input channels of ones; 1x1 filter with weights 2 and 3 → 5.
	in := New(1, 2, 2, 2)
	in.Fill(1)
	f := FromSlice([]float32{2, 3}, 1, 2, 1, 1)
	out := Conv2D(Serial, in, f, nil)
	for _, v := range out.Data() {
		if v != 5 {
			t.Fatalf("multi-channel accumulation wrong: %v", out)
		}
	}
}

func TestConv2DShapePanics(t *testing.T) {
	cases := []func(){
		func() { Conv2D(Serial, New(1, 1, 3, 3), New(1, 2, 2, 2), nil) },    // channel mismatch
		func() { Conv2D(Serial, New(1, 1, 2, 2), New(1, 1, 3, 3), nil) },    // filter too large
		func() { Conv2D(Serial, New(1, 1, 3), New(1, 1, 2, 2), nil) },       // bad input rank
		func() { Conv2D(Serial, New(1, 1, 3, 3), New(1, 1, 2, 2), New(2)) }, // bad bias
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestConv2DParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randTensor(rng, 3, 4, 9, 9)
	f := randTensor(rng, 8, 4, 3, 3)
	bias := randTensor(rng, 8)
	serial := Conv2D(Serial, in, f, bias)
	par := Conv2D(NewPool(8, 2), in, f, bias)
	if !serial.ApproxEqual(par, 1e-4) {
		t.Fatal("parallel Conv2D differs from serial")
	}
}

func TestConv2DIm2ColMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, shape := range [][2][4]int{
		{{1, 1, 5, 5}, {1, 1, 3, 3}},
		{{2, 3, 8, 8}, {4, 3, 3, 3}},
		{{1, 2, 6, 7}, {3, 2, 2, 4}},
	} {
		in := randTensor(rng, shape[0][0], shape[0][1], shape[0][2], shape[0][3])
		f := randTensor(rng, shape[1][0], shape[1][1], shape[1][2], shape[1][3])
		bias := randTensor(rng, shape[1][0])
		direct := Conv2D(Default, in, f, bias)
		lowered := Conv2DIm2Col(Default, in, f, bias)
		if !direct.ApproxEqual(lowered, 1e-3) {
			t.Fatalf("im2col lowering mismatch for %v", shape)
		}
	}
}

func TestIm2ColShape(t *testing.T) {
	in := New(2, 3, 5, 5)
	cols := Im2Col(in, 3, 3)
	if cols.Dim(0) != 2*3*3 || cols.Dim(1) != 3*3*3 {
		t.Fatalf("Im2Col shape = %v, want [18 27]", cols.Shape())
	}
}

func TestIm2ColPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Im2Col with oversized window did not panic")
		}
	}()
	Im2Col(New(1, 1, 2, 2), 3, 3)
}

func TestMaxPool2DKnownValues(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 9, 0,
	}, 1, 1, 4, 4)
	out := MaxPool2D(Serial, in, 2)
	want := FromSlice([]float32{4, 8, -1, 9}, 1, 1, 2, 2)
	if !out.Equal(want) {
		t.Fatalf("MaxPool2D = %v, want %v", out, want)
	}
}

func TestMaxPool2DRaggedTruncates(t *testing.T) {
	in := New(1, 1, 5, 5)
	in.Fill(1)
	out := MaxPool2D(Serial, in, 2)
	if out.Dim(2) != 2 || out.Dim(3) != 2 {
		t.Fatalf("ragged pooling shape = %v, want [1 1 2 2]", out.Shape())
	}
}

func TestMaxPool2DPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { MaxPool2D(Serial, New(1, 1, 2), 2) },
		func() { MaxPool2D(Serial, New(1, 1, 2, 2), 0) },
		func() { MaxPool2D(Serial, New(1, 1, 2, 2), 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMaxPool2DParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randTensor(rng, 4, 6, 8, 8)
	a := MaxPool2D(Serial, in, 2)
	b := MaxPool2D(NewPool(6, 1), in, 2)
	if !a.Equal(b) {
		t.Fatal("parallel MaxPool2D differs from serial")
	}
}

// Property: max pooling never produces a value absent from its window, and
// the output max equals the input max for full coverage (even dims).
func TestPropertyMaxPoolPreservesMax(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := 2 * (1 + r.Intn(4))
		in := randTensor(r, 1, 1, h, h)
		out := MaxPool2D(Serial, in, 2)
		var inMax, outMax float32 = in.Data()[0], out.Data()[0]
		for _, v := range in.Data() {
			if v > inMax {
				inMax = v
			}
		}
		for _, v := range out.Data() {
			if v > outMax {
				outMax = v
			}
		}
		return inMax == outMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: convolution with an all-ones input and all-ones single filter
// yields inC*kH*kW everywhere.
func TestPropertyConvOnes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, k, sz := 1+r.Intn(3), 1+r.Intn(3), 4+r.Intn(4)
		in := New(1, c, sz, sz)
		in.Fill(1)
		filt := New(1, c, k, k)
		filt.Fill(1)
		out := Conv2D(Serial, in, filt, nil)
		want := float32(c * k * k)
		for _, v := range out.Data() {
			if v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
