package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestActivationStringRoundTrip(t *testing.T) {
	for _, a := range []Activation{Identity, ReLU, Tanh, Sigmoid, Softmax} {
		got, err := ParseActivation(a.String())
		if err != nil {
			t.Fatalf("ParseActivation(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %v", a, got)
		}
	}
	if _, err := ParseActivation("swish"); err == nil {
		t.Fatal("ParseActivation accepted unknown name")
	}
	if a, err := ParseActivation(""); err != nil || a != Identity {
		t.Fatal("empty activation should parse as identity")
	}
	if a, err := ParseActivation("linear"); err != nil || a != Identity {
		t.Fatal("linear should alias identity")
	}
}

func TestReLU(t *testing.T) {
	v := FromSlice([]float32{-2, -0.5, 0, 0.5, 2}, 5)
	ReLU.Apply(Serial, v)
	want := FromSlice([]float32{0, 0, 0, 0.5, 2}, 5)
	if !v.Equal(want) {
		t.Fatalf("ReLU = %v, want %v", v, want)
	}
}

func TestIdentityNoop(t *testing.T) {
	v := FromSlice([]float32{-1, 2}, 2)
	before := v.Clone()
	Identity.Apply(Serial, v)
	if !v.Equal(before) {
		t.Fatal("Identity modified values")
	}
}

func TestTanhSigmoidValues(t *testing.T) {
	v := FromSlice([]float32{0, 1}, 2)
	Tanh.Apply(Serial, v)
	if v.At(0) != 0 || math.Abs(float64(v.At(1))-math.Tanh(1)) > 1e-6 {
		t.Fatalf("Tanh = %v", v)
	}
	w := FromSlice([]float32{0, -1000, 1000}, 3)
	Sigmoid.Apply(Serial, w)
	if w.At(0) != 0.5 || w.At(1) > 1e-6 || w.At(2) < 1-1e-6 {
		t.Fatalf("Sigmoid = %v", w)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randTensor(rng, 5, 7)
	Softmax.Apply(Serial, m)
	for i := 0; i < 5; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %g out of [0,1]", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("softmax row %d sums to %g", i, sum)
		}
	}
}

func TestSoftmaxNumericallyStable(t *testing.T) {
	m := FromSlice([]float32{1000, 1000, 999}, 1, 3)
	Softmax.Apply(Serial, m)
	for _, v := range m.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflowed: %v", m)
		}
	}
}

func TestSoftmaxRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("softmax on rank-1 did not panic")
		}
	}()
	Softmax.Apply(Serial, New(3))
}

func TestActivationsParallelMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, a := range []Activation{ReLU, Tanh, Sigmoid} {
		v := randTensor(rng, 1000)
		w := v.Clone()
		a.Apply(Serial, v)
		a.Apply(NewPool(8, 64), w)
		if !v.ApproxEqual(w, 1e-6) {
			t.Fatalf("%v parallel/serial mismatch", a)
		}
	}
}

func TestFlopsPerElementMonotone(t *testing.T) {
	if Identity.FlopsPerElement() != 0 {
		t.Fatal("identity should be free")
	}
	if ReLU.FlopsPerElement() <= 0 || Tanh.FlopsPerElement() <= ReLU.FlopsPerElement() {
		t.Fatal("transcendentals should cost more than relu")
	}
}

func TestArgmax(t *testing.T) {
	m := FromSlice([]float32{0.1, 0.9, 0.0, 0.5, 0.2, 0.3}, 2, 3)
	got := Argmax(m)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Argmax = %v, want [1 0]", got)
	}
}

func TestArgmaxRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Argmax on rank-1 did not panic")
		}
	}()
	Argmax(New(3))
}

// Property: softmax preserves the argmax of each row.
func TestPropertySoftmaxPreservesArgmax(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randTensor(r, 3, 5)
		before := Argmax(m)
		Softmax.Apply(Serial, m)
		after := Argmax(m)
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReLU is idempotent.
func TestPropertyReLUIdempotent(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		v := FromSlice(append([]float32(nil), raw...), len(raw))
		ReLU.Apply(Serial, v)
		once := v.Clone()
		ReLU.Apply(Serial, v)
		return v.Equal(once)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
