package tensor

import "testing"

func TestPad2DZeroReturnsInput(t *testing.T) {
	in := New(1, 1, 2, 2)
	if Pad2D(in, 0) != in {
		t.Fatal("pad=0 should be a no-op returning the same tensor")
	}
}

func TestPad2DValues(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := Pad2D(in, 1)
	if out.Dim(2) != 4 || out.Dim(3) != 4 {
		t.Fatalf("padded shape = %v", out.Shape())
	}
	want := FromSlice([]float32{
		0, 0, 0, 0,
		0, 1, 2, 0,
		0, 3, 4, 0,
		0, 0, 0, 0,
	}, 1, 1, 4, 4)
	if !out.Equal(want) {
		t.Fatalf("Pad2D = %v, want %v", out, want)
	}
}

func TestPad2DMultiBatchChannel(t *testing.T) {
	in := New(2, 3, 2, 2)
	in.Fill(7)
	out := Pad2D(in, 2)
	if out.Dim(0) != 2 || out.Dim(1) != 3 || out.Dim(2) != 6 || out.Dim(3) != 6 {
		t.Fatalf("padded shape = %v", out.Shape())
	}
	var sum float32
	for _, v := range out.Data() {
		sum += v
	}
	if sum != 7*4*6 { // interior preserved per plane
		t.Fatalf("padded sum = %g", sum)
	}
}

func TestPad2DPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Pad2D(New(2, 2), 1) },
		func() { Pad2D(New(1, 1, 2, 2), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestConvSamePaddingPreservesShape(t *testing.T) {
	in := New(1, 2, 8, 8)
	f := New(4, 2, 3, 3)
	out := Conv2D(Serial, Pad2D(in, 1), f, nil)
	if out.Dim(2) != 8 || out.Dim(3) != 8 {
		t.Fatalf("same-padded conv output %v, want 8x8", out.Shape())
	}
}
