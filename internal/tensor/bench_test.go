package tensor

import (
	"math/rand"
	"testing"
)

func benchTensors(m, k, n int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(1))
	return randTensor(rng, m, k), randTensor(rng, k, n)
}

func BenchmarkMatMulSerial256(b *testing.B) {
	a, bb := benchTensors(256, 256, 256)
	c := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(Serial, c, a, bb)
	}
}

func BenchmarkMatMulParallel256(b *testing.B) {
	a, bb := benchTensors(256, 256, 256)
	c := New(256, 256)
	pool := NewPool(0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(pool, c, a, bb)
	}
}

func BenchmarkMatMulParallel1024(b *testing.B) {
	a, bb := benchTensors(1024, 1024, 1024)
	c := New(1024, 1024)
	pool := NewPool(0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(pool, c, a, bb)
	}
}

func BenchmarkConv2DDirect(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := randTensor(rng, 8, 3, 32, 32)
	f := randTensor(rng, 32, 3, 3, 3)
	bias := randTensor(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(Default, in, f, bias)
	}
}

func BenchmarkConv2DIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := randTensor(rng, 8, 3, 32, 32)
	f := randTensor(rng, 32, 3, 3, 3)
	bias := randTensor(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DIm2Col(Default, in, f, bias)
	}
}

func BenchmarkMaxPool2D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	in := randTensor(rng, 8, 32, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxPool2D(Default, in, 2)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	in := randTensor(rng, 4096, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := in.Clone()
		Softmax.Apply(Default, t)
	}
}

func BenchmarkPoolForOverhead(b *testing.B) {
	p := NewPool(0, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(1<<16, func(lo, hi int) {})
	}
}
