package tensor

import (
	"fmt"
	"math"
)

// Activation identifies a non-linear function applied element-wise after a
// layer, matching the paper's relu/tanh/sigmoid trio plus the identity and
// softmax used on output layers.
type Activation int

const (
	// Identity passes values through unchanged.
	Identity Activation = iota
	// ReLU is max(0, x).
	ReLU
	// Tanh is the hyperbolic tangent.
	Tanh
	// Sigmoid is the logistic function 1/(1+e^-x).
	Sigmoid
	// Softmax normalises each row into a probability distribution. It is
	// only valid on rank-2 tensors (rows = samples).
	Softmax
)

// String returns the lowercase activation name as used in model descriptors.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	case Softmax:
		return "softmax"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// ParseActivation converts a descriptor name into an Activation.
func ParseActivation(s string) (Activation, error) {
	switch s {
	case "identity", "linear", "":
		return Identity, nil
	case "relu":
		return ReLU, nil
	case "tanh":
		return Tanh, nil
	case "sigmoid":
		return Sigmoid, nil
	case "softmax":
		return Softmax, nil
	default:
		return Identity, fmt.Errorf("tensor: unknown activation %q", s)
	}
}

// Apply applies the activation to t in place, parallelised over the pool.
func (a Activation) Apply(pool *Pool, t *Tensor) {
	switch a {
	case Identity:
	case ReLU:
		d := t.data
		pool.For(len(d), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d[i] < 0 {
					d[i] = 0
				}
			}
		})
	case Tanh:
		d := t.data
		pool.For(len(d), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				d[i] = float32(math.Tanh(float64(d[i])))
			}
		})
	case Sigmoid:
		d := t.data
		pool.For(len(d), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				d[i] = float32(1 / (1 + math.Exp(-float64(d[i]))))
			}
		})
	case Softmax:
		if t.Rank() != 2 {
			panic(fmt.Sprintf("tensor: softmax needs a rank-2 tensor, got %v", t.Shape()))
		}
		m, n := t.Dim(0), t.Dim(1)
		d := t.data
		pool.For(m, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := d[i*n : (i+1)*n]
				softmaxRow(row)
			}
		})
	default:
		panic(fmt.Sprintf("tensor: unknown activation %d", int(a)))
	}
}

func softmaxRow(row []float32) {
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range row {
		e := math.Exp(float64(v - maxv))
		row[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range row {
		row[i] *= inv
	}
}

// FlopsPerElement returns the approximate floating-point cost of the
// activation per element; used by the device cost models.
func (a Activation) FlopsPerElement() int64 {
	switch a {
	case Identity:
		return 0
	case ReLU:
		return 1
	case Tanh, Sigmoid:
		return 8 // transcendental approximated as ~8 flops on all devices
	case Softmax:
		return 10
	default:
		return 1
	}
}

// Argmax returns the index of the maximum value in each row of a rank-2
// tensor; this is the classification decision of the paper's inference
// kernels.
func Argmax(t *Tensor) []int {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Argmax needs a rank-2 tensor, got %v", t.Shape()))
	}
	m, n := t.Dim(0), t.Dim(1)
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
