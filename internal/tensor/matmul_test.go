package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is a reference implementation used to validate the
// parallel kernel.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float32
			for p := 0; p < k; p++ {
				sum += a.At(i, p) * b.At(p, j)
			}
			c.Set(sum, i, j)
		}
	}
	return c
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(Serial, a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !c.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 7, 7)
	id := New(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(1, i, i)
	}
	if !MatMul(Default, a, id).ApproxEqual(a, 1e-6) {
		t.Fatal("A·I != A")
	}
	if !MatMul(Default, id, a).ApproxEqual(a, 1e-6) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulMatchesNaiveParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := NewPool(4, 3) // small groups to force multi-goroutine execution
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {17, 9, 23}, {64, 32, 16}} {
		a := randTensor(rng, dims[0], dims[1])
		b := randTensor(rng, dims[1], dims[2])
		got := MatMul(pool, a, b)
		want := naiveMatMul(a, b)
		if !got.ApproxEqual(want, 1e-4) {
			t.Fatalf("MatMul %v mismatch vs naive", dims)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a, b := New(2, 3), New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(Serial, a, b)
}

func TestMatMulRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with rank-1 operand did not panic")
		}
	}()
	MatMul(Serial, New(3), New(3, 2))
}

func TestMatMulIntoWrongShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto with wrong output shape did not panic")
		}
	}()
	MatMulInto(Serial, New(2, 2), New(2, 3), New(3, 3))
}

func TestMatMulIntoOverwrites(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := New(2, 2)
	c.Fill(99) // stale values must be cleared
	MatMulInto(Serial, c, a, b)
	if !c.Equal(b) {
		t.Fatalf("MatMulInto = %v, want %v", c, b)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float32{1, 1, 1}, 3)
	y := MatVec(Serial, a, x)
	if y.Dim(0) != 2 || y.At(0) != 6 || y.At(1) != 15 {
		t.Fatalf("MatVec = %v", y)
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 13, 7)
	x := randTensor(rng, 7)
	y := MatVec(Default, a, x)
	want := MatMul(Serial, a, x.Reshape(7, 1))
	for i := 0; i < 13; i++ {
		d := y.At(i) - want.At(i, 0)
		if d < -1e-4 || d > 1e-4 {
			t.Fatalf("MatVec[%d] = %g, want %g", i, y.At(i), want.At(i, 0))
		}
	}
}

func TestMatVecShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatVec dimension mismatch did not panic")
		}
	}()
	MatVec(Serial, New(2, 3), New(4))
}

func TestAddBiasRows(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	bias := FromSlice([]float32{10, 20}, 2)
	AddBiasRows(Serial, m, bias)
	want := FromSlice([]float32{11, 22, 13, 24}, 2, 2)
	if !m.Equal(want) {
		t.Fatalf("AddBiasRows = %v, want %v", m, want)
	}
}

func TestAddBiasRowsShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddBiasRows shape mismatch did not panic")
		}
	}()
	AddBiasRows(Serial, New(2, 2), New(3))
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("Transpose shape %v", at.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("Transpose[%d,%d] mismatch", j, i)
			}
		}
	}
	if !Transpose(at).Equal(a) {
		t.Fatal("double transpose != original")
	}
}

func TestTransposeRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Transpose on rank-3 did not panic")
		}
	}()
	Transpose(New(2, 2, 2))
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestPropertyTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		left := Transpose(MatMul(Serial, a, b))
		right := MatMul(Serial, Transpose(b), Transpose(a))
		return left.ApproxEqual(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over scalar doubling of A (2A)·B == 2(A·B).
func TestPropertyScalarLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		c1 := MatMul(Serial, a, b)
		a2 := a.Clone()
		for i, v := range a2.Data() {
			a2.Data()[i] = 2 * v
		}
		c2 := MatMul(Serial, a2, b)
		for i, v := range c1.Data() {
			d := c2.Data()[i] - 2*v
			if d < -1e-3 || d > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
