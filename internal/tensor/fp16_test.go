package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHalfKnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // max finite half
		{float32(math.Inf(1)), 0x7c00},  // +Inf
		{float32(math.Inf(-1)), 0xfc00}, // -Inf
		{5.9604645e-08, 0x0001},         // smallest subnormal
	}
	for _, c := range cases {
		if got := Float32ToHalf(c.f); got != c.h {
			t.Fatalf("Float32ToHalf(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if back := HalfToFloat32(c.h); back != c.f {
			t.Fatalf("HalfToFloat32(%#04x) = %g, want %g", c.h, back, c.f)
		}
	}
}

func TestHalfOverflowAndNaN(t *testing.T) {
	if got := Float32ToHalf(1e6); got != 0x7c00 {
		t.Fatalf("1e6 should overflow to +Inf, got %#04x", got)
	}
	if got := Float32ToHalf(-1e6); got != 0xfc00 {
		t.Fatalf("-1e6 should overflow to -Inf, got %#04x", got)
	}
	nan := Float32ToHalf(float32(math.NaN()))
	if nan&0x7c00 != 0x7c00 || nan&0x3ff == 0 {
		t.Fatalf("NaN encoded as %#04x", nan)
	}
	if !math.IsNaN(float64(HalfToFloat32(0x7e00))) {
		t.Fatal("half NaN should decode to NaN")
	}
	if got := Float32ToHalf(1e-10); got != 0 {
		t.Fatalf("1e-10 should underflow to zero, got %#04x", got)
	}
}

// Property: every representable half value round-trips exactly through
// float32.
func TestPropertyHalfRoundTrip(t *testing.T) {
	f := func(h uint16) bool {
		v := HalfToFloat32(h)
		if math.IsNaN(float64(v)) {
			back := HalfToFloat32(Float32ToHalf(v))
			return math.IsNaN(float64(back))
		}
		return Float32ToHalf(v) == h || (h == 0x8000 && Float32ToHalf(v) == 0x8000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: for values in half's normal range, conversion error stays
// within half's relative precision (2^-11).
func TestPropertyHalfPrecisionBound(t *testing.T) {
	f := func(raw int32) bool {
		v := float32(raw%60000) / 7.3
		if v == 0 {
			return true
		}
		back := HalfToFloat32(Float32ToHalf(v))
		rel := math.Abs(float64(back-v) / float64(v))
		return rel <= 1.0/2048+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHalfTensorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	orig := randTensor(rng, 16, 16)
	h := NewHalf(orig)
	if h.SizeBytes() != orig.SizeBytes()/2 {
		t.Fatalf("half storage %d bytes, want half of %d", h.SizeBytes(), orig.SizeBytes())
	}
	if h.Len() != orig.Len() || len(h.Shape()) != 2 {
		t.Fatal("half tensor metadata wrong")
	}
	if err := MaxAbsError(orig, h); err > 0.01 {
		t.Fatalf("fp16 round-trip error %g too large for N(0,1) values", err)
	}
	exp := h.Expand()
	if exp.Dim(0) != 16 || exp.Dim(1) != 16 {
		t.Fatal("expanded shape wrong")
	}
}
