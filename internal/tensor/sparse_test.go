package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCSRAndDense(t *testing.T) {
	m := FromSlice([]float32{
		1, 0, 2,
		0, 0, 0,
		0, 3, 0,
	}, 3, 3)
	c := NewCSR(m, 0)
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", c.NNZ())
	}
	if d := c.Density(); d < 0.32 || d > 0.34 {
		t.Fatalf("density = %g", d)
	}
	if !c.Dense().Equal(m) {
		t.Fatal("CSR round trip lost values")
	}
	if c.SizeBytes() <= 0 {
		t.Fatal("CSR size must be positive")
	}
}

func TestNewCSREpsilonThreshold(t *testing.T) {
	m := FromSlice([]float32{0.001, -0.001, 5, -5}, 2, 2)
	c := NewCSR(m, 0.01)
	if c.NNZ() != 2 {
		t.Fatalf("eps pruning kept %d values, want 2", c.NNZ())
	}
	// Negative eps behaves like zero.
	if NewCSR(m, -1).NNZ() != 4 {
		t.Fatal("negative eps should keep all non-zeros")
	}
}

func TestNewCSRPanicsOnRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCSR on rank-1 did not panic")
		}
	}()
	NewCSR(New(4), 0)
}

func TestMatMulCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	w := randTensor(rng, 13, 9)
	// Introduce zeros so CSR actually compresses.
	for i, v := range w.Data() {
		if v < 0 {
			w.Data()[i] = 0
		}
	}
	x := randTensor(rng, 7, 9)
	want := MatMul(Serial, x, Transpose(w))
	got := MatMulCSR(NewPool(4, 2), x, NewCSR(w, 0))
	if !want.ApproxEqual(got, 1e-4) {
		t.Fatal("sparse matmul differs from dense")
	}
}

func TestMatMulCSRPanics(t *testing.T) {
	w := NewCSR(New(3, 4), 0)
	for i, fn := range []func(){
		func() { MatMulCSR(Serial, New(2, 5), w) }, // inner mismatch
		func() { MatMulCSR(Serial, New(5), w) },    // bad rank
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPruneMagnitude(t *testing.T) {
	m := FromSlice([]float32{0.1, -5, 0.2, 4, -0.05, 3, 2, -0.3}, 2, 4)
	zeroed := PruneMagnitude(m, 0.5)
	if zeroed != 4 {
		t.Fatalf("zeroed %d, want 4", zeroed)
	}
	// The four large-magnitude entries survive.
	for _, want := range []struct{ i, j int }{{0, 1}, {0, 3}, {1, 1}, {1, 2}} {
		if m.At(want.i, want.j) == 0 {
			t.Fatalf("large weight at (%d,%d) was pruned", want.i, want.j)
		}
	}
	if PruneMagnitude(m, 0) != 0 {
		t.Fatal("fraction 0 should prune nothing")
	}
	n := New(2, 2)
	n.Fill(1)
	if got := PruneMagnitude(n, 2); got != 4 {
		t.Fatalf("fraction >1 should clamp and prune all, got %d", got)
	}
}

// Property: pruning fraction p zeroes ≈p of the weights and never zeroes
// more than requested.
func TestPropertyPruneFraction(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randTensor(rng, 8, 8)
		p := float64(pRaw%90) / 100
		k := int(float64(m.Len()) * p)
		zeroed := PruneMagnitude(m, p)
		return zeroed == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR(M).Dense() == M with zeros dropped at eps=0.
func TestPropertyCSRFaithful(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randTensor(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		PruneMagnitude(m, 0.4)
		return NewCSR(m, 0).Dense().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
