package tensor

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", tt.Rank())
	}
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	if tt.Dim(0) != 2 || tt.Dim(1) != 3 || tt.Dim(2) != 4 {
		t.Fatalf("Shape = %v, want [2 3 4]", tt.Shape())
	}
	for _, v := range tt.Data() {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4)
	tt.Set(7.5, 2, 1)
	if got := tt.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %g, want 7.5", got)
	}
	// Row-major layout: offset of (2,1) in a 3x4 tensor is 2*4+1 = 9.
	if tt.Data()[9] != 7.5 {
		t.Fatal("row-major offset incorrect")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	tt.At(2, 0)
}

func TestAtWrongRankPanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At with wrong rank did not panic")
		}
	}()
	tt.At(1)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares backing data")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("Clone not equal to original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Fatal("Reshape should share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape with wrong volume did not panic")
		}
	}()
	a.Reshape(4, 2)
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v, want [4 5 6]", r)
	}
	r[0] = -1
	if a.At(1, 0) != -1 {
		t.Fatal("Row should be a view")
	}
}

func TestFillAndEqual(t *testing.T) {
	a := New(2, 2)
	a.Fill(3)
	b := FromSlice([]float32{3, 3, 3, 3}, 2, 2)
	if !a.Equal(b) {
		t.Fatal("Fill/Equal mismatch")
	}
	c := FromSlice([]float32{3, 3, 3, 3}, 4)
	if a.Equal(c) {
		t.Fatal("Equal ignored shape")
	}
}

func TestApproxEqual(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1.0005, 2}, 2)
	if !a.ApproxEqual(b, 1e-3) {
		t.Fatal("ApproxEqual too strict")
	}
	if a.ApproxEqual(b, 1e-5) {
		t.Fatal("ApproxEqual too lax")
	}
}

func TestStringTruncates(t *testing.T) {
	a := New(100)
	s := a.String()
	if !strings.Contains(s, "more") {
		t.Fatalf("String() should truncate long tensors: %s", s)
	}
	b := FromSlice([]float32{1, 2}, 2)
	if !strings.Contains(b.String(), "1, 2") {
		t.Fatalf("short String() = %s", b.String())
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(10, 10).SizeBytes(); got != 400 {
		t.Fatalf("SizeBytes = %d, want 400", got)
	}
}

// Property: for any data, FromSlice→Clone→Equal holds, and reshaping to a
// factored shape preserves the element sequence.
func TestPropertyCloneEqual(t *testing.T) {
	f := func(raw []float32) bool {
		tt := FromSlice(raw, len(raw))
		return tt.Equal(tt.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	return t
}
