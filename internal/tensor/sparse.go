package tensor

import "fmt"

// CSRMatrix is a compressed-sparse-row matrix for pruned dense layers:
// the sparsification line of work the paper cites ([14]-[16], lottery
// tickets) reduces inference work by dropping small weights; CSR makes
// the remaining work proportional to the surviving non-zeros.
type CSRMatrix struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Values     []float32
}

// NewCSR compresses a rank-2 tensor, keeping entries with |v| > eps.
func NewCSR(t *Tensor, eps float32) *CSRMatrix {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: NewCSR needs a rank-2 tensor, got %v", t.Shape()))
	}
	if eps < 0 {
		eps = 0
	}
	m, n := t.Dim(0), t.Dim(1)
	c := &CSRMatrix{Rows: m, Cols: n, RowPtr: make([]int32, m+1)}
	for i := 0; i < m; i++ {
		row := t.Row(i)
		for j, v := range row {
			if v > eps || v < -eps {
				c.ColIdx = append(c.ColIdx, int32(j))
				c.Values = append(c.Values, v)
			}
		}
		c.RowPtr[i+1] = int32(len(c.Values))
	}
	return c
}

// NNZ returns the number of stored non-zeros.
func (c *CSRMatrix) NNZ() int { return len(c.Values) }

// Density returns NNZ / (rows×cols).
func (c *CSRMatrix) Density() float64 {
	return float64(c.NNZ()) / float64(c.Rows*c.Cols)
}

// SizeBytes returns the CSR payload footprint.
func (c *CSRMatrix) SizeBytes() int64 {
	return int64(len(c.RowPtr))*4 + int64(len(c.ColIdx))*4 + int64(len(c.Values))*4
}

// Dense materialises the full matrix.
func (c *CSRMatrix) Dense() *Tensor {
	t := New(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			t.Set(c.Values[p], i, int(c.ColIdx[p]))
		}
	}
	return t
}

// MatMulCSR computes C = A·Bᵀ where B is sparse: A is [batch, cols] and
// the result is [batch, rows] — the pruned dense-layer forward pass
// (out = x·Wᵀ with W in CSR). Work is parallel over batch rows.
func MatMulCSR(pool *Pool, a *Tensor, b *CSRMatrix) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulCSR needs rank-2 input, got %v", a.Shape()))
	}
	if a.Dim(1) != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulCSR inner dimensions differ: %d vs %d", a.Dim(1), b.Cols))
	}
	batch := a.Dim(0)
	out := New(batch, b.Rows)
	ad, od := a.Data(), out.Data()
	cols := b.Cols
	pool.For(batch, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			x := ad[s*cols : (s+1)*cols]
			dst := od[s*b.Rows : (s+1)*b.Rows]
			for i := 0; i < b.Rows; i++ {
				var sum float32
				for p := b.RowPtr[i]; p < b.RowPtr[i+1]; p++ {
					sum += b.Values[p] * x[b.ColIdx[p]]
				}
				dst[i] = sum
			}
		}
	})
	return out
}

// PruneMagnitude zeroes the fraction of smallest-magnitude entries of a
// rank-2 tensor in place and returns the count of zeroed weights —
// magnitude pruning, the baseline sparsification of the lottery-ticket
// literature.
func PruneMagnitude(t *Tensor, fraction float64) int {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: PruneMagnitude needs a rank-2 tensor, got %v", t.Shape()))
	}
	if fraction <= 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	n := t.Len()
	k := int(float64(n) * fraction)
	if k == 0 {
		return 0
	}
	// Find the magnitude threshold via a copied, partially sorted slice.
	mags := make([]float32, n)
	for i, v := range t.Data() {
		if v < 0 {
			v = -v
		}
		mags[i] = v
	}
	threshold := quickselect(mags, k-1)
	zeroed := 0
	for i, v := range t.Data() {
		av := v
		if av < 0 {
			av = -av
		}
		if av <= threshold && zeroed < k {
			t.Data()[i] = 0
			zeroed++
		}
	}
	return zeroed
}

// quickselect returns the k-th smallest element (0-indexed), mutating s.
func quickselect(s []float32, k int) float32 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		p := partition(s, lo, hi)
		switch {
		case p == k:
			return s[p]
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return s[k]
}

func partition(s []float32, lo, hi int) int {
	// Median-of-three pivot to dodge adversarial orderings.
	mid := (lo + hi) / 2
	if s[mid] < s[lo] {
		s[mid], s[lo] = s[lo], s[mid]
	}
	if s[hi] < s[lo] {
		s[hi], s[lo] = s[lo], s[hi]
	}
	if s[hi] < s[mid] {
		s[hi], s[mid] = s[mid], s[hi]
	}
	pivot := s[mid]
	s[mid], s[hi-1] = s[hi-1], s[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if s[j] < pivot {
			s[i], s[j] = s[j], s[i]
			i++
		}
	}
	s[i], s[hi-1] = s[hi-1], s[i]
	return i
}
