// Package tensor provides the dense float32 math substrate used by the
// bomw inference engines: row-major tensors, parallel matrix multiply,
// 2-D convolution, max pooling and the usual activation functions.
//
// Everything in this package operates on real data with real arithmetic;
// the device layer (internal/device) only decides how long that work is
// *charged* to take on each simulated processor. Parallelism follows the
// paper's OpenCL work-group structure: a worker pool partitions the
// node/sample space exactly as work-items are partitioned into work-groups.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// scalar-less tensor; use New or FromSlice to construct useful values.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutating it mutates
// the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	data := make([]float32, len(t.data))
	copy(data, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: data}
}

// Reshape returns a view of t with a new shape of equal volume. The data
// is shared with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to shape %v", len(t.data), shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Row returns a view of row i of a rank-2 tensor.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	w := t.shape[1]
	return t.data[i*w : (i+1)*w]
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Equal reports whether t and u have the same shape and identical elements.
func (t *Tensor) Equal(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	for i := range t.data {
		if t.data[i] != u.data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether t and u have the same shape and element-wise
// absolute differences no greater than eps.
func (t *Tensor) ApproxEqual(u *Tensor, eps float32) bool {
	if len(t.data) != len(u.data) || len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	for i := range t.data {
		d := t.data[i] - u.data[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

// String renders a compact description, e.g. "Tensor[2 3]{...}".
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v{", t.shape)
	n := len(t.data)
	if n > 8 {
		for i := 0; i < 8; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%g", t.data[i])
		}
		fmt.Fprintf(&b, ", … %d more", n-8)
	} else {
		for i, v := range t.data {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%g", v)
		}
	}
	b.WriteString("}")
	return b.String()
}

// SizeBytes returns the memory footprint of the tensor payload in bytes.
func (t *Tensor) SizeBytes() int64 { return int64(len(t.data)) * 4 }
