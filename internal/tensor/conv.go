package tensor

import "fmt"

// Conv2D computes a batched 2-D cross-correlation ("valid" padding,
// stride 1), the convolution variant used by the paper's CNN kernels.
//
//	input:   [batch, inC, inH, inW]
//	filters: [outC, inC, kH, kW]
//	bias:    [outC] (may be nil)
//	output:  [batch, outC, outH, outW], outH = inH-kH+1, outW = inW-kW+1
//
// Work is partitioned over (batch × outC) slices, mirroring the paper's
// per-filter, per-sample OpenCL parallelisation.
func Conv2D(pool *Pool, input, filters, bias *Tensor) *Tensor {
	if input.Rank() != 4 || filters.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D needs rank-4 input and filters, got %v, %v", input.Shape(), filters.Shape()))
	}
	batch, inC, inH, inW := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	outC, fc, kH, kW := filters.Dim(0), filters.Dim(1), filters.Dim(2), filters.Dim(3)
	if fc != inC {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch: input %d, filters %d", inC, fc))
	}
	outH, outW := inH-kH+1, inW-kW+1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D filter %dx%d larger than input %dx%d", kH, kW, inH, inW))
	}
	if bias != nil && (bias.Rank() != 1 || bias.Dim(0) != outC) {
		panic(fmt.Sprintf("tensor: Conv2D bias shape %v, want [%d]", bias.Shape(), outC))
	}
	out := New(batch, outC, outH, outW)
	in, fd, od := input.data, filters.data, out.data

	inPlane := inH * inW
	inVol := inC * inPlane
	fPlane := kH * kW
	fVol := inC * fPlane
	outPlane := outH * outW
	outVol := outC * outPlane

	pool.For(batch*outC, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			b, oc := w/outC, w%outC
			src := in[b*inVol : (b+1)*inVol]
			filt := fd[oc*fVol : (oc+1)*fVol]
			dst := od[b*outVol+oc*outPlane : b*outVol+(oc+1)*outPlane]
			var bv float32
			if bias != nil {
				bv = bias.data[oc]
			}
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					sum := bv
					for c := 0; c < inC; c++ {
						plane := src[c*inPlane:]
						ftab := filt[c*fPlane:]
						for fy := 0; fy < kH; fy++ {
							srow := plane[(oy+fy)*inW+ox:]
							frow := ftab[fy*kW:]
							for fx := 0; fx < kW; fx++ {
								sum += srow[fx] * frow[fx]
							}
						}
					}
					dst[oy*outW+ox] = sum
				}
			}
		}
	})
	return out
}

// MaxPool2D applies non-overlapping max pooling with a square window of
// size k (stride k). Ragged borders are truncated, matching the paper's
// pooling layers.
//
//	input:  [batch, C, H, W]
//	output: [batch, C, H/k, W/k]
func MaxPool2D(pool *Pool, input *Tensor, k int) *Tensor {
	if input.Rank() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D needs rank-4 input, got %v", input.Shape()))
	}
	if k <= 0 {
		panic("tensor: MaxPool2D window must be positive")
	}
	batch, ch, inH, inW := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	outH, outW := inH/k, inW/k
	if outH == 0 || outW == 0 {
		panic(fmt.Sprintf("tensor: MaxPool2D window %d larger than input %dx%d", k, inH, inW))
	}
	out := New(batch, ch, outH, outW)
	in, od := input.data, out.data
	inPlane, outPlane := inH*inW, outH*outW

	pool.For(batch*ch, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			src := in[w*inPlane : (w+1)*inPlane]
			dst := od[w*outPlane : (w+1)*outPlane]
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := src[oy*k*inW+ox*k]
					for fy := 0; fy < k; fy++ {
						row := src[(oy*k+fy)*inW+ox*k:]
						for fx := 0; fx < k; fx++ {
							if row[fx] > best {
								best = row[fx]
							}
						}
					}
					dst[oy*outW+ox] = best
				}
			}
		}
	})
	return out
}

// Im2Col unrolls convolution windows of input [batch, C, H, W] into a
// matrix of shape [batch*outH*outW, C*kH*kW], so that Conv2D can be
// expressed as a single MatMul against flattened filters. This is the
// classic GPU-friendly lowering; bomw uses it as the "column-major
// friendly" alternative the paper evaluated.
func Im2Col(input *Tensor, kH, kW int) *Tensor {
	if input.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs rank-4 input, got %v", input.Shape()))
	}
	batch, ch, inH, inW := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	outH, outW := inH-kH+1, inW-kW+1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col window %dx%d larger than input %dx%d", kH, kW, inH, inW))
	}
	cols := New(batch*outH*outW, ch*kH*kW)
	in, cd := input.data, cols.data
	inPlane := inH * inW
	inVol := ch * inPlane
	rowLen := ch * kH * kW

	r := 0
	for b := 0; b < batch; b++ {
		src := in[b*inVol : (b+1)*inVol]
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				dst := cd[r*rowLen : (r+1)*rowLen]
				p := 0
				for c := 0; c < ch; c++ {
					plane := src[c*inPlane:]
					for fy := 0; fy < kH; fy++ {
						copy(dst[p:p+kW], plane[(oy+fy)*inW+ox:])
						p += kW
					}
				}
				r++
			}
		}
	}
	return cols
}

// Conv2DIm2Col computes the same result as Conv2D via the im2col+matmul
// lowering. Used in tests as a cross-check and by benchmarks comparing
// the two data layouts.
func Conv2DIm2Col(pool *Pool, input, filters, bias *Tensor) *Tensor {
	batch := input.Dim(0)
	outC, kH, kW := filters.Dim(0), filters.Dim(2), filters.Dim(3)
	outH, outW := input.Dim(2)-kH+1, input.Dim(3)-kW+1
	cols := Im2Col(input, kH, kW)                  // [batch*outH*outW, C*kH*kW]
	w := filters.Reshape(outC, filters.Len()/outC) // [outC, C*kH*kW]
	prod := MatMul(pool, cols, Transpose(w))       // [batch*outH*outW, outC]
	out := New(batch, outC, outH, outW)            // transpose back to NCHW
	plane := outH * outW
	for b := 0; b < batch; b++ {
		for i := 0; i < plane; i++ {
			row := prod.Row(b*plane + i)
			for oc := 0; oc < outC; oc++ {
				v := row[oc]
				if bias != nil {
					v += bias.data[oc]
				}
				out.data[b*outC*plane+oc*plane+i] = v
			}
		}
	}
	return out
}
