package tensor

import "fmt"

// Pad2D returns a copy of input [batch, C, H, W] with pad rows/columns of
// zeros added on every spatial side, producing [batch, C, H+2p, W+2p].
// pad = 0 returns the input unchanged (no copy).
func Pad2D(input *Tensor, pad int) *Tensor {
	if input.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Pad2D needs rank-4 input, got %v", input.Shape()))
	}
	if pad < 0 {
		panic("tensor: Pad2D padding must be non-negative")
	}
	if pad == 0 {
		return input
	}
	batch, ch, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	ph, pw := h+2*pad, w+2*pad
	out := New(batch, ch, ph, pw)
	in, od := input.data, out.data
	for p := 0; p < batch*ch; p++ {
		src := in[p*h*w:]
		dst := od[p*ph*pw:]
		for y := 0; y < h; y++ {
			copy(dst[(y+pad)*pw+pad:(y+pad)*pw+pad+w], src[y*w:(y+1)*w])
		}
	}
	return out
}
