package tensor

import "math"

// IEEE 754 half-precision conversion. The paper's related work ([4])
// accelerates inference with half-precision arithmetic; bomw supports
// fp16 *storage* (halving weight footprints and memory traffic, which
// the device models translate into speed-ups for bandwidth-bound models)
// while computing in float32, the way fp16 inference is typically
// deployed on devices without native half ALUs.

// Float32ToHalf converts a float32 to its IEEE 754 binary16 bit pattern,
// with round-to-nearest-even, overflow to infinity and gradual underflow
// to subnormals.
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow or already Inf/NaN.
		if bits&0x7fffffff > 0x7f800000 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // ±Inf
	case exp <= 0:
		// Subnormal or zero.
		if exp < -10 {
			return sign // underflow to zero
		}
		mant |= 0x800000 // implicit leading 1
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest even.
		rem := mant & ((1 << shift) - 1)
		midpoint := uint32(1) << (shift - 1)
		if rem > midpoint || (rem == midpoint && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into the exponent: correct (rounds up)
		}
		return half
	}
}

// HalfToFloat32 expands an IEEE 754 binary16 bit pattern to float32.
func HalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: normalise.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0x7f800000 | mant<<13) // Inf/NaN
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// HalfTensor stores tensor data in fp16 — half the bytes of a Tensor —
// and materialises float32 views for compute.
type HalfTensor struct {
	shape []int
	data  []uint16
}

// NewHalf compresses a float32 tensor into fp16 storage.
func NewHalf(t *Tensor) *HalfTensor {
	h := &HalfTensor{shape: append([]int(nil), t.Shape()...), data: make([]uint16, t.Len())}
	for i, v := range t.Data() {
		h.data[i] = Float32ToHalf(v)
	}
	return h
}

// Shape returns the tensor dimensions.
func (h *HalfTensor) Shape() []int { return h.shape }

// Len returns the element count.
func (h *HalfTensor) Len() int { return len(h.data) }

// SizeBytes returns the fp16 payload size.
func (h *HalfTensor) SizeBytes() int64 { return int64(len(h.data)) * 2 }

// Expand materialises the float32 view.
func (h *HalfTensor) Expand() *Tensor {
	t := New(h.shape...)
	for i, v := range h.data {
		t.Data()[i] = HalfToFloat32(v)
	}
	return t
}

// MaxAbsError returns the largest absolute element difference between the
// original tensor and its fp16 round trip — the quantisation noise floor.
func MaxAbsError(orig *Tensor, h *HalfTensor) float32 {
	exp := h.Expand()
	var worst float32
	for i, v := range orig.Data() {
		d := v - exp.Data()[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
