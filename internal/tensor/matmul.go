package tensor

import "fmt"

// MatMul computes C = A·B for rank-2 tensors A (m×k) and B (k×n), writing
// into a freshly allocated m×n tensor. Work is partitioned over the pool
// by output row, matching the paper's thread-per-node parallelisation of
// dense layers.
func MatMul(pool *Pool, a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v × %v", a.Shape(), b.Shape()))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	MatMulInto(pool, c, a, b)
	return c
}

// MatMulInto computes C = A·B into an existing m×n tensor, avoiding
// allocation on hot paths.
func MatMulInto(pool *Pool, c, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto output shape %v, want [%d %d]", c.Shape(), m, n))
	}
	ad, bd, cd := a.data, b.data, c.data
	pool.For(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := cd[i*n : (i+1)*n]
			for x := range crow {
				crow[x] = 0
			}
			arow := ad[i*k : (i+1)*k]
			// k-outer loop with a row of B streamed per iteration keeps
			// accesses row-major for both operands (the paper's chosen
			// layout for CPU SIMD friendliness).
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for x, bv := range brow {
					crow[x] += av * bv
				}
			}
		}
	})
}

// MatVec computes y = A·x for A (m×k) and x (k), returning a length-m
// rank-1 tensor.
func MatVec(pool *Pool, a, x *Tensor) *Tensor {
	if a.Rank() != 2 || x.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec needs rank-2 × rank-1, got %v × %v", a.Shape(), x.Shape()))
	}
	m, k := a.Dim(0), a.Dim(1)
	if x.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatVec dimensions differ: %v × %v", a.Shape(), x.Shape()))
	}
	y := New(m)
	ad, xd, yd := a.data, x.data, y.data
	pool.For(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float32
			arow := ad[i*k : (i+1)*k]
			for p, av := range arow {
				sum += av * xd[p]
			}
			yd[i] = sum
		}
	})
	return y
}

// AddBiasRows adds bias (length n) to every row of the m×n tensor t,
// in place.
func AddBiasRows(pool *Pool, t, bias *Tensor) {
	if t.Rank() != 2 || bias.Rank() != 1 || bias.Dim(0) != t.Dim(1) {
		panic(fmt.Sprintf("tensor: AddBiasRows shape mismatch %v + %v", t.Shape(), bias.Shape()))
	}
	m, n := t.Dim(0), t.Dim(1)
	td, bd := t.data, bias.data
	pool.For(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := td[i*n : (i+1)*n]
			for x := range row {
				row[x] += bd[x]
			}
		}
	})
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose on rank-%d tensor", a.Rank()))
	}
	m, n := a.Dim(0), a.Dim(1)
	t := New(n, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			t.data[j*m+i] = v
		}
	}
	return t
}
