package tensor

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool that partitions index ranges across
// goroutines. It mirrors the paper's OpenCL work-group structure: a range
// of work-items is split into contiguous groups, and each worker executes
// whole groups. GroupSize is the analogue of work-items-per-work-group
// (the paper uses 4096 for CPUs and 256 for GPUs).
type Pool struct {
	workers   int
	groupSize int
}

// NewPool returns a pool with the given number of workers and work-group
// size. workers <= 0 selects GOMAXPROCS; groupSize <= 0 selects 4096 (the
// paper's CPU-optimal configuration).
func NewPool(workers, groupSize int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if groupSize <= 0 {
		groupSize = 4096
	}
	return &Pool{workers: workers, groupSize: groupSize}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// GroupSize returns the work-group size.
func (p *Pool) GroupSize() int { return p.groupSize }

// For executes fn(lo, hi) over disjoint sub-ranges covering [0, n),
// in parallel across the pool's workers. Each sub-range is a multiple of
// the group size except possibly the last. For small n the call is run
// inline to avoid goroutine overhead.
func (p *Pool) For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	groups := (n + p.groupSize - 1) / p.groupSize
	if groups == 1 || p.workers == 1 {
		fn(0, n)
		return
	}
	workers := p.workers
	if groups < workers {
		workers = groups
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				g := next
				next++
				mu.Unlock()
				if g >= groups {
					return
				}
				lo := g * p.groupSize
				hi := lo + p.groupSize
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForEach executes fn(i) for every i in [0, n) using For.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Serial is a pool that always runs inline; useful for tests and for
// modelling a single compute unit.
var Serial = &Pool{workers: 1, groupSize: 1 << 30}

// Default is a pool sized to the host machine with the paper's CPU
// work-group configuration.
var Default = NewPool(0, 4096)
