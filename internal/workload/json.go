package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSON persistence for workload specs — the loadgen input format. The
// decoder is strict (unknown fields are errors, so typos in a spec file
// surface instead of silently defaulting) and every accepted spec has
// passed Validate: NaN/negative rates, unknown distributions and
// malformed mixes come back as the package's typed errors, never as a
// later panic.

// ParseSpec decodes and validates one spec document.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: decoding spec: %w", err)
	}
	// A second document in the stream is a malformed spec file, not
	// extra input to ignore.
	if dec.More() {
		return Spec{}, fmt.Errorf("workload: decoding spec: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseSpecBytes decodes and validates a spec held in memory.
func ParseSpecBytes(data []byte) (Spec, error) {
	return ParseSpec(bytes.NewReader(data))
}

// LoadSpecFile reads, decodes and validates a spec file.
func LoadSpecFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	s, err := ParseSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteJSON serialises the spec (indented, stable field order) so specs
// round-trip through ParseSpec.
func (s Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("workload: encoding spec: %w", err)
	}
	return nil
}
