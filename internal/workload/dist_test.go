package workload

import (
	"math"
	"math/rand"
	"testing"
)

// Statistical checks on the interarrival samplers: every distribution is
// normalised to unit mean, so the sample mean must land on 1 and the
// sample variance on the distribution's analytic value. The draws are
// seeded, so these are exact regression tests, not flaky Monte Carlo —
// the tolerances just have to hold for this seed and sample count.
func TestSamplerMoments(t *testing.T) {
	const n = 200_000
	cases := []struct {
		name    string
		arrival Arrival
	}{
		{"poisson", Arrival{Dist: DistPoisson, Rate: 1}},
		{"gamma-regular", Arrival{Dist: DistGamma, Rate: 1, Shape: 4}},
		{"gamma-exponential", Arrival{Dist: DistGamma, Rate: 1, Shape: 1}},
		{"gamma-heavy", Arrival{Dist: DistGamma, Rate: 1, Shape: 0.5}},
		{"weibull-regular", Arrival{Dist: DistWeibull, Rate: 1, Shape: 1.5}},
		{"weibull-heavy", Arrival{Dist: DistWeibull, Rate: 1, Shape: 0.7}},
		{"uniform", Arrival{Dist: DistUniform, Rate: 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			draw := newSampler(tc.arrival)
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				x := draw(rng)
				if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("draw %d = %v: interarrivals must be finite and non-negative", i, x)
				}
				sum += x
				sumSq += x * x
			}
			mean := sum / n
			variance := sumSq/n - mean*mean
			if math.Abs(mean-1) > 0.02 {
				t.Errorf("sample mean %.4f, want 1 ± 0.02", mean)
			}
			want := analyticVariance(tc.arrival)
			if rel := math.Abs(variance-want) / want; rel > 0.05 {
				t.Errorf("sample variance %.4f, want %.4f ± 5%% (rel err %.3f)", variance, want, rel)
			}
		})
	}
}

// The shape parameter's whole point is controlling burstiness: shape >1
// must be more regular than Poisson (CV < 1), shape <1 burstier (CV > 1).
func TestShapeOrdersBurstiness(t *testing.T) {
	cv := func(a Arrival) float64 {
		return math.Sqrt(analyticVariance(a)) // unit mean, so CV = stddev
	}
	regular := cv(Arrival{Dist: DistGamma, Rate: 1, Shape: 4})
	pois := cv(Arrival{Dist: DistPoisson, Rate: 1})
	heavy := cv(Arrival{Dist: DistGamma, Rate: 1, Shape: 0.5})
	if !(regular < pois && pois < heavy) {
		t.Fatalf("CV ordering broken: shape4 %.3f, poisson %.3f, shape0.5 %.3f", regular, pois, heavy)
	}
}

// Envelope factors must stay inside their documented ranges and hit
// their extremes.
func TestEnvelopeFactorRanges(t *testing.T) {
	diurnal := Envelope{Kind: EnvDiurnal, PeriodS: 10, Floor: 0.2}
	minF, maxF := math.Inf(1), math.Inf(-1)
	for ti := 0; ti < 1000; ti++ {
		f := diurnal.factor(float64(ti) * 0.01)
		minF = math.Min(minF, f)
		maxF = math.Max(maxF, f)
	}
	if minF < 0.2-1e-9 || maxF > 1+1e-9 {
		t.Fatalf("diurnal factor range [%.3f, %.3f], want within [0.2, 1]", minF, maxF)
	}
	if maxF < 0.99 || minF > 0.21 {
		t.Fatalf("diurnal factor never reached its extremes: [%.3f, %.3f]", minF, maxF)
	}

	bursty := Envelope{Kind: EnvBursty, PeriodS: 10, BurstS: 2, Gain: 5}
	if f := bursty.factor(1); f != 5 {
		t.Fatalf("in-burst factor %v, want 5", f)
	}
	if f := bursty.factor(3); f != 1 {
		t.Fatalf("off-burst factor %v, want 1", f)
	}
	if f := bursty.factor(11); f != 5 {
		t.Fatalf("burst must recur every period: factor(11) = %v, want 5", f)
	}
}
