package scenario

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"bomw/internal/core"
	"bomw/internal/trace"
	"bomw/internal/workload"
)

// Submitter is the live serving surface a scenario can drive. Both
// *core.Pipeline (one node) and *cluster.Cluster (the routing tier)
// satisfy it with their existing Submit methods.
type Submitter interface {
	Submit(ctx context.Context, req core.PipelineRequest) (*core.Future, error)
}

// LiveTarget names a Submitter for reports ("pipeline", "cluster:4").
type LiveTarget struct {
	Name   string
	Target Submitter
}

// noSLO opts live queries out of deadline enforcement in the scenarios
// whose metric is observed latency, not SLO attainment.
const noSLO = -1 * time.Nanosecond

// offlineWindow bounds outstanding Offline queries so the scenario
// applies backpressure instead of tripping admission control.
const offlineWindow = 64

// RunLive executes one scenario against a live pipeline or cluster.
// Arrivals for the Server scenario are paced in wall time by trace.Play
// at `speedup`× real time; latencies still come from the target's
// virtual clock. Live reports are statistical (concurrent batching is
// not deterministic) — byte-stable runs come from Run instead.
func RunLive(ctx context.Context, t LiveTarget, p Params, speedup float64) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t.Target == nil {
		return Report{}, fmt.Errorf("scenario: live run needs a submit target")
	}
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return Report{}, err
	}
	switch p.Kind {
	case SingleStream, MultiStream:
		return runLiveStream(ctx, t, p)
	case Offline:
		return runLiveOffline(ctx, t, p)
	case Server:
		return runLiveServer(ctx, t, p, speedup)
	}
	return Report{}, fmt.Errorf("scenario: unknown scenario kind %q", p.Kind)
}

// record folds one live completion into the collector and the
// dropped/expired/failed tallies. It returns true when the query
// completed successfully.
func record(col *collector, c core.Completion, samples int, expired, failed *int) bool {
	if c.Err != nil {
		if errors.Is(c.Err, core.ErrDeadlineExceeded) {
			*expired++
		} else {
			*failed++
		}
		return false
	}
	col.add(c.Latency, c.Completed, samples, c.EnergyJ, c.Decision.Device)
	return true
}

func runLiveStream(ctx context.Context, t LiveTarget, p Params) (Report, error) {
	col := newCollector()
	var expired, failed int
	for q := 0; q < p.Queries; q++ {
		fut, err := t.Target.Submit(ctx, core.PipelineRequest{
			Model: p.Model, Policy: p.Policy, Batch: p.Batch, Deadline: noSLO,
		})
		if err != nil {
			return Report{}, fmt.Errorf("scenario %s query %d: %w", p.Kind, q, err)
		}
		c, err := fut.Wait(ctx)
		if err != nil {
			return Report{}, fmt.Errorf("scenario %s query %d: %w", p.Kind, q, err)
		}
		record(col, c, p.Batch, &expired, &failed)
	}
	r := col.report(p.Kind, t.Name, p)
	r.Expired, r.Failed = expired, failed
	return r, nil
}

// runLiveOffline keeps up to offlineWindow queries outstanding: enough
// concurrency for the batcher to aggregate, bounded so the backlog
// applies backpressure here instead of tripping admission control. A
// shed query (ErrAdmissionFull) waits for the oldest outstanding future
// and retries.
func runLiveOffline(ctx context.Context, t LiveTarget, p Params) (Report, error) {
	col := newCollector()
	var expired, failed, dropped int
	var pending []*core.Future
	drainOne := func() error {
		c, err := pending[0].Wait(ctx)
		pending = pending[1:]
		if err != nil {
			return err
		}
		record(col, c, p.Batch, &expired, &failed)
		return nil
	}
	for q := 0; q < p.Queries; q++ {
		for len(pending) >= offlineWindow {
			if err := drainOne(); err != nil {
				return Report{}, fmt.Errorf("scenario offline: %w", err)
			}
		}
		fut, err := t.Target.Submit(ctx, core.PipelineRequest{
			Model: p.Model, Policy: p.Policy, Batch: p.Batch, Deadline: noSLO,
		})
		if errors.Is(err, core.ErrAdmissionFull) && len(pending) > 0 {
			if derr := drainOne(); derr != nil {
				return Report{}, fmt.Errorf("scenario offline: %w", derr)
			}
			q--
			continue
		}
		if err != nil {
			dropped++
			continue
		}
		pending = append(pending, fut)
	}
	for len(pending) > 0 {
		if err := drainOne(); err != nil {
			return Report{}, fmt.Errorf("scenario offline: %w", err)
		}
	}
	r := col.report(Offline, t.Name, p)
	r.Dropped, r.Expired, r.Failed = dropped, expired, failed
	return r, nil
}

// runLiveServer offers the compiled arrival stream open-loop: trace.Play
// paces submissions in wall time, completions resolve concurrently, and
// every offered query lands in exactly one of completed / dropped /
// expired / failed. Queries carry Deadline = SLO, so admission control
// and deadline culling are in the measured path.
func runLiveServer(ctx context.Context, t LiveTarget, p Params, speedup float64) (Report, error) {
	spec, err := p.serverTrace()
	if err != nil {
		return Report{}, err
	}
	tr, err := workload.Compile(spec)
	if err != nil {
		return Report{}, fmt.Errorf("scenario server: compiling arrivals: %w", err)
	}
	if speedup <= 0 {
		speedup = 1
	}

	col := newCollector()
	var mu sync.Mutex
	var wg sync.WaitGroup
	var expired, failed, dropped, inSLO int

	playCtx, stopPlay := context.WithCancel(ctx)
	defer stopPlay()
	var submitErr error
	for req := range trace.Play(playCtx, tr, speedup) {
		fut, err := t.Target.Submit(ctx, core.PipelineRequest{
			Model: req.Model, Policy: p.Policy, Batch: req.Batch, Deadline: p.SLO,
		})
		if err != nil {
			if isShed(err) {
				mu.Lock()
				dropped++
				mu.Unlock()
				continue
			}
			submitErr = err
			stopPlay()
			break
		}
		wg.Add(1)
		go func(samples int) {
			defer wg.Done()
			c, err := fut.Wait(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed++
				return
			}
			if record(col, c, samples, &expired, &failed) && c.Latency <= p.SLO {
				inSLO++
			}
		}(req.Batch)
	}
	wg.Wait()
	if submitErr != nil {
		return Report{}, fmt.Errorf("scenario server: %w", submitErr)
	}

	r := col.report(Server, t.Name, p)
	r.Dropped, r.Expired, r.Failed = dropped, expired, failed
	r.TargetRate = round3(p.TargetRate)
	r.SLOMS = round3(float64(p.SLO) / float64(time.Millisecond))
	if len(tr) > 0 {
		r.Attainment = round3(float64(inSLO) / float64(len(tr)))
	}
	return r, nil
}

// isShed reports whether a submit error is load shedding (a counted
// miss) rather than a harness failure.
func isShed(err error) bool {
	return errors.Is(err, core.ErrAdmissionFull) || errors.Is(err, core.ErrDeadlineInfeasible)
}
