package scenario

import (
	"fmt"
	"time"

	"bomw/internal/workload"
)

// Run executes one scenario on a virtual-mode backend and returns its
// report. Execution is sequential on the virtual clock and fully
// deterministic in (Params, backend construction): the golden tests pin
// the serialised output byte-for-byte.
func Run(b Backend, p Params) (Report, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return Report{}, err
	}
	b.Reset()
	switch p.Kind {
	case SingleStream, MultiStream:
		return runStream(b, p)
	case Offline:
		return runOffline(b, p)
	case Server:
		return runServer(b, p)
	}
	return Report{}, fmt.Errorf("scenario: unknown scenario kind %q", p.Kind)
}

// RunAll executes every scenario (in Kinds order) with shared base
// parameters, filling in each scenario's Kind.
func RunAll(b Backend, base Params) ([]Report, error) {
	var out []Report
	for _, k := range Kinds() {
		p := base
		p.Kind = k
		r, err := Run(b, p)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", k, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// runStream is SingleStream and MultiStream: issue one query of p.Batch
// samples, wait for it, issue the next. The virtual clock advances to
// each completion, so latency is pure service time — no queueing by
// construction.
func runStream(b Backend, p Params) (Report, error) {
	col := newCollector()
	clock := time.Duration(0)
	for q := 0; q < p.Queries; q++ {
		ex, err := b.Run(p.Model, p.Batch, p.Policy, clock)
		if err != nil {
			return Report{}, fmt.Errorf("scenario %s query %d: %w", p.Kind, q, err)
		}
		col.add(ex.Completed-clock, ex.Completed, p.Batch, ex.EnergyJ, ex.Device)
		clock = ex.Completed
	}
	return col.report(p.Kind, b.Name(), p), nil
}

// runOffline issues the whole backlog at t=0; the device busy horizon
// provides the queueing, and samples/s over the makespan is the metric.
func runOffline(b Backend, p Params) (Report, error) {
	col := newCollector()
	for q := 0; q < p.Queries; q++ {
		ex, err := b.Run(p.Model, p.Batch, p.Policy, 0)
		if err != nil {
			return Report{}, fmt.Errorf("scenario offline query %d: %w", q, err)
		}
		col.add(ex.Completed, ex.Completed, p.Batch, ex.EnergyJ, ex.Device)
	}
	return col.report(Offline, b.Name(), p), nil
}

// runServer replays the compiled arrival stream (Poisson by default, or
// the caller's workload spec) at its virtual timestamps. Latency is
// arrival-to-completion, so queueing delay under overload shows up in
// the percentiles, and attainment counts queries finishing inside SLO.
func runServer(b Backend, p Params) (Report, error) {
	spec, err := p.serverTrace()
	if err != nil {
		return Report{}, err
	}
	tr, err := workload.Compile(spec)
	if err != nil {
		return Report{}, fmt.Errorf("scenario server: compiling arrivals: %w", err)
	}
	col := newCollector()
	inSLO := 0
	for i, ev := range tr {
		ex, err := b.Run(ev.Model, ev.Batch, p.Policy, ev.At)
		if err != nil {
			return Report{}, fmt.Errorf("scenario server query %d: %w", i, err)
		}
		lat := ex.Completed - ev.At
		if p.SLO <= 0 || lat <= p.SLO {
			inSLO++
		}
		col.add(lat, ex.Completed, ev.Batch, ex.EnergyJ, ex.Device)
	}
	r := col.report(Server, b.Name(), p)
	r.TargetRate = round3(p.TargetRate)
	r.SLOMS = round3(float64(p.SLO) / float64(time.Millisecond))
	if len(tr) > 0 {
		r.Attainment = round3(float64(inSLO) / float64(len(tr)))
	}
	return r, nil
}
