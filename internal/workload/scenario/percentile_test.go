package scenario

import (
	"sort"
	"testing"
	"time"

	"bomw/internal/core"
)

// Two percentile implementations exist on purpose — the scenario
// collector works on a pre-sorted slice, ReplayResult sorts a copy per
// call — but they must encode the same convention (idx =
// ceil(q/100·n)−1 on the sorted population). This suite runs both over
// shared vectors so a drift in either is caught at the boundary where
// MLPerf-style reports and replay summaries would silently disagree.

var percentileVectors = []struct {
	name string
	lats []time.Duration
}{
	{"n=1", []time.Duration{42 * time.Millisecond}},
	{"two distinct", []time.Duration{1 * time.Millisecond, 9 * time.Millisecond}},
	{"all ties", []time.Duration{5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}},
	{"ties at tail", []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 7 * time.Millisecond, 7 * time.Millisecond, 7 * time.Millisecond}},
	{"unsorted input", []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}},
	{"hundred", func() []time.Duration {
		out := make([]time.Duration, 100)
		for i := range out {
			out[i] = time.Duration(i+1) * time.Millisecond
		}
		return out
	}()},
}

var percentilePoints = []float64{0, 1, 25, 50, 90, 99, 100}

func TestPercentileConventionsAgree(t *testing.T) {
	for _, v := range percentileVectors {
		var res core.ReplayResult
		for _, l := range v.lats {
			res.Record(l)
		}
		res.Requests = len(v.lats)
		sorted := append([]time.Duration(nil), v.lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range percentilePoints {
			replay := res.Percentile(q)
			scen := percentile(sorted, q)
			if replay != scen {
				t.Errorf("%s p%v: ReplayResult.Percentile = %v, scenario.percentile = %v", v.name, q, replay, scen)
			}
		}
	}
}

func TestPercentileEdgeValues(t *testing.T) {
	// Pin the convention itself, not just cross-implementation
	// agreement: a single sample answers every percentile, p=0 is the
	// minimum, p=100 the maximum, and out-of-range p clamps.
	one := []time.Duration{42 * time.Millisecond}
	var res core.ReplayResult
	res.Record(one[0])
	for _, q := range []float64{0, 50, 100} {
		if got := res.Percentile(q); got != one[0] {
			t.Errorf("n=1 p%v = %v, want %v", q, got, one[0])
		}
		if got := percentile(one, q); got != one[0] {
			t.Errorf("scenario n=1 p%v = %v, want %v", q, got, one[0])
		}
	}

	var multi core.ReplayResult
	lats := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for _, l := range lats {
		multi.Record(l)
	}
	if got := multi.Percentile(0); got != lats[0] {
		t.Errorf("p0 = %v, want the minimum %v", got, lats[0])
	}
	if got := multi.Percentile(100); got != lats[2] {
		t.Errorf("p100 = %v, want the maximum %v", got, lats[2])
	}
	if got := multi.Percentile(-5); got != lats[0] {
		t.Errorf("p<0 = %v, want clamp to minimum %v", got, lats[0])
	}
	if got := multi.Percentile(250); got != lats[2] {
		t.Errorf("p>100 = %v, want clamp to maximum %v", got, lats[2])
	}
	var empty core.ReplayResult
	if got := empty.Percentile(50); got != 0 {
		t.Errorf("empty population p50 = %v, want 0", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("scenario empty population p50 = %v, want 0", got)
	}
}
