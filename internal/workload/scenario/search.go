package scenario

import (
	"fmt"
	"math"
)

// Probe is one rate the max-rate search tried.
type Probe struct {
	Rate       float64 `json:"rate"`
	Attainment float64 `json:"attainment"`
	P99US      int64   `json:"p99_us"`
	Pass       bool    `json:"pass"`
}

// SearchResult is the outcome of a max-rate-under-SLO search: MLPerf's
// Server-scenario headline figure plus the probe trail that produced it.
type SearchResult struct {
	SLOMS            float64 `json:"slo_ms"`
	TargetAttainment float64 `json:"target_attainment"`
	// MaxRate is the highest probed rate whose report met the target
	// attainment (0 when even the lowest probe failed).
	MaxRate float64 `json:"max_rate"`
	Probes  []Probe `json:"probes"`
}

// FindMaxRate binary-searches the highest Server-scenario offered rate
// that still meets the target SLO attainment. `run` executes one Server
// scenario at the given rate — virtual (Run) for deterministic search,
// live (RunLive) for end-to-end — and must populate Report.Attainment
// and SLOMS. The search brackets first (doubling from lo while probes
// pass, capped at hi), then bisects for `iters` rounds; attainment is
// monotone non-increasing in offered rate up to seeded arrival noise,
// so the bracket converges on the knee.
func FindMaxRate(run func(rate float64) (Report, error), lo, hi, attain float64, iters int) (SearchResult, error) {
	if !(lo > 0) || !(hi >= lo) || math.IsInf(hi, 0) {
		return SearchResult{}, fmt.Errorf("scenario: max-rate search needs 0 < lo <= hi, got [%g, %g]", lo, hi)
	}
	if !(attain > 0 && attain <= 1) {
		return SearchResult{}, fmt.Errorf("scenario: target attainment must be in (0, 1], got %g", attain)
	}
	if iters <= 0 {
		iters = 8
	}

	out := SearchResult{TargetAttainment: attain}
	probe := func(rate float64) (bool, error) {
		rep, err := run(rate)
		if err != nil {
			return false, fmt.Errorf("scenario: probing %.3f qps: %w", rate, err)
		}
		pass := rep.Attainment >= attain
		out.SLOMS = rep.SLOMS
		out.Probes = append(out.Probes, Probe{
			Rate:       round3(rate),
			Attainment: rep.Attainment,
			P99US:      rep.Latency.P99US,
			Pass:       pass,
		})
		if pass && rate > out.MaxRate {
			out.MaxRate = round3(rate)
		}
		return pass, nil
	}

	// Bracket: double from lo until a probe fails (or hi passes, in
	// which case hi is the answer the caller allowed).
	pass, err := probe(lo)
	if err != nil {
		return SearchResult{}, err
	}
	if !pass {
		return out, nil // infeasible even at the floor
	}
	good, bad := lo, 0.0
	for bad == 0 {
		next := good * 2
		if next >= hi {
			next = hi
		}
		pass, err := probe(next)
		if err != nil {
			return SearchResult{}, err
		}
		if pass {
			good = next
			if next == hi {
				return out, nil // the whole allowed range sustains the SLO
			}
		} else {
			bad = next
		}
	}

	// Bisect the (good, bad) bracket.
	for i := 0; i < iters && bad-good > 1e-9*bad; i++ {
		mid := (good + bad) / 2
		pass, err := probe(mid)
		if err != nil {
			return SearchResult{}, err
		}
		if pass {
			good = mid
		} else {
			bad = mid
		}
	}
	return out, nil
}
