package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden scenario reports")

// Golden reports: a fixed (params, seed, backend) must serialise to the
// exact bytes on disk. This pins the whole deterministic surface at
// once — arrival sampling, scheduler decisions, the device timing
// model, percentile math and JSON field order. Regenerate deliberately
// with:
//
//	go test ./internal/workload/scenario/ -run TestGolden -update
func TestGoldenReports(t *testing.T) {
	cases := []struct {
		file string
		run  func(t *testing.T) (Report, error)
	}{
		{"node_single-stream.json", func(t *testing.T) (Report, error) {
			p := baseParams()
			p.Kind = SingleStream
			return Run(freshNode(t), p)
		}},
		{"node_multi-stream.json", func(t *testing.T) (Report, error) {
			p := baseParams()
			p.Kind = MultiStream
			return Run(freshNode(t), p)
		}},
		{"node_server.json", func(t *testing.T) (Report, error) {
			p := baseParams()
			p.Kind = Server
			return Run(freshNode(t), p)
		}},
		{"node_offline.json", func(t *testing.T) (Report, error) {
			p := baseParams()
			p.Kind = Offline
			return Run(freshNode(t), p)
		}},
		{"fleet4_server.json", func(t *testing.T) (Report, error) {
			p := baseParams()
			p.Kind = Server
			p.TargetRate = 2000 // enough offered load to exercise routing
			return Run(freshFleet(t, 4), p)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			rep, err := tc.run(t)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", tc.file)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
