// Package scenario implements the four MLPerf Inference scenarios —
// SingleStream, MultiStream, Server and Offline — as first-class harness
// modes over this repo's serving stack, so "how fast is bomw" has the
// industry-standard shape of an answer: per-scenario latency percentiles
// (p50/p90/p99), SLO attainment and max sustainable rate, not a single
// req/s number.
//
// Two execution modes share one Report shape:
//
//   - The virtual mode (Run over a Backend) replays queries on the
//     virtual clock through the scheduler's Estimate/Observe path —
//     sequential, seeded and fully deterministic: the same Params and
//     seed produce a byte-identical report, which is what the golden
//     tests pin. NewSchedulerBackend wraps one node; NewFleetBackend
//     wraps N scheduler replicas behind least-outstanding routing.
//
//   - The live mode (RunLive over a Submitter) drives a real
//     core.Pipeline or cluster.Cluster: arrivals paced by trace.Play,
//     admission control, live batching, shedding, deadline culling and
//     failover all in the loop. Latencies are still measured on the
//     target's virtual clock, but goroutine interleaving makes live
//     reports statistical rather than byte-stable.
//
// The Server scenario additionally has a binary-search driver
// (FindMaxRate) that finds the highest offered rate whose report still
// meets a target SLO attainment — MLPerf's "max sustainable rate under
// latency bound" headline figure.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"time"

	"bomw/internal/core"
	"bomw/internal/workload"
)

// Kind names one MLPerf Inference scenario.
type Kind string

// The four MLPerf Inference scenarios.
const (
	// SingleStream issues one single-sample query at a time, each after
	// the previous completes — the interactive latency scenario. Metric:
	// p90 latency.
	SingleStream Kind = "single-stream"
	// MultiStream issues one query of Batch samples at a time (the N
	// camera streams of one frame). Metric: p99 query latency.
	MultiStream Kind = "multi-stream"
	// Server offers queries on a Poisson (or full workload-spec) arrival
	// process at a target rate with a latency SLO. Metrics: p99 latency
	// and SLO attainment; FindMaxRate turns them into max-rate-under-SLO.
	Server Kind = "server"
	// Offline issues every query at time zero and drains the backlog —
	// the pure-throughput scenario. Metric: samples/second.
	Offline Kind = "offline"
)

// Kinds lists the scenarios in report order.
func Kinds() []Kind { return []Kind{SingleStream, MultiStream, Server, Offline} }

// ParseKind resolves a CLI scenario name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "single-stream", "singlestream":
		return SingleStream, nil
	case "multi-stream", "multistream":
		return MultiStream, nil
	case "server":
		return Server, nil
	case "offline":
		return Offline, nil
	default:
		return "", fmt.Errorf("scenario: unknown scenario %q (want single-stream, multi-stream, server or offline)", s)
	}
}

// Params configures one scenario run.
type Params struct {
	Kind   Kind
	Model  string
	Policy core.Policy
	// Queries is the query count (per-scenario default 256).
	Queries int
	// Batch is the samples per query: 1 for SingleStream, the stream
	// count for MultiStream (default 8), the chunk size Offline issues
	// its backlog in (default 64).
	Batch int
	// TargetRate is the Server scenario's offered rate (queries/second).
	TargetRate float64
	// SLO is the Server scenario's per-query latency bound.
	SLO time.Duration
	// Seed drives the arrival process (and nothing else — execution is
	// deterministic given the arrivals).
	Seed int64
	// Workload optionally replaces the Server scenario's default
	// single-client Poisson arrivals with a full multi-client spec;
	// model/batch mixes then come from the spec, not Model/Batch.
	Workload *workload.Spec
}

func (p Params) withDefaults() Params {
	if p.Queries <= 0 {
		p.Queries = 256
	}
	if p.Batch <= 0 {
		switch p.Kind {
		case MultiStream:
			p.Batch = 8
		case Offline:
			p.Batch = 64
		default:
			p.Batch = 1
		}
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

func (p Params) validate() error {
	switch p.Kind {
	case SingleStream, MultiStream, Server, Offline:
	default:
		return fmt.Errorf("scenario: unknown scenario kind %q", p.Kind)
	}
	if p.Model == "" && p.Workload == nil {
		return fmt.Errorf("scenario: params need a model")
	}
	if p.Kind == Server {
		if p.Workload == nil && !(p.TargetRate > 0 && !math.IsInf(p.TargetRate, 0)) {
			return fmt.Errorf("scenario: server scenario needs a positive target rate")
		}
		if p.SLO <= 0 {
			return fmt.Errorf("scenario: server scenario needs a positive SLO")
		}
	}
	return nil
}

// serverTrace compiles the Server scenario's arrival stream: the
// explicit workload spec when given, else a single Poisson client at
// TargetRate issuing Queries queries of Model×Batch.
func (p Params) serverTrace() (spec workload.Spec, err error) {
	if p.Workload != nil {
		return *p.Workload, nil
	}
	return workload.Spec{
		Seed: p.Seed,
		// Generous horizon, hard event cap: ≈Queries arrivals at
		// TargetRate regardless of draw luck.
		HorizonS:  2*float64(p.Queries)/p.TargetRate + 1,
		MaxEvents: p.Queries,
		Clients: []workload.Client{{
			Name:    "server",
			Arrival: workload.Arrival{Dist: workload.DistPoisson, Rate: p.TargetRate},
			Models:  []workload.ModelMix{{Model: p.Model, Weight: 1}},
			Batches: []workload.BatchMix{{Batch: p.Batch, Weight: 1}},
		}},
	}, nil
}

// Percentiles summarises a latency population in microseconds.
type Percentiles struct {
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P90US  int64 `json:"p90_us"`
	P99US  int64 `json:"p99_us"`
	MaxUS  int64 `json:"max_us"`
}

// Report is one scenario outcome — the JSON document loadgen emits and
// the golden tests pin byte-for-byte (virtual mode).
type Report struct {
	Scenario string `json:"scenario"`
	Target   string `json:"target"`
	Model    string `json:"model,omitempty"`
	Policy   string `json:"policy"`
	Seed     int64  `json:"seed"`

	Queries int   `json:"queries"` // queries that completed successfully
	Samples int64 `json:"samples"`
	Dropped int   `json:"dropped"` // shed at admission (live mode only)
	Expired int   `json:"expired"` // culled past their SLO (live mode only)
	Failed  int   `json:"failed"`  // execution errors (live mode only)

	MakespanUS  int64       `json:"makespan_us"`
	Latency     Percentiles `json:"latency"`
	QPS         float64     `json:"qps"`
	SamplesPerS float64     `json:"samples_per_s"`
	EnergyJ     float64     `json:"energy_j"`

	// Server scenario only.
	TargetRate float64 `json:"target_rate,omitempty"`
	SLOMS      float64 `json:"slo_ms,omitempty"`
	// Attainment is in-SLO completions over offered queries; dropped,
	// expired and failed queries count as misses.
	Attainment float64 `json:"attainment,omitempty"`

	PerDevice map[string]int `json:"per_device,omitempty"`
}

// collector accumulates per-query completions into a Report.
type collector struct {
	lats      []time.Duration
	samples   int64
	energyJ   float64
	makespan  time.Duration
	perDevice map[string]int
}

func newCollector() *collector {
	return &collector{perDevice: map[string]int{}}
}

func (c *collector) add(lat, completed time.Duration, samples int, energyJ float64, device string) {
	c.lats = append(c.lats, lat)
	c.samples += int64(samples)
	c.energyJ += energyJ
	if completed > c.makespan {
		c.makespan = completed
	}
	if device != "" {
		c.perDevice[device]++
	}
}

// percentile returns the q-th percentile of the sorted population,
// matching ReplayResult.Percentile's convention.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// round3 stabilises derived float fields for byte-stable reports.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// report folds the collected completions into the Report shape.
func (c *collector) report(kind Kind, target string, p Params) Report {
	r := Report{
		Scenario:   string(kind),
		Target:     target,
		Model:      p.Model,
		Policy:     p.Policy.String(),
		Seed:       p.Seed,
		Queries:    len(c.lats),
		Samples:    c.samples,
		MakespanUS: c.makespan.Microseconds(),
		EnergyJ:    round3(c.energyJ),
	}
	if len(c.perDevice) > 0 {
		r.PerDevice = c.perDevice
	}
	if len(c.lats) == 0 {
		return r
	}
	sorted := append([]time.Duration(nil), c.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	r.Latency = Percentiles{
		MeanUS: (sum / time.Duration(len(sorted))).Microseconds(),
		P50US:  percentile(sorted, 50).Microseconds(),
		P90US:  percentile(sorted, 90).Microseconds(),
		P99US:  percentile(sorted, 99).Microseconds(),
		MaxUS:  sorted[len(sorted)-1].Microseconds(),
	}
	if c.makespan > 0 {
		r.QPS = round3(float64(len(c.lats)) / c.makespan.Seconds())
		r.SamplesPerS = round3(float64(c.samples) / c.makespan.Seconds())
	}
	return r
}
