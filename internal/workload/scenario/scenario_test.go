package scenario

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"bomw/internal/cluster"
	"bomw/internal/core"
	"bomw/internal/models"
	"bomw/internal/workload"
)

// The offline phase (characterisation + training) runs once; every test
// takes cheap Replica copies so no test observes another's device state.
var (
	tmplOnce sync.Once
	tmpl     *core.Scheduler
	tmplErr  error
)

func templateScheduler(t testing.TB) *core.Scheduler {
	t.Helper()
	tmplOnce.Do(func() {
		tmpl, tmplErr = core.New(core.Config{
			TrainModels: models.PaperModels(),
			Batches:     []int{8, 512, 8192, 65536},
			Reps:        1,
		})
		if tmplErr != nil {
			return
		}
		tmplErr = tmpl.LoadModel(models.Simple(), 1)
		if tmplErr == nil {
			tmplErr = tmpl.LoadModel(models.MnistSmall(), 1)
		}
	})
	if tmplErr != nil {
		t.Fatal(tmplErr)
	}
	return tmpl
}

// freshNode returns a pristine single-node backend.
func freshNode(t testing.TB) *SchedulerBackend {
	t.Helper()
	rep, err := templateScheduler(t).Replica(1)
	if err != nil {
		t.Fatal(err)
	}
	return NewSchedulerBackend(rep)
}

// freshFleet returns a pristine n-node virtual fleet.
func freshFleet(t testing.TB, n int) *FleetBackend {
	t.Helper()
	rep, err := templateScheduler(t).Replica(1)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFleetBackend(rep, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fb
}

func baseParams() Params {
	return Params{
		Model:      "mnist-small",
		Policy:     core.BestThroughput,
		Queries:    64,
		TargetRate: 500,
		SLO:        20 * time.Millisecond,
		Seed:       3,
	}
}

// Virtual-mode runs must be bit-identical in (params, seed): same seed
// twice gives DeepEqual reports, and for the arrival-driven Server
// scenario a different seed must actually change the outcome.
func TestRunDeterministicInSeed(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := baseParams()
			p.Kind = kind
			b := freshNode(t)
			a, err := Run(b, p)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := Run(b, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b2) {
				t.Fatalf("same params+seed diverged:\n%+v\n%+v", a, b2)
			}
		})
	}
	// Server arrivals are seeded; a different seed must move the report.
	p := baseParams()
	p.Kind = Server
	b := freshNode(t)
	a, err := Run(b, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 4
	c, err := Run(b, p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Latency, c.Latency) && a.MakespanUS == c.MakespanUS {
		t.Fatal("distinct seeds produced an identical server report")
	}
}

// All four scenarios run end-to-end on a single node and on a 4-node
// virtual fleet, with internally consistent reports.
func TestRunAllScenariosVirtual(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    Backend
	}{
		{"node", freshNode(t)},
		{"fleet", freshFleet(t, 4)},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			reports, err := RunAll(tc.b, baseParams())
			if err != nil {
				t.Fatal(err)
			}
			if len(reports) != len(Kinds()) {
				t.Fatalf("got %d reports, want %d", len(reports), len(Kinds()))
			}
			for _, r := range reports {
				if r.Target != tc.b.Name() {
					t.Errorf("%s: target %q, want %q", r.Scenario, r.Target, tc.b.Name())
				}
				if r.Queries != 64 {
					t.Errorf("%s: completed %d of 64 queries", r.Scenario, r.Queries)
				}
				l := r.Latency
				if !(l.P50US <= l.P90US && l.P90US <= l.P99US && l.P99US <= l.MaxUS) {
					t.Errorf("%s: percentiles out of order: %+v", r.Scenario, l)
				}
				if l.P50US <= 0 || r.MakespanUS <= 0 || r.SamplesPerS <= 0 || r.EnergyJ <= 0 {
					t.Errorf("%s: degenerate report: %+v", r.Scenario, r)
				}
			}
			byKind := map[string]Report{}
			for _, r := range reports {
				byKind[r.Scenario] = r
			}
			// Offline batches 64 samples per query; it must move samples
			// faster than one-at-a-time SingleStream.
			if byKind["offline"].SamplesPerS <= byKind["single-stream"].SamplesPerS {
				t.Errorf("offline %.0f samples/s not above single-stream %.0f",
					byKind["offline"].SamplesPerS, byKind["single-stream"].SamplesPerS)
			}
			if byKind["server"].Attainment <= 0 {
				t.Errorf("server attainment missing: %+v", byKind["server"])
			}
		})
	}
}

// SLO attainment is the Server scenario's whole point: it must collapse
// when the offered rate goes far past capacity.
func TestServerAttainmentDegradesWithRate(t *testing.T) {
	run := func(rate float64) Report {
		p := baseParams()
		p.Kind = Server
		p.TargetRate = rate
		r, err := Run(freshNode(t), p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	easy := run(20)
	crush := run(2e6)
	if easy.Attainment < 0.9 {
		t.Fatalf("20 qps attainment %.3f, want >= 0.9", easy.Attainment)
	}
	if crush.Attainment >= easy.Attainment {
		t.Fatalf("attainment did not degrade: %.3f at 20 qps vs %.3f at 2M qps",
			easy.Attainment, crush.Attainment)
	}
	if crush.Latency.P99US <= easy.Latency.P99US {
		t.Fatalf("queueing delay invisible: p99 %dus at 20 qps vs %dus at 2M qps",
			easy.Latency.P99US, crush.Latency.P99US)
	}
}

// The Server scenario accepts a full multi-client workload spec in
// place of the default single Poisson client.
func TestServerScenarioWithWorkloadSpec(t *testing.T) {
	spec := workload.Spec{
		Seed:     7,
		HorizonS: 2,
		Clients: []workload.Client{
			{
				Name:    "a",
				Arrival: workload.Arrival{Dist: workload.DistPoisson, Rate: 60},
				Models:  []workload.ModelMix{{Model: "mnist-small", Weight: 1}},
				Batches: []workload.BatchMix{{Batch: 4, Weight: 1}},
			},
			{
				Name:    "b",
				Arrival: workload.Arrival{Dist: workload.DistGamma, Rate: 40, Shape: 0.5},
				Models:  []workload.ModelMix{{Model: "simple", Weight: 1}},
				Batches: []workload.BatchMix{{Batch: 8, Weight: 1}},
			},
		},
	}
	p := Params{
		Kind:     Server,
		Policy:   core.BestThroughput,
		SLO:      50 * time.Millisecond,
		Seed:     7,
		Workload: &spec,
	}
	r, err := Run(freshNode(t), p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries == 0 || r.Attainment <= 0 {
		t.Fatalf("degenerate spec-driven server report: %+v", r)
	}
}

// FindMaxRate over a step function must land on the knee and report a
// faithful probe trail.
func TestFindMaxRateConvergesOnKnee(t *testing.T) {
	const knee = 120.0
	calls := 0
	run := func(rate float64) (Report, error) {
		calls++
		att := 1.0
		if rate > knee {
			att = 0.5
		}
		return Report{Attainment: att, SLOMS: 10}, nil
	}
	res, err := FindMaxRate(run, 10, 10_000, 0.99, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRate < knee*0.98 || res.MaxRate > knee {
		t.Fatalf("max rate %.3f, want just under %.0f (probes %+v)", res.MaxRate, knee, res.Probes)
	}
	if len(res.Probes) != calls {
		t.Fatalf("probe trail has %d entries for %d calls", len(res.Probes), calls)
	}
	for _, pr := range res.Probes {
		if pr.Pass != (pr.Attainment >= 0.99) {
			t.Fatalf("probe verdict inconsistent: %+v", pr)
		}
	}

	// Infeasible floor: even lo fails.
	res, err = FindMaxRate(func(float64) (Report, error) {
		return Report{Attainment: 0}, nil
	}, 10, 100, 0.99, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRate != 0 || len(res.Probes) != 1 {
		t.Fatalf("infeasible search should stop after the floor probe: %+v", res)
	}

	// Whole range passes: the cap is the answer.
	res, err = FindMaxRate(func(float64) (Report, error) {
		return Report{Attainment: 1}, nil
	}, 10, 100, 0.99, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRate != 100 {
		t.Fatalf("max rate %.3f, want the cap 100", res.MaxRate)
	}
}

// The search composes with the real virtual Server scenario: a
// deterministic max-rate figure comes out, and probing is monotone
// enough to bracket.
func TestFindMaxRateVirtual(t *testing.T) {
	b := freshNode(t)
	p := baseParams()
	p.Kind = Server
	p.Queries = 48
	run := func(rate float64) (Report, error) {
		pp := p
		pp.TargetRate = rate
		return Run(b, pp)
	}
	res, err := FindMaxRate(run, 10, 1e6, 0.95, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRate <= 0 {
		t.Fatalf("no sustainable rate found: %+v", res)
	}
	res2, err := FindMaxRate(run, 10, 1e6, 0.95, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRate != res2.MaxRate {
		t.Fatalf("virtual search not deterministic: %.3f vs %.3f", res.MaxRate, res2.MaxRate)
	}
}

// ---- live mode ---------------------------------------------------------

func livePipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	rep, err := templateScheduler(t).Replica(1)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(rep, core.PipelineConfig{
		Window: 200 * time.Microsecond, MaxBatch: 16, ProbeInterval: -1,
	})
	t.Cleanup(p.Close)
	return p
}

func liveCluster(t testing.TB, n int) *cluster.Cluster {
	t.Helper()
	pol, _ := cluster.PolicyByName("least-loaded", 1)
	c, _, err := cluster.Build(templateScheduler(t), n, 1,
		core.PipelineConfig{Window: 200 * time.Microsecond, MaxBatch: 16, ProbeInterval: -1},
		cluster.Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// checkLive asserts the live accounting identity: every offered query
// lands in exactly one of completed / dropped / expired / failed.
func checkLive(t *testing.T, r Report, offered int) {
	t.Helper()
	if got := r.Queries + r.Dropped + r.Expired + r.Failed; got != offered {
		t.Fatalf("%s on %s: %d+%d+%d+%d = %d accounted, offered %d",
			r.Scenario, r.Target, r.Queries, r.Dropped, r.Expired, r.Failed, got, offered)
	}
	if r.Queries == 0 {
		t.Fatalf("%s on %s: no query completed: %+v", r.Scenario, r.Target, r)
	}
}

// All four scenarios run end-to-end against a real single-node pipeline.
func TestLiveScenariosOnPipeline(t *testing.T) {
	target := LiveTarget{Name: "pipeline", Target: livePipeline(t)}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := baseParams()
			p.Kind = kind
			p.Queries = 48
			p.TargetRate = 300
			p.SLO = 250 * time.Millisecond
			r, err := RunLive(ctx, target, p, 20)
			if err != nil {
				t.Fatal(err)
			}
			checkLive(t, r, 48)
			if r.Target != "pipeline" {
				t.Fatalf("target %q, want pipeline", r.Target)
			}
		})
	}
}

// TestScenarioSmokeServerCluster is the CI smoke: the Server scenario
// offered open-loop to a live 4-node cluster under -race, with the
// full accounting identity and a sane attainment figure out the end.
func TestScenarioSmokeServerCluster(t *testing.T) {
	c := liveCluster(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	p := baseParams()
	p.Kind = Server
	p.Queries = 96
	p.TargetRate = 200
	p.SLO = 250 * time.Millisecond
	r, err := RunLive(ctx, LiveTarget{Name: "cluster:4", Target: c}, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	checkLive(t, r, 96)
	if r.Attainment < 0.5 {
		t.Fatalf("cluster server attainment %.3f under a 250ms SLO: %+v", r.Attainment, r)
	}
	// The cluster spread work: more than one node served queries.
	if len(r.PerDevice) == 0 {
		t.Fatalf("no per-device accounting: %+v", r)
	}
}

// The remaining scenarios also run against the cluster tier.
func TestLiveScenariosOnCluster(t *testing.T) {
	c := liveCluster(t, 4)
	target := LiveTarget{Name: "cluster:4", Target: c}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, kind := range []Kind{SingleStream, MultiStream, Offline} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := baseParams()
			p.Kind = kind
			p.Queries = 32
			r, err := RunLive(ctx, target, p, 1)
			if err != nil {
				t.Fatal(err)
			}
			checkLive(t, r, 32)
		})
	}
}
