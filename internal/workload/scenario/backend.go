package scenario

import (
	"fmt"
	"time"

	"bomw/internal/core"
)

// Exec is one query's outcome on a virtual-mode backend.
type Exec struct {
	Completed time.Duration // virtual completion time
	EnergyJ   float64
	Device    string
}

// Backend executes one query at a virtual timestamp. Implementations
// must be deterministic: the same call sequence after Reset must yield
// the same Execs, which is what makes virtual-mode reports golden-able.
type Backend interface {
	// Name tags reports ("node", "fleet:4").
	Name() string
	// Run schedules one model×batch query arriving at the virtual time
	// `at` and returns its completion. Queueing is represented by the
	// device busy horizon: a query arriving while the chosen device is
	// busy completes later, exactly as in Scheduler.Replay.
	Run(model string, batch int, pol core.Policy, at time.Duration) (Exec, error)
	// Reset restores pristine device state so consecutive scenario runs
	// on one backend are independent.
	Reset()
}

// SchedulerBackend runs queries on one node's scheduler via the
// Estimate/Observe path.
type SchedulerBackend struct {
	sched *core.Scheduler
}

// NewSchedulerBackend wraps a single node.
func NewSchedulerBackend(s *core.Scheduler) *SchedulerBackend {
	return &SchedulerBackend{sched: s}
}

// Name implements Backend.
func (b *SchedulerBackend) Name() string { return "node" }

// Run implements Backend.
func (b *SchedulerBackend) Run(model string, batch int, pol core.Policy, at time.Duration) (Exec, error) {
	res, dec, err := b.sched.Estimate(model, batch, pol, at)
	if err != nil {
		return Exec{}, err
	}
	if err := b.sched.Observe(dec, res); err != nil {
		return Exec{}, err
	}
	return Exec{Completed: res.Completed, EnergyJ: res.EnergyJ, Device: dec.Device}, nil
}

// Reset implements Backend.
func (b *SchedulerBackend) Reset() { b.sched.ResetDevices() }

// FleetBackend spreads queries over N scheduler replicas with
// least-outstanding-work routing: each query goes to the node whose
// busy horizon is lowest — the virtual-clock analogue of the cluster
// tier's least-loaded policy, but sequential and deterministic (ties
// break to the lowest node index).
type FleetBackend struct {
	nodes   []*core.Scheduler
	horizon []time.Duration
}

// NewFleetBackend builds an n-node fleet from a template scheduler.
// Node 0 reuses the template; nodes 1..n-1 are Replica copies, the same
// construction cluster.Build uses.
func NewFleetBackend(template *core.Scheduler, n int, seed int64) (*FleetBackend, error) {
	if template == nil {
		return nil, fmt.Errorf("scenario: fleet backend needs a template scheduler")
	}
	if n < 1 {
		return nil, fmt.Errorf("scenario: fleet backend needs at least 1 node, got %d", n)
	}
	nodes := []*core.Scheduler{template}
	for i := 1; i < n; i++ {
		rep, err := template.Replica(seed + int64(i))
		if err != nil {
			return nil, fmt.Errorf("scenario: replicating node %d: %w", i, err)
		}
		nodes = append(nodes, rep)
	}
	return &FleetBackend{nodes: nodes, horizon: make([]time.Duration, n)}, nil
}

// Name implements Backend.
func (b *FleetBackend) Name() string { return fmt.Sprintf("fleet:%d", len(b.nodes)) }

// Run implements Backend.
func (b *FleetBackend) Run(model string, batch int, pol core.Policy, at time.Duration) (Exec, error) {
	best := 0
	for i := 1; i < len(b.nodes); i++ {
		if b.horizon[i] < b.horizon[best] {
			best = i
		}
	}
	res, dec, err := b.nodes[best].Estimate(model, batch, pol, at)
	if err != nil {
		return Exec{}, err
	}
	if err := b.nodes[best].Observe(dec, res); err != nil {
		return Exec{}, err
	}
	if res.Completed > b.horizon[best] {
		b.horizon[best] = res.Completed
	}
	return Exec{
		Completed: res.Completed,
		EnergyJ:   res.EnergyJ,
		Device:    fmt.Sprintf("n%d/%s", best, dec.Device),
	}, nil
}

// Reset implements Backend.
func (b *FleetBackend) Reset() {
	for i, n := range b.nodes {
		n.ResetDevices()
		b.horizon[i] = 0
	}
}
