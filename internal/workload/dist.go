package workload

import (
	"math"
	"math/rand"
)

// Interarrival sampling. Every distribution is normalised to unit mean,
// so the generator can scale one draw by the instantaneous rate
// (rate × envelope factor) regardless of distribution: the draw is the
// gap in "mean interarrivals", the scale turns it into seconds.

// sampler draws one unit-mean interarrival.
type sampler func(rng *rand.Rand) float64

// newSampler compiles an Arrival into its unit-mean sampler. The
// arrival must already be validated.
func newSampler(a Arrival) sampler {
	switch a.Dist {
	case DistGamma:
		k := a.Shape
		return func(rng *rand.Rand) float64 {
			// Gamma(k, θ=1) has mean k; divide for unit mean.
			return gammaSample(rng, k) / k
		}
	case DistWeibull:
		k := a.Shape
		// Weibull(k, λ) has mean λ·Γ(1+1/k); pick λ for unit mean.
		scale := 1 / math.Gamma(1+1/k)
		return func(rng *rand.Rand) float64 {
			u := 1 - rng.Float64() // (0,1]: keeps the log finite
			return scale * math.Pow(-math.Log(u), 1/k)
		}
	case DistUniform:
		return func(rng *rand.Rand) float64 {
			return 2 * rng.Float64() // U(0,2), mean 1
		}
	default: // DistPoisson
		return func(rng *rand.Rand) float64 {
			return rng.ExpFloat64()
		}
	}
}

// gammaSample draws Gamma(shape, 1) by Marsaglia–Tsang squeeze; shapes
// below 1 use the boost Gamma(a) = Gamma(a+1)·U^(1/a).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := 1 - rng.Float64() // (0,1]
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - rng.Float64() // (0,1]: keeps the log finite
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// analyticVariance returns the unit-mean distribution's variance — the
// quantity the statistical tests check sample moments against.
func analyticVariance(a Arrival) float64 {
	switch a.Dist {
	case DistGamma:
		// Gamma(k,θ) scaled to unit mean: var = 1/k.
		return 1 / a.Shape
	case DistWeibull:
		g1 := math.Gamma(1 + 1/a.Shape)
		g2 := math.Gamma(1 + 2/a.Shape)
		return g2/(g1*g1) - 1
	case DistUniform:
		// U(0,2): var = (2-0)²/12.
		return 1.0 / 3.0
	default: // exponential
		return 1
	}
}

// pick draws one index from cumulative weights (strictly increasing,
// last = total).
func pick(rng *rand.Rand, cum []float64) int {
	r := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if r < c {
			return i
		}
	}
	return len(cum) - 1
}

// cumulate folds weights into a cumulative sum, skipping zero-weight
// entries by giving them zero probability mass.
func cumulate[T any](mix []T, weight func(T) float64) []float64 {
	cum := make([]float64, len(mix))
	sum := 0.0
	for i, m := range mix {
		sum += weight(m)
		cum[i] = sum
	}
	return cum
}
