package workload

import (
	"bytes"
	"testing"
	"time"
)

// FuzzParseSpec: arbitrary input must never panic the spec loader, and
// every accepted spec must be fully valid — in particular NaN/negative
// rates and unknown distributions must have been rejected with the typed
// errors, because Compile trusts Validate.
func FuzzParseSpec(f *testing.F) {
	var buf bytes.Buffer
	if err := twoClientSpec(1).WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{}`)
	f.Add(`{"seed":1,"horizon_s":1,"clients":[]}`)
	f.Add(`{"seed":1,"horizon_s":1,"clients":[{"arrival":{"dist":"pareto","rate":1},"models":[{"model":"m","weight":1}],"batches":[{"batch":1,"weight":1}]}]}`)
	f.Add(`{"seed":1,"horizon_s":1,"clients":[{"arrival":{"dist":"poisson","rate":-5},"models":[{"model":"m","weight":1}],"batches":[{"batch":1,"weight":1}]}]}`)
	f.Add(`{"seed":1,"horizon_s":1e308,"clients":[{"arrival":{"dist":"poisson","rate":1e308},"models":[{"model":"m","weight":1}],"batches":[{"batch":1,"weight":1}]}]}`)
	f.Add(`{"seed":1,"horizon_s":2,"clients":[{"arrival":{"dist":"weibull","rate":10,"shape":0.3},"envelope":{"kind":"bursty","period_s":1,"burst_s":0.2,"gain":8},"models":[{"model":"m","weight":1}],"batches":[{"batch":3,"weight":1}]}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		spec, err := ParseSpecBytes([]byte(data))
		if err != nil {
			return
		}
		// Accepted ⇒ valid: ParseSpec ran Validate, so a second pass must
		// agree and every compiled event stream must be time ordered.
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("accepted spec fails Validate: %v", verr)
		}
		// Only compile cheap specs: the generator loop is linear in the
		// event count, and the fuzzer should spend its budget on the
		// parser, not on legitimately huge workloads.
		if spec.expectedEvents() > 10_000 {
			return
		}
		spec.MaxEvents = 2_000
		tr, cerr := Compile(spec)
		if cerr != nil {
			return // e.g. ErrEmptyTrace for tiny rates — valid outcome
		}
		prev := time.Duration(-1)
		for i, r := range tr {
			if r.At < prev {
				t.Fatalf("compiled event %d out of order", i)
			}
			prev = r.At
			if r.Batch <= 0 || r.Model == "" {
				t.Fatalf("compiled event %d malformed: %+v", i, r)
			}
		}
	})
}
