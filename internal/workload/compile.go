package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"bomw/internal/trace"
)

// Compile expands a spec into a single time-ordered trace on the virtual
// clock. Each client generates independently from its own seeded stream
// (derived from Spec.Seed and the client index, so adding a client never
// perturbs the others), then the per-client streams are merged and
// sorted by arrival time with a stable tie-break on client order.
//
// The sort is load-bearing, not cosmetic: every trace consumer —
// trace.Play's paced replay, Summarize, RateOver's bucket indexing, the
// replay engines — validates or assumes monotonically ordered arrivals,
// and an interleaved multi-client merge is exactly the input that used
// to violate it. Compile owns the ordering so no caller can trip it.
func Compile(spec Spec) (trace.Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	limit := MaxCompiledEvents
	if spec.MaxEvents > 0 && spec.MaxEvents < limit {
		limit = spec.MaxEvents
	}
	// Reject hopeless specs before generating: 4× the expected count at
	// peak rate still under the cap keeps honest heavy traffic compiling
	// while a mistyped rate fails fast.
	if expect := spec.expectedEvents(); expect > 4*float64(MaxCompiledEvents) {
		return nil, fmt.Errorf("%w: ≈%.0f expected events, cap %d", ErrTooManyEvents, expect, MaxCompiledEvents)
	}
	var all trace.Trace
	for ci, c := range spec.Clients {
		events, err := compileClient(spec, ci, c)
		if err != nil {
			return nil, err
		}
		all = append(all, events...)
		if len(all) > 4*MaxCompiledEvents {
			return nil, fmt.Errorf("%w: cap %d", ErrTooManyEvents, MaxCompiledEvents)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("%w: horizon %vs", ErrEmptyTrace, spec.HorizonS)
	}
	// Stable: same-instant arrivals keep client order, so the merge is
	// deterministic even on ties.
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	if len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}

// clientSeed derives a per-client seed from the spec seed. SplitMix-style
// mixing keeps neighbouring client indices uncorrelated.
func clientSeed(seed int64, idx int) int64 {
	z := uint64(seed) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// compileClient generates one client's arrivals over its active window.
// The envelope modulates the instantaneous rate: each unit-mean draw is
// divided by rate × factor(t), so valleys stretch gaps and bursts
// compress them.
func compileClient(spec Spec, ci int, c Client) (trace.Trace, error) {
	rng := rand.New(rand.NewSource(clientSeed(spec.Seed, ci)))
	draw := newSampler(c.Arrival)
	modelCum := cumulate(c.Models, func(m ModelMix) float64 { return m.Weight })
	batchCum := cumulate(c.Batches, func(b BatchMix) float64 { return b.Weight })
	start, stop := c.window(spec.HorizonS)
	var out trace.Trace
	t := start
	for {
		f := c.Envelope.factor(t - start)
		gap := draw(rng) / (c.Arrival.Rate * f)
		t += gap
		if t >= stop || math.IsNaN(t) {
			return out, nil
		}
		out = append(out, trace.Request{
			At:    time.Duration(t * float64(time.Second)),
			Model: c.Models[pick(rng, modelCum)].Model,
			Batch: c.Batches[pick(rng, batchCum)].Batch,
		})
		if len(out) > MaxCompiledEvents {
			return nil, fmt.Errorf("%w: client %d (%s) alone exceeds cap %d",
				ErrTooManyEvents, ci, c.label(ci), MaxCompiledEvents)
		}
	}
}
