// Package workload compiles declarative, seeded workload specifications
// into virtual-clock request traces. Where package trace hand-codes
// three arrival shapes (Poisson, Burst, Diurnal), a workload Spec
// composes them: any number of concurrent clients, each with its own
// interarrival distribution (Poisson/Gamma/Weibull/uniform), a rate
// envelope (constant, diurnal, bursty) modulating it over the span, and
// weighted model/batch mixes — heavy-tailed request populations
// included. Compile expands the spec into one time-ordered trace.Trace,
// so the output feeds everything that already consumes traces:
// trace.Play, Scheduler.Replay, Pipeline.Play and the cluster tier.
//
// Everything is deterministic in Spec.Seed: the same spec and seed
// produce byte-identical traces, which is what makes the MLPerf-style
// scenario reports (internal/workload/scenario) reproducible.
package workload

import (
	"errors"
	"fmt"
	"math"
)

// Dist names an interarrival distribution.
type Dist string

// Interarrival distributions. Shape is ignored by poisson and uniform;
// gamma and weibull use it to trade regularity against burstiness while
// Rate always fixes the mean: shape 1 recovers the exponential, shape >1
// is more regular than Poisson (CV < 1), shape <1 is burstier (CV > 1,
// the heavy-tailed regime).
const (
	DistPoisson Dist = "poisson"
	DistGamma   Dist = "gamma"
	DistWeibull Dist = "weibull"
	DistUniform Dist = "uniform"
)

// Envelope kinds.
const (
	EnvConstant = "constant"
	EnvDiurnal  = "diurnal"
	EnvBursty   = "bursty"
)

// Typed validation errors. ParseSpec and Compile wrap these with the
// offending client/field, so callers can branch with errors.Is while
// users still see what exactly is wrong.
var (
	// ErrNoClients rejects a spec without clients.
	ErrNoClients = errors.New("workload: spec needs at least one client")
	// ErrBadHorizon rejects a non-positive or non-finite horizon.
	ErrBadHorizon = errors.New("workload: horizon must be positive and finite")
	// ErrBadRate rejects NaN, infinite, zero or negative rates.
	ErrBadRate = errors.New("workload: rate must be positive and finite")
	// ErrBadShape rejects NaN, infinite, zero or negative shapes.
	ErrBadShape = errors.New("workload: shape must be positive and finite")
	// ErrUnknownDist rejects an interarrival distribution that is not
	// poisson, gamma, weibull or uniform.
	ErrUnknownDist = errors.New("workload: unknown interarrival distribution")
	// ErrUnknownEnvelope rejects a rate-envelope kind that is not
	// constant, diurnal or bursty.
	ErrUnknownEnvelope = errors.New("workload: unknown rate envelope")
	// ErrBadEnvelope rejects envelope parameters outside their domain.
	ErrBadEnvelope = errors.New("workload: bad envelope parameters")
	// ErrBadMix rejects empty mixes, non-finite or negative weights, and
	// mixes whose weights sum to zero.
	ErrBadMix = errors.New("workload: mix needs finite non-negative weights with a positive sum")
	// ErrBadBatch rejects non-positive batch sizes.
	ErrBadBatch = errors.New("workload: batch sizes must be positive")
	// ErrBadWindow rejects a client window outside the spec horizon.
	ErrBadWindow = errors.New("workload: client start/stop must satisfy 0 ≤ start < stop ≤ horizon")
	// ErrEmptyTrace reports that a valid spec generated no events (rates
	// too low for the horizon).
	ErrEmptyTrace = errors.New("workload: spec generated no events")
	// ErrTooManyEvents caps compilation: the spec's rates × horizon
	// exceed MaxCompiledEvents.
	ErrTooManyEvents = errors.New("workload: spec exceeds the compiled-event cap")
)

// MaxCompiledEvents bounds one Compile, so a mistyped rate or horizon
// fails fast with ErrTooManyEvents instead of exhausting memory.
const MaxCompiledEvents = 4 << 20

// Arrival is one client's interarrival process. Rate is the mean request
// rate in requests per virtual second at envelope factor 1; Shape tunes
// the gamma/weibull coefficient of variation.
type Arrival struct {
	Dist  Dist    `json:"dist"`
	Rate  float64 `json:"rate"`
	Shape float64 `json:"shape,omitempty"`
}

// Envelope modulates a client's rate over the span with a factor in
// (0, Gain]: the generator divides each interarrival draw by the factor
// at the current virtual time.
//
//   - constant (or empty): factor 1 always.
//   - diurnal: a sinusoid between Floor (valley multiplier, in (0,1])
//     and 1 with the given period — Rate is the peak rate.
//   - bursty: factor Gain (≥1) during the first BurstS seconds of every
//     PeriodS window, 1 otherwise — Rate is the base rate.
type Envelope struct {
	Kind    string  `json:"kind,omitempty"`
	PeriodS float64 `json:"period_s,omitempty"`
	Floor   float64 `json:"floor,omitempty"`
	BurstS  float64 `json:"burst_s,omitempty"`
	Gain    float64 `json:"gain,omitempty"`
}

// ModelMix is one weighted entry of a client's model population.
type ModelMix struct {
	Model  string  `json:"model"`
	Weight float64 `json:"weight"`
}

// BatchMix is one weighted entry of a client's batch-size population.
// Heavy-tailed request mixes are expressed here: many small batches with
// large weights, a few huge batches with small ones.
type BatchMix struct {
	Batch  int     `json:"batch"`
	Weight float64 `json:"weight"`
}

// Client is one concurrent traffic source: its own arrival process,
// envelope, mixes and active window within the spec horizon.
type Client struct {
	Name     string     `json:"name,omitempty"`
	Arrival  Arrival    `json:"arrival"`
	Envelope Envelope   `json:"envelope,omitempty"`
	Models   []ModelMix `json:"models"`
	Batches  []BatchMix `json:"batches"`
	// StartS/StopS bound the client's active window in virtual seconds
	// from the trace origin; StopS 0 means the spec horizon.
	StartS float64 `json:"start_s,omitempty"`
	StopS  float64 `json:"stop_s,omitempty"`
}

// Spec is a complete multi-client workload description.
type Spec struct {
	// Seed drives every random draw; the same spec and seed compile to
	// an identical trace.
	Seed int64 `json:"seed"`
	// HorizonS is the generation span in virtual seconds.
	HorizonS float64 `json:"horizon_s"`
	// MaxEvents optionally truncates the merged trace to its first N
	// events (0 = unlimited up to MaxCompiledEvents).
	MaxEvents int      `json:"max_events,omitempty"`
	Clients   []Client `json:"clients"`
}

func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

func (a Arrival) validate() error {
	switch a.Dist {
	case DistPoisson, DistUniform:
	case DistGamma, DistWeibull:
		if !finitePositive(a.Shape) {
			return fmt.Errorf("%w: %s shape %v", ErrBadShape, a.Dist, a.Shape)
		}
	default:
		return fmt.Errorf("%w: %q (want poisson, gamma, weibull or uniform)", ErrUnknownDist, a.Dist)
	}
	if !finitePositive(a.Rate) {
		return fmt.Errorf("%w: got %v", ErrBadRate, a.Rate)
	}
	return nil
}

func (e Envelope) validate() error {
	switch e.Kind {
	case "", EnvConstant:
		return nil
	case EnvDiurnal:
		if !finitePositive(e.PeriodS) {
			return fmt.Errorf("%w: diurnal period %v", ErrBadEnvelope, e.PeriodS)
		}
		if !finitePositive(e.Floor) || e.Floor > 1 {
			return fmt.Errorf("%w: diurnal floor %v not in (0,1]", ErrBadEnvelope, e.Floor)
		}
		return nil
	case EnvBursty:
		if !finitePositive(e.PeriodS) || !finitePositive(e.BurstS) || e.BurstS > e.PeriodS {
			return fmt.Errorf("%w: bursty burst %vs of period %vs", ErrBadEnvelope, e.BurstS, e.PeriodS)
		}
		if math.IsNaN(e.Gain) || math.IsInf(e.Gain, 0) || e.Gain < 1 {
			return fmt.Errorf("%w: bursty gain %v must be ≥ 1 and finite", ErrBadEnvelope, e.Gain)
		}
		return nil
	default:
		return fmt.Errorf("%w: %q (want constant, diurnal or bursty)", ErrUnknownEnvelope, e.Kind)
	}
}

// peak returns the envelope's maximum factor — the worst-case rate
// multiplier, used to bound the compiled event count.
func (e Envelope) peak() float64 {
	if e.Kind == EnvBursty {
		return e.Gain
	}
	return 1
}

// factor evaluates the envelope at virtual time t (seconds from the
// client's start).
func (e Envelope) factor(t float64) float64 {
	switch e.Kind {
	case EnvDiurnal:
		phase := 2 * math.Pi * t / e.PeriodS
		return e.Floor + (1-e.Floor)*(0.5+0.5*math.Sin(phase))
	case EnvBursty:
		if math.Mod(t, e.PeriodS) < e.BurstS {
			return e.Gain
		}
		return 1
	default:
		return 1
	}
}

func validateWeights[T any](mix []T, weight func(T) float64) error {
	if len(mix) == 0 {
		return fmt.Errorf("%w: mix is empty", ErrBadMix)
	}
	sum := 0.0
	for i, m := range mix {
		w := weight(m)
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("%w: entry %d weight %v", ErrBadMix, i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return fmt.Errorf("%w: weights sum to %v", ErrBadMix, sum)
	}
	return nil
}

func (c Client) validate(horizon float64) error {
	if err := c.Arrival.validate(); err != nil {
		return err
	}
	if err := c.Envelope.validate(); err != nil {
		return err
	}
	if err := validateWeights(c.Models, func(m ModelMix) float64 { return m.Weight }); err != nil {
		return fmt.Errorf("models: %w", err)
	}
	for i, m := range c.Models {
		if m.Model == "" {
			return fmt.Errorf("models: %w: entry %d has no model name", ErrBadMix, i)
		}
	}
	if err := validateWeights(c.Batches, func(b BatchMix) float64 { return b.Weight }); err != nil {
		return fmt.Errorf("batches: %w", err)
	}
	for i, b := range c.Batches {
		if b.Batch <= 0 {
			return fmt.Errorf("%w: entry %d batch %d", ErrBadBatch, i, b.Batch)
		}
	}
	start, stop := c.window(horizon)
	if math.IsNaN(c.StartS) || math.IsNaN(c.StopS) || start < 0 || stop <= start || stop > horizon {
		return fmt.Errorf("%w: start %vs stop %vs horizon %vs", ErrBadWindow, c.StartS, c.StopS, horizon)
	}
	return nil
}

// window resolves the client's active [start, stop) in seconds.
func (c Client) window(horizon float64) (start, stop float64) {
	start, stop = c.StartS, c.StopS
	if stop == 0 {
		stop = horizon
	}
	return start, stop
}

// Validate checks the whole spec, wrapping the typed errors above with
// the offending client.
func (s Spec) Validate() error {
	if !finitePositive(s.HorizonS) {
		return fmt.Errorf("%w: got %v", ErrBadHorizon, s.HorizonS)
	}
	if len(s.Clients) == 0 {
		return ErrNoClients
	}
	if s.MaxEvents < 0 {
		return fmt.Errorf("workload: max_events must be non-negative, got %d", s.MaxEvents)
	}
	for i, c := range s.Clients {
		if err := c.validate(s.HorizonS); err != nil {
			return fmt.Errorf("workload: client %d (%s): %w", i, c.label(i), err)
		}
	}
	return nil
}

// label names a client for error messages.
func (c Client) label(i int) string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("client%d", i)
}

// expectedEvents bounds the spec's event count at peak envelope factor,
// for the ErrTooManyEvents guard.
func (s Spec) expectedEvents() float64 {
	total := 0.0
	for _, c := range s.Clients {
		start, stop := c.window(s.HorizonS)
		total += c.Arrival.Rate * c.Envelope.peak() * (stop - start)
	}
	return total
}
