package workload

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"bomw/internal/trace"
)

func twoClientSpec(seed int64) Spec {
	return Spec{
		Seed:     seed,
		HorizonS: 20,
		Clients: []Client{
			{
				Name:    "steady",
				Arrival: Arrival{Dist: DistPoisson, Rate: 40},
				Models:  []ModelMix{{Model: "mnist-small", Weight: 3}, {Model: "simple", Weight: 1}},
				Batches: []BatchMix{{Batch: 8, Weight: 8}, {Batch: 64, Weight: 1}},
			},
			{
				Name:     "bursty",
				Arrival:  Arrival{Dist: DistGamma, Rate: 25, Shape: 0.5},
				Envelope: Envelope{Kind: EnvBursty, PeriodS: 5, BurstS: 1, Gain: 4},
				Models:   []ModelMix{{Model: "mnist-small", Weight: 1}},
				Batches:  []BatchMix{{Batch: 16, Weight: 1}, {Batch: 512, Weight: 0.05}},
				StartS:   2,
				StopS:    18,
			},
		},
	}
}

func TestCompileDeterministicInSeed(t *testing.T) {
	a, err := Compile(twoClientSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(twoClientSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical spec+seed compiled to different traces")
	}
	c, err := Compile(twoClientSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct seeds compiled to identical traces")
	}
}

// The regression the compiler's sort exists for: an interleaved
// multi-client merge is exactly the stream that used to violate the
// monotone-ordering assumption of the trace consumers. The compiled
// trace must pass RateOver's (and Summarize's) ordering validation and
// replay through trace.Play without loss.
func TestCompiledMultiClientTraceIsOrdered(t *testing.T) {
	tr, err := Compile(twoClientSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].At < tr[i-1].At {
			t.Fatalf("event %d at %v arrives before predecessor at %v", i, tr[i].At, tr[i-1].At)
		}
	}
	if _, err := trace.Summarize(tr); err != nil {
		t.Fatalf("Summarize rejected compiled trace: %v", err)
	}
	if _, err := trace.RateOver(tr, time.Second); err != nil {
		t.Fatalf("RateOver rejected compiled trace: %v", err)
	}
	// And the paced replay path delivers every event in order.
	got := 0
	prev := time.Duration(-1)
	for req := range trace.Play(context.Background(), tr, 1e6) {
		if req.At < prev {
			t.Fatalf("Play delivered event at %v after %v", req.At, prev)
		}
		prev = req.At
		got++
	}
	if got != len(tr) {
		t.Fatalf("Play delivered %d of %d events", got, len(tr))
	}
}

// Compiled arrival rates track the spec: a plain Poisson client's mean
// rate lands on its configured rate, and a diurnal envelope produces
// visibly higher peak-window than valley-window rates.
func TestCompileRespectsRates(t *testing.T) {
	spec := Spec{
		Seed:     9,
		HorizonS: 60,
		Clients: []Client{{
			Arrival: Arrival{Dist: DistPoisson, Rate: 100},
			Models:  []ModelMix{{Model: "m", Weight: 1}},
			Batches: []BatchMix{{Batch: 4, Weight: 1}},
		}},
	}
	tr, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.Summarize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.MeanRate-100)/100 > 0.05 {
		t.Fatalf("mean rate %.1f req/s, want 100 ± 5%%", st.MeanRate)
	}

	spec.Clients[0].Envelope = Envelope{Kind: EnvDiurnal, PeriodS: 60, Floor: 0.1}
	tr, err = Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := trace.RateOver(tr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	peak, valley := 0.0, math.Inf(1)
	for _, r := range rates {
		peak = math.Max(peak, r)
		valley = math.Min(valley, r)
	}
	if peak < 3*valley {
		t.Fatalf("diurnal envelope flat: peak %.1f vs valley %.1f req/s", peak, valley)
	}
}

// The weighted mixes drive model and batch populations.
func TestCompileMixes(t *testing.T) {
	tr, err := Compile(twoClientSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]int{}
	sawBig := false
	for _, r := range tr {
		models[r.Model]++
		if r.Batch == 512 {
			sawBig = true
		}
	}
	if models["mnist-small"] == 0 || models["simple"] == 0 {
		t.Fatalf("model mix collapsed: %v", models)
	}
	if models["mnist-small"] < 2*models["simple"] {
		t.Fatalf("3:1 weighting not reflected: %v", models)
	}
	if !sawBig {
		t.Fatal("heavy-tail batch 512 never drawn")
	}
}

func TestCompileMaxEventsTruncates(t *testing.T) {
	spec := twoClientSpec(1)
	spec.MaxEvents = 100
	tr, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 100 {
		t.Fatalf("got %d events, want 100", len(tr))
	}
}

func TestCompileRejectsRunawaySpecs(t *testing.T) {
	spec := Spec{
		Seed:     1,
		HorizonS: 1e6,
		Clients: []Client{{
			Arrival: Arrival{Dist: DistPoisson, Rate: 1e6},
			Models:  []ModelMix{{Model: "m", Weight: 1}},
			Batches: []BatchMix{{Batch: 1, Weight: 1}},
		}},
	}
	if _, err := Compile(spec); !errors.Is(err, ErrTooManyEvents) {
		t.Fatalf("got %v, want ErrTooManyEvents", err)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	base := func() Spec { return twoClientSpec(1) }
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   error
	}{
		{"no clients", func(s *Spec) { s.Clients = nil }, ErrNoClients},
		{"bad horizon", func(s *Spec) { s.HorizonS = 0 }, ErrBadHorizon},
		{"nan horizon", func(s *Spec) { s.HorizonS = math.NaN() }, ErrBadHorizon},
		{"negative rate", func(s *Spec) { s.Clients[0].Arrival.Rate = -3 }, ErrBadRate},
		{"nan rate", func(s *Spec) { s.Clients[0].Arrival.Rate = math.NaN() }, ErrBadRate},
		{"inf rate", func(s *Spec) { s.Clients[0].Arrival.Rate = math.Inf(1) }, ErrBadRate},
		{"bad shape", func(s *Spec) { s.Clients[1].Arrival.Shape = 0 }, ErrBadShape},
		{"unknown dist", func(s *Spec) { s.Clients[0].Arrival.Dist = "pareto" }, ErrUnknownDist},
		{"unknown envelope", func(s *Spec) { s.Clients[0].Envelope.Kind = "square" }, ErrUnknownEnvelope},
		{"bad envelope", func(s *Spec) { s.Clients[1].Envelope.Gain = 0.5 }, ErrBadEnvelope},
		{"empty models", func(s *Spec) { s.Clients[0].Models = nil }, ErrBadMix},
		{"nan weight", func(s *Spec) { s.Clients[0].Models[0].Weight = math.NaN() }, ErrBadMix},
		{"zero weights", func(s *Spec) {
			for i := range s.Clients[0].Batches {
				s.Clients[0].Batches[i].Weight = 0
			}
		}, ErrBadMix},
		{"bad batch", func(s *Spec) { s.Clients[0].Batches[0].Batch = 0 }, ErrBadBatch},
		{"bad window", func(s *Spec) { s.Clients[1].StartS = 30 }, ErrBadWindow},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			if err := s.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
			if _, err := Compile(s); !errors.Is(err, tc.want) {
				t.Fatalf("Compile() = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := twoClientSpec(11)
	var buf bytes.Buffer
	if err := spec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip changed the spec:\n%+v\n%+v", spec, back)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"unknown field", `{"seed":1,"horizon_s":1,"typo":true,"clients":[]}`},
		{"trailing data", `{"seed":1,"horizon_s":1,"clients":[{"arrival":{"dist":"poisson","rate":1},"models":[{"model":"m","weight":1}],"batches":[{"batch":1,"weight":1}]}]} {}`},
		{"no clients", `{"seed":1,"horizon_s":1,"clients":[]}`},
		{"negative rate", `{"seed":1,"horizon_s":1,"clients":[{"arrival":{"dist":"poisson","rate":-1},"models":[{"model":"m","weight":1}],"batches":[{"batch":1,"weight":1}]}]}`},
	}
	for _, tc := range cases {
		if _, err := ParseSpecBytes([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
