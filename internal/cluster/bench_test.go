package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"bomw/internal/core"
)

// BenchmarkClusterServe measures end-to-end serving throughput through
// the routing tier: closed-loop clients submit to a 4-node least-loaded
// fleet and wait for each completion. Against BenchmarkPipelineServe
// (one node, no router) this isolates what the fleet buys — and what the
// routing hop costs — at the same client counts.
func BenchmarkClusterServe(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			pol, _ := PolicyByName("least-loaded", 1)
			c, _, err := Build(templateScheduler(b), 4, 1, core.PipelineConfig{
				Window:        500 * time.Microsecond,
				MaxBatch:      256,
				ProbeInterval: -1,
			}, Config{Policy: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			work := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						comp, err := c.Do(ctx, core.PipelineRequest{Model: "mnist-small", Policy: core.BestThroughput, Batch: 8})
						if err != nil {
							b.Error(err)
							return
						}
						if comp.Err != nil {
							b.Error(comp.Err)
							return
						}
					}
				}()
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				work <- struct{}{}
			}
			close(work)
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
		})
	}
}
