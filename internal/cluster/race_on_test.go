//go:build race

package cluster

// raceEnabled reports whether the race detector is compiled in; the
// chaos soak relaxes its wall-time-coupled assertions under it.
const raceEnabled = true
