package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bomw/internal/core"
	"bomw/internal/models"
	"bomw/internal/opencl"
)

// armSlowPlans mirrors bomwsrv's chaos applier: every device of a
// slow-plan node gets an always-on latency spike so the node is
// genuinely slower end to end on the virtual clock.
func armSlowPlans(nodes []*core.Node, ci *ChaosInjector, seed int64) {
	for i, nd := range nodes {
		p, ok := ci.Plan(nd.Name())
		if !ok || p.SlowFactor <= 1 {
			continue
		}
		fi := opencl.NewFaultInjector(seed + int64(i))
		for _, dev := range nd.Scheduler().Devices() {
			fi.SetPlan(dev, opencl.FaultPlan{SpikeRate: 1, SpikeFactor: p.SlowFactor})
		}
		nd.Scheduler().Runtime().SetFaultInjector(fi)
	}
}

// chaosTemplate builds a soak-local template scheduler: slow plans arm
// fault injectors on node schedulers (node0 shares the template's), so
// the package-shared template must not be used here.
func chaosTemplate(t testing.TB) *core.Scheduler {
	t.Helper()
	tmpl, err := core.New(core.Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512, 8192, 65536},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tmpl.LoadModel(models.Simple(), 1); err != nil {
		t.Fatal(err)
	}
	if err := tmpl.LoadModel(models.MnistSmall(), 1); err != nil {
		t.Fatal(err)
	}
	return tmpl
}

// chaosRun drives a 16-node resilient fleet (node hedging + straggler
// probation on) under closed-loop client load until the virtual clock
// passes the chaos horizon. Returns client-side SLO attainment and the
// final fleet stats.
func chaosRun(t *testing.T, tmpl *core.Scheduler, ci *ChaosInjector, fleetSize, clients int, horizon, deadline time.Duration) (float64, FleetStats) {
	t.Helper()
	pol, err := PolicyByName("least-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Gated clock: virtual time holds at 0 until the fleet is fully
	// built and armed, so chaos windows (scripted from virtual 0) can't
	// expire during replica construction — which takes multiple seconds
	// under the race detector.
	var startNanos atomic.Int64
	cfg := Config{
		Policy:     pol,
		SweepEvery: 50,
		NodeHedge:  true,
		Straggler:  StragglerConfig{Enabled: true},
		Chaos:      ci,
		Clock: func() time.Duration {
			s := startNanos.Load()
			if s == 0 {
				return 0
			}
			return time.Duration(time.Now().UnixNano() - s)
		},
	}
	c, nodes, err := Build(tmpl, fleetSize, 1, core.PipelineConfig{
		Window: 200 * time.Microsecond, MaxBatch: 32,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if ci != nil {
		armSlowPlans(nodes, ci, 9)
	}
	startNanos.Store(time.Now().UnixNano())

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	mods := []string{"simple", "mnist-small"}
	var attempts, ok, failed atomic.Int64
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	until := horizon + 300*time.Millisecond
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; c.Clock()() < until; k++ {
				attempts.Add(1)
				fut, err := c.Submit(ctx, core.PipelineRequest{
					Model:    mods[(i+k)%len(mods)],
					Policy:   core.BestThroughput,
					Batch:    1 << (k % 3),
					Deadline: deadline,
				})
				switch {
				case errors.Is(err, core.ErrAdmissionFull), errors.Is(err, core.ErrDeadlineInfeasible),
					errors.Is(err, ErrNoHealthyNodes), errors.Is(err, core.ErrNodeDraining),
					errors.Is(err, core.ErrNodeDown):
					failed.Add(1)
					continue
				case err != nil:
					errCh <- err
					return
				}
				comp, err := fut.Wait(ctx)
				switch {
				case err != nil:
					errCh <- err
					return
				case comp.Err != nil:
					failed.Add(1)
				default:
					ok.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("chaos client failed: %v", err)
	}
	if n := attempts.Load(); ok.Load()+failed.Load() != n {
		t.Fatalf("client accounting leaked: %d attempts, %d ok + %d failed", n, ok.Load(), failed.Load())
	}
	// The no-lost-futures identity (Submitted ≡ Completed) only holds
	// once the pipelines drain: a cancelled hedge loser's node-side
	// completion can land after the caller's future resolved. Close
	// before the final snapshot (the deferred Close is a no-op then).
	c.Close()
	return float64(ok.Load()) / float64(attempts.Load()), c.Stats()
}

// assertNoLostFutures checks the fleet-wide conservation law: every
// admitted request's future resolved (Completed includes the ok,
// Failed, Cancelled and Expired buckets — see core.PipelineStats).
func assertNoLostFutures(t *testing.T, st FleetStats) {
	t.Helper()
	if st.Completed != st.Submitted {
		t.Fatalf("lost futures: submitted %d, completed %d (cancelled %d expired %d failed %d)",
			st.Submitted, st.Completed, st.Cancelled, st.Expired, st.Failed)
	}
}

// TestSoakChaos is the PR 9 acceptance soak: a 16-node resilient fleet
// rides out 2 seeded crash-window nodes (flapping restarts) plus 2
// always-slow straggler nodes with feasible-SLO attainment within 5
// points of the no-fault baseline, nonzero hedge wins and migrations,
// and zero lost futures.
func TestSoakChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("attainment bars need realistic wall timing; TestChaosSmoke is the race-detector drill")
	}
	const (
		fleetSize = 16
		clients   = 16
	)
	horizon := 2500 * time.Millisecond
	deadline := 2 * time.Millisecond
	tmpl := chaosTemplate(t)
	plans, err := GenerateChaosPlans(fleetNamesForTest(fleetSize), ChaosConfig{
		Seed: 9, Crash: 2, Slow: 2, Horizon: horizon, Flaps: 2, SlowFactor: 16,
	})
	if err != nil {
		t.Fatal(err)
	}

	baseAtt, baseSt := chaosRun(t, tmpl, nil, fleetSize, clients, horizon, deadline)
	chaosAtt, chaosSt := chaosRun(t, tmpl, NewChaosInjector(plans), fleetSize, clients, horizon, deadline)
	t.Logf("baseline: attainment %.4f, submits %d", baseAtt, baseSt.Submits)
	t.Logf("chaos:    attainment %.4f, submits %d", chaosAtt, chaosSt.Submits)
	t.Logf("chaos counters: hedges %d won %d, migrations %d, suspicions %d, probations %d, falseSuspects %d, probes %d, trips %d, recoveries %d, benignCancels %d",
		chaosSt.NodeHedges, chaosSt.NodeHedgesWon, chaosSt.Migrations, chaosSt.Suspicions,
		chaosSt.Probations, chaosSt.FalseSuspects, chaosSt.Probes, chaosSt.ChaosTrips,
		chaosSt.ChaosRecoveries, chaosSt.BenignCancels)

	if chaosAtt < baseAtt-0.05 {
		t.Fatalf("chaos attainment %.4f fell more than 5 points below baseline %.4f", chaosAtt, baseAtt)
	}
	if chaosSt.NodeHedgesWon == 0 {
		t.Fatal("no node hedge ever won against the stragglers")
	}
	if chaosSt.Migrations == 0 {
		t.Fatal("no queued work ever migrated off a degraded node")
	}
	if chaosSt.ChaosTrips < 2 {
		t.Fatalf("chaos trips = %d, want the scripted crash windows entered", chaosSt.ChaosTrips)
	}
	assertNoLostFutures(t, baseSt)
	assertNoLostFutures(t, chaosSt)
}

// fleetNamesForTest matches Build's node0..node{n-1} naming so seeded
// plans land on real fleet members.
func fleetNamesForTest(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	return names
}

// TestChaosSmoke is the CI drill behind `make smoke-chaos`: the same
// 16-node seeded incident at a shorter horizon under the race detector,
// with brownout also armed so every resilience path runs concurrently.
// Asserts invariants only (accounting, no wedged clients, windows
// entered); the attainment bar is the soak's job.
func TestChaosSmoke(t *testing.T) {
	const fleetSize = 16
	horizon := 800 * time.Millisecond
	tmpl := chaosTemplate(t)
	plans, err := GenerateChaosPlans(fleetNamesForTest(fleetSize), ChaosConfig{
		Seed: 9, Crash: 2, Slow: 2, Horizon: horizon, Flaps: 2, SlowFactor: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, st := chaosRun(t, tmpl, NewChaosInjector(plans), fleetSize, 8, horizon, 2*time.Millisecond)
	assertNoLostFutures(t, st)
	if st.ChaosTrips == 0 {
		t.Fatal("no crash window was ever entered")
	}
	if st.Submits == 0 || st.Submitted == 0 {
		t.Fatalf("smoke served nothing: %+v", st)
	}
}
