package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bomw/internal/core"
	"bomw/internal/models"
)

// ---- router behaviour over scripted fakes ------------------------------

func fakeFleet(t *testing.T, n int, cfg Config) (*Cluster, []*fakeNode) {
	t.Helper()
	fakes := make([]*fakeNode, n)
	nodes := make([]Node, n)
	for i := range fakes {
		fakes[i] = newFakeNode(fmt.Sprintf("node%d", i), 0)
		nodes[i] = fakes[i]
	}
	if cfg.Clock == nil {
		cfg.Clock = func() time.Duration { return 0 }
	}
	c, err := New(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, fakes
}

func TestSubmitFailsOverPastSheddingNode(t *testing.T) {
	c, fakes := fakeFleet(t, 3, Config{})
	fakes[0].setErr(core.ErrAdmissionFull)
	// Round-robin offers node0 first; the router must land on node1.
	if _, err := c.Submit(context.Background(), core.PipelineRequest{Model: "simple", Batch: 4}); err != nil {
		t.Fatal(err)
	}
	if fakes[1].acceptCount() != 1 {
		t.Fatalf("failover target node1 accepted %d, want 1", fakes[1].acceptCount())
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Fatalf("overload must not evict: %+v", st)
	}
	if st.PerNode[1].Rerouted != 1 {
		t.Fatalf("reroute not accounted: %+v", st.PerNode[1])
	}
}

func TestSubmitEvictsNodeAfterConsecutiveHardFailures(t *testing.T) {
	c, fakes := fakeFleet(t, 3, Config{EvictAfter: 2, SweepEvery: -1})
	fakes[0].setErr(core.ErrNodeDown)
	for k := 0; k < 6; k++ {
		if _, err := c.Submit(context.Background(), core.PipelineRequest{Model: "simple", Batch: 4}); err != nil {
			t.Fatalf("submit %d: %v", k, err)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || !st.PerNode[0].Evicted {
		t.Fatalf("dead node not evicted: %+v", st)
	}
	if st.Ready != 2 {
		t.Fatalf("ready = %d, want 2", st.Ready)
	}
	// Post-eviction traffic flows only to the survivors.
	accepted := fakes[1].acceptCount() + fakes[2].acceptCount()
	if accepted != 6 {
		t.Fatalf("survivors accepted %d of 6", accepted)
	}
}

func TestSubmitReturnsTerminalErrorsImmediately(t *testing.T) {
	c, fakes := fakeFleet(t, 3, Config{})
	terminal := errors.New("core: unknown model")
	fakes[0].setErr(terminal)
	fakes[1].setErr(terminal)
	_, err := c.Submit(context.Background(), core.PipelineRequest{Model: "nope", Batch: 4})
	if !errors.Is(err, terminal) {
		t.Fatalf("err = %v, want the terminal error", err)
	}
	// Identical on every replica: the router must not have retried.
	if got := fakes[0].acceptCount() + fakes[1].acceptCount() + fakes[2].acceptCount(); got != 0 {
		t.Fatalf("terminal error was retried onto a node: %d accepts", got)
	}
}

func TestSubmitNoReadyNodes(t *testing.T) {
	c, _ := fakeFleet(t, 2, Config{})
	if err := c.Evict("node0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict("node1"); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(context.Background(), core.PipelineRequest{Model: "simple", Batch: 4})
	if !errors.Is(err, ErrNoReadyNodes) {
		t.Fatalf("err = %v, want ErrNoReadyNodes", err)
	}
	if st := c.Stats(); st.RouteFailures != 1 {
		t.Fatalf("route failure not accounted: %+v", st)
	}
}

func TestSweepEvictsUnhealthyAndReadmitsRecovered(t *testing.T) {
	c, fakes := fakeFleet(t, 3, Config{SweepEvery: -1})
	// node2's health collapses (e.g. every device quarantined).
	fakes[2].mu.Lock()
	fakes[2].ready = false
	fakes[2].mu.Unlock()
	c.Sweep()
	st := c.Stats()
	if !st.PerNode[2].Evicted || st.Evictions != 1 {
		t.Fatalf("unhealthy node not evicted: %+v", st)
	}
	// It recovers; the next sweep readmits it.
	fakes[2].mu.Lock()
	fakes[2].ready = true
	fakes[2].mu.Unlock()
	c.Sweep()
	st = c.Stats()
	if st.PerNode[2].Evicted || st.Readmissions != 1 {
		t.Fatalf("recovered node not readmitted: %+v", st)
	}
}

func TestManualLifecycleOps(t *testing.T) {
	c, fakes := fakeFleet(t, 2, Config{})
	if err := c.Drain("node1"); err != nil {
		t.Fatal(err)
	}
	if fakes[1].drains != 1 {
		t.Fatalf("drain not delivered: %d", fakes[1].drains)
	}
	// A drained fake reports not-Ready, so readmission must refuse it.
	if err := c.Readmit("node1"); err == nil {
		t.Fatal("readmitted a drained node")
	}
	if err := c.Kill("node0"); err != nil {
		t.Fatal(err)
	}
	if fakes[0].kills != 1 {
		t.Fatalf("kill not delivered: %d", fakes[0].kills)
	}
	for _, op := range []func(string) error{c.Drain, c.Evict, c.Readmit, c.Kill} {
		if err := op("node9"); !errors.Is(err, ErrUnknownNode) {
			t.Fatalf("unknown node = %v, want ErrUnknownNode", err)
		}
	}
}

func TestNewRejectsBadFleets(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	a := newFakeNode("same", 0)
	b := newFakeNode("same", 0)
	if _, err := New([]Node{a, b}, Config{}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := New([]Node{a, nil}, Config{}); err == nil {
		t.Fatal("nil node accepted")
	}
}

// ---- integration over real nodes ---------------------------------------

// clusterTemplate builds one trained template scheduler for the whole
// test package (coarse batch grid, one rep, the simple model loaded).
var (
	tmplOnce sync.Once
	tmpl     *core.Scheduler
	tmplErr  error
)

func templateScheduler(t testing.TB) *core.Scheduler {
	t.Helper()
	tmplOnce.Do(func() {
		tmpl, tmplErr = core.New(core.Config{
			TrainModels: models.PaperModels(),
			Batches:     []int{8, 512, 8192, 65536},
			Reps:        1,
		})
		if tmplErr != nil {
			return
		}
		tmplErr = tmpl.LoadModel(models.Simple(), 1)
		if tmplErr == nil {
			tmplErr = tmpl.LoadModel(models.MnistSmall(), 1)
		}
	})
	if tmplErr != nil {
		t.Fatal(tmplErr)
	}
	return tmpl
}

// realCluster stands up n real nodes from the shared template.
func realCluster(t testing.TB, n int, cfg Config, pcfg core.PipelineConfig) *Cluster {
	t.Helper()
	if pcfg.ProbeInterval == 0 {
		pcfg.ProbeInterval = -1
	}
	c, _, err := Build(templateScheduler(t), n, 1, pcfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClusterDrainUnderLoad is the drain-ordering regression test at the
// fleet level: clients hammer the router while one node drains mid-run.
// The drain must not deadlock against the router's submissions, every
// future the fleet handed out must resolve, and the drained node's
// accepted tail must complete rather than drop.
func TestClusterDrainUnderLoad(t *testing.T) {
	pol, _ := PolicyByName("least-loaded", 1)
	c := realCluster(t, 3, Config{Policy: pol}, core.PipelineConfig{
		Window: 200 * time.Microsecond, MaxBatch: 16,
	})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const clients, perClient = 8, 60
	var accepted, resolved, refused atomic.Int64
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				fut, err := c.Submit(ctx, core.PipelineRequest{Model: "simple", Policy: core.BestThroughput, Batch: 4})
				switch {
				case errors.Is(err, core.ErrAdmissionFull), errors.Is(err, ErrNoReadyNodes),
					errors.Is(err, core.ErrNodeDraining), errors.Is(err, core.ErrNodeDown):
					refused.Add(1)
					continue
				case err != nil:
					errCh <- err
					return
				}
				accepted.Add(1)
				if _, err := fut.Wait(ctx); err != nil {
					errCh <- err
					return
				}
				resolved.Add(1)
			}
		}()
	}
	time.Sleep(3 * time.Millisecond)
	drained := make(chan error, 1)
	go func() { drained <- c.Drain("node1") }()
	wg.Wait()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-ctx.Done():
		t.Fatal("drain deadlocked against the router")
	}
	close(errCh)
	for err := range errCh {
		t.Fatalf("client failed: %v", err)
	}
	if accepted.Load() != resolved.Load() {
		t.Fatalf("accepted %d futures, resolved %d — the drain dropped in-flight work", accepted.Load(), resolved.Load())
	}
	st := c.Stats()
	if st.Submitted != accepted.Load() {
		t.Fatalf("fleet admitted %d, clients saw %d accepts", st.Submitted, accepted.Load())
	}
	if st.Completed != st.Submitted {
		t.Fatalf("fleet dropped futures: %+v", st)
	}
	t.Logf("accepted=%d refused=%d drained-node served=%d", accepted.Load(), refused.Load(), st.PerNode[1].Submitted)
}

// TestClusterSmoke is the CI smoke drill: an 8-node fleet under
// concurrent load survives one mid-run node kill — the router evicts the
// dead node, traffic fails over, every accepted future resolves, and the
// fleet stays serviceable throughout.
func TestClusterSmoke(t *testing.T) {
	pol, _ := PolicyByName("least-loaded", 1)
	c := realCluster(t, 8, Config{Policy: pol, SweepEvery: 50}, core.PipelineConfig{
		Window: 200 * time.Microsecond, MaxBatch: 16,
	})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const clients, perClient = 8, 50
	var accepted, resolved atomic.Int64
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	killAt := int64(clients * perClient / 3)
	var killOnce sync.Once
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				if accepted.Load() == killAt {
					killOnce.Do(func() {
						if err := c.Kill("node3"); err != nil {
							errCh <- err
						}
					})
				}
				fut, err := c.Submit(ctx, core.PipelineRequest{Model: "simple", Policy: core.BestThroughput, Batch: 4})
				switch {
				case errors.Is(err, core.ErrAdmissionFull), errors.Is(err, ErrNoReadyNodes),
					errors.Is(err, core.ErrNodeDraining), errors.Is(err, core.ErrNodeDown):
					continue
				case err != nil:
					errCh <- err
					return
				}
				accepted.Add(1)
				if _, err := fut.Wait(ctx); err != nil {
					errCh <- err
					return
				}
				resolved.Add(1)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("smoke client failed: %v", err)
	}
	if accepted.Load() != resolved.Load() {
		t.Fatalf("accepted %d, resolved %d", accepted.Load(), resolved.Load())
	}
	st := c.Stats()
	if st.Ready != 7 {
		t.Fatalf("ready = %d after one kill, want 7 (%+v)", st.Ready, st.PerNode)
	}
	if !st.PerNode[3].Evicted || st.PerNode[3].State != "killed" {
		t.Fatalf("killed node not evicted: %+v", st.PerNode[3])
	}
	if st.Completed != st.Submitted {
		t.Fatalf("fleet dropped futures: %+v", st)
	}
	// The fleet must have kept serving: the survivors absorbed the load.
	var survivors int64
	for i, ns := range st.PerNode {
		if i != 3 {
			survivors += ns.Submitted
		}
	}
	if survivors == 0 || accepted.Load() < int64(clients*perClient)*8/10 {
		t.Fatalf("fleet did not keep serving through the kill: accepted=%d survivors=%d", accepted.Load(), survivors)
	}
}

// TestSoakClusterTwoKills is the fleet acceptance soak: a 64-node fleet
// under least-loaded routing serves a heterogeneous feasible-SLO trace,
// two nodes are killed mid-run, and the fleet's SLO attainment must stay
// within 5 percentage points of a no-fault baseline over the same trace
// — node death costs routing capacity, not correctness.
func TestSoakClusterTwoKills(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	run := func(kills []string) (attainment float64, st FleetStats) {
		pol, _ := PolicyByName("least-loaded", 1)
		c := realCluster(t, 64, Config{Policy: pol, SweepEvery: 200}, core.PipelineConfig{
			Window: 200 * time.Microsecond, MaxBatch: 32,
		})
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		const clients, perClient = 16, 80
		mods := []string{"simple", "mnist-small"}
		var attempts, ok, failed atomic.Int64
		errCh := make(chan error, clients)
		var killOnce sync.Once
		killAt := int64(clients * perClient / 2)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for k := 0; k < perClient; k++ {
					if len(kills) > 0 && attempts.Load() >= killAt {
						killOnce.Do(func() {
							for _, name := range kills {
								if err := c.Kill(name); err != nil {
									errCh <- err
								}
							}
						})
					}
					attempts.Add(1)
					fut, err := c.Submit(ctx, core.PipelineRequest{
						Model:    mods[(i+k)%len(mods)],
						Policy:   core.BestThroughput,
						Batch:    1 << (k % 4),
						Deadline: 500 * time.Millisecond, // generous, feasible
					})
					switch {
					case errors.Is(err, core.ErrAdmissionFull), errors.Is(err, core.ErrDeadlineInfeasible),
						errors.Is(err, ErrNoReadyNodes), errors.Is(err, core.ErrNodeDraining),
						errors.Is(err, core.ErrNodeDown):
						failed.Add(1)
						continue
					case err != nil:
						errCh <- err
						return
					}
					comp, err := fut.Wait(ctx)
					switch {
					case err != nil:
						errCh <- err
						return
					case comp.Err != nil:
						failed.Add(1)
					default:
						ok.Add(1)
					}
				}
			}(i)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("soak client failed: %v", err)
		}
		return float64(ok.Load()) / float64(attempts.Load()), c.Stats()
	}

	baseAtt, baseStats := run(nil)
	faultAtt, faultStats := run([]string{"node7", "node23"})
	t.Logf("baseline attainment %.4f (fleet %+v ready=%d)", baseAtt, baseStats.SLOAttainment, baseStats.Ready)
	t.Logf("two-kill attainment %.4f (fleet %+v ready=%d evictions=%d)",
		faultAtt, faultStats.SLOAttainment, faultStats.Ready, faultStats.Evictions)
	if faultStats.Ready != 62 {
		t.Fatalf("ready = %d after two kills, want 62", faultStats.Ready)
	}
	if faultAtt < baseAtt-0.05 {
		t.Fatalf("two-kill attainment %.4f fell more than 5%% below baseline %.4f", faultAtt, baseAtt)
	}
	// Accounting holds fleet-wide through the kills.
	if faultStats.Completed != faultStats.Submitted {
		t.Fatalf("fleet dropped futures through the kills: %+v", faultStats)
	}
}
