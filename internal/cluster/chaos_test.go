package cluster

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func chaosNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "node" + string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return names
}

// TestChaosPlansDeterministic is the replay property every soak rests
// on: the same (seed, fleet, config) produces byte-identical plans, and
// a different seed picks a different incident.
func TestChaosPlansDeterministic(t *testing.T) {
	names := chaosNames(16)
	cfg := ChaosConfig{Seed: 7, Crash: 2, Slow: 2}
	a, err := GenerateChaosPlans(names, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChaosPlans(names, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	c, err := GenerateChaosPlans(names, ChaosConfig{Seed: 8, Crash: 2, Slow: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("seeds 7 and 8 scripted the identical incident")
	}
}

// TestChaosPlansShape checks the structural invariants: the requested
// node counts, distinct targets, and per-flap crash windows that are
// sorted, non-overlapping, and inside the horizon.
func TestChaosPlansShape(t *testing.T) {
	names := chaosNames(16)
	cfg := ChaosConfig{Seed: 42, Crash: 3, Slow: 2, Horizon: 8 * time.Second, Flaps: 4}
	plans, err := GenerateChaosPlans(names, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 5 {
		t.Fatalf("want 5 plans, got %d", len(plans))
	}
	seen := map[string]bool{}
	var crashed, slowed int
	for _, p := range plans {
		if seen[p.Node] {
			t.Fatalf("node %s picked twice", p.Node)
		}
		seen[p.Node] = true
		if !strings.HasPrefix(p.Node, "node") {
			t.Fatalf("plan names unknown node %q", p.Node)
		}
		switch {
		case len(p.Crashes) > 0:
			crashed++
			if p.SlowFactor != 0 {
				t.Fatalf("node %s is both crashed and slowed", p.Node)
			}
			if len(p.Crashes) != cfg.Flaps {
				t.Fatalf("node %s: %d flaps, want %d", p.Node, len(p.Crashes), cfg.Flaps)
			}
			for i, w := range p.Crashes {
				if w.Start < 0 || w.End <= w.Start || w.End > cfg.Horizon {
					t.Fatalf("node %s window %d out of bounds: %+v", p.Node, i, w)
				}
				if i > 0 && w.Start < p.Crashes[i-1].End {
					t.Fatalf("node %s windows overlap: %+v then %+v", p.Node, p.Crashes[i-1], w)
				}
			}
		case p.SlowFactor > 1:
			slowed++
		default:
			t.Fatalf("plan for %s scripts nothing: %+v", p.Node, p)
		}
	}
	if crashed != cfg.Crash || slowed != cfg.Slow {
		t.Fatalf("got %d crashed, %d slowed; want %d, %d", crashed, slowed, cfg.Crash, cfg.Slow)
	}
}

func TestChaosPlansRejectOversizedFaults(t *testing.T) {
	names := chaosNames(4)
	if _, err := GenerateChaosPlans(names, ChaosConfig{Crash: 3, Slow: 2}); err == nil {
		t.Fatal("3 crash + 2 slow on a 4-node fleet accepted")
	}
	if _, err := GenerateChaosPlans(names, ChaosConfig{Crash: -1}); err == nil {
		t.Fatal("negative crash count accepted")
	}
}

func TestChaosInjectorWindows(t *testing.T) {
	ci := NewChaosInjector([]ChaosPlan{
		{Node: "a", Crashes: []ChaosWindow{{Start: time.Second, End: 2 * time.Second}, {Start: 4 * time.Second, End: 5 * time.Second}}},
		{Node: "b", Crashes: []ChaosWindow{{Start: 1500 * time.Millisecond, End: 3 * time.Second}}},
		{Node: "s", SlowFactor: 4},
	})
	cases := []struct {
		node string
		now  time.Duration
		down bool
		left time.Duration
	}{
		{"a", 0, false, 0},
		{"a", time.Second, true, time.Second}, // [Start, End) includes Start
		{"a", 1900 * time.Millisecond, true, 100 * time.Millisecond},
		{"a", 2 * time.Second, false, 0}, // ... and excludes End
		{"a", 4500 * time.Millisecond, true, 500 * time.Millisecond},
		{"b", 2 * time.Second, true, time.Second},
		{"s", time.Second, false, 0}, // slow plans never fail-stop
		{"unknown", time.Second, false, 0},
	}
	for _, tc := range cases {
		down, left := ci.DownAt(tc.node, tc.now)
		if down != tc.down || left != tc.left {
			t.Fatalf("DownAt(%s, %v) = (%v, %v), want (%v, %v)", tc.node, tc.now, down, left, tc.down, tc.left)
		}
	}
	// NextRecovery: at 1.6s both a (ends 2s, 400ms left) and b (ends 3s,
	// 1.4s left) are down — the soonest recovery wins.
	if d := ci.NextRecovery(1600 * time.Millisecond); d != 400*time.Millisecond {
		t.Fatalf("NextRecovery = %v, want 400ms", d)
	}
	if d := ci.NextRecovery(10 * time.Second); d != 0 {
		t.Fatalf("NextRecovery with nothing down = %v, want 0", d)
	}
	// Plans() is sorted by node name for stable operator output.
	plans := ci.Plans()
	for i := 1; i < len(plans); i++ {
		if plans[i-1].Node >= plans[i].Node {
			t.Fatalf("Plans() unsorted: %s before %s", plans[i-1].Node, plans[i].Node)
		}
	}
	if _, ok := ci.Plan("a"); !ok {
		t.Fatal("Plan(a) missing")
	}
	if _, ok := ci.Plan("unknown"); ok {
		t.Fatal("Plan(unknown) found")
	}
}
