package cluster

import (
	"testing"
	"time"
)

// stragglerCluster builds a fake fleet with straggler detection on,
// every node measured (routed ≥ MinRouted) at the given latency EWMAs.
func stragglerCluster(t *testing.T, lats []time.Duration) (*Cluster, []*fakeNode) {
	t.Helper()
	fakes := make([]*fakeNode, len(lats))
	nodes := make([]Node, len(lats))
	for i := range lats {
		fakes[i] = newFakeNode("node"+string(rune('0'+i)), int64(i))
		fakes[i].setAvgLatency(lats[i])
		nodes[i] = fakes[i]
	}
	pol, err := PolicyByName("least-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(nodes, Config{Policy: pol, Straggler: StragglerConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range c.members {
		m.routed.Store(c.cfg.Straggler.MinRouted)
	}
	return c, fakes
}

// TestDetectStragglersSuspectsOutlier: a node whose latency EWMA is both
// the p99 and a multiple of the fleet median goes on probation; the rest
// of the fleet does not.
func TestDetectStragglersSuspectsOutlier(t *testing.T) {
	lats := []time.Duration{10, 11, 9, 10, 12, 100} // ms-scale shape, units irrelevant
	for i := range lats {
		lats[i] *= time.Millisecond
	}
	c, _ := stragglerCluster(t, lats)
	c.Sweep()
	if got := c.Suspects(); len(got) != 1 || got[0] != "node5" {
		t.Fatalf("Suspects = %v, want [node5]", got)
	}
	if n := c.suspicions.Load(); n != 1 {
		t.Fatalf("suspicions = %d, want 1", n)
	}
	ms, _ := c.eligible()
	for _, m := range ms {
		if m.node.Name() == "node5" {
			t.Fatal("suspect node5 still in the routing set")
		}
	}
	// A second sweep must not re-suspect it (it is already suspect) nor
	// suspect anyone else (the rest of the fleet is uniform).
	c.Sweep()
	if n := c.suspicions.Load(); n != 1 {
		t.Fatalf("second sweep re-suspected: suspicions = %d", n)
	}
	st := c.Stats()
	if st.Suspects != 1 || st.Ready != 5 {
		t.Fatalf("Stats: Suspects=%d Ready=%d, want 1 and 5", st.Suspects, st.Ready)
	}
}

// TestDetectStragglersGuards: unmeasured (young) nodes and tiny fleets
// are never judged.
func TestDetectStragglersGuards(t *testing.T) {
	lats := []time.Duration{10 * time.Millisecond, 11 * time.Millisecond, 9 * time.Millisecond, 500 * time.Millisecond}
	c, _ := stragglerCluster(t, lats)
	c.members[3].routed.Store(c.cfg.Straggler.MinRouted - 1) // outlier, but young
	c.Sweep()
	if got := c.Suspects(); len(got) != 0 {
		t.Fatalf("young outlier suspected: %v", got)
	}

	small, _ := stragglerCluster(t, []time.Duration{10 * time.Millisecond, 500 * time.Millisecond})
	small.Sweep()
	if got := small.Suspects(); len(got) != 0 {
		t.Fatalf("2-node fleet has no distribution to be an outlier of, got %v", got)
	}
}

// TestProbationStateMachine is the table-driven Suspect → Healthy /
// Suspect → Evicted satellite: each case scripts a probe outcome
// sequence against a fresh suspect and asserts where the member lands.
func TestProbationStateMachine(t *testing.T) {
	const bar = 30 * time.Millisecond
	type probe struct {
		ok  bool
		lat time.Duration
	}
	cases := []struct {
		name        string
		probes      []probe
		wantSuspect bool
		wantEvicted bool
		wantClears  int64
		wantFalse   int64
	}{
		{
			name:       "clean probes clear (false suspect)",
			probes:     []probe{{true, 10 * time.Millisecond}, {true, 10 * time.Millisecond}},
			wantClears: 1,
			wantFalse:  1,
		},
		{
			name:       "recovery after one bad probe clears, not a false suspect",
			probes:     []probe{{false, 0}, {true, 10 * time.Millisecond}, {true, 10 * time.Millisecond}},
			wantClears: 1,
			wantFalse:  0,
		},
		{
			name:        "completed-but-slow probes do not clear",
			probes:      []probe{{true, bar + time.Millisecond}, {true, bar + time.Millisecond}},
			wantSuspect: true,
		},
		{
			name:        "bad probes reset the ok streak",
			probes:      []probe{{true, time.Millisecond}, {false, 0}, {true, time.Millisecond}},
			wantSuspect: true,
		},
		{
			name:        "EvictAfterBad failures evict for good",
			probes:      []probe{{false, 0}, {false, 0}, {false, 0}},
			wantEvicted: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := stragglerCluster(t, []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond})
			m := c.members[2]
			c.suspectMember(m, bar)
			for _, p := range tc.probes {
				c.recordProbe(m, p.ok, p.lat)
			}
			if got := m.suspect.Load(); got != tc.wantSuspect {
				t.Fatalf("suspect = %v, want %v", got, tc.wantSuspect)
			}
			if got := m.evicted.Load(); got != tc.wantEvicted {
				t.Fatalf("evicted = %v, want %v", got, tc.wantEvicted)
			}
			if got := c.probations.Load(); got != tc.wantClears {
				t.Fatalf("probations = %d, want %d", got, tc.wantClears)
			}
			if got := c.falseSuspects.Load(); got != tc.wantFalse {
				t.Fatalf("falseSuspects = %d, want %d", got, tc.wantFalse)
			}
			if tc.wantEvicted && !m.probEvicted.Load() {
				t.Fatal("probation eviction did not pin the member")
			}
		})
	}
}

// TestProbationEvictionPinsAgainstSweep: a probation-evicted straggler
// still reports lifecycle-Ready health, so without the pin the next
// sweep would readmit it and the fleet would readmit-loop. Only an
// operator Readmit may bring it back.
func TestProbationEvictionPinsAgainstSweep(t *testing.T) {
	c, _ := stragglerCluster(t, []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond})
	m := c.members[1]
	c.suspectMember(m, 30*time.Millisecond)
	for i := 0; i < c.cfg.Straggler.EvictAfterBad; i++ {
		c.recordProbe(m, false, 0)
	}
	if !m.evicted.Load() || !m.probEvicted.Load() {
		t.Fatalf("bad probes did not evict+pin: evicted=%v pinned=%v", m.evicted.Load(), m.probEvicted.Load())
	}
	for i := 0; i < 5; i++ {
		c.Sweep()
	}
	if !m.evicted.Load() {
		t.Fatal("sweep readmitted a probation-evicted node (readmit-loop)")
	}
	if n := c.readmissions.Load(); n != 0 {
		t.Fatalf("readmissions = %d, want 0", n)
	}
	if err := c.Readmit("node1"); err != nil {
		t.Fatal(err)
	}
	if m.evicted.Load() || m.probEvicted.Load() {
		t.Fatal("operator Readmit did not clear the pin")
	}
	ms, _ := c.eligible()
	if len(ms) != 3 {
		t.Fatalf("eligible after Readmit = %d nodes, want 3", len(ms))
	}
}

// TestFlappingNodeDoublesProbation: each relapse doubles the
// consecutive-ok bar (capped), so a flapping node pays progressively
// longer probation instead of bouncing through the routing set.
func TestFlappingNodeDoublesProbation(t *testing.T) {
	c, _ := stragglerCluster(t, []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond})
	m := c.members[0]
	base := c.cfg.Straggler.ProbeOK
	wantNeed := []int{base, base * 2, base * 4}
	for epoch, want := range wantNeed {
		c.suspectMember(m, 30*time.Millisecond)
		m.probMu.Lock()
		need := m.prob.needOK
		m.probMu.Unlock()
		if need != want {
			t.Fatalf("epoch %d: needOK = %d, want %d", epoch+1, need, want)
		}
		// want-1 ok probes must NOT clear; the want-th does.
		for i := 0; i < want-1; i++ {
			c.recordProbe(m, true, time.Millisecond)
			if !m.suspect.Load() {
				t.Fatalf("epoch %d cleared after %d/%d probes", epoch+1, i+1, want)
			}
		}
		c.recordProbe(m, true, time.Millisecond)
		if m.suspect.Load() {
			t.Fatalf("epoch %d did not clear after %d ok probes", epoch+1, want)
		}
	}
	// The doubling caps at 64 even after many relapses.
	for i := 0; i < 10; i++ {
		c.suspectMember(m, 30*time.Millisecond)
		for m.suspect.Load() {
			c.recordProbe(m, true, time.Millisecond)
		}
	}
	c.suspectMember(m, 30*time.Millisecond)
	m.probMu.Lock()
	need := m.prob.needOK
	m.probMu.Unlock()
	if need != 64 {
		t.Fatalf("needOK after many relapses = %d, want the 64 cap", need)
	}
}

// TestProbeOneSuspectRoundTrip drives the probe path end to end over a
// serving fake: the suspect gets a single-sample probe off the
// submission stream and its outcome advances probation.
func TestProbeOneSuspectRoundTrip(t *testing.T) {
	c, fakes := stragglerCluster(t, []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond})
	fakes[2].setServe(0, time.Millisecond, nil)
	m := c.members[2]
	c.suspectMember(m, 30*time.Millisecond)
	need := c.cfg.Straggler.ProbeOK
	for i := 0; i < need; i++ {
		c.probeOneSuspect("simple")
		deadline := time.Now().Add(5 * time.Second)
		for c.probes.Load() != int64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("probe %d never recorded", i+1)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	if m.suspect.Load() {
		t.Fatal("serving suspect did not clear after ok probes")
	}
	if c.falseSuspects.Load() != 1 {
		t.Fatalf("falseSuspects = %d, want 1", c.falseSuspects.Load())
	}
	// Probes ride the node itself, not the routing set.
	if got := fakes[2].acceptCount(); got != need {
		t.Fatalf("suspect served %d probes, want %d", got, need)
	}
	c.Close()
}
