package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"bomw/internal/core"
)

// TestBrownoutLadder walks the level ladder directly against scripted
// EWMA values: levels climb at their entry thresholds, fall only after
// the hysteresis gap, and level 3 owns the batch-window scale.
func TestBrownoutLadder(t *testing.T) {
	c, fakes := serveCluster(t, 2, Config{Brownout: BrownoutConfig{Enabled: true}})
	defer c.Close()
	b := c.cfg.Brownout // defaults: L1 .70, L2 .85, L3 .95, hysteresis .05

	steps := []struct {
		ewma      float64
		wantLevel int
		wantScale float64 // expected fake window scale after the step (0 = untouched yet)
	}{
		{0.50, 0, 0},
		{0.72, 1, 0},             // crosses L1
		{0.68, 1, 0},             // above L1-hyst: holds (no flap)
		{0.64, 0, 0},             // below L1-hyst: falls
		{0.96, 3, b.WindowScale}, // walks 0→3 in one call, widens windows
		{0.92, 3, b.WindowScale}, // above L3-hyst: holds
		{0.89, 2, 1},             // leaves level 3: windows restored
		{0.10, 0, 1},             // walks 2→0
	}
	for i, s := range steps {
		c.brownoutSteer(s.ewma)
		if got := c.BrownoutLevel(); got != s.wantLevel {
			t.Fatalf("step %d (ewma %.2f): level = %d, want %d", i, s.ewma, got, s.wantLevel)
		}
		if got := fakes[0].windowScale(); got != s.wantScale {
			t.Fatalf("step %d (ewma %.2f): window scale = %v, want %v", i, s.ewma, got, s.wantScale)
		}
	}
	if n := c.broTransitions.Load(); n == 0 {
		t.Fatal("no transitions counted")
	}
	snap := c.Brownout()
	if !snap.Enabled || snap.Level != 0 || snap.WindowScale != 1 {
		t.Fatalf("snapshot after recovery: %+v", snap)
	}
}

// TestBrownoutShedsSLOlessOnly: a saturated fleet (level ≥ 2) rejects
// SLO-less traffic with the typed sentinel while deadline traffic keeps
// being served.
func TestBrownoutShedsSLOlessOnly(t *testing.T) {
	c, fakes := serveCluster(t, 2, Config{Brownout: BrownoutConfig{Enabled: true}})
	defer c.Close()
	// Static loads 19/20ths of capacity: the first Submit's occupancy
	// sample lands at 0.95 and steers straight to level 3.
	fakes[0].load, fakes[0].capacity = 9, 10
	fakes[1].load, fakes[1].capacity = 10, 10

	_, err := c.Submit(context.Background(), core.PipelineRequest{Model: "simple", Batch: 1})
	if !errors.Is(err, ErrBrownoutShed) {
		t.Fatalf("SLO-less submit under saturation = %v, want ErrBrownoutShed", err)
	}
	if lvl := c.BrownoutLevel(); lvl < 2 {
		t.Fatalf("level = %d after 0.95 occupancy, want >= 2", lvl)
	}
	if _, err := c.Submit(context.Background(), core.PipelineRequest{
		Model: "simple", Batch: 1, Deadline: 50 * time.Millisecond,
	}); err != nil {
		t.Fatalf("deadline submit shed during brownout: %v", err)
	}
	st := c.Stats()
	if st.BrownoutSheds != 1 {
		t.Fatalf("BrownoutSheds = %d, want 1", st.BrownoutSheds)
	}
	if snap := c.Brownout(); snap.Sheds != 1 || snap.OccupancyEWMA < 0.9 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestBrownoutSuppressesHedges: level ≥ 1 sheds hedges first — the
// deadline request itself is served, but no backup launches.
func TestBrownoutSuppressesHedges(t *testing.T) {
	c, fakes := serveCluster(t, 2, Config{NodeHedge: true, Brownout: BrownoutConfig{Enabled: true}})
	defer c.Close()
	fakes[0].load, fakes[0].capacity = 8, 10
	fakes[1].load, fakes[1].capacity = 8, 10
	fakes[0].predict = 40 * time.Millisecond // would trigger a predictive hedge at L0

	fut, err := c.Submit(context.Background(), core.PipelineRequest{
		Model: "simple", Batch: 1, Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp, err := fut.Wait(context.Background()); err != nil || comp.Err != nil {
		t.Fatalf("request failed: %v / %v", err, comp.Err)
	}
	st := c.Stats()
	if st.BrownoutLevel < 1 {
		t.Fatalf("level = %d after 0.80 occupancy, want >= 1", st.BrownoutLevel)
	}
	if st.NodeHedges != 0 {
		t.Fatalf("NodeHedges = %d under brownout, want 0", st.NodeHedges)
	}
	if st.HedgesSuppressed != 1 {
		t.Fatalf("HedgesSuppressed = %d, want 1", st.HedgesSuppressed)
	}
}

// TestBrownoutOffByDefault: the controller never moves when disabled,
// whatever the occupancy looks like.
func TestBrownoutOffByDefault(t *testing.T) {
	c, fakes := serveCluster(t, 2, Config{})
	defer c.Close()
	fakes[0].load, fakes[0].capacity = 10, 10
	fakes[1].load, fakes[1].capacity = 10, 10
	if _, err := c.Submit(context.Background(), core.PipelineRequest{Model: "simple", Batch: 1}); err != nil {
		t.Fatal(err)
	}
	if lvl := c.BrownoutLevel(); lvl != 0 {
		t.Fatalf("disabled controller at level %d", lvl)
	}
}
