package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"bomw/internal/core"
)

// serveCluster builds a fleet of serving fakes (instant completions by
// default) under the least-loaded policy, loads ordered by index so the
// routing order is deterministic: node0 first, node1 second, ...
func serveCluster(t *testing.T, n int, cfg Config) (*Cluster, []*fakeNode) {
	t.Helper()
	fakes := make([]*fakeNode, n)
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		fakes[i] = newFakeNode("node"+string(rune('0'+i)), int64(i))
		fakes[i].setServe(0, time.Millisecond, nil)
		nodes[i] = fakes[i]
	}
	if cfg.Policy == nil {
		pol, err := PolicyByName("least-loaded", 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Policy = pol
	}
	c, err := New(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, fakes
}

// TestMassEvictionReturnsErrNoHealthyNodes is the satellite regression:
// with every node out of the routing set, Submit fails with the typed
// sentinel (under both its new and pre-PR-9 names) and the server-facing
// retry hint is a sane positive floor.
func TestMassEvictionReturnsErrNoHealthyNodes(t *testing.T) {
	c, _ := serveCluster(t, 3, Config{})
	defer c.Close()
	for _, name := range c.NodeNames() {
		if err := c.Evict(name); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Submit(context.Background(), core.PipelineRequest{Model: "simple", Batch: 1})
	if !errors.Is(err, ErrNoHealthyNodes) {
		t.Fatalf("Submit = %v, want ErrNoHealthyNodes", err)
	}
	if !errors.Is(err, ErrNoReadyNodes) {
		t.Fatalf("pre-PR-9 alias broken: %v is not ErrNoReadyNodes", err)
	}
	if hint := c.ReadmissionHint(); hint <= 0 {
		t.Fatalf("ReadmissionHint = %v, want > 0", hint)
	}
}

// TestChaosWindowBlocksRoutingAndHintsRecovery: a fleet whose only node
// is inside a scripted crash window refuses with ErrNoHealthyNodes and
// derives the retry hint from the window's remaining span.
func TestChaosWindowBlocksRoutingAndHintsRecovery(t *testing.T) {
	ci := NewChaosInjector([]ChaosPlan{
		{Node: "node0", Crashes: []ChaosWindow{{Start: 0, End: 2 * time.Second}}},
	})
	c, _ := serveCluster(t, 1, Config{
		Chaos: ci,
		Clock: func() time.Duration { return 500 * time.Millisecond },
	})
	defer c.Close()
	_, err := c.Submit(context.Background(), core.PipelineRequest{Model: "simple", Batch: 1})
	if !errors.Is(err, ErrNoHealthyNodes) {
		t.Fatalf("Submit inside crash window = %v, want ErrNoHealthyNodes", err)
	}
	if hint := c.ReadmissionHint(); hint != 1500*time.Millisecond {
		t.Fatalf("ReadmissionHint = %v, want 1.5s (window remainder)", hint)
	}
	c.Sweep()
	st := c.Stats()
	if st.ChaosTrips != 1 || !st.PerNode[0].ChaosDown {
		t.Fatalf("sweep did not mark the chaos window: %+v", st.PerNode[0])
	}
}

// TestClusterHedgePredictive: the primary's own completion estimate eats
// more than half the slack, so the hedge launches immediately and its
// result wins while the stuck primary is cancelled as a benign loser.
func TestClusterHedgePredictive(t *testing.T) {
	c, fakes := serveCluster(t, 2, Config{NodeHedge: true})
	fakes[0].predict = 40 * time.Millisecond            // > deadline/2: predictive trigger
	fakes[0].setServe(time.Hour, time.Millisecond, nil) // and genuinely stuck
	fakes[1].predict = time.Millisecond
	fut, err := c.Submit(context.Background(), core.PipelineRequest{
		Model: "simple", Batch: 1, Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := fut.Wait(context.Background())
	if err != nil || comp.Err != nil {
		t.Fatalf("hedged request failed: %v / %v", err, comp.Err)
	}
	c.Close() // settles the loser's relay before reading counters
	st := c.Stats()
	if st.NodeHedges != 1 || st.NodeHedgesWon != 1 {
		t.Fatalf("NodeHedges=%d Won=%d, want 1 and 1", st.NodeHedges, st.NodeHedgesWon)
	}
	if st.BenignCancels != 1 {
		t.Fatalf("BenignCancels = %d, want 1 (the cancelled primary)", st.BenignCancels)
	}
	if got := fakes[1].acceptCount(); got != 1 {
		t.Fatalf("hedge target accepted %d, want 1", got)
	}
}

// TestClusterHedgeReactive: the primary predicts comfortably but stalls
// on the wall clock, so the half-slack timer fires the backup.
func TestClusterHedgeReactive(t *testing.T) {
	c, fakes := serveCluster(t, 2, Config{NodeHedge: true})
	fakes[0].predict = time.Millisecond                      // prediction sees no danger
	fakes[0].setServe(10*time.Second, time.Millisecond, nil) // reality disagrees
	fakes[1].predict = time.Millisecond
	fut, err := c.Submit(context.Background(), core.PipelineRequest{
		Model: "simple", Batch: 1, Deadline: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	comp, err := fut.Wait(ctx)
	if err != nil || comp.Err != nil {
		t.Fatalf("reactively hedged request failed: %v / %v", err, comp.Err)
	}
	c.Close()
	st := c.Stats()
	if st.NodeHedges != 1 || st.NodeHedgesWon != 1 {
		t.Fatalf("NodeHedges=%d Won=%d, want 1 and 1", st.NodeHedges, st.NodeHedgesWon)
	}
}

// TestClusterHedgeNoTarget: a single-node fleet has nothing to hedge
// onto — the trigger fires, finds no untried node, and the request still
// completes on the primary with no counters moved.
func TestClusterHedgeNoTarget(t *testing.T) {
	c, fakes := serveCluster(t, 1, Config{NodeHedge: true})
	fakes[0].predict = 40 * time.Millisecond
	fut, err := c.Submit(context.Background(), core.PipelineRequest{
		Model: "simple", Batch: 1, Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp, err := fut.Wait(context.Background()); err != nil || comp.Err != nil {
		t.Fatalf("request failed: %v / %v", err, comp.Err)
	}
	c.Close()
	if st := c.Stats(); st.NodeHedges != 0 {
		t.Fatalf("NodeHedges = %d on a 1-node fleet", st.NodeHedges)
	}
}

// TestHedgeOutlivesFailedPrimary: the primary fails while the hedge is
// still racing — the error is held back and the hedge's success resolves
// the caller's future (first *successful* result wins).
func TestHedgeOutlivesFailedPrimary(t *testing.T) {
	c, fakes := serveCluster(t, 2, Config{NodeHedge: true})
	fakes[0].predict = 40 * time.Millisecond // predictive trigger
	fakes[0].setServe(0, time.Millisecond, core.ErrDeadlineExceeded)
	fakes[1].setServe(20*time.Millisecond, time.Millisecond, nil)
	fut, err := c.Submit(context.Background(), core.PipelineRequest{
		Model: "simple", Batch: 1, Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := fut.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if comp.Err != nil {
		t.Fatalf("failed primary stole the future from a winning hedge: %v", comp.Err)
	}
	c.Close()
	if st := c.Stats(); st.NodeHedgesWon != 1 {
		t.Fatalf("NodeHedgesWon = %d, want 1", st.NodeHedgesWon)
	}
}

// TestAllAttemptsFailSurfacesError: when every attempt fails, the last
// relay out must still resolve the caller's future with the error.
func TestAllAttemptsFailSurfacesError(t *testing.T) {
	c, fakes := serveCluster(t, 2, Config{NodeHedge: true})
	fakes[0].predict = 40 * time.Millisecond
	fakes[0].setServe(0, time.Millisecond, core.ErrDeadlineExceeded)
	fakes[1].setServe(5*time.Millisecond, time.Millisecond, core.ErrDeadlineExceeded)
	fut, err := c.Submit(context.Background(), core.PipelineRequest{
		Model: "simple", Batch: 1, Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	comp, err := fut.Wait(ctx)
	if err != nil {
		t.Fatalf("future never resolved: %v", err)
	}
	if !errors.Is(comp.Err, core.ErrDeadlineExceeded) {
		t.Fatalf("comp.Err = %v, want ErrDeadlineExceeded", comp.Err)
	}
	c.Close()
	if st := c.Stats(); st.NodeHedgesWon != 0 {
		t.Fatalf("NodeHedgesWon = %d for a failed hedge, want 0", st.NodeHedgesWon)
	}
}

// TestStragglerMigration: a deadline request queued behind a node that
// goes suspect is cancelled node-side, observed by its relay, and
// resubmitted on a healthy node — the caller's future resolves with the
// migrated completion and the loss is accounted benign.
func TestStragglerMigration(t *testing.T) {
	c, fakes := serveCluster(t, 2, Config{Straggler: StragglerConfig{Enabled: true}})
	fakes[0].setServe(time.Hour, time.Millisecond, nil) // queued forever until cancelled
	fut, err := c.Submit(context.Background(), core.PipelineRequest{
		Model: "simple", Batch: 1, Deadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.suspectMember(c.members[0], 30*time.Millisecond) // migrates pending work away
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	comp, err := fut.Wait(ctx)
	if err != nil || comp.Err != nil {
		t.Fatalf("migrated request failed: %v / %v", err, comp.Err)
	}
	c.Close()
	st := c.Stats()
	if st.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", st.Migrations)
	}
	if st.BenignCancels != 1 {
		t.Fatalf("BenignCancels = %d, want 1", st.BenignCancels)
	}
	if got := fakes[1].acceptCount(); got != 1 {
		t.Fatalf("migration target accepted %d, want 1", got)
	}
}

// TestMigrationNoTargetStillResolves: migration with nowhere to go must
// not strand the caller — the last relay out resolves the detached
// future with the cancellation it saw.
func TestMigrationNoTargetStillResolves(t *testing.T) {
	c, fakes := serveCluster(t, 1, Config{Straggler: StragglerConfig{Enabled: true}})
	fakes[0].setServe(time.Hour, time.Millisecond, nil)
	fut, err := c.Submit(context.Background(), core.PipelineRequest{
		Model: "simple", Batch: 1, Deadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.suspectMember(c.members[0], 30*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	comp, err := fut.Wait(ctx)
	if err != nil {
		t.Fatalf("future never resolved: %v", err)
	}
	if comp.Err == nil {
		t.Fatal("a migration with no target cannot have completed")
	}
	c.Close()
	if st := c.Stats(); st.Migrations != 0 {
		t.Fatalf("Migrations = %d, want 0 (no target)", st.Migrations)
	}
}

// TestClusterKillRacesDrain is the satellite -race regression at the
// fleet tier: Kill and Drain land on the same node concurrently under
// live traffic, serialise through the member's lifecycle mutex, and the
// fleet keeps every future it handed out.
func TestClusterKillRacesDrain(t *testing.T) {
	pol, _ := PolicyByName("least-loaded", 1)
	c := realCluster(t, 3, Config{Policy: pol, SweepEvery: 25}, core.PipelineConfig{
		Window: 200 * time.Microsecond, MaxBatch: 16,
	})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	var accepted, resolved int64
	var mu sync.Mutex
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				fut, err := c.Submit(ctx, core.PipelineRequest{Model: "simple", Policy: core.BestThroughput, Batch: 4})
				if err != nil {
					continue // refusals are fine mid-kill
				}
				mu.Lock()
				accepted++
				mu.Unlock()
				if _, err := fut.Wait(ctx); err == nil {
					mu.Lock()
					resolved++
					mu.Unlock()
				}
			}
		}()
	}
	var lifecycle sync.WaitGroup
	lifecycle.Add(2)
	go func() { defer lifecycle.Done(); _ = c.Drain("node1") }()
	go func() { defer lifecycle.Done(); _ = c.Kill("node1") }()
	done := make(chan struct{})
	go func() { lifecycle.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("Kill racing Drain deadlocked")
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if accepted != resolved {
		t.Fatalf("accepted %d futures, resolved %d", accepted, resolved)
	}
	st := c.Stats()
	if st.Completed != st.Submitted {
		t.Fatalf("fleet lost futures across the race: %+v", st)
	}
}
