package cluster

import (
	"fmt"
	"sort"
	"time"
)

// Node-level chaos: deterministic, seeded fault plans on the fleet's
// shared virtual clock — internal/opencl.FaultInjector lifted one level
// up. A plan scripts two node-scale failure modes:
//
//   - Crash windows: intervals during which the node is treated as
//     fail-stopped at the routing tier — eligible() skips it, the sweep
//     migrates its pending deadline work, and when the window closes the
//     node is routable again without operator action. Repeated short
//     windows are exactly the "flapping restart" pattern.
//   - Slow-node factor: a latency multiplier the chaos *applier* (cmd/
//     bomwsrv, the chaos soak) arms on the node's devices via
//     opencl.FaultInjector (SpikeRate 1, SpikeFactor = the factor), so a
//     "slow node" is genuinely slow end to end and the straggler
//     detector has something real to find.
//
// Plans are a pure function of (seed, node names, config): the same
// seed replays the same incident, the property every soak and every
// postmortem drill in this repo rests on.

// ChaosWindow is one [Start, End) fault interval on the virtual clock.
type ChaosWindow struct {
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// ChaosPlan scripts one node's faults for a run.
type ChaosPlan struct {
	// Node is the fleet-unique node name the plan applies to.
	Node string `json:"node"`
	// Crashes are the node's routing-level fail-stop windows, sorted and
	// non-overlapping. Empty for slow-only plans.
	Crashes []ChaosWindow `json:"crashes,omitempty"`
	// SlowFactor > 1 marks the node as a scripted straggler: the applier
	// multiplies its device latencies by this factor for the whole run.
	SlowFactor float64 `json:"slow_factor,omitempty"`
}

// ChaosConfig parameterises seeded plan generation.
type ChaosConfig struct {
	// Seed drives node selection and window placement. Same seed, same
	// node list, same config → identical plans.
	Seed int64
	// Crash is how many nodes receive crash windows. Defaults to 0.
	Crash int
	// Slow is how many (distinct) nodes become scripted stragglers.
	// Defaults to 0.
	Slow int
	// Horizon is the virtual-time span windows are placed in. Defaults
	// to 10s.
	Horizon time.Duration
	// CrashLen is each crash window's length. Defaults to Horizon/8.
	CrashLen time.Duration
	// Flaps is how many crash windows each crashed node gets (the
	// flapping-restart count). Defaults to 2.
	Flaps int
	// SlowFactor is the straggler latency multiplier. Defaults to 4.
	SlowFactor float64
}

func (c *ChaosConfig) fillDefaults() {
	if c.Horizon <= 0 {
		c.Horizon = 10 * time.Second
	}
	if c.CrashLen <= 0 {
		c.CrashLen = c.Horizon / 8
	}
	if c.Flaps <= 0 {
		c.Flaps = 2
	}
	if c.SlowFactor <= 1 {
		c.SlowFactor = 4
	}
}

// splitmix64 is the plan generator's deterministic mixing function —
// the same stateless PRNG idiom the routing policies hash with, so plan
// generation needs no rand.Source state to replay.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// GenerateChaosPlans builds the seeded fleet plan: Crash nodes with
// Flaps crash windows each, then Slow distinct nodes with the slow
// factor. Node selection is a seeded shuffle, window placement divides
// the horizon into per-flap slots with seeded jitter — every choice
// derives from cfg.Seed alone. Returns an error when the fleet is too
// small for the requested fault count.
func GenerateChaosPlans(names []string, cfg ChaosConfig) ([]ChaosPlan, error) {
	cfg.fillDefaults()
	if cfg.Crash < 0 || cfg.Slow < 0 {
		return nil, fmt.Errorf("cluster: negative chaos node counts (%d crash, %d slow)", cfg.Crash, cfg.Slow)
	}
	if cfg.Crash+cfg.Slow > len(names) {
		return nil, fmt.Errorf("cluster: chaos plan wants %d faulty nodes but the fleet has %d",
			cfg.Crash+cfg.Slow, len(names))
	}
	// Seeded Fisher–Yates over a copy of the name list: the first Crash
	// entries crash, the next Slow entries slow down.
	picked := append([]string(nil), names...)
	state := uint64(cfg.Seed) ^ 0xc8a5c5d9ef2bb14d
	for i := len(picked) - 1; i > 0; i-- {
		state = splitmix64(state)
		j := int(state % uint64(i+1))
		picked[i], picked[j] = picked[j], picked[i]
	}
	var plans []ChaosPlan
	for i := 0; i < cfg.Crash; i++ {
		plan := ChaosPlan{Node: picked[i]}
		slot := cfg.Horizon / time.Duration(cfg.Flaps)
		length := cfg.CrashLen
		if length > slot/2 {
			length = slot / 2 // a flap must also recover within its slot
		}
		for f := 0; f < cfg.Flaps; f++ {
			state = splitmix64(state)
			jitter := time.Duration(state % uint64(slot-length))
			start := time.Duration(f)*slot + jitter
			plan.Crashes = append(plan.Crashes, ChaosWindow{Start: start, End: start + length})
		}
		sort.Slice(plan.Crashes, func(a, b int) bool { return plan.Crashes[a].Start < plan.Crashes[b].Start })
		plans = append(plans, plan)
	}
	for i := cfg.Crash; i < cfg.Crash+cfg.Slow; i++ {
		plans = append(plans, ChaosPlan{Node: picked[i], SlowFactor: cfg.SlowFactor})
	}
	return plans, nil
}

// ChaosInjector evaluates a fleet chaos plan against the shared virtual
// clock. It is pure state — plans are immutable after construction —
// so concurrent readers (eligible, sweep, stats) need no locking.
type ChaosInjector struct {
	plans map[string]ChaosPlan
}

// NewChaosInjector indexes the plans by node name.
func NewChaosInjector(plans []ChaosPlan) *ChaosInjector {
	ci := &ChaosInjector{plans: make(map[string]ChaosPlan, len(plans))}
	for _, p := range plans {
		ci.plans[p.Node] = p
	}
	return ci
}

// Plans returns the scripted plans, sorted by node name.
func (ci *ChaosInjector) Plans() []ChaosPlan {
	out := make([]ChaosPlan, 0, len(ci.plans))
	for _, p := range ci.plans {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

// Plan returns the named node's plan, if it has one.
func (ci *ChaosInjector) Plan(name string) (ChaosPlan, bool) {
	p, ok := ci.plans[name]
	return p, ok
}

// DownAt reports whether the named node is inside a crash window at
// virtual time now, and — when it is — the remaining time until the
// window closes (the readmission hint).
func (ci *ChaosInjector) DownAt(name string, now time.Duration) (bool, time.Duration) {
	p, ok := ci.plans[name]
	if !ok {
		return false, 0
	}
	for _, w := range p.Crashes {
		if now >= w.Start && now < w.End {
			return true, w.End - now
		}
	}
	return false, 0
}

// NextRecovery is the soonest crash-window end among nodes down at now;
// zero when nothing is down. Servers derive the Retry-After of
// fleet-wide 503s from it.
func (ci *ChaosInjector) NextRecovery(now time.Duration) time.Duration {
	var soonest time.Duration
	for name := range ci.plans {
		if down, left := ci.DownAt(name, now); down && (soonest == 0 || left < soonest) {
			soonest = left
		}
	}
	return soonest
}
