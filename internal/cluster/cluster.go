// Package cluster is the scale-out tier over internal/core: N serving
// nodes — each one scheduler + pipeline + device set, the paper's whole
// single-box system — behind a routing front-end with pluggable
// policies, per-node health aggregation and fleet-wide statistics. The
// single box of the paper becomes a replaceable unit: the router picks a
// node per request, fails over when a node sheds or dies, evicts nodes
// whose health collapses (composing PR 3's device-level quarantine into
// node-level eviction) and readmits them when they recover.
//
// All nodes share one virtual clock, so fleet-wide latency, energy and
// SLO accounting stay on a single time axis exactly as they do inside
// one node.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bomw/internal/core"
)

// Node is the narrow surface the cluster routes over — what
// internal/core's Node provides: admission, the deadline predictor, a
// cheap load signal, stats/health snapshots and lifecycle control.
type Node interface {
	Name() string
	Submit(ctx context.Context, req core.PipelineRequest) (*core.Future, error)
	FeasibleWithin(model string, batch int, deadline, now time.Duration) (bool, time.Duration, error)
	Load() int64
	QueueDelay() time.Duration
	// AvgLatency is the node's delivered-batch completion-latency EWMA —
	// the fleet straggler signal. Zero until the node has served.
	AvgLatency() time.Duration
	// Capacity is the node's occupancy budget (the denominator that
	// turns Load into the brownout controller's occupancy ratio).
	Capacity() int64
	Stats() core.NodeStats
	Health() core.NodeHealth
	Drain()
	Kill()
}

// Sentinel errors of the routing tier.
var (
	// ErrNoHealthyNodes is returned by Submit when the routing set is
	// empty — every node evicted, on probation or inside a chaos crash
	// window. The fleet-level load-shedding signal: HTTP servers
	// translate it to 503 with a Retry-After derived from
	// ReadmissionHint.
	ErrNoHealthyNodes = errors.New("cluster: no healthy nodes")
	// ErrNoReadyNodes is the pre-PR-9 name of ErrNoHealthyNodes, kept as
	// an alias so existing errors.Is call sites keep matching.
	ErrNoReadyNodes = ErrNoHealthyNodes
	// ErrUnknownNode names a node the cluster does not have.
	ErrUnknownNode = errors.New("cluster: unknown node")
)

// Config parameterises the cluster.
type Config struct {
	// Policy orders candidate nodes per request. Defaults to round-robin.
	Policy Policy
	// Clock is the fleet's shared virtual clock. Every node's pipeline
	// should be built on the same function. Defaults to wall-clock time
	// since the cluster was created (the serving mapping).
	Clock func() time.Duration
	// MaxAttempts bounds how many nodes one Submit may try: the policy's
	// first choice plus failovers onto the next-ranked nodes when a node
	// sheds (ErrAdmissionFull), predicts an SLO miss
	// (ErrDeadlineInfeasible) or is down. Defaults to 3.
	MaxAttempts int
	// EvictAfter is the consecutive hard submit failures (node down,
	// draining, pipeline closed) after which a node is evicted from
	// routing. Defaults to 2.
	EvictAfter int64
	// SweepEvery runs the health sweep once per this many submissions:
	// nodes whose NodeHealth reports not-Ready (killed, drained, or all
	// devices quarantined) are evicted, and evicted nodes that report
	// Ready again are readmitted. Deliberately submission-driven rather
	// than timer-driven so the cluster stays on the virtual clock and
	// replays deterministically. Defaults to 64; negative disables.
	SweepEvery int64
	// Seed parameterises hash-based routing policies built by name.
	Seed int64

	// Chaos scripts deterministic node-level faults on the shared
	// virtual clock (crash windows, slow-node plans). Nil disables
	// chaos. Crash windows act at the routing tier: the node is skipped
	// by eligible() for the window and its pending deadline work is
	// migrated, then it is routable again — the flapping-restart model.
	Chaos *ChaosInjector
	// NodeHedge enables cluster-aware hedging: a deadline request whose
	// slack halves with no completion (predicted at submit, or observed
	// by the wall-clock trigger) launches a backup submission on the
	// next-best node; the first result wins and the loser is cancelled.
	NodeHedge bool
	// Straggler enables per-node latency-EWMA straggler detection, the
	// Suspect probation state and queued-work migration.
	Straggler StragglerConfig
	// Brownout enables the fleet overload controller (progressive
	// shedding of optional work with hysteretic restore).
	Brownout BrownoutConfig
}

func (c *Config) fillDefaults() {
	if c.Policy == nil {
		c.Policy = NewRoundRobin()
	}
	if c.Clock == nil {
		//bomw:wallclock the default fleet clock IS the wall clock anchored at cluster creation, mirroring PipelineConfig.Clock; simulated callers inject their own
		start := time.Now()
		//bomw:wallclock see above: wall time since creation is the default virtual-time mapping
		c.Clock = func() time.Duration { return time.Since(start) }
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 2
	}
	if c.SweepEvery == 0 {
		c.SweepEvery = 64
	}
	c.Straggler.fillDefaults()
	c.Brownout.fillDefaults()
}

// member is one node plus the cluster-side routing state around it.
type member struct {
	node Node
	idx  int

	evicted   atomic.Bool  // out of the routing set
	hardFails atomic.Int64 // consecutive down/draining submit failures
	routed    atomic.Int64 // requests this node accepted
	rerouted  atomic.Int64 // requests accepted after another node refused

	// lifeMu serialises operator lifecycle transitions (Drain/Kill) on
	// this member, so a Kill landing on an already-draining node orders
	// strictly behind the drain instead of racing it.
	lifeMu sync.Mutex

	// Probation state (the Suspect health state; see health.go).
	suspect     atomic.Bool // on probation: no routed traffic, probes only
	probEvicted atomic.Bool // evicted by failed probation: sweep must not auto-readmit
	probMu      sync.Mutex
	prob        probation

	// chaosDown tracks crash-window membership edges so the sweep
	// migrates pending work exactly once per window entry.
	chaosDown atomic.Bool

	// pending registers this member's in-flight resilient submissions
	// (see resilience.go); a migration cancels them all.
	pendMu  sync.Mutex
	pending map[*submission]context.CancelCauseFunc
}

// Cluster is N nodes behind a routing policy on a shared virtual clock.
type Cluster struct {
	cfg     Config
	members []*member
	byName  map[string]*member

	submits      atomic.Int64 // Submit calls (drives the health sweep)
	routeFails   atomic.Int64 // submits no node accepted
	evictions    atomic.Int64
	readmissions atomic.Int64
	sweeping     atomic.Bool
	closeOnce    sync.Once

	// relays tracks the resilient path's relay and probe goroutines;
	// Close waits for them, so "every future resolved after Close"
	// extends to detached futures.
	relays sync.WaitGroup

	// Resilience counters (see resilience.go / health.go).
	nodeHedges       atomic.Int64 // backup submissions launched on another node
	nodeHedgeWins    atomic.Int64 // hedges whose result resolved the caller's future
	hedgesSuppressed atomic.Int64 // hedges skipped by brownout level ≥ 1
	migrations       atomic.Int64 // queued submissions re-routed off a degraded node
	suspicions       atomic.Int64 // Healthy → Suspect transitions
	probations       atomic.Int64 // Suspect → Healthy clears
	falseSuspects    atomic.Int64 // clears where no probe ever failed
	probes           atomic.Int64 // probe requests judged
	probeCursor      atomic.Int64 // round-robin cursor over suspects
	chaosTrips       atomic.Int64 // crash-window entries observed
	chaosRecoveries  atomic.Int64 // crash-window exits observed
	benignCancels    atomic.Int64 // node-side cancels of hedge losers / migrated work

	// Brownout controller state (see brownout.go).
	broLevel       atomic.Int32
	broOcc         atomic.Uint64 // occupancy EWMA as float64 bits
	brownoutSheds  atomic.Int64
	broTransitions atomic.Int64
}

// New builds a cluster over pre-built nodes. Node names must be unique —
// they are the fleet's operator-facing identity (drain/evict/readmit
// target names, stats keys).
func New(nodes []Node, cfg Config) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	cfg.fillDefaults()
	c := &Cluster{cfg: cfg, byName: make(map[string]*member, len(nodes))}
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("cluster: node %d is nil", i)
		}
		if _, dup := c.byName[n.Name()]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name())
		}
		m := &member{node: n, idx: i}
		c.members = append(c.members, m)
		c.byName[n.Name()] = m
	}
	return c, nil
}

// Build replicates a trained template scheduler into n nodes named
// node0..node{n-1} — node0 serves on the template itself, the rest on
// Scheduler.Replica copies (shared classifiers, fresh devices) — and
// wires them into a cluster on one shared clock. pcfg.Clock is
// overridden with the cluster clock (cfg.Clock, defaulting to wall time
// since creation).
func Build(template *core.Scheduler, n int, seed int64, pcfg core.PipelineConfig, cfg Config) (*Cluster, []*core.Node, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	cfg.fillDefaults()
	pcfg.Clock = cfg.Clock
	scheds := []*core.Scheduler{template}
	for i := 1; i < n; i++ {
		rep, err := template.Replica(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: building node%d: %w", i, err)
		}
		scheds = append(scheds, rep)
	}
	var coreNodes []*core.Node
	var nodes []Node
	for i, s := range scheds {
		nd := core.NewNode(fmt.Sprintf("node%d", i), s, pcfg)
		coreNodes = append(coreNodes, nd)
		nodes = append(nodes, nd)
	}
	c, err := New(nodes, cfg)
	if err != nil {
		for _, nd := range coreNodes {
			nd.Drain()
		}
		return nil, nil, err
	}
	return c, coreNodes, nil
}

// Policy returns the active routing policy's name.
func (c *Cluster) Policy() string { return c.cfg.Policy.Name() }

// Chaos returns the scripted chaos injector, nil when none is armed.
func (c *Cluster) Chaos() *ChaosInjector { return c.cfg.Chaos }

// Clock returns the fleet's shared virtual clock.
func (c *Cluster) Clock() func() time.Duration { return c.cfg.Clock }

// Size returns the fleet size (including evicted nodes).
func (c *Cluster) Size() int { return len(c.members) }

// NodeNames lists the fleet's node names in index order.
func (c *Cluster) NodeNames() []string {
	out := make([]string, len(c.members))
	for i, m := range c.members {
		out[i] = m.node.Name()
	}
	return out
}

// eligible snapshots the current routing set as policy views: members
// that are not evicted, not on probation, and not inside a chaos crash
// window right now.
func (c *Cluster) eligible() ([]*member, []NodeView) {
	var now time.Duration
	if c.cfg.Chaos != nil {
		now = c.cfg.Clock()
	}
	ms := make([]*member, 0, len(c.members))
	views := make([]NodeView, 0, len(c.members))
	for _, m := range c.members {
		if m.evicted.Load() || m.suspect.Load() {
			continue
		}
		if c.cfg.Chaos != nil {
			if down, _ := c.cfg.Chaos.DownAt(m.node.Name(), now); down {
				continue
			}
		}
		ms = append(ms, m)
		views = append(views, NodeView{Index: m.idx, Name: m.node.Name(), Load: m.node.Load(), node: m.node})
	}
	return ms, views
}

// slo mirrors the node pipelines' SLO resolution for routing purposes:
// the request's own deadline when positive, no SLO otherwise. (Per-model
// defaults live inside each node's pipeline config; the router only sees
// the explicit deadline.)
func routeSLO(req core.PipelineRequest) time.Duration {
	if req.Deadline > 0 {
		return req.Deadline
	}
	return 0
}

// Submit routes one request to a node and admits it there. The policy
// orders the eligible nodes; the router tries up to MaxAttempts of them,
// failing over past nodes that shed (ErrAdmissionFull), predict an SLO
// miss (ErrDeadlineInfeasible) or are down (evicting the latter after
// EvictAfter consecutive refusals). Validation errors (unknown model or
// policy, bad batch) are identical on every replica and surface
// immediately. On success the returned future resolves exactly once —
// the node pipeline's contract, unchanged by routing.
func (c *Cluster) Submit(ctx context.Context, req core.PipelineRequest) (*core.Future, error) {
	total := c.submits.Add(1)
	if c.cfg.SweepEvery > 0 && total%c.cfg.SweepEvery == 0 {
		c.sweep()
	}
	if st := &c.cfg.Straggler; st.Enabled && st.ProbeEvery > 0 && total%st.ProbeEvery == 0 {
		c.probeOneSuspect(req.Model)
	}
	size := req.Batch
	if req.Input != nil && req.Input.Rank() >= 1 {
		size = req.Input.Dim(0)
	}
	ms, views := c.eligible()
	if len(ms) == 0 {
		c.routeFails.Add(1)
		return nil, fmt.Errorf("%w: all %d nodes evicted, on probation or in a chaos window", ErrNoHealthyNodes, len(c.members))
	}
	if c.cfg.Brownout.Enabled {
		if err := c.brownoutAdmit(req, ms, views); err != nil {
			c.routeFails.Add(1)
			return nil, err
		}
	}
	order := c.cfg.Policy.Route(Request{
		Model: req.Model,
		Batch: size,
		SLO:   routeSLO(req),
		Now:   c.cfg.Clock(),
	}, views)
	if c.resilientFor(req) {
		return c.submitResilient(ctx, req, ms, order)
	}
	attempts := c.cfg.MaxAttempts
	if attempts > len(order) {
		attempts = len(order)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		pos := order[i]
		if pos < 0 || pos >= len(ms) {
			continue // defensive: policy returned an out-of-range position
		}
		m := ms[pos]
		fut, err := m.node.Submit(ctx, req)
		if err == nil {
			m.hardFails.Store(0)
			m.routed.Add(1)
			if i > 0 {
				m.rerouted.Add(1)
			}
			return fut, nil
		}
		lastErr = err
		switch {
		case errors.Is(err, core.ErrAdmissionFull), errors.Is(err, core.ErrDeadlineInfeasible):
			// Overload, not failure: another node may have room.
			continue
		case errors.Is(err, core.ErrNodeDraining), errors.Is(err, core.ErrNodeDown), errors.Is(err, core.ErrPipelineClosed):
			if m.hardFails.Add(1) >= c.cfg.EvictAfter {
				c.evict(m)
			}
			continue
		default:
			return nil, err
		}
	}
	c.routeFails.Add(1)
	return nil, lastErr
}

// QueueDelay is the fleet's best-case backlog estimate: the smallest
// per-node pipeline queue delay over the ready nodes — the soonest a
// retried request could plausibly find room anywhere. Zero when no node
// is ready (callers apply their own floor).
func (c *Cluster) QueueDelay() time.Duration {
	ms, _ := c.eligible()
	var best time.Duration
	found := false
	for _, m := range ms {
		if !m.node.Health().Ready {
			continue
		}
		if d := m.node.QueueDelay(); !found || d < best {
			best, found = d, true
		}
	}
	return best
}

// Do submits a request and waits for its completion.
func (c *Cluster) Do(ctx context.Context, req core.PipelineRequest) (core.Completion, error) {
	fut, err := c.Submit(ctx, req)
	if err != nil {
		return core.Completion{}, err
	}
	return fut.Wait(ctx)
}

// evict removes a member from the routing set (idempotent).
func (c *Cluster) evict(m *member) {
	if m.evicted.CompareAndSwap(false, true) {
		c.evictions.Add(1)
	}
}

// readmit returns a member to the routing set (idempotent).
func (c *Cluster) readmit(m *member) {
	if m.evicted.CompareAndSwap(true, false) {
		m.hardFails.Store(0)
		c.readmissions.Add(1)
	}
}

// sweep aggregates node health into membership: routing members whose
// node reports not-Ready (killed, drained, every device quarantined) are
// evicted, and evicted nodes that report Ready again — a manual
// readmit-worthy recovery, or device probes that cleared the quarantine
// — are readmitted. At most one sweep runs at a time; callers that lose
// the race skip it.
func (c *Cluster) sweep() {
	if !c.sweeping.CompareAndSwap(false, true) {
		return
	}
	defer c.sweeping.Store(false)
	for _, m := range c.members {
		h := m.node.Health()
		switch {
		case !h.Ready && !m.evicted.Load():
			c.evict(m)
		case h.Ready && m.evicted.Load() && !m.probEvicted.Load():
			// Probation evictions are pinned: the node's lifecycle health
			// looks fine (a straggler is Ready, just slow), so only an
			// operator Readmit — not this sweep — may return it.
			c.readmit(m)
		}
	}
	if ci := c.cfg.Chaos; ci != nil {
		now := c.cfg.Clock()
		for _, m := range c.members {
			down, _ := ci.DownAt(m.node.Name(), now)
			switch {
			case down && m.chaosDown.CompareAndSwap(false, true):
				c.chaosTrips.Add(1)
				// The node just fail-stopped: move its queued deadline
				// work to healthy nodes before the SLOs burn down.
				c.migrateFrom(m)
			case !down && m.chaosDown.CompareAndSwap(true, false):
				c.chaosRecoveries.Add(1)
			}
		}
	}
	if c.cfg.Straggler.Enabled {
		c.detectStragglers()
	}
}

// Sweep runs one health sweep immediately (the submission-driven sweep
// exposed for operators and tests).
func (c *Cluster) Sweep() { c.sweep() }

// findMember resolves an operator-facing node name.
func (c *Cluster) findMember(name string) (*member, error) {
	m, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownNode, name, c.NodeNames())
	}
	return m, nil
}

// Drain removes a node from routing and drains it: every request it had
// accepted resolves before Drain returns. The order matters — eviction
// first, so the router stops picking the node before its pipeline begins
// refusing work, extending the single-node graceful-drain guarantee to
// the fleet.
func (c *Cluster) Drain(name string) error {
	m, err := c.findMember(name)
	if err != nil {
		return err
	}
	c.evict(m)
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	m.node.Drain()
	return nil
}

// Evict removes a node from routing without touching the node — the
// operator's "stop sending traffic here" lever. The node keeps serving
// what it already accepted.
func (c *Cluster) Evict(name string) error {
	m, err := c.findMember(name)
	if err != nil {
		return err
	}
	c.evict(m)
	return nil
}

// Readmit returns an evicted node to the routing set, refusing nodes
// that are not actually Ready (killed, drained, all devices
// quarantined) — readmission must not resurrect a dead node.
func (c *Cluster) Readmit(name string) error {
	m, err := c.findMember(name)
	if err != nil {
		return err
	}
	if h := m.node.Health(); !h.Ready {
		return fmt.Errorf("cluster: node %q is not ready (%s, %d/%d devices quarantined)",
			name, h.State, h.Quarantined, h.Devices)
	}
	// The operator overrides a failed probation: clear the pin and any
	// leftover suspicion. Probation epochs are deliberately kept — a
	// node with a flapping history re-earns trust on the doubled bar.
	m.probEvicted.Store(false)
	m.suspect.Store(false)
	c.readmit(m)
	return nil
}

// Kill fail-stops a node (the failure drill): it is evicted from routing
// and refuses all new work immediately; requests it had already accepted
// still resolve. A Kill landing while the node drains serialises behind
// the drain through the member's lifecycle mutex — the transitions land
// in a strict order instead of racing into the node.
func (c *Cluster) Kill(name string) error {
	m, err := c.findMember(name)
	if err != nil {
		return err
	}
	c.evict(m)
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	m.node.Kill()
	return nil
}

// Close drains every node concurrently; after Close returns, every
// future the fleet ever handed out has resolved. Idempotent.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		var wg sync.WaitGroup
		for _, m := range c.members {
			c.evict(m)
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				m.lifeMu.Lock()
				defer m.lifeMu.Unlock()
				m.node.Drain()
			}(m)
		}
		wg.Wait()
		// Every node future has resolved, so every relay and probe
		// goroutine terminates; waiting here extends the "everything
		// resolved after Close" contract to detached futures.
		c.relays.Wait()
	})
}

// ReadmissionHint is how soon a fleet-wide refusal is worth retrying:
// the soonest chaos crash-window recovery when chaos is scripted, else
// a one-second floor covering the submission-driven sweep's readmission
// cadence. Servers derive the Retry-After of ErrNoHealthyNodes 503s
// from it.
func (c *Cluster) ReadmissionHint() time.Duration {
	if ci := c.cfg.Chaos; ci != nil {
		if d := ci.NextRecovery(c.cfg.Clock()); d > 0 {
			return d
		}
	}
	return time.Second
}

// NodeSnapshot is one node's row in the fleet stats.
type NodeSnapshot struct {
	Name    string
	State   string
	Evicted bool
	// Suspect marks a node on latency probation (no routed traffic,
	// probe traffic only); ChaosDown marks a node inside a scripted
	// crash window right now.
	Suspect   bool
	ChaosDown bool
	// AvgLatency is the node's delivered-batch completion-latency EWMA.
	AvgLatency time.Duration
	// Routed/Rerouted count router decisions that landed here; Rerouted
	// is the subset accepted after a higher-ranked node refused.
	Routed   int64
	Rerouted int64
	// Pipeline accounting (per node).
	Submitted  int64
	Completed  int64
	Shed       int64
	Infeasible int64
	Cancelled  int64
	Expired    int64
	Failed     int64
	Batches    int64
	InFlight   int64
	// SLOAttainment is ok completions over admitted requests (1 when
	// nothing was admitted yet).
	SLOAttainment float64
	// Device failure domain, aggregated.
	Devices            int
	QuarantinedDevices int
	DegradedDevices    int
}

// FleetStats aggregates the fleet: routing activity, membership, and the
// sum of every node's serving counters.
type FleetStats struct {
	Policy string
	Nodes  int
	Ready  int

	Submits       int64 // routing attempts (Submit calls)
	RouteFailures int64 // submits no node accepted
	Evictions     int64
	Readmissions  int64

	// Resilience activity (PR 9): cluster-aware hedging, straggler
	// probation/migration, chaos windows and brownout shedding.
	NodeHedges       int64 // backup submissions launched on another node
	NodeHedgesWon    int64 // hedges whose result won the caller's future
	HedgesSuppressed int64 // hedges skipped under brownout
	Migrations       int64 // queued submissions re-routed off degraded nodes
	Suspicions       int64 // Healthy → Suspect transitions
	Probations       int64 // Suspect → Healthy clears
	FalseSuspects    int64 // clears where no probe ever failed
	Probes           int64 // probe requests judged
	ChaosTrips       int64 // crash-window entries
	ChaosRecoveries  int64 // crash-window exits
	BenignCancels    int64 // node-side cancels of hedge losers / migrated work
	Suspects         int   // members currently on probation
	BrownoutLevel    int
	BrownoutSheds    int64

	// Aggregated serving counters (sums over nodes).
	Submitted  int64
	Completed  int64
	Shed       int64
	Infeasible int64
	Cancelled  int64
	Expired    int64
	Failed     int64
	Batches    int64
	InFlight   int64
	// SLOAttainment is fleet-wide ok completions over admitted requests.
	SLOAttainment float64

	PerNode []NodeSnapshot
}

// attainment folds (submitted, cancelled+expired+failed) into a goodput
// ratio, defaulting to 1 when nothing was admitted.
func attainment(submitted, bad int64) float64 {
	if submitted <= 0 {
		return 1
	}
	return float64(submitted-bad) / float64(submitted)
}

// Stats snapshots the fleet.
func (c *Cluster) Stats() FleetStats {
	st := FleetStats{Policy: c.cfg.Policy.Name(), Nodes: len(c.members)}
	st.Submits = c.submits.Load()
	st.RouteFailures = c.routeFails.Load()
	st.Evictions = c.evictions.Load()
	st.Readmissions = c.readmissions.Load()
	st.NodeHedges = c.nodeHedges.Load()
	st.NodeHedgesWon = c.nodeHedgeWins.Load()
	st.HedgesSuppressed = c.hedgesSuppressed.Load()
	st.Migrations = c.migrations.Load()
	st.Suspicions = c.suspicions.Load()
	st.Probations = c.probations.Load()
	st.FalseSuspects = c.falseSuspects.Load()
	st.Probes = c.probes.Load()
	st.ChaosTrips = c.chaosTrips.Load()
	st.ChaosRecoveries = c.chaosRecoveries.Load()
	st.BenignCancels = c.benignCancels.Load()
	st.BrownoutLevel = int(c.broLevel.Load())
	st.BrownoutSheds = c.brownoutSheds.Load()
	var chaosNow time.Duration
	if c.cfg.Chaos != nil {
		chaosNow = c.cfg.Clock()
	}
	for _, m := range c.members {
		ns := m.node.Stats()
		h := m.node.Health()
		p := ns.Pipeline
		snap := NodeSnapshot{
			Name:               ns.Name,
			State:              ns.State.String(),
			Evicted:            m.evicted.Load(),
			Suspect:            m.suspect.Load(),
			AvgLatency:         m.node.AvgLatency(),
			Routed:             m.routed.Load(),
			Rerouted:           m.rerouted.Load(),
			Submitted:          p.Submitted,
			Completed:          p.Completed,
			Shed:               p.Shed,
			Infeasible:         p.Infeasible,
			Cancelled:          p.Cancelled,
			Expired:            p.Expired,
			Failed:             p.Failed,
			Batches:            p.Batches,
			InFlight:           p.InFlight,
			SLOAttainment:      attainment(p.Submitted, p.Cancelled+p.Expired+p.Failed),
			Devices:            h.Devices,
			QuarantinedDevices: h.Quarantined,
			DegradedDevices:    h.Degraded,
		}
		if c.cfg.Chaos != nil {
			snap.ChaosDown, _ = c.cfg.Chaos.DownAt(snap.Name, chaosNow)
		}
		if snap.Suspect {
			st.Suspects++
		}
		if !snap.Evicted && !snap.Suspect && !snap.ChaosDown {
			st.Ready++
		}
		st.Submitted += p.Submitted
		st.Completed += p.Completed
		st.Shed += p.Shed
		st.Infeasible += p.Infeasible
		st.Cancelled += p.Cancelled
		st.Expired += p.Expired
		st.Failed += p.Failed
		st.Batches += p.Batches
		st.InFlight += p.InFlight
		st.PerNode = append(st.PerNode, snap)
	}
	// Hedge losers and migrated-away submissions resolve as node-side
	// cancels but the request itself completed elsewhere: subtract the
	// benign cancels from both sides so resilience machinery does not
	// read as lost goodput.
	benign := st.BenignCancels
	if benign > st.Cancelled {
		benign = st.Cancelled // racing snapshot: never go negative
	}
	st.SLOAttainment = attainment(st.Submitted-benign, st.Cancelled+st.Expired+st.Failed-benign)
	return st
}
