package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"bomw/internal/core"
)

// fakeNode is a scriptable Node for routing tests: it accepts or refuses
// submissions per its err field, predicts a fixed latency, and records
// what it accepted. The nil *core.Future it returns is fine for the
// router, which only passes futures through.
type fakeNode struct {
	name    string
	load    int64
	predict time.Duration // FeasibleWithin's predicted completion latency
	predErr error

	capacity int64 // Capacity() when > 0 (else 64)

	mu       sync.Mutex
	err      error // returned by Submit when set
	avgLat   time.Duration
	accepted []string
	drains   int
	kills    int
	ready    bool

	// serving mode: when serve is set, Submit hands out a detached
	// future that a goroutine resolves with {serveErr, serveLat} after
	// serveWait of wall time. A submission cancelled before then
	// resolves with context.Canceled instead — the same contract a real
	// pipeline honours when it culls queued work, which is what the
	// resilience relays arbitrate on.
	serve     bool
	serveWait time.Duration
	serveLat  time.Duration
	serveErr  error
	scale     float64 // last SetWindowScale value (windowScaler)
}

func newFakeNode(name string, load int64) *fakeNode {
	return &fakeNode{name: name, load: load, predict: time.Millisecond, ready: true}
}

func (f *fakeNode) Name() string { return f.name }
func (f *fakeNode) Load() int64  { return f.load }

func (f *fakeNode) AvgLatency() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.avgLat
}

func (f *fakeNode) Capacity() int64 {
	if f.capacity > 0 {
		return f.capacity
	}
	return 64
}

func (f *fakeNode) setAvgLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.avgLat = d
}

func (f *fakeNode) Submit(ctx context.Context, req core.PipelineRequest) (*core.Future, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	f.accepted = append(f.accepted, req.Model)
	if !f.serve {
		return nil, nil
	}
	fut := core.NewDetachedFuture()
	comp := core.Completion{Latency: f.serveLat, Err: f.serveErr}
	wait := f.serveWait
	go func() {
		if wait > 0 {
			select {
			case <-ctx.Done():
				fut.Resolve(core.Completion{Err: context.Canceled})
				return
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			fut.Resolve(core.Completion{Err: context.Canceled})
			return
		}
		fut.Resolve(comp)
	}()
	return fut, nil
}

// setServe flips the fake into serving mode: futures resolve with
// {err, lat} after wait of wall time, or context.Canceled on cancel.
func (f *fakeNode) setServe(wait, lat time.Duration, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.serve = true
	f.serveWait = wait
	f.serveLat = lat
	f.serveErr = err
}

func (f *fakeNode) SetWindowScale(scale float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scale = scale
}

func (f *fakeNode) windowScale() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.scale
}

func (f *fakeNode) FeasibleWithin(_ string, _ int, deadline, _ time.Duration) (bool, time.Duration, error) {
	if f.predErr != nil {
		return false, 0, f.predErr
	}
	return f.predict <= deadline, f.predict, nil
}

func (f *fakeNode) QueueDelay() time.Duration { return f.predict }

func (f *fakeNode) Stats() core.NodeStats {
	return core.NodeStats{Name: f.name, State: core.NodeReady}
}

func (f *fakeNode) Health() core.NodeHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	return core.NodeHealth{State: core.NodeReady, Devices: 3, Ready: f.ready}
}

func (f *fakeNode) Drain() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drains++
	f.ready = false
}

func (f *fakeNode) Kill() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kills++
	f.ready = false
}

func (f *fakeNode) setErr(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.err = err
}

func (f *fakeNode) acceptCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.accepted)
}

// fakeViews builds policy views over fakes, mirroring Cluster.eligible.
func fakeViews(fakes ...*fakeNode) []NodeView {
	views := make([]NodeView, len(fakes))
	for i, f := range fakes {
		views[i] = NodeView{Index: i, Name: f.name, Load: f.load, node: f}
	}
	return views
}

func orderEq(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestRoundRobinFairness(t *testing.T) {
	p := NewRoundRobin()
	views := fakeViews(newFakeNode("a", 0), newFakeNode("b", 0), newFakeNode("c", 0), newFakeNode("d", 0))
	counts := make([]int, len(views))
	for k := 0; k < 40; k++ {
		order := p.Route(Request{Model: "simple"}, views)
		if len(order) != len(views) {
			t.Fatalf("order %v does not cover the fleet", order)
		}
		if want := k % len(views); order[0] != want {
			t.Fatalf("request %d started at %d, want %d", k, order[0], want)
		}
		// The failover order continues the rotation.
		for i := 1; i < len(order); i++ {
			if order[i] != (order[0]+i)%len(views) {
				t.Fatalf("request %d order %v is not a rotation", k, order)
			}
		}
		counts[order[0]]++
	}
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("node %d got %d first-choices, want exactly 10: %v", i, c, counts)
		}
	}
}

func TestLeastLoadedUnderSkew(t *testing.T) {
	cases := []struct {
		name  string
		loads []int64
		want  []int
	}{
		{"skewed", []int64{5, 0, 3, 0}, []int{1, 3, 2, 0}},
		{"uniform ties break by index", []int64{2, 2, 2}, []int{0, 1, 2}},
		{"single", []int64{9}, []int{0}},
		{"monotone", []int64{0, 1, 2, 3}, []int{0, 1, 2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fakes := make([]*fakeNode, len(tc.loads))
			for i, l := range tc.loads {
				fakes[i] = newFakeNode(fmt.Sprintf("n%d", i), l)
			}
			got := LeastLoaded{}.Route(Request{Model: "simple"}, fakeViews(fakes...))
			if !orderEq(got, tc.want) {
				t.Fatalf("Route(%v) = %v, want %v", tc.loads, got, tc.want)
			}
		})
	}
}

func TestModelAffinityStableHomes(t *testing.T) {
	p := ModelAffinity{Seed: 7}
	fakes := make([]*fakeNode, 5)
	for i := range fakes {
		fakes[i] = newFakeNode(fmt.Sprintf("node%d", i), int64(i))
	}
	views := fakeViews(fakes...)
	models := []string{"simple", "mnist-small", "mnist-deep", "mnist-cnn", "cifar10"}

	// Same model, same fleet: the home never moves, regardless of load.
	homes := map[string]int{}
	for _, m := range models {
		first := p.Route(Request{Model: m}, views)[0]
		for k := 0; k < 5; k++ {
			if got := p.Route(Request{Model: m}, views)[0]; got != first {
				t.Fatalf("model %q home moved %d -> %d", m, first, got)
			}
		}
		homes[m] = first
	}
	// The hash should spread distinct models over more than one node.
	distinct := map[int]bool{}
	for _, h := range homes {
		distinct[h] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d models homed on one node: %v", len(models), homes)
	}
	// Removing one node moves ONLY the models homed there; every other
	// model's home node is undisturbed (the rendezvous property).
	dead := homes[models[0]]
	var surviving []*fakeNode
	for i, f := range fakes {
		if i != dead {
			surviving = append(surviving, f)
		}
	}
	reduced := fakeViews(surviving...)
	for _, m := range models {
		got := reduced[p.Route(Request{Model: m}, reduced)[0]].Name
		if homes[m] == dead {
			continue // this model had to move
		}
		if want := fakes[homes[m]].name; got != want {
			t.Fatalf("model %q moved from %s to %s when an unrelated node died", m, want, got)
		}
	}
	// A different seed is allowed to disagree about placement entirely,
	// but must itself be stable.
	q := ModelAffinity{Seed: 8}
	for _, m := range models {
		a, b := q.Route(Request{Model: m}, views)[0], q.Route(Request{Model: m}, views)[0]
		if a != b {
			t.Fatalf("seed-8 home for %q unstable: %d vs %d", m, a, b)
		}
	}
}

func TestWeightedScoringSlackOrderAndTieBreaks(t *testing.T) {
	mk := func(name string, load int64, predict time.Duration, predErr error) *fakeNode {
		f := newFakeNode(name, load)
		f.predict = predict
		f.predErr = predErr
		return f
	}
	cases := []struct {
		name  string
		fakes []*fakeNode
		req   Request
		want  []int
	}{
		{
			name: "largest slack first, infeasible last",
			fakes: []*fakeNode{
				mk("a", 0, 4*time.Millisecond, nil),
				mk("b", 0, 2*time.Millisecond, nil),
				mk("c", 0, 8*time.Millisecond, nil),
				mk("d", 0, 12*time.Millisecond, nil), // misses the SLO
			},
			req:  Request{Model: "simple", SLO: 10 * time.Millisecond},
			want: []int{1, 0, 2, 3},
		},
		{
			name: "equal slack ties break on load then index",
			fakes: []*fakeNode{
				mk("a", 3, 2*time.Millisecond, nil),
				mk("b", 1, 2*time.Millisecond, nil),
				mk("c", 1, 2*time.Millisecond, nil),
			},
			req:  Request{Model: "simple", SLO: 10 * time.Millisecond},
			want: []int{1, 2, 0},
		},
		{
			name: "no SLO scores on predicted latency alone",
			fakes: []*fakeNode{
				mk("a", 0, 9*time.Millisecond, nil),
				mk("b", 0, 1*time.Millisecond, nil),
			},
			req:  Request{Model: "simple"},
			want: []int{1, 0},
		},
		{
			name: "unpredictable node ranks last",
			fakes: []*fakeNode{
				mk("a", 0, time.Millisecond, fmt.Errorf("no devices")),
				mk("b", 0, 5*time.Millisecond, nil),
			},
			req:  Request{Model: "simple", SLO: 10 * time.Millisecond},
			want: []int{1, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := WeightedScoring{}.Route(tc.req, fakeViews(tc.fakes...))
			if !orderEq(got, tc.want) {
				t.Fatalf("Route = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name, 1)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := PolicyByName("", 1); err != nil || p.Name() != "round-robin" {
		t.Fatalf("empty name = %v/%v, want round-robin", p, err)
	}
	if _, err := PolicyByName("random", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestRoutingDeterminism replays the same request trace against two
// identically seeded fleets for every policy: the routing decisions —
// which node accepted each request — must be identical, the property
// seeded incident replay rests on.
func TestRoutingDeterminism(t *testing.T) {
	const nodes, requests = 6, 200
	models := []string{"simple", "mnist-small", "mnist-deep", "cifar10"}
	run := func(policyName string) []string {
		fakes := make([]*fakeNode, nodes)
		clusterNodes := make([]Node, nodes)
		for i := range fakes {
			fakes[i] = newFakeNode(fmt.Sprintf("node%d", i), int64(i%3))
			fakes[i].predict = time.Duration(i+1) * time.Millisecond
			clusterNodes[i] = fakes[i]
		}
		pol, err := PolicyByName(policyName, 42)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(clusterNodes, Config{Policy: pol, Clock: func() time.Duration { return 0 }})
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		for k := 0; k < requests; k++ {
			req := core.PipelineRequest{
				Model:    models[k%len(models)],
				Batch:    1 << (k % 5),
				Deadline: time.Duration(10+k%7) * time.Millisecond,
			}
			before := make([]int, nodes)
			for i, f := range fakes {
				before[i] = f.acceptCount()
			}
			if _, err := c.Submit(context.Background(), req); err != nil {
				t.Fatalf("submit %d: %v", k, err)
			}
			for i, f := range fakes {
				if f.acceptCount() > before[i] {
					trace = append(trace, fakes[i].name)
					break
				}
			}
		}
		if len(trace) != requests {
			t.Fatalf("recorded %d decisions, want %d", len(trace), requests)
		}
		return trace
	}
	for _, policyName := range PolicyNames() {
		t.Run(policyName, func(t *testing.T) {
			a, b := run(policyName), run(policyName)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("decision %d diverged: %s vs %s", i, a[i], b[i])
				}
			}
		})
	}
}
