package cluster

import (
	"errors"
	"fmt"
	"math"

	"bomw/internal/core"
)

// Brownout graceful degradation — the fleet's answer to GDEV-AI's
// saturation knee: instead of serving perfectly until overload and then
// 503-ing everything, the cluster sheds *optional* work progressively
// as occupancy climbs, and restores it hysteretically as load recedes.
//
// The controller tracks an EWMA of fleet occupancy (Σ node Load over
// Σ node Capacity, folded on every Submit — no timers, the same
// submission-driven discipline as the health sweep) and walks a level
// ladder:
//
//	L0  healthy    everything on
//	L1  ≥ L1 occ   hedges suppressed (pure overhead under pressure)
//	L2  ≥ L2 occ   SLO-less requests shed with ErrBrownoutShed —
//	               deadline traffic keeps the capacity that remains
//	L3  ≥ L3 occ   batch windows widened WindowScale× on every node:
//	               worse latency, better device efficiency per batch
//
// Each level implies the ones below it. Levels drop only when the EWMA
// falls Hysteresis below the level's entry threshold, so the fleet does
// not flap across a threshold under oscillating load.

// ErrBrownoutShed rejects an SLO-less request during brownout level ≥ 2
// — the fleet is prioritising deadline traffic. HTTP servers translate
// it to 503 with a Retry-After, like ErrAdmissionFull.
var ErrBrownoutShed = errors.New("cluster: brownout shed")

// BrownoutConfig parameterises the overload controller.
type BrownoutConfig struct {
	// Enabled turns the controller on.
	Enabled bool
	// L1, L2, L3 are the occupancy-EWMA entry thresholds of the levels.
	// Defaults: 0.70, 0.85, 0.95.
	L1, L2, L3 float64
	// Hysteresis is how far the EWMA must fall below a level's entry
	// threshold before the level is left. Defaults to 0.05.
	Hysteresis float64
	// WindowScale is the batch-window multiplier applied at level 3.
	// Defaults to 4.
	WindowScale float64
}

func (b *BrownoutConfig) fillDefaults() {
	if b.L1 <= 0 {
		b.L1 = 0.70
	}
	if b.L2 <= 0 {
		b.L2 = 0.85
	}
	if b.L3 <= 0 {
		b.L3 = 0.95
	}
	if b.Hysteresis <= 0 {
		b.Hysteresis = 0.05
	}
	if b.WindowScale <= 1 {
		b.WindowScale = 4
	}
}

// windowScaler is the optional node capability level 3 drives; only
// nodes that can rescale their batching window (core.Node can) are
// touched.
type windowScaler interface {
	SetWindowScale(scale float64)
}

// brownoutLevel is the current degradation level (0 when the
// controller is off).
func (c *Cluster) brownoutLevel() int32 {
	return c.broLevel.Load()
}

// BrownoutLevel exposes the current level for stats and operators.
func (c *Cluster) BrownoutLevel() int { return int(c.brownoutLevel()) }

// brownoutOccupancy is the current occupancy EWMA.
func (c *Cluster) brownoutOccupancy() float64 {
	return math.Float64frombits(c.broOcc.Load())
}

// brownoutAdmit folds the fleet's instantaneous occupancy into the
// EWMA, walks the level ladder, and applies the level-2 shed to
// SLO-less requests. Runs on the Submit path, so it is lock-free: the
// EWMA fold tolerates a lost sample under contention (a smoothed signal
// does not care), while level transitions go through a CAS so each one
// applies exactly once.
func (c *Cluster) brownoutAdmit(req core.PipelineRequest, ms []*member, views []NodeView) error {
	var load, capacity int64
	for i, m := range ms {
		load += views[i].Load
		capacity += m.node.Capacity()
	}
	if capacity <= 0 {
		return nil
	}
	occ := float64(load) / float64(capacity)
	prev := math.Float64frombits(c.broOcc.Load())
	next := occ
	if prev > 0 {
		next = prev + (occ-prev)/8
	}
	c.broOcc.Store(math.Float64bits(next))
	c.brownoutSteer(next)
	if c.broLevel.Load() >= 2 && routeSLO(req) == 0 {
		c.brownoutSheds.Add(1)
		return fmt.Errorf("%w: fleet occupancy %.2f", ErrBrownoutShed, next)
	}
	return nil
}

// brownoutSteer walks the level ladder against the EWMA: up when the
// next level's threshold is crossed, down when the EWMA has receded
// Hysteresis below the current level's entry point.
func (c *Cluster) brownoutSteer(ewma float64) {
	b := &c.cfg.Brownout
	entry := [4]float64{0, b.L1, b.L2, b.L3}
	for {
		level := c.broLevel.Load()
		target := level
		switch {
		case level < 3 && ewma >= entry[level+1]:
			target = level + 1
		case level > 0 && ewma < entry[level]-b.Hysteresis:
			target = level - 1
		}
		if target == level {
			return
		}
		if !c.broLevel.CompareAndSwap(level, target) {
			return // a racing Submit moved the level; it applied the change
		}
		c.broTransitions.Add(1)
		// Level 3 owns the window scale: widen on entry, restore on exit.
		if target == 3 {
			c.applyWindowScale(b.WindowScale)
		} else if level == 3 {
			c.applyWindowScale(1)
		}
	}
}

// applyWindowScale pushes a batching-window scale to every node that
// supports rescaling.
func (c *Cluster) applyWindowScale(scale float64) {
	for _, m := range c.members {
		if ws, ok := m.node.(windowScaler); ok {
			ws.SetWindowScale(scale)
		}
	}
}

// BrownoutSnapshot is the controller's operator-facing state.
type BrownoutSnapshot struct {
	Enabled       bool       `json:"enabled"`
	Level         int        `json:"level"`
	OccupancyEWMA float64    `json:"occupancy_ewma"`
	Sheds         int64      `json:"sheds"`
	Suppressed    int64      `json:"hedges_suppressed"`
	Transitions   int64      `json:"transitions"`
	WindowScale   float64    `json:"window_scale"`
	Thresholds    [3]float64 `json:"thresholds"`
	Hysteresis    float64    `json:"hysteresis"`
}

// Brownout snapshots the overload controller.
func (c *Cluster) Brownout() BrownoutSnapshot {
	b := c.cfg.Brownout
	snap := BrownoutSnapshot{
		Enabled:       b.Enabled,
		Level:         int(c.broLevel.Load()),
		OccupancyEWMA: c.brownoutOccupancy(),
		Sheds:         c.brownoutSheds.Load(),
		Suppressed:    c.hedgesSuppressed.Load(),
		Transitions:   c.broTransitions.Load(),
		Thresholds:    [3]float64{b.L1, b.L2, b.L3},
		Hysteresis:    b.Hysteresis,
		WindowScale:   1,
	}
	if snap.Level >= 3 {
		snap.WindowScale = b.WindowScale
	}
	return snap
}
