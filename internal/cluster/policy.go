package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"
)

// Request carries the routing-relevant facts of one submission: what is
// being served, how big it is, the effective SLO (0 = none) and the
// fleet's virtual now. Policies see only this plus the eligible node
// views — never the payload.
type Request struct {
	Model string
	Batch int
	SLO   time.Duration
	Now   time.Duration
}

// NodeView is the per-node snapshot a routing policy reads: a stable
// fleet index, the node's name, its instantaneous load, and the node's
// own completion predictor for slack scoring.
type NodeView struct {
	Index int
	Name  string
	Load  int64
	node  Node
}

// Predict returns the node's best predicted completion latency for the
// request under the given deadline — the same model the node's own
// admission control uses (Scheduler.FeasibleWithin).
func (v NodeView) Predict(model string, batch int, deadline, now time.Duration) (time.Duration, error) {
	_, predicted, err := v.node.FeasibleWithin(model, batch, deadline, now)
	return predicted, err
}

// Policy orders the eligible nodes for one request. Route returns
// indices INTO views in preference order; the router tries them in turn
// (bounded by Config.MaxAttempts), so position 1 is the failover target
// of position 0. Implementations must be deterministic given their own
// state and the inputs — the cluster's seeded-replay guarantee (same
// trace, same seed ⇒ identical routing decisions) rests on it.
type Policy interface {
	Name() string
	Route(req Request, views []NodeView) []int
}

// PolicyByName builds a routing policy from its CLI/API name:
// round-robin, least-loaded, model-affinity or weighted-scoring. The
// seed parameterises hash-based policies (model-affinity's placement
// salt) so distinct fleets can disagree about model homes while one
// fleet stays deterministic.
func PolicyByName(name string, seed int64) (Policy, error) {
	switch name {
	case "round-robin", "":
		return NewRoundRobin(), nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "model-affinity":
		return ModelAffinity{Seed: seed}, nil
	case "weighted-scoring":
		return WeightedScoring{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %q (want round-robin, least-loaded, model-affinity or weighted-scoring)", name)
	}
}

// PolicyNames lists the built-in routing policies.
func PolicyNames() []string {
	return []string{"round-robin", "least-loaded", "model-affinity", "weighted-scoring"}
}

// RoundRobin rotates a cursor over the eligible nodes: request k starts
// at position k mod n and wraps, so load spreads uniformly regardless of
// node state, and the failover order continues the rotation.
type RoundRobin struct {
	cursor atomic.Uint64
}

// NewRoundRobin builds a round-robin policy with its cursor at zero.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Route implements Policy.
func (p *RoundRobin) Route(_ Request, views []NodeView) []int {
	n := len(views)
	if n == 0 {
		return nil
	}
	start := int((p.cursor.Add(1) - 1) % uint64(n))
	order := make([]int, n)
	for i := range order {
		order[i] = (start + i) % n
	}
	return order
}

// LeastLoaded orders nodes by instantaneous occupancy (admission queue
// plus in-flight batches), ties broken by fleet index so the order is
// deterministic.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Route implements Policy.
func (LeastLoaded) Route(_ Request, views []NodeView) []int {
	order := identity(len(views))
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := views[order[a]], views[order[b]]
		if va.Load != vb.Load {
			return va.Load < vb.Load
		}
		return va.Index < vb.Index
	})
	return order
}

// ModelAffinity routes each model to a stable "home" node via rendezvous
// (highest-random-weight) hashing over node names: the same model always
// lands on the same node while that node is eligible — concentrating a
// model's working set (warm caches, learned queue estimates) — and when
// the home node drains or dies, exactly that model's traffic moves to
// its next-highest node while every other model's home is undisturbed.
// The failover order IS the descending score order.
type ModelAffinity struct {
	// Seed salts the placement hash, decorrelating model homes across
	// fleets that share node names.
	Seed int64
}

// Name implements Policy.
func (ModelAffinity) Name() string { return "model-affinity" }

// Route implements Policy.
func (p ModelAffinity) Route(req Request, views []NodeView) []int {
	scores := make([]uint64, len(views))
	for i, v := range views {
		scores[i] = rendezvousScore(req.Model, v.Name, p.Seed)
	}
	order := identity(len(views))
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return views[order[a]].Index < views[order[b]].Index
	})
	return order
}

func rendezvousScore(model, node string, seed int64) uint64 {
	h := fnv.New64a()
	var s [8]byte
	for i := 0; i < 8; i++ {
		s[i] = byte(seed >> (8 * i))
	}
	h.Write(s[:])
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(node))
	return h.Sum64()
}

// WeightedScoring scores each node by the predicted slack of the request
// on it — SLO minus the node's predicted completion latency, the same
// per-node model admission control uses — and routes to the largest
// slack: the node most likely to make the deadline with room to spare.
// Nodes predicted infeasible (negative slack) rank after feasible ones,
// least-doomed first, so the failover order degrades gracefully.
// Requests without an SLO are scored on predicted latency alone (an
// hour-long virtual deadline turns the predictor into a pure latency
// model). Ties break on lower load, then lower fleet index.
type WeightedScoring struct{}

// Name implements Policy.
func (WeightedScoring) Name() string { return "weighted-scoring" }

// scoreHorizon is the deadline handed to the predictor for SLO-free
// requests: long enough that every node is "feasible" and the score
// reduces to predicted latency.
const scoreHorizon = time.Hour

// Route implements Policy.
func (WeightedScoring) Route(req Request, views []NodeView) []int {
	deadline := req.SLO
	if deadline <= 0 {
		deadline = scoreHorizon
	}
	slack := make([]time.Duration, len(views))
	for i, v := range views {
		predicted, err := v.Predict(req.Model, req.Batch, deadline, req.Now)
		if err != nil {
			// An unpredictable node (unknown model, no devices) scores
			// worst; Submit will surface the real error if it is tried.
			slack[i] = -scoreHorizon
			continue
		}
		slack[i] = deadline - predicted
	}
	order := identity(len(views))
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := views[order[a]], views[order[b]]
		sa, sb := slack[order[a]], slack[order[b]]
		if sa != sb {
			return sa > sb
		}
		if va.Load != vb.Load {
			return va.Load < vb.Load
		}
		return va.Index < vb.Index
	})
	return order
}

func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}
