package cluster

import (
	"context"
	"sort"
	"time"

	"bomw/internal/core"
)

// Straggler detection and the Suspect probation state machine.
//
// Every node pipeline tracks a delivered-batch completion-latency EWMA
// (core.Pipeline.AvgLatency). The health sweep compares those EWMAs
// across the fleet: a node whose latency is simultaneously a p99
// outlier AND a multiple of the fleet median goes on *probation* —
// the new Suspect state between Healthy and Evicted:
//
//	Healthy --outlier--> Suspect --ok probes--> Healthy  (FalseSuspect if never bad)
//	                     Suspect --bad probes--> Evicted (operator Readmit to return)
//
// A Suspect node receives no routed traffic (eligible skips it) but is
// not abandoned: probe requests — one-sample timing probes riding the
// submission stream, the same virtual-clock discipline as the health
// sweep — measure whether it recovered. The hysteresis guard doubles
// the consecutive-ok bar each time a node is re-suspected, so a
// flapping node earns progressively longer probation instead of
// readmit-looping through the fleet.

// StragglerConfig parameterises detection and probation.
type StragglerConfig struct {
	// Enabled turns straggler detection, probation and migration on.
	Enabled bool
	// Factor is the outlier multiple: a node is suspect when its latency
	// EWMA exceeds Factor × the fleet median (and the p99). Defaults to 3.
	Factor float64
	// MinRouted is the minimum number of requests a node must have
	// accepted before its EWMA is judged — young nodes are not outliers,
	// they are unmeasured. Defaults to 16.
	MinRouted int64
	// ProbeEvery sends one probe to one suspect node per this many
	// cluster submissions (submission-driven like the sweep, so replay
	// stays deterministic). Defaults to 32; negative disables probing.
	ProbeEvery int64
	// ProbeOK is the consecutive successful probes that clear a first
	// suspicion. Each re-suspicion doubles the bar (capped at 64) — the
	// flapping hysteresis guard. Defaults to 2.
	ProbeOK int
	// EvictAfterBad is the failed probes after which a suspect is
	// evicted outright. Defaults to 3.
	EvictAfterBad int
}

func (s *StragglerConfig) fillDefaults() {
	if s.Factor <= 1 {
		s.Factor = 3
	}
	if s.MinRouted <= 0 {
		s.MinRouted = 16
	}
	if s.ProbeEvery == 0 {
		s.ProbeEvery = 32
	}
	if s.ProbeOK <= 0 {
		s.ProbeOK = 2
	}
	if s.EvictAfterBad <= 0 {
		s.EvictAfterBad = 3
	}
}

// probation is one member's Suspect-state bookkeeping, guarded by the
// member's probMu (never held across a Submit or Wait).
type probation struct {
	epochs    int           // times this node has been suspected (drives hysteresis)
	okProbes  int           // consecutive successful probes this epoch
	badProbes int           // failed probes this epoch
	needOK    int           // consecutive ok probes required to clear
	latBar    time.Duration // Factor × fleet median at suspicion time: the probe pass bar
}

// detectStragglers runs inside the health sweep: compute the fleet's
// latency median and p99 over measured, routable members, and put the
// outlier on probation. One node per sweep — the EWMA statistics of the
// remaining fleet shift once a suspect stops taking traffic, so
// re-judging the rest against fresh numbers next sweep beats suspecting
// half the fleet on one stale snapshot.
func (c *Cluster) detectStragglers() {
	st := &c.cfg.Straggler
	type cand struct {
		m   *member
		lat time.Duration
	}
	var cands []cand
	for _, m := range c.members {
		if m.evicted.Load() || m.suspect.Load() {
			continue
		}
		if m.routed.Load() < st.MinRouted {
			continue
		}
		if lat := m.node.AvgLatency(); lat > 0 {
			cands = append(cands, cand{m, lat})
		}
	}
	if len(cands) < 3 {
		return // no meaningful distribution to be an outlier of
	}
	lats := make([]time.Duration, len(cands))
	for i, cd := range cands {
		lats[i] = cd.lat
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	median := lats[len(lats)/2]
	p99 := lats[(99*(len(lats)-1)+50)/100]
	bar := time.Duration(float64(median) * st.Factor)
	var worst *cand
	for i := range cands {
		cd := &cands[i]
		if cd.lat >= p99 && cd.lat > bar && (worst == nil || cd.lat > worst.lat) {
			worst = cd
		}
	}
	if worst != nil {
		c.suspectMember(worst.m, bar)
	}
}

// suspectMember moves a member onto probation: out of the routing set,
// probe traffic only, pending deadline work migrated away.
func (c *Cluster) suspectMember(m *member, latBar time.Duration) {
	if !m.suspect.CompareAndSwap(false, true) {
		return
	}
	m.probMu.Lock()
	m.prob.epochs++
	m.prob.okProbes, m.prob.badProbes = 0, 0
	need := c.cfg.Straggler.ProbeOK
	for e := 1; e < m.prob.epochs && need < 64; e++ {
		need *= 2 // flapping hysteresis: each relapse doubles the bar
	}
	m.prob.needOK = need
	m.prob.latBar = latBar
	m.probMu.Unlock()
	c.suspicions.Add(1)
	c.migrateFrom(m)
}

// probeOneSuspect rides the submission stream: pick the next suspect
// member round-robin and send it one single-sample timing probe for the
// model the triggering request named (guaranteed loaded fleet-wide).
// The probe runs on a relay goroutine so the submit path never blocks
// on a straggler; its completion feeds recordProbe.
func (c *Cluster) probeOneSuspect(model string) {
	var target *member
	start := int(c.probeCursor.Add(1))
	for k := 0; k < len(c.members); k++ {
		m := c.members[(start+k)%len(c.members)]
		if m.suspect.Load() {
			target = m
			break
		}
	}
	if target == nil {
		return
	}
	m := target
	fut, err := m.node.Submit(context.Background(), core.PipelineRequest{
		Model: model,
		Batch: 1,
		// Probes opt out of SLOs: a slow node must return a measurement,
		// not an admission rejection.
		Deadline: -1,
	})
	if err != nil {
		c.recordProbe(m, false, 0)
		return
	}
	c.relays.Add(1)
	go func() {
		defer c.relays.Done()
		comp, _ := fut.Wait(context.Background())
		c.recordProbe(m, comp.Err == nil, comp.Latency)
	}()
}

// recordProbe advances the probation state machine with one probe
// outcome. A probe passes when it completed without error and within
// the latency bar captured at suspicion time; needOK consecutive passes
// clear the suspicion (a FalseSuspect if no probe ever failed), and
// EvictAfterBad failures evict the node for good — only an operator
// Readmit brings it back (probEvicted pins it against the sweep's
// auto-readmission, which would otherwise readmit-loop a node whose
// lifecycle health looks fine but whose latency does not).
func (c *Cluster) recordProbe(m *member, ok bool, lat time.Duration) {
	c.probes.Add(1)
	m.probMu.Lock()
	if ok && m.prob.latBar > 0 && lat > m.prob.latBar {
		ok = false // "completed, but still straggling" is not recovery
	}
	var clear, evict, falseSuspect bool
	if ok {
		m.prob.okProbes++
		if m.prob.okProbes >= m.prob.needOK {
			clear = true
			falseSuspect = m.prob.badProbes == 0
		}
	} else {
		m.prob.badProbes++
		m.prob.okProbes = 0
		if m.prob.badProbes >= c.cfg.Straggler.EvictAfterBad {
			evict = true
		}
	}
	m.probMu.Unlock()
	switch {
	case clear:
		if m.suspect.CompareAndSwap(true, false) {
			if falseSuspect {
				c.falseSuspects.Add(1)
			}
			c.probations.Add(1)
		}
	case evict:
		if m.suspect.CompareAndSwap(true, false) {
			m.probEvicted.Store(true)
			c.evict(m)
		}
	}
}

// Suspects lists the names of members currently on probation.
func (c *Cluster) Suspects() []string {
	var out []string
	for _, m := range c.members {
		if m.suspect.Load() {
			out = append(out, m.node.Name())
		}
	}
	return out
}
