package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bomw/internal/core"
)

// Cluster-aware hedging and straggler migration — PR 4's device-level
// tail tolerance lifted across the routing tier.
//
// A deadline request entering a resilient cluster (NodeHedge or
// Straggler enabled) is wrapped in a *submission*: a detached future
// (core.NewDetachedFuture) presented to the caller, behind which one or
// more node attempts race. Each attempt submits under its own
// cancellable child context and a relay goroutine forwards the node
// future's completion into the detached one; the Resolve CAS makes the
// first result win and every later one a discard. Losing attempts are
// cancelled, and the pipeline's exactly-once delivery arbitrates the
// race between cancellation and execution on the node.
//
// Hedging: when half a request's slack is spent with no completion —
// predicted at submit time from the primary node's own completion
// estimate, or observed live by a wall-clock timer — a backup
// submission launches on the next-best node.
//
// Migration: the sweep cancels the pending (queued, not yet executing)
// submissions of a node that went suspect or chaos-down; the pipeline
// culls the queued ones, each relay observes the scripted cancellation
// cause and resubmits on a healthy node. A request already executing
// wins its delivery CAS against the cull and completes normally — only
// genuinely queued work moves.

// Cancellation causes the relays dispatch on. Both are internal: the
// caller only ever sees its own ctx error or a real completion.
var (
	errMigrated   = errors.New("cluster: submission migrated off a degraded node")
	errHedgeLoser = errors.New("cluster: hedge lost the completion race")
)

// submission is one deadline request's cluster-side arbitration state.
type submission struct {
	//bomw:ctxparam submission is the per-request carrier of the hedging/migration race: relays and resubmits must observe the caller's cancellation long after Submit returned
	ctx context.Context
	c   *Cluster
	req core.PipelineRequest
	det *core.Future

	// live counts attempts whose relay has not finished; the last relay
	// to exit without resolving the detached future must resolve it with
	// its own completion — a submission never strands its caller.
	live atomic.Int32

	mu      sync.Mutex
	tried   map[string]bool                     // node names already attempted
	cancels map[*member]context.CancelCauseFunc // live attempts' cancels
	hedged  bool                                // a hedge was launched
	timer   *time.Timer                         // reactive hedge trigger, if armed
}

// attemptKind labels why an attempt launched (primary, hedge, migrate).
type attemptKind int

const (
	attemptPrimary attemptKind = iota
	attemptHedge
	attemptMigrate
)

// resilientFor reports whether this request takes the arbitration path:
// only deadline-carrying requests, and only when a resilience feature
// is on — everything else keeps the zero-overhead direct path.
func (c *Cluster) resilientFor(req core.PipelineRequest) bool {
	return req.Deadline > 0 && (c.cfg.NodeHedge || c.cfg.Straggler.Enabled)
}

// submitResilient routes a deadline request through the arbitration
// path. The failover loop over the policy order is the same as the
// direct path's; the difference is what a successful admission returns:
// the shared detached future, with the node attempt registered for
// migration and (optionally) a hedge armed behind it.
func (c *Cluster) submitResilient(ctx context.Context, req core.PipelineRequest, ms []*member, order []int) (*core.Future, error) {
	s := &submission{
		ctx:     ctx,
		c:       c,
		req:     req,
		det:     core.NewDetachedFuture(),
		tried:   make(map[string]bool, 2),
		cancels: make(map[*member]context.CancelCauseFunc, 2),
	}
	attempts := c.cfg.MaxAttempts
	if attempts > len(order) {
		attempts = len(order)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		pos := order[i]
		if pos < 0 || pos >= len(ms) {
			continue
		}
		m := ms[pos]
		err := s.launch(m, attemptPrimary)
		if err == nil {
			m.hardFails.Store(0)
			m.routed.Add(1)
			if i > 0 {
				m.rerouted.Add(1)
			}
			s.armHedge(m)
			return s.det, nil
		}
		lastErr = err
		switch {
		case errors.Is(err, core.ErrAdmissionFull), errors.Is(err, core.ErrDeadlineInfeasible):
			continue
		case errors.Is(err, core.ErrNodeDraining), errors.Is(err, core.ErrNodeDown), errors.Is(err, core.ErrPipelineClosed):
			if m.hardFails.Add(1) >= c.cfg.EvictAfter {
				c.evict(m)
			}
			continue
		default:
			return nil, err
		}
	}
	c.routeFails.Add(1)
	return nil, lastErr
}

// launch submits one attempt on m under a cancellable child context and
// starts its relay. Attempt registration (tried, cancels, the member's
// pending set) happens before the relay can observe a completion, so a
// migration sweeping the member always sees a registered attempt or a
// finished one — never a half-registered one.
func (s *submission) launch(m *member, kind attemptKind) error {
	nodeCtx, cancel := context.WithCancelCause(s.ctx)
	fut, err := m.node.Submit(nodeCtx, s.req)
	if err != nil {
		cancel(nil)
		return err
	}
	s.live.Add(1)
	s.mu.Lock()
	s.tried[m.node.Name()] = true
	s.cancels[m] = cancel
	s.mu.Unlock()
	m.pendMu.Lock()
	if m.pending == nil {
		m.pending = make(map[*submission]context.CancelCauseFunc)
	}
	m.pending[s] = cancel
	m.pendMu.Unlock()
	s.c.relays.Add(1)
	go s.relay(nodeCtx, m, fut, kind)
	return nil
}

// relay forwards one node attempt's completion into the detached
// future, or — when the attempt was migrated off a degraded node before
// executing — resubmits it on a healthy one.
func (s *submission) relay(nodeCtx context.Context, m *member, fut *core.Future, kind attemptKind) {
	defer s.c.relays.Done()
	comp, _ := fut.Wait(context.Background()) // node pipelines resolve every future, even through drain/kill
	m.pendMu.Lock()
	delete(m.pending, s)
	m.pendMu.Unlock()
	s.mu.Lock()
	delete(s.cancels, m)
	s.mu.Unlock()

	if comp.Err != nil && errors.Is(comp.Err, context.Canceled) && s.ctx.Err() == nil {
		// The node-side cancel fired, not the caller's: this attempt was
		// scripted away (migration or a lost hedge), it did not fail.
		switch cause := context.Cause(nodeCtx); {
		case errors.Is(cause, errMigrated) && !s.det.Resolved():
			// Relaunch elsewhere; whether that worked or the fleet had no
			// target, resolution belongs to whichever attempt finishes
			// last (finishAttempt), never to this relay directly — a
			// failed migration must not steal the race from a live hedge.
			s.c.benignCancels.Add(1)
			_ = s.migrate(m)
			s.finishAttempt(comp)
			return
		case errors.Is(cause, errHedgeLoser):
			s.c.benignCancels.Add(1)
			s.finishAttempt(comp)
			return
		}
	}
	if comp.Err != nil && s.live.Load() > 1 {
		// First *successful* result wins: a failed attempt (deadline
		// cull on a straggler, execution error) must not steal the
		// caller's future while a sibling is still racing — if every
		// attempt fails, the last one out resolves with its error.
		s.finishAttempt(comp)
		return
	}
	if s.det.Resolve(comp) {
		if kind == attemptHedge && comp.Err == nil {
			s.c.nodeHedgeWins.Add(1)
		}
		s.cancelSiblings(m)
		s.stopTimer()
	}
	s.finishAttempt(comp)
}

// finishAttempt retires one attempt; the last attempt out must leave
// the detached future resolved (zero lost futures, whatever raced).
func (s *submission) finishAttempt(comp core.Completion) {
	if s.live.Add(-1) == 0 && !s.det.Resolved() {
		s.det.Resolve(comp)
	}
}

// migrate relaunches this submission on the best healthy node not yet
// tried. Called from the relay of a cancelled attempt, so the request
// is provably not executing anywhere.
func (s *submission) migrate(from *member) error {
	c := s.c
	m := c.pickUntried(s, from)
	if m == nil {
		return fmt.Errorf("cluster: no migration target for %s", s.req.Model)
	}
	if err := s.launch(m, attemptMigrate); err != nil {
		return err
	}
	m.routed.Add(1)
	m.rerouted.Add(1)
	c.migrations.Add(1)
	return nil
}

// pickUntried routes among eligible members this submission has not
// tried, excluding from. Returns nil when the fleet has no candidate.
func (c *Cluster) pickUntried(s *submission, from *member) *member {
	ms, views := c.eligible()
	if len(ms) == 0 {
		return nil
	}
	order := c.cfg.Policy.Route(Request{
		Model: s.req.Model,
		Batch: s.req.Batch,
		SLO:   routeSLO(s.req),
		Now:   c.cfg.Clock(),
	}, views)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pos := range order {
		if pos < 0 || pos >= len(ms) {
			continue
		}
		m := ms[pos]
		if m == from || s.tried[m.node.Name()] {
			continue
		}
		return m
	}
	return nil
}

// armHedge decides how the backup launches behind the primary on m:
// when the primary's own completion estimate already eats more than
// half the slack, hedge immediately (the virtual clock will not ring a
// wall timer in simulation — prediction is the honest trigger there);
// otherwise arm the classic wall-clock trigger at half the slack for
// live serving, where a straggler stalls in real time.
func (s *submission) armHedge(m *member) {
	c := s.c
	if !c.cfg.NodeHedge {
		return
	}
	if c.brownoutLevel() >= 1 {
		c.hedgesSuppressed.Add(1) // brownout L1: hedges are the first optional work to go
		return
	}
	size := s.req.Batch
	if s.req.Input != nil && s.req.Input.Rank() >= 1 {
		size = s.req.Input.Dim(0)
	}
	feasible, pred, err := m.node.FeasibleWithin(s.req.Model, size, s.req.Deadline, c.cfg.Clock())
	if err == nil && (!feasible || pred > s.req.Deadline/2) {
		s.fireHedge(m)
		return
	}
	s.mu.Lock()
	if !s.det.Resolved() {
		primary := m
		//bomw:wallclock reactive hedging races real stragglers: in live serving the half-slack trigger must fire on the wall clock the straggler is stuck on
		s.timer = time.AfterFunc(s.req.Deadline/2, func() { s.fireHedge(primary) })
	}
	s.mu.Unlock()
}

// fireHedge launches the backup submission on the next-best untried
// node, racing the primary for the detached future.
func (s *submission) fireHedge(primary *member) {
	c := s.c
	if s.det.Resolved() || s.ctx.Err() != nil {
		return
	}
	if c.brownoutLevel() >= 1 {
		c.hedgesSuppressed.Add(1)
		return
	}
	s.mu.Lock()
	if s.hedged {
		s.mu.Unlock()
		return
	}
	s.hedged = true
	s.mu.Unlock()
	m := c.pickUntried(s, primary)
	if m == nil {
		return // single healthy node: nothing to hedge onto
	}
	if err := s.launch(m, attemptHedge); err != nil {
		return
	}
	c.nodeHedges.Add(1)
}

// cancelSiblings cancels every live attempt except winner's — the
// first-result-wins cleanup. The pipeline culls the losers if they had
// not started; their relays observe the errHedgeLoser cause and retire
// quietly.
func (s *submission) cancelSiblings(winner *member) {
	s.mu.Lock()
	cancels := make([]context.CancelCauseFunc, 0, len(s.cancels))
	for m, cancel := range s.cancels {
		if m != winner {
			cancels = append(cancels, cancel)
		}
	}
	s.mu.Unlock()
	for _, cancel := range cancels {
		cancel(errHedgeLoser)
	}
}

// stopTimer disarms the reactive hedge trigger once the race is over.
func (s *submission) stopTimer() {
	s.mu.Lock()
	t := s.timer
	s.timer = nil
	s.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}

// migrateFrom cancels the pending submissions of a degraded member —
// the sweep's straggler/chaos migration trigger. Each cancelled
// attempt's relay decides queued-versus-executing through the
// pipeline's delivery CAS and resubmits only the genuinely queued ones.
func (c *Cluster) migrateFrom(m *member) {
	m.pendMu.Lock()
	cancels := make([]context.CancelCauseFunc, 0, len(m.pending))
	for _, cancel := range m.pending {
		cancels = append(cancels, cancel)
	}
	m.pendMu.Unlock()
	for _, cancel := range cancels {
		cancel(errMigrated)
	}
}
