package trace

import (
	"context"
	"time"
)

// Play replays a trace's arrival process on the wall clock, delivering
// each request on the returned channel at its arrival time compressed
// by speedup (speedup 100 plays a 10 s trace in 0.1 s; values ≤ 0 play
// in real time). It is the bridge between the offline generators
// (Poisson, Burst, Diurnal — the §I fluctuations) and a live serving
// pipeline: instead of folding a complete trace offline, requests
// arrive one by one, as real traffic would.
//
// The channel is unbuffered, so a slow consumer delays subsequent
// arrivals — exactly the backpressure a real ingest socket applies.
// Cancelling ctx stops playback; the channel is always closed when
// playback ends.
func Play(ctx context.Context, tr Trace, speedup float64) <-chan Request {
	if speedup <= 0 {
		speedup = 1
	}
	ch := make(chan Request)
	go func() {
		defer close(ch)
		//bomw:wallclock Play is the bridge from recorded virtual timestamps to real arrivals; the timer paces wall time by design
		timer := time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
		//bomw:wallclock replay anchors recorded At offsets to a real start instant
		start := time.Now()
		for _, req := range tr {
			due := time.Duration(float64(req.At) / speedup)
			//bomw:wallclock real elapsed time since the replay anchor decides how long to pace
			if wait := due - time.Since(start); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					return
				}
			}
			select {
			case ch <- req:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}
