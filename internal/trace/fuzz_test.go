package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON: arbitrary input must never panic the trace parser, and
// every accepted trace must satisfy the ordering invariant.
func FuzzReadJSON(f *testing.F) {
	tr, _ := Poisson(5, 100, []string{"m"}, []int{8}, 1)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("[]")
	f.Add(`[{"at_us":-1,"model":"m","batch":1}]`)

	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		prev := parsed[0].At
		for _, r := range parsed[1:] {
			if r.At < prev {
				t.Fatal("accepted trace violates ordering")
			}
			prev = r.At
		}
	})
}
