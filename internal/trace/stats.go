package trace

import (
	"fmt"
	"math"
	"time"
)

// Workload statistics: the quantities that distinguish a steady stream
// from the bursty and diurnal fluctuations of §I, for analysing captured
// traces before replaying them.

// Stats summarises a trace.
type Stats struct {
	Requests     int
	TotalSamples int64
	Duration     time.Duration
	MeanRate     float64 // requests/second over the span
	MeanBatch    float64
	MaxBatch     int
	// Burstiness is the coefficient of variation of inter-arrival times:
	// ≈1 for a Poisson process, >1 for bursty arrivals, <1 for regular
	// (sweep-like) spacing.
	Burstiness float64
}

// Summarize computes trace statistics. The trace must be non-empty and
// time ordered.
func Summarize(t Trace) (Stats, error) {
	if len(t) == 0 {
		return Stats{}, fmt.Errorf("trace: cannot summarise an empty trace")
	}
	s := Stats{Requests: len(t), Duration: t.Duration()}
	prev := time.Duration(-1)
	var gaps []float64
	for i, r := range t {
		if r.At < prev {
			return Stats{}, fmt.Errorf("trace: request %d arrives out of order", i)
		}
		if i > 0 {
			gaps = append(gaps, (r.At - prev).Seconds())
		}
		prev = r.At
		s.TotalSamples += int64(r.Batch)
		if r.Batch > s.MaxBatch {
			s.MaxBatch = r.Batch
		}
	}
	s.MeanBatch = float64(s.TotalSamples) / float64(s.Requests)
	if s.Duration > 0 {
		s.MeanRate = float64(s.Requests) / s.Duration.Seconds()
	}
	if len(gaps) > 1 {
		var mean float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		var varSum float64
		for _, g := range gaps {
			d := g - mean
			varSum += d * d
		}
		varSum /= float64(len(gaps))
		if mean > 0 {
			s.Burstiness = math.Sqrt(varSum) / mean
		}
	}
	return s, nil
}

// RateOver returns request rates over consecutive windows of the given
// width — the load profile a diurnal trace exhibits.
func RateOver(t Trace, window time.Duration) ([]float64, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: window must be positive")
	}
	if len(t) == 0 {
		return nil, fmt.Errorf("trace: cannot profile an empty trace")
	}
	// Duration() is the *last* request's arrival time, so the bucket count
	// is only right for a time-ordered trace: an out-of-order (or
	// negative) timestamp would index past the slice. Validate the whole
	// trace before indexing anything — the offending request may come
	// *before* the one that exposes it.
	prev := time.Duration(0)
	for i, r := range t {
		if r.At < prev {
			return nil, fmt.Errorf("trace: request %d arrives out of order", i)
		}
		prev = r.At
	}
	buckets := int(t.Duration()/window) + 1
	counts := make([]float64, buckets)
	for _, r := range t {
		counts[int(r.At/window)]++
	}
	secs := window.Seconds()
	for i := range counts {
		counts[i] /= secs
	}
	return counts, nil
}
