package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var names = []string{"a", "b"}

func TestPoissonBasics(t *testing.T) {
	tr, err := Poisson(100, 50, names, []int{8, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 100 {
		t.Fatalf("requests = %d", len(tr))
	}
	prev := time.Duration(-1)
	models := map[string]int{}
	for _, r := range tr {
		if r.At <= prev {
			t.Fatal("arrivals must be strictly increasing")
		}
		prev = r.At
		if r.Batch != 8 && r.Batch != 64 {
			t.Fatalf("unexpected batch %d", r.Batch)
		}
		models[r.Model]++
	}
	if models["a"] != 50 || models["b"] != 50 {
		t.Fatalf("round-robin models broken: %v", models)
	}
	// Mean inter-arrival ≈ 1/rate: 100 requests at 50/s ≈ 2 s span.
	if d := tr.Duration(); d < 1*time.Second || d > 4*time.Second {
		t.Fatalf("trace duration %v, want ≈2s", d)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, _ := Poisson(50, 10, names, []int{8}, 7)
	b, _ := Poisson(50, 10, names, []int{8}, 7)
	c, _ := Poisson(50, 10, names, []int{8}, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different trace")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seed, same trace")
	}
}

func TestPoissonValidation(t *testing.T) {
	if _, err := Poisson(0, 10, names, []int{8}, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Poisson(10, 0, names, []int{8}, 1); err == nil {
		t.Fatal("rate=0 accepted")
	}
	if _, err := Poisson(10, 10, nil, []int{8}, 1); err == nil {
		t.Fatal("empty names accepted")
	}
	if _, err := Poisson(10, 10, names, nil, 1); err == nil {
		t.Fatal("empty batches accepted")
	}
}

func TestBurstAlternatesLoad(t *testing.T) {
	tr, err := Burst(2000, 20, 400, time.Second, 200*time.Millisecond,
		names, []int{8}, []int{4096}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var small, large int
	for _, r := range tr {
		switch r.Batch {
		case 8:
			small++
		case 4096:
			large++
		default:
			t.Fatalf("unexpected batch %d", r.Batch)
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("burst trace must mix loads: %d small, %d large", small, large)
	}
	// Bursts are much denser: despite covering only 20% of time, the
	// 20x rate means large-batch requests should dominate counts.
	if large < small {
		t.Fatalf("burst requests should dominate: %d large vs %d small", large, small)
	}
}

func TestBurstValidation(t *testing.T) {
	if _, err := Burst(10, 1, 1, 0, time.Second, names, []int{1}, []int{2}, 1); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestDiurnalRateVaries(t *testing.T) {
	tr, err := Diurnal(3000, 5, 200, 10*time.Second, names, []int{2, 16, 128, 1024}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Request density in the peak half-cycle should far exceed the
	// valley half-cycle.
	counts := map[bool]int{}
	batchAtPeak := map[bool]int64{}
	span := 10 * time.Second
	for _, r := range tr {
		phase := r.At % span
		peak := phase < span/2 // sin positive half
		counts[peak]++
		batchAtPeak[peak] += int64(r.Batch)
	}
	if counts[true] <= counts[false] {
		t.Fatalf("peak density %d should exceed valley %d", counts[true], counts[false])
	}
	avgPeak := float64(batchAtPeak[true]) / float64(counts[true])
	avgValley := float64(batchAtPeak[false]) / float64(counts[false])
	if avgPeak <= avgValley {
		t.Fatalf("peak batches (%.0f) should exceed valley batches (%.0f)", avgPeak, avgValley)
	}
}

func TestDiurnalValidation(t *testing.T) {
	if _, err := Diurnal(10, 5, 1, time.Second, names, []int{1}, 1); err == nil {
		t.Fatal("max < min accepted")
	}
}

func TestSweepTrace(t *testing.T) {
	tr := Sweep([]string{"m1", "m2"}, []int{2, 4, 8}, time.Second)
	if len(tr) != 6 {
		t.Fatalf("sweep length %d", len(tr))
	}
	if tr[0].At != 0 || tr[5].At != 5*time.Second {
		t.Fatalf("sweep spacing wrong: %v … %v", tr[0].At, tr[5].At)
	}
	if tr.TotalSamples() != 2*(2+4+8) {
		t.Fatalf("TotalSamples = %d", tr.TotalSamples())
	}
	if (Trace{}).Duration() != 0 {
		t.Fatal("empty trace duration should be 0")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr, _ := Poisson(20, 100, names, []int{8, 64}, 1)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(tr) {
		t.Fatalf("restored %d requests, want %d", len(restored), len(tr))
	}
	for i := range tr {
		// Arrival times round-trip at microsecond granularity.
		if restored[i].Model != tr[i].Model || restored[i].Batch != tr[i].Batch {
			t.Fatalf("request %d mismatch", i)
		}
		if d := restored[i].At - tr[i].At; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("request %d time drift %v", i, d)
		}
	}
}

func TestTraceJSONValidation(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("[]")); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{bad json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"at_us":1,"model":"m","batch":0}]`)); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"at_us":1,"model":"","batch":2}]`)); err == nil {
		t.Fatal("empty model accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"at_us":5,"model":"m","batch":2},{"at_us":1,"model":"m","batch":2}]`)); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
}

func TestSummarizeBasics(t *testing.T) {
	tr := Trace{
		{At: 0, Model: "m", Batch: 10},
		{At: time.Second, Model: "m", Batch: 20},
		{At: 2 * time.Second, Model: "m", Batch: 30},
	}
	s, err := Summarize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests != 3 || s.TotalSamples != 60 || s.MaxBatch != 30 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanBatch != 20 || s.MeanRate != 1.5 {
		t.Fatalf("mean batch %.1f rate %.1f", s.MeanBatch, s.MeanRate)
	}
	// Perfectly regular spacing → burstiness 0.
	if s.Burstiness != 0 {
		t.Fatalf("regular trace burstiness %.2f, want 0", s.Burstiness)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := Trace{{At: time.Second, Model: "m", Batch: 1}, {At: 0, Model: "m", Batch: 1}}
	if _, err := Summarize(bad); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
}

func TestBurstinessDistinguishesWorkloads(t *testing.T) {
	poisson, _ := Poisson(2000, 100, names, []int{8}, 1)
	burst, _ := Burst(2000, 10, 500, time.Second, 150*time.Millisecond, names, []int{8}, []int{8}, 1)
	sp, err := Summarize(poisson)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Summarize(burst)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson inter-arrivals have CV ≈ 1; bursts push it well above.
	if sp.Burstiness < 0.8 || sp.Burstiness > 1.2 {
		t.Fatalf("poisson burstiness %.2f, want ≈1", sp.Burstiness)
	}
	if sb.Burstiness <= sp.Burstiness {
		t.Fatalf("burst trace (%.2f) should be burstier than poisson (%.2f)",
			sb.Burstiness, sp.Burstiness)
	}
}

func TestRateOverProfilesDiurnal(t *testing.T) {
	tr, _ := Diurnal(4000, 5, 300, 4*time.Second, names, []int{8}, 2)
	rates, err := RateOver(tr, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) < 6 {
		t.Fatalf("profile too short: %d buckets", len(rates))
	}
	min, max := rates[0], rates[0]
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max < 3*min+1 {
		t.Fatalf("diurnal profile too flat: min %.1f max %.1f", min, max)
	}
	if _, err := RateOver(tr, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := RateOver(nil, time.Second); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// Regression: RateOver sizes its buckets from the last request's arrival
// time, so an out-of-order trace — where an earlier request has the
// larger timestamp — used to index past the slice and panic. It must
// reject the trace like Summarize does.
func TestRateOverRejectsUnorderedTrace(t *testing.T) {
	tr := Trace{
		{At: 3 * time.Second, Model: "a", Batch: 1},
		{At: 1 * time.Second, Model: "a", Batch: 1},
	}
	rates, err := RateOver(tr, time.Second)
	if err == nil {
		t.Fatalf("out-of-order trace accepted: %v", rates)
	}
	if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("wrong error: %v", err)
	}
}
