// Package trace generates the streaming workloads the online scheduler
// is evaluated against: steady Poisson request streams, data bursts,
// application overloads, and diurnal load patterns — the "dynamic
// fluctuations that occur at real-time" of §I.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Request is one classification job arriving at the scheduler.
type Request struct {
	At    time.Duration
	Model string
	Batch int
}

// Trace is an ordered stream of requests.
type Trace []Request

// Duration returns the arrival span of the trace.
func (t Trace) Duration() time.Duration {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].At
}

// TotalSamples sums all batch sizes.
func (t Trace) TotalSamples() int64 {
	var n int64
	for _, r := range t {
		n += int64(r.Batch)
	}
	return n
}

// Poisson generates n requests with exponential inter-arrival times at
// the given mean rate (requests/second), drawing batch sizes uniformly
// from batches and models round-robin from names.
func Poisson(n int, rate float64, names []string, batches []int, seed int64) (Trace, error) {
	if n <= 0 || rate <= 0 || len(names) == 0 || len(batches) == 0 {
		return nil, fmt.Errorf("trace: Poisson needs positive n/rate and non-empty names/batches")
	}
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		tr = append(tr, Request{
			At:    at,
			Model: names[i%len(names)],
			Batch: batches[rng.Intn(len(batches))],
		})
	}
	return tr, nil
}

// Burst generates a steady stream at baseRate with periodic bursts: every
// period, a burst of burstLen at burstRate. This is the "data bursts"
// fluctuation of §I — batch sizes jump to the large end during bursts.
func Burst(n int, baseRate, burstRate float64, period, burstLen time.Duration, names []string, smallBatches, largeBatches []int, seed int64) (Trace, error) {
	if n <= 0 || baseRate <= 0 || burstRate <= 0 || period <= 0 || burstLen <= 0 ||
		len(names) == 0 || len(smallBatches) == 0 || len(largeBatches) == 0 {
		return nil, fmt.Errorf("trace: Burst needs positive parameters and non-empty sets")
	}
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		inBurst := at%period < burstLen
		rate, batches := baseRate, smallBatches
		if inBurst {
			rate, batches = burstRate, largeBatches
		}
		at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		tr = append(tr, Request{
			At:    at,
			Model: names[i%len(names)],
			Batch: batches[rng.Intn(len(batches))],
		})
	}
	return tr, nil
}

// Diurnal generates n requests over the span with a sinusoidal rate
// profile between minRate and maxRate — the paper's diurnal-pattern
// energy scenario (§I): low-load valleys favour low-power devices.
func Diurnal(n int, minRate, maxRate float64, span time.Duration, names []string, batches []int, seed int64) (Trace, error) {
	if n <= 0 || minRate <= 0 || maxRate < minRate || span <= 0 || len(names) == 0 || len(batches) == 0 {
		return nil, fmt.Errorf("trace: Diurnal needs positive rates (min ≤ max) and non-empty sets")
	}
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		phase := 2 * math.Pi * float64(at) / float64(span)
		rate := minRate + (maxRate-minRate)*(0.5+0.5*math.Sin(phase))
		at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		// Load follows the rate: big batches at peak, small in valleys.
		idx := int(float64(len(batches)) * (rate - minRate) / (maxRate - minRate + 1e-9))
		if idx >= len(batches) {
			idx = len(batches) - 1
		}
		jitter := rng.Intn(3) - 1
		bi := idx + jitter
		if bi < 0 {
			bi = 0
		}
		if bi >= len(batches) {
			bi = len(batches) - 1
		}
		tr = append(tr, Request{At: at, Model: names[i%len(names)], Batch: batches[bi]})
	}
	return tr, nil
}

// Sweep generates one request per (model, batch) pair spaced by gap —
// the characterisation-style workload used for Fig. 6 replays.
func Sweep(names []string, batches []int, gap time.Duration) Trace {
	var tr Trace
	at := time.Duration(0)
	for _, m := range names {
		for _, b := range batches {
			tr = append(tr, Request{At: at, Model: m, Batch: b})
			at += gap
		}
	}
	return tr
}
