package trace

import (
	"context"
	"testing"
	"time"
)

func TestPlayDeliversWholeTrace(t *testing.T) {
	tr, err := Poisson(40, 200, []string{"a", "b"}, []int{1, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var got []Request
	for req := range Play(ctx, tr, 50) {
		got = append(got, req)
	}
	if len(got) != len(tr) {
		t.Fatalf("delivered %d of %d requests", len(got), len(tr))
	}
	for i, req := range got {
		if req != tr[i] {
			t.Fatalf("request %d delivered as %+v, want %+v (order must be preserved)", i, req, tr[i])
		}
	}
}

func TestPlayRespectsArrivalSpacing(t *testing.T) {
	// Two requests 100 ms apart at speedup 2 must not both arrive
	// within the first ~50 ms.
	tr := Trace{
		{At: 0, Model: "a", Batch: 1},
		{At: 100 * time.Millisecond, Model: "a", Batch: 1},
	}
	start := time.Now()
	ch := Play(context.Background(), tr, 2)
	<-ch
	<-ch
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("second arrival after %v, want ≥ ~50ms", elapsed)
	}
}

func TestPlayCancellation(t *testing.T) {
	tr := Trace{
		{At: 0, Model: "a", Batch: 1},
		{At: time.Hour, Model: "a", Batch: 1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := Play(ctx, tr, 1)
	<-ch // first request arrives immediately
	cancel()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("received a request after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed after cancellation")
	}
}
