package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSON persistence for request traces, so workloads captured from one run
// (or authored by hand) replay identically elsewhere.

type jsonRequest struct {
	AtMicros int64  `json:"at_us"`
	Model    string `json:"model"`
	Batch    int    `json:"batch"`
}

// WriteJSON serialises the trace as a JSON array.
func (t Trace) WriteJSON(w io.Writer) error {
	out := make([]jsonRequest, len(t))
	for i, r := range t {
		out[i] = jsonRequest{AtMicros: r.At.Microseconds(), Model: r.Model, Batch: r.Batch}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: encoding JSON: %w", err)
	}
	return nil
}

// ReadJSON parses a trace written by WriteJSON, validating ordering and
// batch sizes.
func ReadJSON(r io.Reader) (Trace, error) {
	var in []jsonRequest
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	if len(in) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	tr := make(Trace, len(in))
	prev := int64(-1)
	for i, jr := range in {
		if jr.Batch <= 0 {
			return nil, fmt.Errorf("trace: request %d has non-positive batch %d", i, jr.Batch)
		}
		if jr.Model == "" {
			return nil, fmt.Errorf("trace: request %d has no model", i)
		}
		if jr.AtMicros < prev {
			return nil, fmt.Errorf("trace: request %d arrives before its predecessor", i)
		}
		prev = jr.AtMicros
		tr[i] = Request{At: time.Duration(jr.AtMicros) * time.Microsecond, Model: jr.Model, Batch: jr.Batch}
	}
	return tr, nil
}
