package characterize

import (
	"testing"

	"bomw/internal/device"
	"bomw/internal/mlsched"
	"bomw/internal/models"
	"bomw/internal/nn"
)

func TestPaperBatches(t *testing.T) {
	b := PaperBatches()
	if len(b) != 18 || b[0] != 2 || b[len(b)-1] != 256*1024 {
		t.Fatalf("batches = %v, want 2..256K powers of two", b)
	}
}

func TestObjectiveNames(t *testing.T) {
	names := map[Objective]string{
		BestThroughput:   "best-throughput",
		LowestLatency:    "lowest-latency",
		EnergyEfficiency: "energy-efficiency",
	}
	for o, want := range names {
		if o.String() != want {
			t.Fatalf("%d.String() = %q", int(o), o.String())
		}
	}
	if len(Objectives()) != 3 {
		t.Fatal("three policies expected")
	}
}

func TestFeaturesLayout(t *testing.T) {
	desc := models.Cifar10().Descriptor()
	f := Features(desc, 1024, true)
	names := DatasetFeatureNames()
	if len(f) != len(names) {
		t.Fatalf("features %d, names %d", len(f), len(names))
	}
	if names[len(names)-2] != "log2_batch" || names[len(names)-1] != "gpu_warm" {
		t.Fatalf("feature names = %v", names)
	}
	if f[len(f)-2] != 10 { // log2(1024)
		t.Fatalf("log2_batch = %g, want 10", f[len(f)-2])
	}
	if f[len(f)-1] != 1 {
		t.Fatal("gpu_warm should be 1")
	}
	if Features(desc, 1024, false)[len(f)-1] != 0 {
		t.Fatal("gpu_warm should be 0")
	}
}

func TestMeasureDeterministicWithoutNoise(t *testing.T) {
	sw := NewSweeper()
	a, err := sw.Measure(models.Simple(), device.IntelCoreI7_8700(), 64, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sw.Measure(models.Simple(), device.IntelCoreI7_8700(), 64, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("noise-free measurements differ:\n%+v\n%+v", a, b)
	}
	if a.Latency <= 0 || a.EnergyJ <= 0 || a.ThroughputGbps <= 0 || a.AvgPowerW <= 0 {
		t.Fatalf("degenerate point: %+v", a)
	}
}

func TestMeasureNoiseIsDeterministicPerRep(t *testing.T) {
	sw := NewSweeper()
	sw.Noise = 0.12
	a, _ := sw.Measure(models.Simple(), device.IntelCoreI7_8700(), 64, false, 0)
	b, _ := sw.Measure(models.Simple(), device.IntelCoreI7_8700(), 64, false, 0)
	c, _ := sw.Measure(models.Simple(), device.IntelCoreI7_8700(), 64, false, 1)
	if a != b {
		t.Fatal("same rep should reproduce the same noisy measurement")
	}
	if a == c {
		t.Fatal("different reps should draw different noise")
	}
}

func TestMeasureWarmFasterThanIdleOnGPU(t *testing.T) {
	sw := NewSweeper()
	gpu := device.NvidiaGTX1080Ti()
	idle, _ := sw.Measure(models.MnistSmall(), gpu, 512, false, 0)
	warm, _ := sw.Measure(models.MnistSmall(), gpu, 512, true, 0)
	if warm.Latency >= idle.Latency {
		t.Fatalf("warm %v should beat idle %v", warm.Latency, idle.Latency)
	}
	if warm.EnergyJ >= idle.EnergyJ {
		t.Fatal("warm start should cost less energy")
	}
	if !warm.GPUWarmStart || idle.GPUWarmStart {
		t.Fatal("GPUWarmStart flags wrong")
	}
}

func TestSteadyThroughputAtLeastFirstBatch(t *testing.T) {
	sw := NewSweeper()
	p, _ := sw.Measure(models.MnistSmall(), device.NvidiaGTX1080Ti(), 4096, false, 0)
	if p.SteadyLatency > p.Latency {
		t.Fatalf("steady latency %v should not exceed cold first batch %v", p.SteadyLatency, p.Latency)
	}
}

func TestSweepGridSize(t *testing.T) {
	sw := NewSweeper()
	specs := []*nn.Spec{models.Simple(), models.MnistCNN()}
	batches := []int{8, 512}
	pts, err := sw.Sweep(specs, batches)
	if err != nil {
		t.Fatal(err)
	}
	// 2 models × (CPU + iGPU + dGPU-idle + dGPU-warm) × 2 batches = 16.
	if len(pts) != 16 {
		t.Fatalf("sweep points = %d, want 16", len(pts))
	}
	warmPoints := 0
	for _, p := range pts {
		if p.GPUWarmStart {
			warmPoints++
			if p.Kind != device.DiscreteGPU {
				t.Fatal("warm-start state only applies to the discrete GPU")
			}
		}
	}
	if warmPoints != 4 {
		t.Fatalf("warm points = %d, want 4", warmPoints)
	}
}

func TestBuildDatasetSizeMatchesPaper(t *testing.T) {
	sw := NewSweeper()
	sw.Noise = 0.12
	set, err := sw.BuildDataset(models.AllModels(), PaperBatches(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 21 architectures × 18 batches × 2 GPU states × 2 reps = 1512,
	// matching the paper's ≈1480-sample augmented dataset (§V-B).
	if set.Len() != 1512 {
		t.Fatalf("dataset size = %d, want 1512", set.Len())
	}
	if len(set.X[0]) != len(set.FeatureNames) {
		t.Fatal("feature width mismatch")
	}
	if len(set.Devices) != 3 || len(set.Kinds) != 3 {
		t.Fatalf("device classes = %v", set.Devices)
	}
	for _, o := range Objectives() {
		if len(set.Y[o]) != set.Len() {
			t.Fatalf("%s labels = %d", o, len(set.Y[o]))
		}
		shares := set.ClassShares(o)
		// Imbalanced but no empty class and no total monopoly on the
		// throughput/latency policies (the paper reports 30/40/30).
		var sum float64
		for _, s := range shares {
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s shares sum %g", o, sum)
		}
		if o != EnergyEfficiency {
			for c, s := range shares {
				if s < 0.05 || s > 0.75 {
					t.Fatalf("%s class %d share %.2f outside (0.05, 0.75)", o, c, s)
				}
			}
		}
	}
}

func TestDatasetTrainsAccurateForest(t *testing.T) {
	// The headline reproduction: a tuned random forest cross-validates
	// near the paper's 93.22% / F1 93.51% on the throughput policy.
	sw := NewSweeper()
	sw.Noise = 0.12
	set, err := sw.BuildDataset(models.AllModels(), PaperBatches(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mlsched.CrossValidate(func() mlsched.Classifier { return mlsched.NewTunedForest(1) },
		set.X, set.Y[BestThroughput], 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.85 || m.Accuracy > 0.99 {
		t.Fatalf("forest CV accuracy %.1f%%, want near the paper's 93%%", 100*m.Accuracy)
	}
	if m.F1 < 0.75 {
		t.Fatalf("forest CV F1 %.1f%% too low", 100*m.F1)
	}
}

func TestMeasureConfigAndLoss(t *testing.T) {
	sw := NewSweeper()
	cm, err := sw.MeasureConfig(models.MnistSmall(), 4096, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Points) != 3 {
		t.Fatalf("config points = %d", len(cm.Points))
	}
	for _, o := range Objectives() {
		best := cm.Best(o)
		if cm.LossVersusIdeal(o, best) != 0 {
			t.Fatalf("%s: ideal device has non-zero loss", o)
		}
		for c := range cm.Points {
			loss := cm.LossVersusIdeal(o, c)
			if loss < 0 || loss > 1 {
				t.Fatalf("%s class %d: loss %.2f outside [0,1]", o, c, loss)
			}
		}
	}
	if cm.TimeOf(0) != cm.Points[0].Latency {
		t.Fatal("TimeOf mismatch")
	}
	// At batch 4096 with a warm GPU, mnist-small throughput is a dGPU win.
	if best := cm.Best(BestThroughput); cm.Points[best].Kind != device.DiscreteGPU {
		t.Fatalf("throughput winner at 4K warm should be the dGPU, got %s", cm.Points[best].Device)
	}
}

func TestPaperFeatureImportanceClaim(t *testing.T) {
	// §V-B: "the most important parameters is the samples size and the
	// state of the GPU". Train the tuned forest on the real dataset and
	// check log2_batch + gpu_warm dominate the importance ranking.
	sw := NewSweeper()
	sw.Noise = 0.12
	set, err := sw.BuildDataset(models.AllModels(), PaperBatches(), 2)
	if err != nil {
		t.Fatal(err)
	}
	f := mlsched.NewTunedForest(1)
	if err := f.Fit(set.X, set.Y[LowestLatency]); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	names := set.FeatureNames
	byName := map[string]float64{}
	for i, n := range names {
		byName[n] = imp[i]
	}
	if byName["log2_batch"] < 0.2 {
		t.Fatalf("batch size importance %.2f too low: %v", byName["log2_batch"], byName)
	}
	// gpu_warm must beat the median architecture feature.
	archMax := 0.0
	for _, n := range []string{"vgg_blocks", "convs_per_block", "filter_size", "pool_size"} {
		if byName[n] > archMax {
			archMax = byName[n]
		}
	}
	if byName["gpu_warm"] <= archMax/2 {
		t.Fatalf("gpu_warm importance %.3f should be material vs arch features (max %.3f): %v",
			byName["gpu_warm"], archMax, byName)
	}
}
