package characterize

import (
	"fmt"
	"time"

	"bomw/internal/device"
	"bomw/internal/nn"
)

// Objective is the scheduling policy dimension of §V-A: the metric the
// device selection optimises.
type Objective int

const (
	// BestThroughput maximises sustained samples/second.
	BestThroughput Objective = iota
	// LowestLatency minimises first-batch completion time from the
	// current device state.
	LowestLatency
	// EnergyEfficiency minimises Joules per batch.
	EnergyEfficiency
)

// Objectives lists all policies.
func Objectives() []Objective {
	return []Objective{BestThroughput, LowestLatency, EnergyEfficiency}
}

// String names the policy as the paper does (Fig. 5).
func (o Objective) String() string {
	switch o {
	case BestThroughput:
		return "best-throughput"
	case LowestLatency:
		return "lowest-latency"
	case EnergyEfficiency:
		return "energy-efficiency"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Features assembles the scheduler's input representation (§V-B): the
// architecture descriptor, the (log₂-scaled) batch size and the probed
// discrete-GPU state.
func Features(desc nn.Descriptor, batch int, gpuWarm bool) []float64 {
	f := desc.Features()
	warm := 0.0
	if gpuWarm {
		warm = 1
	}
	return append(f, log2(batch), warm)
}

// DatasetFeatureNames labels Features() columns.
func DatasetFeatureNames() []string {
	return append(nn.FeatureNames(), "log2_batch", "gpu_warm")
}

func log2(n int) float64 {
	v := 0.0
	for m := n; m > 1; m >>= 1 {
		v++
	}
	return v
}

// LabeledSet is the scheduler's training corpus: one row per measured
// configuration with a best-device label for every policy.
type LabeledSet struct {
	FeatureNames []string
	Devices      []string // class index → device name
	Kinds        []device.Kind
	X            [][]float64
	Y            map[Objective][]int
	Models       []string // provenance: the model behind each row
	Batches      []int
	GPUWarm      []bool
}

// Len returns the number of samples.
func (s *LabeledSet) Len() int { return len(s.X) }

// ClassShares returns the label distribution of one objective (the paper
// reports 30/40/30 CPU/GPU/iGPU).
func (s *LabeledSet) ClassShares(o Objective) []float64 {
	counts := make([]float64, len(s.Devices))
	for _, c := range s.Y[o] {
		counts[c]++
	}
	for i := range counts {
		counts[i] /= float64(len(s.Y[o]))
	}
	return counts
}

// BuildDataset measures every spec × batch × GPU-state configuration reps
// times under measurement noise and labels each replica with the
// best device per policy. With the 21 training architectures, the paper's
// batch grid and reps = 2 this lands at ≈1500 samples, matching the
// paper's augmented dataset size (§V-B).
func (s *Sweeper) BuildDataset(specs []*nn.Spec, batches []int, reps int) (*LabeledSet, error) {
	if reps <= 0 {
		reps = 1
	}
	set := &LabeledSet{
		FeatureNames: DatasetFeatureNames(),
		Y:            map[Objective][]int{},
	}
	for _, p := range s.Profiles {
		set.Devices = append(set.Devices, p.Name)
		set.Kinds = append(set.Kinds, p.Kind)
	}
	for _, spec := range specs {
		desc := spec.Descriptor()
		for _, batch := range batches {
			for _, warm := range []bool{false, true} {
				for rep := 0; rep < reps; rep++ {
					pts := make([]Point, len(s.Profiles))
					for di, prof := range s.Profiles {
						gpuWarm := warm && prof.HasBoost
						p, err := s.Measure(spec, prof, batch, gpuWarm, rep)
						if err != nil {
							return nil, err
						}
						pts[di] = p
					}
					set.X = append(set.X, Features(desc, batch, warm))
					set.Models = append(set.Models, spec.Name)
					set.Batches = append(set.Batches, batch)
					set.GPUWarm = append(set.GPUWarm, warm)
					for _, o := range Objectives() {
						set.Y[o] = append(set.Y[o], bestDevice(pts, o))
					}
				}
			}
		}
	}
	return set, nil
}

// bestDevice returns the class index of the winning device for a policy.
func bestDevice(pts []Point, o Objective) int {
	best := 0
	for i := 1; i < len(pts); i++ {
		if betterFor(o, pts[i], pts[best]) {
			best = i
		}
	}
	return best
}

func betterFor(o Objective, a, b Point) bool {
	switch o {
	case BestThroughput:
		return a.ThroughputGbps > b.ThroughputGbps
	case LowestLatency:
		return a.Latency < b.Latency
	case EnergyEfficiency:
		return a.EnergyJ < b.EnergyJ
	default:
		return false
	}
}

// IdealAndAchieved looks up, for one configuration, the metric of the
// ideal device and of a chosen device — the quantities behind Fig. 6's
// green/red bars and the "performance loss from wrong predictions".
type ConfigMetrics struct {
	Points []Point // one per device, profile order
}

// MeasureConfig measures all devices for one configuration.
func (s *Sweeper) MeasureConfig(spec *nn.Spec, batch int, gpuWarm bool, rep int) (ConfigMetrics, error) {
	var cm ConfigMetrics
	for _, prof := range s.Profiles {
		p, err := s.Measure(spec, prof, batch, gpuWarm && prof.HasBoost, rep)
		if err != nil {
			return ConfigMetrics{}, err
		}
		cm.Points = append(cm.Points, p)
	}
	return cm, nil
}

// Best returns the winning class index for a policy.
func (cm ConfigMetrics) Best(o Objective) int { return bestDevice(cm.Points, o) }

// MetricOf extracts a policy's scalar metric for a device class; larger
// is better for throughput, smaller for the others.
func (cm ConfigMetrics) MetricOf(o Objective, class int) float64 {
	p := cm.Points[class]
	switch o {
	case BestThroughput:
		return p.ThroughputGbps
	case LowestLatency:
		return p.Latency.Seconds()
	case EnergyEfficiency:
		return p.EnergyJ
	default:
		return 0
	}
}

// LossVersusIdeal returns the relative metric loss of picking class c
// instead of the ideal device (0 = picked the ideal device).
func (cm ConfigMetrics) LossVersusIdeal(o Objective, c int) float64 {
	ideal := cm.Best(o)
	if ideal == c {
		return 0
	}
	iv := cm.MetricOf(o, ideal)
	cv := cm.MetricOf(o, c)
	switch o {
	case BestThroughput:
		if iv <= 0 {
			return 0
		}
		return (iv - cv) / iv
	default:
		if cv <= 0 {
			return 0
		}
		return (cv - iv) / cv
	}
}

// TimeOf is a helper naming the latency of class c.
func (cm ConfigMetrics) TimeOf(c int) time.Duration { return cm.Points[c].Latency }
