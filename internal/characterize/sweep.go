// Package characterize reproduces the paper's performance
// characterisation (§IV-C, Figs. 3 and 4): sweeps of every workload model
// over every device, batch size and discrete-GPU start state, measuring
// throughput, latency, power and energy — and, on top of those sweeps,
// the labelled dataset that trains the scheduler (§V-B): 21 architectures
// × batch sizes × GPU states with per-policy best-device labels,
// replicated with measurement noise to the paper's ≈1480 samples.
package characterize

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"bomw/internal/device"
	"bomw/internal/nn"
	"bomw/internal/opencl"
)

// PaperBatches returns the sample sizes of Figs. 3-4: powers of two from
// 2 to 256K.
func PaperBatches() []int {
	var out []int
	for n := 2; n <= 256*1024; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Point is one measurement: a model×device×batch×state configuration and
// the metrics the paper plots.
type Point struct {
	Model        string
	Device       string
	Kind         device.Kind
	Batch        int
	GPUWarmStart bool

	Latency        time.Duration // first-batch latency from the given state
	SteadyLatency  time.Duration // per-batch latency once the device is warm
	ThroughputGbps float64       // sustained input throughput (steady state)
	EnergyJ        float64       // Joules for the first batch (Fig. 4)
	AvgPowerW      float64       // average power during the first batch
}

// Sweeper runs characterisation sweeps on a fixed set of device profiles.
type Sweeper struct {
	Profiles []device.Profile
	// Noise is the relative standard deviation of multiplicative
	// measurement noise applied to latency and energy (0 = clean curves
	// for figure generation; the dataset builder uses ≈0.12 to model the
	// run-to-run variance of a real testbed).
	Noise float64
	Seed  int64

	mu   sync.Mutex
	nets map[string]*nn.Network // spec name → built network (weights are
	// irrelevant to Estimate-only sweeps, so one build per spec suffices)
}

// NewSweeper builds a sweeper over the paper's three devices.
func NewSweeper() *Sweeper {
	return &Sweeper{Profiles: device.DefaultProfiles(), Seed: 1, nets: map[string]*nn.Network{}}
}

// networkFor returns the cached built network for a spec.
func (s *Sweeper) networkFor(spec *nn.Spec) (*nn.Network, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nets == nil {
		s.nets = map[string]*nn.Network{}
	}
	if net, ok := s.nets[spec.Name]; ok {
		return net, nil
	}
	net, err := spec.Build(s.Seed)
	if err != nil {
		return nil, err
	}
	s.nets[spec.Name] = net
	return net, nil
}

// steadyRuns is how many consecutive batches the sustained-throughput
// measurement pipelines before reading the steady-state batch time.
const steadyRuns = 3

// Measure runs one configuration from a cold system and returns its
// point. Each call uses fresh devices, matching the paper's methodology
// of controlled per-configuration measurements.
func (s *Sweeper) Measure(spec *nn.Spec, prof device.Profile, batch int, gpuWarm bool, rep int) (Point, error) {
	net, err := s.networkFor(spec)
	if err != nil {
		return Point{}, err
	}
	dev := device.New(prof)
	rt, err := opencl.NewRuntime(dev)
	if err != nil {
		return Point{}, err
	}
	if err := rt.LoadModel(net); err != nil {
		return Point{}, err
	}
	if gpuWarm {
		dev.Warm(0)
	}

	first, err := rt.Estimate(prof.Name, net.Name(), batch, 0)
	if err != nil {
		return Point{}, err
	}
	// Sustained throughput: pipeline further batches back-to-back and
	// take the last one's latency, which reflects the warmed device.
	last := first
	for i := 1; i < steadyRuns; i++ {
		last, err = rt.Estimate(prof.Name, net.Name(), batch, last.Completed)
		if err != nil {
			return Point{}, err
		}
	}

	latency := first.Latency()
	steady := last.Latency()
	energy := first.EnergyJ
	if s.Noise > 0 {
		rng := rand.New(rand.NewSource(s.Seed ^ hashConfig(spec.Name, prof.Name, batch, gpuWarm, rep)))
		latency = jitterDuration(rng, latency, s.Noise)
		steady = jitterDuration(rng, steady, s.Noise)
		energy *= jitterFactor(rng, s.Noise)
	}

	p := Point{
		Model:         spec.Name,
		Device:        prof.Name,
		Kind:          prof.Kind,
		Batch:         batch,
		GPUWarmStart:  gpuWarm,
		Latency:       latency,
		SteadyLatency: steady,
		EnergyJ:       energy,
	}
	if steady > 0 {
		p.ThroughputGbps = float64(batch) * float64(net.SampleBytes()) * 8 / steady.Seconds() / 1e9
	}
	if latency > 0 {
		p.AvgPowerW = energy / latency.Seconds()
	}
	return p, nil
}

// Sweep measures every model×device×batch×GPU-state configuration — the
// full grid behind Figs. 3 and 4.
func (s *Sweeper) Sweep(specs []*nn.Spec, batches []int) ([]Point, error) {
	var out []Point
	for _, spec := range specs {
		for _, prof := range s.Profiles {
			states := []bool{false}
			if prof.HasBoost {
				states = []bool{false, true} // idle GTX 1080 Ti vs warmed
			}
			for _, warm := range states {
				for _, n := range batches {
					p, err := s.Measure(spec, prof, n, warm, 0)
					if err != nil {
						return nil, fmt.Errorf("characterize: %s on %s batch %d: %w", spec.Name, prof.Name, n, err)
					}
					out = append(out, p)
				}
			}
		}
	}
	return out, nil
}

func hashConfig(model, dev string, batch int, warm bool, rep int) int64 {
	h := int64(1469598103934665603)
	mix := func(s string) {
		for _, c := range s {
			h ^= int64(c)
			h *= 1099511628211
		}
	}
	mix(model)
	mix(dev)
	h ^= int64(batch) * 2654435761
	if warm {
		h ^= 0x5bf03635
	}
	h ^= int64(rep) * 40503
	return h
}

func jitterFactor(rng *rand.Rand, sd float64) float64 {
	f := 1 + rng.NormFloat64()*sd
	return math.Max(0.5, math.Min(1.5, f))
}

func jitterDuration(rng *rand.Rand, d time.Duration, sd float64) time.Duration {
	return time.Duration(float64(d) * jitterFactor(rng, sd))
}
