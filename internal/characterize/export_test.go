package characterize

import (
	"bytes"
	"strings"
	"testing"

	"bomw/internal/models"
	"bomw/internal/nn"
)

func smallSet(t *testing.T) *LabeledSet {
	t.Helper()
	sw := NewSweeper()
	sw.Noise = 0.12
	set, err := sw.BuildDataset([]*nn.Spec{models.Simple(), models.MnistCNN()}, []int{8, 512, 8192}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestCSVRoundTrip(t *testing.T) {
	set := smallSet(t)
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCSV(bytes.NewReader(buf.Bytes()), set.Devices, set.Kinds)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != set.Len() {
		t.Fatalf("restored %d rows, want %d", restored.Len(), set.Len())
	}
	for i := range set.X {
		if restored.Models[i] != set.Models[i] || restored.Batches[i] != set.Batches[i] ||
			restored.GPUWarm[i] != set.GPUWarm[i] {
			t.Fatalf("row %d metadata mismatch", i)
		}
		for j := range set.X[i] {
			if restored.X[i][j] != set.X[i][j] {
				t.Fatalf("row %d feature %d: %g != %g", i, j, restored.X[i][j], set.X[i][j])
			}
		}
		for _, o := range Objectives() {
			if restored.Y[o][i] != set.Y[o][i] {
				t.Fatalf("row %d label %s mismatch", i, o)
			}
		}
	}
	if len(restored.FeatureNames) != len(set.FeatureNames) {
		t.Fatal("feature names lost")
	}
}

func TestCSVHeaderShape(t *testing.T) {
	set := smallSet(t)
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, want := range []string{"model", "batch", "gpu_warm", "log2_batch", "label_best-throughput", "label_energy-efficiency"} {
		if !strings.Contains(header, want) {
			t.Fatalf("CSV header %q missing %q", header, want)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	set := smallSet(t)
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	if _, err := ReadCSV(strings.NewReader(good), nil, nil); err == nil {
		t.Fatal("missing device names accepted")
	}
	if _, err := ReadCSV(strings.NewReader("model,batch\n"), set.Devices, set.Kinds); err == nil {
		t.Fatal("too-narrow CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader(""), set.Devices, set.Kinds); err == nil {
		t.Fatal("empty CSV accepted")
	}
	// Corrupt a label to be out of range.
	lines := strings.Split(strings.TrimSpace(good), "\n")
	parts := strings.Split(lines[1], ",")
	parts[len(parts)-1] = "99"
	lines[1] = strings.Join(parts, ",")
	if _, err := ReadCSV(strings.NewReader(strings.Join(lines, "\n")), set.Devices, set.Kinds); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	// Corrupt a feature.
	parts = strings.Split(lines[2], ",")
	parts[4] = "not-a-number"
	lines[2] = strings.Join(parts, ",")
	if _, err := ReadCSV(strings.NewReader(strings.Join(lines, "\n")), set.Devices, set.Kinds); err == nil {
		t.Fatal("non-numeric feature accepted")
	}
}
