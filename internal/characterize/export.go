package characterize

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"bomw/internal/device"
)

// CSV export/import of the labelled training corpus, so the dataset the
// scheduler trains on can be inspected, versioned and reused by external
// tooling — the reproducible artefact behind Tables I-III.

// WriteCSV emits one row per sample: model, batch, gpu_warm, all feature
// columns, and one label column per policy (device class index).
func (s *LabeledSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"model", "batch", "gpu_warm"}
	header = append(header, s.FeatureNames...)
	for _, o := range Objectives() {
		header = append(header, "label_"+o.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("characterize: writing CSV header: %w", err)
	}
	for i := range s.X {
		row := []string{
			s.Models[i],
			strconv.Itoa(s.Batches[i]),
			strconv.FormatBool(s.GPUWarm[i]),
		}
		for _, v := range s.X[i] {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		for _, o := range Objectives() {
			row = append(row, strconv.Itoa(s.Y[o][i]))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("characterize: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV. Device names
// and kinds are not stored in the CSV; callers supply the class order
// (devices[i] is class i).
func ReadCSV(r io.Reader, devices []string, kinds []device.Kind) (*LabeledSet, error) {
	if len(devices) == 0 || len(devices) != len(kinds) {
		return nil, fmt.Errorf("characterize: need matching device names and kinds")
	}
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("characterize: reading CSV: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("characterize: CSV needs a header and at least one row")
	}
	header := rows[0]
	nPolicies := len(Objectives())
	nFeatures := len(header) - 3 - nPolicies
	if nFeatures <= 0 {
		return nil, fmt.Errorf("characterize: CSV header has %d columns, too few", len(header))
	}
	set := &LabeledSet{
		FeatureNames: append([]string(nil), header[3:3+nFeatures]...),
		Devices:      append([]string(nil), devices...),
		Kinds:        append([]device.Kind(nil), kinds...),
		Y:            map[Objective][]int{},
	}
	for ri, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("characterize: CSV row %d has %d columns, want %d", ri+1, len(row), len(header))
		}
		batch, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("characterize: CSV row %d batch: %w", ri+1, err)
		}
		warm, err := strconv.ParseBool(row[2])
		if err != nil {
			return nil, fmt.Errorf("characterize: CSV row %d gpu_warm: %w", ri+1, err)
		}
		feats := make([]float64, nFeatures)
		for j := 0; j < nFeatures; j++ {
			feats[j], err = strconv.ParseFloat(row[3+j], 64)
			if err != nil {
				return nil, fmt.Errorf("characterize: CSV row %d feature %d: %w", ri+1, j, err)
			}
		}
		set.Models = append(set.Models, row[0])
		set.Batches = append(set.Batches, batch)
		set.GPUWarm = append(set.GPUWarm, warm)
		set.X = append(set.X, feats)
		for oi, o := range Objectives() {
			label, err := strconv.Atoi(row[3+nFeatures+oi])
			if err != nil {
				return nil, fmt.Errorf("characterize: CSV row %d label %s: %w", ri+1, o, err)
			}
			if label < 0 || label >= len(devices) {
				return nil, fmt.Errorf("characterize: CSV row %d label %d out of range", ri+1, label)
			}
			set.Y[o] = append(set.Y[o], label)
		}
	}
	return set, nil
}
