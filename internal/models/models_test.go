package models

import (
	"strings"
	"testing"

	"bomw/internal/nn"
)

func TestPaperModelCount(t *testing.T) {
	if got := len(PaperModels()); got != 5 {
		t.Fatalf("paper models = %d, want 5", got)
	}
	if got := len(AugmentationModels()); got != 16 {
		t.Fatalf("augmentation models = %d, want 16 (§V-B)", got)
	}
	if got := len(AllModels()); got != 21 {
		t.Fatalf("all models = %d, want 21", got)
	}
}

func TestAllSpecsValidateAndBuild(t *testing.T) {
	for _, s := range append(AllModels(), UnseenModels()...) {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		net, err := s.Build(1)
		if err != nil {
			t.Fatalf("%s: build: %v", s.Name, err)
		}
		if net.Classes() != s.Classes {
			t.Fatalf("%s: classes %d, want %d", s.Name, net.Classes(), s.Classes)
		}
	}
}

func TestModelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range append(AllModels(), UnseenModels()...) {
		if seen[s.Name] {
			t.Fatalf("duplicate model name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestSimpleArchitecture(t *testing.T) {
	s := Simple()
	if s.InputShape[0] != 4 || s.Classes != 3 || len(s.Hidden) != 2 || s.Hidden[0] != 6 || s.Hidden[1] != 6 {
		t.Fatalf("Simple spec deviates from §III-B1: %+v", s)
	}
}

func TestMnistSmallArchitecture(t *testing.T) {
	s := MnistSmall()
	if s.InputShape[0] != 784 || s.Hidden[0] != 784 || s.Hidden[1] != 800 || s.Classes != 10 {
		t.Fatalf("MnistSmall spec deviates from §III-B2: %+v", s)
	}
}

func TestMnistDeepArchitecture(t *testing.T) {
	s := MnistDeep()
	want := []int{784, 2500, 2000, 1500, 1000, 500}
	if len(s.Hidden) != 6 {
		t.Fatalf("MnistDeep needs six hidden layers, got %d", len(s.Hidden))
	}
	for i, w := range want {
		if s.Hidden[i] != w {
			t.Fatalf("MnistDeep hidden = %v, want %v", s.Hidden, want)
		}
	}
}

func TestMnistCNNArchitecture(t *testing.T) {
	s := MnistCNN()
	if s.VGGBlocks != 2 || s.ConvsPerBlock != 1 || s.Filters != 32 || s.FilterSize != 3 || s.PoolSize != 2 {
		t.Fatalf("MnistCNN spec deviates from §III-B4: %+v", s)
	}
	if s.Hidden[0] != 128 || s.Classes != 10 {
		t.Fatalf("MnistCNN dense head deviates: %+v", s)
	}
}

func TestCifar10Architecture(t *testing.T) {
	s := Cifar10()
	if s.VGGBlocks != 3 || s.ConvsPerBlock != 2 || s.Filters != 32 || s.FilterSize != 3 || s.PoolSize != 2 {
		t.Fatalf("Cifar10 spec deviates from §III-B5: %+v", s)
	}
}

func TestComputeIntensityOrdering(t *testing.T) {
	// The paper's characterisation relies on Simple ≪ Mnist-Small <
	// Mnist-Deep and Cifar-10 being the most compute-intensive per sample.
	flops := map[string]int64{}
	for _, s := range PaperModels() {
		flops[s.Name] = s.MustBuild(1).FlopsPerSample()
	}
	if !(flops["simple"] < flops["mnist-small"] && flops["mnist-small"] < flops["mnist-deep"]) {
		t.Fatalf("FFNN intensity ordering broken: %v", flops)
	}
	if flops["cifar-10"] <= flops["mnist-cnn"] {
		t.Fatalf("Cifar-10 should outweigh Mnist-CNN: %v", flops)
	}
	if flops["simple"] > 1000 {
		t.Fatalf("Simple should be tiny, got %d flops/sample", flops["simple"])
	}
}

func TestAugmentationCoversParameterAxes(t *testing.T) {
	depths := map[int]bool{}
	widths := map[int]bool{}
	blocks := map[int]bool{}
	convs := map[int]bool{}
	fsizes := map[int]bool{}
	pools := map[int]bool{}
	for _, s := range AugmentationModels() {
		if s.Kind == nn.FFNN {
			depths[len(s.Hidden)] = true
			widths[s.Hidden[0]] = true
		} else {
			blocks[s.VGGBlocks] = true
			convs[s.ConvsPerBlock] = true
			fsizes[s.FilterSize] = true
			pools[s.PoolSize] = true
		}
	}
	if len(depths) < 3 || len(widths) < 2 {
		t.Fatalf("FFNN augmentation too narrow: depths %v widths %v", depths, widths)
	}
	if len(blocks) < 3 || len(convs) < 2 || len(fsizes) < 2 || len(pools) < 2 {
		t.Fatalf("CNN augmentation too narrow: blocks %v convs %v filters %v pools %v", blocks, convs, fsizes, pools)
	}
}

func TestUnseenModelsDisjointFromTraining(t *testing.T) {
	training := map[string]bool{}
	for _, s := range AllModels() {
		training[s.Name] = true
	}
	for _, s := range UnseenModels() {
		if training[s.Name] {
			t.Fatalf("unseen model %q is in the training set", s.Name)
		}
		if !strings.HasPrefix(s.Name, "unseen-") {
			t.Fatalf("unseen model %q should be prefixed for clarity", s.Name)
		}
	}
	// Descriptors must differ too, not just names.
	trainDesc := map[nn.Descriptor]string{}
	for _, s := range AllModels() {
		trainDesc[s.Descriptor()] = s.Name
	}
	for _, s := range UnseenModels() {
		if name, dup := trainDesc[s.Descriptor()]; dup {
			t.Fatalf("unseen model %q duplicates descriptor of training model %q", s.Name, name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("cifar-10")
	if err != nil || s.Name != "cifar-10" {
		t.Fatalf("ByName(cifar-10) = %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown model")
	}
}

func TestSynthesizeShapesAndLabels(t *testing.T) {
	d := Synthesize(MnistCNN(), 30, 1)
	if d.Len() != 30 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.X.Dim(0) != 30 || d.X.Dim(1) != 1 || d.X.Dim(2) != 28 || d.X.Dim(3) != 28 {
		t.Fatalf("X shape = %v", d.X.Shape())
	}
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		if y < 0 || y >= d.Classes {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d unpopulated", c)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(Simple(), 10, 7)
	b := Synthesize(Simple(), 10, 7)
	c := Synthesize(Simple(), 10, 8)
	if !a.X.Equal(b.X) {
		t.Fatal("same seed, different data")
	}
	if a.X.Equal(c.X) {
		t.Fatal("different seed, same data")
	}
}

func TestDatasetBatch(t *testing.T) {
	d := IrisLike(10, 1)
	b := d.Batch(2, 5)
	if b.Dim(0) != 3 || b.Dim(1) != 4 {
		t.Fatalf("Batch shape = %v", b.Shape())
	}
	// Copy semantics: mutating the batch must not touch the dataset.
	b.Data()[0] = 999
	if d.X.At(2, 0) == 999 {
		t.Fatal("Batch should copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad batch range did not panic")
		}
	}()
	d.Batch(5, 3)
}

func TestSyntheticSeparability(t *testing.T) {
	// A dataset with per-class centroids should let even an untrained
	// nearest-centroid rule beat random guessing comfortably — sanity
	// check that the generator produces class structure.
	d := IrisLike(150, 3)
	per := 4
	centroids := make([][]float32, d.Classes)
	counts := make([]int, d.Classes)
	for i := 0; i < d.Len(); i++ {
		c := d.Y[i]
		if centroids[c] == nil {
			centroids[c] = make([]float32, per)
		}
		for j := 0; j < per; j++ {
			centroids[c][j] += d.X.At(i, j)
		}
		counts[c]++
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float32(counts[c])
		}
	}
	correct := 0
	for i := 0; i < d.Len(); i++ {
		best, bestDist := -1, float32(0)
		for c := range centroids {
			var dist float32
			for j := 0; j < per; j++ {
				diff := d.X.At(i, j) - centroids[c][j]
				dist += diff * diff
			}
			if best == -1 || dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == d.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc < 0.8 {
		t.Fatalf("nearest-centroid accuracy %.2f, want ≥0.8 (class structure missing)", acc)
	}
}

func TestDatasetHelpers(t *testing.T) {
	if d := MnistLike(5, 1); d.X.Dim(1) != 784 {
		t.Fatalf("MnistLike shape %v", d.X.Shape())
	}
	if d := MnistImageLike(5, 1); d.X.Rank() != 4 {
		t.Fatalf("MnistImageLike rank %d", d.X.Rank())
	}
	if d := CifarLike(5, 1); d.X.Dim(1) != 3 || d.X.Dim(2) != 32 {
		t.Fatalf("CifarLike shape %v", d.X.Shape())
	}
}
