// Package models defines the paper's workload zoo: the five machine
// learning models of §III-B (Simple/Iris, Mnist-Small, Mnist-Deep,
// Mnist-CNN, Cifar-10), the sixteen additional architectures used for
// data augmentation in §V-B, and deterministic synthetic datasets with
// the same tensor shapes as Iris, MNIST and CIFAR-10.
package models

import (
	"fmt"

	"bomw/internal/nn"
	"bomw/internal/tensor"
)

// Simple is the two-hidden-layer Iris network (§III-B1): 4 features,
// two hidden layers of 6 nodes, 3 classes.
func Simple() *nn.Spec {
	return &nn.Spec{
		Name:       "simple",
		Kind:       nn.FFNN,
		InputShape: []int{4},
		Hidden:     []int{6, 6},
		Classes:    3,
		Act:        tensor.ReLU,
	}
}

// MnistSmall is the two-hidden-layer MNIST network (§III-B2): 784 inputs,
// hidden layers of 784 and 800 nodes, 10 classes.
func MnistSmall() *nn.Spec {
	return &nn.Spec{
		Name:       "mnist-small",
		Kind:       nn.FFNN,
		InputShape: []int{784},
		Hidden:     []int{784, 800},
		Classes:    10,
		Act:        tensor.ReLU,
	}
}

// MnistDeep is the six-hidden-layer MNIST network (§III-B3) with the
// 784-2500-2000-1500-1000-500 formation and a 10-node output layer.
func MnistDeep() *nn.Spec {
	return &nn.Spec{
		Name:       "mnist-deep",
		Kind:       nn.FFNN,
		InputShape: []int{784},
		Hidden:     []int{784, 2500, 2000, 1500, 1000, 500},
		Classes:    10,
		Act:        tensor.ReLU,
	}
}

// MnistCNN is the two-VGG-block MNIST CNN (§III-B4): one 3×3×32
// convolution plus one 2×2 pooling per block, a 128-node dense layer and
// a 10-node output.
func MnistCNN() *nn.Spec {
	return &nn.Spec{
		Name:          "mnist-cnn",
		Kind:          nn.CNN,
		InputShape:    []int{1, 28, 28},
		Hidden:        []int{128},
		Classes:       10,
		Act:           tensor.ReLU,
		VGGBlocks:     2,
		ConvsPerBlock: 1,
		Filters:       32,
		FilterSize:    3,
		PoolSize:      2,
		SamePad:       true,
	}
}

// Cifar10 is the three-VGG-block CIFAR-10 CNN (§III-B5): two 3×3×32
// convolutions plus one 2×2 pooling per block, a 128-node dense layer and
// a 10-node output.
func Cifar10() *nn.Spec {
	return &nn.Spec{
		Name:          "cifar-10",
		Kind:          nn.CNN,
		InputShape:    []int{3, 32, 32},
		Hidden:        []int{128},
		Classes:       10,
		Act:           tensor.ReLU,
		VGGBlocks:     3,
		ConvsPerBlock: 2,
		Filters:       32,
		FilterSize:    3,
		PoolSize:      2,
		SamePad:       true,
	}
}

// PaperModels returns the five evaluation models of §III-B in paper order.
func PaperModels() []*nn.Spec {
	return []*nn.Spec{Simple(), MnistSmall(), MnistDeep(), MnistCNN(), Cifar10()}
}

// AugmentationModels returns the sixteen extra architectures measured in
// §V-B to augment the scheduler's training data. Eight FFNNs span the
// (depth × layer size) space and eight CNNs span (VGG blocks ×
// convolutions per block × filter size × pooling size).
func AugmentationModels() []*nn.Spec {
	var specs []*nn.Spec
	// FFNNs: depth ∈ {1,2,4,6}, width ∈ {32, 1024}.
	for _, depth := range []int{1, 2, 4, 6} {
		for _, width := range []int{32, 1024} {
			hidden := make([]int, depth)
			for i := range hidden {
				hidden[i] = width
			}
			specs = append(specs, &nn.Spec{
				Name:       fmt.Sprintf("aug-ffnn-d%d-w%d", depth, width),
				Kind:       nn.FFNN,
				InputShape: []int{256},
				Hidden:     hidden,
				Classes:    10,
				Act:        tensor.ReLU,
			})
		}
	}
	// CNNs: (blocks, convs/block, filter, pool) combinations covering each
	// parameter axis of §V-B.
	type cnnCfg struct {
		blocks, convs, filters, fsize, pool int
	}
	for _, c := range []cnnCfg{
		{1, 1, 16, 3, 2},
		{1, 2, 16, 3, 2},
		{2, 1, 16, 5, 2},
		{2, 2, 32, 3, 2},
		{3, 1, 32, 3, 2},
		{3, 2, 16, 3, 2},
		{2, 1, 32, 3, 4},
		{1, 1, 64, 7, 2},
	} {
		specs = append(specs, &nn.Spec{
			Name: fmt.Sprintf("aug-cnn-b%d-c%d-f%d-k%d-p%d",
				c.blocks, c.convs, c.filters, c.fsize, c.pool),
			Kind:          nn.CNN,
			InputShape:    []int{3, 32, 32},
			Hidden:        []int{64},
			Classes:       10,
			Act:           tensor.ReLU,
			VGGBlocks:     c.blocks,
			ConvsPerBlock: c.convs,
			Filters:       c.filters,
			FilterSize:    c.fsize,
			PoolSize:      c.pool,
			SamePad:       true,
		})
	}
	return specs
}

// AllModels returns the 21 measured architectures (5 paper + 16
// augmentation) that produce the scheduler's 1480-sample training set.
func AllModels() []*nn.Spec {
	return append(PaperModels(), AugmentationModels()...)
}

// UnseenModels returns architectures excluded from every training sweep;
// Fig. 6 and the "models never seen before" accuracy of §VI are evaluated
// on these.
func UnseenModels() []*nn.Spec {
	return []*nn.Spec{
		{
			Name:       "unseen-ffnn-wide",
			Kind:       nn.FFNN,
			InputShape: []int{512},
			Hidden:     []int{1500, 700, 300},
			Classes:    10,
			Act:        tensor.ReLU,
		},
		{
			Name:       "unseen-ffnn-tiny",
			Kind:       nn.FFNN,
			InputShape: []int{16},
			Hidden:     []int{12, 8},
			Classes:    4,
			Act:        tensor.ReLU,
		},
		{
			Name:          "unseen-cnn-mid",
			Kind:          nn.CNN,
			InputShape:    []int{3, 28, 28},
			Hidden:        []int{96},
			Classes:       10,
			Act:           tensor.ReLU,
			VGGBlocks:     2,
			ConvsPerBlock: 2,
			Filters:       24,
			FilterSize:    3,
			PoolSize:      2,
			SamePad:       true,
		},
		{
			Name:          "unseen-cnn-deep",
			Kind:          nn.CNN,
			InputShape:    []int{3, 48, 48},
			Hidden:        []int{128, 64},
			Classes:       10,
			Act:           tensor.ReLU,
			VGGBlocks:     3,
			ConvsPerBlock: 1,
			Filters:       48,
			FilterSize:    3,
			PoolSize:      2,
			SamePad:       true,
		},
	}
}

// ByName returns the spec with the given name from the union of paper,
// augmentation and unseen models.
func ByName(name string) (*nn.Spec, error) {
	for _, s := range append(AllModels(), UnseenModels()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}
