package models

import (
	"fmt"
	"math/rand"

	"bomw/internal/nn"
	"bomw/internal/tensor"
)

// Dataset is a labelled batch of samples in the input shape of one model.
// Synthetic datasets substitute for Iris, MNIST and CIFAR-10: inference
// *performance* (the quantity the paper evaluates) depends only on tensor
// shapes, but the samples still carry per-class structure so that
// end-to-end classification demos behave sensibly.
type Dataset struct {
	Name    string
	X       *tensor.Tensor // [n, sampleShape...]
	Y       []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Batch returns a view-free copy of samples [lo, hi).
func (d *Dataset) Batch(lo, hi int) *tensor.Tensor {
	if lo < 0 || hi > d.Len() || lo >= hi {
		panic(fmt.Sprintf("models: bad batch range [%d,%d) of %d", lo, hi, d.Len()))
	}
	per := d.X.Len() / d.Len()
	shape := append([]int{hi - lo}, d.X.Shape()[1:]...)
	out := tensor.New(shape...)
	copy(out.Data(), d.X.Data()[lo*per:hi*per])
	return out
}

// Synthesize generates n deterministic samples shaped for the given model
// spec. Each class is a Gaussian cluster around a class-specific centroid,
// so simple models can separate them; labels cycle through the classes so
// every class is populated.
func Synthesize(spec *nn.Spec, n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	shape := append([]int{n}, spec.InputShape...)
	x := tensor.New(shape...)
	y := make([]int, n)
	per := x.Len() / n

	// One centroid pattern per class, fixed by the seed.
	centroids := make([][]float32, spec.Classes)
	for c := range centroids {
		centroids[c] = make([]float32, per)
		for i := range centroids[c] {
			centroids[c][i] = rng.Float32()
		}
	}
	data := x.Data()
	for i := 0; i < n; i++ {
		c := i % spec.Classes
		y[i] = c
		row := data[i*per : (i+1)*per]
		for j := range row {
			row[j] = centroids[c][j] + 0.15*float32(rng.NormFloat64())
		}
	}
	return &Dataset{Name: spec.Name, X: x, Y: y, Classes: spec.Classes}
}

// IrisLike returns a 4-feature, 3-class dataset shaped like the UCI Iris
// data used to train the Simple model.
func IrisLike(n int, seed int64) *Dataset { return Synthesize(Simple(), n, seed) }

// MnistLike returns 784-feature, 10-class rows shaped like flattened MNIST
// digits.
func MnistLike(n int, seed int64) *Dataset { return Synthesize(MnistSmall(), n, seed) }

// MnistImageLike returns [1,28,28] 10-class images for the CNN models.
func MnistImageLike(n int, seed int64) *Dataset { return Synthesize(MnistCNN(), n, seed) }

// CifarLike returns [3,32,32] 10-class images shaped like CIFAR-10.
func CifarLike(n int, seed int64) *Dataset { return Synthesize(Cifar10(), n, seed) }
