package lint

import (
	"go/ast"
)

// ctxparam enforces the standard context discipline the pipeline's
// cancellation semantics depend on: a context.Context is passed down
// call chains as the first parameter, never parked in a struct field
// where it outlives the request that created it. The one blessed
// exception — a request object that *is* the unit of per-request state,
// like pipeReq — opts out with //bomw:ctxparam and a justification.
var analyzerCtxparam = &Analyzer{
	Name: "ctxparam",
	Doc: "no context.Context in struct fields; where a function takes a ctx it must be\n" +
		"the first parameter",
	Run: runCtxparam,
}

func runCtxparam(pass *Pass) error {
	for _, f := range pass.Files() {
		ctxName, ok := importName(f.AST, "context")
		if !ok {
			continue
		}
		isCtxType := func(e ast.Expr) bool {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Context" {
				return false
			}
			id, ok := sel.X.(*ast.Ident)
			return ok && id.Name == ctxName && identIsPackage(pass, id)
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StructType:
				for _, field := range x.Fields.List {
					if !isCtxType(field.Type) {
						continue
					}
					name := "embedded field"
					if len(field.Names) > 0 {
						name = "field " + field.Names[0].Name
					}
					pass.Reportf(field.Pos(),
						"context.Context stored in struct %s: contexts are call-scoped — pass ctx as the first parameter (request carriers may opt out with //bomw:ctxparam <why>)",
						name)
				}
			case *ast.FuncType:
				if x.Params == nil {
					return true
				}
				pos := 0
				for _, field := range x.Params.List {
					n := len(field.Names)
					if n == 0 {
						n = 1
					}
					if isCtxType(field.Type) && pos != 0 {
						pass.Reportf(field.Pos(),
							"context.Context is not the first parameter: ctx leads the signature by convention, so call sites and wrappers stay uniform")
					}
					pos += n
				}
			}
			return true
		})
	}
	return nil
}
