package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// senterr keeps the error-handling contract of the serving path intact:
// sentinel errors (ErrDeadlineInfeasible, ErrNoEligibleDevice,
// ErrAdmissionFull, ...) travel wrapped — `fmt.Errorf("%w: ...", Err...)`
// — so callers must compare with errors.Is; an == comparison silently
// stops matching the moment anyone adds context to the chain, and a
// sentinel formatted with %v/%s instead of %w breaks every errors.Is
// caller downstream (the HTTP status mapping, the pipeline's shed
// accounting).
var analyzerSenterr = &Analyzer{
	Name: "senterr",
	Doc: "sentinel errors (Err* variables) must be compared with errors.Is, never ==/!=,\n" +
		"and wrapped with %w when passed to fmt.Errorf",
	Run: runSenterr,
}

// sentinelRe matches the conventional exported/unexported sentinel
// names: Err followed by an upper-case letter (ErrFoo), or errFoo.
var sentinelRe = regexp.MustCompile(`^(Err|err)[A-Z]`)

func runSenterr(pass *Pass) error {
	for _, f := range pass.Files() {
		fmtName, hasFmt := importName(f.AST, "fmt")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if isNilIdent(x.X) || isNilIdent(x.Y) {
					return true // err != nil and friends are fine
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if name, ok := sentinelName(side); ok {
						pass.Reportf(x.OpPos,
							"sentinel error %s compared with %s: use errors.Is so wrapped chains still match",
							name, x.Op)
						break
					}
				}
			case *ast.CallExpr:
				if !hasFmt {
					return true
				}
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Errorf" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != fmtName || !identIsPackage(pass, id) {
					return true
				}
				checkErrorfWrap(pass, x)
			}
			return true
		})
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// sentinelName reports whether the expression names a sentinel error
// variable (bare or package-qualified).
func sentinelName(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if sentinelRe.MatchString(x.Name) {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && sentinelRe.MatchString(x.Sel.Name) {
			return id.Name + "." + x.Sel.Name, true
		}
	}
	return "", false
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel error
// argument without a %w verb in the format string.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if name, ok := sentinelName(arg); ok {
			pass.Reportf(arg.Pos(),
				"sentinel error %s passed to fmt.Errorf without %%w: the chain breaks and errors.Is callers stop matching",
				name)
		}
	}
}
