package lint

import (
	"go/token"
	"go/types"
)

// Synthetic stdlib packages for the best-effort type checker.
//
// The stub importer prefers real gc export data, but on toolchains or
// runners without precompiled stdlib export files the gc importer fails
// and every stdlib import used to degrade to an *empty* stub package.
// That silently blinded type-driven analyzers on exactly the packages
// the concurrency rules care about: a struct holding an atomic.Int64 or
// a sync.Mutex would fail to type-check, so Info carried no types for
// its fields and the atomics/goleak/lockorder analyzers saw nothing.
//
// syntheticPkg hand-builds the generic-free slices of sync and
// sync/atomic that the analyzers need to resolve: the typed atomics
// (atomic.Bool/Int32/Int64/Uint32/Uint64/Uintptr/Value) with their
// method sets, the classic function-style atomics (AddInt64, LoadInt64,
// CompareAndSwapInt64, ...), and sync.Mutex/RWMutex/WaitGroup/Once/
// Pool/Map/Locker. atomic.Pointer[T] is deliberately absent — the
// checker handles unresolved generics no worse than an empty stub, and
// nothing in the analyzed invariants needs it.
func syntheticPkg(path string) *types.Package {
	switch path {
	case "sync/atomic":
		return buildSyntheticAtomic()
	case "sync":
		return buildSyntheticSync()
	}
	return nil
}

// pkgBuilder accumulates declarations into a synthetic package.
type pkgBuilder struct {
	pkg *types.Package
}

func newPkgBuilder(path, name string) *pkgBuilder {
	return &pkgBuilder{pkg: types.NewPackage(path, name)}
}

func (b *pkgBuilder) finish() *types.Package {
	b.pkg.MarkComplete()
	return b.pkg
}

// namedStruct declares an empty named struct type in the package.
func (b *pkgBuilder) namedStruct(name string) *types.Named {
	tn := types.NewTypeName(token.NoPos, b.pkg, name, nil)
	named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	b.pkg.Scope().Insert(tn)
	return named
}

// method attaches a pointer-receiver method to a named type.
func (b *pkgBuilder) method(named *types.Named, name string, params, results []*types.Var) {
	recv := types.NewVar(token.NoPos, b.pkg, "x", types.NewPointer(named))
	sig := types.NewSignatureType(recv, nil, nil,
		types.NewTuple(params...), types.NewTuple(results...), false)
	named.AddMethod(types.NewFunc(token.NoPos, b.pkg, name, sig))
}

// fn declares a package-level function.
func (b *pkgBuilder) fn(name string, params, results []*types.Var) {
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(params...), types.NewTuple(results...), false)
	b.pkg.Scope().Insert(types.NewFunc(token.NoPos, b.pkg, name, sig))
}

func (b *pkgBuilder) v(name string, t types.Type) *types.Var {
	return types.NewVar(token.NoPos, b.pkg, name, t)
}

func buildSyntheticAtomic() *types.Package {
	b := newPkgBuilder("sync/atomic", "atomic")
	anyT := types.NewInterfaceType(nil, nil)
	anyT.Complete()

	// Typed atomics: Bool, Int32, Int64, Uint32, Uint64, Uintptr with
	// Load/Store/Swap/CompareAndSwap (+ Add, And, Or on the integers).
	scalar := map[string]types.Type{
		"Bool":    types.Typ[types.Bool],
		"Int32":   types.Typ[types.Int32],
		"Int64":   types.Typ[types.Int64],
		"Uint32":  types.Typ[types.Uint32],
		"Uint64":  types.Typ[types.Uint64],
		"Uintptr": types.Typ[types.Uintptr],
	}
	for name, elem := range scalar {
		named := b.namedStruct(name)
		b.method(named, "Load", nil, []*types.Var{b.v("", elem)})
		b.method(named, "Store", []*types.Var{b.v("val", elem)}, nil)
		b.method(named, "Swap", []*types.Var{b.v("new", elem)}, []*types.Var{b.v("old", elem)})
		b.method(named, "CompareAndSwap",
			[]*types.Var{b.v("old", elem), b.v("new", elem)},
			[]*types.Var{b.v("swapped", types.Typ[types.Bool])})
		if name != "Bool" {
			b.method(named, "Add", []*types.Var{b.v("delta", elem)}, []*types.Var{b.v("new", elem)})
			b.method(named, "And", []*types.Var{b.v("mask", elem)}, []*types.Var{b.v("old", elem)})
			b.method(named, "Or", []*types.Var{b.v("mask", elem)}, []*types.Var{b.v("old", elem)})
		}
	}
	value := b.namedStruct("Value")
	b.method(value, "Load", nil, []*types.Var{b.v("val", anyT)})
	b.method(value, "Store", []*types.Var{b.v("val", anyT)}, nil)
	b.method(value, "Swap", []*types.Var{b.v("new", anyT)}, []*types.Var{b.v("old", anyT)})
	b.method(value, "CompareAndSwap",
		[]*types.Var{b.v("old", anyT), b.v("new", anyT)},
		[]*types.Var{b.v("swapped", types.Typ[types.Bool])})

	// Function-style atomics over plain integer words.
	words := map[string]types.Type{
		"Int32":   types.Typ[types.Int32],
		"Int64":   types.Typ[types.Int64],
		"Uint32":  types.Typ[types.Uint32],
		"Uint64":  types.Typ[types.Uint64],
		"Uintptr": types.Typ[types.Uintptr],
	}
	for suffix, elem := range words {
		ptr := types.NewPointer(elem)
		b.fn("Add"+suffix,
			[]*types.Var{b.v("addr", ptr), b.v("delta", elem)},
			[]*types.Var{b.v("new", elem)})
		b.fn("Load"+suffix,
			[]*types.Var{b.v("addr", ptr)},
			[]*types.Var{b.v("val", elem)})
		b.fn("Store"+suffix,
			[]*types.Var{b.v("addr", ptr), b.v("val", elem)}, nil)
		b.fn("Swap"+suffix,
			[]*types.Var{b.v("addr", ptr), b.v("new", elem)},
			[]*types.Var{b.v("old", elem)})
		b.fn("CompareAndSwap"+suffix,
			[]*types.Var{b.v("addr", ptr), b.v("old", elem), b.v("new", elem)},
			[]*types.Var{b.v("swapped", types.Typ[types.Bool])})
	}
	return b.finish()
}

func buildSyntheticSync() *types.Package {
	b := newPkgBuilder("sync", "sync")
	anyT := types.NewInterfaceType(nil, nil)
	anyT.Complete()
	boolT := types.Typ[types.Bool]

	mutex := b.namedStruct("Mutex")
	b.method(mutex, "Lock", nil, nil)
	b.method(mutex, "Unlock", nil, nil)
	b.method(mutex, "TryLock", nil, []*types.Var{b.v("", boolT)})

	// Locker is the interface Mutex and RWMutex satisfy.
	lockSig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	locker := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, b.pkg, "Lock", lockSig),
		types.NewFunc(token.NoPos, b.pkg, "Unlock", lockSig),
	}, nil)
	locker.Complete()
	lockerTN := types.NewTypeName(token.NoPos, b.pkg, "Locker", nil)
	types.NewNamed(lockerTN, locker, nil)
	b.pkg.Scope().Insert(lockerTN)

	rw := b.namedStruct("RWMutex")
	b.method(rw, "Lock", nil, nil)
	b.method(rw, "Unlock", nil, nil)
	b.method(rw, "RLock", nil, nil)
	b.method(rw, "RUnlock", nil, nil)
	b.method(rw, "TryLock", nil, []*types.Var{b.v("", boolT)})
	b.method(rw, "TryRLock", nil, []*types.Var{b.v("", boolT)})
	b.method(rw, "RLocker", nil, []*types.Var{b.v("", lockerTN.Type())})

	wg := b.namedStruct("WaitGroup")
	b.method(wg, "Add", []*types.Var{b.v("delta", types.Typ[types.Int])}, nil)
	b.method(wg, "Done", nil, nil)
	b.method(wg, "Wait", nil, nil)

	once := b.namedStruct("Once")
	fnSig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	b.method(once, "Do", []*types.Var{b.v("f", fnSig)}, nil)

	pool := b.namedStruct("Pool")
	// Pool.New is a struct field; rebuild Pool's underlying with it.
	newField := types.NewField(token.NoPos, b.pkg, "New",
		types.NewSignatureType(nil, nil, nil, nil, types.NewTuple(b.v("", anyT)), false), false)
	pool.SetUnderlying(types.NewStruct([]*types.Var{newField}, []string{""}))
	b.method(pool, "Get", nil, []*types.Var{b.v("", anyT)})
	b.method(pool, "Put", []*types.Var{b.v("x", anyT)}, nil)

	m := b.namedStruct("Map")
	b.method(m, "Load", []*types.Var{b.v("key", anyT)},
		[]*types.Var{b.v("value", anyT), b.v("ok", boolT)})
	b.method(m, "Store", []*types.Var{b.v("key", anyT), b.v("value", anyT)}, nil)
	b.method(m, "Delete", []*types.Var{b.v("key", anyT)}, nil)
	b.method(m, "LoadOrStore", []*types.Var{b.v("key", anyT), b.v("value", anyT)},
		[]*types.Var{b.v("actual", anyT), b.v("loaded", boolT)})

	cond := b.namedStruct("Cond")
	b.method(cond, "Wait", nil, nil)
	b.method(cond, "Signal", nil, nil)
	b.method(cond, "Broadcast", nil, nil)

	return b.finish()
}
