package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockscope enforces the pipeline's deadlock invariant: a mutex
// acquired in a function must not be held across a blocking operation —
// a channel send or receive, a blocking select, a Wait call
// (Future.Wait, WaitGroup.Wait), or another lock acquisition. The
// serving path holds its locks for bookkeeping only; anything that can
// park the goroutine while a lock is held can wedge admission, drain,
// and every worker behind it.
//
// The analysis walks each function body linearly over the shared
// flowWalk, tracking mutexes locked directly in that function (x.Lock /
// x.RLock up to the matching Unlock, or function end for defer
// x.Unlock). It is intraprocedural and optimistic at branch merges: a
// branch that unlocks and falls through clears the lock, and function
// literals are analyzed as their own functions (a closure runs later,
// not under the caller's locks). A select with a default case is
// non-blocking and allowed.
var analyzerLockscope = &Analyzer{
	Name: "lockscope",
	Doc: "forbid blocking operations (channel send/receive, blocking select, Wait,\n" +
		"another Lock) while a mutex is held",
	Run: runLockscope,
}

// heldLock is one directly-acquired mutex not yet released.
type heldLock struct {
	key      string // rendered receiver, e.g. "s.mu"
	pos      token.Pos
	deferred bool // released by defer: held to function end
}

func runLockscope(pass *Pass) error {
	for _, f := range pass.Files() {
		forEachFuncBody(f.AST, func(body *ast.BlockStmt) {
			lockWalk(body, func(stmt ast.Stmt, held []heldLock) {
				if len(held) == 0 {
					return
				}
				checkBlockingStmt(pass, stmt, held)
			})
		})
	}
	return nil
}

// lockCallKind classifies a call as a mutex operation on a receiver.
func lockCallKind(call *ast.CallExpr) (key string, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), "lock"
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), "unlock"
	}
	return "", ""
}

// lockState is the flowWalk fact for lock tracking: the set of mutexes
// held at the current program point.
type lockState struct {
	held []heldLock
}

func (s *lockState) clone() *lockState {
	return &lockState{held: append([]heldLock(nil), s.held...)}
}

func (s *lockState) set(other *lockState) {
	s.held = append(s.held[:0:0], other.held...)
}

// meet keeps only locks present in both states (optimistic merge after
// a branch both arms of which may or may not have run).
func (s *lockState) meet(other *lockState) {
	keys := map[string]bool{}
	for _, h := range other.held {
		keys[h.key] = true
	}
	out := s.held[:0]
	for _, h := range s.held {
		if keys[h.key] {
			out = append(out, h)
		}
	}
	s.held = out
}

// lockEffect applies a statement's lock transition: a direct Lock/RLock
// call acquires, Unlock/RUnlock releases, and defer Unlock marks the
// lock held to function end.
func lockEffect(stmt ast.Stmt, s *lockState) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, kind := lockCallKind(call); key != "" {
				switch kind {
				case "lock":
					s.held = append(s.held, heldLock{key: key, pos: call.Pos()})
				case "unlock":
					out := s.held[:0]
					for _, h := range s.held {
						if h.key != key {
							out = append(out, h)
						}
					}
					s.held = out
				}
			}
		}
	case *ast.DeferStmt:
		if key, kind := lockCallKind(st.Call); kind == "unlock" {
			for i := range s.held {
				if s.held[i].key == key {
					s.held[i].deferred = true
				}
			}
		}
	}
}

// lockWalk runs visit over every statement of the body with the set of
// mutexes held at that point (before the statement's own effect).
func lockWalk(body *ast.BlockStmt, visit func(ast.Stmt, []heldLock)) {
	flowWalk(body, &lockState{},
		func(stmt ast.Stmt, s *lockState) { visit(stmt, s.held) },
		lockEffect)
}

// ---- blocking-operation checks ----------------------------------------

// checkBlockingStmt flags blocking operations in the statement's own
// expressions while locks are held. Nested statements get their own
// visit calls from the walker, and function literals run later — both
// are skipped here.
func checkBlockingStmt(pass *Pass, stmt ast.Stmt, held []heldLock) {
	holder := held[len(held)-1].key
	switch s := stmt.(type) {
	case *ast.SendStmt:
		pass.Reportf(s.Arrow, "channel send while mutex %s is held: a blocked send wedges every goroutine waiting on the lock", holder)
		checkBlockingExprs(pass, holder, held, s.Chan, s.Value)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			pass.Reportf(s.Select, "blocking select while mutex %s is held (a default case would make it non-blocking)", holder)
		}
	case *ast.ExprStmt:
		checkBlockingExprs(pass, holder, held, s.X)
	case *ast.AssignStmt:
		checkBlockingExprs(pass, holder, held, append(append([]ast.Expr{}, s.Lhs...), s.Rhs...)...)
	case *ast.ReturnStmt:
		checkBlockingExprs(pass, holder, held, s.Results...)
	case *ast.IfStmt:
		checkBlockingExprs(pass, holder, held, s.Cond)
	case *ast.ForStmt:
		if s.Cond != nil {
			checkBlockingExprs(pass, holder, held, s.Cond)
		}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			checkBlockingExprs(pass, holder, held, s.Tag)
		}
	case *ast.RangeStmt:
		checkBlockingExprs(pass, holder, held, s.X)
	case *ast.DeferStmt, *ast.GoStmt:
		// The call runs later (or concurrently), not under these locks.
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

func checkBlockingExprs(pass *Pass, holder string, held []heldLock, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false // analyzed as its own function
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					pass.Reportf(x.OpPos, "channel receive while mutex %s is held: a blocked receive wedges every goroutine waiting on the lock", holder)
				}
			case *ast.CallExpr:
				if key, kind := lockCallKind(x); kind == "lock" {
					for _, h := range held {
						if h.key == key {
							pass.Reportf(x.Pos(), "mutex %s re-acquired while already held: guaranteed self-deadlock", key)
							return true
						}
					}
					pass.Reportf(x.Pos(), "mutex %s acquired while %s is held: nested locking across scopes invites lock-order deadlocks", key, holder)
				} else if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
					pass.Reportf(x.Pos(), "blocking %s.Wait call while mutex %s is held", types.ExprString(sel.X), holder)
				}
			}
			return true
		})
	}
}
