// Package lint is bomw's project-specific static-analysis framework:
// a small, stdlib-only (go/ast + go/parser + go/types, no x/tools)
// analyzer harness that mechanically enforces the simulator's
// correctness invariants — the rules `go vet` cannot see:
//
//   - wallclock: virtual-clock packages must not read the wall clock
//   - lockscope: a held mutex must not span a blocking operation
//   - counters:  Stats/PipelineStats fields mutate only under the
//     owner's mutex, inside the owner's methods
//   - senterr:   sentinel errors compare with errors.Is and wrap with %w
//   - ctxparam:  no context.Context in struct fields; ctx comes first
//   - atomics:   a field accessed via sync/atomic anywhere is accessed
//     atomically everywhere; no CAS retry loop under a held mutex
//   - poollife:  pooled carriers are never touched after retirement,
//     never double-released, and Put only in designated recyclers
//   - goleak:    every go statement in the serving packages shows a
//     visible termination path (WaitGroup ownership or a quit guard)
//   - lockorder: the package-level mutex acquisition graph is acyclic
//
// Intentional exceptions opt out with a justified directive comment
// attached to the flagged line (same line or the line directly above):
//
//	//bomw:wallclock DecisionTime measures real classification cost
//
// A directive must name the analyzer it silences and carry a non-empty
// justification; a directive that silences nothing, or one without a
// justification, is itself reported — annotations cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation at a file position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`

	// Related holds the finding's other positions — a lockorder cycle
	// reports every edge, not just the first. A //bomw: directive at any
	// related position silences the finding exactly like one at the
	// primary position (cross-file cycles can be justified where the
	// exception actually lives).
	Related []Related `json:"related,omitempty"`
}

// Related is one secondary position of a multi-site finding.
type Related struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Note string `json:"note,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// IncludeTests extends the run to _test.go files (off by default:
	// the invariants target production code; tests may legitimately
	// spin wall clocks and poke internals).
	IncludeTests bool

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportRelated records a finding that spans several positions (e.g. a
// lock-order cycle: one edge per position). The first position is the
// primary; the rest become Related, and a directive at any of them
// silences the whole finding.
func (p *Pass) ReportRelated(positions []token.Pos, notes []string, format string, args ...interface{}) {
	if len(positions) == 0 {
		return
	}
	primary := p.Pkg.Fset.Position(positions[0])
	f := Finding{
		Analyzer: p.Analyzer.Name,
		File:     primary.Filename,
		Line:     primary.Line,
		Col:      primary.Column,
		Message:  fmt.Sprintf(format, args...),
	}
	for i, pos := range positions[1:] {
		rp := p.Pkg.Fset.Position(pos)
		rel := Related{File: rp.Filename, Line: rp.Line, Col: rp.Column}
		if i+1 < len(notes) {
			rel.Note = notes[i+1]
		}
		f.Related = append(f.Related, rel)
	}
	p.report(f)
}

// Files yields the files this pass analyzes (test files only when
// IncludeTests is set).
func (p *Pass) Files() []*File {
	var out []*File
	for _, f := range p.Pkg.Files {
		if f.Test && !p.IncludeTests {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Analyzer is one named rule with a run function.
type Analyzer struct {
	// Name identifies the analyzer in findings, directives and the
	// CLI's enable/disable flags. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description `bomwvet -list` prints.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// All returns every registered analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerWallclock,
		analyzerLockscope,
		analyzerCounters,
		analyzerSenterr,
		analyzerCtxparam,
		analyzerAtomics,
		analyzerPoollife,
		analyzerGoleak,
		analyzerLockorder,
	}
}

// ByName resolves analyzer names (comma-tolerant, case-sensitive).
func ByName(names []string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ---- directives --------------------------------------------------------

// directivePrefix opens an opt-out comment: //bomw:<analyzer> <reason>.
const directivePrefix = "//bomw:"

var directiveRe = regexp.MustCompile(`^//bomw:([a-z][a-z0-9]*)(?:[ \t](.*))?$`)

// directive is one parsed //bomw: opt-out comment.
type directive struct {
	name          string // analyzer it silences
	justification string
	file          string
	line          int
	col           int
	used          bool // silenced at least one finding
}

// parseDirectives extracts every //bomw: directive from a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				// Malformed (e.g. "//bomw: wallclock" with a space):
				// surface it instead of silently ignoring.
				out = append(out, &directive{name: "", file: pos.Filename, line: pos.Line, col: pos.Column})
				continue
			}
			out = append(out, &directive{
				name:          m[1],
				justification: strings.TrimSpace(m[2]),
				file:          pos.Filename,
				line:          pos.Line,
				col:           pos.Column,
			})
		}
	}
	return out
}

// RunOptions parameterises Run.
type RunOptions struct {
	// IncludeTests analyzes _test.go files too.
	IncludeTests bool
}

// Suppression records one finding a justified //bomw: directive
// silenced — bomwvet -why surfaces these so a suppression is auditable,
// and for multi-position findings (lockorder cycles) it names which
// edge the directive cleared.
type Suppression struct {
	Finding Finding `json:"finding"`
	// Directive position.
	DirFile string `json:"dir_file"`
	DirLine int    `json:"dir_line"`
	// ClearedAt describes the position the directive attached to:
	// "primary" or "edge N of M" for a related position.
	ClearedAt string `json:"cleared_at"`
}

// Result is RunAll's full outcome: the surviving findings plus the
// suppressions justified directives applied.
type Result struct {
	Findings     []Finding
	Suppressions []Suppression
}

// Run executes the analyzers over the packages, applies directive
// suppression, and returns the surviving findings sorted by position.
// Analyzer run errors are returned after the findings collected so far.
func Run(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Finding, error) {
	res, err := RunAll(pkgs, analyzers, opts)
	return res.Findings, err
}

// RunAll is Run plus the suppression log.
func RunAll(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) (Result, error) {
	var raw []Finding
	enabled := map[string]bool{}
	for _, az := range analyzers {
		enabled[az.Name] = true
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:     az,
				Pkg:          pkg,
				IncludeTests: opts.IncludeTests,
				report:       func(f Finding) { raw = append(raw, f) },
			}
			if err := az.Run(pass); err != nil {
				return Result{Findings: sortFindings(raw)}, fmt.Errorf("lint: %s on %s: %w", az.Name, pkg.Rel, err)
			}
		}
	}

	// Gather directives from every analyzed file.
	var directives []*directive
	byFileLine := map[string][]*directive{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Test && !opts.IncludeTests {
				continue
			}
			for _, d := range parseDirectives(pkg.Fset, f.AST) {
				directives = append(directives, d)
				byFileLine[fmt.Sprintf("%s:%d", d.file, d.line)] = append(byFileLine[fmt.Sprintf("%s:%d", d.file, d.line)], d)
			}
		}
	}

	// Suppression: a justified directive naming the finding's analyzer,
	// on the finding's line or the line directly above it, silences it.
	// Multi-position findings (lockorder cycles) accept the directive at
	// the primary position or at any related edge — the justification
	// lives where the exception does, which may be another file.
	var res Result
	var out []Finding
	for _, f := range raw {
		if d, clearedAt := matchDirective(byFileLine, f); d != nil {
			d.used = true
			if d.justification == "" {
				out = append(out, Finding{
					Analyzer: f.Analyzer,
					File:     d.file,
					Line:     d.line,
					Col:      d.col,
					Message:  fmt.Sprintf("//bomw:%s directive needs a justification (why is this exception sound?)", f.Analyzer),
				})
				continue
			}
			res.Suppressions = append(res.Suppressions, Suppression{
				Finding:   f,
				DirFile:   d.file,
				DirLine:   d.line,
				ClearedAt: clearedAt,
			})
			continue
		}
		out = append(out, f)
	}

	// A directive that silenced nothing is stale: the code it excused
	// changed, or it was never attached to the flagged statement.
	for _, d := range directives {
		if d.name == "" {
			out = append(out, Finding{
				Analyzer: "directive",
				File:     d.file,
				Line:     d.line,
				Col:      d.col,
				Message:  "malformed //bomw: directive (want //bomw:<analyzer> <justification>)",
			})
			continue
		}
		if !enabled[d.name] {
			continue // its analyzer did not run; cannot judge
		}
		if !d.used {
			out = append(out, Finding{
				Analyzer: d.name,
				File:     d.file,
				Line:     d.line,
				Col:      d.col,
				Message:  fmt.Sprintf("unused //bomw:%s directive: nothing on this line or the next is flagged", d.name),
			})
		}
	}
	res.Findings = sortFindings(out)
	return res, nil
}

// matchDirective finds a directive attached to the finding — same line
// or the line directly above, at the primary position or any related
// one — and describes which position it cleared.
func matchDirective(byFileLine map[string][]*directive, f Finding) (*directive, string) {
	if d := matchDirectiveAt(byFileLine, f.Analyzer, f.File, f.Line); d != nil {
		return d, "primary"
	}
	for i, rel := range f.Related {
		if d := matchDirectiveAt(byFileLine, f.Analyzer, rel.File, rel.Line); d != nil {
			return d, fmt.Sprintf("edge %d of %d (%s:%d)", i+2, len(f.Related)+1, rel.File, rel.Line)
		}
	}
	return nil, ""
}

func matchDirectiveAt(byFileLine map[string][]*directive, analyzer, file string, line int) *directive {
	for _, ln := range []int{line, line - 1} {
		for _, d := range byFileLine[fmt.Sprintf("%s:%d", file, ln)] {
			if d.name == analyzer {
				return d
			}
		}
	}
	return nil
}

func sortFindings(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
	return fs
}
