package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomics enforces the hot path's memory-discipline invariant: a field
// the package ever touches through sync/atomic must be touched through
// sync/atomic everywhere. The rules, accumulated package-wide (a plain
// read in one file races an atomic write in another — intraprocedural
// checking cannot see it):
//
//  1. mixed access — a struct field that is the address argument of a
//     function-style atomic (atomic.AddInt64(&s.f, ...), LoadInt64,
//     StoreUint32, CompareAndSwapInt64, ...) anywhere in the package
//     must not be read or written plainly anywhere else. The owner's
//     constructor (a function whose name starts with New/new, or the
//     composite literal building the struct) is exempt: before the
//     value escapes, no other goroutine can observe it.
//  2. typed overwrite — a field of a typed atomic (atomic.Int64,
//     atomic.Bool, ...) must not be assigned as a whole value outside
//     the constructor: x.count = atomic.Int64{} resets the word with a
//     plain store that races every concurrent Add.
//  3. CAS under mutex — a CompareAndSwap retry loop must not run with a
//     mutex held: the CAS already provides the atomicity, and spinning
//     on it under a lock turns optimistic concurrency into a convoyed
//     critical section (and invites livelock against the very writers
//     the CAS is waiting out).
var analyzerAtomics = &Analyzer{
	Name: "atomics",
	Doc: "a field accessed via sync/atomic anywhere must be accessed atomically\n" +
		"everywhere (constructors exempt); typed atomic fields must not be\n" +
		"overwritten wholesale; CAS retry loops must not hold a mutex",
	Run: runAtomics,
}

// atomicOpPrefixes match the function-style sync/atomic entry points.
var atomicOpPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicOpName(name string) bool {
	for _, p := range atomicOpPrefixes {
		if rest, ok := strings.CutPrefix(name, p); ok {
			switch rest {
			case "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer":
				return true
			}
		}
	}
	return false
}

func runAtomics(pass *Pass) error {
	// ---- pass 1: package-scope facts ----------------------------------
	// atomicFields: canonical "Type.field" keys that are the &-argument
	// of a function-style atomic op anywhere in the package, mapped to
	// one representative atomic-use position. atomicSels: the exact
	// selector nodes inside those atomic calls (exempt from pass 2).
	atomicFields := map[string]token.Pos{}
	atomicSels := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files() {
		atomicName, ok := importName(f.AST, "sync/atomic")
		if !ok {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := fun.X.(*ast.Ident)
			if !ok || pkgID.Name != atomicName || !isAtomicOpName(fun.Sel.Name) || !identIsPackage(pass, pkgID) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				key := canonicalField(pass, sel)
				if key == "" {
					continue
				}
				atomicSels[sel] = true
				if _, seen := atomicFields[key]; !seen {
					atomicFields[key] = call.Pos()
				}
			}
			return true
		})
	}

	// ---- pass 2: flag plain accesses and typed overwrites -------------
	for _, f := range pass.Files() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctor := isConstructorName(fn.Name.Name)
			if len(atomicFields) > 0 && !ctor {
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || atomicSels[sel] {
						return true
					}
					key := canonicalField(pass, sel)
					if key == "" {
						return true
					}
					if atomicPos, hit := atomicFields[key]; hit {
						ap := pass.Pkg.Fset.Position(atomicPos)
						pass.Reportf(sel.Pos(),
							"plain access of %s, which is accessed atomically at %s:%d: mixed atomic/plain access races; use sync/atomic everywhere outside the constructor",
							key, shortPath(ap.Filename), ap.Line)
					}
					return true
				})
			}
			checkTypedAtomicOverwrite(pass, fn, ctor)
			checkCASUnderMutex(pass, fn)
		}
	}
	return nil
}

// isConstructorName treats New*/new* functions as construction scope:
// the value has not escaped yet, so plain initialisation is safe.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// canonicalField renders a field selector as "Type.field" using type
// info. Returns "" when the owner type cannot be resolved (a plain
// local, an unresolved import) — the rule then stays silent rather
// than guessing.
func canonicalField(pass *Pass, sel *ast.SelectorExpr) string {
	if pass.Pkg.Info == nil {
		return ""
	}
	// Only struct-field selections count; method values and package
	// qualifiers are not field accesses.
	if s, ok := pass.Pkg.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return ""
	}
	if tn := namedTypeName(pass, sel.X); tn != "" {
		return tn + "." + sel.Sel.Name
	}
	return ""
}

// shortPath trims a path to its last two elements for readable messages.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// checkTypedAtomicOverwrite flags whole-value stores to typed atomic
// fields (x.count = atomic.Int64{}, x.done = other.done) outside
// constructors — the assignment is a plain memory write that races
// every concurrent atomic op on the word.
func checkTypedAtomicOverwrite(pass *Pass, fn *ast.FuncDecl, ctor bool) {
	if ctor || pass.Pkg.Info == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if s, ok := pass.Pkg.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
				continue
			}
			if tn, pkg := namedTypeAndPkg(pass, sel); pkg == "sync/atomic" {
				pass.Reportf(sel.Pos(),
					"whole-value store to atomic.%s field %s: a plain overwrite races concurrent atomic ops; use Store, or confine resets to the constructor",
					tn, sel.Sel.Name)
			}
		}
		return true
	})
}

// namedTypeAndPkg resolves an expression's named type and its package
// path ("" when unresolved), looking through pointers.
func namedTypeAndPkg(pass *Pass, e ast.Expr) (name, pkgPath string) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return "", ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name(), ""
	}
	return obj.Name(), obj.Pkg().Path()
}

// checkCASUnderMutex reports CompareAndSwap calls that execute inside a
// loop while the function holds a mutex — the CAS retry is then a
// spinning critical section.
func checkCASUnderMutex(pass *Pass, fn *ast.FuncDecl) {
	// Collect the position ranges of loop bodies.
	type posRange struct{ from, to token.Pos }
	var loops []posRange
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, posRange{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, posRange{s.Body.Pos(), s.Body.End()})
		case *ast.FuncLit:
			return false // its own lock scope; closures analyzed separately is out of CAS rule's scope
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, r := range loops {
			if r.from <= pos && pos < r.to {
				return true
			}
		}
		return false
	}
	lockWalk(fn.Body, func(stmt ast.Stmt, held []heldLock) {
		if len(held) == 0 {
			return
		}
		switch stmt.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return // runs later / concurrently, not under these locks
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case ast.Stmt:
				if x != stmt {
					return false // nested statements get their own visit
				}
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok || !strings.HasPrefix(sel.Sel.Name, "CompareAndSwap") {
					return true
				}
				if inLoop(x.Pos()) {
					pass.Reportf(x.Pos(),
						"CompareAndSwap retried in a loop while mutex %s is held: the CAS already serialises this update — holding the lock across the retry convoys every waiter behind a spin",
						held[len(held)-1].key)
				}
			}
			return true
		})
	})
}
