package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// goleak demands a visible termination path for every goroutine spawned
// in the concurrent serving packages (internal/core, internal/cluster,
// internal/opencl): the chaos appliers, recovery probers and hedge
// relays those packages spin up must not be able to outlive their node.
// A `go` statement passes when the analyzer can see at least one of:
//
//   - WaitGroup registration — an X.Add(...) on a sync.WaitGroup (or a
//     WaitGroup-named field: wg, workers, relays, ...) earlier in the
//     spawning function, or a `defer X.Done()` inside the goroutine
//     body. The owner's Close/Drain/Kill waits on that group, so the
//     goroutine's lifetime is bounded by its owner's.
//   - quit-channel guard — the goroutine body (or, for `go x.method()`,
//     the method's body resolved within the package) receives from a
//     ctx.Done() channel or from a channel named like a lifecycle
//     signal (quit, stop, done, closing, closed, exit, kill), in a
//     select or a direct receive, so shutdown reaches it.
//   - bounded body — the body contains no loops at all and every
//     channel operation in it is a send to or receive from a buffered-
//     looking hand-off the spawner waits on; the analyzer approximates
//     this as "no for/range statement and no channel receive", since a
//     loop-free goroutine terminates unless it parks forever.
//
// Everything else is reported. Intentional detachments carry a
// //bomw:goleak directive with the reason the goroutine cannot wedge.
var analyzerGoleak = &Analyzer{
	Name: "goleak",
	Doc: "every go statement in internal/{core,cluster,opencl} needs a visible\n" +
		"termination path: WaitGroup registration, a ctx.Done()/quit-channel\n" +
		"guard, or a provably bounded body",
	Run: runGoleak,
}

// goleakPkgs are the packages whose goroutines must be owned. Matched
// like the wallclock scope so fixtures can mirror the layout.
var goleakPkgs = []string{
	"internal/core",
	"internal/cluster",
	"internal/opencl",
}

func isGoleakPkg(rel string) bool {
	for _, p := range goleakPkgs {
		if rel == p || strings.HasSuffix(rel, "/"+p) {
			return true
		}
	}
	return false
}

// waitGroupNameRe is the syntactic fallback for WaitGroup-ish
// identifiers when type info cannot resolve the field.
var waitGroupNameRe = regexp.MustCompile(`(?i)(^|\.)(wg|waitgroup|workers|relays|\w*wg)$`)

// quitChanNameRe matches lifecycle-signal channel names.
var quitChanNameRe = regexp.MustCompile(`(?i)(quit|stop|done|clos|exit|kill|shutdown)`)

func runGoleak(pass *Pass) error {
	if !isGoleakPkg(pass.Pkg.Rel) {
		return nil
	}
	methods := indexFuncDecls(pass)
	for _, f := range pass.Files() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGoStmts(pass, methods, fn.Body)
		}
	}
	return nil
}

// indexFuncDecls maps function and method names to their declarations
// for same-package resolution of `go x.method()` bodies. Methods index
// under both "name" (when unambiguous) and "Type.name".
func indexFuncDecls(pass *Pass) map[string][]*ast.FuncDecl {
	idx := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Files() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			idx[fn.Name.Name] = append(idx[fn.Name.Name], fn)
			if _, typ := receiverOf(fn); typ != "" {
				idx[typ+"."+fn.Name.Name] = append(idx[typ+"."+fn.Name.Name], fn)
			}
		}
	}
	return idx
}

// checkGoStmts walks one function body; enclosing tracks the nearest
// function body for the spawn-side WaitGroup evidence.
func checkGoStmts(pass *Pass, methods map[string][]*ast.FuncDecl, body *ast.BlockStmt) {
	var walk func(n ast.Node, enclosing *ast.BlockStmt)
	walk = func(n ast.Node, enclosing *ast.BlockStmt) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				if x.Body != nil {
					walk(x.Body, x.Body)
				}
				return false
			case *ast.GoStmt:
				checkGoStmt(pass, methods, x, enclosing)
				// The spawned body is itself walked for nested spawns.
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok && lit.Body != nil {
					walk(lit.Body, lit.Body)
					return false
				}
			}
			return true
		})
	}
	walk(body, body)
}

func checkGoStmt(pass *Pass, methods map[string][]*ast.FuncDecl, g *ast.GoStmt, enclosing *ast.BlockStmt) {
	if waitGroupAddBefore(pass, enclosing, g.Pos()) {
		return
	}
	body := goroutineBody(pass, methods, g)
	if body == nil {
		// Cross-package or dynamic target: nothing visible to judge.
		pass.Reportf(g.Pos(),
			"goroutine target is not resolvable in this package and no WaitGroup registration precedes the spawn: goroutines in %s must have a visible termination path (register on the owner's WaitGroup, or guard the loop with ctx.Done()/a quit channel)",
			pass.Pkg.Rel)
		return
	}
	if bodyHasDeferredDone(pass, body) || bodyHasQuitGuard(pass, body) || bodyIsBounded(body) {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine has no visible termination path: no WaitGroup registration before the spawn, no defer Done, no ctx.Done()/quit-channel guard, and the body loops; a node kill would leak it — own it with the spawner's WaitGroup or guard its loop",
	)
}

// goroutineBody resolves the spawned body: a func literal directly, or
// a same-package function/method declaration.
func goroutineBody(pass *Pass, methods map[string][]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if decls := methods[fun.Name]; len(decls) == 1 {
			return decls[0].Body
		}
	case *ast.SelectorExpr:
		// go x.method(...) — try Type.method via type info, then the
		// bare method name when it is unambiguous in the package.
		if tn := namedTypeName(pass, fun.X); tn != "" {
			if decls := methods[tn+"."+fun.Sel.Name]; len(decls) == 1 {
				return decls[0].Body
			}
		}
		if decls := methods[fun.Sel.Name]; len(decls) == 1 {
			return decls[0].Body
		}
	}
	return nil
}

// waitGroupAddBefore reports whether a WaitGroup Add call appears in
// the enclosing body lexically before the go statement.
func waitGroupAddBefore(pass *Pass, enclosing *ast.BlockStmt, before token.Pos) bool {
	if enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= before {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if isWaitGroupish(pass, sel.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isWaitGroupish resolves the expression to sync.WaitGroup via type
// info, with a name-shape fallback for degraded info.
func isWaitGroupish(pass *Pass, e ast.Expr) bool {
	if pass.Pkg.Info != nil {
		if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Type != nil {
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
					return true
				}
				// Resolved to something else (e.g. atomic.Int64): not a
				// WaitGroup no matter what it is called.
				return false
			}
		}
	}
	return waitGroupNameRe.MatchString(types.ExprString(e))
}

// bodyHasDeferredDone looks for `defer X.Done()` on a WaitGroup-ish X —
// the goroutine registered itself for its owner to wait on.
func bodyHasDeferredDone(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := def.Call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if isWaitGroupish(pass, sel.X) {
			found = true
		}
		return true
	})
	return found
}

// bodyHasQuitGuard looks for a receive from ctx.Done() or from a
// lifecycle-named channel anywhere in the body (select case or direct
// receive).
func bodyHasQuitGuard(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		un, ok := n.(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			return true
		}
		switch ch := un.X.(type) {
		case *ast.CallExpr:
			// <-ctx.Done(), <-x.Quit()
			if sel, ok := ch.Fun.(*ast.SelectorExpr); ok && quitChanNameRe.MatchString(sel.Sel.Name) {
				found = true
			}
		default:
			if quitChanNameRe.MatchString(types.ExprString(ch)) {
				found = true
			}
		}
		return true
	})
	return found
}

// bodyIsBounded approximates "this goroutine terminates on its own":
// no loops and no channel receives — it runs straight-line work (often
// a single send the spawner consumes) and exits.
func bodyIsBounded(body *ast.BlockStmt) bool {
	bounded := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !bounded {
			return false
		}
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			bounded = false
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				bounded = false
				return false
			}
		case *ast.SelectStmt:
			bounded = false
			return false
		case *ast.FuncLit:
			return false // its own goroutine/closure, judged separately
		}
		return true
	})
	return bounded
}
