package lint_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bomw/internal/lint"
)

// TestWriteSARIF pins the subset of SARIF 2.1.0 the CI upload depends
// on: version, driver name, a rule per analyzer, result locations with
// SRCROOT-relative URIs, and related locations for multi-edge findings.
func TestWriteSARIF(t *testing.T) {
	findings := []lint.Finding{
		{
			Analyzer: "lockorder",
			File:     "internal/cluster/cluster.go",
			Line:     12,
			Col:      3,
			Message:  "lock-order cycle: Cluster.mu → Node.mu, Node.mu → Cluster.mu",
			Related: []lint.Related{
				{File: "internal/cluster/health.go", Line: 40, Col: 2, Note: "in Node.report"},
			},
		},
		{
			Analyzer: "directive",
			File:     "internal/core/pipeline.go",
			Line:     7,
			Col:      1,
			Message:  "malformed //bomw: directive",
		},
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, lint.All(), findings); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				RelatedLocations []struct {
					Message struct {
						Text string `json:"text"`
					} `json:"message"`
				} `json:"relatedLocations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "bomwvet" {
		t.Errorf("driver = %q, want bomwvet", run.Tool.Driver.Name)
	}
	// One rule per registered analyzer plus the ad-hoc "directive" rule.
	wantRules := len(lint.All()) + 1
	if len(run.Tool.Driver.Rules) != wantRules {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), wantRules)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"lockorder", "atomics", "poollife", "goleak", "directive"} {
		if !ruleIDs[want] {
			t.Errorf("rule %q missing from driver rules", want)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "lockorder" || first.Level != "error" {
		t.Errorf("first result = %s/%s, want lockorder/error", first.RuleID, first.Level)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/cluster/cluster.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("location = %+v, want SRCROOT-relative uri", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 12 {
		t.Errorf("startLine = %d, want 12", loc.Region.StartLine)
	}
	if len(first.RelatedLocations) != 1 || first.RelatedLocations[0].Message.Text != "in Node.report" {
		t.Errorf("relatedLocations = %+v, want the annotated edge", first.RelatedLocations)
	}
	// URIs must stay forward-slashed for the uploader.
	if strings.Contains(buf.String(), `\\`) {
		t.Errorf("SARIF output contains backslashed paths:\n%s", buf.String())
	}
}

// TestWriteSARIFEmpty: a clean run still emits a valid log with the
// rule table (so code scanning knows the checks ran) and zero results.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, lint.All(), nil); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("want one run with empty (non-null) results, got %s", buf.String())
	}
}
