package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	// Dir is the absolute package directory.
	Dir string
	// Rel is the module-root-relative directory, "/"-separated — the
	// identity analyzers scope on (e.g. "internal/opencl").
	Rel string
	// Fset positions every file of the load.
	Fset *token.FileSet
	// Files are the parsed sources, tests included (marked).
	Files []*File
	// Types and Info hold the best-effort check result. Imports outside
	// the parse set resolve to stub packages, so cross-package types may
	// be missing — analyzers must treat Info as advisory and fall back
	// to syntax. Nil when the directory held no non-test files.
	Types *types.Package
	Info  *types.Info
}

// File is one parsed source file.
type File struct {
	Name string // absolute path
	AST  *ast.File
	Test bool // _test.go
}

// Load expands the patterns (a directory, or dir/... for a recursive
// walk; "./..." covers the module) from the module root and returns the
// parsed packages. Directories named testdata, vendor, or starting with
// "." or "_" are skipped during recursive walks — but an explicitly
// named directory always loads, which is how the analyzer tests load
// their fixtures.
func Load(root string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	var order []string
	add := func(d string) {
		if !dirs[d] {
			dirs[d] = true
			order = append(order, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		base = filepath.Clean(base)
		st, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	imp := newStubImporter()
	var pkgs []*Package
	for _, dir := range order {
		pkg, err := loadDir(fset, imp, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// ModuleRoot walks up from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "node_modules" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func loadDir(fset *token.FileSet, imp types.Importer, root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		rel = dir
	}
	pkg := &Package{Dir: dir, Rel: filepath.ToSlash(rel), Fset: fset}
	for _, name := range names {
		path := filepath.Join(dir, name)
		astf, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, &File{
			Name: path,
			AST:  astf,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}

	// Best-effort type check over the non-test files (test files may
	// belong to an external _test package and would clash). Errors are
	// expected — imports resolve to stubs — and deliberately swallowed;
	// analyzers use whatever Info survived and fall back to syntax.
	var checkFiles []*ast.File
	for _, f := range pkg.Files {
		if !f.Test {
			checkFiles = append(checkFiles, f.AST)
		}
	}
	if len(checkFiles) > 0 {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(error) {}, // collect nothing, check everything
		}
		tpkg, _ := conf.Check(pkg.Rel, fset, checkFiles, info)
		pkg.Types = tpkg
		pkg.Info = info
	}
	return pkg, nil
}

// stubImporter satisfies imports without compiled export data: it first
// tries the gc importer (stdlib packages usually resolve), then a
// hand-built synthetic package for the concurrency stdlib (sync,
// sync/atomic — see stdtypes.go), then falls back to an empty stub
// package so checking can continue. The empty stub makes every
// cross-package reference an error the checker swallows — fine for our
// analyzers, which only need intra-package types — but the synthetic
// tier matters: on runners without stdlib export data an empty stub for
// sync/atomic would silently strip atomic.Int64 fields (and every
// struct containing one) out of the type info the atomics, goleak and
// lockorder analyzers key on.
type stubImporter struct {
	gc    types.Importer
	stubs map[string]*types.Package
}

func newStubImporter() *stubImporter {
	return &stubImporter{gc: importer.Default(), stubs: map[string]*types.Package{}}
}

func (im *stubImporter) Import(path string) (*types.Package, error) {
	if im.gc != nil {
		if p, err := im.gc.Import(path); err == nil && p != nil {
			return p, nil
		}
	}
	if p := im.stubs[path]; p != nil {
		return p, nil
	}
	p := syntheticPkg(path)
	if p == nil {
		name := path
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		p = types.NewPackage(path, name)
	}
	im.stubs[path] = p
	return p, nil
}
