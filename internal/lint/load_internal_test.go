package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkWithoutGC type-checks src through a stubImporter with the gc
// importer disabled — the degraded environment (no stdlib export data)
// the synthetic packages exist for.
func checkWithoutGC(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	imp := &stubImporter{gc: nil, stubs: map[string]*types.Package{}}
	conf := types.Config{Importer: imp, Error: func(error) {}}
	conf.Check("x", fset, []*ast.File{f}, info)
	return fset, f, info
}

// TestSyntheticAtomicResolvesTypedValues pins the loader fix: without
// gc export data, a struct holding atomic.Int64/Bool values must still
// type-check so the analyzers see real field types — previously the
// empty sync/atomic stub silently degraded the whole struct to invalid.
func TestSyntheticAtomicResolvesTypedValues(t *testing.T) {
	const src = `package x

import "sync/atomic"

type counters struct {
	hits atomic.Int64
	ok   atomic.Bool
}

func (c *counters) bump() int64 {
	c.ok.Store(true)
	return c.hits.Add(1)
}
`
	_, f, info := checkWithoutGC(t, src)

	var checked int
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// c.hits.Add / c.ok.Store: the inner selector must resolve to
		// the named atomic type from the synthetic package.
		tv, ok := info.Types[ast.Expr(inner)]
		if !ok || tv.Type == nil {
			t.Errorf("no type recorded for %s.%s", inner.Sel.Name, sel.Sel.Name)
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			t.Errorf("%s resolved to %v, want a named atomic type", inner.Sel.Name, tv.Type)
			return true
		}
		if got := named.Obj().Pkg().Path(); got != "sync/atomic" {
			t.Errorf("%s resolved into package %q, want sync/atomic", inner.Sel.Name, got)
		}
		checked++
		return true
	})
	if checked < 2 {
		t.Fatalf("resolved %d atomic field selections, want 2 (c.ok.Store, c.hits.Add)", checked)
	}

	// The method calls themselves must resolve (Add returns int64).
	var addOK bool
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		tv, ok := info.Types[ast.Expr(call)]
		if ok && tv.Type != nil && tv.Type.String() == "int64" {
			addOK = true
		}
		return true
	})
	if !addOK {
		t.Error("atomic.Int64.Add call did not resolve to int64 through the synthetic package")
	}
}

// TestSyntheticAtomicFunctionForms covers the classic word-based API:
// atomic.AddInt64(&x, 1) must type-check against the synthetic package.
func TestSyntheticAtomicFunctionForms(t *testing.T) {
	const src = `package x

import "sync/atomic"

type s struct{ n int64 }

func (v *s) bump() int64 { return atomic.AddInt64(&v.n, 1) }
func (v *s) read() int64 { return atomic.LoadInt64(&v.n) }
`
	_, f, info := checkWithoutGC(t, src)
	resolved := 0
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || (id.Name != "AddInt64" && id.Name != "LoadInt64") {
			return true
		}
		if obj, ok := info.Uses[id]; ok && obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			resolved++
		}
		return true
	})
	if resolved != 2 {
		t.Fatalf("resolved %d function-style atomic uses, want 2", resolved)
	}
}

// TestSyntheticSyncResolvesMutexAndWaitGroup: sync.Mutex/WaitGroup
// fields must resolve so lockorder's canonical lock keys and goleak's
// WaitGroup evidence survive without gc export data.
func TestSyntheticSyncResolvesMutexAndWaitGroup(t *testing.T) {
	const src = `package x

import "sync"

type owner struct {
	mu sync.Mutex
	wg sync.WaitGroup
}

func (o *owner) run() {
	o.mu.Lock()
	o.mu.Unlock()
	o.wg.Add(1)
	o.wg.Wait()
}
`
	_, f, info := checkWithoutGC(t, src)
	want := map[string]string{"mu": "Mutex", "wg": "WaitGroup"}
	got := map[string]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[ast.Expr(sel)]; ok && tv.Type != nil {
			if named, ok := tv.Type.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
				got[sel.Sel.Name] = named.Obj().Name()
			}
		}
		return true
	})
	for field, typ := range want {
		if got[field] != typ {
			t.Errorf("field %s resolved to %q, want sync.%s", field, got[field], typ)
		}
	}
}

// TestSyntheticImporterIsFallbackOnly: the gc importer, when present
// and successful, wins — synthetic packages only fill the gap.
func TestSyntheticImporterIsFallbackOnly(t *testing.T) {
	im := newStubImporter()
	if im.gc == nil {
		t.Skip("no gc importer in this environment")
	}
	p, err := im.Import("sync/atomic")
	if err != nil || p == nil {
		t.Fatalf("Import(sync/atomic) = %v, %v", p, err)
	}
	if gcp, gcErr := im.gc.Import("sync/atomic"); gcErr == nil && gcp != nil && p != gcp {
		t.Error("stub importer did not prefer the gc importer's sync/atomic")
	}
}
