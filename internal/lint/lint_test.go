package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bomw/internal/lint"
)

// The golden-file convention, after go/analysis's analysistest:
//
//	expr() // want "regexp"     — expects a finding on this line whose
//	                              message matches the regexp
//	// want:12 "regexp"         — expects a finding at absolute line 12;
//	                              used for directive-position findings,
//	                              where a trailing comment would merge
//	                              into the //bomw: directive itself
//
// Several wants may share a line. Every finding must match a want and
// every want must be matched, so clean fixture files assert "no
// findings" simply by containing no want comments.
var wantRe = regexp.MustCompile(`// want(?::(\d+))? "((?:[^"\\]|\\.)*)"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads testdata/src/<fixture> recursively, runs the named
// analyzer, and diffs the findings against the fixture's want comments.
func runFixture(t *testing.T, analyzer, fixture string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", fixture)
	}
	azs, err := lint.ByName([]string{analyzer})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(pkgs, azs, lint.RunOptions{})
	if err != nil {
		t.Fatalf("running %s: %v", analyzer, err)
	}
	wants := parseWants(t, pkgs)
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func parseWants(t *testing.T, pkgs []*lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			data, err := os.ReadFile(f.Name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					ln := i + 1
					if m[1] != "" {
						if ln, err = strconv.Atoi(m[1]); err != nil {
							t.Fatalf("%s:%d: bad want line %q", f.Name, i+1, m[1])
						}
					}
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", f.Name, i+1, m[2], err)
					}
					wants = append(wants, &want{file: f.Name, line: ln, re: re})
				}
			}
		}
	}
	return wants
}

// claim matches a finding against the first unmatched want on its line.
func claim(wants []*want, f lint.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

func TestWallclock(t *testing.T) { runFixture(t, "wallclock", "wallclock") }
func TestLockscope(t *testing.T) { runFixture(t, "lockscope", "lockscope") }
func TestCounters(t *testing.T)  { runFixture(t, "counters", "counters") }
func TestSenterr(t *testing.T)   { runFixture(t, "senterr", "senterr") }
func TestCtxparam(t *testing.T)  { runFixture(t, "ctxparam", "ctxparam") }
func TestAtomics(t *testing.T)   { runFixture(t, "atomics", "atomics") }
func TestPoollife(t *testing.T)  { runFixture(t, "poollife", "poollife") }
func TestGoleak(t *testing.T)    { runFixture(t, "goleak", "goleak") }
func TestLockorder(t *testing.T) { runFixture(t, "lockorder", "lockorder") }

// TestLockorderEdgeDirective pins the multi-position directive
// contract: the justified fixture carries its //bomw:lockorder at the
// SECOND edge of the cycle (b.go), not at the primary position, and the
// suppression log must say exactly which edge cleared it.
func TestLockorderEdgeDirective(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "lockorder", "justified"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	azs, err := lint.ByName([]string{"lockorder"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunAll(pkgs, azs, lint.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("justified cycle still reported: %s", f)
	}
	if len(res.Suppressions) != 1 {
		t.Fatalf("suppressions = %d, want 1 (%+v)", len(res.Suppressions), res.Suppressions)
	}
	sup := res.Suppressions[0]
	if !strings.HasPrefix(sup.ClearedAt, "edge 2 of 2") {
		t.Errorf("ClearedAt = %q, want an edge position, not the primary", sup.ClearedAt)
	}
	if !strings.HasSuffix(sup.DirFile, "b.go") {
		t.Errorf("directive file = %q, want the b.go edge", sup.DirFile)
	}
	if len(sup.Finding.Related) != 1 || sup.Finding.Related[0].Note == "" {
		t.Errorf("suppressed finding should carry one annotated related edge, got %+v", sup.Finding.Related)
	}
}

// TestRepoIsClean runs the full analyzer suite over the real module —
// the same invocation as `make lint` — and demands zero findings. Any
// new violation must be fixed or carry a justified //bomw: directive
// before it lands.
func TestRepoIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(pkgs, lint.All(), lint.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := lint.ByName([]string{"wallclock", "nosuch"}); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	azs, err := lint.ByName([]string{"senterr"})
	if err != nil || len(azs) != 1 || azs[0].Name != "senterr" {
		t.Fatalf("ByName(senterr) = %v, %v", azs, err)
	}
}

func TestAllAnalyzersDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incomplete: doc or run missing", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 9 {
		t.Fatalf("expected at least 9 analyzers, have %d", len(seen))
	}
}
