package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// counters machine-checks the PR-4 accounting identities: fields of the
// mutex-guarded stats structs (core.Stats today; PipelineStats if it
// ever grows owned mutation sites) may only be mutated inside methods
// of the type that owns the struct, while a mutex of that owner is
// held. Local snapshots — `out := Stats{...}` in a Stats() accessor —
// are fine: the rule fires only when the mutated struct is reached
// through a field of another type, i.e. is owned state.
//
// The identity this protects:
//
//	Submitted = Completed + Shed + Infeasible + Expired + Failed
//
// holds only while every counter moves through locked accessors; one
// unlocked increment silently skews every overload experiment.
var analyzerCounters = &Analyzer{
	Name: "counters",
	Doc: "fields of Stats/PipelineStats may only be mutated inside methods of the\n" +
		"owning type while the owner's mutex is held",
	Run: runCounters,
}

// statsTypeNames are the guarded struct types, matched by name within
// the analyzed package.
var statsTypeNames = map[string]bool{
	"Stats":         true,
	"PipelineStats": true,
}

func runCounters(pass *Pass) error {
	if pass.Pkg.Info == nil {
		return nil
	}
	for _, f := range pass.Files() {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			recvName, recvType := receiverOf(fn)
			visit := func(stmt ast.Stmt, held []heldLock) {
				checkCounterStmt(pass, stmt, held, recvName, recvType, fn.Name.Name)
			}
			lockWalk(fn.Body, visit)
			// Closures run with their own lock scope but the same
			// lexical receiver.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lockWalk(lit.Body, visit)
					return false
				}
				return true
			})
		}
	}
	return nil
}

func receiverOf(fn *ast.FuncDecl) (name, typ string) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return "", ""
	}
	field := fn.Recv.List[0]
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typ = id.Name
	}
	if len(field.Names) > 0 {
		name = field.Names[0].Name
	}
	return name, typ
}

func checkCounterStmt(pass *Pass, stmt ast.Stmt, held []heldLock, recvName, recvType, funcName string) {
	var targets []ast.Expr
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		targets = s.Lhs
	case *ast.IncDecStmt:
		targets = []ast.Expr{s.X}
	default:
		return
	}
	for _, t := range targets {
		statsExpr, fieldName := ownedStatsTarget(pass, t)
		if statsExpr == nil {
			continue
		}
		typeName := namedTypeName(pass, statsExpr)
		root := rootIdent(statsExpr)
		switch {
		case recvType == "" || root == nil || root.Name != recvName:
			pass.Reportf(t.Pos(),
				"field %s of %s mutated in %s, outside the owning type's methods: counters must move through locked accessors so the accounting identities stay machine-checked",
				fieldName, typeName, funcName)
		case !holdsReceiverMutex(held, recvName):
			pass.Reportf(t.Pos(),
				"field %s of %s mutated without holding %s's mutex: take %s.mu (or a sibling mutex of %s) before touching guarded counters",
				fieldName, typeName, recvName, recvName, recvName)
		}
	}
}

// ownedStatsTarget reports whether the assignment target mutates a
// guarded stats struct reached through a field of another type,
// returning the stats-typed selector and the mutated field name.
// Index expressions (map/slice writes into a stats field) unwrap to
// their base.
func ownedStatsTarget(pass *Pass, t ast.Expr) (statsSel ast.Expr, field string) {
	expr := t
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			goto unwrapped
		}
	}
unwrapped:
	// Walk the selector chain outside-in: for s.stats.PerDevice the
	// prefixes are s.stats (Stats-typed, a field selector → owned) and
	// s. A plain local (out.PerDevice) never has a Stats-typed
	// *selector* prefix, so snapshots pass.
	for {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return nil, ""
		}
		if isStatsType(pass, sel.X) {
			if _, ok := sel.X.(*ast.SelectorExpr); ok {
				return sel.X, sel.Sel.Name
			}
			return nil, "" // local variable or parameter: a snapshot
		}
		// Whole-struct replacement: s.stats = Stats{...}.
		if isStatsType(pass, sel) && selIsField(pass, sel) {
			return sel, sel.Sel.Name
		}
		expr = sel.X
	}
}

func isStatsType(pass *Pass, e ast.Expr) bool {
	return statsTypeNames[namedTypeName(pass, e)]
}

// namedTypeName resolves the named type of an expression ("" when
// unknown), looking through pointers.
func namedTypeName(pass *Pass, e ast.Expr) string {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// selIsField reports whether the selector resolves to a struct field.
func selIsField(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Pkg.Info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// holdsReceiverMutex reports whether any held lock lives on the
// receiver (s.mu, s.closeMu, ...).
func holdsReceiverMutex(held []heldLock, recvName string) bool {
	for _, h := range held {
		if strings.HasPrefix(h.key, recvName+".") {
			return true
		}
	}
	return false
}
