package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// lockorder builds the package-level mutex acquisition graph and flags
// cycles — the fleet-tier deadlock lockscope's intraprocedural walk
// cannot see: the cluster sweep holding the cluster lock while calling
// into a node that takes the node lock, while a node callback takes the
// node lock and calls back into the cluster lock. Two functions, each
// individually clean, jointly deadlocked.
//
// The analysis reuses lockscope's linear walk per function to learn,
// at every program point, which mutexes are held. Lock identities are
// canonicalised to "Type.field" via the best-effort type info (falling
// back to the method receiver's declared type), so `c.mu` inside one
// Cluster method and `cl.mu` inside another are the same vertex. It
// then accumulates package-scope facts:
//
//   - a direct edge A → B whenever B is acquired while A is held;
//   - a summary of every lock a function may acquire, propagated
//     through same-package calls to a fixpoint, so an edge also forms
//     when a function holding A *calls* a function that acquires B.
//
// A cycle in the resulting graph is reported once, at the first edge,
// with every other edge attached as a related position — a //bomw:
// lockorder directive at ANY edge of the cycle justifies it (the
// matcher reports which edge cleared it). Closures are analyzed as
// their own functions: a `go func(){...}` body runs under its own lock
// state, and its acquisitions do not count as the spawner's.
var analyzerLockorder = &Analyzer{
	Name: "lockorder",
	Doc: "the package-level mutex acquisition graph (direct and through\n" +
		"same-package calls) must be cycle-free; a //bomw:lockorder directive at\n" +
		"any edge of a reported cycle justifies it",
	Run: runLockorder,
}

// lockEdge is one "acquires to while holding from" event.
type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       string // function the acquisition happens in
	via      string // non-empty when the edge goes through a call to via
}

// fnLockFacts is the per-function summary pass 1 accumulates.
type fnLockFacts struct {
	name     string
	acquires map[string]token.Pos // locks taken directly (canonical key → first pos)
	edges    []lockEdge           // direct nested acquisitions
	calls    []lockCallSite       // same-package calls with the held set at the site
}

type lockCallSite struct {
	callee string
	held   []string
	pos    token.Pos
}

func runLockorder(pass *Pass) error {
	// ---- pass 1: per-function facts -----------------------------------
	var fns []*fnLockFacts
	declared := map[string]bool{}
	for _, f := range pass.Files() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			key := funcKey(fn)
			declared[key] = true
			fns = append(fns, collectLockFacts(pass, fn, key))
			// Closures: their own lock state, their own facts — but any
			// lock they take is NOT attributed to the enclosing function
			// (they may run on another goroutine, later). They still
			// contribute direct nested edges of their own.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fns = append(fns, collectLockFactsBody(pass, lit.Body, key+".func", fn))
					return false
				}
				return true
			})
		}
	}

	// ---- pass 2: fixpoint of "locks a call may acquire" ---------------
	byName := map[string]*fnLockFacts{}
	for _, fn := range fns {
		// Closure facts are keyed with a ".func" suffix and are never
		// call targets; only declared functions join the call graph.
		if declared[fn.name] {
			byName[fn.name] = fn
		}
	}
	mayAcquire := map[string]map[string]token.Pos{}
	for name, fn := range byName {
		acq := map[string]token.Pos{}
		for k, p := range fn.acquires {
			acq[k] = p
		}
		mayAcquire[name] = acq
	}
	for changed := true; changed; {
		changed = false
		for name, fn := range byName {
			acq := mayAcquire[name]
			for _, cs := range fn.calls {
				for k, p := range mayAcquire[cs.callee] {
					if _, ok := acq[k]; !ok {
						acq[k] = p
						changed = true
					}
				}
			}
		}
	}

	// ---- pass 3: assemble the graph -----------------------------------
	// adjacency: from → to → first edge observed.
	adj := map[string]map[string]lockEdge{}
	addEdge := func(e lockEdge) {
		if e.from == e.to {
			return // re-acquire; lockscope reports it
		}
		m, ok := adj[e.from]
		if !ok {
			m = map[string]lockEdge{}
			adj[e.from] = m
		}
		if _, ok := m[e.to]; !ok {
			m[e.to] = e
		}
	}
	for _, fn := range fns {
		for _, e := range fn.edges {
			addEdge(e)
		}
		for _, cs := range fn.calls {
			for to := range mayAcquire[cs.callee] {
				for _, from := range cs.held {
					addEdge(lockEdge{from: from, to: to, pos: cs.pos, fn: fn.name, via: cs.callee})
				}
			}
		}
	}

	// ---- pass 4: find and report cycles -------------------------------
	for _, cycle := range findLockCycles(adj) {
		positions := make([]token.Pos, 0, len(cycle))
		notes := make([]string, 0, len(cycle))
		var desc []string
		for _, e := range cycle {
			positions = append(positions, e.pos)
			notes = append(notes, edgeNote(e))
			desc = append(desc, fmt.Sprintf("%s → %s (%s)", e.from, e.to, edgeNote(e)))
		}
		pass.ReportRelated(positions, notes,
			"lock-order cycle: %s — concurrent paths taking these locks in different orders deadlock; restructure one edge, or justify with //bomw:lockorder at any edge",
			strings.Join(desc, ", "))
	}
	return nil
}

func edgeNote(e lockEdge) string {
	if e.via != "" {
		return fmt.Sprintf("in %s via call to %s", e.fn, e.via)
	}
	return fmt.Sprintf("in %s", e.fn)
}

func funcKey(fn *ast.FuncDecl) string {
	if _, typ := receiverOf(fn); typ != "" {
		return typ + "." + fn.Name.Name
	}
	return fn.Name.Name
}

func collectLockFacts(pass *Pass, fn *ast.FuncDecl, key string) *fnLockFacts {
	return collectLockFactsBody(pass, fn.Body, key, fn)
}

// collectLockFactsBody runs the lockscope walk over one body and
// records canonical acquisitions, nested-acquisition edges, and
// same-package call sites under held locks.
func collectLockFactsBody(pass *Pass, body *ast.BlockStmt, key string, encl *ast.FuncDecl) *fnLockFacts {
	facts := &fnLockFacts{name: key, acquires: map[string]token.Pos{}}
	recvName, recvType := receiverOf(encl)
	canon := func(rendered string, expr ast.Expr) string {
		return canonicalLockKey(pass, rendered, expr, recvName, recvType)
	}
	lockWalk(body, func(stmt ast.Stmt, held []heldLock) {
		// Canonicalise the held set once per statement.
		var heldCanon []string
		for _, h := range held {
			if ck := canon(h.key, nil); ck != "" {
				heldCanon = append(heldCanon, ck)
			}
		}
		// Direct acquisitions in this statement (the walker applies them
		// as effects; we mirror its ExprStmt handling for facts).
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if _, kind := lockCallKind(call); kind == "lock" {
					sel := call.Fun.(*ast.SelectorExpr)
					if ck := canon("", sel.X); ck != "" {
						if _, seen := facts.acquires[ck]; !seen {
							facts.acquires[ck] = call.Pos()
						}
						for _, from := range heldCanon {
							facts.edges = append(facts.edges, lockEdge{from: from, to: ck, pos: call.Pos(), fn: key})
						}
					}
				}
			}
		}
		// Same-package calls in this statement's own expressions.
		switch stmt.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return // runs later or concurrently, not under these locks
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case ast.Stmt:
				if x != stmt {
					return false
				}
			case *ast.CallExpr:
				if callee := packageCallee(pass, x, recvName, recvType); callee != "" {
					facts.calls = append(facts.calls, lockCallSite{
						callee: callee,
						held:   append([]string(nil), heldCanon...),
						pos:    x.Pos(),
					})
				}
			}
			return true
		})
	})
	return facts
}

// canonicalLockKey renders a mutex owner as "Type.field". Accepts
// either the rendered lockscope key ("s.mu") or the owner expression
// itself. Resolution order: type info on the base expression; the
// method receiver's declared type when the base is the receiver
// identifier; package-level mutex variables keep their name. Returns ""
// for locals and unresolvable owners — those cannot participate in a
// cross-function cycle we can prove, so no edge forms.
func canonicalLockKey(pass *Pass, rendered string, expr ast.Expr, recvName, recvType string) string {
	if expr != nil {
		if sel, ok := expr.(*ast.SelectorExpr); ok {
			if tn := namedTypeName(pass, sel.X); tn != "" {
				return tn + "." + sel.Sel.Name
			}
			// Fall through to the rendered-name path below.
			rendered = exprRender(sel)
		} else if id, ok := expr.(*ast.Ident); ok {
			rendered = id.Name
		} else {
			rendered = exprRender(expr)
		}
	}
	if rendered == "" {
		return ""
	}
	parts := strings.Split(rendered, ".")
	if len(parts) == 2 && parts[0] == recvName && recvType != "" {
		return recvType + "." + parts[1]
	}
	if len(parts) == 1 {
		// A bare identifier: package-level mutex var, or a local. Only
		// package-level ones are shared across functions.
		if isPackageLevelVar(pass, parts[0]) {
			return "pkg." + parts[0]
		}
		return ""
	}
	return ""
}

func exprRender(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprRender(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// isPackageLevelVar reports whether name is declared at package scope.
func isPackageLevelVar(pass *Pass, name string) bool {
	if pass.Pkg.Types == nil {
		return false
	}
	obj := pass.Pkg.Types.Scope().Lookup(name)
	return obj != nil
}

// packageCallee resolves a call expression to a same-package function
// key ("fn" or "Type.method"), or "" when the target is not a declared
// same-package function.
func packageCallee(pass *Pass, call *ast.CallExpr, recvName, recvType string) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if pass.Pkg.Types != nil {
			if obj := pass.Pkg.Types.Scope().Lookup(fun.Name); obj != nil {
				return fun.Name
			}
		}
		return ""
	case *ast.SelectorExpr:
		// Skip mutex ops themselves.
		switch fun.Sel.Name {
		case "Lock", "Unlock", "RLock", "RUnlock":
			return ""
		}
		if tn := namedTypeName(pass, fun.X); tn != "" {
			// Only same-package named types form graph nodes; a type
			// from another package resolves to a name we never declared,
			// and the fixpoint simply finds no facts for it.
			return tn + "." + fun.Sel.Name
		}
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == recvName && recvType != "" {
			return recvType + "." + fun.Sel.Name
		}
	}
	return ""
}

// findLockCycles returns every distinct elementary cycle reachable in
// the adjacency map, deterministically ordered, each reported once
// (rotated so the lexically smallest vertex leads).
func findLockCycles(adj map[string]map[string]lockEdge) [][]lockEdge {
	var verts []string
	for v := range adj {
		verts = append(verts, v)
	}
	sort.Strings(verts)

	seen := map[string]bool{}
	var cycles [][]lockEdge

	// Bounded DFS from each vertex; path-local visited set keeps it to
	// elementary cycles. Lock graphs here are tiny (a handful of mutex
	// classes), so the exponential worst case is theoretical.
	var path []string
	var dfs func(start, cur string)
	dfs = func(start, cur string) {
		var nexts []string
		for n := range adj[cur] {
			nexts = append(nexts, n)
		}
		sort.Strings(nexts)
		for _, n := range nexts {
			if n == start && len(path) > 0 {
				// Close the cycle; canonical form starts at the smallest
				// vertex, and we only emit when start IS the smallest so
				// each rotation appears once.
				smallest := true
				for _, v := range path {
					if v < start {
						smallest = false
						break
					}
				}
				if !smallest {
					continue
				}
				key := strings.Join(append(append([]string{}, path...), start), "→")
				if seen[key] {
					continue
				}
				seen[key] = true
				var cyc []lockEdge
				full := append([]string{start}, path[1:]...)
				full = append(full, start)
				for i := 0; i+1 < len(full); i++ {
					cyc = append(cyc, adj[full[i]][full[i+1]])
				}
				cycles = append(cycles, cyc)
				continue
			}
			onPath := false
			for _, v := range path {
				if v == n {
					onPath = true
					break
				}
			}
			if onPath || n < start {
				continue
			}
			path = append(path, n)
			dfs(start, n)
			path = path[:len(path)-1]
		}
	}
	for _, v := range verts {
		path = []string{v}
		dfs(v, v)
	}
	return cycles
}
