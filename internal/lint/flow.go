package lint

import "go/ast"

// flowState is the per-path dataflow fact a flowWalk threads through a
// function body. Implementations are pointer types; meet and set mutate
// the receiver.
type flowState[S any] interface {
	// clone forks the state for a branch.
	clone() S
	// meet intersects other into the receiver — the optimistic join at
	// a branch merge: only facts established on every arm survive.
	meet(other S)
	// set replaces the receiver's facts with other's (used when one
	// branch arm cannot fall through, so the merge is the other arm).
	set(other S)
}

// flowWalk drives the shared linear walk the path-sensitive analyzers
// (lockscope, poollife, and the atomics CAS rule) build on: every
// statement of body is visited in control-flow order with the state
// holding *before* the statement's own effect, then effect applies the
// statement's transition. Branches fork a clone and meet back
// optimistically; a branch arm that terminates (return, branch
// statement, panic) does not contribute to the merge. Function literals
// are NOT entered — a closure runs later, under its own state — callers
// analyze them as separate bodies.
func flowWalk[S flowState[S]](body *ast.BlockStmt, init S, visit, effect func(ast.Stmt, S)) {
	flowStmts(body.List, init, visit, effect)
}

func flowStmts[S flowState[S]](list []ast.Stmt, st S, visit, effect func(ast.Stmt, S)) {
	for _, stmt := range list {
		flowStmt(stmt, st, visit, effect)
	}
}

func flowStmt[S flowState[S]](stmt ast.Stmt, st S, visit, effect func(ast.Stmt, S)) {
	visit(stmt, st)
	effect(stmt, st)
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		flowStmts(s.List, st, visit, effect)
	case *ast.LabeledStmt:
		flowStmt(s.Stmt, st, visit, effect)
	case *ast.IfStmt:
		if s.Init != nil {
			flowStmt(s.Init, st, visit, effect)
		}
		bodyState := st.clone()
		flowStmts(s.Body.List, bodyState, visit, effect)
		if s.Else != nil {
			elseState := st.clone()
			flowStmt(s.Else, elseState, visit, effect)
			switch {
			case terminates(s.Body.List):
				st.set(elseState)
			case elseTerminates(s.Else):
				st.set(bodyState)
			default:
				st.set(bodyState)
				st.meet(elseState)
			}
			return
		}
		if !terminates(s.Body.List) {
			st.meet(bodyState)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			flowStmt(s.Init, st, visit, effect)
		}
		bodyState := st.clone()
		flowStmts(s.Body.List, bodyState, visit, effect)
		st.meet(bodyState)
	case *ast.RangeStmt:
		bodyState := st.clone()
		flowStmts(s.Body.List, bodyState, visit, effect)
		st.meet(bodyState)
	case *ast.SwitchStmt:
		flowCaseBodies(s.Body, st, visit, effect)
	case *ast.TypeSwitchStmt:
		flowCaseBodies(s.Body, st, visit, effect)
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			caseState := st.clone()
			flowStmts(comm.Body, caseState, visit, effect)
			st.meet(caseState)
		}
	}
}

func flowCaseBodies[S flowState[S]](body *ast.BlockStmt, st S, visit, effect func(ast.Stmt, S)) {
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		caseState := st.clone()
		flowStmts(cc.Body, caseState, visit, effect)
		st.meet(caseState)
	}
}

// terminates reports whether the statement list ends in a statement
// that does not fall through (return, branch, panic).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func elseTerminates(els ast.Stmt) bool {
	switch e := els.(type) {
	case *ast.BlockStmt:
		return terminates(e.List)
	case *ast.IfStmt:
		return terminates(e.Body.List) && e.Else != nil && elseTerminates(e.Else)
	}
	return false
}

// forEachFuncBody visits every function body in the file: declarations
// and literals, each analyzed independently.
func forEachFuncBody(f *ast.File, visit func(*ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Body)
			}
		case *ast.FuncLit:
			visit(fn.Body)
		}
		return true
	})
}
