package lint

import (
	"encoding/json"
	"io"
)

// SARIF rendering for CI annotation: bomwvet -sarif emits a static
// analysis results interchange format 2.1.0 log that GitHub's
// code-scanning upload action turns into inline PR annotations. The
// schema subset here is deliberately small — one run, one driver, one
// rule per analyzer, one result per finding — and hand-rolled structs
// keep it dependency-free.
//
// File paths in findings are expected to be module-root-relative
// (bomwvet relativises before rendering); uriBaseId SRCROOT tells the
// uploader to resolve them against the checkout root.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifBaseID  = "%SRCROOT%"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	Level            string          `json:"level"`
	Message          sarifMessage    `json:"message"`
	Locations        []sarifLocation `json:"locations"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as one SARIF 2.1.0 run. analyzers
// populates the rule table (every analyzer that ran, so a clean run
// still documents what was checked); findings whose Analyzer is not in
// the table (the synthetic "directive" findings) get an ad-hoc rule.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	known := map[string]bool{}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
		known[a.Name] = true
	}
	for _, f := range findings {
		if !known[f.Analyzer] {
			rules = append(rules, sarifRule{
				ID:               f.Analyzer,
				ShortDescription: sarifMessage{Text: "bomwvet " + f.Analyzer + " diagnostic"},
			})
			known[f.Analyzer] = true
		}
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		r := sarifResult{
			RuleID:    f.Analyzer,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{sarifLoc(f.File, f.Line, f.Col, "")},
		}
		for _, rel := range f.Related {
			r.RelatedLocations = append(r.RelatedLocations, sarifLoc(rel.File, rel.Line, rel.Col, rel.Note))
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "bomwvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(log)
}

func sarifLoc(file string, line, col int, note string) sarifLocation {
	loc := sarifLocation{
		PhysicalLocation: sarifPhysical{
			ArtifactLocation: sarifArtifact{URI: file, URIBaseID: sarifBaseID},
			Region:           sarifRegion{StartLine: line, StartColumn: col},
		},
	}
	if note != "" {
		loc.Message = &sarifMessage{Text: note}
	}
	return loc
}
