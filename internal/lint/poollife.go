package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// poollife machine-checks the PR-8 sync.Pool lifecycle that keeps the
// hot path's pooled carriers (pipeReq, Future, batchWork, aggregate)
// from resurrecting under a stage that still reads them:
//
//  1. no use after Put — once a pooled pointer is Put, the function
//     must not touch it again on that path: the pool may already have
//     handed it to another goroutine, so every later read races the
//     next request's state.
//  2. no double Put — putting the same pointer twice on one path
//     double-issues it: two goroutines get the "same" carrier and the
//     generation/refcount invariants are gone.
//  3. designated recyclers only — Put runs only inside the type's
//     recycler (poolRecyclers, seeded with the PR-8 carriers;
//     unconfigured pooled types fall back to a recycler-shaped name:
//     put*/release*/recycle*/retire*/free*). Scattered Put sites are
//     how retention bugs are born: the recycler is where the "last
//     holder released, future resolved" precondition is auditable.
//
// The analysis is intraprocedural over the shared flowWalk and tracks
// pointers by identifier; branch merges are optimistic (a Put on only
// one arm does not poison the join), so it under-reports rather than
// crying wolf. Pools are recognised as package-level
// `var x = sync.Pool{...}` declarations; the pooled type is read from
// the New closure's `return &T{...}`.
var analyzerPoollife = &Analyzer{
	Name: "poollife",
	Doc: "sync.Pool discipline: no use of a pooled pointer after Put, no double\n" +
		"Put on any path, and Put only inside the type's designated recycler",
	Run: runPoollife,
}

// poolRecyclers maps a pooled type name to the functions allowed to Put
// it back. Seeded with the serving pipeline's carriers; extend it when
// a new pooled type earns a recycler.
var poolRecyclers = map[string][]string{
	"pipeReq":   {"releaseReq"},
	"Future":    {"waitRelease", "recycleUnissued"},
	"batchWork": {"retireBatchWork"},
	"aggregate": {"putAggregate"},
}

// recyclerNameRe is the fallback for pooled types not in poolRecyclers:
// the Put must at least live in a function named like a recycler.
var recyclerNameRe = regexp.MustCompile(`(?i)^(put|release|recycle|retire|free|drop)`)

// recyclerFuncNames flattens poolRecyclers for wrapper-call tracking:
// production code rarely calls pool.Put directly — it hands the pointer
// to the recycler (`releaseReq(r)`, `fut.waitRelease()`), and from the
// caller's side that hand-off relinquishes the reference just as hard
// as a Put would.
var recyclerFuncNames = func() map[string]bool {
	m := map[string]bool{}
	for _, fns := range poolRecyclers {
		for _, fn := range fns {
			m[fn] = true
		}
	}
	return m
}()

// poolVar is one package-level sync.Pool variable.
type poolVar struct {
	name     string // variable name, e.g. "reqPool"
	elemType string // pooled type from the New closure ("" when unknown)
}

func runPoollife(pass *Pass) error {
	pools := collectPools(pass)
	if len(pools) == 0 {
		return nil
	}
	for _, f := range pass.Files() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkRecyclerRule(pass, pools, fn)
			checkPutPaths(pass, pools, fn.Body)
			// Closures get their own path state: a deferred or spawned
			// closure runs later, against its own view of the pointer.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkPutPaths(pass, pools, lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// collectPools finds package-level `var x = sync.Pool{...}` (or
// &sync.Pool{...}) declarations and the pooled element type named in
// the New closure.
func collectPools(pass *Pass) map[string]poolVar {
	pools := map[string]poolVar{}
	for _, f := range pass.Files() {
		syncName, ok := importName(f.AST, "sync")
		if !ok {
			continue
		}
		for _, decl := range f.AST.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					if i >= len(vs.Names) {
						break
					}
					lit := compositeLit(val)
					if lit == nil || !isSelectorOf(lit.Type, syncName, "Pool") {
						continue
					}
					pools[vs.Names[i].Name] = poolVar{
						name:     vs.Names[i].Name,
						elemType: poolElemType(lit),
					}
				}
			}
		}
	}
	return pools
}

func compositeLit(e ast.Expr) *ast.CompositeLit {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return v
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if cl, ok := v.X.(*ast.CompositeLit); ok {
				return cl
			}
		}
	}
	return nil
}

func isSelectorOf(e ast.Expr, pkg, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg && sel.Sel.Name == name
}

// poolElemType extracts T from `sync.Pool{New: func() any { return &T{...} }}`.
func poolElemType(lit *ast.CompositeLit) string {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "New" {
			continue
		}
		fl, ok := kv.Value.(*ast.FuncLit)
		if !ok {
			return ""
		}
		var typ string
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			if cl := compositeLit(ret.Results[0]); cl != nil {
				if id, ok := cl.Type.(*ast.Ident); ok {
					typ = id.Name
				}
			}
			return true
		})
		return typ
	}
	return ""
}

// poolPutCall matches `pool.Put(arg)` against the known pools,
// returning the pool and the argument.
func poolPutCall(pools map[string]poolVar, call *ast.CallExpr) (poolVar, ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return poolVar{}, nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return poolVar{}, nil, false
	}
	pv, ok := pools[id.Name]
	if !ok {
		return poolVar{}, nil, false
	}
	return pv, call.Args[0], true
}

// poolRecyclerHandoff matches a call that hands a pooled pointer to a
// configured recycler — `releaseReq(r)` or method form
// `fut.waitRelease()` — and returns the identifier whose reference is
// relinquished by the call. Package-qualified selectors are excluded:
// the receiver must be a value, not an import name.
func poolRecyclerHandoff(pass *Pass, call *ast.CallExpr) (*ast.Ident, string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if recyclerFuncNames[fun.Name] && len(call.Args) >= 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				return id, fun.Name, true
			}
		}
	case *ast.SelectorExpr:
		if !recyclerFuncNames[fun.Sel.Name] {
			return nil, "", false
		}
		// With arguments, the relinquished pointer is the argument
		// (`p.releaseReq(r)` retires r, not the pipeline receiver);
		// without, it is the receiver (`fut.waitRelease()`).
		if len(call.Args) >= 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				return id, fun.Sel.Name, true
			}
			return nil, "", false
		}
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return nil, "", false
		}
		if pass.Pkg.Info != nil {
			if obj, ok := pass.Pkg.Info.Uses[id]; ok {
				if _, isPkg := obj.(*types.PkgName); isPkg {
					return nil, "", false
				}
			}
		}
		return id, fun.Sel.Name, true
	}
	return nil, "", false
}

// checkRecyclerRule enforces rule 3: every Put in fn must be allowed
// for the pooled type.
func checkRecyclerRule(pass *Pass, pools map[string]poolVar, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pv, _, ok := poolPutCall(pools, call)
		if !ok {
			return true
		}
		name := fn.Name.Name
		if allowed, configured := poolRecyclers[pv.elemType]; configured {
			for _, a := range allowed {
				if name == a {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"%s.Put outside the designated recycler for %s (allowed: %s): scattered Put sites break the pool-safety invariant — route recycling through the recycler, or extend poolRecyclers with a justification",
				pv.name, pv.elemType, strings.Join(allowed, ", "))
			return true
		}
		if !recyclerNameRe.MatchString(name) {
			pass.Reportf(call.Pos(),
				"%s.Put in %s, which is not a recycler: give the pooled type a designated recycler (put*/release*/recycle*/retire*/free*) or register it in poolRecyclers",
				pv.name, name)
		}
		return true
	})
}

// poolPathState tracks, along one control-flow path, which identifiers
// have been Put (ident → position of the retiring Put).
type poolPathState struct {
	put map[string]token.Pos
}

func newPoolPathState() *poolPathState { return &poolPathState{put: map[string]token.Pos{}} }

func (s *poolPathState) clone() *poolPathState {
	cp := newPoolPathState()
	for k, v := range s.put {
		cp.put[k] = v
	}
	return cp
}

func (s *poolPathState) set(other *poolPathState) {
	s.put = map[string]token.Pos{}
	for k, v := range other.put {
		s.put[k] = v
	}
}

// meet keeps only pointers retired on both arms (optimistic join).
func (s *poolPathState) meet(other *poolPathState) {
	for k := range s.put {
		if _, ok := other.put[k]; !ok {
			delete(s.put, k)
		}
	}
}

// checkPutPaths enforces rules 1 and 2 over one function body.
func checkPutPaths(pass *Pass, pools map[string]poolVar, body *ast.BlockStmt) {
	visit := func(stmt ast.Stmt, st *poolPathState) {
		if len(st.put) == 0 {
			return
		}
		// Any appearance of a retired identifier in this statement's own
		// expressions — except as the target of a reassignment — is a
		// use after Put. Function literals are included: a closure
		// created after the Put retains the pointer past it.
		reassigned := map[*ast.Ident]bool{}
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					reassigned[id] = true
				}
			}
		}
		// A re-Put (or re-release via a recycler) of an already-retired
		// pointer is the double-Put case; let effect report it once with
		// the better message.
		rePut := map[string]bool{}
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if _, arg, ok := poolPutCall(pools, call); ok {
					if id, ok := arg.(*ast.Ident); ok {
						rePut[id.Name] = true
					}
				} else if id, _, ok := poolRecyclerHandoff(pass, call); ok {
					rePut[id.Name] = true
				}
			}
		}
		flag := func(id *ast.Ident) {
			if putPos, ok := st.put[id.Name]; ok {
				p := pass.Pkg.Fset.Position(putPos)
				pass.Reportf(id.Pos(),
					"%s used after being returned to its pool at %s:%d: the pool may already have reissued it to another goroutine",
					id.Name, shortPath(p.Filename), p.Line)
			}
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				// A closure built after the Put retains the pointer past
				// it: every retired ident it captures is a use. The body
				// is scanned whole (flowWalk never enters literals).
				ast.Inspect(x.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						flag(id)
					}
					return true
				})
				return false
			case ast.Stmt:
				if x != stmt {
					return false // nested statements get their own visit
				}
			case *ast.Ident:
				if reassigned[x] || rePut[x.Name] {
					return true
				}
				flag(x)
			}
			return true
		})
	}
	effect := func(stmt ast.Stmt, st *poolPathState) {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return
			}
			if _, arg, ok := poolPutCall(pools, call); ok {
				id, ok := arg.(*ast.Ident)
				if !ok {
					return
				}
				if prev, double := st.put[id.Name]; double {
					p := pass.Pkg.Fset.Position(prev)
					pass.Reportf(call.Pos(),
						"double Put of %s (first Put at %s:%d): the pool will issue the same pointer to two goroutines",
						id.Name, shortPath(p.Filename), p.Line)
					return
				}
				st.put[id.Name] = call.Pos()
				return
			}
			// A recycler hand-off relinquishes the caller's reference: the
			// recycler owns refcounting and the Put from here on, so any
			// later touch on this path races the next holder.
			if id, recycler, ok := poolRecyclerHandoff(pass, call); ok {
				if prev, double := st.put[id.Name]; double {
					p := pass.Pkg.Fset.Position(prev)
					pass.Reportf(call.Pos(),
						"%s handed to recycler %s twice (first hand-off at %s:%d): the second release double-frees the reference",
						id.Name, recycler, shortPath(p.Filename), p.Line)
					return
				}
				st.put[id.Name] = call.Pos()
			}
		case *ast.AssignStmt:
			// Reassignment (including a fresh pool.Get) revives the name.
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					delete(st.put, id.Name)
				}
			}
		}
	}
	flowWalk(body, newPoolPathState(), visit, effect)
}
