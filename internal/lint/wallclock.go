package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// wallclockFns are the time-package functions that read or schedule on
// the wall clock. time.Duration arithmetic is fine — it is the currency
// of the virtual clock — but these entry points leak real time into the
// simulation and skew every latency/energy crossover the scheduler
// learns from.
var wallclockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true, "Tick": true,
}

// virtualClockPkgs are the packages whose time must be virtual: the
// simulated OpenCL runtime, the device simulators, the scheduler core,
// the cluster/routing tier, and the trace toolkit. Matched as a suffix
// of the package's module-relative path, so test fixtures can mirror the
// layout.
var virtualClockPkgs = []string{
	"internal/opencl",
	"internal/device",
	"internal/core",
	"internal/cluster",
	"internal/trace",
	// The workload compiler emits virtual-time arrival streams; wall
	// time leaking in would make compiled traces irreproducible. Its
	// scenario subpackage is deliberately NOT listed: live scenario
	// runs pace arrivals on the wall clock by design, and suffix
	// matching keeps internal/workload/scenario out of this entry.
	"internal/workload",
}

var analyzerWallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now, time.Sleep, timers, ...) in virtual-clock packages\n" +
		"(internal/opencl, internal/device, internal/core, internal/cluster, internal/trace,\n" +
		"internal/workload — but not internal/workload/scenario, whose live mode paces real time);\n" +
		"intentional wall-clock sites — the serving pipeline's timers, trace replay, the\n" +
		"cluster's default serving clock — carry a //bomw:wallclock <justification> directive",
	Run: runWallclock,
}

func isVirtualClockPkg(rel string) bool {
	for _, p := range virtualClockPkgs {
		if rel == p || strings.HasSuffix(rel, "/"+p) {
			return true
		}
	}
	return false
}

func runWallclock(pass *Pass) error {
	if !isVirtualClockPkg(pass.Pkg.Rel) {
		return nil
	}
	for _, f := range pass.Files() {
		if f.Test {
			// Tests drive real goroutines and may legitimately sleep or
			// time out on the wall clock.
			continue
		}
		timeName, ok := importName(f.AST, "time")
		if !ok {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeName || !wallclockFns[sel.Sel.Name] {
				return true
			}
			if !identIsPackage(pass, id) {
				return true // shadowed by a local variable
			}
			pass.Reportf(sel.Pos(),
				"wall-clock time.%s in virtual-clock package %s: simulated code must advance only the virtual clock; annotate intentional sites with //bomw:wallclock <why>",
				sel.Sel.Name, pass.Pkg.Rel)
			return true
		})
	}
	return nil
}

// importName returns the file-local name of an import path ("" and
// false when not imported, or imported blank/dot).
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		base := p
		if i := strings.LastIndex(base, "/"); i >= 0 {
			base = base[i+1:]
		}
		return base, true
	}
	return "", false
}

// identIsPackage reports whether the identifier resolves to a package
// name. When type info is missing (test files, broken packages) it
// assumes yes — the import-alias match already happened.
func identIsPackage(pass *Pass, id *ast.Ident) bool {
	if pass.Pkg.Info == nil {
		return true
	}
	obj, ok := pass.Pkg.Info.Uses[id]
	if !ok || obj == nil {
		return true
	}
	_, isPkg := obj.(*types.PkgName)
	return isPkg
}
