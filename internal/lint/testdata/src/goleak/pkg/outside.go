// Outside the goleak scope (not internal/{core,cluster,opencl}): the
// analyzer stays silent even for a detached spinner.
package pkg

func Detach(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}
