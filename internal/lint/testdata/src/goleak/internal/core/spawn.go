// Fixture for the goleak analyzer: every go statement in the serving
// packages needs a visible termination path.
package core

import (
	"context"
	"sync"
)

type pump struct {
	wg   sync.WaitGroup
	quit chan struct{}
	work chan int
}

// startOwned registers on the WaitGroup before spawning: owned.
func (p *pump) startOwned() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for range p.work {
		}
	}()
}

// startDeferredDone carries its ownership inside the body.
func (p *pump) startDeferredDone() {
	go func() {
		defer p.wg.Done()
		for range p.work {
		}
	}()
}

// startGuarded has a ctx.Done() select arm: shutdown reaches it.
func (p *pump) startGuarded(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-p.work:
				_ = v
			}
		}
	}()
}

// startQuit receives from a lifecycle-named channel.
func (p *pump) startQuit() {
	go func() {
		for {
			select {
			case <-p.quit:
				return
			case v := <-p.work:
				_ = v
			}
		}
	}()
}

// startLoop resolves to the loop method, which guards on quit.
func (p *pump) startLoop() {
	go p.loop()
}

func (p *pump) loop() {
	for {
		select {
		case <-p.quit:
			return
		case v := <-p.work:
			_ = v
		}
	}
}

// startBounded runs straight-line work and exits: bounded.
func (p *pump) startBounded(ch chan int) {
	go func() {
		ch <- 42
	}()
}

// startLeaky loops forever with no guard and no registration.
func (p *pump) startLeaky() {
	go func() { // want "goroutine has no visible termination path"
		for {
			p.work <- 1
		}
	}()
}

// startUnresolvable spawns a target the package cannot see.
func (p *pump) startUnresolvable(f func()) {
	go f() // want "goroutine target is not resolvable in this package"
}

// startDetached is an intentional fire-and-forget, justified.
func (p *pump) startDetached() {
	//bomw:goleak metrics flush is wedge-proof: the write has a deadline and the process exits with the node
	go func() {
		for {
			p.work <- 0
		}
	}()
}

// startSpin resolves to spin, which has no guard: the leak is visible
// through the method body.
func (p *pump) startSpin() {
	go p.spin() // want "goroutine has no visible termination path"
}

func (p *pump) spin() {
	for {
		p.work <- 2
	}
}
