// Fixture for the lockorder analyzer: the classic fleet deadlock — the
// sweep takes cluster-then-node, the callback takes node-then-cluster.
// The two halves live in different files; the graph is package-scope.
package cyclic

import "sync"

type Cluster struct {
	mu    sync.Mutex
	nodes []*Node
}

type Node struct {
	mu sync.Mutex
	c  *Cluster
}

func (c *Cluster) sweep() {
	c.mu.Lock()
	for _, n := range c.nodes {
		n.mu.Lock() // want "lock-order cycle"
		n.mu.Unlock()
	}
	c.mu.Unlock()
}
