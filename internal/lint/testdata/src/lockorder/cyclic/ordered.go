package cyclic

import "sync"

// Registry and Entry always lock registry-then-entry: a consistent
// order is acyclic, no finding.
type Registry struct {
	mu      sync.Mutex
	entries []*Entry
}

type Entry struct {
	mu sync.Mutex
}

func (r *Registry) refreshAll() {
	r.mu.Lock()
	for _, e := range r.entries {
		e.mu.Lock()
		e.mu.Unlock()
	}
	r.mu.Unlock()
}

func (r *Registry) refreshOne(e *Entry) {
	r.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	r.mu.Unlock()
}
