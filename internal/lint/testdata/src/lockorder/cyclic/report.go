package cyclic

// report is the other half of the cycle: node lock first, then back
// into the cluster lock. Individually clean; jointly deadlocked.
func (n *Node) report() {
	n.mu.Lock()
	n.c.mu.Lock()
	n.c.mu.Unlock()
	n.mu.Unlock()
}
