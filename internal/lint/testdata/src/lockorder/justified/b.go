package justified

func (n *Node) report() {
	n.mu.Lock()
	//bomw:lockorder report only runs from the prober, which pauses sweeps before calling it
	n.c.mu.Lock()
	n.c.mu.Unlock()
	n.mu.Unlock()
}
