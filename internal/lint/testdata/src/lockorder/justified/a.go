// Directive half of the lockorder fixture: the same cycle as package
// cyclic, but justified with a //bomw:lockorder directive placed at the
// SECOND edge (in b.go) — not at the primary position. The matcher must
// accept the directive at any edge of the cycle.
package justified

import "sync"

type Cluster struct {
	mu    sync.Mutex
	nodes []*Node
}

type Node struct {
	mu sync.Mutex
	c  *Cluster
}

func (c *Cluster) sweep() {
	c.mu.Lock()
	for _, n := range c.nodes {
		n.mu.Lock()
		n.mu.Unlock()
	}
	c.mu.Unlock()
}
