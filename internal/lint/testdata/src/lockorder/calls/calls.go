// Call-through half of the lockorder fixture: neither function nests
// two Lock calls lexically — the cycle only exists through the
// same-package call graph, which the fixpoint must propagate.
package calls

import "sync"

type Hub struct {
	mu    sync.Mutex
	peers []*Peer
}

type Peer struct {
	mu  sync.Mutex
	hub *Hub
}

func (h *Hub) broadcast() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.peers {
		p.poke() // want "lock-order cycle"
	}
}

func (p *Peer) poke() {
	p.mu.Lock()
	defer p.mu.Unlock()
}

func (p *Peer) escalate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hub.size()
}

func (h *Hub) size() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.peers)
}

// spawnSafe: a goroutine spawned under the lock runs later, on its own
// stack — its acquisitions are not edges from the spawner's held set.
func (h *Hub) spawnSafe(p *Peer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	go p.standalone()
}

func (p *Peer) standalone() {
	p.mu.Lock()
	defer p.mu.Unlock()
}
