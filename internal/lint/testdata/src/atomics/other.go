// Second file of the fixture: the atomic use of pressure lives in THIS
// file, the plain access in atomics_cross.go — the facts are
// package-scope, so the analyzer must connect them across files.
package atomics

import "sync/atomic"

type gauge struct {
	pressure uint32
}

func (g *gauge) inflate() {
	atomic.AddUint32(&g.pressure, 1)
}

func (g *gauge) level() uint32 {
	return atomic.LoadUint32(&g.pressure)
}
