// Fixture for the atomics analyzer: mixed atomic/plain access, typed
// whole-value overwrites, and CAS loops under a mutex.
package atomics

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu     sync.Mutex
	hits   int64
	misses int64
	gen    atomic.Int64
	live   atomic.Bool
}

// newCounter is construction scope: plain initialisation is exempt.
func newCounter() *counter {
	c := &counter{}
	c.hits = 0
	c.gen = atomic.Int64{}
	return c
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits // want "plain access of counter.hits, which is accessed atomically"
}

func (c *counter) reset() {
	c.hits = 0 // want "plain access of counter.hits, which is accessed atomically"
}

// misses is never touched atomically: plain access is fine.
func (c *counter) miss() {
	c.misses++
}

func (c *counter) snapshotHits() int64 {
	//bomw:atomics read-only snapshot taken after the pipeline quiesces
	return c.hits
}

func (c *counter) rollGen() {
	c.gen = atomic.Int64{} // want "whole-value store to atomic.Int64 field gen"
}

func (c *counter) setLive(other *counter) {
	c.live = other.live // want "whole-value store to atomic.Bool field live"
}

func (c *counter) storeGen(v int64) {
	c.gen.Store(v) // typed atomic op: fine
}

// casConvoy spins a CAS retry while holding the mutex — the convoy the
// rule exists to prevent.
func (c *counter) casConvoy(v int64) {
	c.mu.Lock()
	for {
		old := c.gen.Load()
		if c.gen.CompareAndSwap(old, v) { // want "CompareAndSwap retried in a loop while mutex c.mu is held"
			break
		}
	}
	c.mu.Unlock()
}

// casFree is the idiomatic lock-free ladder: no mutex, no finding.
func (c *counter) casFree(v int64) {
	for {
		old := c.gen.Load()
		if c.gen.CompareAndSwap(old, v) {
			return
		}
	}
}

// casOnce holds the mutex but the CAS is not in a loop: a single
// attempt under a lock is odd but not a convoy.
func (c *counter) casOnce(v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen.CompareAndSwap(c.gen.Load(), v)
}
