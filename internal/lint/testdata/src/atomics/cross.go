// Third file: plain accesses of gauge.pressure, whose atomic uses live
// in other.go. No sync/atomic import here at all — the mixed-access
// fact must cross the file boundary.
package atomics

type meter struct {
	g gauge
}

func (m *meter) peek() uint32 {
	return m.g.pressure // want "plain access of gauge.pressure, which is accessed atomically"
}

func drain(g *gauge) {
	g.pressure = 0 // want "plain access of gauge.pressure, which is accessed atomically"
}
