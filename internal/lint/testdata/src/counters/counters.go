package counters

import "sync"

// Stats mirrors the guarded accounting structs of internal/core: its
// fields may only move inside Owner's methods while Owner's mutex is
// held.
type Stats struct {
	Submitted int
	Completed int
	PerDevice map[string]int
}

type Owner struct {
	mu    sync.Mutex
	stats Stats
}

// locked mutates under the owner's mutex: the blessed pattern.
func (o *Owner) locked() {
	o.mu.Lock()
	o.stats.Submitted++
	o.stats.PerDevice["gpu"]++
	o.mu.Unlock()
}

// deferredLock holds via defer — still held, still fine.
func (o *Owner) deferredLock() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stats.Completed++
}

func (o *Owner) unlocked() {
	o.stats.Submitted++ // want "mutated without holding o's mutex"
}

func (o *Owner) replaceUnlocked() {
	o.stats = Stats{} // want "mutated without holding o's mutex"
}

// asyncMutation: the closure runs on its own goroutine later, when the
// method's lock is long gone — it must lock for itself.
func (o *Owner) asyncMutation() {
	o.mu.Lock()
	defer o.mu.Unlock()
	go func() {
		o.stats.Completed++ // want "mutated without holding o's mutex"
	}()
}

// snapshot builds a local copy: a local Stats value is not owned state,
// so mutating it is fine even without the lock.
func (o *Owner) snapshot() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := Stats{Submitted: o.stats.Submitted}
	out.PerDevice = map[string]int{}
	out.Completed = o.stats.Completed
	return out
}

// outside is not a method of any type: counters must not move here.
func outside(o *Owner) {
	o.mu.Lock()
	o.stats.Submitted++ // want "outside the owning type's methods"
	o.mu.Unlock()
}
