package senterr

import (
	"errors"
	"fmt"
)

var ErrFull = errors.New("admission queue full")

var errClosed = errors.New("closed")

func compare(err error) int {
	if err == ErrFull { // want "sentinel error ErrFull compared with =="
		return 1
	}
	if err != errClosed { // want "sentinel error errClosed compared with !="
		return 2
	}
	return 0
}

func wrapBad(id int) error {
	return fmt.Errorf("request %d: %v", id, ErrFull) // want "without %w"
}

// ---- clean patterns ----

func compareIs(err error) bool {
	return errors.Is(err, ErrFull) // errors.Is is the contract
}

func nilChecks(err error) bool {
	return err != nil // nil comparisons are fine
}

func wrapGood(id int) error {
	return fmt.Errorf("request %d: %w", id, ErrFull)
}

// ErrorRate is not a sentinel (fourth letter is lowercase in the
// Err-prefix sense — it names a metric, not an error value).
var ErrorRate float64

func metrics(r float64) bool {
	return r == ErrorRate
}
