// Fixture for the poollife analyzer: designated recyclers, use after
// Put, and double Put.
package poollife

import "sync"

// pipeReq is a configured pooled type: only releaseReq may Put it.
type pipeReq struct {
	id  uint64
	gen uint32
}

var reqPool = sync.Pool{
	New: func() any { return &pipeReq{} },
}

// scratch is NOT in poolRecyclers: the fallback demands a
// recycler-shaped function name for its Put sites.
type scratch struct {
	n int
}

var scratchPool = sync.Pool{
	New: func() any { return &scratch{} },
}

// releaseReq is pipeReq's designated recycler.
func releaseReq(r *pipeReq) {
	r.gen++
	reqPool.Put(r)
}

// handle Puts a pipeReq outside the recycler: flagged.
func handle(r *pipeReq) {
	reqPool.Put(r) // want "reqPool.Put outside the designated recycler for pipeReq"
}

// fastDrop is recycler-shaped by name but still not releaseReq: the
// configured allow-list wins over the name heuristic.
func fastDrop(r *pipeReq) {
	reqPool.Put(r) // want "reqPool.Put outside the designated recycler for pipeReq"
}

// hijack justifies its out-of-recycler Put with a directive.
func hijack(r *pipeReq) {
	//bomw:poollife shutdown path, pipeline already drained so no concurrent holder
	reqPool.Put(r)
}

// freeScratch is recycler-shaped, so the fallback allows the Put — but
// it then touches the pointer after retiring it.
func freeScratch(s *scratch) {
	scratchPool.Put(s)
	s.n = 1 // want "s used after being returned to its pool"
}

// freeScratchTwice double-Puts on a straight-line path.
func freeScratchTwice(s *scratch) {
	scratchPool.Put(s)
	scratchPool.Put(s) // want "double Put of s"
}

// freeScratchMaybe Puts on one arm only: the join is optimistic, so the
// later read is clean.
func freeScratchMaybe(s *scratch, done bool) {
	if done {
		scratchPool.Put(s)
		return
	}
	s.n = 2
}

// freeScratchBoth Puts on both arms: the join keeps the fact and the
// later read is flagged.
func freeScratchBoth(s *scratch, fast bool) {
	if fast {
		scratchPool.Put(s)
	} else {
		scratchPool.Put(s)
	}
	s.n = 3 // want "s used after being returned to its pool"
}

// freeAndRenew re-acquires from the pool: the reassignment revives the
// name, so the final read is clean.
func freeAndRenew(s *scratch) int {
	scratchPool.Put(s)
	s = scratchPool.Get().(*scratch)
	return s.n
}

// stash retains the retired pointer inside a closure built after the
// Put — retention past Put, flagged.
func freeScratchStash(s *scratch) func() int {
	scratchPool.Put(s)
	return func() int { return s.n } // want "s used after being returned to its pool"
}

// mint is not a recycler and mints nothing pooled: Put of a scratch in
// a non-recycler-shaped function trips the fallback rule.
func mint(s *scratch) {
	scratchPool.Put(s) // want "scratchPool.Put in mint, which is not a recycler"
}

// Future mirrors the serving pipeline's second pooled carrier so the
// method-form recycler hand-off (fut.waitRelease()) is exercised too.
type Future struct {
	seq uint64
}

var futPool = sync.Pool{
	New: func() any { return &Future{} },
}

// waitRelease is one of Future's designated recyclers.
func (f *Future) waitRelease() {
	f.seq++
	futPool.Put(f)
}

// handoff relinquishes r to the recycler, then touches it: from the
// caller's side that is use-after-release even though the Put itself
// happens inside releaseReq.
func handoff(r *pipeReq) uint64 {
	releaseReq(r)
	return r.id // want "r used after being returned to its pool"
}

// handoffTwice releases the same reference twice through the wrapper.
func handoffTwice(r *pipeReq) {
	releaseReq(r)
	releaseReq(r) // want "r handed to recycler releaseReq twice"
}

// handoffMethod relinquishes via the method-form recycler and then
// reads the receiver.
func handoffMethod(f *Future) uint64 {
	f.waitRelease()
	return f.seq // want "f used after being returned to its pool"
}

// handoffDeferred is clean: a deferred hand-off runs at function exit,
// so the body's reads precede the release.
func handoffDeferred(r *pipeReq) uint64 {
	defer releaseReq(r)
	return r.id
}

// handoffOneArm is clean: the release happens on one branch only and
// the join is optimistic.
func handoffOneArm(r *pipeReq, keep bool) uint64 {
	if !keep {
		releaseReq(r)
		return 0
	}
	return r.id
}
