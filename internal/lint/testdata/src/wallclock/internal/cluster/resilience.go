// Package cluster mirrors the real routing tier's chaos/resilience
// wall-clock shapes: the default serving clock anchors on time.Now and
// the reactive hedge timer arms time.AfterFunc — both justified with
// directives — while unannotated timer reads must be flagged.
package cluster

import "time"

type injector struct {
	clock func() time.Duration
}

// defaultClock is the justified exception: the fleet's default virtual
// clock IS wall time anchored at creation.
func defaultClock() func() time.Duration {
	//bomw:wallclock fixture: the default serving clock is wall time since creation
	start := time.Now()
	//bomw:wallclock fixture: see above — wall-since-creation mapping
	return func() time.Duration { return time.Since(start) }
}

// armHedge mirrors the reactive node-hedge timer: firing at half the
// deadline slack is a wall-clock action on the serving path.
func armHedge(fire func()) *time.Timer {
	//bomw:wallclock fixture: reactive hedge timer fires on real slack in serving mode
	return time.AfterFunc(time.Millisecond, fire)
}

// badHedge forgets the directive — chaos code gets no free pass.
func badHedge(fire func()) *time.Timer {
	return time.AfterFunc(time.Millisecond, fire) // want "wall-clock time.AfterFunc in virtual-clock package"
}

// windowPoll reads the wall clock to evaluate a crash window without
// justification.
func (i *injector) windowPoll() bool {
	deadline := time.Now() // want "wall-clock time.Now in virtual-clock package"
	return deadline.IsZero()
}
