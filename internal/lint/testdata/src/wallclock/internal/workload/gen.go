// Package workload mirrors internal/workload in the fixture tree: the
// arrival-stream compiler is virtual-clock territory, so wall-clock
// reads here are findings. (internal/workload/scenario is deliberately
// outside the scope — its live mode paces real time.)
package workload

import "time"

func seedFromClock() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now in virtual-clock package"
}

// virtualArrivals only manipulates durations, the virtual-clock
// currency: no finding.
func virtualArrivals(gap time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i) * gap
	}
	return out
}

func pace() {
	//bomw:wallclock fixture: justified pacing exception
	time.Sleep(time.Millisecond)
}
