// Package scenario mirrors internal/workload/scenario: the live
// scenario harness paces arrivals on the real clock by design, so it
// sits outside the virtual-clock scope and this file must produce no
// findings even though it reads wall time freely.
package scenario

import "time"

func PaceGap(gap time.Duration) {
	time.Sleep(gap)
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
