package core

import "time"

func tick() {
	now := time.Now()            // want "wall-clock time.Now in virtual-clock package"
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep"
	_ = now
}

// elapsed only shuffles durations — the currency of the virtual clock —
// so it produces no finding.
func elapsed(a, b time.Duration) time.Duration {
	return b - a
}

func suppressed() {
	//bomw:wallclock fixture: this sleep is the intentional, justified exception
	time.Sleep(time.Millisecond)
}

func needsJustification() {
	//bomw:wallclock
	time.Sleep(time.Millisecond)
}

//bomw:wallclock stale: nothing on the next line reads the clock
func unused() {}

//bomw:wallclock:extra malformed because of the second colon
func malformed() {}

// Directive-position findings cannot carry a trailing want comment (it
// would merge into the directive text), so they use absolute lines:
//
// want:23 "needs a justification"
// want:27 "unused //bomw:wallclock directive"
// want:30 "malformed //bomw: directive"
