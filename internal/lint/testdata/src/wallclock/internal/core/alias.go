package core

import t "time"

type fakeClock struct{}

func (fakeClock) Now() t.Duration { return 0 }

func aliased() {
	_ = t.Now() // want "wall-clock time.Now"
}

// shadowed's t is a local fakeClock, not the time package: no finding.
func shadowed() t.Duration {
	var t fakeClock
	return t.Now()
}
