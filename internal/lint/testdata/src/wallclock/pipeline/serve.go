// Package pipeline sits outside the virtual-clock scope: the serving
// layer may read real time freely, so this file must produce no
// findings at all.
package pipeline

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func Nap() {
	time.Sleep(time.Millisecond)
}
