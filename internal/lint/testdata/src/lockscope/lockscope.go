package lockscope

import "sync"

type future struct{ done chan struct{} }

func (f *future) Wait() { <-f.done }

func sendHeld(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want "channel send while mutex mu is held"
	mu.Unlock()
}

func recvHeld(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	v := <-ch // want "channel receive while mutex mu is held"
	mu.Unlock()
	return v
}

func selectHeld(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	select { // want "blocking select while mutex mu is held"
	case <-ch:
	}
	mu.Unlock()
}

func waitHeld(mu *sync.Mutex, f *future) {
	mu.Lock()
	f.Wait() // want "blocking f.Wait call while mutex mu is held"
	mu.Unlock()
}

func nested(a, b *sync.Mutex) {
	a.Lock()
	b.Lock() // want "mutex b acquired while a is held"
	b.Unlock()
	a.Unlock()
}

func reacquire(mu *sync.Mutex) {
	mu.Lock()
	mu.Lock() // want "mutex mu re-acquired while already held"
	mu.Unlock()
}

func deferredHeld(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock() // held to function end: the send below still fires
	ch <- 1           // want "channel send while mutex mu is held"
}

// ---- clean patterns: none of these may produce a finding ----

// unlockFirst releases before blocking.
func unlockFirst(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	mu.Unlock()
	ch <- 1
}

// branchRelease unlocks on both paths; the fall-through send runs
// lock-free because the terminating branch does not propagate state.
func branchRelease(mu *sync.Mutex, ch chan int, fast bool) {
	mu.Lock()
	if fast {
		mu.Unlock()
		return
	}
	mu.Unlock()
	ch <- 1
}

// selectDefault is non-blocking: the default case guarantees progress.
func selectDefault(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	mu.Unlock()
}

// closureLater returns a closure that sends after the caller released
// the lock; function literals are analyzed as their own functions.
func closureLater(mu *sync.Mutex, ch chan int) func() {
	mu.Lock()
	defer mu.Unlock()
	return func() { ch <- 1 }
}

// goRunsElsewhere: a go statement's call runs concurrently, not under
// this goroutine's locks.
func goRunsElsewhere(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	go send(ch)
}

func send(ch chan int) { ch <- 1 }
