package ctxparam

import "context"

type badCarrier struct {
	name string
	ctx  context.Context // want "context.Context stored in struct field ctx"
}

// okCarrier is the blessed exception: a per-request carrier whose
// context travels with the request by design.
type okCarrier struct {
	//bomw:ctxparam request carrier: stages observe this request's cancellation at queue boundaries
	ctx context.Context
}

func ctxSecond(id int, ctx context.Context) { // want "context.Context is not the first parameter"
	_ = id
	_ = ctx
}

// ---- clean patterns ----

func ctxFirst(ctx context.Context, id int) {
	_ = ctx
	_ = id
}

func noCtx(id int) int { return id }

var _ = badCarrier{}
var _ = okCarrier{}
