package device

import (
	"fmt"
	"time"
)

// §I names "changes to a processor's clock frequency" among the dynamic
// fluctuations the scheduler must survive. Two mechanisms produce them:
//
//   - a DVFS governor: the operating system (or a power cap) rescales a
//     device's clocks and voltage, trading speed for watts;
//   - thermal throttling: sustained load exhausts the thermal budget and
//     the device drops below its sustained clocks until it cools.
//
// Both are opt-in: DefaultProfiles ship with no thermal limit and the
// performance governor, matching the paper's testbed conditions.

// Thermal extends a Profile with a leaky-bucket heat model. Heat
// accumulates during busy time and drains when idle; when the bucket is
// full the device runs at ThrottleClock of its normal speed.
type Thermal struct {
	// Window is the bucket capacity expressed as busy time at full
	// power; zero disables throttling.
	Window time.Duration
	// DrainRate is how fast heat drains relative to its accumulation
	// (1 = idle drains as fast as busy fills). Defaults to 0.5.
	DrainRate float64
	// ThrottleClock is the clock fraction under full throttle, (0, 1].
	ThrottleClock float64
}

// SetThermal installs (or clears, with a zero Window) the thermal model.
func (d *Device) SetThermal(t Thermal) error {
	if t.Window < 0 {
		return fmt.Errorf("device: negative thermal window")
	}
	if t.Window > 0 && (t.ThrottleClock <= 0 || t.ThrottleClock > 1) {
		return fmt.Errorf("device: throttle clock %g outside (0,1]", t.ThrottleClock)
	}
	if t.DrainRate <= 0 {
		t.DrainRate = 0.5
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.thermal = t
	d.heat = 0
	return nil
}

// thermalFactorLocked returns the current clock multiplier in
// [ThrottleClock, 1] and assumes the heat state is already drained to
// time now.
func (d *Device) thermalFactorLocked() float64 {
	if d.thermal.Window <= 0 {
		return 1
	}
	fill := float64(d.heat) / float64(d.thermal.Window)
	if fill > 1 {
		fill = 1
	}
	return 1 - fill*(1-d.thermal.ThrottleClock)
}

// heatAfterLocked charges busy time into the bucket.
func (d *Device) heatAfterLocked(busy time.Duration) {
	if d.thermal.Window <= 0 {
		return
	}
	d.heat += busy
	if d.heat > d.thermal.Window {
		d.heat = d.thermal.Window
	}
}

// coolHeatLocked drains the bucket for an idle gap.
func (d *Device) coolHeatLocked(idle time.Duration) {
	if d.thermal.Window <= 0 || d.heat == 0 || idle <= 0 {
		return
	}
	d.heat -= time.Duration(float64(idle) * d.thermal.DrainRate)
	if d.heat < 0 {
		d.heat = 0
	}
}

// ThermalFill reports the heat bucket's fill fraction as it would stand
// at time now (0 = cold, 1 = fully throttled). Pure probe: no state is
// committed.
func (d *Device) ThermalFill(now time.Duration) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.thermal.Window <= 0 {
		return 0
	}
	heat := d.heat
	if idle := now - d.lastEnd; idle > 0 {
		heat -= time.Duration(float64(idle) * d.thermal.DrainRate)
		if heat < 0 {
			heat = 0
		}
	}
	fill := float64(heat) / float64(d.thermal.Window)
	if fill > 1 {
		fill = 1
	}
	return fill
}

// SetGovernor applies a DVFS operating point: clockScale rescales the
// device's effective compute rate, powerScale its active power. The
// performance governor is (1, 1); a powersave governor might be
// (0.6, 0.45). Both must be in (0, 1].
func (d *Device) SetGovernor(clockScale, powerScale float64) error {
	if clockScale <= 0 || clockScale > 1 || powerScale <= 0 || powerScale > 1 {
		return fmt.Errorf("device: governor scales (%g, %g) outside (0,1]", clockScale, powerScale)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.govClock = clockScale
	d.govPower = powerScale
	return nil
}

// govClockLocked returns the governor clock multiplier (1 when unset).
func (d *Device) govClockLocked() float64 {
	if d.govClock == 0 {
		return 1
	}
	return d.govClock
}

// govPowerLocked returns the governor power multiplier (1 when unset).
func (d *Device) govPowerLocked() float64 {
	if d.govPower == 0 {
		return 1
	}
	return d.govPower
}
