package device

import (
	"testing"
	"time"

	"bomw/internal/models"
)

// The tests in this file encode the acceptance checks of DESIGN.md §3:
// the qualitative shapes of the paper's Fig. 3 and Fig. 4 must hold on the
// calibrated device models. Crossover points are asserted to bracket the
// paper's values within one order of magnitude, per the reproduction rule
// ("who wins, by roughly what factor, where crossovers fall").

// latencyAt runs one batch on a fresh device, optionally pre-warmed.
func latencyAt(p Profile, warm bool, w Workload, n int) time.Duration {
	d := New(p)
	if warm {
		d.Warm(0)
	}
	return d.Execute(0, w, n).Latency
}

func workloadFor(t *testing.T, name string) Workload {
	t.Helper()
	spec, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return WorkloadOf(spec.MustBuild(1))
}

// crossover returns the smallest batch in sizes where the dGPU beats the
// CPU, or -1 if the CPU wins everywhere.
func crossover(t *testing.T, w Workload, warm bool, sizes []int) int {
	t.Helper()
	cpu := IntelCoreI7_8700()
	gpu := NvidiaGTX1080Ti()
	for _, n := range sizes {
		if latencyAt(gpu, warm, w, n) < latencyAt(cpu, true, w, n) {
			return n
		}
	}
	return -1
}

var sweepSizes = []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144}

func TestFig3aSimpleCrossovers(t *testing.T) {
	w := workloadFor(t, "simple")
	warm := crossover(t, w, true, sweepSizes)
	// Paper: CPU wins up to 2048 against a warm GPU. Accept within one
	// order of magnitude: crossover in [512, 32768].
	if warm < 512 || warm > 32768 {
		t.Fatalf("simple warm crossover at %d, paper ≈2048", warm)
	}
	// Paper: against an idle-start GPU the CPU wins at every tested size.
	if idle := crossover(t, w, false, sweepSizes); idle != -1 {
		t.Fatalf("simple idle crossover at %d, paper: CPU wins everywhere", idle)
	}
}

func TestFig3eCifarCrossovers(t *testing.T) {
	w := workloadFor(t, "cifar-10")
	warm := crossover(t, w, true, sweepSizes)
	if warm == -1 || warm < 2 || warm > 64 {
		t.Fatalf("cifar warm crossover at %d, paper ≈8", warm)
	}
	idle := crossover(t, w, false, sweepSizes)
	if idle == -1 || idle < 16 || idle > 1024 {
		t.Fatalf("cifar idle crossover at %d, paper ≈128", idle)
	}
	if idle <= warm {
		t.Fatalf("idle crossover (%d) must come later than warm (%d)", idle, warm)
	}
}

func TestFig3cMnistDeepCrossoverSmall(t *testing.T) {
	w := workloadFor(t, "mnist-deep")
	warm := crossover(t, w, true, sweepSizes)
	idle := crossover(t, w, false, sweepSizes)
	// Paper: CPU wins only up to ≈8 regardless of GPU state.
	if warm == -1 || warm > 64 {
		t.Fatalf("mnist-deep warm crossover at %d, paper ≈8", warm)
	}
	if idle == -1 || idle > 128 {
		t.Fatalf("mnist-deep idle crossover at %d, paper ≈8", idle)
	}
}

func TestFig3bIdleConvergesToWarm(t *testing.T) {
	// Paper (Fig. 3b): past batch ≈512 the idle-start GPU's latency grows
	// better than linearly until it matches the warm GPU at ≥64K samples.
	w := workloadFor(t, "mnist-small")
	gpu := NvidiaGTX1080Ti()
	smallRatio := float64(latencyAt(gpu, false, w, 256)) / float64(latencyAt(gpu, true, w, 256))
	bigRatio := float64(latencyAt(gpu, false, w, 131072)) / float64(latencyAt(gpu, true, w, 131072))
	if smallRatio < 2 {
		t.Fatalf("idle penalty at small batch should be large, got %.2fx", smallRatio)
	}
	if bigRatio > 1.3 {
		t.Fatalf("idle and warm must converge at 128K samples, got %.2fx", bigRatio)
	}
	if bigRatio >= smallRatio {
		t.Fatal("idle/warm ratio must shrink with batch size")
	}
}

func TestFig3ThroughputSpans(t *testing.T) {
	// Paper: dGPU peak throughput spans ≈0.8–20 Gbit/s across models and
	// the CPU ≈0.05–15 Gbit/s. Require the same relative spread (>10x
	// between the best and worst model) and peaks within ~3x of the paper.
	maxOf := func(p Profile) (lo, hi float64) {
		lo = 1e18
		for _, spec := range models.PaperModels() {
			w := WorkloadOf(spec.MustBuild(1))
			best := 0.0
			for _, n := range sweepSizes {
				d := New(p)
				d.Warm(0)
				r := d.Execute(0, w, n)
				if g := r.ThroughputGbps(w.SampleBytes); g > best {
					best = g
				}
			}
			if best < lo {
				lo = best
			}
			if best > hi {
				hi = best
			}
		}
		return lo, hi
	}
	gLo, gHi := maxOf(NvidiaGTX1080Ti())
	cLo, cHi := maxOf(IntelCoreI7_8700())
	if gHi < 7 || gHi > 60 {
		t.Fatalf("dGPU peak %.1f Gbit/s, paper ≈20", gHi)
	}
	if gHi/gLo < 5 {
		t.Fatalf("dGPU peak spread %.1fx too narrow (paper 25x)", gHi/gLo)
	}
	if cHi < 2 || cHi > 45 {
		t.Fatalf("CPU peak %.1f Gbit/s, paper ≈15", cHi)
	}
	if cHi/cLo < 10 {
		t.Fatalf("CPU peak spread %.1fx too narrow (paper 300x)", cHi/cLo)
	}
	if gHi <= cHi {
		t.Fatal("dGPU peak must exceed CPU peak")
	}
}

func TestFig4IdleStartAlwaysCostsMoreEnergy(t *testing.T) {
	// Paper: "when the GPU starts from an idle state, it always consumes
	// more energy in all the machine learning models".
	for _, spec := range models.PaperModels() {
		w := WorkloadOf(spec.MustBuild(1))
		for _, n := range []int{8, 512, 32768} {
			cold := New(NvidiaGTX1080Ti())
			warm := New(NvidiaGTX1080Ti())
			warm.Warm(0)
			ec := cold.Execute(0, w, n).EnergyJ()
			ew := warm.Execute(0, w, n).EnergyJ()
			if ec <= ew {
				t.Fatalf("%s batch %d: cold %gJ ≤ warm %gJ", spec.Name, n, ec, ew)
			}
		}
	}
}

func TestFig4NoDeviceRulesThemAll(t *testing.T) {
	// Paper: "there is no device to rule them all" — the energy-best
	// device must change across (model, batch, state) configurations.
	winners := map[string]bool{}
	for _, spec := range models.PaperModels() {
		w := WorkloadOf(spec.MustBuild(1))
		for _, n := range []int{2, 64, 4096, 262144} {
			for _, gpuWarm := range []bool{false, true} {
				bestD, bestE := "", 0.0
				for _, p := range DefaultProfiles() {
					d := New(p)
					if gpuWarm {
						d.Warm(0)
					}
					e := d.Execute(0, w, n).EnergyJ()
					if bestD == "" || e < bestE {
						bestD, bestE = p.Name, e
					}
				}
				winners[bestD] = true
			}
		}
	}
	if len(winners) < 2 {
		t.Fatalf("a single device wins every energy configuration: %v", winners)
	}
}

func TestFig4WarmGPUBeatsIGPUOnBigBatches(t *testing.T) {
	// Paper (Fig. 4b): for mid-size batches the iGPU is the most
	// energy-efficient device when the dGPU is cold, but the warmed dGPU
	// takes over.
	w := workloadFor(t, "mnist-small")
	n := 2048
	igpu := New(IntelUHD630()).Execute(0, w, n).EnergyJ()
	cold := New(NvidiaGTX1080Ti()).Execute(0, w, n).EnergyJ()
	warmDev := New(NvidiaGTX1080Ti())
	warmDev.Warm(0)
	warm := warmDev.Execute(0, w, n).EnergyJ()
	if !(igpu < cold) {
		t.Fatalf("iGPU (%gJ) should beat a cold dGPU (%gJ) at batch %d", igpu, cold, n)
	}
	if !(warm < igpu) {
		t.Fatalf("a warm dGPU (%gJ) should beat the iGPU (%gJ) at batch %d", warm, igpu, n)
	}
}

func TestWorkloadOfPaperModels(t *testing.T) {
	for _, spec := range models.PaperModels() {
		w := WorkloadOf(spec.MustBuild(1))
		if w.Model != spec.Name {
			t.Fatalf("workload model %q", w.Model)
		}
		if w.FlopsPerSample <= 0 || w.ItemsPerSample <= 0 || w.Kernels <= 0 || w.AvgLayerWidth <= 0 {
			t.Fatalf("%s: degenerate workload %+v", spec.Name, w)
		}
		if w.WeightBytes != spec.MustBuild(1).ParamBytes() {
			t.Fatalf("%s: weight bytes mismatch", spec.Name)
		}
	}
	// Kernel counts: FFNN = layers; CNN = convs + pools + dense.
	if w := workloadFor(t, "simple"); w.Kernels != 3 {
		t.Fatalf("simple kernels = %d, want 3", w.Kernels)
	}
	if w := workloadFor(t, "cifar-10"); w.Kernels != 6+3+2 {
		t.Fatalf("cifar kernels = %d, want 11", w.Kernels)
	}
}
