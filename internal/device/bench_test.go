package device

import (
	"testing"

	"bomw/internal/models"
)

func BenchmarkExecuteAggregate(b *testing.B) {
	w := WorkloadOf(models.MnistSmall().MustBuild(1))
	d := New(NvidiaGTX1080Ti())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Execute(0, w, 4096)
	}
}

func BenchmarkExecutePerKernel(b *testing.B) {
	net := models.Cifar10().MustBuild(1)
	layers := LayerWorkloads(net)
	d := New(NvidiaGTX1080Ti())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := d.Transfer(0, 4096*12288).Start
		for _, lw := range layers {
			r := d.ExecuteCompute(at, lw, 4096)
			at = r.Start + r.Latency
		}
	}
}

func BenchmarkStateProbe(b *testing.B) {
	d := New(NvidiaGTX1080Ti())
	d.Warm(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.StateAt(0)
	}
}

func BenchmarkWorkloadOf(b *testing.B) {
	net := models.Cifar10().MustBuild(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WorkloadOf(net)
	}
}
