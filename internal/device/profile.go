// Package device models the three heterogeneous processors of the paper's
// testbed (§III-A) — the Intel i7-8700 CPU, its integrated UHD Graphics 630
// GPU, and a discrete NVIDIA GTX 1080 Ti — as calibrated analytical cost
// models over a virtual clock.
//
// The tensor math of a classification batch really executes on the host
// (internal/opencl drives it); this package decides how long that batch is
// charged to take on each simulated device, and how many Joules it draws,
// using first-order architectural physics:
//
//   - a roofline of peak FLOP/s versus memory bandwidth, with weight-reuse
//     factors standing in for caches and warp-level broadcast;
//   - per-kernel launch overhead and per-work-group dispatch cost
//     (OpenCL's clEnqueueNDRangeKernel structure, §IV-B);
//   - a PCIe transfer model whose effective bandwidth ramps with transfer
//     size (the paper's "PCIe cannot handle small transfers" observation,
//     §II-A) — discrete GPU only;
//   - a GPU Boost 3.0 clock state machine: the discrete GPU starts at a
//     fraction of its boost clock and warms with accumulated busy time,
//     cooling back down when idle (footnote 1 of the paper);
//   - an idle/active power model with host-assist power, so dGPU runs are
//     charged for the CPU work that feeds them (§IV-C).
//
// All constants live in Profile values so alternative devices (FPGAs,
// NPUs, DSPs — the paper's device-agnostic claim) are just new profiles.
package device

import "time"

// Kind classifies a processing device.
type Kind int

const (
	// CPU is a multi-core host processor.
	CPU Kind = iota
	// IntegratedGPU shares the host memory controller and LLC (§II-A).
	IntegratedGPU
	// DiscreteGPU communicates with the host over PCIe.
	DiscreteGPU
	// Accelerator is any other co-processor (FPGA, NPU, DSP).
	Accelerator
)

// String returns a short device-kind name.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case IntegratedGPU:
		return "igpu"
	case DiscreteGPU:
		return "dgpu"
	case Accelerator:
		return "accel"
	default:
		return "unknown"
	}
}

// Profile holds every calibration constant of one device's cost model.
type Profile struct {
	Name string
	Kind Kind

	// Compute.
	PeakGFLOPS    float64 // sustained fp32 throughput at boost clocks
	ParallelWidth int     // concurrent work-items needed to saturate the device
	WorkGroupSize int     // preferred work-items per work-group (§IV-B)
	PerItemNs     float64 // per-work-item dispatch overhead, ns
	PerGroupNs    float64 // per-work-group scheduling overhead, ns
	KernelLaunch  time.Duration

	// Memory.
	MemBandwidthGBs float64 // device global-memory bandwidth
	CacheBytes      int64   // last-level cache available to kernels
	WeightReuse     float64 // effective reuse of streamed weights
	// (SIMD lanes / warp broadcast across samples)

	// Host interconnect. Zero PCIe bandwidth means unified memory
	// (clEnqueueMapBuffer zero-copy, §IV-B).
	PCIeGBs       float64
	PCIeLatency   time.Duration // fixed cost per transfer direction
	PCIeRampBytes int64         // transfer size at which half of peak BW is reached

	// Power.
	IdleWatts   float64 // device drawing no work
	ActiveWatts float64 // device at full utilisation and full clocks
	HostWatts   float64 // host-side orchestration power while this device runs

	// Boost clock state machine (discrete GPUs).
	HasBoost   bool
	IdleClock  float64       // fraction of boost clocks when cold, (0,1]
	WarmupBusy time.Duration // accumulated busy time to reach full boost
	Cooldown   time.Duration // idle time to fall back to cold clocks
}

// IntelCoreI7_8700 models the paper's host CPU: 6 cores / 12 threads at
// 3.7 GHz with AVX2, 12 MB shared L3, dual-channel DDR4-2666 at 41.6 GB/s,
// 95 W TDP.
func IntelCoreI7_8700() Profile {
	return Profile{
		Name:            "i7-8700 CPU",
		Kind:            CPU,
		PeakGFLOPS:      300,
		ParallelWidth:   96, // 12 hardware threads × 8 SIMD lanes
		WorkGroupSize:   4096,
		PerItemNs:       1.1,
		PerGroupNs:      400,
		KernelLaunch:    3 * time.Microsecond,
		MemBandwidthGBs: 41.6,
		CacheBytes:      12 << 20,
		WeightReuse:     12,
		IdleWatts:       8,
		ActiveWatts:     95,
		HostWatts:       0, // the CPU is the host
	}
}

// IntelUHD630 models the integrated GPU on the same die: 24 execution
// units, 460.8 GFLOPS at 1200 MHz, sharing the LLC and memory controller
// with the CPU (§III-A), TDP estimated near 20 W.
func IntelUHD630() Profile {
	return Profile{
		Name:            "UHD Graphics 630",
		Kind:            IntegratedGPU,
		PeakGFLOPS:      460.8,
		ParallelWidth:   1344, // 24 EUs × 7 threads × SIMD8
		WorkGroupSize:   256,
		PerItemNs:       0.12,
		PerGroupNs:      250,
		KernelLaunch:    14 * time.Microsecond,
		MemBandwidthGBs: 41.6, // shared with the CPU
		CacheBytes:      768 << 10,
		WeightReuse:     8,
		IdleWatts:       1.5,
		ActiveWatts:     20,
		HostWatts:       10, // CPU feeding the shared queue
	}
}

// NvidiaGTX1080Ti models the discrete GPU: 3584 cores in 28 SMs,
// 10.6 TFLOPS, 11 GB GDDR5X at 484 GB/s, 250 W TDP, PCIe 3.0 ×16, with
// GPU Boost 3.0 clock scaling (footnote 1).
func NvidiaGTX1080Ti() Profile {
	return Profile{
		Name:            "GTX 1080 Ti",
		Kind:            DiscreteGPU,
		PeakGFLOPS:      10600,
		ParallelWidth:   57344, // 28 SMs × 2048 resident threads
		WorkGroupSize:   256,
		PerItemNs:       0.02,
		PerGroupNs:      110,
		KernelLaunch:    40 * time.Microsecond,
		MemBandwidthGBs: 484,
		CacheBytes:      3 << 20,
		WeightReuse:     32, // warp-level broadcast of weight rows
		PCIeGBs:         12,
		PCIeLatency:     12 * time.Microsecond,
		PCIeRampBytes:   256 << 10,
		IdleWatts:       52,
		ActiveWatts:     230,
		HostWatts:       25, // data collection, DMA setup, kernel spawn
		HasBoost:        true,
		IdleClock:       0.12,
		WarmupBusy:      60 * time.Millisecond,
		Cooldown:        2 * time.Second,
	}
}

// DefaultProfiles returns the paper's three devices in scheduler class
// order (CPU, dGPU, iGPU would be arbitrary; we keep CPU, iGPU, dGPU).
func DefaultProfiles() []Profile {
	return []Profile{IntelCoreI7_8700(), IntelUHD630(), NvidiaGTX1080Ti()}
}
