package device

import (
	"fmt"
	"strings"
	"time"
)

// Breakdown decomposes one hypothetical execution into the cost-model
// terms, so operators can audit *why* a device wins or loses a
// configuration — the explainability counterpart to the scheduler's
// learned decisions.
type Breakdown struct {
	Device string
	Batch  int

	Transfer time.Duration // PCIe in+out (zero on unified memory)
	Launch   time.Duration // kernel launch overhead
	Dispatch time.Duration // work-item + work-group scheduling
	Compute  time.Duration // FLOP time at the achieved utilisation
	Memory   time.Duration // bytes / bandwidth (roofline partner)

	Utilization  float64
	ClockFrac    float64       // boost clock fraction at start
	Bound        string        // "compute" or "memory"
	TotalLatency time.Duration // as Execute would charge it
	EnergyJ      float64
}

// Explain computes the cost breakdown for a batch on a fresh device with
// the given warm state, without mutating any live device.
func Explain(p Profile, w Workload, n int, warm bool) Breakdown {
	d := New(p)
	if warm {
		d.Warm(0)
	}
	d.mu.Lock()
	util := d.utilization(w, n)
	transfer := d.transferTime(w, n)
	launch := time.Duration(w.Kernels) * p.KernelLaunch
	dispatch := d.dispatchTime(w, n)

	flops := float64(int64(n) * w.FlopsPerSample)
	tComp := time.Duration(flops / (p.PeakGFLOPS * 1e9 * util) * float64(time.Second))
	traffic := float64(int64(n) * (w.SampleBytes + 2*w.ActivationBytes))
	if w.WeightBytes <= p.CacheBytes {
		traffic += float64(w.WeightBytes)
	} else {
		traffic += float64(int64(n)*w.WeightBytes) / p.WeightReuse
	}
	tMem := time.Duration(traffic / (p.MemBandwidthGBs * 1e9) * float64(time.Second))
	frac := d.clockFracLocked()
	d.mu.Unlock()

	bound := "compute"
	if tMem > tComp {
		bound = "memory"
	}
	rep := d.Execute(0, w, n)
	return Breakdown{
		Device:       p.Name,
		Batch:        n,
		Transfer:     transfer,
		Launch:       launch,
		Dispatch:     dispatch,
		Compute:      tComp,
		Memory:       tMem,
		Utilization:  util,
		ClockFrac:    frac,
		Bound:        bound,
		TotalLatency: rep.Latency,
		EnergyJ:      rep.EnergyJ(),
	}
}

// String renders the breakdown as an audit block.
func (b Breakdown) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "%s (batch %d):\n", b.Device, b.Batch)
	row := func(k string, v interface{}) { fmt.Fprintf(&s, "  %-12s %v\n", k, v) }
	row("transfer", b.Transfer)
	row("launch", b.Launch)
	row("dispatch", b.Dispatch)
	row("compute", b.Compute)
	row("memory", b.Memory)
	row("bound by", b.Bound)
	row("utilization", fmt.Sprintf("%.2f", b.Utilization))
	row("clocks", fmt.Sprintf("%.2f", b.ClockFrac))
	row("latency", b.TotalLatency)
	row("energy", fmt.Sprintf("%.4g J", b.EnergyJ))
	return s.String()
}
