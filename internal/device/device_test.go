package device

import (
	"strings"
	"testing"
	"time"

	"bomw/internal/models"
	"bomw/internal/nn"
)

// testWorkload is a hand-sized workload for unit tests.
func testWorkload() Workload {
	return Workload{
		Model:           "test",
		FlopsPerSample:  1000,
		SampleBytes:     64,
		OutputBytes:     8,
		WeightBytes:     4096,
		ActivationBytes: 128,
		ItemsPerSample:  20,
		Kernels:         2,
		AvgLayerWidth:   10,
	}
}

func TestExecutePanicsOnBadBatch(t *testing.T) {
	d := New(IntelCoreI7_8700())
	defer func() {
		if recover() == nil {
			t.Fatal("Execute(n=0) did not panic")
		}
	}()
	d.Execute(0, testWorkload(), 0)
}

func TestExecuteBasicInvariants(t *testing.T) {
	for _, p := range DefaultProfiles() {
		d := New(p)
		r := d.Execute(0, testWorkload(), 16)
		if r.Latency <= 0 {
			t.Fatalf("%s: non-positive latency", p.Name)
		}
		if r.EnergyJ() <= 0 {
			t.Fatalf("%s: non-positive energy", p.Name)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Fatalf("%s: utilization %g out of (0,1]", p.Name, r.Utilization)
		}
		if r.Device != p.Name || r.Model != "test" || r.Batch != 16 {
			t.Fatalf("%s: report identity fields wrong: %+v", p.Name, r)
		}
		if r.Latency != r.Transfer+r.Launch+r.Compute && p.Kind != DiscreteGPU {
			// For non-boost devices the breakdown must add up exactly.
			t.Fatalf("%s: breakdown %v+%v+%v != %v", p.Name, r.Transfer, r.Launch, r.Compute, r.Latency)
		}
	}
}

func TestLatencyMonotonicInBatch(t *testing.T) {
	w := testWorkload()
	for _, p := range DefaultProfiles() {
		prev := time.Duration(0)
		for _, n := range []int{1, 8, 64, 512, 4096} {
			d := New(p)
			r := d.Execute(0, w, n)
			if r.Latency < prev {
				t.Fatalf("%s: latency decreased from %v at batch %d", p.Name, prev, n)
			}
			prev = r.Latency
		}
	}
}

func TestUnifiedMemoryHasNoTransfer(t *testing.T) {
	w := testWorkload()
	for _, p := range []Profile{IntelCoreI7_8700(), IntelUHD630()} {
		r := New(p).Execute(0, w, 128)
		if r.Transfer != 0 {
			t.Fatalf("%s: unified-memory device charged %v transfer", p.Name, r.Transfer)
		}
	}
	if r := New(NvidiaGTX1080Ti()).Execute(0, w, 128); r.Transfer <= 2*NvidiaGTX1080Ti().PCIeLatency {
		t.Fatalf("dGPU transfer %v should exceed fixed PCIe latency", r.Transfer)
	}
}

func TestPCIeSmallTransfersInefficient(t *testing.T) {
	// Effective PCIe bandwidth must ramp with transfer size (§II-A):
	// doubling a small batch should much less than double transfer time.
	d := New(NvidiaGTX1080Ti())
	w := testWorkload()
	small := d.transferTime(w, 1)
	big := d.transferTime(w, 100000)
	perSampleSmall := float64(small)
	perSampleBig := float64(big) / 100000
	if perSampleSmall < 20*perSampleBig {
		t.Fatalf("per-sample PCIe cost should collapse with batch size: %v vs %v", small, big)
	}
}

func TestQueueingDelaysSecondBatch(t *testing.T) {
	d := New(IntelCoreI7_8700())
	w := testWorkload()
	r1 := d.Execute(0, w, 1024)
	r2 := d.Execute(0, w, 1024) // submitted at the same instant
	if r2.QueueDelay != r1.Latency {
		t.Fatalf("second batch queue delay %v, want %v", r2.QueueDelay, r1.Latency)
	}
	if r2.Start != r1.Latency {
		t.Fatalf("second batch start %v, want %v", r2.Start, r1.Latency)
	}
	r3 := d.Execute(r2.Start+r2.Latency+time.Second, w, 1)
	if r3.QueueDelay != 0 {
		t.Fatalf("idle device should not queue, delay %v", r3.QueueDelay)
	}
}

func TestBoostColdSlowerThanWarm(t *testing.T) {
	w := testWorkload()
	cold := New(NvidiaGTX1080Ti())
	warm := New(NvidiaGTX1080Ti())
	warm.Warm(0)
	rc := cold.Execute(0, w, 256)
	rw := warm.Execute(0, w, 256)
	if rc.Latency <= rw.Latency {
		t.Fatalf("cold start %v should be slower than warm %v", rc.Latency, rw.Latency)
	}
	ratio := float64(rc.Latency) / float64(rw.Latency)
	if ratio < 3 || ratio > 10 {
		t.Fatalf("cold/warm ratio %.1f outside the paper's up-to-7x band", ratio)
	}
	if rc.StartedWarm || !rw.StartedWarm {
		t.Fatal("StartedWarm flags wrong")
	}
	if rc.EnergyJ() <= rw.EnergyJ() {
		t.Fatalf("cold start should cost more energy: %g vs %g (Fig. 4)", rc.EnergyJ(), rw.EnergyJ())
	}
}

func TestBoostWarmsWithWork(t *testing.T) {
	d := New(NvidiaGTX1080Ti())
	w := testWorkload()
	if d.StateAt(0).Warm {
		t.Fatal("new device should be cold")
	}
	// A very large batch accumulates enough busy time to warm the clocks.
	r := d.Execute(0, w, 1<<22)
	st := d.StateAt(r.Start + r.Latency)
	if !st.Warm {
		t.Fatalf("device should be warm after %v of work, clock %.2f", r.Latency, st.ClockFrac)
	}
}

func TestBoostCoolsWhenIdle(t *testing.T) {
	d := New(NvidiaGTX1080Ti())
	d.Warm(0)
	if !d.StateAt(time.Millisecond).Warm {
		t.Fatal("warmed device reported cold")
	}
	p := d.Profile()
	if st := d.StateAt(p.Cooldown * 3); st.Warm || st.ClockFrac > p.IdleClock+1e-9 {
		t.Fatalf("device should fully cool after %v idle, clock %.2f", 3*p.Cooldown, st.ClockFrac)
	}
	// Partial cooldown leaves intermediate clocks.
	d.Warm(0)
	st := d.StateAt(p.Cooldown / 2)
	if st.ClockFrac <= p.IdleClock || st.ClockFrac >= 1 {
		t.Fatalf("half cooldown should leave intermediate clocks, got %.2f", st.ClockFrac)
	}
}

func TestBoostConvergenceForLongRuns(t *testing.T) {
	// For executions much longer than the warm-up, cold and warm latency
	// must converge (the better-than-linear growth of Fig. 3b).
	w := testWorkload()
	w.FlopsPerSample = 50_000_000
	cold := New(NvidiaGTX1080Ti())
	warm := New(NvidiaGTX1080Ti())
	warm.Warm(0)
	rc := cold.Execute(0, w, 100_000)
	rw := warm.Execute(0, w, 100_000)
	ratio := float64(rc.Latency) / float64(rw.Latency)
	if ratio > 1.2 {
		t.Fatalf("long runs should converge, cold/warm = %.2f", ratio)
	}
}

func TestNonBoostDevicesAlwaysWarm(t *testing.T) {
	for _, p := range []Profile{IntelCoreI7_8700(), IntelUHD630()} {
		d := New(p)
		if st := d.StateAt(0); !st.Warm || st.ClockFrac != 1 {
			t.Fatalf("%s should always report warm full clocks", p.Name)
		}
	}
}

func TestWeightsCachedWhenSmall(t *testing.T) {
	d := New(IntelCoreI7_8700())
	small := testWorkload() // 4 KB weights, fits L3
	large := testWorkload()
	large.WeightBytes = 64 << 20 // 64 MB, exceeds 12 MB L3
	n := 4096
	ts := d.rooflineTime(small, n, 1)
	tl := d.rooflineTime(large, n, 1)
	if tl < 10*ts {
		t.Fatalf("uncacheable weights should dominate memory time: %v vs %v", tl, ts)
	}
}

func TestEnergyComponents(t *testing.T) {
	w := testWorkload()
	rd := New(NvidiaGTX1080Ti()).Execute(0, w, 1024)
	if rd.HostEnergyJ <= 0 {
		t.Fatal("dGPU execution must charge host-assist energy (§IV-C)")
	}
	rc := New(IntelCoreI7_8700()).Execute(0, w, 1024)
	if rc.HostEnergyJ != 0 {
		t.Fatal("CPU execution is the host; no separate host energy")
	}
	if got := rd.EnergyJ(); got != rd.DeviceEnergyJ+rd.HostEnergyJ {
		t.Fatalf("EnergyJ = %g, want sum of components", got)
	}
	if rd.AvgPowerW() <= 0 {
		t.Fatal("average power must be positive")
	}
}

func TestIGPULowestPower(t *testing.T) {
	// §IV-C: the iGPU is the most power-efficient device in watts.
	w := testWorkload()
	var powers = map[Kind]float64{}
	for _, p := range DefaultProfiles() {
		d := New(p)
		d.Warm(0)
		r := d.Execute(0, w, 65536)
		powers[p.Kind] = r.AvgPowerW()
	}
	if powers[IntegratedGPU] >= powers[CPU] || powers[IntegratedGPU] >= powers[DiscreteGPU] {
		t.Fatalf("iGPU should draw the least power: %v", powers)
	}
}

func TestResetRestoresColdIdle(t *testing.T) {
	d := New(NvidiaGTX1080Ti())
	d.Warm(0)
	d.Execute(0, testWorkload(), 1024)
	d.Reset()
	if st := d.StateAt(0); st.Warm || st.BusyUntil != 0 {
		t.Fatalf("Reset left state %+v", st)
	}
	if execs, busy := d.Stats(); execs != 0 || busy != 0 {
		t.Fatal("Reset should clear counters")
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := New(IntelCoreI7_8700())
	r1 := d.Execute(0, testWorkload(), 10)
	r2 := d.Execute(0, testWorkload(), 10)
	execs, busy := d.Stats()
	if execs != 2 || busy != r1.Latency+r2.Latency {
		t.Fatalf("Stats = %d, %v", execs, busy)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{CPU: "cpu", IntegratedGPU: "igpu", DiscreteGPU: "dgpu", Accelerator: "accel", Kind(42): "unknown"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestThroughputGbps(t *testing.T) {
	r := Report{Batch: 1000, Latency: time.Millisecond}
	// 1000 samples × 125 bytes × 8 bits / 1ms = 1 Gbit/s.
	if got := r.ThroughputGbps(125); got < 0.999 || got > 1.001 {
		t.Fatalf("ThroughputGbps = %g, want 1", got)
	}
	if (Report{}).ThroughputGbps(10) != 0 || (Report{}).AvgPowerW() != 0 {
		t.Fatal("zero-latency report should not divide by zero")
	}
}

func TestExplainBreakdown(t *testing.T) {
	w := WorkloadOf(mustNet(t))
	for _, p := range DefaultProfiles() {
		for _, warm := range []bool{false, true} {
			b := Explain(p, w, 4096, warm)
			if b.Device != p.Name || b.Batch != 4096 {
				t.Fatalf("identity fields wrong: %+v", b)
			}
			if b.TotalLatency <= 0 || b.EnergyJ <= 0 {
				t.Fatalf("%s: degenerate breakdown", p.Name)
			}
			if b.Bound != "compute" && b.Bound != "memory" {
				t.Fatalf("%s: bound = %q", p.Name, b.Bound)
			}
			if p.Kind != DiscreteGPU && b.Transfer != 0 {
				t.Fatalf("%s: unified memory charged transfer", p.Name)
			}
			// Breakdown pieces must not exceed the total (boost and
			// roofline make the total at least the max term).
			if b.Compute > b.TotalLatency && b.Memory > b.TotalLatency {
				t.Fatalf("%s: both roofline terms exceed the total", p.Name)
			}
			s := b.String()
			for _, want := range []string{"bound by", "latency", "energy"} {
				if !strings.Contains(s, want) {
					t.Fatalf("breakdown rendering missing %q", want)
				}
			}
		}
	}
	// Warm vs cold dGPU: the warm breakdown must be faster.
	cold := Explain(NvidiaGTX1080Ti(), w, 4096, false)
	warm := Explain(NvidiaGTX1080Ti(), w, 4096, true)
	if warm.TotalLatency >= cold.TotalLatency {
		t.Fatal("warm breakdown not faster than cold")
	}
	if cold.ClockFrac >= warm.ClockFrac {
		t.Fatal("clock fractions wrong")
	}
}

func mustNet(t *testing.T) *nn.Network {
	t.Helper()
	spec, err := models.ByName("mnist-small")
	if err != nil {
		t.Fatal(err)
	}
	return spec.MustBuild(1)
}
