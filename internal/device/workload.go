package device

import (
	"bomw/internal/nn"
)

// Workload is the device-independent cost summary of one model's
// classification pass, extracted once from a built network. The device
// models consume only these aggregates.
type Workload struct {
	Model string
	// FlopsPerSample is the floating-point work to classify one sample.
	FlopsPerSample int64
	// SampleBytes is the input payload per sample (the unit of the
	// paper's Gbit/s throughput axis).
	SampleBytes int64
	// OutputBytes is the classification result payload per sample.
	OutputBytes int64
	// WeightBytes is the total parameter footprint staged on the device.
	WeightBytes int64
	// ActivationBytes is the intermediate tensor traffic per sample.
	ActivationBytes int64
	// ItemsPerSample is the number of OpenCL work-items one sample
	// spawns across all kernels (thread-per-node, §IV-B).
	ItemsPerSample int64
	// Kernels is the number of kernel launches per batch (one per layer
	// with weights or pooling).
	Kernels int
	// AvgLayerWidth is ItemsPerSample / Kernels: the mean per-kernel
	// concurrency one sample contributes.
	AvgLayerWidth int64
}

// isReshape reports whether a layer moves no data and runs no compute
// (Flatten): such layers are not kernels. Any other layer type — built
// in or user defined (sparse, fp16, future custom layers) — is charged
// as one kernel launch.
func isReshape(l nn.Layer) bool {
	_, ok := l.(nn.Flatten)
	return ok
}

// WorkloadOf derives the cost summary from a built network.
func WorkloadOf(net *nn.Network) Workload {
	w := Workload{
		Model:           net.Name(),
		FlopsPerSample:  net.FlopsPerSample(),
		SampleBytes:     net.SampleBytes(),
		OutputBytes:     int64(net.Classes()) * 4,
		WeightBytes:     net.ParamBytes(),
		ActivationBytes: net.ActivationBytesPerSample(),
	}
	shape := net.InputShape()
	for _, l := range net.Layers() {
		shape = l.OutputShape(shape)
		if isReshape(l) {
			continue // pure reshapes fold into their consumer (§IV-B)
		}
		items := int64(1)
		for _, d := range shape {
			items *= int64(d)
		}
		w.ItemsPerSample += items
		w.Kernels++
	}
	if w.Kernels > 0 {
		w.AvgLayerWidth = w.ItemsPerSample / int64(w.Kernels)
	}
	return w
}
