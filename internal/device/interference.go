package device

import "fmt"

// External interference models the paper's "system changes" (§I): another
// tenant sharing a device — a game on the dGPU, a compile job on the CPU
// — slows kernels down by a factor the scheduler cannot see directly, only
// observe through degraded latencies. Transfers are unaffected (PCIe is
// not the contended resource in this model).

// SetSlowdown applies an external contention multiplier to all subsequent
// compute on the device. factor = 1 means no interference; 2 halves the
// effective compute rate. Panics on factors below 1.
func (d *Device) SetSlowdown(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("device: slowdown factor %g < 1", factor))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.slowdown = factor
}

// Slowdown returns the current interference factor.
func (d *Device) Slowdown() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.slowdown == 0 {
		return 1
	}
	return d.slowdown
}

// slowdownLocked returns the factor with the zero value meaning 1.
func (d *Device) slowdownLocked() float64 {
	if d.slowdown == 0 {
		return 1
	}
	return d.slowdown
}
