package device

import "testing"

func TestSlowdownStretchesCompute(t *testing.T) {
	w := testWorkload()
	w.FlopsPerSample = 10_000_000
	clean := New(IntelCoreI7_8700())
	contended := New(IntelCoreI7_8700())
	contended.SetSlowdown(3)
	rc := clean.Execute(0, w, 4096)
	rs := contended.Execute(0, w, 4096)
	ratio := float64(rs.Latency) / float64(rc.Latency)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("slowdown 3 produced latency ratio %.2f", ratio)
	}
	if rs.EnergyJ() <= rc.EnergyJ() {
		t.Fatal("contended execution should burn more energy")
	}
}

func TestSlowdownAffectsKernelPath(t *testing.T) {
	w := testWorkload()
	w.FlopsPerSample = 10_000_000
	clean := New(NvidiaGTX1080Ti())
	clean.Warm(0)
	contended := New(NvidiaGTX1080Ti())
	contended.Warm(0)
	contended.SetSlowdown(2)
	rc := clean.ExecuteCompute(0, w, 4096)
	rs := contended.ExecuteCompute(0, w, 4096)
	if float64(rs.Latency) < 1.8*float64(rc.Latency) {
		t.Fatalf("kernel path ignored slowdown: %v vs %v", rs.Latency, rc.Latency)
	}
	// Transfers are unaffected by compute contention.
	tc := clean.Transfer(0, 1<<20)
	ts := contended.Transfer(0, 1<<20)
	if tc.Latency != ts.Latency {
		t.Fatal("transfer time should not depend on compute slowdown")
	}
}

func TestSlowdownValidationAndReset(t *testing.T) {
	d := New(IntelCoreI7_8700())
	if d.Slowdown() != 1 {
		t.Fatalf("default slowdown = %g, want 1", d.Slowdown())
	}
	d.SetSlowdown(2.5)
	if d.Slowdown() != 2.5 {
		t.Fatalf("Slowdown = %g", d.Slowdown())
	}
	d.Reset()
	if d.Slowdown() != 1 {
		t.Fatal("Reset should clear interference")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetSlowdown(<1) did not panic")
		}
	}()
	d.SetSlowdown(0.5)
}
