package device

import (
	"testing"
	"time"

	"bomw/internal/models"
)

func TestLayerWorkloadsCoverNetwork(t *testing.T) {
	net := models.MnistCNN().MustBuild(1)
	agg := WorkloadOf(net)
	layers := LayerWorkloads(net)
	if len(layers) != agg.Kernels {
		t.Fatalf("layer workloads = %d, aggregate kernels = %d", len(layers), agg.Kernels)
	}
	var flops, items, weights int64
	for _, lw := range layers {
		if lw.Kernels != 1 {
			t.Fatalf("per-layer workload must have one kernel, got %d", lw.Kernels)
		}
		if lw.AvgLayerWidth != lw.ItemsPerSample {
			t.Fatal("per-layer width must equal its item count")
		}
		flops += lw.FlopsPerSample
		items += lw.ItemsPerSample
		weights += lw.WeightBytes
	}
	if flops != agg.FlopsPerSample {
		t.Fatalf("layer flops sum %d != aggregate %d", flops, agg.FlopsPerSample)
	}
	if items != agg.ItemsPerSample {
		t.Fatalf("layer items sum %d != aggregate %d", items, agg.ItemsPerSample)
	}
	if weights != agg.WeightBytes {
		t.Fatalf("layer weights sum %d != aggregate %d", weights, agg.WeightBytes)
	}
}

func TestPerCommandPathMatchesAggregate(t *testing.T) {
	// The decomposed path (transfer in + per-layer kernels + transfer out)
	// must track the aggregate Execute within a small factor: it is the
	// same physics charged per command.
	for _, spec := range models.PaperModels() {
		net := spec.MustBuild(1)
		agg := WorkloadOf(net)
		layers := LayerWorkloads(net)
		for _, n := range []int{16, 4096} {
			whole := New(NvidiaGTX1080Ti())
			whole.Warm(0)
			total := whole.Execute(0, agg, n).Latency

			split := New(NvidiaGTX1080Ti())
			split.Warm(0)
			at := time.Duration(0)
			r := split.Transfer(at, int64(n)*agg.SampleBytes)
			at = r.Start + r.Latency
			for _, lw := range layers {
				r = split.ExecuteCompute(at, lw, n)
				at = r.Start + r.Latency
			}
			r = split.Transfer(at, int64(n)*agg.OutputBytes)
			sum := r.Start + r.Latency

			ratio := float64(sum) / float64(total)
			if ratio < 0.4 || ratio > 2.5 {
				t.Fatalf("%s batch %d: per-command %v vs aggregate %v (%.2fx)",
					spec.Name, n, sum, total, ratio)
			}
		}
	}
}

func TestExecuteComputeQueuesAndWarms(t *testing.T) {
	d := New(NvidiaGTX1080Ti())
	w := testWorkload()
	w.FlopsPerSample = 10_000_000
	r1 := d.ExecuteCompute(0, w, 4096)
	r2 := d.ExecuteCompute(0, w, 4096)
	if r2.QueueDelay != r1.Latency {
		t.Fatalf("kernel did not queue: delay %v, want %v", r2.QueueDelay, r1.Latency)
	}
	if r2.ClockFrac <= r1.ClockFrac {
		t.Fatal("second kernel should see warmer clocks")
	}
	if r1.Transfer != 0 {
		t.Fatal("ExecuteCompute must not charge transfers")
	}
}

func TestExecuteComputePanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExecuteCompute(n=-1) did not panic")
		}
	}()
	New(IntelCoreI7_8700()).ExecuteCompute(0, testWorkload(), -1)
}

func TestTransferUnifiedMemoryFree(t *testing.T) {
	for _, p := range []Profile{IntelCoreI7_8700(), IntelUHD630()} {
		r := New(p).Transfer(0, 1<<20)
		if r.Latency != 0 || r.EnergyJ() != 0 {
			t.Fatalf("%s: unified-memory transfer should be free, got %v/%gJ", p.Name, r.Latency, r.EnergyJ())
		}
	}
}

func TestTransferDiscreteCharges(t *testing.T) {
	d := New(NvidiaGTX1080Ti())
	small := d.Transfer(0, 64)
	if small.Latency <= d.Profile().PCIeLatency {
		t.Fatalf("transfer latency %v should exceed the fixed PCIe latency", small.Latency)
	}
	big := d.Transfer(small.Start+small.Latency, 1<<30)
	if big.Latency <= small.Latency {
		t.Fatal("1 GiB transfer should dwarf a 64 B transfer")
	}
	if big.EnergyJ() <= 0 {
		t.Fatal("transfer should consume energy")
	}
	// Zero-byte transfer is free even on PCIe devices.
	if r := d.Transfer(0, 0); r.Latency != 0 {
		t.Fatalf("zero-byte transfer charged %v", r.Latency)
	}
}

func TestTransferPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Transfer(-1) did not panic")
		}
	}()
	New(NvidiaGTX1080Ti()).Transfer(0, -1)
}
