package device

import (
	"fmt"
	"time"

	"bomw/internal/nn"
)

// This file provides the per-command execution primitives used by the
// simulated OpenCL runtime (internal/opencl): individual kernel launches
// and explicit buffer transfers. The aggregate Execute is the sum of one
// TransferIn, one ExecuteCompute per layer-kernel, and one TransferOut;
// the runtime path decomposes the same physics per command so profiling
// events (CL_PROFILING_COMMAND_*) are meaningful.

// LayerWorkloads splits a network into one Workload per kernel launch
// (each with Kernels = 1), preserving per-layer parallelism so kernel
// utilisation is modelled more precisely than the whole-model average.
func LayerWorkloads(net *nn.Network) []Workload {
	var out []Workload
	shape := net.InputShape()
	inBytes := int64(4)
	for _, d := range shape {
		inBytes *= int64(d)
	}
	for _, l := range net.Layers() {
		outShape := l.OutputShape(shape)
		outBytes := int64(4)
		items := int64(1)
		for _, d := range outShape {
			outBytes *= int64(d)
			items *= int64(d)
		}
		if !isReshape(l) {
			out = append(out, Workload{
				Model:           net.Name() + "/" + l.Name(),
				FlopsPerSample:  l.FlopsPerSample(shape),
				SampleBytes:     0, // no PCIe per kernel; buffers handle it
				OutputBytes:     0,
				WeightBytes:     l.ParamBytes(),
				ActivationBytes: (inBytes + outBytes) / 2,
				ItemsPerSample:  items,
				Kernels:         1,
				AvgLayerWidth:   items,
			})
		}
		shape = outShape
		inBytes = outBytes
	}
	return out
}

// ExecuteCompute simulates one kernel launch (no host transfers): launch
// overhead, dispatch, roofline and the boost clock ramp. It queues behind
// earlier work exactly like Execute.
func (d *Device) ExecuteCompute(at time.Duration, w Workload, n int) Report {
	if n <= 0 {
		panic(fmt.Sprintf("device: batch size must be positive, got %d", n))
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	start := at
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.coolLocked(start)
	d.coolHeatLocked(start - d.lastEnd)
	frac0 := d.clockFracLocked()

	launch := time.Duration(w.Kernels) * d.prof.KernelLaunch
	util := d.utilization(w, n)
	warped := d.dispatchTime(w, n) + d.rooflineTime(w, n, util)
	stretch := d.slowdownLocked() / (d.thermalFactorLocked() * d.govClockLocked())
	warped = time.Duration(float64(launch+warped) * stretch)
	scaled, credit := d.boostIntegrate(warped, frac0)

	devE := d.prof.IdleWatts*scaled.Seconds() +
		(d.prof.ActiveWatts*d.govPowerLocked()-d.prof.IdleWatts)*util*warped.Seconds()
	rep := Report{
		Device:        d.prof.Name,
		Model:         w.Model,
		Batch:         n,
		Start:         start,
		QueueDelay:    start - at,
		Launch:        launch,
		Compute:       scaled,
		Latency:       scaled,
		DeviceEnergyJ: devE,
		HostEnergyJ:   d.prof.HostWatts * scaled.Seconds(),
		Utilization:   util,
		ClockFrac:     frac0,
		StartedWarm:   frac0 >= 0.95,
	}
	d.busyUntil = start + scaled
	d.lastEnd = d.busyUntil
	d.boostBusy += credit
	if d.prof.HasBoost && d.boostBusy > d.prof.WarmupBusy {
		d.boostBusy = d.prof.WarmupBusy
	}
	d.heatAfterLocked(scaled)
	d.execs++
	d.busyTotal += scaled
	return rep
}

// Transfer simulates moving bytes between host and device memory over the
// interconnect (direction does not change the cost model). Unified-memory
// devices return a zero-latency report: clEnqueueMapBuffer is free
// (§IV-B). During DMA the device draws idle power and the host its assist
// power.
func (d *Device) Transfer(at time.Duration, bytes int64) Report {
	if bytes < 0 {
		panic(fmt.Sprintf("device: negative transfer size %d", bytes))
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	start := at
	if d.busyUntil > start {
		start = d.busyUntil
	}
	var dur time.Duration
	if d.prof.PCIeGBs > 0 && bytes > 0 {
		secs := (float64(bytes) + float64(d.prof.PCIeRampBytes)) / (d.prof.PCIeGBs * 1e9)
		dur = d.prof.PCIeLatency + time.Duration(secs*float64(time.Second))
	}
	rep := Report{
		Device:        d.prof.Name,
		Model:         "transfer",
		Start:         start,
		QueueDelay:    start - at,
		Transfer:      dur,
		Latency:       dur,
		DeviceEnergyJ: d.prof.IdleWatts * dur.Seconds(),
		HostEnergyJ:   d.prof.HostWatts * dur.Seconds(),
		ClockFrac:     d.clockFracLocked(),
	}
	d.busyUntil = start + dur
	if dur > 0 {
		d.lastEnd = d.busyUntil
	}
	return rep
}
