package device

import (
	"testing"
	"testing/quick"
	"time"
)

// Property-based checks on the cost models: for arbitrary (bounded)
// workloads and batch sizes, the physics must stay sane.

func boundedWorkload(flops, bytes, items uint16) Workload {
	return Workload{
		Model:           "prop",
		FlopsPerSample:  1 + int64(flops),
		SampleBytes:     4 * (1 + int64(bytes)%1024),
		OutputBytes:     4,
		WeightBytes:     int64(bytes) * 64,
		ActivationBytes: int64(bytes) % 4096,
		ItemsPerSample:  1 + int64(items)%1024,
		Kernels:         1 + int(items)%7,
		AvgLayerWidth:   1 + int64(items)%512,
	}
}

func TestPropertyLatencyEnergyPositive(t *testing.T) {
	f := func(flops, bytes, items uint16, nRaw uint16) bool {
		n := 1 + int(nRaw)%100000
		w := boundedWorkload(flops, bytes, items)
		for _, p := range DefaultProfiles() {
			r := New(p).Execute(0, w, n)
			if r.Latency <= 0 || r.EnergyJ() <= 0 {
				return false
			}
			if r.Utilization <= 0 || r.Utilization > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMoreWorkNeverFaster(t *testing.T) {
	f := func(flops, bytes, items uint16, nRaw uint16) bool {
		n := 1 + int(nRaw)%50000
		w := boundedWorkload(flops, bytes, items)
		for _, p := range DefaultProfiles() {
			a := New(p).Execute(0, w, n).Latency
			b := New(p).Execute(0, w, 2*n).Latency
			if b < a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyColdNeverFasterThanWarm(t *testing.T) {
	f := func(flops, bytes, items uint16, nRaw uint16) bool {
		n := 1 + int(nRaw)%100000
		w := boundedWorkload(flops, bytes, items)
		cold := New(NvidiaGTX1080Ti())
		warm := New(NvidiaGTX1080Ti())
		warm.Warm(0)
		rc := cold.Execute(0, w, n)
		rw := warm.Execute(0, w, n)
		return rc.Latency >= rw.Latency && rc.EnergyJ() >= rw.EnergyJ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQueueConservation(t *testing.T) {
	// Back-to-back submissions must serialise without gaps or overlap.
	f := func(flops, bytes, items uint16) bool {
		w := boundedWorkload(flops, bytes, items)
		d := New(IntelUHD630())
		var end time.Duration
		for i := 0; i < 5; i++ {
			r := d.Execute(0, w, 64)
			if r.Start != end {
				return false
			}
			end = r.Start + r.Latency
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnergyAdditiveOverSplit(t *testing.T) {
	// Charging one batch of 2n must not cost more energy than two
	// batches of n (fixed costs amortise; never the other way).
	f := func(flops, bytes, items uint16, nRaw uint16) bool {
		n := 1 + int(nRaw)%10000
		w := boundedWorkload(flops, bytes, items)
		for _, p := range []Profile{IntelCoreI7_8700(), IntelUHD630()} {
			whole := New(p).Execute(0, w, 2*n).EnergyJ()
			d := New(p)
			split := d.Execute(0, w, n).EnergyJ() + d.Execute(0, w, n).EnergyJ()
			if whole > split*1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBoostIntegrateConsistency(t *testing.T) {
	// Stretching work through the boost ramp never shortens it, and warm
	// devices run 1:1.
	d := New(NvidiaGTX1080Ti())
	f := func(ms uint16, fracRaw uint8) bool {
		work := time.Duration(1+int(ms)%5000) * time.Millisecond
		frac := d.prof.IdleClock + (1-d.prof.IdleClock)*float64(fracRaw)/255
		wall, credit := d.boostIntegrate(work, frac)
		if wall < work || credit != wall {
			return false
		}
		full, _ := d.boostIntegrate(work, 1)
		return full == work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
