package device

import (
	"testing"
	"time"
)

func thermalDevice(t *testing.T) *Device {
	t.Helper()
	d := New(IntelCoreI7_8700())
	if err := d.SetThermal(Thermal{Window: 100 * time.Millisecond, ThrottleClock: 0.5}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestThermalValidation(t *testing.T) {
	d := New(IntelCoreI7_8700())
	if err := d.SetThermal(Thermal{Window: -time.Second}); err == nil {
		t.Fatal("negative window accepted")
	}
	if err := d.SetThermal(Thermal{Window: time.Second, ThrottleClock: 0}); err == nil {
		t.Fatal("zero throttle clock accepted")
	}
	if err := d.SetThermal(Thermal{Window: time.Second, ThrottleClock: 1.5}); err == nil {
		t.Fatal("throttle clock >1 accepted")
	}
	if err := d.SetThermal(Thermal{}); err != nil {
		t.Fatalf("clearing thermal model failed: %v", err)
	}
}

func TestThermalThrottlesSustainedLoad(t *testing.T) {
	d := thermalDevice(t)
	w := testWorkload()
	w.FlopsPerSample = 5_000_000

	first := d.Execute(0, w, 4096)
	// Hammer the device until the bucket fills.
	last := first
	for i := 0; i < 80; i++ {
		last = d.Execute(last.Start+last.Latency, w, 4096)
	}
	if fill := d.ThermalFill(last.Start + last.Latency); fill < 0.99 {
		t.Fatalf("sustained load left the bucket at %.2f", fill)
	}
	ratio := float64(last.Latency) / float64(first.Latency)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("fully throttled latency ratio %.2f, want ≈2 (ThrottleClock 0.5)", ratio)
	}
}

func TestThermalRecoversWhenIdle(t *testing.T) {
	d := thermalDevice(t)
	w := testWorkload()
	w.FlopsPerSample = 5_000_000
	last := d.Execute(0, w, 4096)
	for i := 0; i < 80; i++ {
		last = d.Execute(last.Start+last.Latency, w, 4096)
	}
	hotEnd := last.Start + last.Latency
	if d.ThermalFill(hotEnd) < 0.99 {
		t.Fatal("device should be hot")
	}
	// A long idle period drains the bucket (DrainRate default 0.5 →
	// twice the window suffices).
	coolAt := hotEnd + time.Second
	if fill := d.ThermalFill(coolAt); fill > 0.01 {
		t.Fatalf("bucket still %.2f full after cooling", fill)
	}
	cooled := d.Execute(coolAt, w, 4096)
	base := New(IntelCoreI7_8700())
	if err := base.SetThermal(Thermal{Window: 100 * time.Millisecond, ThrottleClock: 0.5}); err != nil {
		t.Fatal(err)
	}
	ref := base.Execute(0, w, 4096)
	if diff := float64(cooled.Latency) / float64(ref.Latency); diff > 1.25 {
		t.Fatalf("cooled device still %.2fx slower than cold reference", diff)
	}
}

func TestThermalDisabledByDefault(t *testing.T) {
	d := New(IntelCoreI7_8700())
	w := testWorkload()
	w.FlopsPerSample = 5_000_000
	first := d.Execute(0, w, 4096)
	last := first
	for i := 0; i < 50; i++ {
		last = d.Execute(last.Start+last.Latency, w, 4096)
	}
	if last.Latency != first.Latency {
		t.Fatal("default profiles must not throttle (paper testbed conditions)")
	}
	if d.ThermalFill(last.Start+last.Latency) != 0 {
		t.Fatal("disabled thermal model should report zero fill")
	}
}

func TestGovernorTradesSpeedForPower(t *testing.T) {
	w := testWorkload()
	w.FlopsPerSample = 5_000_000
	perf := New(IntelCoreI7_8700())
	save := New(IntelCoreI7_8700())
	if err := save.SetGovernor(0.5, 0.4); err != nil {
		t.Fatal(err)
	}
	rp := perf.Execute(0, w, 4096)
	rs := save.Execute(0, w, 4096)
	if ratio := float64(rs.Latency) / float64(rp.Latency); ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("half-clock governor latency ratio %.2f, want ≈2", ratio)
	}
	// Average power must drop under powersave even though the run is
	// longer.
	if rs.AvgPowerW() >= rp.AvgPowerW() {
		t.Fatalf("powersave average power %.1fW not below performance %.1fW",
			rs.AvgPowerW(), rp.AvgPowerW())
	}
}

func TestGovernorValidationAndReset(t *testing.T) {
	d := New(IntelCoreI7_8700())
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {1.5, 1}, {1, 1.5}, {-1, 1}} {
		if err := d.SetGovernor(bad[0], bad[1]); err == nil {
			t.Fatalf("governor %v accepted", bad)
		}
	}
	if err := d.SetGovernor(0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	w := testWorkload()
	ref := New(IntelCoreI7_8700()).Execute(0, w, 1024)
	if got := d.Execute(0, w, 1024); got.Latency != ref.Latency {
		t.Fatal("Reset should restore the performance governor")
	}
}

func TestSchedulerSignalChainUnderDVFS(t *testing.T) {
	// The kernel path (used by the runtime/scheduler) must see the same
	// governor effects as the aggregate path.
	w := testWorkload()
	w.FlopsPerSample = 5_000_000
	d := New(IntelUHD630())
	if err := d.SetGovernor(0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	ref := New(IntelUHD630()).ExecuteCompute(0, w, 4096)
	slow := d.ExecuteCompute(0, w, 4096)
	if float64(slow.Latency) < 1.8*float64(ref.Latency) {
		t.Fatal("ExecuteCompute ignored the governor")
	}
}
