package device

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Device is one simulated processor with mutable execution state: a busy
// horizon (requests queue behind each other) and, for boosted devices, the
// accumulated warm-up credit of the Boost clock state machine. All methods
// are safe for concurrent use; time is virtual and supplied by the caller.
type Device struct {
	prof Profile

	mu        sync.Mutex
	busyUntil time.Duration // virtual time the device becomes free
	boostBusy time.Duration // busy credit accumulated toward full clocks
	lastEnd   time.Duration // virtual time of last execution end
	slowdown  float64       // external interference factor (0 or 1 = none)
	thermal   Thermal       // opt-in throttling model (§I clock changes)
	heat      time.Duration // thermal leaky-bucket fill
	govClock  float64       // DVFS clock scale (0 or 1 = performance)
	govPower  float64       // DVFS power scale (0 or 1 = performance)
	execs     int64
	busyTotal time.Duration
}

// New creates a cold device from a profile.
func New(p Profile) *Device { return &Device{prof: p} }

// Name returns the device name.
func (d *Device) Name() string { return d.prof.Name }

// Kind returns the device kind.
func (d *Device) Kind() Kind { return d.prof.Kind }

// Profile returns the device's calibration constants.
func (d *Device) Profile() Profile { return d.prof }

// Report describes one simulated batch execution.
type Report struct {
	Device string
	Model  string
	Batch  int

	Start      time.Duration // when execution began (after queueing)
	QueueDelay time.Duration
	Transfer   time.Duration // PCIe in+out (zero for unified memory)
	Launch     time.Duration // kernel launch overhead at full clocks
	Compute    time.Duration // dispatch + roofline time at actual clocks
	Latency    time.Duration // Transfer + Compute + Launch (clock-scaled)

	DeviceEnergyJ float64
	HostEnergyJ   float64

	Utilization float64 // fraction of the device's parallel width used
	ClockFrac   float64 // clock fraction when execution started
	StartedWarm bool
}

// EnergyJ returns the total Joules charged to this execution: device plus
// host-assist, matching the paper's component accounting (§IV-C).
func (r Report) EnergyJ() float64 { return r.DeviceEnergyJ + r.HostEnergyJ }

// AvgPowerW returns average power over the execution.
func (r Report) AvgPowerW() float64 {
	if r.Latency <= 0 {
		return 0
	}
	return r.EnergyJ() / r.Latency.Seconds()
}

// ThroughputGbps returns input-payload throughput in Gbit/s, the unit of
// the paper's Fig. 3.
func (r Report) ThroughputGbps(sampleBytes int64) float64 {
	if r.Latency <= 0 {
		return 0
	}
	return float64(r.Batch) * float64(sampleBytes) * 8 / r.Latency.Seconds() / 1e9
}

// String summarises the report.
func (r Report) String() string {
	return fmt.Sprintf("%s×%d on %s: latency=%v energy=%.3gJ util=%.2f clock=%.2f",
		r.Model, r.Batch, r.Device, r.Latency, r.EnergyJ(), r.Utilization, r.ClockFrac)
}

// Execute simulates classifying a batch of n samples of workload w,
// submitted at virtual time at. The execution queues behind any earlier
// work on the device. The returned report carries latency and energy; the
// device's boost and queue state advance accordingly.
func (d *Device) Execute(at time.Duration, w Workload, n int) Report {
	if n <= 0 {
		panic(fmt.Sprintf("device: batch size must be positive, got %d", n))
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	start := at
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.coolLocked(start)
	d.coolHeatLocked(start - d.lastEnd)
	frac0 := d.clockFracLocked()

	transfer := d.transferTime(w, n)
	launch := time.Duration(w.Kernels) * d.prof.KernelLaunch
	util := d.utilization(w, n)
	warped := d.dispatchTime(w, n) + d.rooflineTime(w, n, util)
	stretch := d.slowdownLocked() / (d.thermalFactorLocked() * d.govClockLocked())
	warped = time.Duration(float64(launch+warped) * stretch)

	// Clock-scale the launch + compute portion through the boost ramp.
	scaled, busyCredit := d.boostIntegrate(warped, frac0)

	latency := transfer + scaled
	// Dynamic energy tracks work done (clock-independent); static/idle
	// power is paid for the full (possibly stretched) duration — this is
	// why cold starts always cost more Joules (§IV-C, Fig. 4).
	devE := d.prof.IdleWatts*latency.Seconds() +
		(d.prof.ActiveWatts*d.govPowerLocked()-d.prof.IdleWatts)*util*warped.Seconds()
	hostE := d.prof.HostWatts * latency.Seconds()

	rep := Report{
		Device:        d.prof.Name,
		Model:         w.Model,
		Batch:         n,
		Start:         start,
		QueueDelay:    start - at,
		Transfer:      transfer,
		Launch:        launch,
		Compute:       scaled - d.boostStretchOf(launch, frac0),
		Latency:       latency,
		DeviceEnergyJ: devE,
		HostEnergyJ:   hostE,
		Utilization:   util,
		ClockFrac:     frac0,
		StartedWarm:   frac0 >= 0.95,
	}

	d.busyUntil = start + latency
	d.lastEnd = d.busyUntil
	d.boostBusy += busyCredit
	if d.prof.HasBoost && d.boostBusy > d.prof.WarmupBusy {
		d.boostBusy = d.prof.WarmupBusy
	}
	d.heatAfterLocked(scaled)
	d.execs++
	d.busyTotal += latency
	return rep
}

// transferTime models the PCIe round trip: fixed latency per direction
// plus a size-ramped effective bandwidth, so small transfers are
// disproportionately expensive (§II-A). Unified-memory devices pay nothing
// (clEnqueueMapBuffer zero-copy).
func (d *Device) transferTime(w Workload, n int) time.Duration {
	if d.prof.PCIeGBs <= 0 {
		return 0
	}
	in := float64(int64(n)*w.SampleBytes + w.PCIeExtraBytes())
	out := float64(int64(n) * w.OutputBytes)
	ramp := float64(d.prof.PCIeRampBytes)
	bw := d.prof.PCIeGBs * 1e9
	secs := (in+ramp)/bw + (out+ramp)/bw
	return 2*d.prof.PCIeLatency + time.Duration(secs*float64(time.Second))
}

// dispatchTime charges per-work-item and per-work-group overheads for the
// batch across all kernels.
func (d *Device) dispatchTime(w Workload, n int) time.Duration {
	items := float64(int64(n) * w.ItemsPerSample)
	groups := items/float64(d.prof.WorkGroupSize) + float64(w.Kernels)
	ns := items*d.prof.PerItemNs + groups*d.prof.PerGroupNs
	return time.Duration(ns)
}

// utilization returns the fraction of the device's parallel width the
// batch can occupy: small batches under-fill wide devices (§IV-C).
func (d *Device) utilization(w Workload, n int) float64 {
	concurrent := float64(int64(n) * w.AvgLayerWidth)
	u := concurrent / float64(d.prof.ParallelWidth)
	if u > 1 {
		return 1
	}
	if u < 0.01 {
		return 0.01
	}
	return u
}

// rooflineTime returns max(compute, memory) time at full clocks.
func (d *Device) rooflineTime(w Workload, n int, util float64) time.Duration {
	flops := float64(int64(n) * w.FlopsPerSample)
	tComp := flops / (d.prof.PeakGFLOPS * 1e9 * util)

	traffic := float64(int64(n) * (w.SampleBytes + 2*w.ActivationBytes))
	if w.WeightBytes <= d.prof.CacheBytes {
		traffic += float64(w.WeightBytes) // streamed once, then cached
	} else {
		traffic += float64(int64(n)*w.WeightBytes) / d.prof.WeightReuse
	}
	tMem := traffic / (d.prof.MemBandwidthGBs * 1e9)

	secs := tComp
	if tMem > secs {
		secs = tMem
	}
	return time.Duration(secs * float64(time.Second))
}

// boostIntegrate stretches a full-clock duration through the boost ramp
// starting at clock fraction frac0, returning the wall duration and the
// busy credit earned. Devices without boost run 1:1.
func (d *Device) boostIntegrate(work time.Duration, frac0 float64) (wall, credit time.Duration) {
	if !d.prof.HasBoost || frac0 >= 1 {
		return work, work
	}
	f0 := d.prof.IdleClock
	wu := d.prof.WarmupBusy.Seconds()
	k := (1 - f0) / wu
	b0 := (frac0 - f0) / k // current busy credit in seconds
	W := work.Seconds()

	// Phase 1: clocks ramp linearly until credit reaches warm-up.
	tau1 := wu - b0
	cap1 := frac0*tau1 + k*tau1*tau1/2
	var T float64
	if W <= cap1 {
		// Solve (k/2)τ² + frac0·τ − W = 0.
		T = (-frac0 + math.Sqrt(frac0*frac0+2*k*W)) / k
	} else {
		T = tau1 + (W - cap1)
	}
	return time.Duration(T * float64(time.Second)), time.Duration(T * float64(time.Second))
}

// boostStretchOf reports how long a full-clock duration d0 lasts at the
// starting clock fraction, for report breakdown purposes only.
func (d *Device) boostStretchOf(d0 time.Duration, frac0 float64) time.Duration {
	if !d.prof.HasBoost || frac0 <= 0 {
		return d0
	}
	return time.Duration(float64(d0) / frac0)
}

// coolLocked decays boost credit for the idle gap before now.
func (d *Device) coolLocked(now time.Duration) {
	if !d.prof.HasBoost || d.boostBusy == 0 {
		return
	}
	idle := now - d.lastEnd
	if idle <= 0 {
		return
	}
	f := 1 - idle.Seconds()/d.prof.Cooldown.Seconds()
	if f <= 0 {
		d.boostBusy = 0
		return
	}
	d.boostBusy = time.Duration(float64(d.boostBusy) * f)
}

// clockFracLocked returns the current clock fraction in [IdleClock, 1].
func (d *Device) clockFracLocked() float64 {
	if !d.prof.HasBoost {
		return 1
	}
	f := d.prof.IdleClock + (1-d.prof.IdleClock)*
		math.Min(1, d.boostBusy.Seconds()/d.prof.WarmupBusy.Seconds())
	return f
}

// State is the device condition a scheduler can probe (the paper's
// "PCIe call to check the state of the discrete GPU", §V-A).
type State struct {
	Warm      bool
	ClockFrac float64
	BusyUntil time.Duration
}

// StateAt probes the device state at virtual time now. The probe itself is
// free; schedulers that model probe cost should charge Profile.PCIeLatency.
func (d *Device) StateAt(now time.Duration) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.coolLocked(now)
	f := d.clockFracLocked()
	return State{Warm: f >= 0.95, ClockFrac: f, BusyUntil: d.busyUntil}
}

// Warm forces the device to full boost clocks (used by experiments that
// start from a warmed-up GPU, footnote 1 of the paper).
func (d *Device) Warm(now time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.boostBusy = d.prof.WarmupBusy
	d.lastEnd = now
	if d.busyUntil < now {
		d.busyUntil = now
	}
}

// Reset returns the device to a cold, idle state at virtual time zero.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.busyUntil, d.boostBusy, d.lastEnd = 0, 0, 0
	d.slowdown = 0
	d.heat = 0
	d.govClock, d.govPower = 0, 0
	d.execs, d.busyTotal = 0, 0
}

// Stats returns lifetime execution counters.
func (d *Device) Stats() (execs int64, busy time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.execs, d.busyTotal
}

// PCIeExtraBytes lets a workload charge additional per-batch transfer
// payload (none for the paper's models; hook for future workloads).
func (w Workload) PCIeExtraBytes() int64 { return 0 }
