package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"bomw/internal/tensor"
)

// Weight serialisation implements the storage side of the Weights Building
// Module (Fig. 2): after the (offline) training phase the resulting weights
// are kept by the Dispatcher and staged into each device's buffers. The
// format is a little-endian stream: magic, version, layer count, then for
// each weight-bearing layer its tensors (rank, dims, float32 payload).

const (
	weightsMagic   = uint32(0x424F4D57) // "BOMW"
	weightsVersion = uint32(1)
)

// WriteWeights serialises all weight tensors of the network to w.
func (n *Network) WriteWeights(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var tensors []*tensor.Tensor
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Dense:
			tensors = append(tensors, t.W, t.B)
		case *Conv:
			tensors = append(tensors, t.Filters, t.Bias)
		}
	}
	hdr := []uint32{weightsMagic, weightsVersion, uint32(len(tensors))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("nn: writing weights header: %w", err)
		}
	}
	for _, t := range tensors {
		if err := writeTensor(bw, t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeTensor(w io.Writer, t *tensor.Tensor) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(t.Rank())); err != nil {
		return fmt.Errorf("nn: writing tensor rank: %w", err)
	}
	for _, d := range t.Shape() {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return fmt.Errorf("nn: writing tensor shape: %w", err)
		}
	}
	buf := make([]byte, 4*len(t.Data()))
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("nn: writing tensor payload: %w", err)
	}
	return nil
}

// ReadWeights loads weights previously produced by WriteWeights into the
// network. The architecture must match exactly.
func (n *Network) ReadWeights(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic, version, count uint32
	for _, p := range []*uint32{&magic, &version, &count} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return fmt.Errorf("nn: reading weights header: %w", err)
		}
	}
	if magic != weightsMagic {
		return fmt.Errorf("nn: bad weights magic %#x", magic)
	}
	if version != weightsVersion {
		return fmt.Errorf("nn: unsupported weights version %d", version)
	}
	var targets []*tensor.Tensor
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Dense:
			targets = append(targets, t.W, t.B)
		case *Conv:
			targets = append(targets, t.Filters, t.Bias)
		}
	}
	if int(count) != len(targets) {
		return fmt.Errorf("nn: weights stream has %d tensors, network %q needs %d", count, n.name, len(targets))
	}
	for i, t := range targets {
		if err := readTensorInto(br, t); err != nil {
			return fmt.Errorf("nn: tensor %d: %w", i, err)
		}
	}
	return nil
}

func readTensorInto(r io.Reader, t *tensor.Tensor) error {
	var rank uint32
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return fmt.Errorf("reading rank: %w", err)
	}
	if int(rank) != t.Rank() {
		return fmt.Errorf("rank %d, want %d", rank, t.Rank())
	}
	for i := 0; i < int(rank); i++ {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return fmt.Errorf("reading shape: %w", err)
		}
		if int(d) != t.Dim(i) {
			return fmt.Errorf("dim %d is %d, want %d", i, d, t.Dim(i))
		}
	}
	buf := make([]byte, 4*len(t.Data()))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("reading payload: %w", err)
	}
	for i := range t.Data() {
		t.Data()[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}
