package nn

import (
	"fmt"
	"math/rand"

	"bomw/internal/tensor"
)

// Kind distinguishes the two model families the paper evaluates.
type Kind int

const (
	// FFNN is a multilayer perceptron (§II-B1).
	FFNN Kind = iota
	// CNN is a VGG-block convolutional network (§II-B2).
	CNN
)

// String returns "ffnn" or "cnn".
func (k Kind) String() string {
	if k == CNN {
		return "cnn"
	}
	return "ffnn"
}

// Spec is the declarative architecture description handed to the Model
// Building Module (Fig. 2). It captures exactly the parameters the paper
// identifies as performance-determining (§V-B): for FFNNs the depth and
// layer sizes; for CNNs the number of VGG blocks, convolutions per block,
// filter size and count, and pooling size, plus the dense head.
type Spec struct {
	Name       string
	Kind       Kind
	InputShape []int // per-sample: [features] for FFNN, [C H W] for CNN
	Hidden     []int // hidden dense layer sizes (the dense head for CNNs)
	Classes    int
	Act        tensor.Activation // hidden activation; output always softmax

	// CNN-only parameters. A "VGG block" is ConvsPerBlock convolution
	// layers followed by one pooling layer, as defined in §II-B2.
	VGGBlocks     int
	ConvsPerBlock int
	Filters       int
	FilterSize    int
	PoolSize      int
	// SamePad pads convolutions so feature maps keep their spatial size
	// (the Keras-style VGG blocks the paper's CNNs are modelled after).
	// When false, convolutions use "valid" padding.
	SamePad bool
}

// convPad returns the zero padding per side implied by the spec.
func (s *Spec) convPad() int {
	if s.SamePad {
		return (s.FilterSize - 1) / 2
	}
	return 0
}

// Validate checks internal consistency of the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("nn: spec needs a name")
	}
	if s.Classes <= 0 {
		return fmt.Errorf("nn: spec %q: classes must be positive", s.Name)
	}
	for _, h := range s.Hidden {
		if h <= 0 {
			return fmt.Errorf("nn: spec %q: non-positive hidden layer size", s.Name)
		}
	}
	switch s.Kind {
	case FFNN:
		if len(s.InputShape) != 1 || s.InputShape[0] <= 0 {
			return fmt.Errorf("nn: spec %q: FFNN input shape must be [features], got %v", s.Name, s.InputShape)
		}
	case CNN:
		if len(s.InputShape) != 3 {
			return fmt.Errorf("nn: spec %q: CNN input shape must be [C H W], got %v", s.Name, s.InputShape)
		}
		if s.VGGBlocks <= 0 || s.ConvsPerBlock <= 0 || s.Filters <= 0 || s.FilterSize <= 0 || s.PoolSize <= 0 {
			return fmt.Errorf("nn: spec %q: CNN parameters must be positive", s.Name)
		}
		// Check the feature maps survive all blocks.
		h, w := s.InputShape[1], s.InputShape[2]
		shrink := s.FilterSize - 1 - 2*s.convPad()
		for b := 0; b < s.VGGBlocks; b++ {
			for c := 0; c < s.ConvsPerBlock; c++ {
				h -= shrink
				w -= shrink
			}
			if h < s.PoolSize || w < s.PoolSize {
				return fmt.Errorf("nn: spec %q: feature map vanishes at VGG block %d", s.Name, b+1)
			}
			h /= s.PoolSize
			w /= s.PoolSize
		}
	default:
		return fmt.Errorf("nn: spec %q: unknown kind %d", s.Name, int(s.Kind))
	}
	return nil
}

// Build materialises the spec into a Network with deterministic weights
// drawn from the given seed. This is the Model Building Module plus the
// Weights Building Module of Fig. 2 in one step.
func (s *Spec) Build(seed int64) (*Network, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var layers []Layer
	switch s.Kind {
	case FFNN:
		in := s.InputShape[0]
		for _, h := range s.Hidden {
			layers = append(layers, NewDense(rng, in, h, s.Act))
			in = h
		}
		layers = append(layers, NewDense(rng, in, s.Classes, tensor.Softmax))
	case CNN:
		ch, h, w := s.InputShape[0], s.InputShape[1], s.InputShape[2]
		shrink := s.FilterSize - 1 - 2*s.convPad()
		for b := 0; b < s.VGGBlocks; b++ {
			for c := 0; c < s.ConvsPerBlock; c++ {
				layers = append(layers, NewConvPad(rng, ch, s.Filters, s.FilterSize, s.convPad(), s.Act))
				ch = s.Filters
				h -= shrink
				w -= shrink
			}
			layers = append(layers, &MaxPool{K: s.PoolSize})
			h /= s.PoolSize
			w /= s.PoolSize
		}
		layers = append(layers, Flatten{})
		in := ch * h * w
		for _, hd := range s.Hidden {
			layers = append(layers, NewDense(rng, in, hd, s.Act))
			in = hd
		}
		layers = append(layers, NewDense(rng, in, s.Classes, tensor.Softmax))
	}
	return NewNetwork(s.Name, s.InputShape, layers...), nil
}

// MustBuild is Build for statically known-good specs; it panics on error.
func (s *Spec) MustBuild(seed int64) *Network {
	n, err := s.Build(seed)
	if err != nil {
		panic(err)
	}
	return n
}

// Descriptor is the feature representation of an architecture used to
// train the scheduler (§V-B): FFNNs contribute (depth, total neurons);
// CNNs add (VGG blocks, convolutions per block, filter size, pool size).
type Descriptor struct {
	IsCNN         bool
	Depth         int // number of weight-bearing layers
	TotalNeurons  int // sum of dense-layer widths incl. output
	VGGBlocks     int
	ConvsPerBlock int
	FilterSize    int
	PoolSize      int
}

// Descriptor derives the scheduler feature representation from the spec.
func (s *Spec) Descriptor() Descriptor {
	d := Descriptor{
		Depth:        len(s.Hidden) + 1,
		TotalNeurons: s.Classes,
	}
	for _, h := range s.Hidden {
		d.TotalNeurons += h
	}
	if s.Kind == CNN {
		d.IsCNN = true
		d.Depth += s.VGGBlocks * s.ConvsPerBlock
		d.VGGBlocks = s.VGGBlocks
		d.ConvsPerBlock = s.ConvsPerBlock
		d.FilterSize = s.FilterSize
		d.PoolSize = s.PoolSize
	}
	return d
}

// Features flattens the descriptor into the scheduler's numeric feature
// vector (architecture part only; batch size and GPU state are appended
// by the scheduler).
func (d Descriptor) Features() []float64 {
	isCNN := 0.0
	if d.IsCNN {
		isCNN = 1
	}
	return []float64{
		isCNN,
		float64(d.Depth),
		float64(d.TotalNeurons),
		float64(d.VGGBlocks),
		float64(d.ConvsPerBlock),
		float64(d.FilterSize),
		float64(d.PoolSize),
	}
}

// FeatureNames labels Features() entries, in order.
func FeatureNames() []string {
	return []string{"is_cnn", "depth", "total_neurons", "vgg_blocks", "convs_per_block", "filter_size", "pool_size"}
}
