// Package nn implements the feed-forward and convolutional neural network
// inference engines evaluated by the paper (§II-B, §III-B): layer types,
// network assembly from architecture specs, deterministic weight
// initialisation, forward (classification) passes, and the FLOP/byte
// accounting the device cost models consume.
//
// Training of the workload networks is out of scope for the paper's
// evaluation (it happens offline); bomw initialises weights from a seeded
// PRNG so runs are reproducible, and the Dispatcher (internal/core) loads
// those weights onto every device exactly as Fig. 2 describes.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"bomw/internal/tensor"
)

// Layer is one stage of a network's forward pass. Implementations must be
// safe for concurrent Forward calls (weights are read-only after build).
type Layer interface {
	// Forward computes the layer output for a batch held in in.
	Forward(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor
	// OutputShape returns the per-sample output shape for a given
	// per-sample input shape (batch dimension excluded).
	OutputShape(in []int) []int
	// FlopsPerSample returns the floating-point operations needed for one
	// sample with the given per-sample input shape.
	FlopsPerSample(in []int) int64
	// ParamBytes returns the weight footprint in bytes.
	ParamBytes() int64
	// Name returns a short human-readable layer description.
	Name() string
}

// Dense is a fully connected layer: out = act(in·Wᵀ + b).
// W has shape [out, in]; B has shape [out].
type Dense struct {
	W   *tensor.Tensor
	B   *tensor.Tensor
	Act tensor.Activation
}

// NewDense builds a dense layer with Xavier/Glorot-uniform weights drawn
// from rng.
func NewDense(rng *rand.Rand, in, out int, act tensor.Activation) *Dense {
	w := tensor.New(out, in)
	limit := float32(math.Sqrt(6 / float64(in+out)))
	d := w.Data()
	for i := range d {
		d[i] = (rng.Float32()*2 - 1) * limit
	}
	return &Dense{W: w, B: tensor.New(out), Act: act}
}

// In returns the layer fan-in.
func (l *Dense) In() int { return l.W.Dim(1) }

// Out returns the layer fan-out (number of neurons).
func (l *Dense) Out() int { return l.W.Dim(0) }

// Forward implements Layer.
func (l *Dense) Forward(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor {
	if in.Rank() != 2 {
		panic(fmt.Sprintf("nn: Dense input must be rank-2 [batch, features], got %v", in.Shape()))
	}
	out := tensor.MatMul(pool, in, tensor.Transpose(l.W))
	tensor.AddBiasRows(pool, out, l.B)
	l.Act.Apply(pool, out)
	return out
}

// OutputShape implements Layer.
func (l *Dense) OutputShape(in []int) []int { return []int{l.Out()} }

// FlopsPerSample implements Layer: a multiply-accumulate per weight plus
// bias add and activation.
func (l *Dense) FlopsPerSample(in []int) int64 {
	return int64(2*l.In()+1)*int64(l.Out()) + l.Act.FlopsPerElement()*int64(l.Out())
}

// ParamBytes implements Layer.
func (l *Dense) ParamBytes() int64 { return l.W.SizeBytes() + l.B.SizeBytes() }

// Name implements Layer.
func (l *Dense) Name() string {
	return fmt.Sprintf("dense(%d→%d,%s)", l.In(), l.Out(), l.Act)
}

// Conv is a 2-D convolution layer with stride 1 and Pad rows/columns of
// zero padding per side ("valid" = 0, "same" = (k-1)/2 for odd k), the
// configurations used by the paper's CNNs. Filters has shape
// [outC, inC, kH, kW].
type Conv struct {
	Filters *tensor.Tensor
	Bias    *tensor.Tensor
	Act     tensor.Activation
	Pad     int
}

// NewConv builds a valid-padding convolution layer with He-uniform weights
// drawn from rng.
func NewConv(rng *rand.Rand, inC, outC, k int, act tensor.Activation) *Conv {
	return NewConvPad(rng, inC, outC, k, 0, act)
}

// NewConvPad builds a convolution layer with explicit zero padding.
func NewConvPad(rng *rand.Rand, inC, outC, k, pad int, act tensor.Activation) *Conv {
	f := tensor.New(outC, inC, k, k)
	limit := float32(math.Sqrt(6 / float64(inC*k*k)))
	d := f.Data()
	for i := range d {
		d[i] = (rng.Float32()*2 - 1) * limit
	}
	return &Conv{Filters: f, Bias: tensor.New(outC), Act: act, Pad: pad}
}

// Forward implements Layer.
func (l *Conv) Forward(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.Conv2D(pool, tensor.Pad2D(in, l.Pad), l.Filters, l.Bias)
	l.Act.Apply(pool, out)
	return out
}

// OutputShape implements Layer.
func (l *Conv) OutputShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: Conv input must be [C H W], got %v", in))
	}
	k := l.Filters.Dim(2)
	return []int{l.Filters.Dim(0), in[1] + 2*l.Pad - k + 1, in[2] + 2*l.Pad - k + 1}
}

// FlopsPerSample implements Layer.
func (l *Conv) FlopsPerSample(in []int) int64 {
	out := l.OutputShape(in)
	macs := int64(out[0]) * int64(out[1]) * int64(out[2]) *
		int64(l.Filters.Dim(1)) * int64(l.Filters.Dim(2)) * int64(l.Filters.Dim(3))
	elems := int64(out[0]) * int64(out[1]) * int64(out[2])
	return 2*macs + elems*(1+l.Act.FlopsPerElement())
}

// ParamBytes implements Layer.
func (l *Conv) ParamBytes() int64 { return l.Filters.SizeBytes() + l.Bias.SizeBytes() }

// Name implements Layer.
func (l *Conv) Name() string {
	return fmt.Sprintf("conv(%dx%dx%d→%d,%s)", l.Filters.Dim(2), l.Filters.Dim(3), l.Filters.Dim(1), l.Filters.Dim(0), l.Act)
}

// MaxPool is a non-overlapping max-pooling layer with window K.
type MaxPool struct {
	K int
}

// Forward implements Layer.
func (l *MaxPool) Forward(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxPool2D(pool, in, l.K)
}

// OutputShape implements Layer.
func (l *MaxPool) OutputShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: MaxPool input must be [C H W], got %v", in))
	}
	return []int{in[0], in[1] / l.K, in[2] / l.K}
}

// FlopsPerSample implements Layer: one compare per pooled element.
func (l *MaxPool) FlopsPerSample(in []int) int64 {
	out := l.OutputShape(in)
	return int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(l.K*l.K)
}

// ParamBytes implements Layer.
func (l *MaxPool) ParamBytes() int64 { return 0 }

// Name implements Layer.
func (l *MaxPool) Name() string { return fmt.Sprintf("maxpool(%dx%d)", l.K, l.K) }

// Flatten reshapes [batch, C, H, W] feature maps into [batch, C*H*W] rows
// feeding the dense head of a CNN.
type Flatten struct{}

// Forward implements Layer.
func (Flatten) Forward(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor {
	batch := in.Dim(0)
	return in.Reshape(batch, in.Len()/batch)
}

// OutputShape implements Layer.
func (Flatten) OutputShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// FlopsPerSample implements Layer.
func (Flatten) FlopsPerSample(in []int) int64 { return 0 }

// ParamBytes implements Layer.
func (Flatten) ParamBytes() int64 { return 0 }

// Name implements Layer.
func (Flatten) Name() string { return "flatten" }
