package nn

import (
	"fmt"
	"strings"

	"bomw/internal/tensor"
)

// Network is an ordered stack of layers implementing one of the paper's
// workload models. A Network is immutable after construction and safe for
// concurrent Forward calls.
type Network struct {
	name       string
	inputShape []int // per-sample shape, e.g. [4] for Iris, [1 28 28] for MNIST
	layers     []Layer
	classes    int
}

// NewNetwork assembles a network. inputShape is the per-sample shape
// (without the batch dimension). It validates that every layer's input
// shape matches its predecessor's output.
func NewNetwork(name string, inputShape []int, layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: network needs at least one layer")
	}
	shape := append([]int(nil), inputShape...)
	for _, l := range layers {
		shape = l.OutputShape(shape) // panics on incompatible shapes
	}
	if len(shape) != 1 {
		panic(fmt.Sprintf("nn: network %q must end in a rank-1 per-sample output, got %v", name, shape))
	}
	return &Network{
		name:       name,
		inputShape: append([]int(nil), inputShape...),
		layers:     layers,
		classes:    shape[0],
	}
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// InputShape returns the per-sample input shape.
func (n *Network) InputShape() []int { return n.inputShape }

// Classes returns the size of the output layer.
func (n *Network) Classes() int { return n.classes }

// Layers returns the layer stack. The slice must not be mutated.
func (n *Network) Layers() []Layer { return n.layers }

// SampleBytes returns the byte size of one input sample; this is the unit
// the paper's throughput figures (bits/s) are based on.
func (n *Network) SampleBytes() int64 {
	sz := int64(4)
	for _, d := range n.inputShape {
		sz *= int64(d)
	}
	return sz
}

// Forward runs a classification pass over a batch. The input must have
// shape [batch, inputShape...].
func (n *Network) Forward(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor {
	if in.Dim(0) <= 0 || in.Rank() != len(n.inputShape)+1 {
		panic(fmt.Sprintf("nn: %s expects input rank %d (batch + %v), got %v",
			n.name, len(n.inputShape)+1, n.inputShape, in.Shape()))
	}
	for i, d := range n.inputShape {
		if in.Dim(i+1) != d {
			panic(fmt.Sprintf("nn: %s expects per-sample shape %v, got %v", n.name, n.inputShape, in.Shape()[1:]))
		}
	}
	x := in
	for _, l := range n.layers {
		x = l.Forward(pool, x)
	}
	return x
}

// Classify runs Forward and reduces each row to its argmax class index.
func (n *Network) Classify(pool *tensor.Pool, in *tensor.Tensor) []int {
	return tensor.Argmax(n.Forward(pool, in))
}

// FlopsPerSample returns the total floating-point work for one sample.
func (n *Network) FlopsPerSample() int64 {
	shape := n.inputShape
	var total int64
	for _, l := range n.layers {
		total += l.FlopsPerSample(shape)
		shape = l.OutputShape(shape)
	}
	return total
}

// ParamBytes returns the total weight footprint in bytes — the volume the
// Weights Building Module stages onto each device.
func (n *Network) ParamBytes() int64 {
	var total int64
	for _, l := range n.layers {
		total += l.ParamBytes()
	}
	return total
}

// ActivationBytesPerSample returns an upper bound on the intermediate
// activation traffic per sample, used by the device memory model.
func (n *Network) ActivationBytesPerSample() int64 {
	shape := n.inputShape
	vol := func(s []int) int64 {
		v := int64(4)
		for _, d := range s {
			v *= int64(d)
		}
		return v
	}
	total := vol(shape)
	for _, l := range n.layers {
		shape = l.OutputShape(shape)
		total += vol(shape)
	}
	return total
}

// String renders the layer stack, e.g.
// "mnist-small: [784] → dense(784→784,relu) → … → dense(800→10,softmax)".
func (n *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %v", n.name, n.inputShape)
	for _, l := range n.layers {
		fmt.Fprintf(&b, " → %s", l.Name())
	}
	return b.String()
}
