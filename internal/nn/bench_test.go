package nn

import (
	"testing"

	"bomw/internal/tensor"
)

func benchForward(b *testing.B, spec *Spec, batch int) {
	net := spec.MustBuild(1)
	shape := append([]int{batch}, spec.InputShape...)
	in := tensor.New(shape...)
	b.SetBytes(int64(batch) * net.SampleBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(tensor.Default, in)
	}
}

func BenchmarkForwardSimple64(b *testing.B) {
	benchForward(b, &Spec{Name: "simple", Kind: FFNN, InputShape: []int{4},
		Hidden: []int{6, 6}, Classes: 3, Act: tensor.ReLU}, 64)
}

func BenchmarkForwardMnistSmall64(b *testing.B) {
	benchForward(b, &Spec{Name: "mnist-small", Kind: FFNN, InputShape: []int{784},
		Hidden: []int{784, 800}, Classes: 10, Act: tensor.ReLU}, 64)
}

func BenchmarkForwardMnistCNN16(b *testing.B) {
	benchForward(b, &Spec{Name: "mnist-cnn", Kind: CNN, InputShape: []int{1, 28, 28},
		Hidden: []int{128}, Classes: 10, Act: tensor.ReLU,
		VGGBlocks: 2, ConvsPerBlock: 1, Filters: 32, FilterSize: 3, PoolSize: 2, SamePad: true}, 16)
}

func BenchmarkBuildMnistDeep(b *testing.B) {
	spec := &Spec{Name: "mnist-deep", Kind: FFNN, InputShape: []int{784},
		Hidden: []int{784, 2500, 2000, 1500, 1000, 500}, Classes: 10, Act: tensor.ReLU}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.MustBuild(int64(i))
	}
}
