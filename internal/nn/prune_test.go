package nn

import (
	"strings"
	"testing"

	"bomw/internal/tensor"
)

func TestPruneStatsAndFlops(t *testing.T) {
	net := irisSpec().MustBuild(60)
	stats, err := Prune(net, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LayersPruned != 3 {
		t.Fatalf("pruned %d layers, want 3", stats.LayersPruned)
	}
	if s := stats.Sparsity(); s < 0.45 || s > 0.55 {
		t.Fatalf("sparsity %.2f, want ≈0.5", s)
	}
	if stats.FlopsAfter >= stats.FlopsBefore {
		t.Fatal("pruning must reduce sparse-execution flops")
	}
	if _, err := Prune(net, 1.5); err == nil {
		t.Fatal("fraction >1 accepted")
	}
	if _, err := Prune(net, -0.1); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

func TestPruneLeavesConvsAlone(t *testing.T) {
	net := tinyCNNSpec().MustBuild(61)
	before := net.Layers()[0].(*Conv).Filters.Clone()
	if _, err := Prune(net, 0.9); err != nil {
		t.Fatal(err)
	}
	if !net.Layers()[0].(*Conv).Filters.Equal(before) {
		t.Fatal("convolution filters were pruned")
	}
}

func TestSparsifyPreservesPredictions(t *testing.T) {
	// Moderate pruning barely moves predictions; sparse execution must
	// exactly match the pruned dense network.
	net := irisSpec().MustBuild(62)
	x, y := clusteredData(200, 4, 3, 63)
	if err := (&Trainer{Epochs: 120, Seed: 5}).Train(net, x, y); err != nil {
		t.Fatal(err)
	}
	accBefore := Accuracy(net, tensor.Default, x, y)
	if _, err := Prune(net, 0.3); err != nil {
		t.Fatal(err)
	}
	sparse := SparsifyNetwork(net)
	densePred := net.Classify(tensor.Default, x)
	sparsePred := sparse.Classify(tensor.Default, x)
	for i := range densePred {
		if densePred[i] != sparsePred[i] {
			t.Fatal("sparse execution diverges from pruned dense network")
		}
	}
	accAfter := Accuracy(sparse, tensor.Default, x, y)
	if accAfter < accBefore-0.15 {
		t.Fatalf("30%% pruning destroyed accuracy: %.2f → %.2f", accBefore, accAfter)
	}
	if !strings.Contains(sparse.Name(), "-sparse") {
		t.Fatalf("sparse network name %q", sparse.Name())
	}
}

func TestSparseDenseAccounting(t *testing.T) {
	net := irisSpec().MustBuild(64)
	if _, err := Prune(net, 0.6); err != nil {
		t.Fatal(err)
	}
	sparse := SparsifyNetwork(net)
	if sparse.FlopsPerSample() >= net.FlopsPerSample() {
		t.Fatalf("sparse flops %d not below dense %d", sparse.FlopsPerSample(), net.FlopsPerSample())
	}
	sd := sparse.Layers()[0].(*SparseDense)
	if sd.ParamBytes() <= 0 {
		t.Fatal("sparse params must have positive footprint")
	}
	if got := sd.OutputShape([]int{4}); got[0] != 6 {
		t.Fatalf("sparse OutputShape = %v", got)
	}
	if !strings.Contains(sd.Name(), "sparse-dense") {
		t.Fatalf("Name = %q", sd.Name())
	}
}

func TestHalveNetworkPredictionsClose(t *testing.T) {
	net := irisSpec().MustBuild(65)
	x, y := clusteredData(200, 4, 3, 66)
	if err := (&Trainer{Epochs: 120, Seed: 6}).Train(net, x, y); err != nil {
		t.Fatal(err)
	}
	half := HalveNetwork(net)
	densePred := net.Classify(tensor.Default, x)
	halfPred := half.Classify(tensor.Default, x)
	agree := 0
	for i := range densePred {
		if densePred[i] == halfPred[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(densePred)); frac < 0.98 {
		t.Fatalf("fp16 weights changed %.1f%% of predictions", 100*(1-frac))
	}
	if Accuracy(half, tensor.Default, x, y) < Accuracy(net, tensor.Default, x, y)-0.05 {
		t.Fatal("fp16 storage should not measurably hurt accuracy")
	}
}

func TestHalveNetworkHalvesWeightBytes(t *testing.T) {
	net := irisSpec().MustBuild(67)
	half := HalveNetwork(net)
	// Weight matrices halve; fp32 biases stay.
	if half.ParamBytes() >= net.ParamBytes() {
		t.Fatalf("fp16 params %d not below fp32 %d", half.ParamBytes(), net.ParamBytes())
	}
	hd := half.Layers()[0].(*HalfDense)
	if got := hd.OutputShape([]int{4}); got[0] != 6 {
		t.Fatalf("half OutputShape = %v", got)
	}
	if hd.FlopsPerSample([]int{4}) != net.Layers()[0].(*Dense).FlopsPerSample([]int{4}) {
		t.Fatal("fp16 storage should not change compute flops")
	}
	if !strings.Contains(hd.Name(), "half-dense") {
		t.Fatalf("Name = %q", hd.Name())
	}
	if !strings.Contains(half.Name(), "-fp16") {
		t.Fatalf("network name %q", half.Name())
	}
}

func TestOptimizedNetworksRunOnDeviceModels(t *testing.T) {
	// The optimised variants must flow through the whole stack: smaller
	// workloads should be charged less by the device models.
	net := MustBuildSpec(t)
	if _, err := Prune(net, 0.7); err != nil {
		t.Fatal(err)
	}
	sparse := SparsifyNetwork(net)
	if sparse.ParamBytes() >= net.ParamBytes() {
		t.Fatal("CSR weights should be smaller at 70% sparsity")
	}
}

// MustBuildSpec builds a mid-size FFNN for optimisation tests.
func MustBuildSpec(t *testing.T) *Network {
	t.Helper()
	spec := &Spec{Name: "opt", Kind: FFNN, InputShape: []int{64},
		Hidden: []int{256, 128}, Classes: 10, Act: tensor.ReLU}
	return spec.MustBuild(68)
}
