package nn

import (
	"fmt"

	"bomw/internal/tensor"
)

// Magnitude pruning and sparse inference — the sparsification line the
// paper cites as orthogonal, adoptable device-side optimisation (§VII,
// refs [14]-[16]): dropping small weights shrinks a model's FLOP and
// byte footprint, which the device cost models translate directly into
// faster, cheaper classification.

// PruneStats summarises one pruning pass.
type PruneStats struct {
	LayersPruned int
	WeightsTotal int
	WeightsZero  int
	// FlopsBefore/After are whole-network per-sample costs assuming
	// sparse execution of the pruned layers.
	FlopsBefore int64
	FlopsAfter  int64
}

// Sparsity returns the fraction of zeroed weights.
func (s PruneStats) Sparsity() float64 {
	if s.WeightsTotal == 0 {
		return 0
	}
	return float64(s.WeightsZero) / float64(s.WeightsTotal)
}

// Prune zeroes the smallest-magnitude fraction of every Dense layer's
// weights in place. Convolutions are left untouched (filter pruning is a
// different technique). Returns per-network statistics.
func Prune(net *Network, fraction float64) (PruneStats, error) {
	if fraction < 0 || fraction >= 1 {
		return PruneStats{}, fmt.Errorf("nn: prune fraction must be in [0,1), got %g", fraction)
	}
	stats := PruneStats{FlopsBefore: net.FlopsPerSample()}
	for _, l := range net.Layers() {
		d, ok := l.(*Dense)
		if !ok {
			continue
		}
		stats.LayersPruned++
		stats.WeightsTotal += d.W.Len()
		stats.WeightsZero += tensor.PruneMagnitude(d.W, fraction)
	}
	// Sparse execution skips zeroed MACs.
	stats.FlopsAfter = stats.FlopsBefore - 2*int64(stats.WeightsZero)
	return stats, nil
}

// SparseDense is a pruned fully connected layer executing in CSR form:
// compute and weight traffic scale with surviving non-zeros.
type SparseDense struct {
	W   *tensor.CSRMatrix
	B   *tensor.Tensor
	Act tensor.Activation
}

// Sparsify converts a (typically pruned) Dense layer to CSR execution.
func Sparsify(d *Dense) *SparseDense {
	return &SparseDense{W: tensor.NewCSR(d.W, 0), B: d.B, Act: d.Act}
}

// Forward implements Layer.
func (l *SparseDense) Forward(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.MatMulCSR(pool, in, l.W)
	tensor.AddBiasRows(pool, out, l.B)
	l.Act.Apply(pool, out)
	return out
}

// OutputShape implements Layer.
func (l *SparseDense) OutputShape(in []int) []int { return []int{l.W.Rows} }

// FlopsPerSample implements Layer: two flops per stored non-zero.
func (l *SparseDense) FlopsPerSample(in []int) int64 {
	return 2*int64(l.W.NNZ()) + int64(l.W.Rows)*(1+l.Act.FlopsPerElement())
}

// ParamBytes implements Layer.
func (l *SparseDense) ParamBytes() int64 { return l.W.SizeBytes() + l.B.SizeBytes() }

// Name implements Layer.
func (l *SparseDense) Name() string {
	return fmt.Sprintf("sparse-dense(%d→%d,%.0f%%,%s)", l.W.Cols, l.W.Rows, 100*l.W.Density(), l.Act)
}

// SparsifyNetwork rebuilds a network with every Dense layer converted to
// sparse execution. The original network is unchanged.
func SparsifyNetwork(net *Network) *Network {
	layers := make([]Layer, 0, len(net.Layers()))
	for _, l := range net.Layers() {
		if d, ok := l.(*Dense); ok {
			layers = append(layers, Sparsify(d))
		} else {
			layers = append(layers, l)
		}
	}
	return NewNetwork(net.Name()+"-sparse", net.InputShape(), layers...)
}

// HalfDense is a Dense layer whose weights live in fp16 storage (the
// half-precision optimisation of the paper's ref [4]): half the weight
// bytes, float32 arithmetic. Compute cost is unchanged; the device
// models reward the reduced memory traffic on bandwidth-bound layers.
type HalfDense struct {
	W   *tensor.HalfTensor
	B   *tensor.Tensor
	Act tensor.Activation

	expanded *tensor.Tensor // float32 view, materialised once
}

// Halve converts a Dense layer to fp16 weight storage.
func Halve(d *Dense) *HalfDense {
	h := &HalfDense{W: tensor.NewHalf(d.W), B: d.B, Act: d.Act}
	h.expanded = h.W.Expand()
	return h
}

// Forward implements Layer.
func (l *HalfDense) Forward(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.MatMul(pool, in, tensor.Transpose(l.expanded))
	tensor.AddBiasRows(pool, out, l.B)
	l.Act.Apply(pool, out)
	return out
}

// OutputShape implements Layer.
func (l *HalfDense) OutputShape(in []int) []int { return []int{l.W.Shape()[0]} }

// FlopsPerSample implements Layer.
func (l *HalfDense) FlopsPerSample(in []int) int64 {
	out := int64(l.W.Shape()[0])
	return int64(2*l.W.Shape()[1]+1)*out + l.Act.FlopsPerElement()*out
}

// ParamBytes implements Layer: the fp16 footprint.
func (l *HalfDense) ParamBytes() int64 { return l.W.SizeBytes() + l.B.SizeBytes() }

// Name implements Layer.
func (l *HalfDense) Name() string {
	return fmt.Sprintf("half-dense(%d→%d,%s)", l.W.Shape()[1], l.W.Shape()[0], l.Act)
}

// HalveNetwork rebuilds a network with fp16 weight storage on every
// Dense layer.
func HalveNetwork(net *Network) *Network {
	layers := make([]Layer, 0, len(net.Layers()))
	for _, l := range net.Layers() {
		if d, ok := l.(*Dense); ok {
			layers = append(layers, Halve(d))
		} else {
			layers = append(layers, l)
		}
	}
	return NewNetwork(net.Name()+"-fp16", net.InputShape(), layers...)
}
