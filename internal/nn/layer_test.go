package nn

import (
	"math/rand"
	"testing"

	"bomw/internal/tensor"
)

func TestDenseForwardKnownValues(t *testing.T) {
	d := &Dense{
		W:   tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3), // 2 out, 3 in
		B:   tensor.FromSlice([]float32{10, 20}, 2),
		Act: tensor.Identity,
	}
	in := tensor.FromSlice([]float32{1, 1, 1}, 1, 3)
	out := d.Forward(tensor.Serial, in)
	if out.Dim(0) != 1 || out.Dim(1) != 2 {
		t.Fatalf("Dense output shape %v", out.Shape())
	}
	if out.At(0, 0) != 16 || out.At(0, 1) != 35 {
		t.Fatalf("Dense output %v, want [16 35]", out)
	}
}

func TestDenseActivationApplied(t *testing.T) {
	d := &Dense{
		W:   tensor.FromSlice([]float32{-1}, 1, 1),
		B:   tensor.New(1),
		Act: tensor.ReLU,
	}
	out := d.Forward(tensor.Serial, tensor.FromSlice([]float32{5}, 1, 1))
	if out.At(0, 0) != 0 {
		t.Fatalf("ReLU not applied: %v", out)
	}
}

func TestDenseRejectsBadRank(t *testing.T) {
	d := NewDense(rand.New(rand.NewSource(1)), 3, 2, tensor.Identity)
	defer func() {
		if recover() == nil {
			t.Fatal("Dense.Forward with rank-3 input did not panic")
		}
	}()
	d.Forward(tensor.Serial, tensor.New(1, 3, 1))
}

func TestNewDenseXavierRange(t *testing.T) {
	d := NewDense(rand.New(rand.NewSource(2)), 100, 50, tensor.ReLU)
	if d.In() != 100 || d.Out() != 50 {
		t.Fatalf("fan in/out = %d/%d", d.In(), d.Out())
	}
	limit := float32(0.3) // sqrt(6/150) ≈ 0.2
	nonZero := 0
	for _, v := range d.W.Data() {
		if v < -limit || v > limit {
			t.Fatalf("weight %g outside Xavier bound", v)
		}
		if v != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("weights all zero")
	}
	for _, v := range d.B.Data() {
		if v != 0 {
			t.Fatal("bias should initialise to zero")
		}
	}
}

func TestDenseAccounting(t *testing.T) {
	d := NewDense(rand.New(rand.NewSource(3)), 10, 5, tensor.ReLU)
	// 2*10 MACs + 1 bias per neuron + relu per neuron = (21+1)*5.
	if got := d.FlopsPerSample([]int{10}); got != 21*5+5 {
		t.Fatalf("FlopsPerSample = %d", got)
	}
	if got := d.ParamBytes(); got != (10*5+5)*4 {
		t.Fatalf("ParamBytes = %d", got)
	}
	if got := d.OutputShape([]int{10}); len(got) != 1 || got[0] != 5 {
		t.Fatalf("OutputShape = %v", got)
	}
}

func TestConvForwardShapeAndAccounting(t *testing.T) {
	c := NewConv(rand.New(rand.NewSource(4)), 3, 8, 3, tensor.ReLU)
	in := tensor.New(2, 3, 10, 10)
	out := c.Forward(tensor.Serial, in)
	want := []int{2, 8, 8, 8}
	for i, d := range want {
		if out.Dim(i) != d {
			t.Fatalf("Conv output shape %v, want %v", out.Shape(), want)
		}
	}
	shape := c.OutputShape([]int{3, 10, 10})
	if shape[0] != 8 || shape[1] != 8 || shape[2] != 8 {
		t.Fatalf("OutputShape = %v", shape)
	}
	// MACs: 8*8*8 outputs × 3*3*3 window; ×2 plus bias+relu per element.
	macs := int64(8*8*8) * 27
	elems := int64(8 * 8 * 8)
	if got := c.FlopsPerSample([]int{3, 10, 10}); got != 2*macs+2*elems {
		t.Fatalf("FlopsPerSample = %d, want %d", got, 2*macs+2*elems)
	}
	if got := c.ParamBytes(); got != (8*3*3*3+8)*4 {
		t.Fatalf("ParamBytes = %d", got)
	}
}

func TestConvReLUClampsNegatives(t *testing.T) {
	c := NewConv(rand.New(rand.NewSource(5)), 1, 1, 1, tensor.ReLU)
	c.Filters.Data()[0] = -1
	in := tensor.New(1, 1, 2, 2)
	in.Fill(1)
	out := c.Forward(tensor.Serial, in)
	for _, v := range out.Data() {
		if v != 0 {
			t.Fatalf("conv relu output %v", out)
		}
	}
}

func TestMaxPoolLayer(t *testing.T) {
	p := &MaxPool{K: 2}
	in := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := p.Forward(tensor.Serial, in)
	if out.Len() != 1 || out.Data()[0] != 4 {
		t.Fatalf("MaxPool output %v", out)
	}
	if got := p.OutputShape([]int{1, 2, 2}); got[1] != 1 || got[2] != 1 {
		t.Fatalf("OutputShape = %v", got)
	}
	if p.ParamBytes() != 0 {
		t.Fatal("pooling has no parameters")
	}
	if p.FlopsPerSample([]int{1, 4, 4}) != 2*2*2*2 {
		t.Fatalf("FlopsPerSample = %d", p.FlopsPerSample([]int{1, 4, 4}))
	}
}

func TestFlattenLayer(t *testing.T) {
	f := Flatten{}
	in := tensor.New(3, 2, 4, 4)
	out := f.Forward(tensor.Serial, in)
	if out.Dim(0) != 3 || out.Dim(1) != 32 {
		t.Fatalf("Flatten output shape %v", out.Shape())
	}
	if got := f.OutputShape([]int{2, 4, 4}); got[0] != 32 {
		t.Fatalf("OutputShape = %v", got)
	}
	if f.FlopsPerSample([]int{2, 4, 4}) != 0 || f.ParamBytes() != 0 {
		t.Fatal("flatten should be free")
	}
}

func TestLayerNames(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, c := range []struct {
		layer Layer
		want  string
	}{
		{NewDense(rng, 4, 6, tensor.ReLU), "dense(4→6,relu)"},
		{NewConv(rng, 1, 32, 3, tensor.ReLU), "conv(3x3x1→32,relu)"},
		{&MaxPool{K: 2}, "maxpool(2x2)"},
		{Flatten{}, "flatten"},
	} {
		if got := c.layer.Name(); got != c.want {
			t.Fatalf("Name = %q, want %q", got, c.want)
		}
	}
}
