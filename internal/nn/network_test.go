package nn

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bomw/internal/tensor"
)

func irisSpec() *Spec {
	return &Spec{
		Name:       "simple",
		Kind:       FFNN,
		InputShape: []int{4},
		Hidden:     []int{6, 6},
		Classes:    3,
		Act:        tensor.ReLU,
	}
}

func tinyCNNSpec() *Spec {
	return &Spec{
		Name:          "tiny-cnn",
		Kind:          CNN,
		InputShape:    []int{1, 12, 12},
		Hidden:        []int{16},
		Classes:       10,
		Act:           tensor.ReLU,
		VGGBlocks:     2,
		ConvsPerBlock: 1,
		Filters:       4,
		FilterSize:    3,
		PoolSize:      2,
	}
}

func TestBuildFFNNShapes(t *testing.T) {
	net := irisSpec().MustBuild(1)
	if net.Classes() != 3 {
		t.Fatalf("Classes = %d", net.Classes())
	}
	if len(net.Layers()) != 3 {
		t.Fatalf("layer count = %d, want 3", len(net.Layers()))
	}
	out := net.Forward(tensor.Default, tensor.New(5, 4))
	if out.Dim(0) != 5 || out.Dim(1) != 3 {
		t.Fatalf("forward output shape %v", out.Shape())
	}
}

func TestBuildCNNShapes(t *testing.T) {
	net := tinyCNNSpec().MustBuild(2)
	// 12 → conv3 → 10 → pool2 → 5 → conv3 → 3 → pool2 → 1.
	out := net.Forward(tensor.Default, tensor.New(3, 1, 12, 12))
	if out.Dim(0) != 3 || out.Dim(1) != 10 {
		t.Fatalf("forward output shape %v", out.Shape())
	}
}

func TestForwardOutputIsDistribution(t *testing.T) {
	net := irisSpec().MustBuild(3)
	rng := rand.New(rand.NewSource(9))
	in := tensor.New(8, 4)
	for i := range in.Data() {
		in.Data()[i] = rng.Float32()
	}
	out := net.Forward(tensor.Default, in)
	for i := 0; i < out.Dim(0); i++ {
		var sum float64
		for _, v := range out.Row(i) {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("row %d sums to %g (softmax output expected)", i, sum)
		}
	}
}

func TestForwardDeterministicAcrossPools(t *testing.T) {
	net := tinyCNNSpec().MustBuild(4)
	in := tensor.New(4, 1, 12, 12)
	rng := rand.New(rand.NewSource(10))
	for i := range in.Data() {
		in.Data()[i] = rng.Float32()
	}
	a := net.Forward(tensor.Serial, in.Clone())
	b := net.Forward(tensor.NewPool(8, 2), in.Clone())
	if !a.ApproxEqual(b, 1e-4) {
		t.Fatal("forward result depends on pool configuration")
	}
}

func TestBuildDeterministicBySeed(t *testing.T) {
	a := irisSpec().MustBuild(42)
	b := irisSpec().MustBuild(42)
	c := irisSpec().MustBuild(43)
	wa := a.Layers()[0].(*Dense).W
	wb := b.Layers()[0].(*Dense).W
	wc := c.Layers()[0].(*Dense).W
	if !wa.Equal(wb) {
		t.Fatal("same seed produced different weights")
	}
	if wa.Equal(wc) {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestClassifyReturnsValidClasses(t *testing.T) {
	net := irisSpec().MustBuild(5)
	got := net.Classify(tensor.Default, tensor.New(10, 4))
	if len(got) != 10 {
		t.Fatalf("Classify returned %d labels", len(got))
	}
	for _, c := range got {
		if c < 0 || c >= 3 {
			t.Fatalf("class %d out of range", c)
		}
	}
}

func TestForwardRejectsWrongShape(t *testing.T) {
	net := irisSpec().MustBuild(6)
	for i, in := range []*tensor.Tensor{
		tensor.New(2, 5),    // wrong feature count
		tensor.New(2, 4, 1), // wrong rank
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: bad input accepted", i)
				}
			}()
			net.Forward(tensor.Serial, in)
		}()
	}
}

func TestFlopsAndBytesAccounting(t *testing.T) {
	net := irisSpec().MustBuild(7)
	// dense 4→6: (2*4+1)*6 + 6 relu = 60; dense 6→6: (13)*6+6 = 84;
	// dense 6→3: (13)*3 + 10*3 softmax = 69. Total 213.
	if got := net.FlopsPerSample(); got != 213 {
		t.Fatalf("FlopsPerSample = %d, want 213", got)
	}
	if got := net.ParamBytes(); got != ((4*6+6)+(6*6+6)+(6*3+3))*4 {
		t.Fatalf("ParamBytes = %d", got)
	}
	if got := net.SampleBytes(); got != 16 {
		t.Fatalf("SampleBytes = %d, want 16", got)
	}
	if net.ActivationBytesPerSample() <= net.SampleBytes() {
		t.Fatal("activation traffic should exceed input size")
	}
}

func TestNetworkString(t *testing.T) {
	s := irisSpec().MustBuild(8).String()
	for _, frag := range []string{"simple", "dense(4→6,relu)", "dense(6→3,softmax)"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []*Spec{
		{Name: "", Kind: FFNN, InputShape: []int{4}, Classes: 3},
		{Name: "x", Kind: FFNN, InputShape: []int{4}, Classes: 0},
		{Name: "x", Kind: FFNN, InputShape: []int{4, 4}, Classes: 3},
		{Name: "x", Kind: FFNN, InputShape: []int{4}, Hidden: []int{0}, Classes: 3},
		{Name: "x", Kind: CNN, InputShape: []int{28, 28}, Classes: 10, VGGBlocks: 1, ConvsPerBlock: 1, Filters: 8, FilterSize: 3, PoolSize: 2},
		{Name: "x", Kind: CNN, InputShape: []int{1, 28, 28}, Classes: 10, VGGBlocks: 0, ConvsPerBlock: 1, Filters: 8, FilterSize: 3, PoolSize: 2},
		// Feature map vanishes: 6x6 input through 3 blocks of pool 2.
		{Name: "x", Kind: CNN, InputShape: []int{1, 6, 6}, Classes: 10, VGGBlocks: 3, ConvsPerBlock: 1, Filters: 8, FilterSize: 3, PoolSize: 2},
		{Name: "x", Kind: Kind(9), InputShape: []int{4}, Classes: 3},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted invalid spec", i)
		}
		if _, err := s.Build(1); err == nil {
			t.Fatalf("case %d: Build accepted invalid spec", i)
		}
	}
	if err := irisSpec().Validate(); err != nil {
		t.Fatalf("valid FFNN spec rejected: %v", err)
	}
	if err := tinyCNNSpec().Validate(); err != nil {
		t.Fatalf("valid CNN spec rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if FFNN.String() != "ffnn" || CNN.String() != "cnn" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestDescriptorFFNN(t *testing.T) {
	d := irisSpec().Descriptor()
	if d.IsCNN {
		t.Fatal("FFNN descriptor marked CNN")
	}
	if d.Depth != 3 { // two hidden + output
		t.Fatalf("Depth = %d, want 3", d.Depth)
	}
	if d.TotalNeurons != 6+6+3 {
		t.Fatalf("TotalNeurons = %d, want 15", d.TotalNeurons)
	}
	if d.VGGBlocks != 0 || d.FilterSize != 0 {
		t.Fatal("FFNN descriptor has CNN fields set")
	}
}

func TestDescriptorCNN(t *testing.T) {
	d := tinyCNNSpec().Descriptor()
	if !d.IsCNN {
		t.Fatal("CNN descriptor not marked CNN")
	}
	if d.Depth != 2*1+1+1 { // convs + hidden dense + output
		t.Fatalf("Depth = %d, want 4", d.Depth)
	}
	if d.VGGBlocks != 2 || d.ConvsPerBlock != 1 || d.FilterSize != 3 || d.PoolSize != 2 {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestDescriptorFeaturesAlignWithNames(t *testing.T) {
	f := tinyCNNSpec().Descriptor().Features()
	names := FeatureNames()
	if len(f) != len(names) {
		t.Fatalf("features %d, names %d", len(f), len(names))
	}
	if f[0] != 1 {
		t.Fatal("is_cnn feature should be 1 for CNN")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	src := tinyCNNSpec().MustBuild(99)
	dst := tinyCNNSpec().MustBuild(1) // different weights
	var buf bytes.Buffer
	if err := src.WriteWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := dst.ReadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(2, 1, 12, 12)
	rng := rand.New(rand.NewSource(11))
	for i := range in.Data() {
		in.Data()[i] = rng.Float32()
	}
	a := src.Forward(tensor.Serial, in.Clone())
	b := dst.Forward(tensor.Serial, in.Clone())
	if !a.Equal(b) {
		t.Fatal("weights round trip changed forward results")
	}
}

func TestReadWeightsArchitectureMismatch(t *testing.T) {
	src := irisSpec().MustBuild(1)
	var buf bytes.Buffer
	if err := src.WriteWeights(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyCNNSpec().MustBuild(1)
	if err := other.ReadWeights(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadWeights accepted mismatched architecture")
	}
}

func TestReadWeightsBadMagic(t *testing.T) {
	net := irisSpec().MustBuild(1)
	if err := net.ReadWeights(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})); err == nil {
		t.Fatal("ReadWeights accepted garbage header")
	}
	if err := net.ReadWeights(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadWeights accepted empty stream")
	}
}

// Property: for any seed, building and serialising then restoring into a
// fresh network preserves every forward output bit-exactly.
func TestPropertySerializationFaithful(t *testing.T) {
	f := func(seed int64) bool {
		src := irisSpec().MustBuild(seed)
		dst := irisSpec().MustBuild(seed + 1)
		var buf bytes.Buffer
		if src.WriteWeights(&buf) != nil {
			return false
		}
		if dst.ReadWeights(&buf) != nil {
			return false
		}
		in := tensor.New(1, 4)
		r := rand.New(rand.NewSource(seed))
		for i := range in.Data() {
			in.Data()[i] = r.Float32()
		}
		return src.Forward(tensor.Serial, in.Clone()).Equal(dst.Forward(tensor.Serial, in.Clone()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range []*Spec{irisSpec(), tinyCNNSpec()} {
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := ParseSpecJSON(raw)
		if err != nil {
			t.Fatal(err)
		}
		if restored.Name != spec.Name || restored.Kind != spec.Kind ||
			restored.Classes != spec.Classes || restored.Act != spec.Act ||
			restored.VGGBlocks != spec.VGGBlocks || restored.SamePad != spec.SamePad {
			t.Fatalf("round trip changed spec: %+v vs %+v", restored, spec)
		}
		if restored.Descriptor() != spec.Descriptor() {
			t.Fatal("round trip changed descriptor")
		}
	}
}

func TestSpecJSONValidation(t *testing.T) {
	cases := []string{
		`{bad json`,
		`{"name":"x","kind":"rnn","input_shape":[4],"classes":2}`,
		`{"name":"x","kind":"ffnn","input_shape":[4],"classes":0}`,
		`{"name":"x","kind":"ffnn","input_shape":[4],"classes":2,"activation":"swish"}`,
		`{"name":"x","kind":"cnn","input_shape":[4],"classes":2}`,
	}
	for i, c := range cases {
		if _, err := ParseSpecJSON([]byte(c)); err == nil {
			t.Fatalf("case %d accepted: %s", i, c)
		}
	}
	// Defaults: kind ffnn, activation relu.
	s, err := ParseSpecJSON([]byte(`{"name":"d","input_shape":[4],"hidden":[8],"classes":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != FFNN || s.Act != tensor.ReLU {
		t.Fatalf("defaults wrong: %+v", s)
	}
}

// Property: the forward pass is batch-split invariant — classifying a
// concatenated batch equals classifying its halves independently. This
// is what lets the scheduler and batcher regroup samples freely.
func TestPropertyForwardBatchSplitInvariant(t *testing.T) {
	net := tinyCNNSpec().MustBuild(90)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		in := tensor.New(n, 1, 12, 12)
		for i := range in.Data() {
			in.Data()[i] = r.Float32()
		}
		whole := net.Forward(tensor.Serial, in.Clone())

		cut := 1 + r.Intn(n-1)
		per := in.Len() / n
		first := tensor.FromSlice(append([]float32(nil), in.Data()[:cut*per]...), cut, 1, 12, 12)
		second := tensor.FromSlice(append([]float32(nil), in.Data()[cut*per:]...), n-cut, 1, 12, 12)
		a := net.Forward(tensor.Serial, first)
		b := net.Forward(tensor.Serial, second)

		for i := 0; i < cut; i++ {
			for j := 0; j < whole.Dim(1); j++ {
				if whole.At(i, j) != a.At(i, j) {
					return false
				}
			}
		}
		for i := cut; i < n; i++ {
			for j := 0; j < whole.Dim(1); j++ {
				if whole.At(i, j) != b.At(i-cut, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
