package nn

import (
	"encoding/json"
	"fmt"

	"bomw/internal/tensor"
)

// JSON codec for architecture specs, so model zoos can live in
// configuration files and be posted to the HTTP service. The wire shape
// uses snake_case field names and string enums.
type specJSON struct {
	Name          string `json:"name"`
	Kind          string `json:"kind"` // "ffnn" | "cnn"
	InputShape    []int  `json:"input_shape"`
	Hidden        []int  `json:"hidden"`
	Classes       int    `json:"classes"`
	Activation    string `json:"activation,omitempty"`
	VGGBlocks     int    `json:"vgg_blocks,omitempty"`
	ConvsPerBlock int    `json:"convs_per_block,omitempty"`
	Filters       int    `json:"filters,omitempty"`
	FilterSize    int    `json:"filter_size,omitempty"`
	PoolSize      int    `json:"pool_size,omitempty"`
	SamePad       bool   `json:"same_pad,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(specJSON{
		Name:          s.Name,
		Kind:          s.Kind.String(),
		InputShape:    s.InputShape,
		Hidden:        s.Hidden,
		Classes:       s.Classes,
		Activation:    s.Act.String(),
		VGGBlocks:     s.VGGBlocks,
		ConvsPerBlock: s.ConvsPerBlock,
		Filters:       s.Filters,
		FilterSize:    s.FilterSize,
		PoolSize:      s.PoolSize,
		SamePad:       s.SamePad,
	})
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded
// spec.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var raw specJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("nn: decoding spec: %w", err)
	}
	spec, err := raw.toSpec()
	if err != nil {
		return err
	}
	*s = *spec
	return nil
}

func (raw specJSON) toSpec() (*Spec, error) {
	var kind Kind
	switch raw.Kind {
	case "ffnn", "":
		kind = FFNN
	case "cnn":
		kind = CNN
	default:
		return nil, fmt.Errorf("nn: unknown model kind %q", raw.Kind)
	}
	actName := raw.Activation
	if actName == "" {
		actName = "relu"
	}
	act, err := tensor.ParseActivation(actName)
	if err != nil {
		return nil, err
	}
	spec := &Spec{
		Name:          raw.Name,
		Kind:          kind,
		InputShape:    raw.InputShape,
		Hidden:        raw.Hidden,
		Classes:       raw.Classes,
		Act:           act,
		VGGBlocks:     raw.VGGBlocks,
		ConvsPerBlock: raw.ConvsPerBlock,
		Filters:       raw.Filters,
		FilterSize:    raw.FilterSize,
		PoolSize:      raw.PoolSize,
		SamePad:       raw.SamePad,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ParseSpecJSON decodes and validates one spec document.
func ParseSpecJSON(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
