package nn

import (
	"math/rand"
	"testing"

	"bomw/internal/tensor"
)

// clusteredData builds a separable dataset: one Gaussian blob per class.
func clusteredData(n, feat, classes int, seed int64) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, classes)
	for c := range centers {
		centers[c] = make([]float32, feat)
		for j := range centers[c] {
			centers[c][j] = rng.Float32() * 4
		}
	}
	x := tensor.New(n, feat)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		y[i] = c
		row := x.Row(i)
		for j := range row {
			row[j] = centers[c][j] + 0.3*float32(rng.NormFloat64())
		}
	}
	return x, y
}

func TestTrainSimpleReachesPaperAccuracy(t *testing.T) {
	// §III-B1: the Simple model achieves up to 97% on Iris. Train it on
	// an Iris-shaped synthetic dataset and demand ≥90%.
	net := irisSpec().MustBuild(1)
	x, y := clusteredData(300, 4, 3, 7)
	tr := &Trainer{LR: 0.2, Epochs: 150, Batch: 16, Seed: 1}
	if err := tr.Train(net, x, y); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, tensor.Default, x, y); acc < 0.9 {
		t.Fatalf("trained Simple accuracy %.2f, want ≥0.9 (paper: 0.97)", acc)
	}
}

func TestTrainImprovesOverRandomInit(t *testing.T) {
	net := irisSpec().MustBuild(2)
	x, y := clusteredData(150, 4, 3, 8)
	before := Accuracy(net, tensor.Default, x, y)
	if err := (&Trainer{Epochs: 80, Seed: 2}).Train(net, x, y); err != nil {
		t.Fatal(err)
	}
	after := Accuracy(net, tensor.Default, x, y)
	if after <= before {
		t.Fatalf("training did not improve accuracy: %.2f → %.2f", before, after)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	net := irisSpec().MustBuild(3)
	xTrain, yTrain := clusteredData(240, 4, 3, 9)
	xTest, yTest := clusteredData(90, 4, 3, 9) // same centers (same seed)
	if err := (&Trainer{Epochs: 120, Seed: 3}).Train(net, xTrain, yTrain); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, tensor.Default, xTest, yTest); acc < 0.85 {
		t.Fatalf("held-out accuracy %.2f", acc)
	}
}

func TestTrainTanhAndSigmoidHidden(t *testing.T) {
	lrs := map[tensor.Activation]float64{tensor.Tanh: 0.3, tensor.Sigmoid: 0.3, tensor.Identity: 0.02}
	for act, lr := range lrs {
		spec := &Spec{Name: "t", Kind: FFNN, InputShape: []int{4}, Hidden: []int{8}, Classes: 3, Act: act}
		net := spec.MustBuild(4)
		x, y := clusteredData(150, 4, 3, 10)
		if err := (&Trainer{Epochs: 120, LR: lr, Seed: 4}).Train(net, x, y); err != nil {
			t.Fatalf("%s: %v", act, err)
		}
		if acc := Accuracy(net, tensor.Default, x, y); acc < 0.8 {
			t.Fatalf("%s hidden activation trained to only %.2f", act, acc)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	net := irisSpec().MustBuild(5)
	x, y := clusteredData(30, 4, 3, 11)
	tr := &Trainer{Epochs: 1}
	if err := tr.Train(net, tensor.New(3, 4, 1), y[:3]); err == nil {
		t.Fatal("rank-3 input accepted")
	}
	if err := tr.Train(net, x, y[:10]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := append([]int(nil), y...)
	bad[0] = 99
	if err := tr.Train(net, x, bad); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	// CNNs are rejected.
	cnn := tinyCNNSpec().MustBuild(1)
	flatIn := tensor.New(4, 1, 12, 12)
	_ = flatIn
	if err := tr.Train(cnn, tensor.New(4, 144), []int{0, 1, 2, 3}); err == nil {
		t.Fatal("CNN training accepted")
	}
	// Non-softmax output is rejected.
	raw := NewNetwork("raw", []int{4}, NewDense(rand.New(rand.NewSource(1)), 4, 3, tensor.Identity))
	if err := tr.Train(raw, x, y); err == nil {
		t.Fatal("non-softmax output accepted")
	}
}

func TestTrainDeterministic(t *testing.T) {
	x, y := clusteredData(90, 4, 3, 12)
	run := func() *Network {
		net := irisSpec().MustBuild(6)
		if err := (&Trainer{Epochs: 30, Seed: 5}).Train(net, x, y); err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := run(), run()
	if !a.Layers()[0].(*Dense).W.Equal(b.Layers()[0].(*Dense).W) {
		t.Fatal("training is not deterministic for a fixed seed")
	}
}

func TestAccuracyHelper(t *testing.T) {
	net := irisSpec().MustBuild(7)
	x, _ := clusteredData(10, 4, 3, 13)
	pred := net.Classify(tensor.Default, x)
	if got := Accuracy(net, tensor.Default, x, pred); got != 1 {
		t.Fatalf("accuracy against own predictions = %g, want 1", got)
	}
}
