package nn

import (
	"bytes"
	"testing"

	"bomw/internal/tensor"
)

// FuzzReadWeights: arbitrary byte streams must never panic the weight
// loader or corrupt the target network's shape.
func FuzzReadWeights(f *testing.F) {
	src := irisSpec().MustBuild(80)
	var buf bytes.Buffer
	if err := src.WriteWeights(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x57, 0x4d, 0x4f, 0x42, 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := irisSpec().MustBuild(81)
		if err := dst.ReadWeights(bytes.NewReader(data)); err != nil {
			return
		}
		// Successful loads must leave a usable network.
		out := dst.Forward(tensor.Serial, tensor.New(2, 4))
		if out.Dim(1) != 3 {
			t.Fatal("weights load corrupted the network")
		}
	})
}
