package nn

import (
	"fmt"
	"math/rand"

	"bomw/internal/tensor"
)

// Trainer fits feed-forward networks (stacks of Dense layers with ReLU,
// tanh, sigmoid or identity hidden activations and a softmax output) by
// mini-batch SGD on the cross-entropy loss. The paper performs training
// offline (§II-B); bomw includes it so the workload models' §III-B
// accuracy claims — e.g. 97% for Simple on Iris — are reproducible
// end to end. Convolutional training is out of scope, as in the paper.
type Trainer struct {
	LR     float64 // learning rate (default 0.1)
	Epochs int     // passes over the data (default 200)
	Batch  int     // mini-batch size (default 32)
	Seed   int64   // shuffling seed
}

// Train fits the network in place on samples x [n, features] with labels
// y. The network must be a pure Dense stack ending in softmax.
func (t *Trainer) Train(net *Network, x *tensor.Tensor, y []int) error {
	lr := t.LR
	if lr <= 0 {
		lr = 0.1
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	bs := t.Batch
	if bs <= 0 {
		bs = 32
	}

	if x.Rank() != 2 {
		return fmt.Errorf("nn: Train needs rank-2 input, got %v", x.Shape())
	}
	n := x.Dim(0)
	if n == 0 || n != len(y) {
		return fmt.Errorf("nn: Train needs matching samples (%d) and labels (%d)", n, len(y))
	}
	var dense []*Dense
	for _, l := range net.Layers() {
		d, ok := l.(*Dense)
		if !ok {
			return fmt.Errorf("nn: Train supports Dense-only networks; %s found", l.Name())
		}
		dense = append(dense, d)
	}
	last := dense[len(dense)-1]
	if last.Act != tensor.Softmax {
		return fmt.Errorf("nn: Train needs a softmax output layer, got %s", last.Act)
	}
	for _, d := range dense[:len(dense)-1] {
		switch d.Act {
		case tensor.ReLU, tensor.Identity, tensor.Tanh, tensor.Sigmoid:
		default:
			return fmt.Errorf("nn: Train cannot differentiate hidden activation %s", d.Act)
		}
	}
	for _, label := range y {
		if label < 0 || label >= net.Classes() {
			return fmt.Errorf("nn: label %d out of range [0,%d)", label, net.Classes())
		}
	}

	rng := rand.New(rand.NewSource(t.Seed))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	feat := x.Dim(1)
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < n; lo += bs {
			hi := lo + bs
			if hi > n {
				hi = n
			}
			m := hi - lo
			xb := tensor.New(m, feat)
			yb := make([]int, m)
			for i := 0; i < m; i++ {
				src := order[lo+i]
				copy(xb.Row(i), x.Row(src))
				yb[i] = y[src]
			}
			sgdStep(dense, xb, yb, float32(lr))
		}
	}
	return nil
}

// sgdStep runs forward (capturing pre-activations), backward, and applies
// one gradient update across all layers.
func sgdStep(layers []*Dense, xb *tensor.Tensor, yb []int, lr float32) {
	m := xb.Dim(0)
	acts := []*tensor.Tensor{xb} // post-activation per layer
	var zs []*tensor.Tensor      // pre-activation per hidden layer
	cur := xb
	for li, l := range layers {
		z := tensor.MatMul(tensor.Serial, cur, tensor.Transpose(l.W))
		tensor.AddBiasRows(tensor.Serial, z, l.B)
		if li < len(layers)-1 {
			zs = append(zs, z.Clone())
		}
		l.Act.Apply(tensor.Serial, z)
		acts = append(acts, z)
		cur = z
	}

	// Softmax cross-entropy output delta: p - onehot.
	out := acts[len(acts)-1]
	delta := out.Clone()
	for i := 0; i < m; i++ {
		delta.Set(delta.At(i, yb[i])-1, i, yb[i])
	}

	inv := 1 / float32(m)
	for li := len(layers) - 1; li >= 0; li-- {
		l := layers[li]
		in := acts[li]
		// Gradients: dW = deltaᵀ·in / m, db = column means of delta.
		dW := tensor.MatMul(tensor.Serial, tensor.Transpose(delta), in)
		for i, v := range dW.Data() {
			l.W.Data()[i] -= lr * v * inv
		}
		outN := l.Out()
		for j := 0; j < outN; j++ {
			var s float32
			for i := 0; i < m; i++ {
				s += delta.At(i, j)
			}
			l.B.Data()[j] -= lr * s * inv
		}
		if li == 0 {
			break
		}
		// Propagate: deltaPrev = (delta·W) ⊙ act'(z).
		prev := tensor.MatMul(tensor.Serial, delta, l.W)
		z := zs[li-1]
		applyActGrad(layers[li-1].Act, prev, z)
		delta = prev
	}
}

// applyActGrad multiplies delta in place by the derivative of act
// evaluated at pre-activation z.
func applyActGrad(act tensor.Activation, delta, z *tensor.Tensor) {
	d := delta.Data()
	zd := z.Data()
	switch act {
	case tensor.Identity:
	case tensor.ReLU:
		for i := range d {
			if zd[i] <= 0 {
				d[i] = 0
			}
		}
	case tensor.Tanh:
		for i := range d {
			th := tanh32(zd[i])
			d[i] *= 1 - th*th
		}
	case tensor.Sigmoid:
		for i := range d {
			s := sigmoid32(zd[i])
			d[i] *= s * (1 - s)
		}
	}
}

func tanh32(v float32) float32 {
	t := tensor.FromSlice([]float32{v}, 1)
	tensor.Tanh.Apply(tensor.Serial, t)
	return t.At(0)
}

func sigmoid32(v float32) float32 {
	t := tensor.FromSlice([]float32{v}, 1)
	tensor.Sigmoid.Apply(tensor.Serial, t)
	return t.At(0)
}

// Accuracy scores a network's classifications against labels.
func Accuracy(net *Network, pool *tensor.Pool, x *tensor.Tensor, y []int) float64 {
	pred := net.Classify(pool, x)
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}
