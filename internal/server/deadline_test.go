package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bomw/internal/core"
	"bomw/internal/models"
)

// newDeadlineServer builds a private server (its own scheduler and
// pipeline) so deadline configs don't leak into the shared testServer.
func newDeadlineServer(t *testing.T, cfg core.PipelineConfig) (*Server, *httptest.Server) {
	t.Helper()
	sched, err := core.New(core.Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512, 8192, 65536},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.LoadModel(models.Simple(), 1); err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(sched, 1, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func classifyBody(timeoutMS int) ClassifyRequest {
	return ClassifyRequest{
		Model:     "simple",
		Samples:   [][]float32{{0.1, 0.2, 0.3, 0.4}},
		TimeoutMS: timeoutMS,
	}
}

// TestClassifyDeadlineInfeasible: with an impossible default SLO,
// requests that ride the default are rejected 504 with the
// deadline_infeasible reason, while an explicit generous timeout_ms or
// an explicit opt-out still succeeds — and the counters surface on
// /v1/pipeline and /v1/stats.
func TestClassifyDeadlineInfeasible(t *testing.T) {
	_, ts := newDeadlineServer(t, core.PipelineConfig{
		ProbeInterval: -1,
		DefaultSLO:    time.Nanosecond,
	})

	resp := post(t, ts.URL+"/v1/classify", classifyBody(0)) // rides the 1ns default
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var e map[string]string
	decode(t, resp, &e)
	if e["reason"] != "deadline_infeasible" {
		t.Fatalf("reason %q, want deadline_infeasible (%v)", e["reason"], e)
	}

	resp = post(t, ts.URL+"/v1/classify", classifyBody(60_000)) // explicit 60s SLO
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generous timeout_ms: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post(t, ts.URL+"/v1/classify", classifyBody(-1)) // explicit opt-out
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeout_ms opt-out: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	hr, err := http.Get(ts.URL + "/v1/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	var pst map[string]interface{}
	decode(t, hr, &pst)
	if got := pst["infeasible"].(float64); got != 1 {
		t.Fatalf("/v1/pipeline infeasible = %v, want 1", got)
	}
	hr, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sst struct {
		SLO map[string]int64 `json:"slo"`
	}
	decode(t, hr, &sst)
	if sst.SLO["infeasible"] != 1 {
		t.Fatalf("/v1/stats slo = %+v, want infeasible 1", sst.SLO)
	}
}

// TestClassifyDeadlineExceeded: an admitted request whose SLO passes
// while it aggregates (the batching window outlasts the deadline) is
// culled and answered 504 with the deadline_exceeded reason — distinct
// from the infeasible rejection.
func TestClassifyDeadlineExceeded(t *testing.T) {
	_, ts := newDeadlineServer(t, core.PipelineConfig{
		ProbeInterval: -1,
		// Admission predicts execution cost only, so a 50 ms SLO is
		// admitted — but the held batching window (200 ms) outlives it.
		Window:     200 * time.Millisecond,
		HoldWindow: true,
		MaxBatch:   1024,
	})

	resp := post(t, ts.URL+"/v1/classify", classifyBody(50))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var e map[string]string
	decode(t, resp, &e)
	if e["reason"] != "deadline_exceeded" {
		t.Fatalf("reason %q, want deadline_exceeded (%v)", e["reason"], e)
	}

	hr, err := http.Get(ts.URL + "/v1/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	var pst map[string]interface{}
	decode(t, hr, &pst)
	if got := pst["expired"].(float64); got != 1 {
		t.Fatalf("/v1/pipeline expired = %v, want 1", got)
	}
	if got := pst["submitted"].(float64); got != 1 {
		t.Fatalf("/v1/pipeline submitted = %v, want 1 (the culled request was admitted)", got)
	}
}
