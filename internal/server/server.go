// Package server exposes the adaptive scheduler as an HTTP inference
// service — the deployable form of the paper's Fig. 5 system. Clients
// POST classification batches and the service answers with the real
// class labels, the device the scheduler selected, and the simulated
// latency/energy cost; models can be added at run time (§V-A: "it is
// also typical to dynamically add models"), and device and scheduler
// state are observable.
//
// Endpoints:
//
//	POST /v1/classify   {"model","policy","samples":[[...]],"timeout_ms":50}
//	POST /v1/models     {"name","kind","input_shape",...}  (load a model)
//	GET  /v1/models     list loaded models
//	GET  /v1/devices    device names, kinds and probe state (node0)
//	GET  /v1/stats      scheduler decision statistics (node0)
//	GET  /v1/pipeline   serving-pipeline statistics (node0)
//	GET  /v1/cluster    fleet-wide routing, serving and resilience statistics
//	POST /v1/cluster    {"action":"sweep"}  (run a health sweep now)
//	GET  /v1/nodes      per-node state, load and health
//	POST /v1/nodes      {"node","action":"drain|evict|readmit|kill"}
//
// Classification requests flow through the concurrent serving pipeline
// (admission → live batching → per-device worker queues): concurrent
// clients posting the same model aggregate into one device batch, a full
// admission queue sheds load with 503, and the request's context bounds
// its time in the system. A request may carry a latency SLO
// ("timeout_ms"): admission rejects it with 504/"deadline_infeasible"
// when no device is predicted to make the deadline, and an admitted
// request whose deadline passes before execution is culled and answered
// 504/"deadline_exceeded" — doomed work never reaches a device. Virtual
// time is mapped to wall-clock time since the server started, so the GPU
// warms and cools as real seconds pass.
//
// The server always serves through the cluster tier (internal/cluster):
// a single-node server is a one-node fleet. NewCluster replicates the
// scheduler into N nodes behind a routing policy; /v1/classify then
// routes per request with failover, /v1/cluster and /v1/nodes expose the
// fleet, and the node0-scoped endpoints (/v1/stats, /v1/devices,
// /v1/pipeline, /v1/decisions) keep their single-box semantics.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"bomw/internal/cluster"
	"bomw/internal/core"
	"bomw/internal/nn"
	"bomw/internal/tensor"
)

// Server is the HTTP facade over a fleet of scheduler nodes. sched and
// pipe are node0's — the template scheduler and its pipeline — serving
// the single-box observability endpoints; classification routes through
// the fleet.
type Server struct {
	sched *core.Scheduler
	pipe  *core.Pipeline
	fleet *cluster.Cluster
	nodes []*core.Node
	start time.Time
	mux   *http.ServeMux

	mu     sync.Mutex
	seed   int64
	loaded map[string]bool
}

// New wraps a scheduler with a default serving pipeline — a one-node
// fleet. seed drives the weight initialisation of models loaded through
// the API.
func New(sched *core.Scheduler, seed int64) *Server {
	return NewWithConfig(sched, seed, core.PipelineConfig{})
}

// NewWithConfig wraps a scheduler with an explicitly configured serving
// pipeline (cfg.Clock is overridden to the server's virtual clock) — a
// one-node fleet.
func NewWithConfig(sched *core.Scheduler, seed int64, cfg core.PipelineConfig) *Server {
	s, err := NewCluster(sched, seed, cfg, 1, cluster.Config{})
	if err != nil {
		// Unreachable: a one-node fleet needs no replication and the
		// template node cannot collide with itself.
		panic(err)
	}
	return s
}

// NewCluster stands up an n-node fleet: node0 serves on sched itself and
// nodes 1..n-1 on Scheduler.Replica copies (shared trained classifiers,
// fresh devices), all pipelines on the server's virtual clock, behind
// ccfg.Policy (default round-robin). Replication re-runs model loading
// per node, so it can fail on a template whose models cannot rebuild.
func NewCluster(sched *core.Scheduler, seed int64, cfg core.PipelineConfig, n int, ccfg cluster.Config) (*Server, error) {
	s := &Server{sched: sched, start: time.Now(), seed: seed, loaded: map[string]bool{}}
	ccfg.Clock = s.now
	fleet, nodes, err := cluster.Build(sched, n, seed, cfg, ccfg)
	if err != nil {
		return nil, err
	}
	s.fleet = fleet
	s.nodes = nodes
	s.pipe = nodes[0].Pipeline()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/v1/devices", s.handleDevices)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/decisions", s.handleDecisions)
	s.mux.HandleFunc("/v1/pipeline", s.handlePipeline)
	s.mux.HandleFunc("/v1/cluster", s.handleCluster)
	s.mux.HandleFunc("/v1/nodes", s.handleNodes)
	sched.EnableAudit(1024)
	return s, nil
}

// Pipeline exposes node0's serving pipeline.
func (s *Server) Pipeline() *core.Pipeline { return s.pipe }

// Cluster exposes the serving fleet.
func (s *Server) Cluster() *cluster.Cluster { return s.fleet }

// Nodes exposes the fleet's nodes in index order (node0 first).
func (s *Server) Nodes() []*core.Node { return s.nodes }

// Close drains the fleet: admission stops (new classification requests
// get 503), open batches flush, and in-flight work completes on every
// node. Call after http.Server.Shutdown so drained handlers have no
// successor.
func (s *Server) Close() { s.fleet.Close() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// now maps wall time onto the scheduler's virtual clock.
func (s *Server) now() time.Duration { return time.Since(s.start) }

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// httpErrorReason is httpError plus a machine-readable "reason" field —
// clients distinguishing deadline_infeasible (never admitted, retrying
// is pointless until load drops) from deadline_exceeded (admitted but
// culled) key off it rather than parsing the message.
func httpErrorReason(w http.ResponseWriter, code int, reason, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error":  fmt.Sprintf(format, args...),
		"reason": reason,
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfter converts a backlog estimate into a Retry-After hint:
// ceiling seconds clamped to [1, 30] — at least one second so shed
// clients always back off, at most thirty so a transient spike cannot
// park them for minutes.
func retryAfter(backlog time.Duration) string {
	secs := int64((backlog + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.FormatInt(secs, 10)
}

// ---- /v1/classify ------------------------------------------------------

// ClassifyRequest is the POST /v1/classify payload.
type ClassifyRequest struct {
	Model   string      `json:"model"`
	Policy  string      `json:"policy"` // best-throughput | lowest-latency | energy-efficiency
	Samples [][]float32 `json:"samples"`
	// TimeoutMS is the request's latency SLO in milliseconds, measured
	// from admission. Positive values enable deadline enforcement
	// (admission-control rejection, pre-execution culling, optional
	// hedging); 0 uses the server's per-model/default SLO; negative
	// opts out of any SLO.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ClassifyResponse is the POST /v1/classify reply.
type ClassifyResponse struct {
	Model     string  `json:"model"`
	Device    string  `json:"device"`
	Policy    string  `json:"policy"`
	GPUWarm   bool    `json:"gpu_warm"`
	Spilled   bool    `json:"spilled"`
	Classes   []int   `json:"classes"`
	LatencyUS int64   `json:"latency_us"`
	EnergyJ   float64 `json:"energy_j"`
	// BatchSize is the aggregated live batch this request was served in
	// (≥ the request's own sample count when concurrent requests merged).
	BatchSize int `json:"batch_size"`
	// WaitUS is the aggregation delay the request paid before dispatch.
	WaitUS int64 `json:"wait_us"`
	// Hedged reports the result came from a hedged execution on a backup
	// device rather than the primary pick.
	Hedged bool `json:"hedged,omitempty"`
}

func parsePolicy(s string) (core.Policy, error) {
	switch s {
	case "best-throughput", "":
		return core.BestThroughput, nil
	case "lowest-latency":
		return core.LowestLatency, nil
	case "energy-efficiency":
		return core.EnergyEfficiency, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	pol, err := parsePolicy(req.Policy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Samples) == 0 {
		httpError(w, http.StatusBadRequest, "no samples")
		return
	}
	spec, err := s.sched.Dispatcher().Spec(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	// Flatten samples into the model's input tensor.
	per := 1
	for _, d := range spec.InputShape {
		per *= d
	}
	flat := make([]float32, 0, len(req.Samples)*per)
	for i, sm := range req.Samples {
		if len(sm) != per {
			httpError(w, http.StatusBadRequest, "sample %d has %d values, model %s needs %d", i, len(sm), req.Model, per)
			return
		}
		flat = append(flat, sm...)
	}
	shape := append([]int{len(req.Samples)}, spec.InputShape...)
	in := tensor.FromSlice(flat, shape...)

	// Hand the request to the routing tier and wait on its future. The
	// router picks a node per the active policy and fails over past shed
	// or down nodes; the request context bounds the whole stay: client
	// disconnects abandon the wait and the serving pipeline culls the
	// request at the next stage boundary instead of executing it.
	var deadline time.Duration
	switch {
	case req.TimeoutMS > 0:
		deadline = time.Duration(req.TimeoutMS) * time.Millisecond
	case req.TimeoutMS < 0:
		deadline = -1 // explicit SLO opt-out
	}
	fut, err := s.fleet.Submit(r.Context(), core.PipelineRequest{
		Model:    req.Model,
		Policy:   pol,
		Input:    in,
		Deadline: deadline,
	})
	switch {
	case errors.Is(err, cluster.ErrNoHealthyNodes):
		// The mass-eviction wedge: every node is evicted, on probation or
		// inside a chaos window. The back-off hint is the soonest
		// readmission the fleet can predict — the next chaos-window
		// recovery when chaos is scripted, else the sweep's readmission
		// cadence floor.
		w.Header().Set("Retry-After", retryAfter(s.fleet.ReadmissionHint()))
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, cluster.ErrBrownoutShed):
		// Brownout level ≥ 2: the fleet is deliberately shedding SLO-less
		// work to keep deadline traffic inside its SLOs.
		w.Header().Set("Retry-After", retryAfter(s.fleet.QueueDelay()))
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, core.ErrAdmissionFull), errors.Is(err, core.ErrPipelineClosed),
		errors.Is(err, core.ErrNodeDraining), errors.Is(err, core.ErrNodeDown):
		// Load shedding / no capacity: every node the policy offered shed
		// or is down. The back-off hint scales with the fleet's actual
		// backlog instead of a fixed guess, so clients retry sooner on a
		// momentary spike and later under sustained saturation.
		w.Header().Set("Retry-After", retryAfter(s.fleet.QueueDelay()))
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, core.ErrDeadlineInfeasible):
		// Admission control: no device is predicted to make the SLO
		// under current load — rejected before any queueing.
		httpErrorReason(w, http.StatusGatewayTimeout, "deadline_infeasible", "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c, err := fut.Wait(r.Context())
	if err != nil {
		// The client went away or its own context deadline fired; the
		// pipeline will cull the abandoned request before execution.
		httpError(w, http.StatusGatewayTimeout, "%v", err)
		return
	}
	switch {
	case errors.Is(c.Err, core.ErrDeadlineExceeded):
		// Admitted but the SLO passed before execution: culled, never run.
		httpErrorReason(w, http.StatusGatewayTimeout, "deadline_exceeded", "%v", c.Err)
		return
	case c.Err != nil:
		httpError(w, http.StatusInternalServerError, "%v", c.Err)
		return
	}
	writeJSON(w, ClassifyResponse{
		Model:     req.Model,
		Device:    c.Decision.Device,
		Policy:    c.Decision.Policy.String(),
		GPUWarm:   c.Decision.GPUWarm,
		Spilled:   c.Decision.Spilled,
		Classes:   c.Classes,
		LatencyUS: c.Latency.Microseconds(),
		EnergyJ:   c.EnergyJ,
		BatchSize: c.BatchSize,
		WaitUS:    c.Wait.Microseconds(),
		Hedged:    c.Hedged,
	})
}

// ---- /v1/models --------------------------------------------------------

// ModelSpec is the JSON shape of an architecture (POST /v1/models).
type ModelSpec struct {
	Name          string `json:"name"`
	Kind          string `json:"kind"` // "ffnn" | "cnn"
	InputShape    []int  `json:"input_shape"`
	Hidden        []int  `json:"hidden"`
	Classes       int    `json:"classes"`
	Activation    string `json:"activation"` // default "relu"
	VGGBlocks     int    `json:"vgg_blocks,omitempty"`
	ConvsPerBlock int    `json:"convs_per_block,omitempty"`
	Filters       int    `json:"filters,omitempty"`
	FilterSize    int    `json:"filter_size,omitempty"`
	PoolSize      int    `json:"pool_size,omitempty"`
	SamePad       bool   `json:"same_pad,omitempty"`
}

// ToSpec converts the JSON form into a validated nn.Spec. The wire shape
// is nn's canonical spec JSON, so decoding goes through one codec.
func (m ModelSpec) ToSpec() (*nn.Spec, error) {
	raw, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return nn.ParseSpecJSON(raw)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, map[string]interface{}{"models": s.sched.Dispatcher().Models()})
	case http.MethodPost:
		var m ModelSpec
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			httpError(w, http.StatusBadRequest, "decoding model spec: %v", err)
			return
		}
		spec, err := m.ToSpec()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.loaded[spec.Name] {
			httpError(w, http.StatusConflict, "model %q already loaded", spec.Name)
			return
		}
		// Load on every node so the router can place the model anywhere.
		// The same seed gives every replica identical weights — the fleet
		// answers identically regardless of routing.
		for _, nd := range s.nodes {
			if err := nd.Scheduler().LoadModel(spec, s.seed); err != nil {
				httpError(w, http.StatusConflict, "loading on %s: %v", nd.Name(), err)
				return
			}
		}
		s.loaded[spec.Name] = true
		// Content-Type must be set before WriteHeader — headers written
		// after the status line are silently dropped.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(map[string]string{"loaded": spec.Name})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// ---- /v1/devices and /v1/stats ------------------------------------------

// DeviceStatus is one entry of GET /v1/devices.
type DeviceStatus struct {
	Name        string  `json:"name"`
	Warm        bool    `json:"warm"`
	ClockFrac   float64 `json:"clock_frac"`
	BusyMicros  int64   `json:"busy_us"`
	Slowdown    float64 `json:"observed_slowdown"`
	Degraded    bool    `json:"degraded"`
	Quarantined bool    `json:"quarantined"`
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	now := s.now()
	quarantined := map[string]bool{}
	for _, name := range s.sched.Quarantined() {
		quarantined[name] = true
	}
	var out []DeviceStatus
	for _, name := range s.sched.Devices() {
		st, err := s.sched.Runtime().State(name, now)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		slow, degraded := s.sched.DeviceHealth(name)
		busy := st.BusyUntil - now
		if busy < 0 {
			busy = 0
		}
		out = append(out, DeviceStatus{
			Name:        name,
			Warm:        st.Warm,
			ClockFrac:   st.ClockFrac,
			BusyMicros:  busy.Microseconds(),
			Slowdown:    slow,
			Degraded:    degraded,
			Quarantined: quarantined[name],
		})
	}
	writeJSON(w, map[string]interface{}{"devices": out})
}

// handleDecisions exposes the scheduler's decision audit trail
// (GET /v1/decisions?n=50).
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	n := 50
	if raw := r.URL.Query().Get("n"); raw != "" {
		// strconv.Atoi rejects trailing junk ("50abc"), which Sscanf's
		// %d would silently accept.
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "invalid n %q", raw)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.sched.WriteAuditJSON(w, n); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handlePipeline exposes serving-pipeline statistics: admission totals,
// load shed, batch flush triggers and live per-device queue depths.
func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := s.pipe.Stats()
	writeJSON(w, map[string]interface{}{
		"submitted":       st.Submitted,
		"shed":            st.Shed,
		"infeasible":      st.Infeasible,
		"cancelled":       st.Cancelled,
		"expired":         st.Expired,
		"failed":          st.Failed,
		"completed":       st.Completed,
		"batches":         st.Batches,
		"size_flushes":    st.SizeFlushes,
		"window_flushes":  st.WindowFlushes,
		"idle_flushes":    st.IdleFlushes,
		"drain_flushes":   st.DrainFlushes,
		"retries":         st.Retries,
		"failovers":       st.Failovers,
		"exec_failures":   st.ExecFailures,
		"hedges_launched": st.HedgesLaunched,
		"hedges_won":      st.HedgesWon,
		"in_flight":       st.InFlight,
		"device_depth":    st.Depth,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := s.sched.Stats()
	perPolicy := map[string]int{}
	for pol, n := range st.PerPolicy {
		perPolicy[pol.String()] = n
	}
	quarantined := st.Quarantined
	if quarantined == nil {
		quarantined = []string{}
	}
	pst := s.pipe.Stats()
	writeJSON(w, map[string]interface{}{
		"decisions":    st.Decisions,
		"spills":       st.Spills,
		"per_device":   st.PerDevice,
		"per_policy":   perPolicy,
		"quarantines":  st.Quarantines,
		"readmissions": st.Readmissions,
		"quarantined":  quarantined,
		"uptime_us":    s.now().Microseconds(),
		// Deadline/overload posture: what admission control rejected,
		// what was culled, and how hedging performed.
		"slo": map[string]int64{
			"infeasible":      pst.Infeasible,
			"culled":          pst.Cancelled,
			"expired":         pst.Expired,
			"hedges_launched": pst.HedgesLaunched,
			"hedges_won":      pst.HedgesWon,
		},
	})
}
