package server

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"bomw/internal/cluster"
	"bomw/internal/core"
	"bomw/internal/models"
)

var (
	fleetOnce sync.Once
	fleetSrv  *httptest.Server
	fleetErr  error
)

// fleetServer stands up a shared 4-node fleet behind least-loaded
// routing for the cluster endpoint tests.
func fleetServer(t *testing.T) *httptest.Server {
	t.Helper()
	fleetOnce.Do(func() {
		sched, err := core.New(core.Config{
			TrainModels: models.PaperModels(),
			Batches:     []int{8, 512, 8192, 65536},
			Reps:        1,
		})
		if err != nil {
			fleetErr = err
			return
		}
		if err := sched.LoadModel(models.Simple(), 1); err != nil {
			fleetErr = err
			return
		}
		pol, err := cluster.PolicyByName("least-loaded", 1)
		if err != nil {
			fleetErr = err
			return
		}
		api, err := NewCluster(sched, 1, core.PipelineConfig{}, 4, cluster.Config{Policy: pol})
		if err != nil {
			fleetErr = err
			return
		}
		fleetSrv = httptest.NewServer(api)
	})
	if fleetErr != nil {
		t.Fatal(fleetErr)
	}
	return fleetSrv
}

func classifyOK(t *testing.T, url string) ClassifyResponse {
	t.Helper()
	samples := make([][]float32, 4)
	for i := range samples {
		samples[i] = []float32{5.1, 3.5, 1.4, 0.2}
	}
	resp := post(t, url+"/v1/classify", ClassifyRequest{Model: "simple", Samples: samples})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status = %d", resp.StatusCode)
	}
	var out ClassifyResponse
	decode(t, resp, &out)
	return out
}

func TestClusterEndpointReportsFleet(t *testing.T) {
	ts := fleetServer(t)
	classifyOK(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Policy    string                   `json:"policy"`
		Nodes     int                      `json:"nodes"`
		Ready     int                      `json:"ready"`
		Submits   int64                    `json:"submits"`
		Submitted int64                    `json:"submitted"`
		Completed int64                    `json:"completed"`
		PerNode   []map[string]interface{} `json:"per_node"`
	}
	decode(t, resp, &st)
	if st.Policy != "least-loaded" || st.Nodes != 4 {
		t.Fatalf("fleet identity = %q/%d", st.Policy, st.Nodes)
	}
	if st.Submits < 1 || st.Submitted < 1 || st.Completed < 1 {
		t.Fatalf("fleet counters empty: %+v", st)
	}
	if len(st.PerNode) != 4 {
		t.Fatalf("per_node has %d rows", len(st.PerNode))
	}
	if st.PerNode[0]["name"] != "node0" {
		t.Fatalf("per_node[0] = %v", st.PerNode[0])
	}
}

func TestNodesEndpointListsAndActs(t *testing.T) {
	ts := fleetServer(t)

	resp, err := http.Get(ts.URL + "/v1/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Nodes []struct {
			Name    string `json:"name"`
			State   string `json:"state"`
			Ready   bool   `json:"ready"`
			Devices int    `json:"devices"`
		} `json:"nodes"`
	}
	decode(t, resp, &listing)
	if len(listing.Nodes) != 4 {
		t.Fatalf("nodes = %+v", listing.Nodes)
	}
	for _, n := range listing.Nodes {
		if n.State != "ready" || !n.Ready || n.Devices == 0 {
			t.Fatalf("node not ready at start: %+v", n)
		}
	}

	// Kill one node; the fleet keeps classifying and reports the loss.
	resp = post(t, ts.URL+"/v1/nodes", NodeAction{Node: "node2", Action: "kill"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kill status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	classifyOK(t, ts.URL)
	resp, err = http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Ready int `json:"ready"`
	}
	decode(t, resp, &st)
	if st.Ready != 3 {
		t.Fatalf("ready = %d after kill, want 3", st.Ready)
	}

	// A killed node cannot be readmitted.
	resp = post(t, ts.URL+"/v1/nodes", NodeAction{Node: "node2", Action: "readmit"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("readmit of killed node = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Evict + readmit round-trips a healthy node.
	resp = post(t, ts.URL+"/v1/nodes", NodeAction{Node: "node1", Action: "evict"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post(t, ts.URL+"/v1/nodes", NodeAction{Node: "node1", Action: "readmit"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readmit status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown node and unknown action.
	resp = post(t, ts.URL+"/v1/nodes", NodeAction{Node: "node9", Action: "kill"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown node = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post(t, ts.URL+"/v1/nodes", NodeAction{Node: "node0", Action: "reboot"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown action = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestModelLoadReplicatesToEveryNode checks the fleet-wide model load:
// a model POSTed once must become servable no matter which node the
// router picks.
func TestModelLoadReplicatesToEveryNode(t *testing.T) {
	ts := fleetServer(t)
	resp := post(t, ts.URL+"/v1/models", ModelSpec{
		Name:       "fleet-mlp",
		Kind:       "ffnn",
		InputShape: []int{4},
		Hidden:     []int{8},
		Classes:    3,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("model load status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	samples := make([][]float32, 2)
	for i := range samples {
		samples[i] = []float32{1, 2, 3, 4}
	}
	// Enough classifications to touch several nodes under routing.
	for i := 0; i < 8; i++ {
		resp := post(t, ts.URL+"/v1/classify", ClassifyRequest{Model: "fleet-mlp", Samples: samples})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d on fleet-wide model = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
