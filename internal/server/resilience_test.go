package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"bomw/internal/cluster"
	"bomw/internal/core"
	"bomw/internal/models"
)

// TestClusterEndpointResilienceBlocks: /v1/cluster carries the
// resilience, chaos and brownout blocks, and the control POST runs a
// health sweep.
func TestClusterEndpointResilienceBlocks(t *testing.T) {
	ts := fleetServer(t)
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Resilience struct {
			NodeHedges    int64    `json:"node_hedges"`
			Migrations    int64    `json:"migrations"`
			FalseSuspects int64    `json:"false_suspects"`
			Suspects      []string `json:"suspects"`
		} `json:"resilience"`
		Chaos struct {
			Enabled bool  `json:"enabled"`
			Trips   int64 `json:"trips"`
		} `json:"chaos"`
		Brownout struct {
			Enabled     bool       `json:"enabled"`
			Level       int        `json:"level"`
			Thresholds  [3]float64 `json:"thresholds"`
			WindowScale float64    `json:"window_scale"`
		} `json:"brownout"`
		PerNode []struct {
			Suspect      bool  `json:"suspect"`
			ChaosDown    bool  `json:"chaos_down"`
			AvgLatencyUS int64 `json:"avg_latency_us"`
		} `json:"per_node"`
	}
	decode(t, resp, &st)
	if st.Resilience.Suspects == nil {
		t.Fatal("resilience.suspects missing (want [] when empty)")
	}
	if st.Chaos.Enabled {
		t.Fatal("chaos reported enabled with no injector armed")
	}
	if st.Brownout.Enabled || st.Brownout.Level != 0 {
		t.Fatalf("brownout block = %+v, want disabled at level 0", st.Brownout)
	}
	if st.Brownout.WindowScale != 1 {
		t.Fatalf("brownout window_scale = %v, want 1 outside level 3", st.Brownout.WindowScale)
	}
	if len(st.PerNode) != 4 {
		t.Fatalf("per_node rows = %d, want 4", len(st.PerNode))
	}

	sweep := post(t, ts.URL+"/v1/cluster", map[string]string{"action": "sweep"})
	if sweep.StatusCode != http.StatusOK {
		t.Fatalf("sweep POST status = %d", sweep.StatusCode)
	}
	sweep.Body.Close()
	bad := post(t, ts.URL+"/v1/cluster", map[string]string{"action": "explode"})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown action status = %d, want 400", bad.StatusCode)
	}
	bad.Body.Close()
}

// TestMassEvictionMapsTo503WithRetryAfter is the server half of the
// mass-eviction satellite: every node evicted → classify answers 503
// with a Retry-After derived from the fleet's readmission hint.
func TestMassEvictionMapsTo503WithRetryAfter(t *testing.T) {
	sched, err := core.New(core.Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.LoadModel(models.Simple(), 1); err != nil {
		t.Fatal(err)
	}
	api, err := NewCluster(sched, 1, core.PipelineConfig{}, 2, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer api.Close()
	ts := httptest.NewServer(api)
	defer ts.Close()

	for _, name := range api.Cluster().NodeNames() {
		resp := post(t, ts.URL+"/v1/nodes", NodeAction{Node: name, Action: "evict"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evicting %s: status %d", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := post(t, ts.URL+"/v1/classify", ClassifyRequest{
		Model: "simple", Samples: [][]float32{{5.1, 3.5, 1.4, 0.2}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("classify on an evicted fleet = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive back-off hint", ra)
	}
}
