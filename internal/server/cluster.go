package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"bomw/internal/cluster"
)

// ---- /v1/cluster and /v1/nodes -----------------------------------------

// nodeJSON flattens one NodeSnapshot for the wire.
func nodeJSON(n cluster.NodeSnapshot) map[string]interface{} {
	return map[string]interface{}{
		"name":                n.Name,
		"state":               n.State,
		"evicted":             n.Evicted,
		"suspect":             n.Suspect,
		"chaos_down":          n.ChaosDown,
		"avg_latency_us":      n.AvgLatency.Microseconds(),
		"routed":              n.Routed,
		"rerouted":            n.Rerouted,
		"submitted":           n.Submitted,
		"completed":           n.Completed,
		"shed":                n.Shed,
		"infeasible":          n.Infeasible,
		"cancelled":           n.Cancelled,
		"expired":             n.Expired,
		"failed":              n.Failed,
		"batches":             n.Batches,
		"in_flight":           n.InFlight,
		"slo_attainment":      n.SLOAttainment,
		"devices":             n.Devices,
		"quarantined_devices": n.QuarantinedDevices,
		"degraded_devices":    n.DegradedDevices,
	}
}

// handleCluster exposes fleet-wide statistics — routing activity,
// membership churn, aggregated serving counters, the per-node rows, and
// the resilience tier (hedging/migration counters, scripted chaos state,
// brownout controller) — and accepts operator control POSTs.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		s.handleClusterControl(w, r)
		return
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	st := s.fleet.Stats()
	perNode := make([]map[string]interface{}, 0, len(st.PerNode))
	for _, n := range st.PerNode {
		perNode = append(perNode, nodeJSON(n))
	}
	suspects := s.fleet.Suspects()
	if suspects == nil {
		suspects = []string{}
	}
	bro := s.fleet.Brownout()
	out := map[string]interface{}{
		"policy":         st.Policy,
		"nodes":          st.Nodes,
		"ready":          st.Ready,
		"submits":        st.Submits,
		"route_failures": st.RouteFailures,
		"evictions":      st.Evictions,
		"readmissions":   st.Readmissions,
		"submitted":      st.Submitted,
		"completed":      st.Completed,
		"shed":           st.Shed,
		"infeasible":     st.Infeasible,
		"cancelled":      st.Cancelled,
		"expired":        st.Expired,
		"failed":         st.Failed,
		"batches":        st.Batches,
		"in_flight":      st.InFlight,
		"slo_attainment": st.SLOAttainment,
		"resilience": map[string]interface{}{
			"node_hedges":       st.NodeHedges,
			"node_hedges_won":   st.NodeHedgesWon,
			"hedges_suppressed": st.HedgesSuppressed,
			"migrations":        st.Migrations,
			"suspicions":        st.Suspicions,
			"probations":        st.Probations,
			"false_suspects":    st.FalseSuspects,
			"probes":            st.Probes,
			"benign_cancels":    st.BenignCancels,
			"suspects":          suspects,
		},
		"brownout": map[string]interface{}{
			"enabled":        bro.Enabled,
			"level":          bro.Level,
			"occupancy_ewma": bro.OccupancyEWMA,
			"sheds":          bro.Sheds,
			"transitions":    bro.Transitions,
			"window_scale":   bro.WindowScale,
			"thresholds":     bro.Thresholds,
			"hysteresis":     bro.Hysteresis,
		},
		"per_node": perNode,
	}
	chaos := map[string]interface{}{
		"enabled":    false,
		"trips":      st.ChaosTrips,
		"recoveries": st.ChaosRecoveries,
	}
	if ci := s.fleet.Chaos(); ci != nil {
		chaos["enabled"] = true
		chaos["plans"] = ci.Plans()
	}
	out["chaos"] = chaos
	writeJSON(w, out)
}

// ClusterAction is the POST /v1/cluster payload: one fleet-wide control
// action.
type ClusterAction struct {
	Action string `json:"action"` // sweep
}

// handleClusterControl applies fleet-wide operator actions. "sweep" runs
// a health sweep immediately — membership reconciliation, chaos-window
// edges and straggler detection without waiting for the submission-
// driven cadence, the operator's lever after changing node state.
func (s *Server) handleClusterControl(w http.ResponseWriter, r *http.Request) {
	var req ClusterAction
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding cluster action: %v", err)
		return
	}
	switch req.Action {
	case "sweep":
		s.fleet.Sweep()
	default:
		httpError(w, http.StatusBadRequest, "unknown action %q (want sweep)", req.Action)
		return
	}
	writeJSON(w, map[string]string{"action": req.Action, "status": "ok"})
}

// NodeAction is the POST /v1/nodes payload: one lifecycle action on one
// named node.
type NodeAction struct {
	Node   string `json:"node"`
	Action string `json:"action"` // drain | evict | readmit | kill
}

// handleNodes lists per-node state and health (GET) and applies
// lifecycle actions (POST): drain (stop routing, complete accepted work),
// evict (stop routing only), readmit (resume routing a healthy node),
// kill (fail-stop for failure drills).
func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		var out []map[string]interface{}
		for _, nd := range s.nodes {
			h := nd.Health()
			out = append(out, map[string]interface{}{
				"name":                nd.Name(),
				"state":               h.State.String(),
				"ready":               h.Ready,
				"load":                nd.Load(),
				"devices":             h.Devices,
				"quarantined_devices": h.Quarantined,
				"degraded_devices":    h.Degraded,
				"exec_failures":       h.ExecFailures,
			})
		}
		writeJSON(w, map[string]interface{}{"nodes": out})
	case http.MethodPost:
		var req NodeAction
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding node action: %v", err)
			return
		}
		var err error
		switch req.Action {
		case "drain":
			err = s.fleet.Drain(req.Node)
		case "evict":
			err = s.fleet.Evict(req.Node)
		case "readmit":
			err = s.fleet.Readmit(req.Node)
		case "kill":
			err = s.fleet.Kill(req.Node)
		default:
			httpError(w, http.StatusBadRequest, "unknown action %q (want drain, evict, readmit or kill)", req.Action)
			return
		}
		switch {
		case errors.Is(err, cluster.ErrUnknownNode):
			httpError(w, http.StatusNotFound, "%v", err)
			return
		case err != nil:
			// Readmitting a node that is not healthy enough to serve.
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, map[string]string{"node": req.Node, "action": req.Action, "status": "ok"})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}
