package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"bomw/internal/core"
	"bomw/internal/models"
)

var (
	srvOnce sync.Once
	srv     *httptest.Server
	srvErr  error
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srvOnce.Do(func() {
		sched, err := core.New(core.Config{
			TrainModels: models.PaperModels(),
			Batches:     []int{8, 512, 8192, 65536},
			Reps:        1,
		})
		if err != nil {
			srvErr = err
			return
		}
		if err := sched.LoadModel(models.Simple(), 1); err != nil {
			srvErr = err
			return
		}
		srv = httptest.NewServer(New(sched, 1))
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

func post(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyEndpoint(t *testing.T) {
	ts := testServer(t)
	samples := make([][]float32, 4)
	for i := range samples {
		samples[i] = []float32{0.1, 0.2, 0.3, 0.4}
	}
	resp := post(t, ts.URL+"/v1/classify", ClassifyRequest{
		Model: "simple", Policy: "lowest-latency", Samples: samples,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out ClassifyResponse
	decode(t, resp, &out)
	if len(out.Classes) != 4 {
		t.Fatalf("classes = %v", out.Classes)
	}
	if out.Device == "" || out.LatencyUS <= 0 || out.EnergyJ <= 0 {
		t.Fatalf("degenerate response: %+v", out)
	}
	if out.Policy != "lowest-latency" {
		t.Fatalf("policy echoed as %q", out.Policy)
	}
}

func TestClassifyErrors(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		body interface{}
		want int
	}{
		{ClassifyRequest{Model: "simple", Samples: nil}, http.StatusBadRequest},
		{ClassifyRequest{Model: "nope", Samples: [][]float32{{1, 2, 3, 4}}}, http.StatusNotFound},
		{ClassifyRequest{Model: "simple", Policy: "weird", Samples: [][]float32{{1, 2, 3, 4}}}, http.StatusBadRequest},
		{ClassifyRequest{Model: "simple", Samples: [][]float32{{1, 2}}}, http.StatusBadRequest}, // wrong width
	}
	for i, c := range cases {
		resp := post(t, ts.URL+"/v1/classify", c.body)
		if resp.StatusCode != c.want {
			t.Fatalf("case %d: status %d, want %d", i, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}
	// GET not allowed.
	resp, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET classify status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestDynamicModelLoading(t *testing.T) {
	ts := testServer(t)
	spec := ModelSpec{
		Name:       "live-ffnn",
		Kind:       "ffnn",
		InputShape: []int{16},
		Hidden:     []int{32, 16},
		Classes:    4,
	}
	resp := post(t, ts.URL+"/v1/models", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Duplicate load conflicts.
	resp = post(t, ts.URL+"/v1/models", spec)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate load status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// The new model is listed and classifiable immediately (§V-A).
	var list struct {
		Models []string `json:"models"`
	}
	getResp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, getResp, &list)
	found := false
	for _, m := range list.Models {
		if m == "live-ffnn" {
			found = true
		}
	}
	if !found {
		t.Fatalf("live-ffnn missing from %v", list.Models)
	}
	sample := make([]float32, 16)
	resp = post(t, ts.URL+"/v1/classify", ClassifyRequest{
		Model: "live-ffnn", Samples: [][]float32{sample},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify on dynamic model: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestModelSpecValidation(t *testing.T) {
	ts := testServer(t)
	bad := []ModelSpec{
		{Name: "x", Kind: "rnn", InputShape: []int{4}, Classes: 2},
		{Name: "x", Kind: "ffnn", InputShape: []int{4}, Classes: 0},
		{Name: "x", Kind: "ffnn", InputShape: []int{4}, Classes: 2, Activation: "swish"},
		{Name: "x", Kind: "cnn", InputShape: []int{4}, Classes: 2},
	}
	for i, m := range bad {
		resp := post(t, ts.URL+"/v1/models", m)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestDevicesEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Devices []DeviceStatus `json:"devices"`
	}
	decode(t, resp, &out)
	if len(out.Devices) != 3 {
		t.Fatalf("devices = %d", len(out.Devices))
	}
	for _, d := range out.Devices {
		if d.Name == "" || d.ClockFrac <= 0 || d.Slowdown <= 0 {
			t.Fatalf("degenerate device status: %+v", d)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	// Make at least one decision first.
	resp := post(t, ts.URL+"/v1/classify", ClassifyRequest{
		Model: "simple", Samples: [][]float32{{1, 2, 3, 4}},
	})
	resp.Body.Close()
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Decisions int            `json:"decisions"`
		PerDevice map[string]int `json:"per_device"`
	}
	decode(t, r2, &out)
	if out.Decisions < 1 || len(out.PerDevice) == 0 {
		t.Fatalf("stats = %+v", out)
	}
}

func TestConcurrentClassifyRequests(t *testing.T) {
	// The server must survive parallel clients: the scheduler's state
	// (device queues, health monitor, stats) is shared.
	ts := testServer(t)
	const clients = 16
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func() {
			samples := [][]float32{{0.5, 0.5, 0.5, 0.5}}
			for i := 0; i < 5; i++ {
				resp, err := http.Post(ts.URL+"/v1/classify", "application/json",
					bytes.NewReader(mustJSON(ClassifyRequest{Model: "simple", Samples: samples})))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func mustJSON(v interface{}) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return raw
}

func TestDecisionsEndpoint(t *testing.T) {
	ts := testServer(t)
	// Generate at least one decision.
	resp := post(t, ts.URL+"/v1/classify", ClassifyRequest{
		Model: "simple", Samples: [][]float32{{1, 2, 3, 4}},
	})
	resp.Body.Close()
	r, err := http.Get(ts.URL + "/v1/decisions?n=10")
	if err != nil {
		t.Fatal(err)
	}
	var entries []map[string]interface{}
	decode(t, r, &entries)
	if len(entries) == 0 {
		t.Fatal("audit trail empty after classification")
	}
	last := entries[len(entries)-1]
	if last["model"] != "simple" || last["device"] == "" {
		t.Fatalf("audit entry wrong: %v", last)
	}
	// Bad n rejected.
	r2, err := http.Get(ts.URL + "/v1/decisions?n=-1")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n status %d", r2.StatusCode)
	}
}

func TestClassifyReportsBatching(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/v1/classify", ClassifyRequest{
		Model: "simple", Policy: "best-throughput",
		Samples: [][]float32{{1, 2, 3, 4}, {4, 3, 2, 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out ClassifyResponse
	decode(t, resp, &out)
	if out.BatchSize < 2 {
		t.Fatalf("batch_size = %d, want ≥ 2 (request had 2 samples)", out.BatchSize)
	}
	if out.WaitUS < 0 {
		t.Fatalf("wait_us = %d, want ≥ 0", out.WaitUS)
	}
}

func TestPipelineStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/v1/classify", ClassifyRequest{
		Model: "simple", Samples: [][]float32{{1, 2, 3, 4}},
	})
	resp.Body.Close()
	r, err := http.Get(ts.URL + "/v1/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]interface{}
	decode(t, r, &stats)
	for _, key := range []string{"submitted", "completed", "shed", "batches", "in_flight", "device_depth"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("pipeline stats missing %q: %v", key, stats)
		}
	}
	if stats["submitted"].(float64) < 1 {
		t.Fatalf("submitted = %v after a classify", stats["submitted"])
	}
}

// TestShedReturns503 exercises the load-shedding contract end to end: a
// server whose pipeline no longer admits work must answer 503 with a
// JSON error body and a Retry-After hint, and draining must leave no
// accepted request unanswered.
func TestShedReturns503(t *testing.T) {
	sched, err := core.New(core.Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512, 8192, 65536},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.LoadModel(models.Simple(), 1); err != nil {
		t.Fatal(err)
	}
	api := NewWithConfig(sched, 1, core.PipelineConfig{QueueDepth: 1})
	ts := httptest.NewServer(api)
	defer ts.Close()

	// Warm path works.
	resp := post(t, ts.URL+"/v1/classify", ClassifyRequest{
		Model: "simple", Samples: [][]float32{{1, 2, 3, 4}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Drain the pipeline — the graceful-shutdown sequence bomwsrv runs
	// after http.Server.Shutdown. New work must now be shed with 503.
	api.Close()
	resp = post(t, ts.URL+"/v1/classify", ClassifyRequest{
		Model: "simple", Samples: [][]float32{{1, 2, 3, 4}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status after drain = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 missing Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After = %q, want integer seconds in [1,30]", ra)
	}
	var body map[string]string
	decode(t, resp, &body)
	if body["error"] == "" {
		t.Fatalf("503 body not a JSON error: %v", body)
	}
	st := api.Pipeline().Stats()
	if st.Submitted != st.Completed || st.InFlight != 0 {
		t.Fatalf("drain left work behind: %+v", st)
	}
}

// TestRetryAfterScalesWithBacklog pins the Retry-After derivation: the
// hint is the fleet backlog in ceiling seconds, clamped to [1, 30], so
// a saturated system tells clients to stay away longer than an idle one.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	cases := []struct {
		backlog time.Duration
		want    string
	}{
		{0, "1"},                      // idle: floor keeps clients backing off at all
		{300 * time.Millisecond, "1"}, // sub-second rounds up to the floor
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"}, // ceiling, not truncation
		{5 * time.Second, "5"},
		{29*time.Second + time.Millisecond, "30"},
		{2 * time.Minute, "30"}, // cap: a spike cannot park clients for minutes
	}
	var prev int
	for _, c := range cases {
		got := retryAfter(c.backlog)
		if got != c.want {
			t.Errorf("retryAfter(%v) = %q, want %q", c.backlog, got, c.want)
		}
		secs, err := strconv.Atoi(got)
		if err != nil {
			t.Fatalf("retryAfter(%v) = %q, not an integer", c.backlog, got)
		}
		if secs < prev {
			t.Fatalf("retryAfter not monotone: %v yields %d after %d", c.backlog, secs, prev)
		}
		prev = secs
	}
}
