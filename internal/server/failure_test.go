package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"bomw/internal/core"
	"bomw/internal/models"
	"bomw/internal/opencl"
)

// TestModelLoadResponseContentType is the regression test for the
// dropped header: POST /v1/models used to call WriteHeader(201) before
// setting Content-Type, so the JSON body shipped without one.
func TestModelLoadResponseContentType(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts.URL+"/v1/models", ModelSpec{
		Name:       "content-type-probe",
		Kind:       "ffnn",
		InputShape: []int{8},
		Hidden:     []int{16},
		Classes:    2,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("201 Content-Type = %q, want application/json", ct)
	}
	var body map[string]string
	decode(t, resp, &body)
	if body["loaded"] != "content-type-probe" {
		t.Fatalf("201 body = %v", body)
	}
}

// TestDecisionsRejectsTrailingJunk is the regression test for lax query
// parsing: ?n=50abc used to Sscanf to 50 and be silently accepted.
func TestDecisionsRejectsTrailingJunk(t *testing.T) {
	ts := testServer(t)
	for _, raw := range []string{"50abc", "0x10", "1e3", ""} {
		resp, err := http.Get(ts.URL + "/v1/decisions?n=" + raw)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusBadRequest
		if raw == "" { // empty keeps the default and succeeds
			want = http.StatusOK
		}
		if resp.StatusCode != want {
			t.Fatalf("n=%q status = %d, want %d", raw, resp.StatusCode, want)
		}
	}
}

// TestFailureDomainEndpoints drives a real failover through the HTTP
// path and checks the failure domain is observable: /v1/pipeline counts
// retries/failovers, /v1/devices flags the quarantined device, and
// /v1/stats reports quarantine/readmission totals.
func TestFailureDomainEndpoints(t *testing.T) {
	sched, err := core.New(core.Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512, 8192, 65536},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.LoadModel(models.Simple(), 1); err != nil {
		t.Fatal(err)
	}
	fi := opencl.NewFaultInjector(5)
	sched.Runtime().SetFaultInjector(fi)
	// The prober is disabled so recovery timing stays deterministic.
	api := NewWithConfig(sched, 1, core.PipelineConfig{ProbeInterval: -1, RetryBackoff: -1})
	ts := httptest.NewServer(api)
	defer ts.Close()
	defer api.Close()

	classify := func() ClassifyResponse {
		t.Helper()
		resp := post(t, ts.URL+"/v1/classify", ClassifyRequest{
			Model: "simple", Samples: [][]float32{{1, 2, 3, 4}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify status %d", resp.StatusCode)
		}
		var out ClassifyResponse
		decode(t, resp, &out)
		return out
	}

	failed := classify().Device // learn the hot device, then break it
	fi.SetPlan(failed, opencl.FaultPlan{ErrorRate: 1})
	for i := 0; i < 4; i++ {
		if got := classify(); got.Device == failed {
			t.Fatalf("request %d served by the failing device", i)
		}
	}

	var pipe map[string]interface{}
	resp, err := http.Get(ts.URL + "/v1/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &pipe)
	if pipe["retries"].(float64) == 0 || pipe["failovers"].(float64) == 0 {
		t.Fatalf("pipeline stats missing failover evidence: %v", pipe)
	}
	if pipe["exec_failures"].(float64) != 0 {
		t.Fatalf("exec_failures = %v, want 0", pipe["exec_failures"])
	}

	var devs struct {
		Devices []DeviceStatus `json:"devices"`
	}
	resp, err = http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &devs)
	seen := false
	for _, d := range devs.Devices {
		if d.Name == failed {
			seen = true
			if !d.Quarantined {
				t.Fatalf("%s not flagged quarantined: %+v", failed, d)
			}
		} else if d.Quarantined {
			t.Fatalf("healthy device flagged quarantined: %+v", d)
		}
	}
	if !seen {
		t.Fatalf("device %q missing from /v1/devices", failed)
	}

	var stats map[string]interface{}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &stats)
	if stats["quarantines"].(float64) == 0 {
		t.Fatalf("stats missing quarantine count: %v", stats)
	}
	if list := stats["quarantined"].([]interface{}); len(list) != 1 || list[0] != failed {
		t.Fatalf("quarantined list = %v, want [%s]", list, failed)
	}

	// Recovery: clear the fault, probe, and the device disappears from
	// the quarantine list while the readmission counter ticks.
	fi.ClearPlan(failed)
	if got := sched.ProbeQuarantined(0); len(got) != 1 || got[0] != failed {
		t.Fatalf("probe after recovery = %v", got)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats = nil
	decode(t, resp, &stats)
	if stats["readmissions"].(float64) == 0 || len(stats["quarantined"].([]interface{})) != 0 {
		t.Fatalf("stats after readmission = %v", stats)
	}
}
