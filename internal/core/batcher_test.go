package core

import (
	"testing"
	"time"

	"bomw/internal/trace"
)

func TestBatcherValidation(t *testing.T) {
	b := &Batcher{}
	if _, err := b.Aggregate(trace.Trace{{At: 0, Model: "m", Batch: 1}}); err == nil {
		t.Fatal("zero window accepted")
	}
	b = &Batcher{Window: time.Millisecond, MaxBatch: 8}
	if _, err := b.Aggregate(trace.Trace{
		{At: time.Second, Model: "m", Batch: 1},
		{At: 0, Model: "m", Batch: 1},
	}); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
}

func TestBatcherFlushOnSize(t *testing.T) {
	b := &Batcher{Window: time.Hour, MaxBatch: 10}
	var tr trace.Trace
	for i := 0; i < 25; i++ {
		tr = append(tr, trace.Request{At: time.Duration(i) * time.Millisecond, Model: "m", Batch: 1})
	}
	batches, err := b.Aggregate(tr)
	if err != nil {
		t.Fatal(err)
	}
	// 25 singles at MaxBatch 10 → 10, 10, and a 5-sample window flush.
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	if batches[0].Size != 10 || batches[1].Size != 10 || batches[2].Size != 5 {
		t.Fatalf("batch sizes = %d,%d,%d", batches[0].Size, batches[1].Size, batches[2].Size)
	}
	if batches[0].Requests != 10 {
		t.Fatalf("requests aggregated = %d", batches[0].Requests)
	}
	// Size-triggered flushes release immediately (no window wait).
	if batches[0].FlushAt != 9*time.Millisecond {
		t.Fatalf("first flush at %v", batches[0].FlushAt)
	}
}

func TestBatcherFlushOnWindow(t *testing.T) {
	b := &Batcher{Window: 10 * time.Millisecond, MaxBatch: 1000}
	tr := trace.Trace{
		{At: 0, Model: "m", Batch: 2},
		{At: 3 * time.Millisecond, Model: "m", Batch: 2},
		{At: 50 * time.Millisecond, Model: "m", Batch: 2}, // past the window
	}
	batches, err := b.Aggregate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	if batches[0].Size != 4 || batches[0].FlushAt != 10*time.Millisecond {
		t.Fatalf("first batch = %+v", batches[0])
	}
	if batches[0].Wait() != 10*time.Millisecond {
		t.Fatalf("oldest sample waited %v", batches[0].Wait())
	}
	if batches[1].Size != 2 || batches[1].FlushAt != 60*time.Millisecond {
		t.Fatalf("straggler batch = %+v", batches[1])
	}
}

func TestBatcherKeepsModelsSeparate(t *testing.T) {
	b := &Batcher{Window: time.Minute, MaxBatch: 100}
	tr := trace.Trace{
		{At: 0, Model: "a", Batch: 3},
		{At: time.Millisecond, Model: "b", Batch: 5},
		{At: 2 * time.Millisecond, Model: "a", Batch: 3},
	}
	batches, err := b.Aggregate(tr)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{}
	for _, bt := range batches {
		sizes[bt.Model] += bt.Size
	}
	if sizes["a"] != 6 || sizes["b"] != 5 {
		t.Fatalf("per-model sizes = %v", sizes)
	}
}

func TestBatcherNeverExceedsMaxBatch(t *testing.T) {
	// Regression: a request whose Batch exceeds the remaining capacity
	// used to be folded in whole — a single size-1000 request sailed
	// through a MaxBatch=32 batcher as one oversized batch. It must be
	// split into MaxBatch-capped slices with the remainder flushing at
	// its window.
	b := &Batcher{Window: 10 * time.Millisecond, MaxBatch: 32}
	batches, err := b.Aggregate(trace.Trace{{At: time.Millisecond, Model: "m", Batch: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	// 1000 = 31 full slices of 32 plus an 8-sample window flush.
	if len(batches) != 32 {
		t.Fatalf("batches = %d, want 32", len(batches))
	}
	total, requests := 0, 0
	for i, bt := range batches {
		if bt.Size > 32 {
			t.Fatalf("batch %d size %d exceeds MaxBatch 32", i, bt.Size)
		}
		total += bt.Size
		requests += bt.Requests
	}
	if total != 1000 {
		t.Fatalf("samples emitted = %d, want 1000", total)
	}
	if requests != 1 {
		t.Fatalf("requests attributed = %d, want 1 (split request counts once)", requests)
	}
	for i := 0; i < 31; i++ {
		if batches[i].Size != 32 || batches[i].FlushAt != time.Millisecond {
			t.Fatalf("slice %d = %+v, want size 32 flushed at arrival", i, batches[i])
		}
	}
	last := batches[31]
	if last.Size != 8 || last.FlushAt != 11*time.Millisecond {
		t.Fatalf("remainder = %+v, want size 8 flushed at window boundary", last)
	}
}

func TestBatcherSplitCarriesRemainderIntoPending(t *testing.T) {
	// A partially filled pending batch plus an arriving request that
	// overflows it: the emitted batch is capped at exactly MaxBatch and
	// the overflow keeps aggregating with later arrivals.
	b := &Batcher{Window: 10 * time.Millisecond, MaxBatch: 32}
	batches, err := b.Aggregate(trace.Trace{
		{At: 0, Model: "m", Batch: 20},
		{At: time.Millisecond, Model: "m", Batch: 16},    // 36 ≥ 32: emit 32, carry 4
		{At: 2 * time.Millisecond, Model: "m", Batch: 3}, // joins the carried 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2: %+v", len(batches), batches)
	}
	if batches[0].Size != 32 || batches[0].FlushAt != time.Millisecond || batches[0].Requests != 2 {
		t.Fatalf("capped batch = %+v, want size 32 at 1ms with 2 requests", batches[0])
	}
	if batches[1].Size != 7 || batches[1].FirstAt != time.Millisecond || batches[1].Requests != 1 {
		t.Fatalf("carried batch = %+v, want size 7 anchored at the split arrival", batches[1])
	}
}

func TestSortBatchesStableAndFast(t *testing.T) {
	// Stability: equal-FlushAt batches must keep their emission order
	// (dispatch order is the tiebreak the pipeline relies on). Scale: the
	// old O(n²) insertion sort took minutes on traces this size — the
	// test would time out against it.
	const n = 100_000
	bs := make([]Batch, 0, n)
	for i := 0; i < n; i++ {
		bs = append(bs, Batch{
			Model:   "m",
			Size:    i, // emission sequence number, for the stability check
			FlushAt: time.Duration((n-i)%997) * time.Millisecond,
		})
	}
	sortBatches(bs)
	for i := 1; i < len(bs); i++ {
		if bs[i].FlushAt < bs[i-1].FlushAt {
			t.Fatalf("unsorted at %d: %v after %v", i, bs[i].FlushAt, bs[i-1].FlushAt)
		}
		if bs[i].FlushAt == bs[i-1].FlushAt && bs[i].Size < bs[i-1].Size {
			t.Fatalf("stability violated at %d: emission %d sorted before %d", i, bs[i-1].Size, bs[i].Size)
		}
	}
}

func BenchmarkSortBatches(b *testing.B) {
	const n = 200_000
	src := make([]Batch, n)
	for i := range src {
		src[i] = Batch{FlushAt: time.Duration((n-i)%9973) * time.Microsecond}
	}
	work := make([]Batch, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		sortBatches(work)
	}
}

func TestReplayBatchedTradeoff(t *testing.T) {
	// The batching trade-off of §IV-C: aggregating single-sample arrivals
	// into batches must raise sustained throughput (fewer fixed costs per
	// sample) while adding aggregation wait to per-request latency.
	s := testScheduler(t)
	var tr trace.Trace
	for i := 0; i < 400; i++ {
		tr = append(tr, trace.Request{
			At:    time.Duration(i) * 50 * time.Microsecond,
			Model: "mnist-small",
			Batch: 1,
		})
	}
	unbatched, err := s.Replay(tr, BestThroughput)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := s.ReplayBatched(tr, &Batcher{Window: 5 * time.Millisecond, MaxBatch: 256}, BestThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Requests != unbatched.Requests || batched.TotalSamples != unbatched.TotalSamples {
		t.Fatalf("accounting mismatch: %+v vs %+v", batched.Requests, unbatched.Requests)
	}
	if batched.Makespan >= unbatched.Makespan {
		t.Fatalf("batching should shorten the makespan: %v vs %v", batched.Makespan, unbatched.Makespan)
	}
	if batched.TotalEnergyJ >= unbatched.TotalEnergyJ {
		t.Fatalf("batching should amortise fixed energy: %.1fJ vs %.1fJ",
			batched.TotalEnergyJ, unbatched.TotalEnergyJ)
	}
}
