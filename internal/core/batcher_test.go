package core

import (
	"testing"
	"time"

	"bomw/internal/trace"
)

func TestBatcherValidation(t *testing.T) {
	b := &Batcher{}
	if _, err := b.Aggregate(trace.Trace{{At: 0, Model: "m", Batch: 1}}); err == nil {
		t.Fatal("zero window accepted")
	}
	b = &Batcher{Window: time.Millisecond, MaxBatch: 8}
	if _, err := b.Aggregate(trace.Trace{
		{At: time.Second, Model: "m", Batch: 1},
		{At: 0, Model: "m", Batch: 1},
	}); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
}

func TestBatcherFlushOnSize(t *testing.T) {
	b := &Batcher{Window: time.Hour, MaxBatch: 10}
	var tr trace.Trace
	for i := 0; i < 25; i++ {
		tr = append(tr, trace.Request{At: time.Duration(i) * time.Millisecond, Model: "m", Batch: 1})
	}
	batches, err := b.Aggregate(tr)
	if err != nil {
		t.Fatal(err)
	}
	// 25 singles at MaxBatch 10 → 10, 10, and a 5-sample window flush.
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	if batches[0].Size != 10 || batches[1].Size != 10 || batches[2].Size != 5 {
		t.Fatalf("batch sizes = %d,%d,%d", batches[0].Size, batches[1].Size, batches[2].Size)
	}
	if batches[0].Requests != 10 {
		t.Fatalf("requests aggregated = %d", batches[0].Requests)
	}
	// Size-triggered flushes release immediately (no window wait).
	if batches[0].FlushAt != 9*time.Millisecond {
		t.Fatalf("first flush at %v", batches[0].FlushAt)
	}
}

func TestBatcherFlushOnWindow(t *testing.T) {
	b := &Batcher{Window: 10 * time.Millisecond, MaxBatch: 1000}
	tr := trace.Trace{
		{At: 0, Model: "m", Batch: 2},
		{At: 3 * time.Millisecond, Model: "m", Batch: 2},
		{At: 50 * time.Millisecond, Model: "m", Batch: 2}, // past the window
	}
	batches, err := b.Aggregate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	if batches[0].Size != 4 || batches[0].FlushAt != 10*time.Millisecond {
		t.Fatalf("first batch = %+v", batches[0])
	}
	if batches[0].Wait() != 10*time.Millisecond {
		t.Fatalf("oldest sample waited %v", batches[0].Wait())
	}
	if batches[1].Size != 2 || batches[1].FlushAt != 60*time.Millisecond {
		t.Fatalf("straggler batch = %+v", batches[1])
	}
}

func TestBatcherKeepsModelsSeparate(t *testing.T) {
	b := &Batcher{Window: time.Minute, MaxBatch: 100}
	tr := trace.Trace{
		{At: 0, Model: "a", Batch: 3},
		{At: time.Millisecond, Model: "b", Batch: 5},
		{At: 2 * time.Millisecond, Model: "a", Batch: 3},
	}
	batches, err := b.Aggregate(tr)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{}
	for _, bt := range batches {
		sizes[bt.Model] += bt.Size
	}
	if sizes["a"] != 6 || sizes["b"] != 5 {
		t.Fatalf("per-model sizes = %v", sizes)
	}
}

func TestReplayBatchedTradeoff(t *testing.T) {
	// The batching trade-off of §IV-C: aggregating single-sample arrivals
	// into batches must raise sustained throughput (fewer fixed costs per
	// sample) while adding aggregation wait to per-request latency.
	s := testScheduler(t)
	var tr trace.Trace
	for i := 0; i < 400; i++ {
		tr = append(tr, trace.Request{
			At:    time.Duration(i) * 50 * time.Microsecond,
			Model: "mnist-small",
			Batch: 1,
		})
	}
	unbatched, err := s.Replay(tr, BestThroughput)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := s.ReplayBatched(tr, &Batcher{Window: 5 * time.Millisecond, MaxBatch: 256}, BestThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Requests != unbatched.Requests || batched.TotalSamples != unbatched.TotalSamples {
		t.Fatalf("accounting mismatch: %+v vs %+v", batched.Requests, unbatched.Requests)
	}
	if batched.Makespan >= unbatched.Makespan {
		t.Fatalf("batching should shorten the makespan: %v vs %v", batched.Makespan, unbatched.Makespan)
	}
	if batched.TotalEnergyJ >= unbatched.TotalEnergyJ {
		t.Fatalf("batching should amortise fixed energy: %.1fJ vs %.1fJ",
			batched.TotalEnergyJ, unbatched.TotalEnergyJ)
	}
}
