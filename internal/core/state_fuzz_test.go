package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"bomw/internal/characterize"
	"bomw/internal/mlsched"
)

// fuzzStateSeed handcrafts a valid serialised state around one tiny
// trained forest — the structurally-correct starting point the fuzzer
// mutates from. Built directly (not via a trained Scheduler) so every
// fuzz worker process starts in milliseconds, not characterisation time.
func fuzzStateSeed(f *testing.F) []byte {
	f.Helper()
	forest := mlsched.NewForest(mlsched.ForestConfig{NEstimators: 2, MaxDepth: 3, Seed: 1})
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}
	y := []int{0, 0, 1, 1, 2, 2}
	if err := forest.Fit(X, y); err != nil {
		f.Fatal(err)
	}
	var blob bytes.Buffer
	if err := forest.Serialize(&blob); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	pols := characterize.Objectives()
	binary.Write(&buf, binary.LittleEndian, stateMagic)
	binary.Write(&buf, binary.LittleEndian, uint32(len(pols)))
	for _, pol := range pols {
		binary.Write(&buf, binary.LittleEndian, uint32(pol))
		binary.Write(&buf, binary.LittleEndian, uint64(blob.Len()))
		buf.Write(blob.Bytes())
	}
	return buf.Bytes()
}

// FuzzLoadState hammers the binary state decoder with corrupt, truncated
// and hostile inputs: LoadState must either succeed or return an error —
// never panic, and never allocate proportionally to a length claimed by
// a hostile header rather than to the bytes actually present.
func FuzzLoadState(f *testing.F) {
	valid := fuzzStateSeed(f)
	f.Add(valid)
	// Truncations at every structural boundary: mid-magic, after magic,
	// after count, mid-policy-tag, mid-length, mid-blob.
	for _, n := range []int{0, 2, 4, 8, 10, 12, 16, 20, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	// Wrong magic.
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 1, 0, 0, 0})
	// Valid magic, implausible policy count.
	var huge bytes.Buffer
	binary.Write(&huge, binary.LittleEndian, stateMagic)
	binary.Write(&huge, binary.LittleEndian, uint32(0xffffffff))
	f.Add(huge.Bytes())
	// Valid magic and count, then a blob-length claim of 1 GiB backed by
	// nothing — the over-allocation trap.
	var lie bytes.Buffer
	binary.Write(&lie, binary.LittleEndian, stateMagic)
	binary.Write(&lie, binary.LittleEndian, uint32(1))
	binary.Write(&lie, binary.LittleEndian, uint32(0)) // policy tag
	binary.Write(&lie, binary.LittleEndian, uint64(1<<30))
	f.Add(lie.Bytes())
	// A blob-length claim just under the cap backed by garbage.
	var nearCap bytes.Buffer
	binary.Write(&nearCap, binary.LittleEndian, stateMagic)
	binary.Write(&nearCap, binary.LittleEndian, uint32(1))
	binary.Write(&nearCap, binary.LittleEndian, uint32(0))
	binary.Write(&nearCap, binary.LittleEndian, uint64(maxForestBlob-1))
	nearCap.Write(bytes.Repeat([]byte{0x42}, 256))
	f.Add(nearCap.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadState(Config{}, bytes.NewReader(data))
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		// Accepted states must actually be usable.
		if s == nil {
			t.Fatal("LoadState returned nil scheduler without error")
		}
		if len(s.classifiers) == 0 {
			t.Fatal("LoadState accepted a state with no classifiers")
		}
	})
}
