package core

import "bomw/internal/device"

// deviceRef wraps a live device to mint fresh copies with the same
// profile for shadow measurements.
type deviceRef struct {
	d *device.Device
}

func (r *deviceRef) freshCopy() *device.Device { return device.New(r.d.Profile()) }
