package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Decision audit trail: a bounded ring of recent scheduling decisions,
// exportable as JSON. Operators use it to answer "what did the scheduler
// do during the incident?" — the logging counterpart of cmd/explain's
// "why would it?".

// AuditEntry is one recorded decision with its arrival time.
type AuditEntry struct {
	Seq      int64         `json:"seq"`
	At       time.Duration `json:"at_us"` // virtual arrival time, µs in JSON
	Model    string        `json:"model"`
	Batch    int           `json:"batch"`
	Policy   string        `json:"policy"`
	Device   string        `json:"device"`
	GPUWarm  bool          `json:"gpu_warm"`
	Spilled  bool          `json:"spilled"`
	Decision time.Duration `json:"decision_us"` // wall decision cost
}

// MarshalJSON renders durations as integer microseconds.
func (e AuditEntry) MarshalJSON() ([]byte, error) {
	type wire struct {
		Seq        int64  `json:"seq"`
		AtMicros   int64  `json:"at_us"`
		Model      string `json:"model"`
		Batch      int    `json:"batch"`
		Policy     string `json:"policy"`
		Device     string `json:"device"`
		GPUWarm    bool   `json:"gpu_warm"`
		Spilled    bool   `json:"spilled"`
		DecisionUS int64  `json:"decision_us"`
	}
	return json.Marshal(wire{
		Seq: e.Seq, AtMicros: e.At.Microseconds(), Model: e.Model, Batch: e.Batch,
		Policy: e.Policy, Device: e.Device, GPUWarm: e.GPUWarm, Spilled: e.Spilled,
		DecisionUS: e.Decision.Microseconds(),
	})
}

// auditLog is a fixed-capacity ring buffer.
type auditLog struct {
	mu   sync.Mutex
	buf  []AuditEntry
	next int64 // total entries ever recorded
	cap  int
}

func newAuditLog(capacity int) *auditLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &auditLog{buf: make([]AuditEntry, 0, capacity), cap: capacity}
}

func (a *auditLog) record(e AuditEntry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e.Seq = a.next
	a.next++
	if len(a.buf) < a.cap {
		a.buf = append(a.buf, e)
		return
	}
	a.buf[int(e.Seq)%a.cap] = e
}

// recent returns up to n most recent entries, oldest first.
func (a *auditLog) recent(n int) []AuditEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := int(a.next)
	have := len(a.buf)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]AuditEntry, 0, n)
	for i := total - n; i < total; i++ {
		out = append(out, a.buf[i%a.cap])
	}
	return out
}

// EnableAudit switches on decision recording with the given ring
// capacity (≤0 selects 256). Call before serving traffic.
func (s *Scheduler) EnableAudit(capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.audit = newAuditLog(capacity)
}

// RecentDecisions returns up to n recorded decisions, oldest first
// (empty when auditing is off).
func (s *Scheduler) RecentDecisions(n int) []AuditEntry {
	s.mu.Lock()
	a := s.audit
	s.mu.Unlock()
	if a == nil {
		return nil
	}
	return a.recent(n)
}

// WriteAuditJSON streams up to n recent decisions as a JSON array.
func (s *Scheduler) WriteAuditJSON(w io.Writer, n int) error {
	entries := s.RecentDecisions(n)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(entries); err != nil {
		return fmt.Errorf("core: encoding audit log: %w", err)
	}
	return nil
}

// recordAudit appends a decision to the audit ring when enabled.
func (s *Scheduler) recordAudit(dec Decision, at time.Duration) {
	s.mu.Lock()
	a := s.audit
	s.mu.Unlock()
	if a == nil {
		return
	}
	a.record(AuditEntry{
		At:       at,
		Model:    dec.Model,
		Batch:    dec.Batch,
		Policy:   dec.Policy.String(),
		Device:   dec.Device,
		GPUWarm:  dec.GPUWarm,
		Spilled:  dec.Spilled,
		Decision: dec.DecisionTime,
	})
}
