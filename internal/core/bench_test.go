package core

import (
	"testing"

	"bomw/internal/models"
)

func benchSched(b *testing.B) *Scheduler {
	b.Helper()
	schedOnce.Do(func() {
		sched, schedErr = New(Config{TrainModels: models.AllModels()})
		if schedErr != nil {
			return
		}
		for _, spec := range models.PaperModels() {
			if schedErr = sched.LoadModel(spec, 1); schedErr != nil {
				return
			}
		}
	})
	if schedErr != nil {
		b.Fatal(schedErr)
	}
	sched.ResetDevices()
	return sched
}

// BenchmarkSelect measures the scheduler's per-request decision cost —
// the "Classification Time" column of Table II, end to end (probe +
// feature assembly + forest vote).
func BenchmarkSelect(b *testing.B) {
	s := benchSched(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Select("mnist-small", 4096, BestThroughput, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := benchSched(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Estimate("mnist-small", 4096, LowestLatency, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(Config{
			TrainModels: models.PaperModels(),
			Batches:     []int{8, 512, 8192},
			Reps:        1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
