package core

import (
	"fmt"

	"bomw/internal/device"
	"bomw/internal/mlsched"
	"bomw/internal/opencl"
)

// Replica builds a fresh scheduler that shares this scheduler's trained
// per-policy classifiers and characterisation dataset but owns its own
// devices, simulated OpenCL runtime, dispatcher, health monitor and
// statistics — the unit of fleet scale-out. The paper's offline phase
// (characterisation + training, the expensive part of New) runs once on
// the template; replicas restart instantly, the way LoadState restarts a
// process from saved forests, and every model loaded on the template is
// re-built and loaded on the replica with the given weight seed.
//
// Devices are rebuilt from the template's profiles in the same order, so
// the shared classifiers' class labels keep naming the same device slots
// on every replica. The classifiers are shared by reference: they are
// read-only after fitting (concurrent Predict/Rank is already the
// serving pipeline's access pattern), and a Retrain on any scheduler
// swaps that scheduler's map entries without mutating the shared
// forests.
func (s *Scheduler) Replica(seed int64) (*Scheduler, error) {
	var devs []*device.Device
	for _, d := range s.devices {
		devs = append(devs, device.New(d.Profile()))
	}
	rt, err := opencl.NewRuntime(devs...)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	cfg.Devices = devs
	r := &Scheduler{
		cfg:       cfg,
		rt:        rt,
		disp:      NewDispatcher(rt),
		devices:   devs,
		cvMetrics: map[Policy]mlsched.Metrics{},
		health:    newHealthMonitor(),
		stats:     Stats{PerDevice: map[string]int{}, PerPolicy: map[Policy]int{}},
	}
	for _, d := range devs {
		if d.Profile().HasBoost {
			r.dgpu = d
			break
		}
	}
	s.mu.Lock()
	r.classifiers = map[Policy]mlsched.Classifier{}
	for pol, c := range s.classifiers {
		r.classifiers[pol] = c
	}
	s.mu.Unlock()
	// The replica gets its own (empty) decision cache: cached rankings
	// embed fencing context read live anyway, but cache epochs are
	// per-scheduler and must not be shared.
	r.buildPolicySet()
	r.dataset = s.dataset
	for _, name := range s.disp.Models() {
		spec, err := s.disp.Spec(name)
		if err != nil {
			return nil, fmt.Errorf("core: replicating model %q: %w", name, err)
		}
		if err := r.LoadModel(spec, seed); err != nil {
			return nil, fmt.Errorf("core: replicating model %q: %w", name, err)
		}
	}
	return r, nil
}
