package core

import (
	"fmt"

	"bomw/internal/device"
	"bomw/internal/mlsched"
	"bomw/internal/opencl"
)

// Replica builds a fresh scheduler that shares this scheduler's trained
// per-policy classifiers and characterisation dataset but owns its own
// devices, simulated OpenCL runtime, dispatcher, health monitor and
// statistics — the unit of fleet scale-out. The paper's offline phase
// (characterisation + training, the expensive part of New) runs once on
// the template; replicas restart instantly, the way LoadState restarts a
// process from saved forests, and every model loaded on the template is
// re-built and loaded on the replica with the given weight seed.
//
// Devices are rebuilt from the template's profiles in the same order, so
// the shared classifiers' class labels keep naming the same device slots
// on every replica. The classifiers are shared by reference: they are
// read-only after fitting (concurrent Predict/Rank is already the
// serving pipeline's access pattern), and a Retrain on any scheduler
// swaps that scheduler's map entries without mutating the shared
// forests.
func (s *Scheduler) Replica(seed int64) (*Scheduler, error) {
	var devs []*device.Device
	for _, d := range s.devices {
		devs = append(devs, device.New(d.Profile()))
	}
	rt, err := opencl.NewRuntime(devs...)
	if err != nil {
		return nil, err
	}
	// Snapshot the template's retrainable state under its lock: Retrain
	// swaps cfg.TrainModels, the classifier map and the dataset on
	// another goroutine, and the replica must see one consistent
	// generation of all three.
	s.mu.Lock()
	cfg := s.cfg
	classifiers := make(map[Policy]mlsched.Classifier, len(s.classifiers))
	for pol, c := range s.classifiers {
		classifiers[pol] = c
	}
	dataset := s.dataset
	s.mu.Unlock()
	cfg.Devices = devs
	r := &Scheduler{
		cfg:         cfg,
		rt:          rt,
		disp:        NewDispatcher(rt),
		devices:     devs,
		classifiers: classifiers,
		cvMetrics:   map[Policy]mlsched.Metrics{},
		health:      newHealthMonitor(),
		stats:       Stats{PerDevice: map[string]int{}, PerPolicy: map[Policy]int{}},
	}
	for _, d := range devs {
		if d.Profile().HasBoost {
			r.dgpu = d
			break
		}
	}
	// The replica gets its own (empty) decision cache: cached rankings
	// embed fencing context read live anyway, but cache epochs are
	// per-scheduler and must not be shared.
	r.buildPolicySet()
	r.dataset = dataset
	for _, name := range s.disp.Models() {
		spec, err := s.disp.Spec(name)
		if err != nil {
			return nil, fmt.Errorf("core: replicating model %q: %w", name, err)
		}
		if err := r.LoadModel(spec, seed); err != nil {
			return nil, fmt.Errorf("core: replicating model %q: %w", name, err)
		}
	}
	return r, nil
}
