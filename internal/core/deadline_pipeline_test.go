package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bomw/internal/opencl"
)

// countingInjector attaches a fault injector with an empty plan on every
// device: it injects nothing and acts as a pure execution counter — the
// mechanism the "never executed" assertions use.
func countingInjector(s *Scheduler) *opencl.FaultInjector {
	fi := opencl.NewFaultInjector(1)
	s.Runtime().SetFaultInjector(fi)
	for _, name := range s.Devices() {
		fi.SetPlan(name, opencl.FaultPlan{})
	}
	return fi
}

func totalExecutions(fi *opencl.FaultInjector) int64 {
	var n int64
	for _, st := range fi.Stats() {
		n += st.Executions
	}
	return n
}

// TestPipelineSubmitRejectsCancelledContext is the regression test for
// the admission bug: Submit used to accept requests whose context was
// already cancelled, spending queue slots and device time on work nobody
// was waiting for.
func TestPipelineSubmitRejectsCancelledContext(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	p := NewPipeline(s, PipelineConfig{ProbeInterval: -1})
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fut, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with cancelled context = %v, want context.Canceled", err)
	}
	if fut != nil {
		t.Fatal("Submit returned a future for a dead request")
	}
	if st := p.Stats(); st.Submitted != 0 {
		t.Fatalf("dead request was admitted: %+v", st)
	}
}

// TestFutureWaitRaceNeverLosesCompletion hammers the resolve-exactly-once
// contract from the waiter's side: a context cancelled concurrently with
// completion delivery must never lose the completion — an abandoned Wait
// can always be retried with a fresh context and still observe it.
func TestFutureWaitRaceNeverLosesCompletion(t *testing.T) {
	for i := 0; i < 500; i++ {
		fut := &Future{ch: make(chan Completion, 1)}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			fut.ch <- Completion{BatchSize: 42}
		}()
		go func() {
			defer wg.Done()
			cancel()
		}()
		c, err := fut.Wait(ctx)
		if err != nil {
			// The cancel won the race: delivery must still be there.
			c2, err2 := fut.Wait(context.Background())
			if err2 != nil {
				t.Fatalf("iter %d: completion lost after cancelled Wait: %v", i, err2)
			}
			c = c2
		}
		if c.BatchSize != 42 {
			t.Fatalf("iter %d: wrong completion %+v", i, c)
		}
		wg.Wait()
		cancel()
	}
}

// TestPipelineRejectsInfeasibleDeadline: admission control must reject a
// request whose SLO no device can meet — distinctly from queue-full
// shedding — while a generous SLO on the same request sails through.
func TestPipelineRejectsInfeasibleDeadline(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	p := NewPipeline(s, PipelineConfig{ProbeInterval: -1})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	_, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8, Deadline: time.Nanosecond})
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("1ns SLO admitted: err = %v, want ErrDeadlineInfeasible", err)
	}
	if st := p.Stats(); st.Infeasible != 1 || st.Submitted != 0 {
		t.Fatalf("stats after infeasible reject = %+v", st)
	}

	c, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8, Deadline: time.Minute})
	if err != nil || c.Err != nil {
		t.Fatalf("feasible SLO failed: %v / %v", err, c.Err)
	}
}

// TestPipelineCullsExpiredBeforeExecute is the acceptance assertion: an
// admitted request whose deadline passes while it is queued resolves with
// ErrDeadlineExceeded and never reaches a device's execute path — proven
// by fault-injector execution counters staying flat.
func TestPipelineCullsExpiredBeforeExecute(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	fi := countingInjector(s)
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, ProbeInterval: -1, DisableAdmissionControl: true})
	release := make(chan struct{})
	p.testExecHook = func(string) { <-release }
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One SLO-free blocker occupies a worker; with every worker gated on
	// the hook, nothing can execute until release.
	blocker, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8, Deadline: -1})
	if err != nil {
		t.Fatal(err)
	}
	const expiring = 4
	futs := make([]*Future, 0, expiring)
	for i := 0; i < expiring; i++ {
		fut, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8, Deadline: 10 * time.Millisecond})
		if err != nil {
			t.Fatalf("expiring submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}
	time.Sleep(50 * time.Millisecond) // every 10 ms SLO is now long gone
	close(release)

	for i, fut := range futs {
		c, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if !errors.Is(c.Err, ErrDeadlineExceeded) {
			t.Fatalf("expired request %d resolved with %v, want ErrDeadlineExceeded", i, c.Err)
		}
	}
	if c, err := blocker.Wait(ctx); err != nil || c.Err != nil {
		t.Fatalf("blocker: %v / %v", err, c.Err)
	}
	p.Close()

	st := p.Stats()
	if st.Expired != expiring {
		t.Fatalf("Expired = %d, want %d (stats %+v)", st.Expired, expiring, st)
	}
	// Only the SLO-free blocker may have touched a device.
	if n := totalExecutions(fi); n != 1 {
		t.Fatalf("expired requests reached the execute path: %d executions, want 1 (%+v)", n, fi.Stats())
	}
}

// TestPipelineNoRetryAfterDeadline covers the deadline × failover
// interaction: when the first attempt fails and the request's SLO
// expires during the retry backoff, the request must be culled — not
// retried on a second device.
func TestPipelineNoRetryAfterDeadline(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	fi := countingInjector(s)
	for _, name := range s.Devices() {
		fi.SetPlan(name, opencl.FaultPlan{ErrorRate: 1})
	}
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, ProbeInterval: -1, RetryBackoff: 60 * time.Millisecond})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Feasible at admission (idle queues), expired by the time the 60 ms
	// backoff after the failed first attempt has elapsed.
	c, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 4, Deadline: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(c.Err, ErrDeadlineExceeded) {
		t.Fatalf("request resolved with %v, want ErrDeadlineExceeded (culled before retry)", c.Err)
	}
	st := p.Stats()
	if st.Retries != 0 {
		t.Fatalf("expired request was retried: %+v", st)
	}
	if st.Expired != 1 || st.ExecFailures != 0 {
		t.Fatalf("stats = %+v, want Expired=1 ExecFailures=0", st)
	}
	if n := totalExecutions(fi); n != 1 {
		t.Fatalf("executions = %d, want exactly the failed first attempt (%+v)", n, fi.Stats())
	}
}

// TestPipelineHedgeCompletesOnBackupDevice: with hedging on, a batch
// straggling on its primary device is re-executed on the second-best
// device once half its slack is spent; the hedge's result resolves the
// future and the primary — released later — skips execution entirely
// (the loser is cancelled).
func TestPipelineHedgeCompletesOnBackupDevice(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	fi := countingInjector(s)
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, ProbeInterval: -1, Hedge: true})
	release := make(chan struct{})
	var mu sync.Mutex
	primary := ""
	p.testExecHook = func(dev string) {
		mu.Lock()
		if primary == "" {
			primary = dev
			mu.Unlock()
			<-release // hold only the first (primary) batch
			return
		}
		mu.Unlock()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fut, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8, Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c, err := fut.Wait(ctx) // resolves via the hedge while the primary is held
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	p.Close()

	if c.Err != nil {
		t.Fatalf("hedged request failed: %v", c.Err)
	}
	if !c.Hedged {
		t.Fatalf("completion not marked hedged: %+v", c)
	}
	mu.Lock()
	prim := primary
	mu.Unlock()
	if c.Decision.Device == prim {
		t.Fatalf("hedge reported completion on the held primary %s", prim)
	}
	st := p.Stats()
	if st.HedgesLaunched != 1 || st.HedgesWon != 1 {
		t.Fatalf("hedge counters = launched %d won %d, want 1/1", st.HedgesLaunched, st.HedgesWon)
	}
	if st.Expired != 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want a clean hedged success", st)
	}
	// The cancelled loser never executed: only the hedge touched a device.
	if execs := fi.Stats(); execs[prim].Executions != 0 || totalExecutions(fi) != 1 {
		t.Fatalf("executions = %+v, want exactly one (the hedge), none on %s", execs, prim)
	}
}

// TestFeasibleWithinSeesLoad: the admission predictor must fold both the
// committed busy horizon of the simulated devices and the live worker
// queue occupancy (the queue probe) into its completion estimates.
func TestFeasibleWithinSeesLoad(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})

	feasible, idleBest, err := s.FeasibleWithin("mnist-small", 8, time.Hour, 0)
	if err != nil || !feasible {
		t.Fatalf("idle system infeasible for a 1h SLO: %v feasible=%t", err, feasible)
	}
	if idleBest <= 0 {
		t.Fatalf("predicted latency %v, want positive", idleBest)
	}

	// Commit a large batch on every device: the busy horizon moves out,
	// and the best prediction must move with it.
	for _, name := range s.Devices() {
		if _, err := s.Runtime().Estimate(name, "mnist-small", 65536, 0); err != nil {
			t.Fatal(err)
		}
	}
	feasible, busyBest, err := s.FeasibleWithin("mnist-small", 8, idleBest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if busyBest <= idleBest {
		t.Fatalf("busy prediction %v not above idle prediction %v", busyBest, idleBest)
	}
	if feasible {
		t.Fatalf("deadline %v still feasible with every device busy until ≥%v", idleBest, busyBest)
	}

	// The live queue probe feeds the same prediction: an hour of queued
	// work makes a one-minute SLO infeasible.
	s.SetQueueProbe(func(string) time.Duration { return time.Hour })
	feasible, _, err = s.FeasibleWithin("mnist-small", 8, time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if feasible {
		t.Fatal("an hour of queued work left a 1-minute SLO feasible")
	}
	s.SetQueueProbe(nil)
}

// TestPipelineModelSLODefaults: requests without an explicit Deadline
// inherit the per-model or pipeline-wide default, and Deadline < 0 opts
// out entirely.
func TestPipelineModelSLODefaults(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	p := NewPipeline(s, PipelineConfig{
		ProbeInterval: -1,
		DefaultSLO:    time.Nanosecond, // impossible: everything using the default is rejected
		ModelSLO:      map[string]time.Duration{"mnist-small": time.Minute},
	})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// mnist-small rides its generous per-model SLO.
	c, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8})
	if err != nil || c.Err != nil {
		t.Fatalf("per-model SLO: %v / %v", err, c.Err)
	}
	// mnist-mlp falls back to the impossible pipeline default.
	_, err = p.Submit(ctx, PipelineRequest{Model: "mnist-deep", Policy: BestThroughput, Batch: 8})
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("default SLO not applied: err = %v", err)
	}
	// Deadline < 0 opts out of the default.
	c, err = p.Do(ctx, PipelineRequest{Model: "mnist-deep", Policy: BestThroughput, Batch: 8, Deadline: -1})
	if err != nil || c.Err != nil {
		t.Fatalf("SLO opt-out: %v / %v", err, c.Err)
	}
}

// TestSoakDeadlineOverload is the overload acceptance soak (`make
// soak-deadline` runs it under -race): concurrent clients drive the
// pipeline far past saturation (a slow executor gates every batch) with
// mixed SLOs — generous, tight, impossible, and none. Graceful
// degradation means: feasible-SLO goodput keeps ≥95% SLO attainment,
// impossible-SLO work is rejected at admission (never executed), and the
// stats counters account for every submit attempt and every admitted
// request.
func TestSoakDeadlineOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	s := smallScheduler(t, Config{})
	p := NewPipeline(s, PipelineConfig{
		QueueDepth:       16,
		DeviceQueueDepth: 2,
		MaxBatch:         8,
		Window:           500 * time.Microsecond,
		ProbeInterval:    -1,
	})
	// The slow executor sets the real capacity: ~300 µs per batch per
	// device, so tight-loop clients offer far beyond 2× saturation and
	// backpressure + admission control must do the shedding.
	p.testExecHook = func(string) { time.Sleep(300 * time.Microsecond) }
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const (
		feasibleSLO = 250 * time.Millisecond
		tightSLO    = 2 * time.Millisecond
		perClient   = 150
	)
	type classStats struct {
		attempts, shed, rejected atomic.Int64
		expired, okInSLO, okLate atomic.Int64
	}
	var feasible, tight, background, impossible classStats
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	client := func(slo time.Duration, cs *classStats) {
		defer wg.Done()
		for i := 0; i < perClient; i++ {
			cs.attempts.Add(1)
			start := time.Now()
			fut, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 4, Deadline: slo})
			switch {
			case errors.Is(err, ErrAdmissionFull):
				cs.shed.Add(1)
				continue
			case errors.Is(err, ErrDeadlineInfeasible):
				cs.rejected.Add(1)
				continue
			case err != nil:
				errCh <- err
				return
			}
			c, err := fut.Wait(ctx)
			if err != nil {
				errCh <- err
				return
			}
			switch {
			case errors.Is(c.Err, ErrDeadlineExceeded):
				cs.expired.Add(1)
			case c.Err != nil:
				errCh <- c.Err
				return
			case slo <= 0 || time.Since(start) <= slo:
				cs.okInSLO.Add(1)
			default:
				cs.okLate.Add(1)
			}
		}
	}
	// 8 generous-SLO clients, 8 SLO-free background clients saturating
	// the system, 4 tight-SLO clients exercising expiry culling and
	// prediction-driven rejection, and 4 impossible-SLO clients that
	// must all be rejected at admission.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go client(feasibleSLO, &feasible)
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go client(-1, &background)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go client(tightSLO, &tight)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go client(time.Nanosecond, &impossible)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("soak client failed: %v", err)
	}
	p.Close()
	st := p.Stats()

	sum := func(f func(*classStats) int64) int64 {
		return f(&feasible) + f(&tight) + f(&background) + f(&impossible)
	}
	attempts := sum(func(c *classStats) int64 { return c.attempts.Load() })
	shed := sum(func(c *classStats) int64 { return c.shed.Load() })
	rejected := sum(func(c *classStats) int64 { return c.rejected.Load() })
	expired := sum(func(c *classStats) int64 { return c.expired.Load() })
	ok := sum(func(c *classStats) int64 { return c.okInSLO.Load() + c.okLate.Load() })

	// (1) Impossible SLOs are rejected before admission — never executed.
	if got := impossible.rejected.Load(); got != impossible.attempts.Load() {
		t.Fatalf("impossible-SLO: %d of %d rejected, want all (shed=%d ok=%d expired=%d)",
			got, impossible.attempts.Load(), impossible.shed.Load(),
			impossible.okInSLO.Load()+impossible.okLate.Load(), impossible.expired.Load())
	}
	// (2) Every submit attempt is accounted for:
	// submitted + shed + infeasible = attempts.
	if total := st.Submitted + st.Shed + st.Infeasible; total != attempts {
		t.Fatalf("attempt accounting: submitted %d + shed %d + infeasible %d = %d ≠ attempts %d",
			st.Submitted, st.Shed, st.Infeasible, total, attempts)
	}
	if st.Shed != shed || st.Infeasible != rejected {
		t.Fatalf("shed/infeasible counters disagree with clients: %+v vs shed=%d rejected=%d", st, shed, rejected)
	}
	// (3) Every admitted request resolved into exactly one outcome:
	// ok + failed + cancelled + expired = admitted.
	if st.Completed != st.Submitted || st.InFlight != 0 {
		t.Fatalf("drain left work behind: %+v", st)
	}
	if ok+st.Failed+st.Cancelled+st.Expired != st.Submitted {
		t.Fatalf("outcome accounting: ok %d + failed %d + cancelled %d + expired %d ≠ admitted %d",
			ok, st.Failed, st.Cancelled, st.Expired, st.Submitted)
	}
	if st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("no faults were injected, yet %+v", st)
	}
	if st.Expired != expired {
		t.Fatalf("Expired = %d, clients saw %d", st.Expired, expired)
	}
	// (4) Goodput under ≥2× saturation: admitted generous-SLO requests
	// keep ≥95% SLO attainment — overload is absorbed by shedding and
	// culling, not by blowing the tails of feasible work.
	feasAdmitted := feasible.okInSLO.Load() + feasible.okLate.Load() + feasible.expired.Load()
	if feasAdmitted == 0 {
		t.Fatal("no generous-SLO request was admitted")
	}
	if att := float64(feasible.okInSLO.Load()) / float64(feasAdmitted); att < 0.95 {
		t.Fatalf("feasible-SLO attainment %.3f < 0.95 (ok=%d late=%d expired=%d)",
			att, feasible.okInSLO.Load(), feasible.okLate.Load(), feasible.expired.Load())
	}
	if background.okInSLO.Load() == 0 {
		t.Fatal("background load never completed anything")
	}
	t.Logf("soak: attempts=%d admitted=%d shed=%d infeasible=%d expired=%d ok=%d | feasible ok=%d late=%d expired=%d | tight ok=%d rejected=%d expired=%d",
		attempts, st.Submitted, st.Shed, st.Infeasible, st.Expired, ok,
		feasible.okInSLO.Load(), feasible.okLate.Load(), feasible.expired.Load(),
		tight.okInSLO.Load(), tight.rejected.Load(), tight.expired.Load())
}
