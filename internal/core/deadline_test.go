package core

import (
	"testing"
	"time"
)

func TestSelectWithDeadlineValidation(t *testing.T) {
	s := testScheduler(t)
	if _, err := s.SelectWithDeadline("mnist-small", 0, time.Second, 0); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := s.SelectWithDeadline("mnist-small", 8, 0, 0); err == nil {
		t.Fatal("zero deadline accepted")
	}
	if _, err := s.SelectWithDeadline("nope", 8, time.Second, 0); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestLooseDeadlinePicksEnergyEfficient(t *testing.T) {
	// With a generous SLO every device qualifies, so the pick should be
	// the low-power one — not the fast dGPU.
	s := testScheduler(t)
	dec, err := s.SelectWithDeadline("mnist-small", 2048, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Met || dec.Candidates != 3 {
		t.Fatalf("loose deadline: met=%t candidates=%d", dec.Met, dec.Candidates)
	}
	if dec.Device == "GTX 1080 Ti" {
		t.Fatal("loose SLO should avoid the power-hungry dGPU")
	}
}

func TestTightDeadlinePicksFastDevice(t *testing.T) {
	// At 64K mnist-small from a warm GPU only the dGPU can finish in a
	// few hundred milliseconds.
	s := testScheduler(t)
	for _, d := range s.cfg.Devices {
		if d.Profile().HasBoost {
			d.Warm(0)
		}
	}
	dec, err := s.SelectWithDeadline("mnist-small", 65536, 600*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Met {
		t.Fatalf("warm dGPU should meet 600ms for 64K: predicted %v", dec.Predicted)
	}
	if dec.Device != "GTX 1080 Ti" {
		t.Fatalf("tight SLO pick = %s, want the dGPU", dec.Device)
	}
}

func TestImpossibleDeadlineFallsBackToFastest(t *testing.T) {
	s := testScheduler(t)
	dec, err := s.SelectWithDeadline("mnist-deep", 262144, time.Microsecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Met || dec.Candidates != 0 {
		t.Fatalf("nothing can classify 256K deep samples in 1µs: %+v", dec)
	}
	// Fallback must be the latency-minimising device (the dGPU at this
	// scale).
	if dec.Device != "GTX 1080 Ti" {
		t.Fatalf("fallback pick = %s", dec.Device)
	}
	if dec.Predicted <= 0 {
		t.Fatal("prediction missing")
	}
}

func TestDeadlineAccountsForQueue(t *testing.T) {
	// A busy low-power device must be passed over when its queue breaks
	// the SLO, even though its execution alone would meet it.
	s := testScheduler(t)
	loose, err := s.SelectWithDeadline("mnist-small", 512, 200*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the chosen device with a deep queue.
	for i := 0; i < 80; i++ {
		if _, err := s.rt.Estimate(loose.Device, "mnist-small", 65536, 0); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := s.SelectWithDeadline("mnist-small", 512, 200*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == loose.Device {
		t.Fatal("deadline selection ignored the queue backlog")
	}
}

func TestDeadlineAccountsForInterference(t *testing.T) {
	s := testScheduler(t)
	base, err := s.SelectWithDeadline("mnist-small", 4096, 50*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Contend the chosen device and teach the health monitor about it.
	for _, d := range s.cfg.Devices {
		if d.Name() == base.Device {
			d.SetSlowdown(20)
		}
	}
	at := time.Duration(0)
	for i := 0; i < 4; i++ {
		res, _ := s.rt.Estimate(base.Device, "mnist-small", 4096, at)
		at = res.Completed
		if err := s.Observe(Decision{Model: "mnist-small", Batch: 4096, Device: base.Device}, res); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := s.SelectWithDeadline("mnist-small", 4096, 50*time.Millisecond, at)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == base.Device {
		t.Fatal("deadline selection ignored observed interference")
	}
}
