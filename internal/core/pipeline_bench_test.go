package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// BenchmarkPipelineServe measures end-to-end serving throughput through
// the concurrent pipeline at increasing client concurrency. Each client
// issues a request and waits for its completion before issuing the
// next, so scaling beyond one client comes entirely from the live
// batcher folding concurrent arrivals into shared dispatches — the
// effect the ISSUE acceptance criterion checks (16-client throughput
// ≥ 3× single-client).
func BenchmarkPipelineServe(b *testing.B) {
	s := benchSched(b)
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			p := NewPipeline(s, PipelineConfig{Window: 500 * time.Microsecond, MaxBatch: 256})
			defer p.Close()
			ctx := context.Background()
			work := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						comp, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8})
						if err != nil {
							b.Error(err)
							return
						}
						if comp.Err != nil {
							b.Error(comp.Err)
							return
						}
					}
				}()
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				work <- struct{}{}
			}
			close(work)
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
		})
	}
}
