package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestAuditDisabledByDefault(t *testing.T) {
	s := testScheduler(t)
	if _, err := s.Select("simple", 8, LowestLatency, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.RecentDecisions(10); got != nil {
		t.Fatalf("audit off but recorded %d entries", len(got))
	}
}

func TestAuditRecordsDecisions(t *testing.T) {
	s := testScheduler(t)
	s.EnableAudit(8)
	for i := 0; i < 5; i++ {
		if _, err := s.Select("mnist-small", 512<<i, BestThroughput, 0); err != nil {
			t.Fatal(err)
		}
	}
	entries := s.RecentDecisions(0)
	if len(entries) != 5 {
		t.Fatalf("recorded %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if e.Seq != int64(i) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
		if e.Model != "mnist-small" || e.Batch != 512<<i || e.Policy != "best-throughput" {
			t.Fatalf("entry %d wrong: %+v", i, e)
		}
		if e.Device == "" {
			t.Fatal("device missing from audit entry")
		}
	}
	// Limited read returns the most recent, oldest first.
	last2 := s.RecentDecisions(2)
	if len(last2) != 2 || last2[0].Seq != 3 || last2[1].Seq != 4 {
		t.Fatalf("RecentDecisions(2) = %+v", last2)
	}
}

func TestAuditRingWraps(t *testing.T) {
	s := testScheduler(t)
	s.EnableAudit(4)
	for i := 0; i < 10; i++ {
		if _, err := s.Select("simple", 8, LowestLatency, 0); err != nil {
			t.Fatal(err)
		}
	}
	entries := s.RecentDecisions(0)
	if len(entries) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(entries))
	}
	if entries[0].Seq != 6 || entries[3].Seq != 9 {
		t.Fatalf("ring kept wrong window: %d..%d", entries[0].Seq, entries[3].Seq)
	}
}

func TestAuditJSONExport(t *testing.T) {
	s := testScheduler(t)
	s.EnableAudit(16)
	if _, err := s.Select("mnist-small", 4096, EnergyEfficiency, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteAuditJSON(&buf, 10); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d entries", len(decoded))
	}
	for _, key := range []string{"seq", "at_us", "model", "batch", "policy", "device", "decision_us"} {
		if _, ok := decoded[0][key]; !ok {
			t.Fatalf("JSON missing %q: %s", key, buf.String())
		}
	}
	if !strings.Contains(buf.String(), "energy-efficiency") {
		t.Fatal("policy name missing from export")
	}
}
