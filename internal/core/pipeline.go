package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bomw/internal/opencl"
	"bomw/internal/tensor"
	"bomw/internal/trace"
)

// Pipeline is the concurrent serving path over a trained scheduler — the
// online form of the Fig. 5 system. Where Scheduler.Classify serves one
// request synchronously, the pipeline stages requests through:
//
//	admission → live batching → per-device worker queues → completion
//
// (1) Admission: a bounded queue with load-shedding backpressure. When
// the queue is full, Submit fails fast with ErrAdmissionFull instead of
// letting latency collapse — the MLPerf "Server scenario" response to
// overload. Every request carries a context for deadlines/cancellation,
// and may carry a latency SLO (PipelineRequest.Deadline, with per-model
// defaults in PipelineConfig): admission control rejects SLO-carrying
// requests that are already predicted to miss their deadline given the
// live queue state and the scheduler's latency model
// (ErrDeadlineInfeasible), so overload sheds doomed work first.
//
// (2) Live batching: arriving requests aggregate per (model, policy)
// under the offline Batcher's Window/MaxBatch semantics, but flushed by
// wall-clock timers and size triggers instead of offline trace folding.
// The batching front-end is sharded: each (model, policy) aggregation
// key hashes to one of AdmitShards independent admit loops, so distinct
// models batch and flush in parallel instead of funnelling through one
// global goroutine, while every request stream for one key still lands
// on a single shard — per-key aggregation and dispatch order are
// identical to the unsharded pipeline. The batcher is work-conserving
// (concurrency-aware): while the system is idle a request dispatches
// immediately; batches only form while earlier work is in flight, so
// batching cost is paid exactly when it buys device efficiency (§IV-C:
// batch size is the decisive variable). Requests whose context ended or
// whose deadline passed while aggregating are culled here, before any
// device time is spent.
//
// (3) Per-device worker queues: one worker goroutine per device executes
// batches in order, culling dead requests again at dequeue — a cancelled
// or deadline-expired request never reaches the execute path. Queue
// occupancy is reported back into the scheduler's spill logic
// (Config.MaxQueueDelay, §V overload adaptation), so spilling reads
// *real* queued work instead of only the device simulator's committed
// busy horizon. Deadline-carrying batches are routed through
// SelectWithDeadline so the device pick honours the tightest SLO in the
// batch, and an optional hedge (PipelineConfig.Hedge) re-submits a
// straggling batch to the second-best device when half its slack is
// spent, taking whichever result lands first.
//
// (4) Completion: results are delivered through per-request futures;
// aggregated batches are split back into per-request class slices with
// proportional energy accounting. Every future resolves exactly once,
// even when hedged executions race the primary.
type Pipeline struct {
	sched *Scheduler
	cfg   PipelineConfig

	// shards are the parallel admission/batching loops; an aggregation
	// key always hashes to the same shard (shardMask is len(shards)-1,
	// a power of two).
	shards    []*admitShard
	shardMask uint32
	shardWG   sync.WaitGroup

	closing chan struct{} // Close() was called: drain and stop
	done    chan struct{} // fully drained: releases window timers
	drained chan struct{}

	// closeMu gates admission against Close: Submit holds the read side
	// across its shard hand-off (many submitters in parallel), Close
	// takes the write side once to flip closed.
	closeMu sync.RWMutex
	closed  bool

	queues   map[string]*deviceQueue
	inflight atomic.Int64   // batches queued or executing
	workers  sync.WaitGroup // device workers + recovery prober still running

	// windowNow is the live batching window in nanoseconds. It starts at
	// cfg.Window and is rescaled at run time by SetWindowScale — the
	// fleet brownout controller widens it under overload to trade
	// latency for batch efficiency, and restores it on recovery.
	windowNow atomic.Int64

	// latEWMA tracks the virtual completion latency (arrival →
	// completion) as an EWMA over delivered batches, in nanoseconds —
	// the per-node straggler signal the cluster tier compares across the
	// fleet. Only successful deliveries fold in; failures and culls are
	// accounted elsewhere.
	latEWMA atomic.Int64

	// capacity is the admission budget (per-shard depth summed), computed
	// once at construction — the denominator of the cluster brownout
	// controller's occupancy ratio.
	capacity int64

	submitted  atomic.Int64
	shed       atomic.Int64
	infeasible atomic.Int64
	cancelled  atomic.Int64
	expired    atomic.Int64
	failed     atomic.Int64
	completed  atomic.Int64
	batches    atomic.Int64
	sizeFl     atomic.Int64
	windowFl   atomic.Int64
	idleFl     atomic.Int64
	drainFl    atomic.Int64
	retries    atomic.Int64
	failovers  atomic.Int64
	execFails  atomic.Int64
	hedges     atomic.Int64
	hedgeWins  atomic.Int64

	// testExecHook, when set, runs in each device worker before a batch
	// executes — tests use it to hold workers and fill queues
	// deterministically.
	testExecHook func(device string)
}

// PipelineConfig parameterises the serving pipeline.
type PipelineConfig struct {
	// Window is the maximum time the oldest request of a live batch may
	// wait before the batch is flushed (the Batcher.Window semantics on
	// a wall-clock timer). Defaults to 2 ms.
	Window time.Duration
	// MaxBatch flushes a batch as soon as it aggregates this many
	// samples (the Batcher.MaxBatch semantics). Defaults to 64.
	MaxBatch int
	// QueueDepth bounds the admission queue; a full queue sheds load
	// (Submit returns ErrAdmissionFull). Defaults to 256. The depth is
	// divided across AdmitShards (at least one slot per shard), so a
	// single hot model sheds at roughly QueueDepth/AdmitShards queued
	// requests — backpressure stays proportional to the paths actually
	// congested instead of letting one model consume the whole budget.
	QueueDepth int
	// AdmitShards is the number of parallel admission/batching loops.
	// Aggregation keys (model, policy, estimate-vs-classify) hash to a
	// shard, so requests for one key always meet the same batcher while
	// distinct models admit and flush concurrently. Rounded up to a
	// power of two; defaults to GOMAXPROCS capped at 8.
	AdmitShards int
	// DeviceQueueDepth bounds each device's worker queue; full device
	// queues exert backpressure on batch flushing, which in turn fills
	// admission. Defaults to 8.
	DeviceQueueDepth int
	// HoldWindow disables the work-conserving idle fast-path: aggregates
	// always wait for the window timer or the size trigger, mirroring
	// the offline Batcher exactly. Default false: a request arriving
	// into an idle system dispatches immediately.
	HoldWindow bool
	// Clock supplies the virtual time requests are charged at. Defaults
	// to wall-clock time since the pipeline was created (the serving
	// mapping internal/server uses).
	Clock func() time.Duration
	// MaxAttempts bounds how many devices one batch may try: the first
	// execution plus failover retries. On an execution error the batch
	// re-Selects with every failed device excluded and runs on the
	// next-ranked device, so one bad device degrades throughput instead
	// of failing requests. Defaults to 3.
	MaxAttempts int
	// RetryBackoff is the wall-clock pause before each failover attempt,
	// doubling per attempt. Defaults to 1 ms; negative disables backoff.
	RetryBackoff time.Duration
	// ProbeInterval is how often the recovery prober re-tests
	// quarantined devices with a one-sample probe (re-admitting them on
	// success). Defaults to 50 ms; negative disables the prober —
	// Scheduler.ProbeQuarantined can still be called manually.
	ProbeInterval time.Duration
	// DefaultSLO is the latency budget applied to requests that carry no
	// Deadline of their own (measured from admission on the pipeline
	// clock). Zero disables the default: such requests have no SLO.
	DefaultSLO time.Duration
	// ModelSLO overrides DefaultSLO per model name.
	ModelSLO map[string]time.Duration
	// DisableAdmissionControl turns off predicted-miss rejection: every
	// SLO-carrying request is admitted regardless of feasibility and
	// only culled once its deadline actually passes. Default off
	// (admission control active).
	DisableAdmissionControl bool
	// Hedge enables deadline hedging: when half an SLO-carrying batch's
	// slack has elapsed and it has not completed, the batch is
	// re-executed on the second-best device and the first result wins
	// (the "hedged requests" tail-tolerance pattern). The loser is
	// discarded; if the primary never started, it skips execution
	// entirely. Default off.
	Hedge bool
}

func (c *PipelineConfig) fillDefaults() {
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DeviceQueueDepth <= 0 {
		c.DeviceQueueDepth = 8
	}
	if c.AdmitShards <= 0 {
		c.AdmitShards = runtime.GOMAXPROCS(0)
		if c.AdmitShards > 8 {
			c.AdmitShards = 8
		}
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	for c.AdmitShards&(c.AdmitShards-1) != 0 {
		c.AdmitShards++
	}
	if c.Clock == nil {
		//bomw:wallclock the default serving clock IS the wall clock, anchored at pipeline creation; simulated callers inject their own Clock
		start := time.Now()
		//bomw:wallclock see above: wall time since creation is the default virtual-time mapping
		c.Clock = func() time.Duration { return time.Since(start) }
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 50 * time.Millisecond
	}
}

// Sentinel errors of the admission layer.
var (
	// ErrAdmissionFull is returned by Submit when the bounded admission
	// queue is at capacity — the load-shedding backpressure signal
	// (HTTP servers translate it to 503).
	ErrAdmissionFull = errors.New("core: pipeline admission queue full")
	// ErrPipelineClosed is returned by Submit after Close.
	ErrPipelineClosed = errors.New("core: pipeline closed")
	// ErrDeadlineInfeasible is returned by Submit when admission control
	// predicts that no device can complete the request within its SLO
	// given current queue state — the request is rejected before it
	// queues (HTTP servers translate it to 504 deadline_infeasible).
	ErrDeadlineInfeasible = errors.New("core: deadline infeasible at admission")
	// ErrDeadlineExceeded resolves the future of an admitted request
	// whose SLO expired before (or while) it could be executed; the
	// request is culled without spending device time.
	ErrDeadlineExceeded = errors.New("core: request deadline exceeded")
)

// PipelineRequest is one classification job entering the pipeline.
type PipelineRequest struct {
	Model  string
	Policy Policy
	// Input carries real samples (batch on dim 0). When nil the request
	// is timing-only and Batch gives the sample count — the Estimate
	// fast path replays and benchmarks use.
	Input *tensor.Tensor
	Batch int
	// Deadline is the request's latency SLO, measured from admission on
	// the pipeline clock. Zero falls back to the pipeline's per-model /
	// default SLO (PipelineConfig.ModelSLO / DefaultSLO); negative
	// explicitly opts out of any SLO.
	Deadline time.Duration
}

// Completion is the resolved outcome of one pipelined request.
type Completion struct {
	// Decision is the batch-level scheduling choice that served this
	// request (shared by every request aggregated into the batch).
	Decision Decision
	// Classes holds this request's labels (nil for timing-only
	// requests) — the request's slice of the aggregated batch output.
	Classes []int
	// BatchSize is the total sample count of the aggregated batch.
	BatchSize int
	// Wait is the aggregation delay this request paid before dispatch.
	Wait time.Duration
	// Latency is arrival → completion, including aggregation wait,
	// device queueing and execution, in virtual time.
	Latency time.Duration
	// Completed is the virtual completion timestamp.
	Completed time.Duration
	// EnergyJ is this request's proportional share of the batch energy.
	EnergyJ float64
	// Hedged reports that a hedged execution on a backup device
	// produced this result, not the primary pick.
	Hedged bool
	// Err is non-nil when the request failed (cancelled, expired,
	// execution error); all other fields may be zero then.
	Err error
}

// Future resolves to a Completion exactly once.
//
// Futures are pooled. The pool-safety invariant: a future returns to the
// pool only through the caller that consumed its completion
// (waitRelease), so a resolved future is never recycled while any waiter
// still selects on it — an abandoned Wait (context cancelled) pins its
// future out of the pool forever rather than risk handing the next
// request's completion to a stale waiter. The generation counter makes
// an (erroneous) second release of the same handle a no-op instead of a
// double-free.
type Future struct {
	ch  chan Completion
	gen atomic.Uint64

	// detached marks a future created by NewDetachedFuture: it is
	// resolved through Resolve (cluster-tier arbitration over racing node
	// submissions) instead of the pipeline's finish path, and it never
	// enters the pool — its resolved flag would otherwise leak into a
	// recycled pipeline future.
	detached bool
	resolved atomic.Bool
}

// NewDetachedFuture returns an unpooled future the caller resolves via
// Resolve. The cluster tier's hedging and migration paths use it to
// present one future over several racing node submissions: whichever
// underlying completion arrives first is Resolve()d into it, and the
// caller waits on it exactly like a pipeline future.
func NewDetachedFuture() *Future {
	return &Future{ch: make(chan Completion, 1), detached: true}
}

// Resolve delivers c to a detached future exactly once, reporting
// whether this call won the resolution (losers' completions are
// discarded — the cluster's first-result-wins arbitration). Calling
// Resolve on a pipeline-issued future is a programming error; it
// panics to surface the misuse instead of corrupting delivery.
func (f *Future) Resolve(c Completion) bool {
	if !f.detached {
		panic("core: Resolve on a pipeline-owned future")
	}
	if !f.resolved.CompareAndSwap(false, true) {
		return false
	}
	f.ch <- c // buffered(1); the CAS above makes delivery exactly-once
	return true
}

// Resolved reports whether a detached future has been resolved. Only
// meaningful for detached futures — pipeline futures resolve through
// their pipeReq's done flag, which this does not observe.
func (f *Future) Resolved() bool { return f.resolved.Load() }

var futurePool = sync.Pool{New: func() any { return &Future{ch: make(chan Completion, 1)} }}

func getFuture() *Future { return futurePool.Get().(*Future) }

// waitRelease waits like Wait and, on a successful receive, returns the
// future to the pool. Callers must be the future's sole consumer and
// must not touch f afterwards — this is the internal fast path behind
// Do, Node.Do and Play. A ctx abort leaves the future un-pooled: a
// resolution may still be in flight, and the caller may legitimately
// Wait again.
func (f *Future) waitRelease(ctx context.Context) (Completion, error) {
	gen := f.gen.Load()
	if ctx.Done() == nil {
		// Background-ish context: nothing to race the completion
		// against, so skip selectgo for a plain channel receive. This is
		// the hot closed-loop serving path.
		c := <-f.ch
		if !f.detached && f.gen.CompareAndSwap(gen, gen+1) {
			futurePool.Put(f)
		}
		return c, nil
	}
	select {
	case c := <-f.ch:
		// Sole-consumer contract holds and the buffered slot is empty:
		// the future can serve the next request. The CAS loses only if
		// another (buggy) release of this generation beat us — then the
		// pool already owns f and putting it again would double-issue it.
		// Detached futures never enter the pool (their resolved flag
		// would leak into a recycled pipeline future).
		if !f.detached && f.gen.CompareAndSwap(gen, gen+1) {
			futurePool.Put(f)
		}
		return c, nil
	case <-ctx.Done():
		return Completion{}, ctx.Err()
	}
}

// Wait blocks until the request completes or ctx is done. A ctx error
// abandons the wait but does not recall work already queued — the
// pipeline culls the request at the next stage boundary and resolves
// the future with the context error; a Wait with a fresh context still
// observes that completion (delivery is never lost to an abandoned
// wait). A future consumed through Wait is never recycled, so holding
// or re-Waiting it stays safe indefinitely.
func (f *Future) Wait(ctx context.Context) (Completion, error) {
	if ctx.Done() == nil {
		return <-f.ch, nil
	}
	select {
	case c := <-f.ch:
		return c, nil
	case <-ctx.Done():
		return Completion{}, ctx.Err()
	}
}

// PipelineStats snapshots pipeline activity.
//
// Accounting identities (after Close has drained the pipeline):
//
//	submit attempts = Submitted + Shed + Infeasible (+ validation errors)
//	Submitted = Completed = ok + Failed + Cancelled + Expired
//
// where ok is Completed minus the three error buckets — every admitted
// request resolves into exactly one of the four outcomes.
type PipelineStats struct {
	Submitted  int64 // requests accepted into admission
	Shed       int64 // requests rejected with ErrAdmissionFull
	Infeasible int64 // requests rejected with ErrDeadlineInfeasible (admission control)
	Cancelled  int64 // admitted requests culled: context ended before execution
	Expired    int64 // admitted requests culled: deadline passed before execution
	Failed     int64 // admitted requests resolved with an execution error
	Completed  int64 // futures resolved (including failures and culls)

	Batches       int64 // aggregated batches dispatched
	SizeFlushes   int64 // flushed by the MaxBatch trigger
	WindowFlushes int64 // flushed by the Window timer
	IdleFlushes   int64 // flushed by the work-conserving idle fast-path
	DrainFlushes  int64 // flushed during Close

	Retries      int64 // failover re-executions after a device error
	Failovers    int64 // batches completed on a device other than the one that failed them
	ExecFailures int64 // batches that exhausted every attempt and failed their requests

	HedgesLaunched int64 // hedged executions submitted to a backup device
	HedgesWon      int64 // hedged executions that resolved at least one request first

	InFlight int64          // batches queued or executing now
	Depth    map[string]int // per-device batches queued or executing
}

// pipeReq is one admitted request moving through the stages.
//
// pipeReqs are pooled and reference-counted. The flow path (aggregate →
// batch → worker) owns one reference from Submit; a hedge snapshot
// retains one more per request it copies. A request returns to the pool
// only when every holder has released it, and every release site runs
// after the request's future was resolved (finish) — so a pooled
// pipeReq is never resurrected under a stage that still reads it. The
// Future is NOT reset with the pipeReq: it detaches at release and is
// recycled separately by whoever consumes the completion.
type pipeReq struct {
	//bomw:ctxparam pipeReq is the per-request carrier: stages observe this request's cancellation at every queue boundary, so the ctx travels with it
	ctx      context.Context
	req      PipelineRequest
	key      aggKey        // aggregation key, computed once at Submit
	at       time.Duration // virtual arrival
	deadline time.Duration // absolute SLO expiry on the pipeline clock; 0 = none
	size     int
	fut      *Future
	done     atomic.Bool  // future resolved (guards exactly-once delivery)
	refs     atomic.Int32 // holders: flow path + hedge snapshot
}

var reqPool = sync.Pool{New: func() any { return &pipeReq{} }}

func getPipeReq() *pipeReq {
	r := reqPool.Get().(*pipeReq)
	r.refs.Store(1)
	r.done.Store(false)
	return r
}

// retain adds a holder (the hedge snapshot path).
func (r *pipeReq) retain() { r.refs.Add(1) }

// releaseReq drops one holder; the last one clears the request and
// returns it to the pool. Callers must have finished (or observed
// someone else finish) the request's future before releasing.
func (p *Pipeline) releaseReq(r *pipeReq) {
	if r.refs.Add(-1) == 0 {
		r.ctx = nil
		r.req = PipelineRequest{}
		r.key = aggKey{}
		r.at, r.deadline, r.size = 0, 0, 0
		r.fut = nil
		reqPool.Put(r)
	}
}

// dead reports whether the request must be culled at virtual time now
// and with which error: context cancellation wins over SLO expiry.
func (r *pipeReq) dead(now time.Duration) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if r.deadline > 0 && now > r.deadline {
		return ErrDeadlineExceeded
	}
	return nil
}

// aggKey identifies one live aggregate. Timing-only and real requests
// never mix: their execution paths differ.
type aggKey struct {
	model    string
	pol      Policy
	estimate bool
}

type aggregate struct {
	gen        uint64
	reqs       []*pipeReq
	size       int
	firstAt    time.Duration
	timerArmed bool
	wt         *windowTimer // reusable window timer; survives pool cycles
}

// windowTimer is a reusable window-flush timer. The fields below t are
// rewritten by the owning shard goroutine only while the timer is
// provably disarmed (freshly allocated, or Stop returned true), so the
// fire callback — synchronised with the arming Reset by the runtime
// timer machinery — always reads the values of its own arming. A timer
// whose Stop returns false has a callback in flight reading the old
// values; it is abandoned (the callback's flush message goes stale via
// the generation check) and the aggregate allocates a fresh one.
type windowTimer struct {
	t   *time.Timer
	p   *Pipeline
	sh  *admitShard
	key aggKey
	gen uint64
}

func (wt *windowTimer) fire() {
	select {
	case wt.sh.flushCh <- flushMsg{key: wt.key, gen: wt.gen}:
	case <-wt.p.done:
	}
}

type flushMsg struct {
	key aggKey
	gen uint64
}

// admitShard is one independent admission/batching loop. All state below
// the channels is loop-local: only this shard's goroutine touches it.
type admitShard struct {
	admit   chan *pipeReq
	flushCh chan flushMsg
	nudge   chan struct{} // worker → shard: system went idle

	aggs map[aggKey]*aggregate
	gen  uint64

	// openAggs mirrors len(aggs) for readers outside the shard goroutine
	// (batchDone's nudge filter). Best-effort: a stale read costs at most
	// one skipped opportunistic nudge, never a stuck aggregate.
	openAggs atomic.Int32
}

// shardFor hashes an aggregation key to its shard (FNV-1a over the model
// name, mixed with policy and path). Same key → same shard, always: the
// per-key batching semantics are those of a single admit loop.
func (p *Pipeline) shardFor(key aggKey) *admitShard {
	h := uint32(2166136261)
	for i := 0; i < len(key.model); i++ {
		h = (h ^ uint32(key.model[i])) * 16777619
	}
	h ^= uint32(key.pol) * 0x9e3779b1
	if key.estimate {
		h ^= 0x85ebca6b
	}
	return p.shards[h&p.shardMask]
}

// batchWork is one flushed batch travelling to a device worker.
type batchWork struct {
	key       aggKey
	reqs      []*pipeReq
	size      int
	flushAt   time.Duration
	deadline  time.Duration // tightest absolute deadline in the batch; 0 = none
	dec       Decision
	charge    time.Duration // virtual occupancy charged to the device queue
	clkCharge time.Duration // clock occupancy charged to the device queue

	hedgeReqs  []*pipeReq // snapshot for the hedge path (immutable)
	hedgeTimer *time.Timer
}

// Pools for the per-batch carriers. Both keep their []*pipeReq backing
// across reuse — the flush path copy-culls the aggregate's requests into
// the batchWork's own backing, so steady-state batching allocates
// neither carriers nor slices. Hedged batches opt out of pooling (the
// timer closure and its snapshot alias the work), trading a rare
// allocation for an obviously safe lifecycle.
var (
	aggPool = sync.Pool{New: func() any { return &aggregate{} }}
	bwPool  = sync.Pool{New: func() any { return &batchWork{} }}
)

func getAggregate(gen uint64, firstAt time.Duration) *aggregate {
	a := aggPool.Get().(*aggregate)
	a.gen, a.firstAt, a.size, a.timerArmed = gen, firstAt, 0, false
	a.reqs = a.reqs[:0] // backing retained from the previous cycle
	return a
}

func putAggregate(a *aggregate) {
	clearReqs(a.reqs)
	a.reqs = a.reqs[:0]
	aggPool.Put(a)
}

// clearReqs drops the pipeReq aliases so a pooled backing array never
// pins (or worse, resurrects) requests from a previous cycle.
func clearReqs(s []*pipeReq) {
	for i := range s {
		s[i] = nil
	}
}

func getBatchWork() *batchWork {
	w := bwPool.Get().(*batchWork)
	reqs := w.reqs[:0] // keep the recycled backing
	*w = batchWork{}
	w.reqs = reqs
	return w
}

// retireBatchWork recycles a finished batch. Hedged batches are left to
// the GC: the hedge timer closure and its snapshot may still hold the
// work.
func retireBatchWork(w *batchWork) {
	if w.hedgeTimer != nil {
		return
	}
	clearReqs(w.reqs)
	w.reqs = w.reqs[:0]
	bwPool.Put(w)
}

// deviceQueue tracks one device worker's occupancy in two currencies:
// queued *virtual* work (EWMA of the simulator's per-sample latency —
// what the scheduler's spill logic understands) and queued *clock* work
// (EWMA of elapsed pipeline-clock time per sample, which also sees wall
// stalls the simulator cannot: a wedged worker, host contention). The
// probe reports the larger of the two, so both spilling and deadline
// admission read the worst honest estimate.
type deviceQueue struct {
	name string
	ch   chan *batchWork

	mu           sync.Mutex
	pending      time.Duration // estimated queued virtual work
	perSample    time.Duration // EWMA virtual latency per sample
	clkPending   time.Duration // estimated queued clock work
	clkPerSample time.Duration // EWMA clock latency per sample
	depth        int           // batches queued or executing
}

// chargeBatch books the estimated virtual and clock work of a batch of
// n samples.
func (dq *deviceQueue) chargeBatch(n int) (virt, clk time.Duration) {
	dq.mu.Lock()
	defer dq.mu.Unlock()
	virt = dq.perSample * time.Duration(n)
	clk = dq.clkPerSample * time.Duration(n)
	dq.pending += virt
	dq.clkPending += clk
	dq.depth++
	return virt, clk
}

// completeBatch releases the charges and folds the observed latencies
// into the per-sample estimates.
func (dq *deviceQueue) completeBatch(virtCharge, clkCharge, obsVirt, obsClk time.Duration, n int) {
	dq.mu.Lock()
	defer dq.mu.Unlock()
	dq.pending -= virtCharge
	if dq.pending < 0 {
		dq.pending = 0
	}
	dq.clkPending -= clkCharge
	if dq.clkPending < 0 {
		dq.clkPending = 0
	}
	dq.depth--
	if n > 0 {
		if obsVirt > 0 {
			per := obsVirt / time.Duration(n)
			if dq.perSample == 0 {
				dq.perSample = per
			} else {
				dq.perSample = (7*dq.perSample + per) / 8
			}
		}
		if obsClk > 0 {
			per := obsClk / time.Duration(n)
			if dq.clkPerSample == 0 {
				dq.clkPerSample = per
			} else {
				dq.clkPerSample = (7*dq.clkPerSample + per) / 8
			}
		}
	}
}

func (dq *deviceQueue) occupancy() time.Duration {
	dq.mu.Lock()
	defer dq.mu.Unlock()
	if dq.clkPending > dq.pending {
		return dq.clkPending
	}
	return dq.pending
}

func (dq *deviceQueue) queued() int {
	dq.mu.Lock()
	defer dq.mu.Unlock()
	return dq.depth
}

// NewPipeline builds and starts the serving pipeline over a scheduler:
// AdmitShards admit/batching goroutines plus one worker per device. The
// pipeline registers its queue occupancy with the scheduler so spill
// decisions (Config.MaxQueueDelay) observe real queued work; only one
// pipeline should serve a scheduler at a time. Call Close to drain and
// stop.
func NewPipeline(sched *Scheduler, cfg PipelineConfig) *Pipeline {
	cfg.fillDefaults()
	p := &Pipeline{
		sched:   sched,
		cfg:     cfg,
		closing: make(chan struct{}),
		done:    make(chan struct{}),
		drained: make(chan struct{}),
		queues:  map[string]*deviceQueue{},
	}
	p.windowNow.Store(int64(cfg.Window))
	perShard := cfg.QueueDepth / cfg.AdmitShards
	if perShard < 1 {
		perShard = 1
	}
	p.capacity = int64(perShard * cfg.AdmitShards)
	p.shards = make([]*admitShard, cfg.AdmitShards)
	p.shardMask = uint32(cfg.AdmitShards - 1)
	for i := range p.shards {
		p.shards[i] = &admitShard{
			admit:   make(chan *pipeReq, perShard),
			flushCh: make(chan flushMsg),
			nudge:   make(chan struct{}, 1),
			aggs:    map[aggKey]*aggregate{},
		}
	}
	for _, name := range sched.Devices() {
		dq := &deviceQueue{name: name, ch: make(chan *batchWork, cfg.DeviceQueueDepth)}
		p.queues[name] = dq
		// Each device contributes its queue slots plus the one executing
		// batch to the occupancy Load can legitimately report.
		p.capacity += int64(cfg.DeviceQueueDepth + 1)
	}
	sched.SetQueueProbe(p.probeQueue)
	for _, dq := range p.queues {
		p.workers.Add(1)
		go p.worker(dq)
	}
	if cfg.ProbeInterval > 0 {
		p.workers.Add(1)
		go p.prober()
	}
	for _, sh := range p.shards {
		p.shardWG.Add(1)
		go p.shardLoop(sh)
	}
	return p
}

// prober periodically re-tests quarantined devices so recovered hardware
// rejoins the schedulable set without operator action.
func (p *Pipeline) prober() {
	defer p.workers.Done()
	//bomw:wallclock recovery probing is a live serving activity: quarantined hardware is re-tested on real time, not simulated time
	tick := time.NewTicker(p.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			p.sched.ProbeQuarantined(p.cfg.Clock())
		case <-p.closing:
			return
		}
	}
}

// probeQueue reports the estimated delay queued ahead of new work on a
// device — the scheduler adds it to the device's committed busy horizon
// when deciding whether to spill, and the deadline predictor
// (FeasibleWithin / SelectWithDeadline) folds it into completion
// estimates.
func (p *Pipeline) probeQueue(device string) time.Duration {
	if dq := p.queues[device]; dq != nil {
		return dq.occupancy()
	}
	return 0
}

// slo resolves the effective SLO of a request: its own Deadline, else
// the per-model default, else the pipeline default; negative opts out.
func (p *Pipeline) slo(req PipelineRequest) time.Duration {
	d := req.Deadline
	if d == 0 {
		if m, ok := p.cfg.ModelSLO[req.Model]; ok {
			d = m
		} else {
			d = p.cfg.DefaultSLO
		}
	}
	if d < 0 {
		return 0
	}
	return d
}

// Submit admits one request. It never blocks: a full admission queue
// sheds the request with ErrAdmissionFull, a request predicted to miss
// its SLO is rejected with ErrDeadlineInfeasible, a closed pipeline
// returns ErrPipelineClosed, and validation failures (including an
// already-cancelled context) surface immediately. On success the
// returned future resolves exactly once.
func (p *Pipeline) Submit(ctx context.Context, req PipelineRequest) (*Future, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		// Admitting already-dead work would spend queue slots and
		// potentially device time on a request nobody is waiting for.
		return nil, err
	}
	size := req.Batch
	if req.Input != nil {
		if req.Input.Rank() < 1 || req.Input.Dim(0) <= 0 {
			return nil, fmt.Errorf("core: pipeline input needs a positive batch dimension")
		}
		size = req.Input.Dim(0)
	}
	if size <= 0 {
		return nil, fmt.Errorf("core: batch size must be positive, got %d", size)
	}
	spec, err := p.sched.disp.Spec(req.Model)
	if err != nil {
		return nil, err
	}
	if !p.sched.hasPolicy(req.Policy) {
		return nil, fmt.Errorf("core: unknown policy %v", req.Policy)
	}
	if req.Input != nil {
		per := 1
		for _, d := range spec.InputShape {
			per *= d
		}
		if req.Input.Len() != size*per {
			return nil, fmt.Errorf("core: %s expects %d values per sample, input carries %d for batch %d",
				req.Model, per, req.Input.Len(), size)
		}
	}
	slo := p.slo(req)
	if slo > 0 && !p.cfg.DisableAdmissionControl {
		feasible, predicted, ferr := p.sched.FeasibleWithin(req.Model, size, slo, p.cfg.Clock())
		if ferr != nil {
			return nil, ferr
		}
		if !feasible {
			p.infeasible.Add(1)
			return nil, fmt.Errorf("%w: %s batch %d predicted %v against SLO %v",
				ErrDeadlineInfeasible, req.Model, size, predicted, slo)
		}
	}

	r := getPipeReq()
	r.ctx, r.req, r.size = ctx, req, size
	r.key = aggKey{model: req.Model, pol: req.Policy, estimate: req.Input == nil}
	r.fut = getFuture()
	sh := p.shardFor(r.key)
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		recycleUnissued(r.fut)
		p.releaseReq(r)
		return nil, ErrPipelineClosed
	}
	if slo > 0 {
		r.at = p.cfg.Clock()
		r.deadline = r.at + slo
	} else {
		// No deadline math needs the arrival time here: defer the stamp
		// to the shard's burst drain, where one clock read covers every
		// request in the burst instead of one read per Submit.
		r.at = -1
	}
	fut := r.fut // capture before the hand-off: r may be recycled the instant the shard owns it
	select {
	case sh.admit <- r:
		p.submitted.Add(1)
		p.closeMu.RUnlock()
		return fut, nil
	default:
		p.shed.Add(1)
		p.closeMu.RUnlock()
		recycleUnissued(fut)
		p.releaseReq(r)
		return nil, ErrAdmissionFull
	}
}

// recycleUnissued returns a future that was never handed to a caller
// (Submit failed before issuing it): its buffered slot is empty and
// nobody can be waiting, so it goes straight back to the pool.
func recycleUnissued(f *Future) {
	gen := f.gen.Load()
	if f.gen.CompareAndSwap(gen, gen+1) {
		futurePool.Put(f)
	}
}

// Do submits a request and waits for its completion — the synchronous
// convenience the HTTP handlers and benchmarks use.
func (p *Pipeline) Do(ctx context.Context, req PipelineRequest) (Completion, error) {
	fut, err := p.Submit(ctx, req)
	if err != nil {
		return Completion{}, err
	}
	return fut.waitRelease(ctx)
}

// Close stops admission, flushes every open aggregate, drains the
// device queues and waits for all in-flight work to complete. Every
// accepted request's future resolves before Close returns. Close is
// idempotent.
func (p *Pipeline) Close() {
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		<-p.drained
		return
	}
	p.closed = true
	p.closeMu.Unlock()
	// No Submit can be mid-send past this point (sends happen under the
	// read lock), so once the shards observe closing and self-drain,
	// admission is empty for good.
	close(p.closing)
	p.shardWG.Wait()
	for _, dq := range p.queues {
		close(dq.ch)
	}
	// Wait for the workers to finish every queued batch (and the prober
	// to exit) before reporting the pipeline drained: the Close contract
	// is that every accepted request's future has resolved. Workers still
	// signal idleness on the buffered nudge channels; nothing reads them
	// anymore, which is fine — sends are non-blocking.
	p.workers.Wait()
	close(p.done) // release pending window timers
	close(p.drained)
	p.sched.SetQueueProbe(nil)
}

// Load is the pipeline's instantaneous occupancy — requests waiting in
// admission plus batches queued or executing — as a single cheap signal.
// The cluster tier's least-loaded router reads it on every routing
// decision, so it deliberately avoids the locks and map allocation of
// Stats.
func (p *Pipeline) Load() int64 {
	n := p.inflight.Load()
	for _, sh := range p.shards {
		n += int64(len(sh.admit))
	}
	return n
}

// Capacity is the pipeline's occupancy budget: admission slots plus
// device queue slots plus one executing batch per device — the
// denominator that turns Load into the occupancy ratio the fleet
// brownout controller thresholds on.
func (p *Pipeline) Capacity() int64 { return p.capacity }

// AvgLatency is the EWMA of delivered-batch completion latency (oldest
// arrival → completion, virtual time). It is the cluster tier's
// per-node straggler signal: a node whose EWMA is a fleet-p99 outlier
// goes on probation. Zero until the first batch delivers.
func (p *Pipeline) AvgLatency() time.Duration {
	return time.Duration(p.latEWMA.Load())
}

// SetWindowScale rescales the live batching window to scale×cfg.Window,
// clamped to [1, 8]. The brownout controller widens the window under
// fleet overload (bigger batches, better device efficiency, worse
// latency) and restores it on recovery. Aggregates already armed keep
// their old window; new arrivals see the new one.
func (p *Pipeline) SetWindowScale(scale float64) {
	if scale < 1 {
		scale = 1
	} else if scale > 8 {
		scale = 8
	}
	p.windowNow.Store(int64(float64(p.cfg.Window) * scale))
}

// window is the live batching window (cfg.Window × the current scale).
func (p *Pipeline) window() time.Duration {
	return time.Duration(p.windowNow.Load())
}

// QueueDelay estimates the delay new work would observe behind already
// queued batches — the worst per-device occupancy estimate (virtual or
// clock EWMA, whichever is larger). Servers derive the Retry-After hint
// of admission-shed responses from it, so clients back off proportional
// to the actual backlog instead of a fixed guess.
func (p *Pipeline) QueueDelay() time.Duration {
	var worst time.Duration
	for _, dq := range p.queues {
		if o := dq.occupancy(); o > worst {
			worst = o
		}
	}
	return worst
}

// Stats snapshots pipeline activity.
func (p *Pipeline) Stats() PipelineStats {
	st := PipelineStats{
		Submitted:      p.submitted.Load(),
		Shed:           p.shed.Load(),
		Infeasible:     p.infeasible.Load(),
		Cancelled:      p.cancelled.Load(),
		Expired:        p.expired.Load(),
		Failed:         p.failed.Load(),
		Completed:      p.completed.Load(),
		Batches:        p.batches.Load(),
		SizeFlushes:    p.sizeFl.Load(),
		WindowFlushes:  p.windowFl.Load(),
		IdleFlushes:    p.idleFl.Load(),
		DrainFlushes:   p.drainFl.Load(),
		Retries:        p.retries.Load(),
		Failovers:      p.failovers.Load(),
		ExecFailures:   p.execFails.Load(),
		HedgesLaunched: p.hedges.Load(),
		HedgesWon:      p.hedgeWins.Load(),
		InFlight:       p.inflight.Load(),
		Depth:          map[string]int{},
	}
	for name, dq := range p.queues {
		st.Depth[name] = dq.queued()
	}
	return st
}

// ---- stage 2: the sharded admit/batching loops -------------------------

func (p *Pipeline) shardLoop(sh *admitShard) {
	defer p.shardWG.Done()
	for {
		select {
		case r := <-sh.admit:
			// Greedy burst drain: one clock read covers every request
			// already queued behind this one — under load the shard pays
			// one Clock() per wake-up instead of one per request.
			now := p.cfg.Clock()
			p.ingest(sh, r, now)
			sh.drainAdmit(p, now)
			if len(sh.aggs) != 0 && !p.cfg.HoldWindow && p.idle() {
				// The system looks drained, but "idle" here often means
				// the shard outran a wave of clients that are runnable
				// and about to submit (on few cores, the admission send
				// readies this shard ahead of them). Yield once so their
				// requests land, then re-drain — the difference between
				// dispatching a splintered batch and a full one.
				runtime.Gosched()
				sh.drainAdmit(p, now)
			}
			p.idleSweep(sh, now)
			if len(sh.aggs) != 0 {
				p.armTimers(sh)
			}
		case m := <-sh.flushCh:
			if p.flushKey(sh, m.key, m.gen, p.cfg.Clock()) {
				p.windowFl.Add(1)
			}
		case <-sh.nudge:
			// A worker drained the system: dispatch whatever aggregated
			// while it was busy instead of waiting out the window.
			p.idleSweep(sh, p.cfg.Clock())
		case <-p.closing:
			p.drainShard(sh)
			return
		}
	}
}

// drainAdmit greedily ingests everything already queued on the shard's
// admission channel.
func (sh *admitShard) drainAdmit(p *Pipeline, now time.Duration) {
	for {
		select {
		case r := <-sh.admit:
			p.ingest(sh, r, now)
		default:
			return
		}
	}
}

// idleSweep is the work-conserving flush: once nothing is in flight and
// nothing is queued, every open aggregate dispatches immediately instead
// of waiting out its window.
func (p *Pipeline) idleSweep(sh *admitShard, now time.Duration) {
	if len(sh.aggs) == 0 || p.cfg.HoldWindow || !p.idle() {
		return
	}
	for key, agg := range sh.aggs {
		if p.flushKey(sh, key, agg.gen, now) {
			p.idleFl.Add(1)
		}
	}
}

// drainShard empties this shard's admission queue and flushes its open
// aggregates. By the time closing is observable, Submit can no longer
// send (Close flipped closed under the write lock first), so one
// non-blocking sweep drains admission for good.
func (p *Pipeline) drainShard(sh *admitShard) {
	for {
		select {
		case r := <-sh.admit:
			p.ingest(sh, r, p.cfg.Clock())
			continue
		default:
		}
		break
	}
	now := p.cfg.Clock()
	for key, agg := range sh.aggs {
		if p.flushKey(sh, key, agg.gen, now) {
			p.drainFl.Add(1)
		}
	}
}

func (p *Pipeline) idle() bool {
	if p.inflight.Load() != 0 {
		return false
	}
	for _, sh := range p.shards {
		if len(sh.admit) != 0 {
			return false
		}
	}
	return true
}

func (p *Pipeline) ingest(sh *admitShard, r *pipeReq, now time.Duration) {
	if r.at < 0 {
		r.at = now // deferred arrival stamp (no-SLO fast path in Submit)
	}
	if err := r.dead(now); err != nil {
		p.finish(r, &Completion{Err: err})
		p.releaseReq(r)
		return
	}
	key := r.key
	agg := sh.aggs[key]
	if agg == nil {
		sh.gen++
		agg = getAggregate(sh.gen, r.at)
		sh.aggs[key] = agg
		sh.openAggs.Add(1)
	}
	agg.reqs = append(agg.reqs, r)
	agg.size += r.size
	if agg.size >= p.cfg.MaxBatch {
		// The size trigger fires inline; the work-conserving idle flush
		// runs as a post-drain sweep (idleSweep) so a burst is judged
		// whole, not per request.
		if p.flushKey(sh, key, agg.gen, now) {
			p.sizeFl.Add(1)
		}
	}
}

// armTimers arms the window timer of every aggregate still open after a
// burst drain. Arming happens here, not per ingest: an aggregate that
// forms and flushes within one burst (the common closed-loop rhythm)
// never touches a timer at all, and the ones that do survive arm exactly
// once. Armed timers are cancelled on flush and reused across pool
// cycles, so steady-state batching neither allocates timers nor lets
// stale ones fire through the runtime timer wheel.
func (p *Pipeline) armTimers(sh *admitShard) {
	for key, agg := range sh.aggs {
		if agg.timerArmed {
			continue
		}
		agg.timerArmed = true
		if wt := agg.wt; wt != nil {
			wt.p, wt.sh, wt.key, wt.gen = p, sh, key, agg.gen
			wt.t.Reset(p.window())
		} else {
			wt = &windowTimer{p: p, sh: sh, key: key, gen: agg.gen}
			agg.wt = wt
			//bomw:wallclock live batching flushes on real elapsed time — the Window SLO is a wall-clock bound on aggregation delay
			wt.t = time.AfterFunc(p.window(), wt.fire)
		}
	}
}

// cullLive filters reqs down to the ones still worth executing at
// virtual time now, resolving dead ones (context ended, deadline
// passed) with their error and skipping requests another path already
// resolved. Dropped requests lose the flow path's reference here. The
// returned slice reuses reqs' backing array.
func (p *Pipeline) cullLive(reqs []*pipeReq, now time.Duration) ([]*pipeReq, int) {
	live := reqs[:0]
	size := 0
	for _, r := range reqs {
		if r.done.Load() {
			// A hedged execution already resolved it; the flow path is
			// finished with this request.
			p.releaseReq(r)
			continue
		}
		if err := r.dead(now); err != nil {
			p.finish(r, &Completion{Err: err})
			p.releaseReq(r)
			continue
		}
		live = append(live, r)
		size += r.size
	}
	return live, size
}

// flushKey dispatches the aggregate identified by (key, gen) on shard
// sh. Stale generations (already flushed, slot reused) are ignored.
// Reports whether a batch was actually dispatched.
func (p *Pipeline) flushKey(sh *admitShard, key aggKey, gen uint64, now time.Duration) bool {
	agg := sh.aggs[key]
	if agg == nil || agg.gen != gen {
		return false
	}
	delete(sh.aggs, key)
	sh.openAggs.Add(-1)
	if agg.timerArmed {
		// Cancel the pending window timer so it neither fires a stale
		// flush nor churns the runtime timer wheel. Stop failing means
		// the fire callback is already in flight with this arming's
		// values — abandon the timer (the callback's message goes stale
		// the moment the map entry above is gone) and let the next cycle
		// allocate a fresh one.
		if !agg.wt.t.Stop() {
			agg.wt = nil
		}
		agg.timerArmed = false
	}

	// Copy-cull the aggregate's requests into the batch carrier's own
	// backing — requests that died while aggregating resolve here,
	// before any device time — then recycle the aggregate immediately.
	w := getBatchWork()
	size := 0
	for _, r := range agg.reqs {
		if r.done.Load() {
			p.releaseReq(r)
			continue
		}
		if err := r.dead(now); err != nil {
			p.finish(r, &Completion{Err: err})
			p.releaseReq(r)
			continue
		}
		w.reqs = append(w.reqs, r)
		size += r.size
	}
	putAggregate(agg)
	live := w.reqs
	if len(live) == 0 {
		retireBatchWork(w)
		return false
	}

	// The tightest SLO in the batch drives the device pick: a
	// deadline-carrying batch routes through SelectWithDeadline so the
	// choice honours the SLO; unconstrained batches take the memoised
	// classifier fast path (same decision as Select, minus the feature
	// extraction and forest walk on repeat (model, bucket) keys).
	var minDL time.Duration
	for _, r := range live {
		if r.deadline > 0 && (minDL == 0 || r.deadline < minDL) {
			minDL = r.deadline
		}
	}
	var dec Decision
	var err error
	if minDL > 0 {
		slack := minDL - now
		if slack <= 0 {
			slack = time.Nanosecond // culled above, so only a clock-edge race lands here
		}
		var dd DeadlineDecision
		dd, err = p.sched.SelectWithDeadline(key.model, size, slack, now)
		dec = dd.Decision
		dec.Policy = key.pol
	} else {
		dec, err = p.sched.SelectCached(key.model, size, key.pol, now)
	}
	if err != nil {
		for _, r := range live {
			p.finish(r, &Completion{Err: err})
			p.releaseReq(r)
		}
		retireBatchWork(w)
		return false
	}
	dq := p.queues[dec.Device]
	if dq == nil { // defensive: scheduler named an unknown device
		err := fmt.Errorf("core: pipeline has no queue for device %q", dec.Device)
		for _, r := range live {
			p.finish(r, &Completion{Decision: dec, Err: err})
			p.releaseReq(r)
		}
		retireBatchWork(w)
		return false
	}
	w.key, w.size, w.flushAt, w.deadline, w.dec = key, size, now, minDL, dec
	w.charge, w.clkCharge = dq.chargeBatch(size)
	if p.cfg.Hedge && minDL > 0 {
		// Snapshot the request list: the worker compacts w.reqs in place
		// while the hedge goroutine reads its own copy. Each snapshotted
		// request is retained for the hedge path; the batch itself opts
		// out of pooling (retireBatchWork skips hedged work).
		w.hedgeReqs = append([]*pipeReq(nil), live...)
		for _, r := range w.hedgeReqs {
			r.retain()
		}
		slack := minDL - now
		work := w
		//bomw:wallclock hedging races real stragglers: the half-slack trigger must fire on the wall clock the straggler is stuck on
		w.hedgeTimer = time.AfterFunc(slack/2, func() { p.hedge(work) })
	}
	p.inflight.Add(1)
	p.batches.Add(1)
	// A full device queue blocks here: backpressure propagates through
	// the shard's admit loop into its bounded admission queue, which
	// sheds.
	dq.ch <- w
	return true
}

// ---- stage 3: per-device workers ---------------------------------------

func (p *Pipeline) worker(dq *deviceQueue) {
	defer p.workers.Done()
	for work := range dq.ch {
		p.runBatch(dq, work)
	}
}

// batchDone retires one in-flight batch, waking the batchers when the
// system went idle.
func (p *Pipeline) batchDone() {
	if p.inflight.Add(-1) == 0 {
		// Wake every shard: nothing left to amortise against, and any of
		// them may be sitting on an open aggregate. The nudge is sent
		// even to shards with nothing open — pre-readying the shard here
		// keeps the next admission send from goready-ing it into the
		// scheduler's run-next slot ahead of the other just-completed
		// clients, which would drain a one-request burst and collapse
		// batching into a serialized request-per-batch regime.
		for _, sh := range p.shards {
			select {
			case sh.nudge <- struct{}{}:
			default:
			}
		}
	}
}

// stopHedge disarms a pending hedge. When Stop reports the timer never
// fired (and now never will), the hedge function is guaranteed not to
// run, so this path owns — and releases — the snapshot's references;
// otherwise hedge() is running (or already ran) and its deferred
// release owns them. Exactly one path releases.
func (p *Pipeline) stopHedge(w *batchWork) {
	if w.hedgeTimer != nil && w.hedgeTimer.Stop() {
		for i, r := range w.hedgeReqs {
			p.releaseReq(r)
			w.hedgeReqs[i] = nil
		}
	}
}

// executeAttempt runs one batch attempt on the device dec names,
// releasing the attempt's queue charges (dq may be nil when the failover
// device has no queue) and folding the observed virtual and clock
// latencies into the queue's per-sample estimates.
func (p *Pipeline) executeAttempt(dq *deviceQueue, key aggKey, reqs []*pipeReq, size int, dec Decision, virtCharge, clkCharge, clkStart time.Duration) (*opencl.Result, error) {
	now := p.cfg.Clock()
	var res *opencl.Result
	var err error
	if key.estimate {
		res, err = p.sched.rt.Estimate(dec.Device, key.model, size, now)
	} else {
		res, err = p.sched.rt.Classify(dec.Device, key.model, concatInputs(reqs, size), now)
	}
	var observed time.Duration
	if err == nil {
		observed = res.Latency()
	}
	if dq != nil {
		dq.completeBatch(virtCharge, clkCharge, observed, p.cfg.Clock()-clkStart, size)
	}
	return res, err
}

// runBatch executes one flushed batch with bounded retry/failover: on an
// execution error the batch re-Selects with every failed device excluded
// and retries on the next-ranked device (after a doubling backoff), so a
// failing device degrades throughput instead of failing every request
// aggregated into the batch. Retries run inline on this worker — they
// never re-enqueue onto another worker's channel, which keeps the drain
// path deadlock-free; the runtime's per-device submit lock serialises
// the cross-device execution with that device's own worker.
//
// Before every attempt — the first and each retry — dead requests are
// culled: a cancelled or deadline-expired request never reaches the
// execute path, and in particular is never retried on a second device
// after its SLO has passed.
func (p *Pipeline) runBatch(dq *deviceQueue, w *batchWork) {
	clkStart := p.cfg.Clock()
	if p.testExecHook != nil {
		p.testExecHook(dq.name)
	}
	live, size := p.cullLive(w.reqs, p.cfg.Clock())
	if size == 0 {
		// Everything died (or a hedge won) while queued: release the
		// charge without spending device time — the "cancelled loser"
		// path of a hedge that fired before the primary started.
		dq.completeBatch(w.charge, w.clkCharge, 0, 0, 0)
		p.stopHedge(w)
		p.batchDone()
		retireBatchWork(w)
		return
	}
	dec := w.dec
	res, err := p.executeAttempt(dq, w.key, live, size, dec, w.charge, w.clkCharge, clkStart)
	if err != nil {
		excluded := map[string]bool{dec.Device: true}
		p.sched.ReportExecution(dec.Device, err)
		for attempt := 1; err != nil && attempt < p.cfg.MaxAttempts; attempt++ {
			if p.cfg.RetryBackoff > 0 {
				//bomw:wallclock failover backoff pauses the real worker goroutine; a virtual-clock sleep would not give the device time to recover
				time.Sleep(p.cfg.RetryBackoff << (attempt - 1))
			}
			// Deadlines keep ticking through failures and backoff; an
			// expired request must not fail over to another device.
			live, size = p.cullLive(live, p.cfg.Clock())
			if size == 0 {
				break
			}
			next, serr := p.sched.SelectExcluding(w.key.model, size, w.key.pol, p.cfg.Clock(), excluded)
			if serr != nil {
				break // nowhere left to fail over to
			}
			p.retries.Add(1)
			rq := p.queues[next.Device]
			var charge, clkCharge time.Duration
			if rq != nil {
				charge, clkCharge = rq.chargeBatch(size)
			}
			res, err = p.executeAttempt(rq, w.key, live, size, next, charge, clkCharge, p.cfg.Clock())
			p.sched.ReportExecution(next.Device, err)
			if err != nil {
				excluded[next.Device] = true
				continue
			}
			dec = next
			p.failovers.Add(1)
		}
	} else {
		p.sched.ReportExecution(dec.Device, nil)
	}
	p.stopHedge(w)
	if size == 0 {
		// Every surviving request expired or was cancelled during the
		// retry loop; their futures are resolved and their flow
		// references released (cullLive).
		p.batchDone()
		retireBatchWork(w)
		return
	}
	if err == nil {
		_ = p.sched.Observe(dec, res)
	}
	p.batchDone()
	if err != nil {
		p.execFails.Add(1)
		for _, r := range live {
			p.finish(r, &Completion{Decision: dec, Err: err})
			p.releaseReq(r)
		}
		retireBatchWork(w)
		return
	}
	p.deliver(live, size, w.flushAt, dec, res, false)
	for _, r := range live {
		p.releaseReq(r)
	}
	retireBatchWork(w)
}

// hedge re-executes a straggling deadline-carrying batch on the
// second-best device — the tail-tolerance "hedged requests" pattern:
// armed at flush time to fire once half the batch's slack has elapsed,
// it races the primary execution and whichever result lands first
// resolves the futures (per-request exactly-once delivery arbitrates).
// If the primary had not started yet, it finds every request resolved
// at dequeue and skips execution entirely — the hedge effectively
// cancelled it.
func (p *Pipeline) hedge(w *batchWork) {
	// This path owns the snapshot's references (stopHedge only releases
	// when it disarms the timer before it fires); drop them on every
	// exit so the requests can return to the pool.
	defer func() {
		for i, r := range w.hedgeReqs {
			if r != nil {
				p.releaseReq(r)
				w.hedgeReqs[i] = nil
			}
		}
	}()
	select {
	case <-p.closing:
		return // the drain path resolves everything; don't race shutdown
	default:
	}
	now := p.cfg.Clock()
	var reqs []*pipeReq
	size := 0
	for _, r := range w.hedgeReqs {
		if r.done.Load() || r.dead(now) != nil {
			continue // resolved, cancelled or expired: not worth hedging
		}
		reqs = append(reqs, r)
		size += r.size
	}
	if size == 0 {
		return
	}
	next, err := p.sched.SelectExcluding(w.key.model, size, w.key.pol, now, map[string]bool{w.dec.Device: true})
	if err != nil {
		return // single-device system or everything excluded: no backup
	}
	p.hedges.Add(1)
	rq := p.queues[next.Device]
	var charge, clkCharge time.Duration
	if rq != nil {
		charge, clkCharge = rq.chargeBatch(size)
	}
	res, err := p.executeAttempt(rq, w.key, reqs, size, next, charge, clkCharge, now)
	p.sched.ReportExecution(next.Device, err)
	if err != nil {
		return // the primary attempt still owns the batch
	}
	next.Policy = w.key.pol
	if n := p.deliver(reqs, size, w.flushAt, next, res, true); n > 0 {
		p.hedgeWins.Add(1)
		_ = p.sched.Observe(next, res)
	}
}

// deliver splits a batch result back into per-request completions
// (stage 4), reporting how many futures this call actually resolved —
// racing hedged and primary executions each call deliver, and the
// per-request done flag lets exactly one win each future.
func (p *Pipeline) deliver(reqs []*pipeReq, size int, flushAt time.Duration, dec Decision, res *opencl.Result, hedged bool) int {
	resolved := 0
	off := 0
	// One completion template per batch, patched per request — the
	// Decision payload (strings, feature slice header) copies once here
	// instead of once per request.
	c := Completion{
		Decision:  dec,
		BatchSize: size,
		Completed: res.Completed,
		Hedged:    hedged,
	}
	energyPer := res.EnergyJ / float64(size)
	for _, r := range reqs {
		c.Wait = flushAt - r.at
		c.Latency = res.Completed - r.at
		c.EnergyJ = energyPer * float64(r.size)
		c.Classes = nil
		if res.Classes != nil {
			c.Classes = append([]int(nil), res.Classes[off:off+r.size]...)
		}
		off += r.size
		if p.finish(r, &c) {
			resolved++
		}
	}
	if resolved > 0 {
		// Fold the batch's worst request latency (oldest arrival →
		// completion) into the straggler EWMA, α = 1/8. A plain
		// load/store race between two workers loses at most one sample —
		// fine for a smoothed signal — and keeps this off the hot path's
		// lock budget.
		worst := int64(res.Completed - reqs[0].at)
		for _, r := range reqs {
			if l := int64(res.Completed - r.at); l > worst {
				worst = l
			}
		}
		if worst > 0 {
			if prev := p.latEWMA.Load(); prev == 0 {
				p.latEWMA.Store(worst)
			} else {
				p.latEWMA.Store(prev + (worst-prev)/8)
			}
		}
	}
	return resolved
}

// concatInputs stacks the requests' input tensors along dim 0. Shapes
// were validated against the model spec at Submit, so per-sample layouts
// agree.
func concatInputs(reqs []*pipeReq, size int) *tensor.Tensor {
	first := reqs[0].req.Input
	per := first.Len() / first.Dim(0)
	flat := make([]float32, 0, size*per)
	for _, r := range reqs {
		flat = append(flat, r.req.Input.Data()...)
	}
	shape := append([]int{size}, first.Shape()[1:]...)
	return tensor.FromSlice(flat, shape...)
}

// finish resolves one request's future exactly once, classifying the
// outcome into the stats buckets (ok / Failed / Cancelled / Expired).
// Reports whether this call won the resolution; a loser's completion is
// discarded.
func (p *Pipeline) finish(r *pipeReq, c *Completion) bool {
	if !r.done.CompareAndSwap(false, true) {
		return false
	}
	switch {
	case c.Err == nil:
	case errors.Is(c.Err, ErrDeadlineExceeded):
		p.expired.Add(1)
	case errors.Is(c.Err, context.Canceled), errors.Is(c.Err, context.DeadlineExceeded):
		p.cancelled.Add(1)
	default:
		p.failed.Add(1)
	}
	r.fut.ch <- *c // buffered(1); the CAS above makes delivery exactly-once
	p.completed.Add(1)
	return true
}

// ---- driving the pipeline from trace generators ------------------------

// Play drives a request trace through the live pipeline, replaying
// arrivals on the wall clock compressed by speedup (e.g. 100 plays a
// 10 s trace in 0.1 s) and waiting for every completion. Requests are
// timing-only (the Estimate path), matching Scheduler.Replay, but unlike
// Replay they flow through admission, live batching and the device
// queues — requests shed at admission (queue full or SLO infeasible)
// are counted in Dropped, and admitted requests culled for a passed
// deadline are counted in Expired. Devices are not reset: Play observes
// the system as it is, like live traffic.
func (p *Pipeline) Play(ctx context.Context, tr trace.Trace, pol Policy, speedup float64) (ReplayResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := ReplayResult{PerDevice: map[string]int{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	playCtx, stopPlay := context.WithCancel(ctx)
	defer stopPlay()
	arrivals := trace.Play(playCtx, tr, speedup)
	var submitErr error
	for req := range arrivals {
		fut, err := p.Submit(ctx, PipelineRequest{Model: req.Model, Policy: pol, Batch: req.Batch})
		if errors.Is(err, ErrAdmissionFull) || errors.Is(err, ErrDeadlineInfeasible) {
			res.Dropped++
			continue
		}
		if err != nil {
			// Stop playback but do NOT return yet: completions of
			// already-submitted requests are still being written, and
			// abandoning wg would leak those goroutines mid-write.
			submitErr = err
			stopPlay()
			for range arrivals { // release the playback goroutine
			}
			break
		}
		wg.Add(1)
		batch := req.Batch
		go func() {
			defer wg.Done()
			c, err := fut.waitRelease(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil || c.Err != nil {
				if c.Err != nil && errors.Is(c.Err, ErrDeadlineExceeded) {
					res.Expired++
					return
				}
				if firstErr == nil {
					firstErr = err
					if firstErr == nil {
						firstErr = c.Err
					}
				}
				return
			}
			res.Requests++
			res.TotalSamples += int64(batch)
			res.TotalEnergyJ += c.EnergyJ
			res.Record(c.Latency)
			if c.Completed > res.Makespan {
				res.Makespan = c.Completed
			}
			res.PerDevice[c.Decision.Device]++
		}()
	}
	wg.Wait() // every submitted future has resolved past this point
	if submitErr != nil {
		return ReplayResult{}, submitErr
	}
	if firstErr != nil {
		return ReplayResult{}, firstErr
	}
	if err := ctx.Err(); err != nil {
		return ReplayResult{}, err
	}
	return res, nil
}
