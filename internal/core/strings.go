package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Human-readable renderers for the scheduler's result types, shared by
// the CLIs and examples.

// String summarises a decision on one line.
func (d Decision) String() string {
	state := "cold"
	if d.GPUWarm {
		state = "warm"
	}
	spill := ""
	if d.Spilled {
		spill = " [spilled]"
	}
	return fmt.Sprintf("%s×%d under %s → %s (gpu %s)%s",
		d.Model, d.Batch, d.Policy, d.Device, state, spill)
}

// String summarises a replay.
func (r ReplayResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests, %d samples in %v: avg %v, p99 %v, max %v, %.1f J",
		r.Requests, r.TotalSamples, r.Makespan.Round(time.Millisecond),
		r.AvgLatency().Round(time.Microsecond),
		r.Percentile(99).Round(time.Microsecond),
		r.MaxLatency.Round(time.Microsecond), r.TotalEnergyJ)
	if r.Spills > 0 {
		fmt.Fprintf(&b, ", %d spills", r.Spills)
	}
	if len(r.PerDevice) > 0 {
		fmt.Fprintf(&b, " — %s", renderPerDevice(r.PerDevice))
	}
	return b.String()
}

// String summarises scheduler activity.
func (s Stats) String() string {
	return fmt.Sprintf("%d decisions (%d spills) — %s",
		s.Decisions, s.Spills, renderPerDevice(s.PerDevice))
}

// renderPerDevice renders device counts deterministically (sorted by
// name) so logs and tests are stable.
func renderPerDevice(m map[string]int) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", n, m[n]))
	}
	return strings.Join(parts, " ")
}
