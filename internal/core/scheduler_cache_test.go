package core

import (
	"fmt"
	"testing"
	"time"
)

func TestBucketBatch(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 100: 128, 256: 256, 1000: 1024}
	for in, want := range cases {
		if got := bucketBatch(in); got != want {
			t.Errorf("bucketBatch(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSelectCachedMatchesSelect(t *testing.T) {
	// On an idle system the memoised path must pick the same device as
	// the full decision for every (model, batch, policy) — bucketing may
	// change the feature vector, but never across a ranking crossover at
	// these granularities... except when it legitimately does; then the
	// cached choice must at least equal the fresh decision at the bucket
	// ceiling (the cache's contract: decisions are per-bucket).
	s := testScheduler(t)
	for _, model := range []string{"mnist-small", "cifar-10"} {
		for _, pol := range []Policy{BestThroughput, LowestLatency, EnergyEfficiency} {
			for _, batch := range []int{1, 2, 8, 32, 256} { // powers of two: bucket == batch
				fresh, err := s.Select(model, batch, pol, 0)
				if err != nil {
					t.Fatal(err)
				}
				cached, err := s.SelectCached(model, batch, pol, 0)
				if err != nil {
					t.Fatal(err)
				}
				if cached.Device != fresh.Device {
					t.Fatalf("%s/%v batch %d: cached chose %s, fresh chose %s",
						model, pol, batch, cached.Device, fresh.Device)
				}
				if cached.Batch != batch {
					t.Fatalf("cached decision reports batch %d, want %d", cached.Batch, batch)
				}
			}
		}
	}
}

func TestSelectCachedHitAccounting(t *testing.T) {
	s := testScheduler(t)
	base := s.Stats()
	// Same key three times: one miss (first call populates), two hits.
	for i := 0; i < 3; i++ {
		if _, err := s.SelectCached("mnist-small", 8, BestThroughput, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if hits := st.DecisionCacheHits - base.DecisionCacheHits; hits != 2 {
		t.Fatalf("cache hits = %d, want 2", hits)
	}
	if misses := st.DecisionCacheMisses - base.DecisionCacheMisses; misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}
	// Batches 5..8 share the bucket-8 entry: all hits.
	preHits := s.Stats().DecisionCacheHits
	for batch := 5; batch <= 8; batch++ {
		if _, err := s.SelectCached("mnist-small", batch, BestThroughput, 0); err != nil {
			t.Fatal(err)
		}
	}
	if hits := s.Stats().DecisionCacheHits - preHits; hits != 4 {
		t.Fatalf("bucket-sharing hits = %d, want 4", hits)
	}
}

func TestDecisionCacheInvalidation(t *testing.T) {
	s := testScheduler(t)
	if _, err := s.SelectCached("mnist-small", 8, BestThroughput, 0); err != nil {
		t.Fatal(err)
	}
	probe := func(string) time.Duration { return 0 }

	invalidators := []struct {
		name string
		do   func()
	}{
		{"SetQueueProbe", func() { s.SetQueueProbe(probe); s.SetQueueProbe(nil) }},
		{"ResetDevices", func() { s.ResetDevices() }},
		{"quarantine transition", func() {
			for i := 0; i < 3; i++ {
				s.ReportExecution("cpu", fmt.Errorf("boom"))
			}
			s.ReportExecution("cpu", nil) // readmit (bumps again)
		}},
	}
	for _, iv := range invalidators {
		before := s.decEpoch.Load()
		iv.do()
		if after := s.decEpoch.Load(); after <= before {
			t.Fatalf("%s did not bump the decision epoch (%d → %d)", iv.name, before, after)
		}
		// A bumped epoch turns the next lookup into a miss that repopulates.
		preMiss := s.Stats().DecisionCacheMisses
		if _, err := s.SelectCached("mnist-small", 8, BestThroughput, 0); err != nil {
			t.Fatal(err)
		}
		if s.Stats().DecisionCacheMisses != preMiss+1 {
			t.Fatalf("%s: stale entry served as a hit", iv.name)
		}
	}
}

func TestSelectCachedRespectsQuarantineFencing(t *testing.T) {
	// Fencing is live (decideFrom), not cached: quarantining the device a
	// cached entry ranks first must immediately steer cached decisions
	// away, without waiting for any cache refresh.
	s := testScheduler(t)
	s.ResetDevices()
	first, err := s.SelectCached("mnist-small", 2, LowestLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.ReportExecution(first.Device, fmt.Errorf("injected"))
	}
	after, err := s.SelectCached("mnist-small", 2, LowestLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after.Device == first.Device {
		t.Fatalf("cached decision still routes to quarantined %s", first.Device)
	}
	s.ResetDevices()
}
