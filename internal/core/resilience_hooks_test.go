package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDetachedFutureResolveExactlyOnce covers the cluster tier's
// first-result-wins arbitration primitive: the first Resolve wins, every
// later one is discarded, and the waiter observes exactly the winner.
func TestDetachedFutureResolveExactlyOnce(t *testing.T) {
	f := NewDetachedFuture()
	if f.Resolved() {
		t.Fatal("fresh detached future reports resolved")
	}
	if !f.Resolve(Completion{BatchSize: 1}) {
		t.Fatal("first Resolve lost")
	}
	if f.Resolve(Completion{BatchSize: 2}) {
		t.Fatal("second Resolve won")
	}
	if !f.Resolved() {
		t.Fatal("resolved future reports unresolved")
	}
	c, err := f.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if c.BatchSize != 1 {
		t.Fatalf("waiter observed the losing completion: %+v", c)
	}
}

// TestDetachedFutureRacingResolvers hammers one detached future from
// many goroutines: exactly one wins, and the winner's payload is what
// the waiter sees. Run under -race this is the arbitration's memory
// safety proof.
func TestDetachedFutureRacingResolvers(t *testing.T) {
	const racers = 16
	f := NewDetachedFuture()
	wins := make(chan int, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if f.Resolve(Completion{BatchSize: id + 1}) {
				wins <- id + 1
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []int
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("%d resolvers won, want exactly 1", len(winners))
	}
	c, err := f.waitRelease(context.Background())
	if err != nil {
		t.Fatalf("waitRelease: %v", err)
	}
	if c.BatchSize != winners[0] {
		t.Fatalf("waiter saw %d, winner was %d", c.BatchSize, winners[0])
	}
	// waitRelease must NOT have pooled the detached future: its resolved
	// flag stays set, which would corrupt a recycled pipeline future.
	if !f.detached || !f.Resolved() {
		t.Fatalf("detached future mutated by waitRelease: detached=%v resolved=%v", f.detached, f.Resolved())
	}
}

// TestResolveOnPipelineFuturePanics pins the misuse guard: Resolve is
// the cluster's arbitration path, not an alternate delivery channel for
// pipeline-owned futures.
func TestResolveOnPipelineFuturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resolve on a pooled pipeline future did not panic")
		}
	}()
	f := getFuture()
	f.Resolve(Completion{})
}

// TestSetWindowScaleClampsAndApplies checks the brownout controller's
// batching-window lever: scale multiplies cfg.Window, clamps to [1, 8],
// and restores exactly.
func TestSetWindowScaleClampsAndApplies(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{ProbeInterval: -1, Window: 2 * time.Millisecond})
	defer p.Close()
	if got := p.window(); got != 2*time.Millisecond {
		t.Fatalf("initial window = %v, want 2ms", got)
	}
	p.SetWindowScale(3)
	if got := p.window(); got != 6*time.Millisecond {
		t.Fatalf("scaled window = %v, want 6ms", got)
	}
	p.SetWindowScale(0.25) // below the floor: clamps to 1×
	if got := p.window(); got != 2*time.Millisecond {
		t.Fatalf("restored window = %v, want 2ms", got)
	}
	p.SetWindowScale(100) // above the ceiling: clamps to 8×
	if got := p.window(); got != 16*time.Millisecond {
		t.Fatalf("clamped window = %v, want 16ms", got)
	}
}

// TestAvgLatencyTracksDeliveries checks the straggler signal: zero
// before any delivery, positive and bounded by the observed worst
// completion latency after traffic.
func TestAvgLatencyTracksDeliveries(t *testing.T) {
	s := testScheduler(t)
	n := NewNode("node0", s, PipelineConfig{ProbeInterval: -1})
	defer n.Close()
	if got := n.AvgLatency(); got != 0 {
		t.Fatalf("AvgLatency before traffic = %v, want 0", got)
	}
	if n.Capacity() <= 0 {
		t.Fatalf("Capacity = %d, want positive", n.Capacity())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var worst time.Duration
	for i := 0; i < 8; i++ {
		c, err := n.Do(ctx, PipelineRequest{Model: "simple", Policy: LowestLatency, Batch: 4})
		if err != nil || c.Err != nil {
			t.Fatalf("Do %d: %v / %v", i, err, c.Err)
		}
		if c.Latency > worst {
			worst = c.Latency
		}
	}
	got := n.AvgLatency()
	if got <= 0 {
		t.Fatalf("AvgLatency after %v-worst traffic = %v, want positive", worst, got)
	}
	if got > 4*worst {
		t.Fatalf("AvgLatency %v implausibly above worst observed %v", got, worst)
	}
}

// TestNodeKillDuringDrainRace is the satellite-2 regression test: Kill
// landing on an already-draining node must serialise with the drain —
// both return, the killed label wins, no future is lost, and under
// -race the lifecycle transition is clean.
func TestNodeKillDuringDrainRace(t *testing.T) {
	for round := 0; round < 10; round++ {
		s := testScheduler(t)
		n := NewNode("node0", s, PipelineConfig{ProbeInterval: -1, Window: 100 * time.Microsecond})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)

		// Keep traffic in flight so the drain has a tail to resolve.
		var futs []*Future
		for i := 0; i < 16; i++ {
			fut, err := n.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 2})
			if err != nil {
				break
			}
			futs = append(futs, fut)
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); <-start; n.Drain() }()
		go func() { defer wg.Done(); <-start; n.Kill() }()
		close(start)
		wg.Wait()

		// Whichever interleaving won, the node is terminal and refuses work.
		if st := n.State(); st != NodeKilled && st != NodeDrained {
			t.Fatalf("round %d: state after drain/kill race = %v", round, st)
		}
		if _, err := n.Submit(context.Background(), PipelineRequest{Model: "simple", Batch: 1}); !errors.Is(err, ErrNodeDown) {
			t.Fatalf("round %d: Submit after race = %v, want ErrNodeDown", round, err)
		}
		// Every accepted future still resolves (exactly-once survives the race).
		for i, fut := range futs {
			if _, err := fut.Wait(ctx); err != nil {
				t.Fatalf("round %d: future %d abandoned: %v", round, i, err)
			}
		}
		cancel()
	}
}
