package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bomw/internal/characterize"
	"bomw/internal/device"
	"bomw/internal/models"
	"bomw/internal/trace"
)

// sharedScheduler builds one fully trained scheduler for the whole test
// package (construction sweeps the full grid, ≈1 s).
var (
	schedOnce sync.Once
	sched     *Scheduler
	schedErr  error
)

func testScheduler(t *testing.T) *Scheduler {
	t.Helper()
	schedOnce.Do(func() {
		sched, schedErr = New(Config{TrainModels: models.AllModels()})
		if schedErr != nil {
			return
		}
		for _, spec := range models.PaperModels() {
			if err := sched.LoadModel(spec, 1); err != nil {
				schedErr = err
				return
			}
		}
	})
	if schedErr != nil {
		t.Fatal(schedErr)
	}
	sched.ResetDevices()
	return sched
}

func TestNewRequiresTrainModels(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without TrainModels accepted")
	}
}

func TestSchedulerConstruction(t *testing.T) {
	s := testScheduler(t)
	if len(s.Devices()) != 3 {
		t.Fatalf("devices = %v", s.Devices())
	}
	if s.Dataset().Len() != 1512 {
		t.Fatalf("training set = %d samples", s.Dataset().Len())
	}
	for _, pol := range characterize.Objectives() {
		if s.Classifier(pol) == nil {
			t.Fatalf("no classifier for %v", pol)
		}
	}
}

func TestDispatcherFigure2Cycle(t *testing.T) {
	s := testScheduler(t)
	d := s.Dispatcher()
	spec, err := d.Spec("simple")
	if err != nil || spec.Name != "simple" {
		t.Fatalf("Spec: %v", err)
	}
	net, err := d.Network("simple")
	if err != nil || net.Name() != "simple" {
		t.Fatalf("Network: %v", err)
	}
	w, err := d.WeightBytes("simple")
	if err != nil || len(w) == 0 {
		t.Fatalf("WeightBytes: %v (%d bytes)", err, len(w))
	}
	if len(d.Models()) != len(models.PaperModels()) {
		t.Fatalf("Models = %v", d.Models())
	}
	if _, err := d.Spec("nope"); err == nil {
		t.Fatal("unknown model spec accepted")
	}
	if _, err := d.Network("nope"); err == nil {
		t.Fatal("unknown model network accepted")
	}
	if _, err := d.WeightBytes("nope"); err == nil {
		t.Fatal("unknown model weights accepted")
	}
}

func TestSelectValidation(t *testing.T) {
	s := testScheduler(t)
	if _, err := s.Select("simple", 0, BestThroughput, 0); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := s.Select("nope", 8, BestThroughput, 0); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := s.Select("simple", 8, Policy(99), 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSelectSmallBatchPrefersHostSide(t *testing.T) {
	// Tiny batches of the tiny model never pay off on the discrete GPU:
	// the scheduler must keep them on the CPU or iGPU (Fig. 3a).
	s := testScheduler(t)
	dec, err := s.Select("simple", 2, LowestLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == "GTX 1080 Ti" {
		t.Fatalf("batch-2 simple latency pick = %s, dGPU cannot win here", dec.Device)
	}
	if dec.GPUWarm {
		t.Fatal("fresh system should probe a cold GPU")
	}
	if dec.DecisionTime <= 0 {
		t.Fatal("decision time must be measured")
	}
}

func TestSelectLargeBatchWarmGPUPrefersDGPU(t *testing.T) {
	s := testScheduler(t)
	// Warm the discrete GPU, then ask for a heavy throughput job.
	for _, d := range s.cfg.Devices {
		if d.Profile().HasBoost {
			d.Warm(0)
		}
	}
	dec, err := s.Select("mnist-small", 65536, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.GPUWarm {
		t.Fatal("probe should see the warmed GPU")
	}
	if dec.Device != "GTX 1080 Ti" {
		t.Fatalf("64K mnist-small throughput pick = %s, want the dGPU", dec.Device)
	}
}

func TestSelectEnergyPolicyAvoidsColdDGPUOnModest(t *testing.T) {
	s := testScheduler(t)
	dec, err := s.Select("mnist-small", 256, EnergyEfficiency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == "GTX 1080 Ti" {
		t.Fatal("cold dGPU cannot be the energy pick for a modest batch (Fig. 4b)")
	}
}

func TestClassifyExecutesRealBatch(t *testing.T) {
	s := testScheduler(t)
	ds := models.Synthesize(models.Simple(), 32, 1)
	in := ds.Batch(0, 32)
	res, dec, err := s.Classify("simple", in, LowestLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 32 {
		t.Fatalf("classes = %d", len(res.Classes))
	}
	if res.Device != dec.Device {
		t.Fatal("result/decision device mismatch")
	}
	if res.Latency() <= 0 || res.EnergyJ <= 0 {
		t.Fatal("degenerate execution result")
	}
}

func TestEstimateAdvancesDeviceState(t *testing.T) {
	s := testScheduler(t)
	res, dec, err := s.Estimate("mnist-deep", 8192, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.cfg.Devices {
		if d.Name() == dec.Device {
			if st := d.StateAt(res.Completed); st.BusyUntil != res.Completed {
				t.Fatalf("device busy horizon %v, want %v", st.BusyUntil, res.Completed)
			}
		}
	}
}

func TestOverloadSpillsToNextDevice(t *testing.T) {
	s := testScheduler(t)
	// Saturate the preferred device with a long queue, then submit again
	// at time zero: the scheduler must reroute.
	first, err := s.Select("mnist-small", 65536, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.rt.Estimate(first.Device, "mnist-small", 65536, 0); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := s.Select("mnist-small", 65536, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == first.Device {
		t.Fatal("scheduler did not spill off an overloaded device")
	}
	if !dec.Spilled {
		t.Fatal("spill not flagged")
	}
	if s.Stats().Spills == 0 {
		t.Fatal("spill not counted")
	}
}

func TestSpillDisabledNegativeThreshold(t *testing.T) {
	s, err := New(Config{
		TrainModels:   models.PaperModels(),
		Batches:       []int{8, 512, 8192},
		Reps:          1,
		MaxQueueDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadModel(models.MnistSmall(), 1); err != nil {
		t.Fatal(err)
	}
	first, err := s.Select("mnist-small", 8192, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.rt.Estimate(first.Device, "mnist-small", 8192, 0); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := s.Select("mnist-small", 8192, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device != first.Device || dec.Spilled {
		t.Fatal("spilling must be disabled with negative MaxQueueDelay")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := testScheduler(t)
	before := s.Stats()
	if _, err := s.Select("simple", 8, LowestLatency, 0); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Decisions != before.Decisions+1 {
		t.Fatalf("decisions %d → %d", before.Decisions, after.Decisions)
	}
	if after.PerPolicy[LowestLatency] != before.PerPolicy[LowestLatency]+1 {
		t.Fatal("per-policy count not incremented")
	}
}

func TestPredictionAccuracyOnTrainedModels(t *testing.T) {
	// §VI headline: the scheduler predicts the optimal device with
	// ≈92.5% accuracy for models it has been trained on.
	s := testScheduler(t)
	sw := &characterize.Sweeper{Profiles: profilesOf(s), Noise: 0, Seed: 1}
	correct, total, loss := 0, 0, 0.0
	for _, spec := range models.PaperModels() {
		if err := errOrNil(s.disp.Spec(spec.Name)); err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{8, 64, 512, 4096, 32768, 262144} {
			for _, warm := range []bool{false, true} {
				cm, err := sw.MeasureConfig(spec, batch, warm, 0)
				if err != nil {
					t.Fatal(err)
				}
				feats := characterize.Features(spec.Descriptor(), batch, warm)
				pred := s.Classifier(BestThroughput).Predict(feats)
				total++
				if pred == cm.Best(characterize.BestThroughput) {
					correct++
				} else {
					loss += cm.LossVersusIdeal(characterize.BestThroughput, pred)
				}
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.80 {
		t.Fatalf("trained-model device accuracy %.1f%%, paper reports 92.5%%", 100*acc)
	}
	if avg := loss / float64(total); avg > 0.10 {
		t.Fatalf("average throughput loss %.1f%%, paper reports <5%%", 100*avg)
	}
}

func TestPredictionAccuracyOnUnseenModels(t *testing.T) {
	// §VI: accuracy ≈91% for models never seen before (Fig. 6), with
	// <5% performance loss from wrong predictions.
	s := testScheduler(t)
	sw := &characterize.Sweeper{Profiles: profilesOf(s), Noise: 0, Seed: 1}
	correct, total, loss := 0, 0, 0.0
	for _, spec := range models.UnseenModels() {
		for _, batch := range []int{8, 64, 512, 4096, 32768, 262144} {
			for _, warm := range []bool{false, true} {
				cm, err := sw.MeasureConfig(spec, batch, warm, 0)
				if err != nil {
					t.Fatal(err)
				}
				feats := characterize.Features(spec.Descriptor(), batch, warm)
				pred := s.Classifier(BestThroughput).Predict(feats)
				total++
				if pred == cm.Best(characterize.BestThroughput) {
					correct++
				} else {
					loss += cm.LossVersusIdeal(characterize.BestThroughput, pred)
				}
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.75 {
		t.Fatalf("unseen-model device accuracy %.1f%%, paper reports 91%%", 100*acc)
	}
	if avg := loss / float64(total); avg > 0.12 {
		t.Fatalf("average loss on unseen models %.1f%%, paper reports <5%%", 100*avg)
	}
}

func TestReplayPoissonTrace(t *testing.T) {
	s := testScheduler(t)
	tr, err := trace.Poisson(60, 100, []string{"simple", "mnist-small"}, []int{8, 512, 8192}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Replay(tr, BestThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 60 || res.TotalSamples != tr.TotalSamples() {
		t.Fatalf("replay accounting wrong: %+v", res)
	}
	if res.Makespan <= 0 || res.TotalEnergyJ <= 0 || res.AvgLatency() <= 0 {
		t.Fatalf("degenerate replay: %+v", res)
	}
	if res.SamplesPerSecond() <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestAdaptiveBeatsWorstStaticAndApproachesBest(t *testing.T) {
	// The "best of many worlds" claim: across a mixed workload the
	// adaptive scheduler should be at least competitive with every
	// static single-device policy on its target metric.
	s := testScheduler(t)
	tr, err := trace.Poisson(80, 200, []string{"simple", "mnist-small", "mnist-cnn"}, []int{2, 64, 2048, 65536}, 2)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := s.Replay(tr, LowestLatency)
	if err != nil {
		t.Fatal(err)
	}
	var bestStatic, worstStatic time.Duration
	for i, dev := range s.Devices() {
		st, err := s.ReplayStatic(tr, dev)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || st.SumLatency < bestStatic {
			bestStatic = st.SumLatency
		}
		if i == 0 || st.SumLatency > worstStatic {
			worstStatic = st.SumLatency
		}
	}
	if adaptive.SumLatency >= worstStatic {
		t.Fatalf("adaptive (%v) no better than the worst static policy (%v)", adaptive.SumLatency, worstStatic)
	}
	if float64(adaptive.SumLatency) > 1.5*float64(bestStatic) {
		t.Fatalf("adaptive (%v) not within 1.5x of the best static policy (%v)", adaptive.SumLatency, bestStatic)
	}
}

func TestEnergyPolicySavesEnergyVersusAlwaysDGPU(t *testing.T) {
	// §VI: "energy savings up to 10%" — under the energy policy the
	// scheduler must consume less than the always-most-powerful-device
	// baseline on a mixed load.
	s := testScheduler(t)
	tr, err := trace.Diurnal(120, 20, 400, 2*time.Second,
		[]string{"simple", "mnist-small", "mnist-cnn"}, []int{2, 32, 512, 8192}, 3)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := s.Replay(tr, EnergyEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	dgpuOnly, err := s.ReplayStatic(tr, "GTX 1080 Ti")
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.TotalEnergyJ >= dgpuOnly.TotalEnergyJ {
		t.Fatalf("energy policy used %.1fJ, always-dGPU %.1fJ — no savings",
			adaptive.TotalEnergyJ, dgpuOnly.TotalEnergyJ)
	}
}

func TestOracleReplayIsBound(t *testing.T) {
	s := testScheduler(t)
	tr := trace.Sweep([]string{"simple"}, []int{8, 512, 8192}, 500*time.Millisecond)
	oracle, err := s.OracleReplay(tr, LowestLatency)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Requests != 3 {
		t.Fatalf("oracle requests = %d", oracle.Requests)
	}
	adaptive, err := s.Replay(tr, LowestLatency)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle is an idealised bound; the adaptive scheduler should be
	// within a small factor of it on this easy trace.
	if float64(adaptive.SumLatency) > 2*float64(oracle.SumLatency) {
		t.Fatalf("adaptive %v much worse than oracle %v", adaptive.SumLatency, oracle.SumLatency)
	}
}

func TestReplayStaticUnknownDevice(t *testing.T) {
	s := testScheduler(t)
	if _, err := s.ReplayStatic(trace.Trace{{At: 0, Model: "simple", Batch: 8}}, "nope"); err == nil {
		t.Fatal("unknown static device accepted")
	}
}

func TestDeviceAgnosticCustomAccelerator(t *testing.T) {
	// The paper claims device-agnosticism (§V-A): adding an NPU-like
	// accelerator must require nothing but a profile.
	npu := device.New(device.Profile{
		Name: "toy NPU", Kind: device.Accelerator,
		PeakGFLOPS: 2000, ParallelWidth: 2048, WorkGroupSize: 128,
		PerItemNs: 0.05, PerGroupNs: 150, KernelLaunch: 20 * time.Microsecond,
		MemBandwidthGBs: 100, CacheBytes: 2 << 20, WeightReuse: 16,
		IdleWatts: 0.5, ActiveWatts: 6, HostWatts: 4,
	})
	devices := []*device.Device{device.New(device.IntelCoreI7_8700()), npu}
	s, err := New(Config{
		Devices:     devices,
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512, 8192, 65536},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadModel(models.MnistSmall(), 1); err != nil {
		t.Fatal(err)
	}
	dec, err := s.Select("mnist-small", 8192, EnergyEfficiency, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The efficient NPU should own the energy policy on real loads.
	if dec.Device != "toy NPU" {
		t.Fatalf("energy pick = %s, want the low-power NPU", dec.Device)
	}
	// Without any boosted device, probes report warm.
	if !dec.GPUWarm {
		t.Fatal("no-dGPU system should always probe warm")
	}
}

func profilesOf(s *Scheduler) []device.Profile {
	var out []device.Profile
	for _, d := range s.cfg.Devices {
		out = append(out, d.Profile())
	}
	return out
}

func errOrNil(_ interface{}, err error) error { return err }

func TestReplayPercentiles(t *testing.T) {
	s := testScheduler(t)
	tr, err := trace.Poisson(50, 100, []string{"simple", "mnist-small"}, []int{8, 8192}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Replay(tr, LowestLatency)
	if err != nil {
		t.Fatal(err)
	}
	p50 := res.Percentile(50)
	p99 := res.Percentile(99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles out of order: p50=%v p99=%v", p50, p99)
	}
	if res.Percentile(100) != res.MaxLatency {
		t.Fatalf("p100 %v != max %v", res.Percentile(100), res.MaxLatency)
	}
	if res.Percentile(-5) != res.Percentile(0) {
		t.Fatal("negative percentile not clamped")
	}
	if (ReplayResult{}).Percentile(50) != 0 {
		t.Fatal("empty result percentile should be 0")
	}
}

func TestSchedulerRobustAcrossSeeds(t *testing.T) {
	// The reproduction must not hinge on one lucky seed: schedulers
	// trained with different seeds should all predict well on the paper
	// models.
	if testing.Short() {
		t.Skip("multi-seed training is slow")
	}
	for _, seed := range []int64{2, 3} {
		s, err := New(Config{TrainModels: models.AllModels(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sw := &characterize.Sweeper{Profiles: profilesOf(s), Noise: 0, Seed: seed}
		correct, total := 0, 0
		for _, spec := range models.PaperModels() {
			for _, batch := range []int{8, 512, 32768} {
				for _, warm := range []bool{false, true} {
					cm, err := sw.MeasureConfig(spec, batch, warm, 0)
					if err != nil {
						t.Fatal(err)
					}
					feats := characterize.Features(spec.Descriptor(), batch, warm)
					if s.Classifier(BestThroughput).Predict(feats) == cm.Best(characterize.BestThroughput) {
						correct++
					}
					total++
				}
			}
		}
		if acc := float64(correct) / float64(total); acc < 0.75 {
			t.Fatalf("seed %d: accuracy %.2f, training is seed-fragile", seed, acc)
		}
	}
}

func TestRetrainFoldsInNewArchitectures(t *testing.T) {
	s, err := New(Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512, 8192, 65536},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Dataset().Len()
	extra := models.UnseenModels()[:2]
	if err := s.Retrain(extra); err != nil {
		t.Fatal(err)
	}
	if s.Dataset().Len() <= before {
		t.Fatalf("retrained corpus %d not larger than %d", s.Dataset().Len(), before)
	}
	// The retrained scheduler still makes valid decisions.
	if err := s.LoadModel(models.MnistSmall(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("mnist-small", 512, BestThroughput, 0); err != nil {
		t.Fatal(err)
	}
	// Duplicates and empty sets are rejected.
	if err := s.Retrain(extra[:1]); err == nil {
		t.Fatal("duplicate architecture accepted")
	}
	if err := s.Retrain(nil); err == nil {
		t.Fatal("empty retrain accepted")
	}
}

// TestRetrainConcurrentWithAccessors is the regression test for a real
// data race the concurrency-discipline lint wave surfaced by audit:
// Retrain swaps s.classifiers, s.dataset and cfg.TrainModels under
// s.mu, but the exported read-side accessors (Classifier, Dataset) and
// Replica's template snapshot read them without the lock. A concurrent
// map read/write on s.classifiers is not merely stale — the runtime can
// hard-fault on it. Run under -race (make race / CI) this test fails
// before the fix and passes after it.
func TestRetrainConcurrentWithAccessors(t *testing.T) {
	s, err := New(Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s.Classifier(BestThroughput) == nil {
				t.Error("classifier vanished mid-retrain")
				return
			}
			if s.Dataset() == nil {
				t.Error("dataset vanished mid-retrain")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Replica(1); err != nil {
				t.Errorf("Replica during retrain: %v", err)
				return
			}
		}
	}()
	if err := s.Retrain(models.UnseenModels()[:1]); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	// The swap is atomic from the readers' side: post-retrain state is
	// the new generation everywhere.
	if s.Dataset().Len() == 0 {
		t.Fatal("retrained dataset empty")
	}
}

func TestMultipleDiscreteGPUs(t *testing.T) {
	// Device-agnostic scaling: two dGPU instances are just two classes;
	// the overload spill must balance across them.
	gpu2 := device.NvidiaGTX1080Ti()
	gpu2.Name = "GTX 1080 Ti #2"
	devices := []*device.Device{
		device.New(device.IntelCoreI7_8700()),
		device.New(device.NvidiaGTX1080Ti()),
		device.New(gpu2),
	}
	s, err := New(Config{
		Devices:     devices,
		TrainModels: models.PaperModels(),
		Batches:     []int{512, 8192, 65536},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadModel(models.MnistSmall(), 1); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Poisson(60, 500, []string{"mnist-small"}, []int{32768, 65536}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Replay(tr, BestThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDevice["GTX 1080 Ti"] == 0 || res.PerDevice["GTX 1080 Ti #2"] == 0 {
		t.Fatalf("load did not spread across both dGPUs: %v", res.PerDevice)
	}
}

func TestProbeSeesCooldownTransitions(t *testing.T) {
	// The per-decision PCIe probe must track the Boost state machine:
	// warm right after heavy work, cold again after the cooldown.
	s := testScheduler(t)
	res, _, err := s.Estimate("mnist-deep", 262144, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	var gpuBusy time.Duration
	for _, d := range s.cfg.Devices {
		if d.Profile().HasBoost {
			gpuBusy = d.StateAt(res.Completed).BusyUntil
			// Ensure the dGPU actually worked; if the scheduler picked
			// another device, warm it directly.
			if !d.StateAt(res.Completed).Warm {
				d.Warm(res.Completed)
			}
		}
	}
	_ = gpuBusy
	justAfter, err := s.Select("mnist-small", 64, LowestLatency, res.Completed)
	if err != nil {
		t.Fatal(err)
	}
	if !justAfter.GPUWarm {
		t.Fatal("probe should see a warm GPU right after heavy work")
	}
	muchLater, err := s.Select("mnist-small", 64, LowestLatency, res.Completed+time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if muchLater.GPUWarm {
		t.Fatal("probe should see a cold GPU after a minute idle")
	}
}

func TestStringRenderers(t *testing.T) {
	d := Decision{Model: "m", Batch: 64, Policy: LowestLatency, Device: "cpu", GPUWarm: true, Spilled: true}
	s := d.String()
	for _, want := range []string{"m×64", "lowest-latency", "cpu", "warm", "[spilled]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Decision.String() = %q missing %q", s, want)
		}
	}
	r := ReplayResult{Requests: 3, TotalSamples: 30, Makespan: time.Second,
		SumLatency: 3 * time.Millisecond, MaxLatency: 2 * time.Millisecond,
		TotalEnergyJ: 1.5, Spills: 1,
		PerDevice: map[string]int{"b": 1, "a": 2}}
	r.Record(time.Millisecond)
	rs := r.String()
	for _, want := range []string{"3 requests", "30 samples", "1.5 J", "1 spills", "a:2 b:1"} {
		if !strings.Contains(rs, want) {
			t.Fatalf("ReplayResult.String() = %q missing %q", rs, want)
		}
	}
	st := Stats{Decisions: 5, Spills: 2, PerDevice: map[string]int{"x": 5}}
	if got := st.String(); !strings.Contains(got, "5 decisions (2 spills)") || !strings.Contains(got, "x:5") {
		t.Fatalf("Stats.String() = %q", got)
	}
}
