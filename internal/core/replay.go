package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"bomw/internal/opencl"
	"bomw/internal/trace"
)

// ReplayResult aggregates one trace replay.
type ReplayResult struct {
	Requests     int
	TotalSamples int64
	Makespan     time.Duration // completion of the last request
	TotalEnergyJ float64
	SumLatency   time.Duration
	MaxLatency   time.Duration
	PerDevice    map[string]int
	Spills       int
	// Dropped counts requests shed at admission — only live pipeline
	// replays (Pipeline.Play) populate it; offline replays admit all.
	Dropped int
	// Expired counts admitted requests culled because their SLO passed
	// before execution — only Pipeline.Play under a configured
	// DefaultSLO/ModelSLO populates it.
	Expired   int
	latencies []time.Duration
}

// AvgLatency returns the mean request latency.
func (r ReplayResult) AvgLatency() time.Duration {
	if r.Requests == 0 {
		return 0
	}
	return r.SumLatency / time.Duration(r.Requests)
}

// Percentile returns the p-th latency percentile (p in [0,100]); tail
// latency is what the paper's latency policy protects.
func (r ReplayResult) Percentile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]time.Duration(nil), r.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Record folds one request latency into the aggregate (sum, max, and the
// percentile population). Exported so external harnesses — the scenario
// layer's percentile cross-check in particular — can build a
// ReplayResult from their own latency samples.
func (r *ReplayResult) Record(lat time.Duration) {
	r.SumLatency += lat
	if lat > r.MaxLatency {
		r.MaxLatency = lat
	}
	r.latencies = append(r.latencies, lat)
}

// SamplesPerSecond returns sustained throughput over the makespan.
func (r ReplayResult) SamplesPerSecond() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.TotalSamples) / r.Makespan.Seconds()
}

// ResetDevices returns every scheduled device to a cold, idle state and
// clears the health monitor; replays call it to start from a clean
// system.
func (s *Scheduler) ResetDevices() {
	for _, d := range s.devices {
		d.Reset()
	}
	s.mu.Lock()
	s.health = newHealthMonitor()
	s.mu.Unlock()
	s.invalidateDecisions()
}

// Replay feeds a request trace through the scheduler under one policy
// (timing-only execution) and aggregates the outcome. Devices are reset
// first so runs are comparable.
func (s *Scheduler) Replay(tr trace.Trace, pol Policy) (ReplayResult, error) {
	s.ResetDevices()
	res := ReplayResult{PerDevice: map[string]int{}}
	before := s.Stats().Spills
	for _, req := range tr {
		out, dec, err := s.Estimate(req.Model, req.Batch, pol, req.At)
		if err != nil {
			return ReplayResult{}, fmt.Errorf("core: replay at %v: %w", req.At, err)
		}
		if err := s.Observe(dec, out); err != nil {
			return ReplayResult{}, err
		}
		res.Requests++
		res.TotalSamples += int64(req.Batch)
		res.TotalEnergyJ += out.EnergyJ
		res.Record(out.Latency())
		if out.Completed > res.Makespan {
			res.Makespan = out.Completed
		}
		res.PerDevice[dec.Device]++
	}
	res.Spills = s.Stats().Spills - before
	return res, nil
}

// ReplayStatic replays the trace pinning every request to one device —
// the "always use device X" baselines the paper's adaptive scheduler is
// compared against (e.g. always-dGPU, the most powerful device).
func (s *Scheduler) ReplayStatic(tr trace.Trace, devName string) (ReplayResult, error) {
	s.ResetDevices()
	found := false
	for _, d := range s.devices {
		if d.Name() == devName {
			found = true
			break
		}
	}
	if !found {
		return ReplayResult{}, fmt.Errorf("core: unknown device %q", devName)
	}
	res := ReplayResult{PerDevice: map[string]int{devName: 0}}
	for _, req := range tr {
		out, err := s.rt.Estimate(devName, req.Model, req.Batch, req.At)
		if err != nil {
			return ReplayResult{}, fmt.Errorf("core: static replay at %v: %w", req.At, err)
		}
		res.Requests++
		res.TotalSamples += int64(req.Batch)
		res.TotalEnergyJ += out.EnergyJ
		res.Record(out.Latency())
		if out.Completed > res.Makespan {
			res.Makespan = out.Completed
		}
		res.PerDevice[devName]++
	}
	return res, nil
}

// OracleReplay replays the trace with a clairvoyant selector that tries
// every device (on shadow state) and keeps the best under the policy —
// the "ideal" bars of Fig. 6. It is quadratic in devices and meant for
// evaluation only.
func (s *Scheduler) OracleReplay(tr trace.Trace, pol Policy) (ReplayResult, error) {
	s.ResetDevices()
	res := ReplayResult{PerDevice: map[string]int{}}
	for _, req := range tr {
		bestName := ""
		var best *opencl.Result
		// Probe each device on a snapshot: measure without committing by
		// replaying on clones. Devices cannot be cloned cheaply, so the
		// oracle instead measures each device in isolation from reset
		// state — an idealised (queue-free) bound.
		for _, d := range s.devices {
			shadow, err := s.shadowEstimate(d.Name(), shadowReq{Model: req.Model, Batch: req.Batch})
			if err != nil {
				return ReplayResult{}, err
			}
			if best == nil || betterResult(pol, shadow, best) {
				best, bestName = shadow, d.Name()
			}
		}
		out, err := s.rt.Estimate(bestName, req.Model, req.Batch, req.At)
		if err != nil {
			return ReplayResult{}, err
		}
		res.Requests++
		res.TotalSamples += int64(req.Batch)
		res.TotalEnergyJ += out.EnergyJ
		res.Record(out.Latency())
		if out.Completed > res.Makespan {
			res.Makespan = out.Completed
		}
		res.PerDevice[bestName]++
	}
	return res, nil
}

// shadowReq is the minimal request shape shadow measurements need; both
// trace.Request and decisions convert into it.
type shadowReq struct {
	Model string
	Batch int
	At    time.Duration
}

// shadowEstimate measures one request on a fresh copy of the named
// device, mirroring its current warm state, without touching live state.
func (s *Scheduler) shadowEstimate(devName string, req shadowReq) (*opencl.Result, error) {
	var live *deviceRef
	for _, d := range s.devices {
		if d.Name() == devName {
			live = &deviceRef{d}
			break
		}
	}
	if live == nil {
		return nil, fmt.Errorf("core: unknown device %q", devName)
	}
	shadow := live.freshCopy()
	if live.d.StateAt(req.At).Warm {
		shadow.Warm(0)
	}
	rt, err := opencl.NewRuntime(shadow)
	if err != nil {
		return nil, err
	}
	net, err := s.disp.Network(req.Model)
	if err != nil {
		return nil, err
	}
	if err := rt.LoadModel(net); err != nil {
		return nil, err
	}
	return rt.Estimate(devName, req.Model, req.Batch, 0)
}

func betterResult(pol Policy, a, b *opencl.Result) bool {
	switch pol {
	case EnergyEfficiency:
		return a.EnergyJ < b.EnergyJ
	default: // throughput and latency both favour faster completion here
		return a.Latency() < b.Latency()
	}
}
