package core

import (
	"fmt"
	"time"
)

// Deadline-aware selection extends the paper's three policies with a
// service-level objective: among the devices predicted to finish a batch
// within the deadline, pick the most energy-efficient one; if no device
// can meet it, pick the fastest. Predictions come from the same shadow
// cost models the oracle replay uses, plus the live queue and warm state
// of each device — a model-based counterpart to the learned policies.

// DeadlineDecision reports the outcome of a deadline-constrained choice.
type DeadlineDecision struct {
	Decision
	Deadline   time.Duration
	Predicted  time.Duration // predicted completion latency on the pick
	Met        bool          // the pick is predicted to meet the deadline
	Candidates int           // devices predicted to meet the deadline
}

// SelectWithDeadline picks a device for one request under a latency SLO
// at virtual time now.
func (s *Scheduler) SelectWithDeadline(model string, batch int, deadline time.Duration, now time.Duration) (DeadlineDecision, error) {
	if batch <= 0 {
		return DeadlineDecision{}, fmt.Errorf("core: batch size must be positive, got %d", batch)
	}
	if deadline <= 0 {
		return DeadlineDecision{}, fmt.Errorf("core: deadline must be positive, got %v", deadline)
	}
	if _, err := s.disp.Spec(model); err != nil {
		return DeadlineDecision{}, err
	}

	type cand struct {
		class   int
		latency time.Duration // queue wait + predicted execution
		energy  float64
	}
	var cands []cand
	for class, d := range s.devices {
		shadow, err := s.shadowEstimate(d.Name(), shadowReq{Model: model, Batch: batch, At: now})
		if err != nil {
			return DeadlineDecision{}, err
		}
		wait := d.StateAt(now).BusyUntil - now
		if wait < 0 {
			wait = 0
		}
		// Fold in the observed interference estimate so a contended
		// device's prediction reflects reality.
		slow, _ := s.DeviceHealth(d.Name())
		if slow < 1 {
			slow = 1
		}
		lat := wait + time.Duration(float64(shadow.Latency())*slow)
		cands = append(cands, cand{class: class, latency: lat, energy: shadow.EnergyJ})
	}

	best := -1
	meeting := 0
	for i, c := range cands {
		if c.latency <= deadline {
			meeting++
			if best == -1 || c.energy < cands[best].energy {
				best = i
			}
		}
	}
	met := best != -1
	if !met {
		// Nothing meets the SLO: minimise the damage.
		for i, c := range cands {
			if best == -1 || c.latency < cands[best].latency {
				best = i
			}
		}
	}

	chosen := cands[best]
	dec := DeadlineDecision{
		Decision: Decision{
			Model:   model,
			Batch:   batch,
			Class:   chosen.class,
			Device:  s.devices[chosen.class].Name(),
			GPUWarm: s.probeGPU(now),
		},
		Deadline:   deadline,
		Predicted:  chosen.latency,
		Met:        met,
		Candidates: meeting,
	}
	s.mu.Lock()
	s.stats.Decisions++
	s.stats.PerDevice[dec.Device]++
	s.mu.Unlock()
	return dec, nil
}
