package core

import (
	"fmt"
	"time"
)

// Deadline-aware selection extends the paper's three policies with a
// service-level objective: among the devices predicted to finish a batch
// within the deadline, pick the most energy-efficient one; if no device
// can meet it, pick the fastest. Predictions come from the same shadow
// cost models the oracle replay uses, plus the live queue and warm state
// of each device — a model-based counterpart to the learned policies.
// The serving pipeline routes deadline-carrying batches through here and
// uses FeasibleWithin as its admission-control predictor.

// DeadlineDecision reports the outcome of a deadline-constrained choice.
type DeadlineDecision struct {
	Decision
	Deadline   time.Duration
	Predicted  time.Duration // predicted completion latency on the pick
	Met        bool          // the pick is predicted to meet the deadline
	Candidates int           // devices predicted to meet the deadline
}

// deadlineCand is one device's predicted cost for a deadline decision.
type deadlineCand struct {
	class   int
	name    string
	latency time.Duration // queue wait + predicted execution
	energy  float64
}

// shadowKey identifies one cacheable shadow measurement: the uncontended
// latency/energy of (model, batch) on a device depends only on the device
// profile, the architecture and the warm state — all immutable once the
// model is loaded — so shadow runs are memoised instead of rebuilding a
// runtime per prediction (the admission path calls this per request).
type shadowKey struct {
	device string
	model  string
	batch  int
	warm   bool
}

type shadowCost struct {
	latency time.Duration
	energy  float64
}

// shadowCost returns the memoised uncontended cost of a batch on a
// device, mirroring the live device's warm state at virtual time at.
func (s *Scheduler) shadowCost(devName, model string, batch int, at time.Duration) (shadowCost, error) {
	var warm bool
	for _, d := range s.devices {
		if d.Name() == devName {
			warm = d.StateAt(at).Warm
			break
		}
	}
	key := shadowKey{device: devName, model: model, batch: batch, warm: warm}
	s.shadowMu.Lock()
	if s.shadowCache == nil {
		s.shadowCache = map[shadowKey]shadowCost{}
	}
	if c, ok := s.shadowCache[key]; ok {
		s.shadowMu.Unlock()
		return c, nil
	}
	s.shadowMu.Unlock()
	res, err := s.shadowEstimate(devName, shadowReq{Model: model, Batch: batch, At: at})
	if err != nil {
		return shadowCost{}, err
	}
	c := shadowCost{latency: res.Latency(), energy: res.EnergyJ}
	s.shadowMu.Lock()
	s.shadowCache[key] = c
	s.shadowMu.Unlock()
	return c, nil
}

// deadlineCandidates predicts, for every schedulable device, the
// completion latency of a batch submitted at virtual time now: committed
// busy horizon, live worker-queue occupancy (the pipeline's queue probe,
// when attached), the shadow execution model, and the health monitor's
// observed-slowdown estimate. Quarantined devices are fenced off unless
// every device is quarantined — refusing to predict would fail the
// request outright.
func (s *Scheduler) deadlineCandidates(model string, batch int, now time.Duration) ([]deadlineCand, error) {
	s.mu.Lock()
	probe := s.queueProbe
	health := s.health
	s.mu.Unlock()

	var cands, fenced []deadlineCand
	for class, d := range s.devices {
		name := d.Name()
		shadow, err := s.shadowCost(name, model, batch, now)
		if err != nil {
			return nil, err
		}
		wait := d.StateAt(now).BusyUntil - now
		if wait < 0 {
			wait = 0
		}
		if probe != nil {
			wait += probe(name)
		}
		// Fold in the observed interference estimate so a contended
		// device's prediction reflects reality.
		slow := health.slowdownEstimate(name)
		if slow < 1 {
			slow = 1
		}
		c := deadlineCand{
			class:   class,
			name:    name,
			latency: wait + time.Duration(float64(shadow.latency)*slow),
			energy:  shadow.energy,
		}
		if health.isQuarantined(name) {
			fenced = append(fenced, c)
			continue
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		cands = fenced
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: no devices to predict %s batch %d on", model, batch)
	}
	return cands, nil
}

// SelectWithDeadline picks a device for one request under a latency SLO
// at virtual time now.
func (s *Scheduler) SelectWithDeadline(model string, batch int, deadline time.Duration, now time.Duration) (DeadlineDecision, error) {
	if batch <= 0 {
		return DeadlineDecision{}, fmt.Errorf("core: batch size must be positive, got %d", batch)
	}
	if deadline <= 0 {
		return DeadlineDecision{}, fmt.Errorf("core: deadline must be positive, got %v", deadline)
	}
	if _, err := s.disp.Spec(model); err != nil {
		return DeadlineDecision{}, err
	}
	cands, err := s.deadlineCandidates(model, batch, now)
	if err != nil {
		return DeadlineDecision{}, err
	}

	best := -1
	meeting := 0
	for i, c := range cands {
		if c.latency <= deadline {
			meeting++
			if best == -1 || c.energy < cands[best].energy {
				best = i
			}
		}
	}
	met := best != -1
	if !met {
		// Nothing meets the SLO: minimise the damage.
		for i, c := range cands {
			if best == -1 || c.latency < cands[best].latency {
				best = i
			}
		}
	}

	chosen := cands[best]
	dec := DeadlineDecision{
		Decision: Decision{
			Model:   model,
			Batch:   batch,
			Class:   chosen.class,
			Device:  chosen.name,
			GPUWarm: s.probeGPU(now),
		},
		Deadline:   deadline,
		Predicted:  chosen.latency,
		Met:        met,
		Candidates: meeting,
	}
	s.mu.Lock()
	s.stats.Decisions++
	s.stats.PerDevice[dec.Device]++
	s.mu.Unlock()
	return dec, nil
}

// FeasibleWithin reports whether any device is predicted to complete a
// batch within the deadline at virtual time now, and the best predicted
// completion latency. The serving pipeline's admission control uses it
// to reject requests that are doomed before they queue: the prediction
// reads the same latency model and live queue state SelectWithDeadline
// does, so an admit implies at least one device was expected to make it.
func (s *Scheduler) FeasibleWithin(model string, batch int, deadline, now time.Duration) (bool, time.Duration, error) {
	if batch <= 0 {
		return false, 0, fmt.Errorf("core: batch size must be positive, got %d", batch)
	}
	if deadline <= 0 {
		return false, 0, fmt.Errorf("core: deadline must be positive, got %v", deadline)
	}
	cands, err := s.deadlineCandidates(model, batch, now)
	if err != nil {
		return false, 0, err
	}
	best := cands[0].latency
	for _, c := range cands[1:] {
		if c.latency < best {
			best = c.latency
		}
	}
	return best <= deadline, best, nil
}
