package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"bomw/internal/characterize"
	"bomw/internal/mlsched"
	"bomw/internal/opencl"
)

// Scheduler state persistence: the offline phase (characterisation +
// training, ≈26 s on the paper's testbed) runs once, and its result —
// the per-policy random forests — is saved so later processes restart
// instantly with LoadState.

const stateMagic = uint32(0x424D5353) // "BMSS"

// maxForestBlob bounds one serialised classifier section. Real forests
// (20 trees, depth ≤ 10) serialise to a few hundred KB; anything near
// this cap is corrupt or hostile.
const maxForestBlob = 64 << 20

// SaveState serialises the trained per-policy classifiers. Only forest
// classifiers are serialisable; schedulers built with custom classifier
// factories return an error.
func (s *Scheduler) SaveState(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, stateMagic); err != nil {
		return fmt.Errorf("core: writing state header: %w", err)
	}
	pols := characterize.Objectives()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(pols))); err != nil {
		return fmt.Errorf("core: writing state header: %w", err)
	}
	for _, pol := range pols {
		forest, ok := s.classifiers[pol].(*mlsched.Forest)
		if !ok {
			return fmt.Errorf("core: %v classifier is %T, only forests serialise", pol, s.classifiers[pol])
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(pol)); err != nil {
			return err
		}
		// Length-prefix the forest blob so sequential reads never leak
		// buffered bytes between sections.
		var buf bytes.Buffer
		if err := forest.Serialize(&buf); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(buf.Len())); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// LoadState builds a scheduler from previously saved classifiers,
// skipping characterisation and training entirely. The device set of cfg
// must match the one the state was trained on (same class order).
// cfg.TrainModels is ignored.
func LoadState(cfg Config, r io.Reader) (*Scheduler, error) {
	cfg.fillDefaults()
	rt, err := opencl.NewRuntime(cfg.Devices...)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:         cfg,
		rt:          rt,
		disp:        NewDispatcher(rt),
		devices:     cfg.Devices,
		classifiers: map[Policy]mlsched.Classifier{},
		cvMetrics:   map[Policy]mlsched.Metrics{},
		health:      newHealthMonitor(),
		stats:       Stats{PerDevice: map[string]int{}, PerPolicy: map[Policy]int{}},
	}
	for _, d := range cfg.Devices {
		if d.Profile().HasBoost {
			s.dgpu = d
			break
		}
	}
	var magic, count uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("core: reading state header: %w", err)
	}
	if magic != stateMagic {
		return nil, fmt.Errorf("core: bad state magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("core: reading state header: %w", err)
	}
	if count == 0 || count > 16 {
		return nil, fmt.Errorf("core: implausible policy count %d", count)
	}
	for i := uint32(0); i < count; i++ {
		var polRaw uint32
		if err := binary.Read(r, binary.LittleEndian, &polRaw); err != nil {
			return nil, fmt.Errorf("core: reading policy tag: %w", err)
		}
		valid := false
		for _, pol := range characterize.Objectives() {
			if Policy(polRaw) == pol {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("core: unknown policy tag %d in saved state", polRaw)
		}
		if _, dup := s.classifiers[Policy(polRaw)]; dup {
			return nil, fmt.Errorf("core: duplicate %v classifier in saved state", Policy(polRaw))
		}
		var blobLen uint64
		if err := binary.Read(r, binary.LittleEndian, &blobLen); err != nil {
			return nil, fmt.Errorf("core: reading forest length: %w", err)
		}
		if blobLen > maxForestBlob {
			return nil, fmt.Errorf("core: implausible forest blob of %d bytes", blobLen)
		}
		// Copy incrementally instead of pre-allocating blobLen: a hostile
		// header claiming a huge length backed by a tiny file must fail
		// with an allocation proportional to the bytes actually present.
		var blob bytes.Buffer
		if n, err := io.CopyN(&blob, r, int64(blobLen)); err != nil {
			return nil, fmt.Errorf("core: reading forest blob: got %d of %d bytes: %w", n, blobLen, err)
		}
		forest, err := mlsched.ReadForest(bytes.NewReader(blob.Bytes()))
		if err != nil {
			return nil, err
		}
		s.classifiers[Policy(polRaw)] = forest
	}
	for _, pol := range characterize.Objectives() {
		if _, ok := s.classifiers[pol]; !ok {
			return nil, fmt.Errorf("core: saved state missing %v classifier", pol)
		}
	}
	s.buildPolicySet()
	return s, nil
}
