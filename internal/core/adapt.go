package core

import (
	"fmt"
	"sync"
	"time"

	"bomw/internal/opencl"
)

// healthMonitor implements the scheduler's response to "system changes"
// (§I): it compares the latency each device actually delivers against
// what the characterisation model expects from an uncontended device,
// keeps an exponentially weighted slowdown estimate per device, and
// demotes devices whose estimate exceeds a threshold. When the
// interference clears (observed ratios return to ≈1) the device is
// promoted again — the scheduler "responds quickly to dynamic performance
// fluctuations".
type healthMonitor struct {
	mu        sync.Mutex
	ratio     map[string]float64 // EWMA of observed/expected latency
	alpha     float64
	threshold float64
}

func newHealthMonitor() *healthMonitor {
	return &healthMonitor{ratio: map[string]float64{}, alpha: 0.4, threshold: 1.5}
}

// observe folds one (expected, observed) latency pair into the estimate.
func (h *healthMonitor) observe(dev string, expected, observed time.Duration) {
	if expected <= 0 || observed <= 0 {
		return
	}
	r := float64(observed) / float64(expected)
	h.mu.Lock()
	defer h.mu.Unlock()
	old, ok := h.ratio[dev]
	if !ok {
		old = 1
	}
	h.ratio[dev] = (1-h.alpha)*old + h.alpha*r
}

// degraded reports whether the device is currently flagged as suffering
// external interference.
func (h *healthMonitor) degraded(dev string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ratio[dev] > h.threshold
}

// slowdownEstimate returns the current EWMA ratio (1 = healthy).
func (h *healthMonitor) slowdownEstimate(dev string) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if r, ok := h.ratio[dev]; ok {
		return r
	}
	return 1
}

// Observe feeds one completed execution back into the scheduler's health
// monitor: the realized latency is compared against the expected latency
// of an uncontended device in the same warm state (measured on a shadow
// copy). Callers should invoke it after every Classify/Estimate whose
// result they act on; Replay does so automatically.
func (s *Scheduler) Observe(dec Decision, res *opencl.Result) error {
	if res == nil {
		return fmt.Errorf("core: Observe needs a result")
	}
	shadow, err := s.shadowExpect(dec)
	if err != nil {
		return err
	}
	// Exclude queueing: interference shows in execution, not arrival.
	observed := res.Completed - res.Events[0].Start
	s.monitor().observe(dec.Device, shadow, observed)
	return nil
}

// shadowRequest converts a decision back into the request it served.
func shadowRequest(dec Decision) shadowReq {
	return shadowReq{Model: dec.Model, Batch: dec.Batch, At: 0}
}

// shadowExpect returns the uncontended expected latency for a decision.
func (s *Scheduler) shadowExpect(dec Decision) (time.Duration, error) {
	res, err := s.shadowEstimate(dec.Device, shadowRequest(dec))
	if err != nil {
		return 0, err
	}
	return res.Latency(), nil
}

// DeviceHealth reports the monitor's current slowdown estimate and
// degraded flag for a device.
func (s *Scheduler) DeviceHealth(dev string) (slowdown float64, degraded bool) {
	h := s.monitor()
	return h.slowdownEstimate(dev), h.degraded(dev)
}
