package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bomw/internal/opencl"
)

// healthMonitor implements the scheduler's response to "system changes"
// (§I): it compares the latency each device actually delivers against
// what the characterisation model expects from an uncontended device,
// keeps an exponentially weighted slowdown estimate per device, and
// demotes devices whose estimate exceeds a threshold. When the
// interference clears (observed ratios return to ≈1) the device is
// promoted again — the scheduler "responds quickly to dynamic performance
// fluctuations".
// The monitor also owns the scheduler's failure domain: consecutive
// execution errors quarantine a device (Select stops routing to it), and
// a successful execution — normally a recovery probe — re-admits it.
type healthMonitor struct {
	mu        sync.Mutex
	ratio     map[string]float64 // EWMA of observed/expected latency
	alpha     float64
	threshold float64

	errs        map[string]int  // consecutive execution errors per device
	quar        map[string]bool // devices currently quarantined
	quarAfter   int             // consecutive errors that trigger quarantine
	quarantines int64           // lifetime quarantine transitions
	readmits    int64           // lifetime recovery transitions
}

func newHealthMonitor() *healthMonitor {
	return &healthMonitor{
		ratio:     map[string]float64{},
		alpha:     0.4,
		threshold: 1.5,
		errs:      map[string]int{},
		quar:      map[string]bool{},
		quarAfter: 3,
	}
}

// observe folds one (expected, observed) latency pair into the estimate.
func (h *healthMonitor) observe(dev string, expected, observed time.Duration) {
	if expected <= 0 || observed <= 0 {
		return
	}
	r := float64(observed) / float64(expected)
	h.mu.Lock()
	defer h.mu.Unlock()
	old, ok := h.ratio[dev]
	if !ok {
		old = 1
	}
	h.ratio[dev] = (1-h.alpha)*old + h.alpha*r
}

// degraded reports whether the device is currently flagged as suffering
// external interference.
func (h *healthMonitor) degraded(dev string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ratio[dev] > h.threshold
}

// slowdownEstimate returns the current EWMA ratio (1 = healthy).
func (h *healthMonitor) slowdownEstimate(dev string) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if r, ok := h.ratio[dev]; ok {
		return r
	}
	return 1
}

// recordError counts one execution error; reaching the consecutive-error
// threshold quarantines the device. Reports whether this call caused the
// quarantine transition.
func (h *healthMonitor) recordError(dev string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.errs[dev]++
	if !h.quar[dev] && h.errs[dev] >= h.quarAfter {
		h.quar[dev] = true
		h.quarantines++
		return true
	}
	return false
}

// recordSuccess resets the consecutive-error count and re-admits a
// quarantined device — success is the recovery signal, whether it came
// from a dedicated probe or from a batch that had nowhere else to run.
// Reports whether the device was re-admitted by this call.
func (h *healthMonitor) recordSuccess(dev string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.errs[dev] = 0
	if h.quar[dev] {
		delete(h.quar, dev)
		h.readmits++
		return true
	}
	return false
}

// isQuarantined reports whether the device is currently fenced off.
func (h *healthMonitor) isQuarantined(dev string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quar[dev]
}

// quarantinedList returns the currently quarantined devices.
func (h *healthMonitor) quarantinedList() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.quar))
	for dev := range h.quar {
		out = append(out, dev)
	}
	return out
}

// counters snapshots the lifetime quarantine/readmission totals.
func (h *healthMonitor) counters() (quarantines, readmits int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quarantines, h.readmits
}

// Observe feeds one completed execution back into the scheduler's health
// monitor: the realized latency is compared against the expected latency
// of an uncontended device in the same warm state (measured on a shadow
// copy). Callers should invoke it after every Classify/Estimate whose
// result they act on; Replay does so automatically.
func (s *Scheduler) Observe(dec Decision, res *opencl.Result) error {
	if res == nil {
		return fmt.Errorf("core: Observe needs a result")
	}
	if len(res.Events) == 0 {
		return fmt.Errorf("core: Observe needs a result with profiling events (device %s, model %s)", res.Device, res.Model)
	}
	shadow, err := s.shadowExpect(dec)
	if err != nil {
		return err
	}
	// Exclude queueing: interference shows in execution, not arrival.
	observed := res.Completed - res.Events[0].Start
	s.monitor().observe(dec.Device, shadow, observed)
	return nil
}

// ReportExecution feeds one execution outcome into the failure domain:
// errors count toward the consecutive-error quarantine threshold, and a
// success resets the count (re-admitting a quarantined device). The
// serving pipeline calls it after every batch attempt.
func (s *Scheduler) ReportExecution(dev string, err error) {
	if err != nil {
		if s.monitor().recordError(dev) {
			s.invalidateDecisions() // quarantine transition changes fencing
		}
		return
	}
	if s.monitor().recordSuccess(dev) {
		s.invalidateDecisions() // readmission transition changes fencing
	}
}

// Quarantined lists the devices currently fenced off by the failure
// domain (sorted for stable output).
func (s *Scheduler) Quarantined() []string {
	out := s.monitor().quarantinedList()
	sort.Strings(out)
	return out
}

// ProbeQuarantined sends a one-sample probe execution to every
// quarantined device at virtual time now; a successful probe re-admits
// the device ("the system changes" both ways, §I — degradation and
// recovery). Returns the devices re-admitted by this sweep. The serving
// pipeline calls it periodically; tests and operators may call it
// directly. A no-op when no model is loaded yet.
func (s *Scheduler) ProbeQuarantined(now time.Duration) []string {
	h := s.monitor()
	quarantined := h.quarantinedList()
	if len(quarantined) == 0 {
		return nil
	}
	models := s.rt.Models()
	if len(models) == 0 {
		return nil
	}
	var readmitted []string
	for _, dev := range quarantined {
		if _, err := s.rt.Estimate(dev, models[0], 1, now); err != nil {
			continue // still failing: stay quarantined
		}
		if h.recordSuccess(dev) {
			s.invalidateDecisions() // readmission transition changes fencing
			readmitted = append(readmitted, dev)
		}
	}
	sort.Strings(readmitted)
	return readmitted
}

// shadowRequest converts a decision back into the request it served.
func shadowRequest(dec Decision) shadowReq {
	return shadowReq{Model: dec.Model, Batch: dec.Batch, At: 0}
}

// shadowExpect returns the uncontended expected latency for a decision.
// It reads through the memoised shadow-cost table (deadline.go): Observe
// runs once per served batch, and rebuilding a shadow runtime per call
// would dominate the pipeline's completion path.
func (s *Scheduler) shadowExpect(dec Decision) (time.Duration, error) {
	req := shadowRequest(dec)
	c, err := s.shadowCost(dec.Device, req.Model, req.Batch, req.At)
	if err != nil {
		return 0, err
	}
	return c.latency, nil
}

// DeviceHealth reports the monitor's current slowdown estimate and
// degraded flag for a device.
func (s *Scheduler) DeviceHealth(dev string) (slowdown float64, degraded bool) {
	h := s.monitor()
	return h.slowdownEstimate(dev), h.degraded(dev)
}
