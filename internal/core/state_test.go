package core

import (
	"bytes"
	"testing"

	"bomw/internal/characterize"
	"bomw/internal/mlsched"
	"bomw/internal/models"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	s := testScheduler(t)
	var buf bytes.Buffer
	if err := s.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadState(Config{}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadModel(models.MnistSmall(), 1); err != nil {
		t.Fatal(err)
	}
	// The restored scheduler must make identical predictions.
	for _, pol := range characterize.Objectives() {
		for _, batch := range []int{2, 512, 65536} {
			for _, warm := range []bool{false, true} {
				feats := characterize.Features(models.MnistSmall().Descriptor(), batch, warm)
				if s.Classifier(pol).Predict(feats) != restored.Classifier(pol).Predict(feats) {
					t.Fatalf("%v batch %d warm=%t: restored prediction differs", pol, batch, warm)
				}
			}
		}
	}
	// And it can schedule immediately.
	dec, err := restored.Select("mnist-small", 4096, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == "" {
		t.Fatal("restored scheduler returned empty device")
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	if _, err := LoadState(Config{}, bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage state accepted")
	}
	if _, err := LoadState(Config{}, bytes.NewReader(nil)); err == nil {
		t.Fatal("empty state accepted")
	}
}

func TestSaveStateRequiresForests(t *testing.T) {
	s, err := New(Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 8192},
		Reps:        1,
		BuildClassifier: func(seed int64) mlsched.Classifier {
			return mlsched.NewKNN(5)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveState(&buf); err == nil {
		t.Fatal("non-forest classifier serialised")
	}
}
