package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bomw/internal/opencl"
	"bomw/internal/trace"
)

// faultyScheduler builds a private scheduler with a fault injector
// attached to its runtime.
func faultyScheduler(t *testing.T, seed int64) (*Scheduler, *opencl.FaultInjector) {
	t.Helper()
	s := smallScheduler(t, Config{})
	fi := opencl.NewFaultInjector(seed)
	s.Runtime().SetFaultInjector(fi)
	return s, fi
}

func TestSelectExcluding(t *testing.T) {
	s := testScheduler(t)
	first, err := s.Select("mnist-small", 4096, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := s.SelectExcluding("mnist-small", 4096, BestThroughput, 0, map[string]bool{first.Device: true})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == first.Device {
		t.Fatalf("exclusion ignored: still picked %s", dec.Device)
	}
	if !dec.Spilled {
		t.Fatal("rerouting off the predicted device must count as a spill")
	}
	// Excluding everything leaves nowhere to go.
	all := map[string]bool{}
	for _, name := range s.Devices() {
		all[name] = true
	}
	if _, err := s.SelectExcluding("mnist-small", 4096, BestThroughput, 0, all); !errors.Is(err, ErrNoEligibleDevice) {
		t.Fatalf("all-excluded Select = %v, want ErrNoEligibleDevice", err)
	}
}

func TestObserveRejectsResultWithoutEvents(t *testing.T) {
	s := testScheduler(t)
	dec, err := s.Select("mnist-small", 8, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := &opencl.Result{Device: dec.Device, Model: "mnist-small", Batch: 8}
	if err := s.Observe(dec, res); err == nil {
		t.Fatal("Observe accepted a result with no profiling events")
	}
}

func TestQuarantineRoutesAroundAndReadmits(t *testing.T) {
	s, fi := faultyScheduler(t, 1)
	first, err := s.Select("mnist-small", 8, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	fi.SetPlan(first.Device, opencl.FaultPlan{ErrorRate: 1})

	// Three consecutive execution errors quarantine the device.
	for i := 0; i < 3; i++ {
		_, err := s.Runtime().Estimate(first.Device, "mnist-small", 8, 0)
		if err == nil {
			t.Fatal("error rate 1 did not fail")
		}
		s.ReportExecution(first.Device, err)
	}
	st := s.Stats()
	if st.Quarantines != 1 || len(st.Quarantined) != 1 || st.Quarantined[0] != first.Device {
		t.Fatalf("stats after 3 errors = %+v, want %s quarantined", st, first.Device)
	}
	dec, err := s.Select("mnist-small", 8, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == first.Device {
		t.Fatal("Select routed to a quarantined device")
	}
	if !dec.Spilled {
		t.Fatal("quarantine reroute must count as a spill")
	}

	// A probe against the still-failing device must not re-admit it.
	if got := s.ProbeQuarantined(0); len(got) != 0 {
		t.Fatalf("probe re-admitted a failing device: %v", got)
	}
	// Once the fault clears, the probe re-admits.
	fi.ClearPlan(first.Device)
	got := s.ProbeQuarantined(0)
	if len(got) != 1 || got[0] != first.Device {
		t.Fatalf("probe after recovery = %v, want [%s]", got, first.Device)
	}
	st = s.Stats()
	if st.Readmissions != 1 || len(st.Quarantined) != 0 {
		t.Fatalf("stats after readmission = %+v", st)
	}
}

func TestSelectServesEvenWhenAllQuarantined(t *testing.T) {
	s, fi := faultyScheduler(t, 1)
	for _, name := range s.Devices() {
		fi.SetPlan(name, opencl.FaultPlan{ErrorRate: 1})
		for i := 0; i < 3; i++ {
			_, err := s.Runtime().Estimate(name, "mnist-small", 8, 0)
			s.ReportExecution(name, err)
		}
	}
	if st := s.Stats(); len(st.Quarantined) != len(s.Devices()) {
		t.Fatalf("not all devices quarantined: %+v", st)
	}
	// With every device fenced off, refusing to schedule would fail the
	// request outright — Select must still name a device.
	dec, err := s.Select("mnist-small", 8, BestThroughput, 0)
	if err != nil {
		t.Fatalf("Select with all devices quarantined: %v", err)
	}
	if dec.Device == "" {
		t.Fatal("empty decision")
	}
}

func TestPipelineFailoverCompletesRequests(t *testing.T) {
	s, fi := faultyScheduler(t, 1)
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, ProbeInterval: -1, RetryBackoff: -1})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Learn which device serves this workload, then fail it at 100%.
	warmup, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8})
	if err != nil || warmup.Err != nil {
		t.Fatalf("warmup: %v / %v", err, warmup.Err)
	}
	failed := warmup.Decision.Device
	fi.SetPlan(failed, opencl.FaultPlan{ErrorRate: 1})

	for i := 0; i < 6; i++ {
		c, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if c.Err != nil {
			t.Fatalf("request %d failed despite failover: %v", i, c.Err)
		}
		if c.Decision.Device == failed {
			t.Fatalf("request %d reported completion on the failing device", i)
		}
	}
	st := p.Stats()
	if st.Retries == 0 || st.Failovers == 0 {
		t.Fatalf("pipeline stats = %+v, want retries and failovers counted", st)
	}
	if st.ExecFailures != 0 {
		t.Fatalf("exec failures = %d, want 0 (every batch must fail over)", st.ExecFailures)
	}
	sst := s.Stats()
	if sst.Quarantines == 0 {
		t.Fatalf("persistent failures never quarantined the device: %+v", sst)
	}
}

// TestPipelineCloseWaitsForQueuedBatches is the regression test for the
// drain bug: Close used to return as soon as the worker channels were
// closed, before workers finished queued batches — violating the
// contract that every accepted request's future resolves before Close
// returns.
func TestPipelineCloseWaitsForQueuedBatches(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, ProbeInterval: -1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	p.testExecHook = func(string) {
		entered <- struct{}{}
		<-release
	}

	fut, err := p.Submit(context.Background(), PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the worker now holds the batch

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a worker still held a batch")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	<-closed
	// The future must already be resolved — no waiting allowed.
	select {
	case c := <-fut.ch:
		if c.Err != nil {
			t.Fatalf("held batch failed: %v", c.Err)
		}
	default:
		t.Fatal("Close returned before the accepted request's future resolved")
	}
}

// TestPipelinePlayWaitsForInflightOnSubmitError is the regression test
// for the future leak: a Submit error used to return from Play without
// wg.Wait(), abandoning completion goroutines mid-write.
func TestPipelinePlayWaitsForInflightOnSubmitError(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, ProbeInterval: -1})
	defer p.Close()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	p.testExecHook = func(string) {
		entered <- struct{}{}
		<-release
	}

	tr := trace.Trace{
		{At: 0, Model: "mnist-small", Batch: 1},
		{At: time.Millisecond, Model: "no-such-model", Batch: 1},
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Play(context.Background(), tr, BestThroughput, 1)
		done <- err
	}()
	<-entered // the first request is executing (held); the second will fail Submit
	select {
	case err := <-done:
		t.Fatalf("Play returned (%v) while a submitted future was unresolved", err)
	case <-time.After(150 * time.Millisecond):
	}
	close(release)
	if err := <-done; err == nil {
		t.Fatal("Play accepted an unknown model")
	}
	waitForDrain(t, p)
}

// waitForDrain polls until every submitted request has completed.
func waitForDrain(t *testing.T, p *Pipeline) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.Completed == st.Submitted {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPipelinePlaySurvivesDeviceOutage is the acceptance scenario: one
// device fails at a 100% error rate mid-run (a scripted outage window on
// the virtual clock), yet a replayed trace completes every admitted
// request via failover, the failed device is quarantined, and after the
// window it is probed and re-admitted.
func TestPipelinePlaySurvivesDeviceOutage(t *testing.T) {
	// Spill adaptation is disabled so routing stays pinned to the
	// ranked-best device until the failure domain (not queue occupancy)
	// reroutes it — the point under test.
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	fi := opencl.NewFaultInjector(3)
	s.Runtime().SetFaultInjector(fi)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	p := NewPipeline(s, PipelineConfig{MaxBatch: 64, ProbeInterval: 5 * time.Millisecond, RetryBackoff: -1, Clock: clock})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Learn the hot device for this workload, then script an outage that
	// starts mid-run and ends before the trace does. The pipeline's
	// virtual clock is wall time since `start`, so the window is anchored
	// to the clock reading observed after warmup (warmup wall time — model
	// ranking included — would otherwise race past a fixed window).
	warmup, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 64})
	if err != nil || warmup.Err != nil {
		t.Fatalf("warmup: %v / %v", err, warmup.Err)
	}
	failed := warmup.Decision.Device
	now := clock()
	fi.SetPlan(failed, opencl.FaultPlan{Outages: []opencl.OutageWindow{
		{Start: now + 100*time.Millisecond, End: now + 450*time.Millisecond},
	}})

	// ~400 requests over ~0.8 s of wall time straddle the outage.
	tr, err := trace.Poisson(400, 500, []string{"mnist-small"}, []int{64}, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Play(ctx, tr, BestThroughput, 1)
	if err != nil {
		t.Fatalf("outage leaked to a client: %v", err)
	}
	if res.Requests+res.Dropped != len(tr) {
		t.Fatalf("requests %d + dropped %d ≠ trace %d", res.Requests, res.Dropped, len(tr))
	}
	if res.Requests == 0 {
		t.Fatal("every request was dropped")
	}
	st := p.Stats()
	if st.ExecFailures != 0 {
		t.Fatalf("exec failures = %d: %d batches failed clients despite failover", st.ExecFailures, st.ExecFailures)
	}
	if st.Retries == 0 {
		t.Fatalf("the outage never triggered a retry — fault not exercised (pipeline %+v, faults %+v)", st, fi.Stats())
	}
	sst := s.Stats()
	if sst.Quarantines == 0 {
		t.Fatalf("outage never quarantined %s: %+v", failed, sst)
	}
	// The prober re-admits the device once the outage window has passed.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Readmissions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("recovered device never re-admitted: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if q := s.Quarantined(); len(q) != 0 {
		t.Fatalf("still quarantined after recovery: %v", q)
	}
}

// TestSoakShedRetryQuarantine is the overload+fault soak (`make soak`
// runs it under -race): concurrent clients overrun a small admission
// queue while one device fails persistently, exercising shedding,
// retry/failover, quarantine and probe-driven recovery together. Every
// accepted request must still complete successfully.
func TestSoakShedRetryQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	s, fi := faultyScheduler(t, 13)
	p := NewPipeline(s, PipelineConfig{
		QueueDepth:    4,
		MaxBatch:      32,
		ProbeInterval: 5 * time.Millisecond,
		RetryBackoff:  -1,
	})
	// A slow executor induces real backpressure so admission sheds.
	p.testExecHook = func(string) { time.Sleep(500 * time.Microsecond) }
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	warmup, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8})
	if err != nil || warmup.Err != nil {
		t.Fatalf("warmup: %v / %v", err, warmup.Err)
	}
	failed := warmup.Decision.Device
	fi.SetPlan(failed, opencl.FaultPlan{ErrorRate: 1})

	const (
		clients = 24
		perC    = 50
	)
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				comp, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 4})
				switch {
				case errors.Is(err, ErrAdmissionFull):
					shed.Add(1)
				case err != nil:
					errCh <- err
					return
				case comp.Err != nil:
					errCh <- comp.Err
					return
				default:
					ok.Add(1)
				}
			}
		}()
	}
	// The device recovers once its failures have quarantined it; the
	// prober should re-admit it while traffic is still flowing.
	go func() {
		for s.Stats().Quarantines == 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
		fi.ClearPlan(failed)
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("accepted request failed during soak: %v", err)
	}
	p.Close()

	st := p.Stats()
	if ok.Load() == 0 {
		t.Fatal("no request survived the soak")
	}
	if st.Submitted != st.Completed || st.InFlight != 0 {
		t.Fatalf("drain left work behind: %+v", st)
	}
	if st.ExecFailures != 0 {
		t.Fatalf("exec failures = %d, want 0 (failover must absorb the bad device)", st.ExecFailures)
	}
	if st.Retries == 0 {
		t.Fatal("fault injection never triggered a retry")
	}
	sst := s.Stats()
	if sst.Quarantines == 0 {
		t.Fatalf("failing device never quarantined: %+v", sst)
	}
	if sst.Readmissions == 0 {
		t.Fatalf("recovered device never re-admitted: %+v", sst)
	}
	t.Logf("soak: ok=%d shed=%d retries=%d failovers=%d quarantines=%d readmits=%d",
		ok.Load(), shed.Load(), st.Retries, st.Failovers, sst.Quarantines, sst.Readmissions)
}
