package core

import (
	"testing"
	"time"

	"bomw/internal/trace"
)

func TestObserveUpdatesHealth(t *testing.T) {
	s := testScheduler(t)
	res, dec, err := s.Estimate("mnist-small", 4096, LowestLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(dec, res); err != nil {
		t.Fatal(err)
	}
	slow, degraded := s.DeviceHealth(dec.Device)
	if degraded {
		t.Fatal("uncontended device flagged degraded")
	}
	if slow < 0.5 || slow > 1.5 {
		t.Fatalf("healthy slowdown estimate %.2f, want ≈1", slow)
	}
	if err := s.Observe(dec, nil); err == nil {
		t.Fatal("Observe(nil) accepted")
	}
}

func TestHealthMonitorDetectsInterference(t *testing.T) {
	s := testScheduler(t)
	// Find which device the scheduler prefers, then slam it with an
	// external tenant.
	first, err := s.Select("mnist-small", 4096, LowestLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.cfg.Devices {
		if d.Name() == first.Device {
			d.SetSlowdown(5)
		}
	}
	// A few observed executions must push the EWMA past the threshold.
	at := time.Duration(0)
	for i := 0; i < 4; i++ {
		res, err := s.rt.Estimate(first.Device, "mnist-small", 4096, at)
		if err != nil {
			t.Fatal(err)
		}
		at = res.Completed
		if err := s.Observe(Decision{Model: "mnist-small", Batch: 4096, Device: first.Device}, res); err != nil {
			t.Fatal(err)
		}
	}
	slow, degraded := s.DeviceHealth(first.Device)
	if !degraded {
		t.Fatalf("5x contended device not flagged (estimate %.2f)", slow)
	}
	// The next decision must route around the contended device.
	dec, err := s.Select("mnist-small", 4096, LowestLatency, at)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == first.Device {
		t.Fatal("scheduler kept using the degraded device")
	}
	if !dec.Spilled {
		t.Fatal("interference reroute should count as a spill")
	}
}

func TestHealthRecovers(t *testing.T) {
	s := testScheduler(t)
	first, err := s.Select("mnist-small", 4096, LowestLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	var dev = first.Device
	for _, d := range s.cfg.Devices {
		if d.Name() == dev {
			d.SetSlowdown(5)
		}
	}
	at := time.Duration(0)
	for i := 0; i < 4; i++ {
		res, _ := s.rt.Estimate(dev, "mnist-small", 4096, at)
		at = res.Completed
		if err := s.Observe(Decision{Model: "mnist-small", Batch: 4096, Device: dev}, res); err != nil {
			t.Fatal(err)
		}
	}
	if _, degraded := s.DeviceHealth(dev); !degraded {
		t.Fatal("device should be degraded")
	}
	// Interference clears; healthy observations bring the EWMA back.
	for _, d := range s.cfg.Devices {
		if d.Name() == dev {
			d.SetSlowdown(1)
		}
	}
	for i := 0; i < 6; i++ {
		res, _ := s.rt.Estimate(dev, "mnist-small", 4096, at)
		at = res.Completed
		if err := s.Observe(Decision{Model: "mnist-small", Batch: 4096, Device: dev}, res); err != nil {
			t.Fatal(err)
		}
	}
	if _, degraded := s.DeviceHealth(dev); degraded {
		t.Fatal("device should have recovered")
	}
}

func TestReplayRoutesAroundInterference(t *testing.T) {
	// End to end: a replay with the preferred device contended should
	// end up cheaper than naively pinning to that device.
	s := testScheduler(t)
	tr, err := trace.Poisson(60, 50, []string{"mnist-small"}, []int{4096, 32768}, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline replay to find the dominant device.
	base, err := s.Replay(tr, LowestLatency)
	if err != nil {
		t.Fatal(err)
	}
	dominant, max := "", 0
	for dev, n := range base.PerDevice {
		if n > max {
			dominant, max = dev, n
		}
	}
	// Contend it. Replay resets devices, so apply slowdown inside a
	// wrapper replay: set after reset via fresh replay with prepared
	// devices — simplest is to re-run Select/Estimate manually.
	s.ResetDevices()
	for _, d := range s.cfg.Devices {
		if d.Name() == dominant {
			d.SetSlowdown(8)
		}
	}
	var adaptiveSum time.Duration
	movedAway := 0
	for _, req := range tr {
		res, dec, err := s.Estimate(req.Model, req.Batch, LowestLatency, req.At)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(dec, res); err != nil {
			t.Fatal(err)
		}
		adaptiveSum += res.Latency()
		if dec.Device != dominant {
			movedAway++
		}
	}
	if movedAway == 0 {
		t.Fatal("scheduler never adapted to the contended device")
	}
	// Pinned-to-contended baseline for the same trace.
	for _, d := range s.cfg.Devices {
		d.Reset()
		if d.Name() == dominant {
			d.SetSlowdown(8)
		}
	}
	var pinnedSum time.Duration
	for _, req := range tr {
		res, err := s.rt.Estimate(dominant, req.Model, req.Batch, req.At)
		if err != nil {
			t.Fatal(err)
		}
		pinnedSum += res.Latency()
	}
	if adaptiveSum >= pinnedSum {
		t.Fatalf("adaptive (%v) did not beat pinned-to-contended (%v)", adaptiveSum, pinnedSum)
	}
}
