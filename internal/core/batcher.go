package core

import (
	"fmt"
	"sort"
	"time"

	"bomw/internal/trace"
)

// Batcher is a dynamic batching frontend for the scheduler. The paper's
// characterisation (§IV-C) shows batch size is the decisive scheduling
// variable: single samples favour the CPU, large batches the discrete
// GPU. A serving system therefore aggregates arriving requests per model
// into batches before dispatch, trading queueing delay for device
// efficiency — this type implements that accumulation over virtual time.
type Batcher struct {
	// Window is the maximum time the first sample of a batch may wait
	// before the batch is flushed.
	Window time.Duration
	// MaxBatch flushes a batch as soon as it reaches this many samples.
	MaxBatch int
}

// Batch is one aggregated dispatch unit.
type Batch struct {
	Model   string
	Size    int
	FirstAt time.Duration // arrival of the oldest aggregated sample
	FlushAt time.Duration // when the batch was released to the scheduler
	// Requests counts the aggregated requests attributed to this batch.
	// A request split across batches (its Batch exceeded the remaining
	// MaxBatch capacity) counts toward the first batch it landed in, so
	// summing Requests over all batches equals the trace length.
	Requests int
}

// Wait returns the aggregation delay the oldest sample paid.
func (b Batch) Wait() time.Duration { return b.FlushAt - b.FirstAt }

// Aggregate folds a request trace into dispatch batches per model. The
// input must be time-ordered (as all trace generators produce).
func (b *Batcher) Aggregate(tr trace.Trace) ([]Batch, error) {
	if b.Window <= 0 || b.MaxBatch <= 0 {
		return nil, fmt.Errorf("core: batcher needs positive Window and MaxBatch")
	}
	type pending struct {
		size     int
		firstAt  time.Duration
		requests int
	}
	open := map[string]*pending{}
	var out []Batch

	flush := func(model string, at time.Duration) {
		p := open[model]
		if p == nil || p.size == 0 {
			return
		}
		out = append(out, Batch{
			Model:    model,
			Size:     p.size,
			FirstAt:  p.firstAt,
			FlushAt:  at,
			Requests: p.requests,
		})
		delete(open, model)
	}

	var prev time.Duration
	for i, req := range tr {
		if req.At < prev {
			return nil, fmt.Errorf("core: batcher input out of order at request %d", i)
		}
		prev = req.At
		// Flush any batch whose window expired before this arrival.
		for model, p := range open {
			if req.At >= p.firstAt+b.Window {
				flush(model, p.firstAt+b.Window)
			}
		}
		p := open[req.Model]
		if p == nil {
			p = &pending{firstAt: req.At}
			open[req.Model] = p
		}
		p.size += req.Batch
		p.requests++
		// Emit at most MaxBatch samples per batch. A request larger than
		// the remaining capacity is split: full MaxBatch slices flush now
		// and the remainder opens a fresh pending batch anchored at this
		// arrival, so no emitted batch ever exceeds MaxBatch. The split
		// request counts toward the first batch it lands in only, keeping
		// sum(Requests) equal to the trace length.
		for p.size >= b.MaxBatch {
			out = append(out, Batch{
				Model:    req.Model,
				Size:     b.MaxBatch,
				FirstAt:  p.firstAt,
				FlushAt:  req.At,
				Requests: p.requests,
			})
			rest := p.size - b.MaxBatch
			delete(open, req.Model)
			if rest == 0 {
				break
			}
			p = &pending{size: rest, firstAt: req.At}
			open[req.Model] = p
		}
	}
	// Flush stragglers at their window boundary.
	for model, p := range open {
		flush(model, p.firstAt+b.Window)
	}
	// Restore dispatch order (map iteration scrambled the tail).
	sortBatches(out)
	return out, nil
}

// sortBatches restores dispatch order by FlushAt. Stability matters:
// batches flushed at the same instant (a size trigger splitting one
// oversized request, or two models' windows expiring together) must
// keep their emission order. The previous insertion sort was stable too
// but quadratic — minutes of host time on a 1M-event trace — so this is
// sort.SliceStable (O(n log n)), guarded by a large-trace test.
func sortBatches(bs []Batch) {
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].FlushAt < bs[j].FlushAt })
}

// ReplayBatched aggregates the trace through the batcher and replays the
// resulting batches under a policy. The reported latency of each batch
// includes the aggregation wait of its oldest sample, so the
// batching-versus-latency trade-off is visible end to end.
func (s *Scheduler) ReplayBatched(tr trace.Trace, b *Batcher, pol Policy) (ReplayResult, error) {
	batches, err := b.Aggregate(tr)
	if err != nil {
		return ReplayResult{}, err
	}
	s.ResetDevices()
	res := ReplayResult{PerDevice: map[string]int{}}
	for _, batch := range batches {
		out, dec, err := s.Estimate(batch.Model, batch.Size, pol, batch.FlushAt)
		if err != nil {
			return ReplayResult{}, fmt.Errorf("core: batched replay at %v: %w", batch.FlushAt, err)
		}
		res.Requests += batch.Requests
		res.TotalSamples += int64(batch.Size)
		res.TotalEnergyJ += out.EnergyJ
		res.Record(batch.Wait() + out.Latency())
		if out.Completed > res.Makespan {
			res.Makespan = out.Completed
		}
		res.PerDevice[dec.Device] += batch.Requests
	}
	return res, nil
}
