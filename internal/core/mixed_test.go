package core

import (
	"testing"

	"bomw/internal/trace"
)

func TestMixTraceTagsPolicies(t *testing.T) {
	tr, err := trace.Poisson(30, 100, []string{"simple", "mnist-small"}, []int{8}, 6)
	if err != nil {
		t.Fatal(err)
	}
	mixed := MixTrace(tr, map[string]Policy{
		"simple": LowestLatency,
		// mnist-small deliberately unmapped → default policy.
	})
	if len(mixed) != len(tr) {
		t.Fatalf("mixed length %d", len(mixed))
	}
	for _, req := range mixed {
		switch req.Model {
		case "simple":
			if req.Policy != LowestLatency {
				t.Fatal("mapped model got wrong policy")
			}
		default:
			if req.Policy != BestThroughput {
				t.Fatal("unmapped model should default to throughput")
			}
		}
	}
}

func TestReplayMixedSharesDevices(t *testing.T) {
	s := testScheduler(t)
	tr, err := trace.Poisson(80, 300, []string{"simple", "mnist-small", "mnist-cnn"},
		[]int{8, 512, 8192}, 7)
	if err != nil {
		t.Fatal(err)
	}
	mixed := MixTrace(tr, map[string]Policy{
		"simple":      LowestLatency,
		"mnist-small": BestThroughput,
		"mnist-cnn":   EnergyEfficiency,
	})
	res, err := s.ReplayMixed(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Requests != 80 {
		t.Fatalf("total requests %d", res.Total.Requests)
	}
	if len(res.PerPolicy) != 3 {
		t.Fatalf("policies seen = %d", len(res.PerPolicy))
	}
	sum := 0
	for pol, pr := range res.PerPolicy {
		if pr.Requests == 0 {
			t.Fatalf("policy %v served nothing", pol)
		}
		if pr.AvgLatency() <= 0 || pr.TotalEnergyJ <= 0 {
			t.Fatalf("policy %v degenerate stats", pol)
		}
		sum += pr.Requests
	}
	if sum != res.Total.Requests {
		t.Fatalf("per-policy requests %d != total %d", sum, res.Total.Requests)
	}
	if res.Total.TotalEnergyJ <= 0 || res.Total.Percentile(99) <= 0 {
		t.Fatal("total aggregates degenerate")
	}
}

func TestReplayMixedErrorsOnUnknownModel(t *testing.T) {
	s := testScheduler(t)
	mixed := []MixedRequest{{Request: trace.Request{Model: "nope", Batch: 8}, Policy: BestThroughput}}
	if _, err := s.ReplayMixed(mixed); err == nil {
		t.Fatal("unknown model accepted")
	}
}
