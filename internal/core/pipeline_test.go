package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bomw/internal/models"
	"bomw/internal/nn"
	"bomw/internal/tensor"
	"bomw/internal/trace"
)

// smallScheduler builds a private scheduler quickly (coarse batch grid,
// one rep) for tests that need their own Config.
func smallScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	if cfg.TrainModels == nil {
		cfg.TrainModels = models.PaperModels()
	}
	if cfg.Batches == nil {
		cfg.Batches = []int{8, 512, 8192, 65536}
	}
	if cfg.Reps == 0 {
		cfg.Reps = 1
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range models.PaperModels() {
		if err := s.LoadModel(spec, 1); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func simpleSamples(n int) *tensor.Tensor {
	flat := make([]float32, n*4)
	for i := range flat {
		flat[i] = float32(i%7) * 0.25
	}
	return tensor.FromSlice(flat, n, 4)
}

func TestPipelineServesSingleRequest(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{})
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := p.Do(ctx, PipelineRequest{Model: "simple", Policy: LowestLatency, Input: simpleSamples(3)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if len(c.Classes) != 3 {
		t.Fatalf("classes = %v", c.Classes)
	}
	if c.Decision.Device == "" || c.BatchSize != 3 || c.EnergyJ <= 0 || c.Latency <= 0 {
		t.Fatalf("degenerate completion: %+v", c)
	}
	st := p.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The single request found an idle system: the work-conserving
	// batcher must dispatch it immediately, not hold the window.
	if st.IdleFlushes != 1 {
		t.Fatalf("idle flushes = %d, want 1 (stats %+v)", st.IdleFlushes, st)
	}
}

func TestPipelineAggregatesConcurrentRequests(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{Window: 50 * time.Millisecond, MaxBatch: 1024, HoldWindow: true})
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sizes := []int{1, 2, 3, 4}
	futs := make([]*Future, len(sizes))
	for i, n := range sizes {
		fut, err := p.Submit(ctx, PipelineRequest{Model: "simple", Policy: BestThroughput, Input: simpleSamples(n)})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	var device string
	for i, fut := range futs {
		c, err := fut.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if c.BatchSize != total {
			t.Fatalf("request %d served in batch of %d, want %d (aggregation failed)", i, c.BatchSize, total)
		}
		if len(c.Classes) != sizes[i] {
			t.Fatalf("request %d got %d classes, want %d", i, len(c.Classes), sizes[i])
		}
		if device == "" {
			device = c.Decision.Device
		} else if c.Decision.Device != device {
			t.Fatalf("batch split across devices: %s vs %s", c.Decision.Device, device)
		}
	}
	st := p.Stats()
	if st.Batches != 1 || st.WindowFlushes != 1 {
		t.Fatalf("stats = %+v, want one window-flushed batch", st)
	}
}

func TestPipelineSizeTriggerFlushesEarly(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{Window: time.Hour, MaxBatch: 4, HoldWindow: true})
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	futs := make([]*Future, 4)
	for i := range futs {
		fut, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	for _, fut := range futs {
		c, err := fut.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if c.BatchSize != 4 {
			t.Fatalf("batch size = %d, want 4", c.BatchSize)
		}
	}
	if st := p.Stats(); st.SizeFlushes != 1 {
		t.Fatalf("size flushes = %d (stats %+v)", st.SizeFlushes, st)
	}
}

func TestPipelineShedsWhenAdmissionFull(t *testing.T) {
	// Spilling off: every batch targets the classifier's first pick, so
	// one held worker backs the whole pipeline up deterministically.
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	release := make(chan struct{})
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, QueueDepth: 2, DeviceQueueDepth: 1})
	p.testExecHook = func(string) { <-release }

	ctx := context.Background()
	var futs []*Future
	shed := 0
	for i := 0; i < 20 && shed == 0; i++ {
		fut, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8})
		switch {
		case errors.Is(err, ErrAdmissionFull):
			shed++
		case err != nil:
			t.Fatal(err)
		default:
			futs = append(futs, fut)
		}
	}
	if shed == 0 {
		t.Fatal("admission never filled: 20 submits accepted against a held pipeline")
	}
	close(release)
	p.Close()
	for i, fut := range futs {
		c, err := fut.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c.Err != nil {
			t.Fatalf("accepted request %d failed: %v", i, c.Err)
		}
	}
	st := p.Stats()
	if st.Shed == 0 || st.Submitted != st.Completed {
		t.Fatalf("stats = %+v: accepted requests must all complete, sheds must be counted", st)
	}
}

func TestQueueDelayGrowsWithBacklog(t *testing.T) {
	// Spilling off: every batch targets the classifier's first pick, so
	// all backlog lands on one device queue deterministically.
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	gate := make(chan struct{}, 1024)
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, DeviceQueueDepth: 8})
	p.testExecHook = func(string) { <-gate }
	defer p.Close()

	ctx := context.Background()
	// Train the per-sample EWMA: completed batches teach the device
	// queue what a sample costs, which is what backlog is priced in.
	for i := 0; i < 5; i++ {
		gate <- struct{}{}
		if _, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if d := p.QueueDelay(); d != 0 {
		t.Fatalf("idle QueueDelay = %v, want 0", d)
	}

	// Hold the workers and pile on batches: each flush charges its
	// device queue, so the backlog estimate — and with it the server's
	// Retry-After hint — must grow with saturation.
	var futs []*Future
	var last time.Duration
	for k := 0; k < 4; k++ {
		fut, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 64})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
		grown := false
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if d := p.QueueDelay(); d > last {
				last, grown = d, true
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		if !grown {
			t.Fatalf("QueueDelay never rose above %v after backlogging batch %d", last, k+1)
		}
	}
	for i := 0; i < 64; i++ {
		gate <- struct{}{}
	}
	for i, fut := range futs {
		if c, err := fut.Wait(ctx); err != nil || c.Err != nil {
			t.Fatalf("backlogged request %d failed: %v / %v", i, err, c.Err)
		}
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{Window: time.Hour, MaxBatch: 1 << 20, HoldWindow: true})

	ctx, cancel := context.WithCancel(context.Background())
	fut, err := p.Submit(ctx, PipelineRequest{Model: "simple", Policy: LowestLatency, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := fut.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after cancel = %v, want context.Canceled", err)
	}
	// Close drains the aggregate; the cancelled request must resolve
	// with its context error rather than execute.
	p.Close()
	c, err := fut.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(c.Err, context.Canceled) {
		t.Fatalf("completion error = %v, want context.Canceled", c.Err)
	}
	st := p.Stats()
	if st.Cancelled != 1 || st.Batches != 0 {
		t.Fatalf("stats = %+v: cancelled request must not dispatch a batch", st)
	}
}

func TestPipelineCloseRejectsNewWork(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{})
	p.Close()
	if _, err := p.Submit(context.Background(), PipelineRequest{Model: "simple", Policy: BestThroughput, Batch: 1}); !errors.Is(err, ErrPipelineClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPipelineClosed", err)
	}
	p.Close() // idempotent
}

func TestPipelineSubmitValidation(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{})
	defer p.Close()
	ctx := context.Background()
	cases := []PipelineRequest{
		{Model: "no-such-model", Policy: BestThroughput, Batch: 1},
		{Model: "simple", Policy: BestThroughput, Batch: 0},
		{Model: "simple", Policy: Policy(99), Batch: 1},
		{Model: "simple", Policy: BestThroughput, Input: tensor.FromSlice([]float32{1, 2}, 1, 2)}, // wrong width
	}
	for i, req := range cases {
		if _, err := p.Submit(ctx, req); err == nil {
			t.Fatalf("case %d: invalid request admitted: %+v", i, req)
		}
	}
}

func TestPipelineOccupancyFeedsSpill(t *testing.T) {
	// The scheduler's spill adaptation must read the probe: a device
	// reported busy beyond MaxQueueDelay loses its first-ranked pick.
	s := testScheduler(t)
	base, err := s.Select("mnist-small", 4096, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetQueueProbe(func(dev string) time.Duration {
		if dev == base.Device {
			return time.Second // far beyond the default 100 ms MaxQueueDelay
		}
		return 0
	})
	defer s.SetQueueProbe(nil)
	dec, err := s.Select("mnist-small", 4096, BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device == base.Device || !dec.Spilled {
		t.Fatalf("decision ignored queue occupancy: %+v (first pick %s)", dec, base.Device)
	}
}

func TestPipelineTracksDeviceOccupancy(t *testing.T) {
	s := smallScheduler(t, Config{MaxQueueDelay: -1})
	release := make(chan struct{})
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, DeviceQueueDepth: 4})

	ctx := context.Background()
	// Establish a per-sample latency estimate with one completed batch.
	if _, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 65536}); err != nil {
		t.Fatal(err)
	}
	dec, err := s.Select("mnist-small", 65536, BestThroughput, p.cfg.Clock())
	if err != nil {
		t.Fatal(err)
	}
	// Hold the workers and queue another large batch: its estimated
	// work must show up in the probe the scheduler reads.
	p.testExecHook = func(string) { <-release }
	fut, err := p.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 65536})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.probeQueue(dec.Device) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue occupancy for %s never became visible", dec.Device)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	p.Close()
	if c, err := fut.Wait(ctx); err != nil || c.Err != nil {
		t.Fatalf("queued batch failed: %v / %v", err, c.Err)
	}
	if got := p.probeQueue(dec.Device); got != 0 {
		t.Fatalf("occupancy not released after completion: %v", got)
	}
}

// TestPipelineConcurrentStress hammers the scheduler from every public
// angle at once — pipelined requests, direct Classify/Estimate calls,
// dynamic LoadModel, Stats/Select readers — and asserts no request is
// lost or duplicated. Run with -race (the Makefile verify target does).
func TestPipelineConcurrentStress(t *testing.T) {
	s := smallScheduler(t, Config{})
	p := NewPipeline(s, PipelineConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const (
		goroutines = 8
		perG       = 40
		loaders    = 4
	)
	var completions atomic.Int64
	var direct atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines+loaders)

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 4 {
				case 0: // pipelined timing-only request
					c, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 8})
					if err != nil || c.Err != nil {
						errCh <- fmt.Errorf("pipeline estimate: %v / %v", err, c.Err)
						return
					}
					completions.Add(1)
				case 1: // pipelined real classification
					n := 1 + i%3
					c, err := p.Do(ctx, PipelineRequest{Model: "simple", Policy: LowestLatency, Input: simpleSamples(n)})
					if err != nil || c.Err != nil {
						errCh <- fmt.Errorf("pipeline classify: %v / %v", err, c.Err)
						return
					}
					if len(c.Classes) != n {
						errCh <- fmt.Errorf("lost results: %d classes for %d samples", len(c.Classes), n)
						return
					}
					completions.Add(1)
				case 2: // direct synchronous path stays safe alongside
					if _, _, err := s.Classify("simple", simpleSamples(2), EnergyEfficiency, 0); err != nil {
						errCh <- fmt.Errorf("direct classify: %v", err)
						return
					}
					direct.Add(1)
				case 3: // readers
					_ = s.Stats()
					if _, err := s.Select("cifar-10", 64, BestThroughput, 0); err != nil {
						errCh <- fmt.Errorf("select: %v", err)
						return
					}
					direct.Add(1)
				}
			}
		}(g)
	}
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			spec := &nn.Spec{
				Name:       fmt.Sprintf("stress-ffnn-%d", l),
				Kind:       nn.FFNN,
				InputShape: []int{8},
				Hidden:     []int{16},
				Classes:    3,
				Act:        tensor.ReLU,
			}
			if err := s.LoadModel(spec, int64(l+2)); err != nil {
				errCh <- fmt.Errorf("load %s: %v", spec.Name, err)
			}
		}(l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	p.Close()

	st := p.Stats()
	if st.Submitted != completions.Load() {
		t.Fatalf("lost or duplicated pipeline results: submitted %d, callers saw %d", st.Submitted, completions.Load())
	}
	if st.Completed != st.Submitted || st.Shed != 0 || st.InFlight != 0 {
		t.Fatalf("stats = %+v after drain", st)
	}
	// Every dynamically loaded model registered exactly once, listed in
	// sorted order.
	names := s.Dispatcher().Models()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Models() not sorted: %v", names)
	}
	seen := map[string]int{}
	for _, n := range names {
		seen[n]++
	}
	for l := 0; l < loaders; l++ {
		name := fmt.Sprintf("stress-ffnn-%d", l)
		if seen[name] != 1 {
			t.Fatalf("model %s registered %d times", name, seen[name])
		}
	}
	// No decision lost: the scheduler counted one decision per batch
	// plus one per direct call.
	sst := s.Stats()
	if int64(sst.Decisions) != st.Batches+direct.Load() {
		t.Fatalf("decisions = %d, want %d batches + %d direct", sst.Decisions, st.Batches, direct.Load())
	}
}

func TestPipelinePlayDrivesTrace(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{})
	defer p.Close()

	tr, err := trace.Poisson(60, 300, []string{"simple", "mnist-small"}, []int{1, 8, 64}, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := p.Play(ctx, tr, BestThroughput, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests+res.Dropped != len(tr) {
		t.Fatalf("requests %d + dropped %d ≠ trace %d", res.Requests, res.Dropped, len(tr))
	}
	if res.Requests == 0 {
		t.Fatal("every request was dropped")
	}
	perDevice := 0
	for _, n := range res.PerDevice {
		perDevice += n
	}
	if perDevice != res.Requests {
		t.Fatalf("per-device counts %d ≠ requests %d", perDevice, res.Requests)
	}
	if res.Makespan <= 0 || res.TotalSamples <= 0 || res.AvgLatency() <= 0 {
		t.Fatalf("degenerate replay: %+v", res)
	}
}
